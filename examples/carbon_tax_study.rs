//! Policy study: does a carbon tax actually move a geo-distributed cloud
//! onto fuel cells? (The paper's Fig. 10 question, plus the stepped-tariff
//! extension that motivates ADM-G in the first place.)
//!
//! Sweeps the flat tax rate over one day, then compares a flat \$25/ton tax
//! against a stepped (bracketed) tariff with the same initial rate — the
//! non-strongly-convex case a plain multi-block ADMM could not handle.
//!
//! ```text
//! cargo run --release -p ufc-experiments --example carbon_tax_study
//! ```

use ufc_core::{AdmgSettings, AdmgSolver, Strategy};
use ufc_experiments::sweep;
use ufc_model::scenario::ScenarioBuilder;
use ufc_model::EmissionCostFn;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let settings = AdmgSettings::default();

    // Part 1: flat-tax sweep (Fig. 10 shape, one day for speed).
    println!("flat carbon tax sweep (24 h):");
    println!(
        "{:>10} {:>16} {:>16}",
        "$/ton", "UFC improvement", "fuel-cell share"
    );
    let s = sweep::sweep_carbon_tax(2012, 24, settings, &[0.0, 25.0, 60.0, 100.0, 140.0, 200.0])?;
    for p in &s.points {
        println!(
            "{:>10.0} {:>15.1}% {:>15.1}%",
            p.value,
            100.0 * p.avg_improvement,
            100.0 * p.avg_utilization
        );
    }
    if let Some(x) = s.crossover(0.95, true) {
        println!("→ fuel cells take over around {x} $/ton (paper: ≈ 140)\n");
    }

    // Part 2: stepped tariff vs flat tax at the same entry rate.
    let solver = AdmgSolver::new(settings);
    let flat = ScenarioBuilder::paper_default()
        .hours(24)
        .emission_cost(EmissionCostFn::linear(25.0)?)
        .build()?;
    // Brackets: first 2 t/h cheap, next 4 t/h at $80/ton, beyond at $250/ton.
    let stepped = ScenarioBuilder::paper_default()
        .hours(24)
        .emission_cost(EmissionCostFn::stepped(
            vec![2.0, 6.0],
            vec![25.0, 80.0, 250.0],
        )?)
        .build()?;

    let mut flat_tons = 0.0;
    let mut stepped_tons = 0.0;
    let mut flat_util = 0.0;
    let mut stepped_util = 0.0;
    for (a, b) in flat.instances.iter().zip(&stepped.instances) {
        let fa = solver.solve(a, Strategy::Hybrid)?;
        let fb = solver.solve(b, Strategy::Hybrid)?;
        flat_tons += fa.breakdown.carbon_tons;
        stepped_tons += fb.breakdown.carbon_tons;
        flat_util += fa.breakdown.fuel_cell_utilization / 24.0;
        stepped_util += fb.breakdown.fuel_cell_utilization / 24.0;
    }
    println!(
        "flat $25/ton tax:    {flat_tons:.1} t emitted, {:.1}% fuel-cell share",
        100.0 * flat_util
    );
    println!(
        "stepped 25/80/250:   {stepped_tons:.1} t emitted, {:.1}% fuel-cell share",
        100.0 * stepped_util
    );
    println!(
        "→ bracketed pricing caps emissions near the bracket knees without \
         raising the entry rate — and ADM-G handles its non-smooth V_j directly."
    );
    Ok(())
}
