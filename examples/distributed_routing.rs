//! Run the UFC optimization the way the paper's Fig. 2 draws it: as a
//! message-passing protocol between 10 front-end proxies and 4 datacenters,
//! then compare against the in-memory solver and a centralized QP.
//!
//! ```text
//! cargo run --release -p ufc-experiments --example distributed_routing
//! ```

use ufc_core::{centralized, AdmgSettings, AdmgSolver, Strategy};
use ufc_distsim::{DistributedAdmg, Runtime};
use ufc_model::scenario::ScenarioBuilder;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scenario = ScenarioBuilder::paper_default().seed(7).hours(1).build()?;
    let inst = &scenario.instances[0];
    let settings = AdmgSettings::default();

    // Distributed protocol over OS threads and mpsc channels (one per node).
    let report = DistributedAdmg::new(settings).run(inst, Strategy::Hybrid, Runtime::Threaded)?;
    println!(
        "distributed run: {} iterations, UFC = {:.2} $",
        report.iterations,
        report.breakdown.ufc()
    );
    println!(
        "traffic: {} data messages + {} control messages = {:.1} KiB",
        report.stats.data_messages,
        report.stats.control_messages,
        report.stats.total_bytes as f64 / 1024.0
    );
    println!(
        "estimated WAN wall-clock: {:.2} s ({} iterations × 4 latency-bound phases)",
        report.estimated_wan_seconds, report.iterations
    );

    // The in-memory solver computes the identical iterates...
    let mem = AdmgSolver::new(settings).solve(inst, Strategy::Hybrid)?;
    println!(
        "\nin-memory solver: {} iterations, UFC = {:.2} $ (identical by construction)",
        mem.iterations,
        mem.breakdown.ufc()
    );

    // ...and both match the centralized reference QP.
    let central = centralized::solve(inst, Strategy::Hybrid, centralized::Backend::Admm)?;
    println!(
        "centralized QP:   UFC = {:.2} $ (optimality gap {:.4}%)",
        central.breakdown.ufc(),
        100.0 * (central.breakdown.ufc() - report.breakdown.ufc()).abs()
            / central.breakdown.ufc().abs()
    );

    // The point the protocol agreed on.
    println!("\nper-datacenter decisions (hybrid):");
    for (j, name) in scenario.dc_names.iter().enumerate() {
        let load: f64 = report.point.lambda.iter().map(|row| row[j]).sum();
        println!(
            "  {name:>10}: load {load:5.2} kservers, fuel cells {:5.3} MW, grid {:5.3} MW \
             (price {:5.1} $/MWh, carbon {:4.0} g/kWh)",
            report.point.mu[j],
            report.point.nu[j],
            inst.grid_price[j],
            1e3 * inst.carbon_t_per_mwh[j],
        );
    }
    Ok(())
}
