//! The paper's motivating experiment (Table I): how much can a single
//! datacenter save by switching hourly between grid power and fuel cells?
//!
//! Prices a Facebook-like weekly demand profile at Dallas (cheap, calm
//! grid) and San Jose (expensive, spiky grid) under Grid / Fuel cell /
//! Hybrid procurement, then breaks the hybrid decision down by hour.
//!
//! ```text
//! cargo run --release -p ufc-experiments --example price_arbitrage
//! ```

use ufc_experiments::table1;

fn main() {
    let t = table1::run(2012);
    println!(
        "one-week energy costs ($), fuel-cell price p0 = {} $/MWh\n",
        t.fuel_cell_price
    );
    println!(
        "{:>10} {:>10} {:>10} {:>10} {:>9}",
        "site", "grid", "fuel cell", "hybrid", "saving"
    );
    for s in &t.sites {
        let best_pure = s.grid.min(s.fuel_cell);
        println!(
            "{:>10} {:>10.0} {:>10.0} {:>10.0} {:>8.1}%",
            s.site,
            s.grid,
            s.fuel_cell,
            s.hybrid,
            100.0 * (1.0 - s.hybrid / best_pure)
        );
    }

    // Where does the hybrid saving come from? Count the switching hours.
    for (name, prices) in &t.prices {
        let fuel_hours = prices.iter().filter(|&&p| p > t.fuel_cell_price).count();
        println!(
            "\n{name}: fuel cells cheaper in {fuel_hours}/{} hours \
             (price range {:.0}-{:.0} $/MWh)",
            prices.len(),
            prices.iter().cloned().fold(f64::MAX, f64::min),
            prices.iter().cloned().fold(f64::MIN, f64::max),
        );
    }
    println!(
        "\nconclusion: neither pure strategy wins everywhere; the value is \
         in the hourly coordination (the paper's Hybrid)."
    );
}
