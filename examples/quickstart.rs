//! Quickstart: build a paper-default scenario, solve one hour under all
//! three procurement strategies, and print the UFC comparison.
//!
//! ```text
//! cargo run --release -p ufc-experiments --example quickstart
//! ```

use ufc_core::{solve_all_strategies, AdmgSettings};
use ufc_model::scenario::ScenarioBuilder;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // One hour of the paper's §IV-A setup: 4 datacenters (Calgary, San Jose,
    // Dallas, Pittsburgh), 10 front-ends, synthetic workload/price/carbon
    // traces calibrated to the paper's data sources.
    let scenario = ScenarioBuilder::paper_default()
        .seed(42)
        .hours(13)
        .build()?;
    let noon = &scenario.instances[12];
    println!(
        "instance: {} front-ends, {} datacenters, {:.1}k servers of demand",
        noon.m_frontends(),
        noon.n_datacenters(),
        noon.total_arrivals()
    );

    // Solve the UFC maximization with the distributed 4-block ADM-G
    // algorithm under each strategy.
    let cmp = solve_all_strategies(noon, AdmgSettings::default())?;
    for (label, sol) in [
        ("Hybrid", &cmp.hybrid),
        ("Grid", &cmp.grid),
        ("Fuel cell", &cmp.fuel_cell),
    ] {
        let b = &sol.breakdown;
        println!(
            "{label:>9}: UFC = {:8.2} $  (energy {:7.2} $, carbon {:6.2} $, \
             latency {:4.1} ms, fuel-cell share {:4.1}%, {} iterations)",
            b.ufc(),
            b.energy_cost_dollars,
            b.carbon_cost_dollars,
            1e3 * b.average_latency_s,
            1e2 * b.fuel_cell_utilization,
            sol.iterations,
        );
    }
    println!(
        "hybrid improves {:.1}% over grid-only and {:.1}% over fuel-cell-only",
        100.0 * cmp.i_hg(),
        100.0 * cmp.i_hf()
    );
    Ok(())
}
