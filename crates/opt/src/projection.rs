//! Exact Euclidean projections onto the constraint sets of the UFC problem.
//!
//! The ADM-G sub-problems are constrained by (i) per-front-end load-balance
//! simplices `{λ ≥ 0, Σλ = A_i}`, (ii) per-datacenter capped simplices
//! `{a ≥ 0, Σa ≤ S_j}`, and (iii) boxes `0 ≤ μ ≤ μᵐᵃˣ`. These projections
//! are the workhorses of the FISTA path and of feasibility repair.

/// Euclidean projection of `x` onto the scaled simplex `{y ≥ 0, Σy = s}`.
///
/// Implements the sort-based algorithm of Held/Wolfe/Crowder (also Duchi et
/// al. 2008) in `O(n log n)`.
///
/// # Panics
///
/// Panics if `s < 0` or `x` is empty.
#[must_use]
pub fn project_simplex(x: &[f64], s: f64) -> Vec<f64> {
    assert!(s >= 0.0, "simplex radius must be nonnegative, got {s}");
    assert!(!x.is_empty(), "cannot project an empty vector");
    let mut u = x.to_vec();
    // `total_cmp` keeps the sort total even if a NaN sneaks in upstream:
    // the projection then degrades gracefully instead of aborting the
    // whole solve, and the driver's divergence gate flags the iterate.
    u.sort_by(|a, b| b.total_cmp(a));
    // Find the largest k with u_k - (Σ_{i≤k} u_i - s)/k > 0.
    let mut cssv = 0.0;
    let mut rho = 0;
    let mut theta = 0.0;
    for (k, &uk) in u.iter().enumerate() {
        cssv += uk;
        let t = (cssv - s) / (k + 1) as f64;
        // `>=` (rather than the textbook strict `>`) makes the degenerate
        // radius s = 0 well-defined: the first pivot then satisfies
        // u₀ − t = s = 0 and θ = u₀ clamps every coordinate to zero.
        if uk - t >= 0.0 {
            rho = k + 1;
            theta = t;
        }
    }
    if rho == 0 {
        // No pivot is only possible when the largest entry is NaN (for
        // finite inputs the first candidate evaluates to `s ≥ 0`): keep the
        // degrade-gracefully promise above by returning a fully poisoned
        // vector for the divergence gate to flag, rather than asserting.
        return vec![f64::NAN; x.len()];
    }
    x.iter().map(|&v| (v - theta).max(0.0)).collect()
}

/// Euclidean projection of `x` onto the capped simplex `{y ≥ 0, Σy ≤ cap}`.
///
/// If clamping to the nonnegative orthant already satisfies the cap, that is
/// the projection; otherwise the constraint is tight and the problem reduces
/// to [`project_simplex`] with `s = cap`.
///
/// # Panics
///
/// Panics if `cap < 0` or `x` is empty.
#[must_use]
pub fn project_capped_simplex(x: &[f64], cap: f64) -> Vec<f64> {
    assert!(cap >= 0.0, "cap must be nonnegative, got {cap}");
    assert!(!x.is_empty(), "cannot project an empty vector");
    let clamped: Vec<f64> = x.iter().map(|&v| v.max(0.0)).collect();
    if clamped.iter().sum::<f64>() <= cap {
        clamped
    } else {
        project_simplex(x, cap)
    }
}

/// Euclidean projection onto the box `[lo_i, hi_i]` per coordinate.
///
/// # Panics
///
/// Panics if lengths differ or any `lo_i > hi_i`.
#[must_use]
pub fn project_box(x: &[f64], lo: &[f64], hi: &[f64]) -> Vec<f64> {
    assert_eq!(x.len(), lo.len(), "project_box: lo length mismatch");
    assert_eq!(x.len(), hi.len(), "project_box: hi length mismatch");
    x.iter()
        .zip(lo.iter().zip(hi))
        .map(|(&v, (&l, &h))| {
            assert!(l <= h, "project_box: empty interval [{l}, {h}]");
            v.clamp(l, h)
        })
        .collect()
}

/// Euclidean projection onto the nonnegative orthant.
#[must_use]
pub fn project_nonneg(x: &[f64]) -> Vec<f64> {
    x.iter().map(|&v| v.max(0.0)).collect()
}

/// Scalar clamp onto `[lo, hi]` — the 1-D box projection used by the paper's
/// closed-form μ-update (Eq. after (18)).
///
/// # Panics
///
/// Panics if `lo > hi`.
#[must_use]
pub fn clamp_scalar(x: f64, lo: f64, hi: f64) -> f64 {
    assert!(lo <= hi, "clamp_scalar: empty interval [{lo}, {hi}]");
    x.clamp(lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sum(v: &[f64]) -> f64 {
        v.iter().sum()
    }

    #[test]
    fn simplex_point_already_feasible() {
        let x = [0.2, 0.3, 0.5];
        let p = project_simplex(&x, 1.0);
        for (a, b) in p.iter().zip(&x) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn simplex_uniform_from_equal_entries() {
        let p = project_simplex(&[5.0, 5.0, 5.0, 5.0], 2.0);
        for v in &p {
            assert!((v - 0.5).abs() < 1e-12);
        }
    }

    #[test]
    fn simplex_handles_negatives() {
        let p = project_simplex(&[1.0, -10.0], 1.0);
        assert!((p[0] - 1.0).abs() < 1e-12);
        assert_eq!(p[1], 0.0);
    }

    #[test]
    fn simplex_sum_and_nonneg_invariants() {
        let p = project_simplex(&[3.0, -1.0, 0.5, 2.2, -0.7], 4.0);
        assert!((sum(&p) - 4.0).abs() < 1e-12);
        assert!(p.iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn simplex_zero_radius() {
        let p = project_simplex(&[1.0, 2.0], 0.0);
        assert_eq!(p, vec![0.0, 0.0]);
    }

    #[test]
    fn simplex_is_idempotent() {
        let p = project_simplex(&[0.9, -0.4, 1.8], 1.5);
        let pp = project_simplex(&p, 1.5);
        for (a, b) in p.iter().zip(&pp) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "nonnegative")]
    fn simplex_negative_radius_panics() {
        let _ = project_simplex(&[1.0], -1.0);
    }

    /// A NaN-poisoned iterate (e.g. from unverified wire corruption) must
    /// degrade to a poisoned projection for the divergence gate to flag —
    /// never abort the process, even in debug builds.
    #[test]
    fn simplex_nan_input_degrades_without_panicking() {
        let p = project_simplex(&[f64::NAN, f64::NAN, f64::NAN], 1.0);
        assert_eq!(p.len(), 3);
        assert!(p.iter().all(|v| v.is_nan()));
        let q = project_simplex(&[f64::NAN, 0.25], 1.0);
        assert_eq!(q.len(), 2);
        let c = project_capped_simplex(&[f64::NAN, f64::NAN], 1.0);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn capped_simplex_loose_cap_is_clamp() {
        let p = project_capped_simplex(&[0.5, -0.5], 10.0);
        assert_eq!(p, vec![0.5, 0.0]);
    }

    #[test]
    fn capped_simplex_tight_cap_hits_simplex() {
        let p = project_capped_simplex(&[3.0, 3.0], 2.0);
        assert!((sum(&p) - 2.0).abs() < 1e-12);
        assert!((p[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn capped_simplex_zero_cap() {
        let p = project_capped_simplex(&[1.0, 2.0], 0.0);
        assert_eq!(p, vec![0.0, 0.0]);
    }

    #[test]
    fn box_projection_clamps_each_coordinate() {
        let p = project_box(&[-1.0, 0.5, 9.0], &[0.0, 0.0, 0.0], &[1.0, 1.0, 1.0]);
        assert_eq!(p, vec![0.0, 0.5, 1.0]);
    }

    #[test]
    #[should_panic(expected = "empty interval")]
    fn box_rejects_inverted_bounds() {
        let _ = project_box(&[0.0], &[1.0], &[0.0]);
    }

    #[test]
    fn nonneg_and_scalar_clamp() {
        assert_eq!(project_nonneg(&[-1.0, 2.0]), vec![0.0, 2.0]);
        assert_eq!(clamp_scalar(5.0, 0.0, 3.0), 3.0);
        assert_eq!(clamp_scalar(-5.0, 0.0, 3.0), 0.0);
        assert_eq!(clamp_scalar(1.0, 0.0, 3.0), 1.0);
    }

    /// Brute-force check of the variational inequality that characterizes a
    /// Euclidean projection: ⟨x − p, y − p⟩ ≤ 0 for all feasible y.
    #[test]
    fn simplex_projection_satisfies_variational_inequality() {
        let x = [2.0, -0.3, 0.7];
        let p = project_simplex(&x, 1.0);
        // Sample feasible points: vertices and midpoints of the simplex.
        let candidates: Vec<Vec<f64>> = vec![
            vec![1.0, 0.0, 0.0],
            vec![0.0, 1.0, 0.0],
            vec![0.0, 0.0, 1.0],
            vec![0.5, 0.5, 0.0],
            vec![1.0 / 3.0, 1.0 / 3.0, 1.0 / 3.0],
        ];
        for y in candidates {
            let ip: f64 = x
                .iter()
                .zip(&p)
                .zip(&y)
                .map(|((xi, pi), yi)| (xi - pi) * (yi - pi))
                .sum();
            assert!(ip <= 1e-10, "VI violated for candidate {y:?}: {ip}");
        }
    }
}
