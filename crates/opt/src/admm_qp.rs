use ufc_linalg::{vec_ops, Ldlt, Matrix};

use crate::{OptError, Result};

/// Settings for [`AdmmQp`].
#[derive(Debug, Clone, Copy)]
pub struct AdmmQpSettings {
    /// Step-size / penalty parameter ρ.
    pub rho: f64,
    /// Proximal regularization σ added to `P` in the KKT system.
    pub sigma: f64,
    /// Over-relaxation parameter α ∈ (0, 2).
    pub alpha: f64,
    /// Iteration cap.
    pub max_iterations: usize,
    /// Absolute tolerance of the ∞-norm residual test.
    pub eps_abs: f64,
    /// Relative tolerance of the ∞-norm residual test.
    pub eps_rel: f64,
}

impl Default for AdmmQpSettings {
    /// OSQP-like defaults: `ρ = 0.1`, `σ = 1e-6`, `α = 1.6`, 20 000
    /// iterations, `ε_abs = ε_rel = 1e-8`.
    fn default() -> Self {
        AdmmQpSettings {
            rho: 0.1,
            sigma: 1e-6,
            alpha: 1.6,
            max_iterations: 20_000,
            eps_abs: 1e-8,
            eps_rel: 1e-8,
        }
    }
}

/// Solution of an [`AdmmQp`] run.
#[derive(Debug, Clone)]
pub struct AdmmQpSolution {
    /// Primal solution.
    pub x: Vec<f64>,
    /// Constraint activity `z ≈ Ax` at the solution.
    pub z: Vec<f64>,
    /// Dual solution associated with `l ≤ Ax ≤ u`.
    pub y: Vec<f64>,
    /// Objective value `½xᵀPx + qᵀx`.
    pub value: f64,
    /// Iterations performed.
    pub iterations: usize,
    /// Final primal residual `‖Ax − z‖∞`.
    pub primal_residual: f64,
    /// Final dual residual `‖Px + q + Aᵀy‖∞`.
    pub dual_residual: f64,
}

/// Reusable state for repeated [`AdmmQp::solve_warm`] calls on a fixed
/// problem structure.
///
/// Holds the LDLᵀ factors of the quasi-definite KKT matrix (computed on
/// first use) plus the previous primal/dual iterates, which seed the next
/// solve. Reuse is valid only while `P`, `A`, ρ and σ are unchanged; call
/// [`AdmmWorkspace::clear`] when any of them changes.
#[derive(Debug, Clone, Default)]
pub struct AdmmWorkspace {
    fact: Option<Ldlt>,
    x: Vec<f64>,
    z: Vec<f64>,
    y: Vec<f64>,
    rhs: Vec<f64>,
    sol: Vec<f64>,
}

impl AdmmWorkspace {
    /// An empty workspace; the first solve factors the KKT matrix and
    /// starts from the origin, exactly like [`AdmmQp::solve`].
    #[must_use]
    pub fn new() -> Self {
        AdmmWorkspace::default()
    }

    /// Drops the cached factorization and warm-start iterates. Required
    /// whenever the problem matrices or the ADMM penalties change.
    pub fn clear(&mut self) {
        self.fact = None;
        self.x.clear();
        self.z.clear();
        self.y.clear();
    }

    /// `true` when a KKT factorization is cached.
    #[must_use]
    pub fn is_factored(&self) -> bool {
        self.fact.is_some()
    }

    fn reset_shape(&mut self, n: usize, m: usize) {
        self.x = vec![0.0; n];
        self.z = vec![0.0; m];
        self.y = vec![0.0; m];
    }
}

/// OSQP-style ADMM solver for QPs in the standard "two-sided" form
///
/// ```text
///     min ½ xᵀPx + qᵀx   s.t.   l ≤ A x ≤ u,
/// ```
///
/// where equality rows are expressed by `l_i = u_i`. The splitting introduces
/// `z = Ax` and alternates a single quasi-definite KKT solve (factored once
/// with [`Ldlt`]) with a box projection and a dual ascent step — the
/// algorithm of Stellato et al. (OSQP), which is itself the 2-block ADMM the
/// paper cites from Boyd et al.
///
/// Used for the centralized reference solution at scales where the
/// active-set method's cubic per-iteration cost becomes noticeable, and as
/// an independent cross-check of [`crate::ActiveSetQp`].
///
/// # Example
///
/// ```
/// use ufc_linalg::Matrix;
/// use ufc_opt::{AdmmQp, AdmmQpSettings};
///
/// # fn main() -> Result<(), ufc_opt::OptError> {
/// // min ½‖x‖² s.t. x₁ + x₂ = 1 (equality via l = u), x ≥ 0.
/// let p = Matrix::identity(2);
/// let a = Matrix::from_rows(&[&[1.0, 1.0], &[1.0, 0.0], &[0.0, 1.0]])?;
/// let sol = AdmmQp::new(AdmmQpSettings::default())
///     .solve(&p, &[0.0, 0.0], &a, &[1.0, 0.0, 0.0], &[1.0, f64::INFINITY, f64::INFINITY])?;
/// assert!((sol.x[0] - 0.5).abs() < 1e-5);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy)]
pub struct AdmmQp {
    settings: AdmmQpSettings,
}

impl Default for AdmmQp {
    fn default() -> Self {
        AdmmQp::new(AdmmQpSettings::default())
    }
}

impl AdmmQp {
    /// Creates a solver with the given settings.
    ///
    /// # Panics
    ///
    /// Panics if `rho <= 0`, `sigma <= 0`, or `alpha` outside `(0, 2)`.
    #[must_use]
    pub fn new(settings: AdmmQpSettings) -> Self {
        assert!(settings.rho > 0.0, "rho must be positive");
        assert!(settings.sigma > 0.0, "sigma must be positive");
        assert!(
            settings.alpha > 0.0 && settings.alpha < 2.0,
            "alpha must lie in (0, 2)"
        );
        AdmmQp { settings }
    }

    /// Solves the QP.
    ///
    /// # Errors
    ///
    /// * [`OptError::InvalidInput`] on shape mismatch or `l_i > u_i`.
    /// * [`OptError::MaxIterations`] if the residual test never passes.
    /// * [`OptError::Linalg`] if the KKT factorization fails.
    pub fn solve(
        &self,
        p: &Matrix,
        q: &[f64],
        a: &Matrix,
        l: &[f64],
        u: &[f64],
    ) -> Result<AdmmQpSolution> {
        self.solve_warm(p, q, a, l, u, &mut AdmmWorkspace::new())
    }

    /// Solves the QP reusing the workspace's cached KKT factorization and
    /// warm-starting from its previous iterates.
    ///
    /// The first call factors the KKT matrix and behaves exactly like
    /// [`AdmmQp::solve`]; subsequent calls with the same `P`/`A` (and solver
    /// penalties) skip the factorization and start from the last solution,
    /// which typically cuts iterations sharply when only `q`, `l`, `u`
    /// drift between solves. The caller must [`AdmmWorkspace::clear`] the
    /// workspace when the matrices or penalties change.
    ///
    /// # Errors
    ///
    /// Same as [`AdmmQp::solve`].
    pub fn solve_warm(
        &self,
        p: &Matrix,
        q: &[f64],
        a: &Matrix,
        l: &[f64],
        u: &[f64],
        ws: &mut AdmmWorkspace,
    ) -> Result<AdmmQpSolution> {
        let n = q.len();
        let m = a.rows();
        if !p.is_square() || p.rows() != n {
            return Err(OptError::invalid(format!(
                "P is {}x{} but q has length {n}",
                p.rows(),
                p.cols()
            )));
        }
        if m > 0 && a.cols() != n {
            return Err(OptError::invalid(format!(
                "A is {}x{} but q has length {n}",
                a.rows(),
                a.cols()
            )));
        }
        if l.len() != m || u.len() != m {
            return Err(OptError::invalid("bound lengths disagree with A"));
        }
        for i in 0..m {
            if l[i] > u[i] {
                return Err(OptError::invalid(format!(
                    "row {i} has l = {} > u = {}",
                    l[i], u[i]
                )));
            }
        }

        let s = self.settings;
        let dim = n + m;
        // Assemble and factor the quasi-definite KKT matrix only when the
        // workspace has no usable factors (first call or shape change).
        if ws.fact.as_ref().is_none_or(|f| f.dim() != dim) {
            let mut kkt = Matrix::zeros(dim, dim);
            for i in 0..n {
                for j in 0..n {
                    kkt[(i, j)] = p[(i, j)];
                }
                kkt[(i, i)] += s.sigma;
            }
            for r in 0..m {
                for j in 0..n {
                    kkt[(n + r, j)] = a[(r, j)];
                    kkt[(j, n + r)] = a[(r, j)];
                }
                kkt[(n + r, n + r)] = -1.0 / s.rho;
            }
            ws.fact = Some(Ldlt::factor(&kkt)?);
            ws.reset_shape(n, m);
        }
        if ws.x.len() != n || ws.z.len() != m {
            ws.reset_shape(n, m);
        }
        ws.rhs.resize(dim, 0.0);
        ws.sol.resize(dim, 0.0);
        let AdmmWorkspace {
            fact,
            x,
            z,
            y,
            rhs,
            sol,
        } = ws;
        let fact = fact.as_ref().expect("factored above");

        let mut r_prim = f64::INFINITY;
        let mut r_dual = f64::INFINITY;

        for iter in 0..s.max_iterations {
            // KKT solve for (x̃, ν).
            for i in 0..n {
                rhs[i] = s.sigma * x[i] - q[i];
            }
            for r in 0..m {
                rhs[n + r] = z[r] - y[r] / s.rho;
            }
            fact.solve_into(rhs, sol)?;

            // Over-relaxed updates, in place (sol[..n] = x̃, sol[n..] = ν).
            for i in 0..n {
                x[i] = s.alpha * sol[i] + (1.0 - s.alpha) * x[i];
            }
            for r in 0..m {
                // z̃ = z + (ν − y)/ρ.
                let z_tilde = z[r] + (sol[n + r] - y[r]) / s.rho;
                let z_relax = s.alpha * z_tilde + (1.0 - s.alpha) * z[r];
                let z_next = (z_relax + y[r] / s.rho).clamp(l[r], u[r]);
                y[r] += s.rho * (z_relax - z_next);
                z[r] = z_next;
            }

            // Residuals every few iterations (they need two matvecs).
            if iter % 5 == 0 || iter + 1 == s.max_iterations {
                let ax = a.matvec(x)?;
                r_prim = vec_ops::norm_inf(&vec_ops::sub(&ax, z));
                let px = p.matvec(x)?;
                let aty = a.matvec_t(y)?;
                let mut d = px;
                vec_ops::axpy(1.0, q, &mut d);
                vec_ops::axpy(1.0, &aty, &mut d);
                r_dual = vec_ops::norm_inf(&d);

                let eps_prim =
                    s.eps_abs + s.eps_rel * vec_ops::norm_inf(&ax).max(vec_ops::norm_inf(z));
                let px2 = p.matvec(x)?;
                let eps_dual = s.eps_abs
                    + s.eps_rel
                        * vec_ops::norm_inf(&px2)
                            .max(vec_ops::norm_inf(q))
                            .max(vec_ops::norm_inf(&a.matvec_t(y)?));
                if r_prim <= eps_prim && r_dual <= eps_dual {
                    let value = 0.5 * vec_ops::dot(x, &p.matvec(x)?) + vec_ops::dot(q, x);
                    return Ok(AdmmQpSolution {
                        x: x.clone(),
                        z: z.clone(),
                        y: y.clone(),
                        value,
                        iterations: iter + 1,
                        primal_residual: r_prim,
                        dual_residual: r_dual,
                    });
                }
            }
        }
        Err(OptError::MaxIterations {
            iterations: s.max_iterations,
            residual: r_prim.max(r_dual),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equality_and_bounds() {
        // min ½‖x‖² s.t. x₁ + x₂ = 1, x ≥ 0 ⇒ (0.5, 0.5).
        let p = Matrix::identity(2);
        let a = Matrix::from_rows(&[&[1.0, 1.0], &[1.0, 0.0], &[0.0, 1.0]]).unwrap();
        let sol = AdmmQp::default()
            .solve(
                &p,
                &[0.0, 0.0],
                &a,
                &[1.0, 0.0, 0.0],
                &[1.0, f64::INFINITY, f64::INFINITY],
            )
            .unwrap();
        assert!((sol.x[0] - 0.5).abs() < 1e-5);
        assert!((sol.x[1] - 0.5).abs() < 1e-5);
        assert!(sol.primal_residual < 1e-6);
    }

    #[test]
    fn active_inequality() {
        // min (x−3)² s.t. x ≤ 1 ⇒ x = 1 with dual y = −2·(1−3) = 4 ≥ 0.
        let p = Matrix::from_diag(&[2.0]);
        let a = Matrix::from_rows(&[&[1.0]]).unwrap();
        let sol = AdmmQp::default()
            .solve(&p, &[-6.0], &a, &[f64::NEG_INFINITY], &[1.0])
            .unwrap();
        assert!((sol.x[0] - 1.0).abs() < 1e-5);
        assert!(sol.y[0] > 0.0);
    }

    #[test]
    fn matches_active_set_on_random_qp() {
        use crate::{ActiveSetQp, QuadObjective};
        // A 4-variable QP with simplex + cap structure.
        let pm = Matrix::from_rows(&[
            &[1.0, 0.2, 0.0, 0.1],
            &[0.2, 1.5, 0.3, 0.0],
            &[0.0, 0.3, 2.0, 0.4],
            &[0.1, 0.0, 0.4, 1.2],
        ])
        .unwrap();
        let q = vec![-1.0, 0.5, -0.3, 0.2];
        // Constraints: Σx = 1 (eq), x ≥ 0.
        let mut a = Matrix::zeros(5, 4);
        for j in 0..4 {
            a[(0, j)] = 1.0;
        }
        for i in 0..4 {
            a[(1 + i, i)] = 1.0;
        }
        let l = vec![1.0, 0.0, 0.0, 0.0, 0.0];
        let u = vec![
            1.0,
            f64::INFINITY,
            f64::INFINITY,
            f64::INFINITY,
            f64::INFINITY,
        ];
        let admm = AdmmQp::default().solve(&pm, &q, &a, &l, &u).unwrap();

        let f = QuadObjective::dense(pm.clone(), q.clone(), 0.0).unwrap();
        let a_eq = Matrix::from_rows(&[&[1.0; 4]]).unwrap();
        let a_in = Matrix::from_fn(4, 4, |i, j| if i == j { -1.0 } else { 0.0 });
        let exact = ActiveSetQp::default()
            .solve(&f, &a_eq, &[1.0], &a_in, &[0.0; 4], vec![0.25; 4])
            .unwrap();
        assert!(
            vec_ops::dist2(&admm.x, &exact.x) < 1e-4,
            "admm {:?} vs exact {:?}",
            admm.x,
            exact.x
        );
        assert!((admm.value - exact.value).abs() < 1e-5);
    }

    #[test]
    fn rejects_bad_bounds_and_shapes() {
        let p = Matrix::identity(1);
        let a = Matrix::from_rows(&[&[1.0]]).unwrap();
        assert!(matches!(
            AdmmQp::default().solve(&p, &[0.0], &a, &[2.0], &[1.0]),
            Err(OptError::InvalidInput { .. })
        ));
        let a_bad = Matrix::from_rows(&[&[1.0, 1.0]]).unwrap();
        assert!(AdmmQp::default()
            .solve(&p, &[0.0], &a_bad, &[0.0], &[1.0])
            .is_err());
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn rejects_alpha_out_of_range() {
        let _ = AdmmQp::new(AdmmQpSettings {
            alpha: 2.5,
            ..AdmmQpSettings::default()
        });
    }

    #[test]
    fn warm_start_reuses_factors_and_cuts_iterations() {
        let p = Matrix::identity(2);
        let a = Matrix::from_rows(&[&[1.0, 1.0], &[1.0, 0.0], &[0.0, 1.0]]).unwrap();
        let l = [1.0, 0.0, 0.0];
        let u = [1.0, f64::INFINITY, f64::INFINITY];
        let mut ws = AdmmWorkspace::new();
        let cold = AdmmQp::default()
            .solve_warm(&p, &[0.0, 0.0], &a, &l, &u, &mut ws)
            .unwrap();
        assert!(ws.is_factored());
        // First warm call is bit-identical to the plain solve.
        let fresh = AdmmQp::default()
            .solve(&p, &[0.0, 0.0], &a, &l, &u)
            .unwrap();
        assert_eq!(cold.x, fresh.x);
        assert_eq!(cold.iterations, fresh.iterations);
        // A nearby q solved warm needs (far) fewer iterations.
        let warm = AdmmQp::default()
            .solve_warm(&p, &[0.01, 0.0], &a, &l, &u, &mut ws)
            .unwrap();
        assert!(
            warm.iterations < cold.iterations,
            "warm {} vs cold {}",
            warm.iterations,
            cold.iterations
        );
        assert!((warm.x[0] + warm.x[1] - 1.0).abs() < 1e-5);
        ws.clear();
        assert!(!ws.is_factored());
    }

    #[test]
    fn unconstrained_matches_newton() {
        let p = Matrix::from_diag(&[2.0, 8.0]);
        let sol = AdmmQp::default()
            .solve(&p, &[-2.0, -8.0], &Matrix::zeros(0, 2), &[], &[])
            .unwrap();
        assert!((sol.x[0] - 1.0).abs() < 1e-5);
        assert!((sol.x[1] - 1.0).abs() < 1e-5);
    }
}
