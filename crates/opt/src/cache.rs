use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::sync::Arc;

use ufc_linalg::Ldlt;

use crate::Result;

/// A cached KKT factorization together with the objective-operator shift it
/// was assembled with (the shift participates in iterative refinement, so it
/// must travel with the factors).
#[derive(Debug, Clone)]
pub(crate) struct CachedKkt {
    pub(crate) fact: Ldlt,
    pub(crate) shift: f64,
}

/// Structural classification of one inequality row for the rank-1 fast KKT
/// path (see [`crate::ActiveSetQp::with_rank1_kkt`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum RowKind {
    /// `−e_j`: the nonnegativity bound `−x_j ≤ b` (exactly one `−1.0` entry
    /// at column `j`, zeros elsewhere).
    NegUnit(usize),
    /// The all-ones row `Σ x ≤ b` (every entry exactly `1.0`).
    Ones,
    /// Any other row — forces the dense KKT fallback when active.
    Other,
}

/// Memoized structural classification of a QP's constraint matrices.
///
/// Classification walks every entry of `A_eq`/`A_in` once (`O(m·n)`), so the
/// active-set solver memoizes the result here, amortizing it across all
/// solves against the same constraint structure. Like the factorization
/// entries, it is only valid for fixed constraint matrices and is dropped by
/// [`KktCache::clear`].
#[derive(Debug)]
pub(crate) struct Rank1Structure {
    /// `true` when there is exactly one equality row and it is all-ones
    /// (the simplex constraint `Σ x = b` of the λ-sub-problem).
    pub(crate) eq_ones: bool,
    /// Per-row classification of `A_in`.
    pub(crate) rows: Vec<RowKind>,
}

/// Memo of KKT factorizations keyed by the active-set solver's working set.
///
/// The λ- and a-sub-problem Hessians of the ADM-G algorithm are constant
/// across outer iterations (`ρI`-shifted quadratics), so for a fixed block
/// the KKT matrix is fully determined by the *ordered* working set of
/// inequality constraints. Caching the LDLᵀ factors lets every iteration
/// after the first skip both the dense-Hessian materialization and the
/// `O(n³)` factorization.
///
/// # Invariants
///
/// * A cache is only valid for a fixed `(Q, A_eq, A_in, hessian_shift)`
///   tuple. Callers **must** [`clear`](KktCache::clear) it whenever any of
///   those change — e.g. when the penalty ρ changes on an adaptive-penalty
///   step, or when the workspace is retargeted to a new instance.
/// * Keys are the working set *in insertion order*, not sorted: the row
///   order determines the LDLᵀ elimination order, and two orderings of the
///   same set produce different (bit-wise) factors. Keying on the exact
///   order is what makes cached solves bit-identical to fresh ones.
/// * The cache is a pure memo — a hit replays the exact factorization a
///   fresh solve would compute, so enabling or disabling caching never
///   changes a single bit of the solution.
#[derive(Debug, Clone)]
pub struct KktCache {
    entries: HashMap<Vec<usize>, CachedKkt>,
    /// Constraint-row classification memo for the rank-1 fast path. Stored
    /// even when `limit == 0`: disabling factorization *storage* must not
    /// force re-classifying the constraint matrices every solve.
    structure: Option<Arc<Rank1Structure>>,
    limit: usize,
    hits: u64,
    misses: u64,
}

impl Default for KktCache {
    /// Capacity for 64 working sets — generous for the paper-scale QPs,
    /// whose active-set paths visit a handful of working sets per solve.
    fn default() -> Self {
        KktCache::new(64)
    }
}

impl KktCache {
    /// Creates a cache holding at most `limit` factorizations. Once full,
    /// further misses are solved fresh without being stored. `limit == 0`
    /// disables caching entirely.
    #[must_use]
    pub fn new(limit: usize) -> Self {
        KktCache {
            entries: HashMap::new(),
            structure: None,
            limit,
            hits: 0,
            misses: 0,
        }
    }

    /// A cache that never stores anything — every lookup is a miss, which
    /// reproduces the uncached solver exactly.
    #[must_use]
    pub fn disabled() -> Self {
        KktCache::new(0)
    }

    /// Drops all cached factorizations (the hit/miss counters survive).
    /// Must be called whenever the problem data the cache is keyed against
    /// changes — see the type-level invariants.
    pub fn clear(&mut self) {
        self.entries.clear();
        self.structure = None;
    }

    /// Borrows the memoized constraint-structure classification, if any.
    pub(crate) fn structure(&self) -> Option<&Arc<Rank1Structure>> {
        self.structure.as_ref()
    }

    /// Stores the constraint-structure classification for later solves.
    pub(crate) fn set_structure(&mut self, structure: Arc<Rank1Structure>) {
        self.structure = Some(structure);
    }

    /// Number of factorizations currently held.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no factorizations are held.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Lookups served from the memo since construction.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that required a fresh factorization since construction.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Returns the entry for `key`, building it with `build` on a miss.
    /// When the cache is at capacity the fresh entry is parked in `spill`
    /// (borrowed back to the caller) instead of being stored.
    pub(crate) fn get_or_build<'a>(
        &'a mut self,
        key: &[usize],
        spill: &'a mut Option<CachedKkt>,
        build: impl FnOnce() -> Result<CachedKkt>,
    ) -> Result<&'a CachedKkt> {
        if self.entries.len() < self.limit {
            // Under capacity: one entry-API lookup covers both hit and
            // insert-on-miss.
            match self.entries.entry(key.to_vec()) {
                Entry::Occupied(occupied) => {
                    self.hits += 1;
                    Ok(occupied.into_mut())
                }
                Entry::Vacant(vacant) => {
                    self.misses += 1;
                    Ok(vacant.insert(build()?))
                }
            }
        } else {
            // At capacity (or disabled): a miss is built fresh and parked
            // in `spill` instead of being stored.
            match self.entries.get(key) {
                Some(cached) => {
                    self.hits += 1;
                    Ok(cached)
                }
                None => {
                    self.misses += 1;
                    *spill = Some(build()?);
                    Ok(spill.as_ref().expect("spill just set"))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ufc_linalg::Matrix;

    fn entry() -> CachedKkt {
        CachedKkt {
            fact: Ldlt::factor(&Matrix::identity(2)).unwrap(),
            shift: 1e-12,
        }
    }

    #[test]
    fn memoizes_up_to_capacity() {
        let mut cache = KktCache::new(1);
        let mut spill = None;
        cache
            .get_or_build(&[0], &mut spill, || Ok(entry()))
            .unwrap();
        assert!(spill.is_none());
        assert_eq!((cache.hits(), cache.misses()), (0, 1));
        cache
            .get_or_build(&[0], &mut spill, || Ok(entry()))
            .unwrap();
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        // Capacity reached: a second key is built but spilled, not stored.
        cache
            .get_or_build(&[1], &mut spill, || Ok(entry()))
            .unwrap();
        assert!(spill.is_some());
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn disabled_cache_always_misses() {
        let mut cache = KktCache::disabled();
        let mut spill = None;
        for _ in 0..3 {
            cache.get_or_build(&[], &mut spill, || Ok(entry())).unwrap();
        }
        assert_eq!((cache.hits(), cache.misses()), (0, 3));
        assert!(cache.is_empty());
    }

    #[test]
    fn ordered_keys_are_distinct() {
        let mut cache = KktCache::default();
        let mut spill = None;
        cache
            .get_or_build(&[0, 1], &mut spill, || Ok(entry()))
            .unwrap();
        cache
            .get_or_build(&[1, 0], &mut spill, || Ok(entry()))
            .unwrap();
        assert_eq!(cache.len(), 2, "working-set order must be part of the key");
        cache.clear();
        assert!(cache.is_empty());
    }
}
