use std::fmt;

use ufc_linalg::LinalgError;

/// Errors produced by the convex-optimization toolkit.
#[derive(Debug, Clone, PartialEq)]
pub enum OptError {
    /// An iterative solver hit its iteration cap before reaching the
    /// requested tolerance.
    MaxIterations {
        /// Iterations performed.
        iterations: usize,
        /// Residual/criterion value at the point of giving up.
        residual: f64,
    },
    /// The provided starting point (or the constraint set itself) is
    /// infeasible.
    Infeasible {
        /// Description of the violated constraint.
        context: String,
    },
    /// Invalid problem data (shape mismatch, NaN inputs, empty problem, …).
    InvalidInput {
        /// Description of the defect.
        context: String,
    },
    /// A linear-algebra routine failed underneath the solver.
    Linalg(LinalgError),
}

impl fmt::Display for OptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OptError::MaxIterations {
                iterations,
                residual,
            } => write!(
                f,
                "solver did not converge within {iterations} iterations (residual {residual:e})"
            ),
            OptError::Infeasible { context } => write!(f, "infeasible: {context}"),
            OptError::InvalidInput { context } => write!(f, "invalid input: {context}"),
            OptError::Linalg(e) => write!(f, "linear algebra failure: {e}"),
        }
    }
}

impl std::error::Error for OptError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            OptError::Linalg(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LinalgError> for OptError {
    fn from(e: LinalgError) -> Self {
        OptError::Linalg(e)
    }
}

impl OptError {
    /// Builds an [`OptError::InvalidInput`] with a formatted context.
    pub fn invalid(context: impl Into<String>) -> Self {
        OptError::InvalidInput {
            context: context.into(),
        }
    }

    /// Builds an [`OptError::Infeasible`] with a formatted context.
    pub fn infeasible(context: impl Into<String>) -> Self {
        OptError::Infeasible {
            context: context.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        use std::error::Error;
        let e = OptError::MaxIterations {
            iterations: 10,
            residual: 1.0,
        };
        assert!(e.to_string().contains("10"));
        assert!(e.source().is_none());

        let e = OptError::from(LinalgError::Singular { pivot: 2 });
        assert!(e.to_string().contains("pivot 2"));
        assert!(e.source().is_some());

        assert!(OptError::invalid("bad").to_string().contains("bad"));
        assert!(OptError::infeasible("x").to_string().contains("infeasible"));
    }
}
