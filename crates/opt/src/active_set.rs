use std::sync::Arc;

use ufc_linalg::{vec_ops, Ldlt, Matrix};

use crate::cache::{CachedKkt, KktCache, Rank1Structure, RowKind};
use crate::{OptError, QuadObjective, Result};

/// Solution of a convex QP returned by [`ActiveSetQp`].
#[derive(Debug, Clone)]
pub struct QpSolution {
    /// Optimal point.
    pub x: Vec<f64>,
    /// Objective value at `x`.
    pub value: f64,
    /// Outer active-set iterations performed.
    pub iterations: usize,
    /// Multipliers of the equality constraints (sign-free).
    pub eq_multipliers: Vec<f64>,
    /// Multipliers of the inequality constraints `Ax ≤ b`, one per row
    /// (zero for inactive rows, nonnegative at optimality).
    pub ineq_multipliers: Vec<f64>,
}

/// Exact primal active-set solver for small dense convex QPs
///
/// ```text
///     min ½ xᵀQx + cᵀx   s.t.   A_eq x = b_eq,   A_in x ≤ b_in,
/// ```
///
/// following the classical method of Nocedal & Wright §16.5. Each iteration
/// solves one equality-constrained KKT system (factored with [`Ldlt`] after a
/// quasi-definite regularization, plus one step of iterative refinement) and
/// either moves to a blocking constraint or updates the working set from the
/// multiplier signs.
///
/// This is the *exact* path used for the paper-scale sub-problems
/// (λ-minimization over an `N = 4` simplex, a-minimization over an `M = 10`
/// capped simplex, centralized reference QP with ~50 variables). For larger
/// instances use [`crate::AdmmQp`] or [`crate::Fista`].
///
/// # Example
///
/// ```
/// use ufc_linalg::Matrix;
/// use ufc_opt::{ActiveSetQp, QuadObjective};
///
/// # fn main() -> Result<(), ufc_opt::OptError> {
/// // min ½‖x‖² s.t. x₁ + x₂ = 1, x ≥ 0  ⇒  x = (½, ½).
/// let f = QuadObjective::dense(Matrix::identity(2), vec![0.0, 0.0], 0.0)?;
/// let a_eq = Matrix::from_rows(&[&[1.0, 1.0]])?;
/// let a_in = Matrix::from_rows(&[&[-1.0, 0.0], &[0.0, -1.0]])?; // −x ≤ 0
/// let sol = ActiveSetQp::default().solve(
///     &f, &a_eq, &[1.0], &a_in, &[0.0, 0.0], vec![0.5, 0.5])?;
/// assert!((sol.x[0] - 0.5).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy)]
pub struct ActiveSetQp {
    max_iterations: usize,
    tolerance: f64,
    /// Extra diagonal shift applied to `Q` inside the KKT solves; lets
    /// callers with merely positive *semi*-definite Hessians (e.g. the
    /// centralized UFC QP, whose μ/ν blocks are linear) obtain a solution of
    /// the shifted problem that is within `O(shift)` of the true optimum.
    hessian_shift: f64,
    /// Rank-1 fast KKT path (see [`ActiveSetQp::with_rank1_kkt`]).
    rank1_kkt: bool,
    /// Blocked LDLᵀ for the dense KKT factorizations (see
    /// [`ActiveSetQp::with_blocked_factorizations`]).
    blocked: bool,
}

impl Default for ActiveSetQp {
    /// 500 iterations, `1e-9` tolerance, no Hessian shift, fast paths off.
    fn default() -> Self {
        ActiveSetQp {
            max_iterations: 500,
            tolerance: 1e-9,
            hessian_shift: 0.0,
            rank1_kkt: false,
            blocked: false,
        }
    }
}

impl ActiveSetQp {
    /// Creates a solver with explicit iteration cap and tolerance.
    ///
    /// # Panics
    ///
    /// Panics if `max_iterations == 0` or `tolerance <= 0`.
    #[must_use]
    pub fn new(max_iterations: usize, tolerance: f64) -> Self {
        assert!(max_iterations > 0, "need at least one iteration");
        assert!(tolerance > 0.0, "tolerance must be positive");
        ActiveSetQp {
            max_iterations,
            tolerance,
            hessian_shift: 0.0,
            rank1_kkt: false,
            blocked: false,
        }
    }

    /// Returns a copy with the given diagonal Hessian shift (see the struct
    /// docs).
    ///
    /// # Panics
    ///
    /// Panics if `shift < 0`.
    #[must_use]
    pub fn with_hessian_shift(mut self, shift: f64) -> Self {
        assert!(shift >= 0.0, "hessian shift must be nonnegative");
        self.hessian_shift = shift;
        self
    }

    /// Returns a copy with the rank-1 fast KKT path enabled or disabled
    /// (default: disabled).
    ///
    /// When enabled and the objective exposes a diagonal-plus-rank-one
    /// Hessian ([`QuadObjective::diag_rank1_parts`]), working sets made of
    /// nonnegativity bounds (`−x_j ≤ b`) and at most one all-ones row
    /// (`Σx = b` or `Σx ≤ b`) — exactly the shape of the paper's λ- and
    /// a-sub-problems — are solved in `O(n)` per iteration via
    /// Sherman–Morrison (diagonal backsolve + one rank-1 correction + one
    /// bordered ones-row elimination) instead of materializing and factoring
    /// an `O(n³)` dense KKT matrix. Working sets outside that shape fall
    /// back to the dense path automatically, so enabling the knob is always
    /// safe.
    ///
    /// The fast path solves the *same* shifted KKT system exactly (no
    /// constraint-block regularization to refine away), so its solutions
    /// agree with the dense path to solver tolerance but are **not**
    /// bit-identical to it; keep the knob off where bit-compatibility with
    /// the dense path is required.
    #[must_use]
    pub fn with_rank1_kkt(mut self, on: bool) -> Self {
        self.rank1_kkt = on;
        self
    }

    /// Returns a copy that factors dense KKT systems with the blocked
    /// (cache-tiled) LDLᵀ kernel [`Ldlt::factor_blocked`] instead of the
    /// unblocked one (default: unblocked).
    ///
    /// The blocked kernel produces bit-identical factors, so this knob never
    /// changes results — it only changes the memory-access pattern, which
    /// pays off once KKT systems reach a few hundred rows.
    #[must_use]
    pub fn with_blocked_factorizations(mut self, on: bool) -> Self {
        self.blocked = on;
        self
    }

    /// Solves the QP starting from the feasible point `x0`.
    ///
    /// # Errors
    ///
    /// * [`OptError::InvalidInput`] on shape mismatches.
    /// * [`OptError::Infeasible`] if `x0` violates the constraints beyond
    ///   `√tolerance`.
    /// * [`OptError::MaxIterations`] if the working set does not settle.
    /// * [`OptError::Linalg`] if a KKT system is singular beyond repair.
    pub fn solve(
        &self,
        f: &QuadObjective,
        a_eq: &Matrix,
        b_eq: &[f64],
        a_in: &Matrix,
        b_in: &[f64],
        x0: Vec<f64>,
    ) -> Result<QpSolution> {
        self.solve_with_cache(f, a_eq, b_eq, a_in, b_in, x0, &mut KktCache::disabled())
    }

    /// Solves the QP, memoizing KKT factorizations in `cache`.
    ///
    /// The cache is keyed by the ordered working set, so repeated solves of
    /// the *same* problem structure (identical `Q`, `a_eq`, `a_in` and
    /// Hessian shift — only `c`, `b_*` and `x0` varying) skip the dense
    /// Hessian materialization and LDLᵀ factorization on every revisited
    /// working set. Results are bit-identical to [`ActiveSetQp::solve`];
    /// callers are responsible for clearing the cache when the structure
    /// changes (see [`KktCache`]).
    ///
    /// # Errors
    ///
    /// Same as [`ActiveSetQp::solve`].
    #[allow(clippy::too_many_arguments)]
    pub fn solve_with_cache(
        &self,
        f: &QuadObjective,
        a_eq: &Matrix,
        b_eq: &[f64],
        a_in: &Matrix,
        b_in: &[f64],
        x0: Vec<f64>,
        cache: &mut KktCache,
    ) -> Result<QpSolution> {
        self.solve_seeded(f, a_eq, b_eq, a_in, b_in, x0, cache, &[])
    }

    /// Like [`ActiveSetQp::solve_with_cache`], but initializes the working
    /// set from `seed_working` instead of starting empty.
    ///
    /// Warm-started callers (the ADM-G block kernels) know which inequality
    /// rows are active at their start point — typically most of a sparse
    /// routing vector's nonnegativity bounds. Starting from an empty working
    /// set would re-discover those rows one blocking constraint (one KKT
    /// solve) at a time; seeding lets near-stationary warm starts finish in
    /// O(1) iterations. Seed rows whose constraint is not (near-)tight at
    /// `x0` are ignored, so a stale seed degrades performance, never
    /// correctness. With an empty seed this is exactly
    /// [`ActiveSetQp::solve_with_cache`].
    ///
    /// # Errors
    ///
    /// Same as [`ActiveSetQp::solve`].
    #[allow(clippy::too_many_arguments)]
    pub fn solve_seeded(
        &self,
        f: &QuadObjective,
        a_eq: &Matrix,
        b_eq: &[f64],
        a_in: &Matrix,
        b_in: &[f64],
        x0: Vec<f64>,
        cache: &mut KktCache,
        seed_working: &[usize],
    ) -> Result<QpSolution> {
        let n = f.dim();
        let me = a_eq.rows();
        let mi = a_in.rows();
        if (me > 0 && a_eq.cols() != n) || (mi > 0 && a_in.cols() != n) || x0.len() != n {
            return Err(OptError::invalid(format!(
                "QP shapes disagree: n={n}, a_eq {}x{}, a_in {}x{}, x0 len {}",
                a_eq.rows(),
                a_eq.cols(),
                a_in.rows(),
                a_in.cols(),
                x0.len()
            )));
        }
        if b_eq.len() != me || b_in.len() != mi {
            return Err(OptError::invalid(
                "right-hand side lengths disagree with constraint matrices",
            ));
        }
        let feas_tol = self.tolerance.sqrt();
        if me > 0 {
            let r = vec_ops::sub(&a_eq.matvec(&x0)?, b_eq);
            if vec_ops::norm_inf(&r) > feas_tol * (1.0 + vec_ops::norm_inf(b_eq)) {
                return Err(OptError::infeasible(format!(
                    "start point violates equalities by {:e}",
                    vec_ops::norm_inf(&r)
                )));
            }
        }
        if mi > 0 {
            let ax = a_in.matvec(&x0)?;
            for (i, (axi, bi)) in ax.iter().zip(b_in).enumerate() {
                if axi - bi > feas_tol * (1.0 + bi.abs()) {
                    return Err(OptError::infeasible(format!(
                        "start point violates inequality {i} by {:e}",
                        axi - bi
                    )));
                }
            }
        }

        let mut x = x0;
        // Membership mask kept in lockstep with `working`: the line search
        // and the seeding loop test membership per row, and a linear
        // `contains` scan per row is `O(m_i·m_w)` per iteration — ruinous at
        // the scaled instance sizes. The mask changes no arithmetic.
        let mut in_working = vec![false; mi];
        // Seed the working set with the rows that are actually tight at the
        // start point (in ascending order, deduplicated). A row that is not
        // tight cannot be in a valid working set — the KKT step assumes
        // A_W x = b_W — so such seeds are dropped rather than trusted.
        let mut working: Vec<usize> = Vec::new();
        for &ci in seed_working {
            if ci >= mi || in_working[ci] {
                continue;
            }
            let slack = b_in[ci] - vec_ops::dot(a_in.row(ci), &x);
            if slack.abs() <= feas_tol * (1.0 + b_in[ci].abs()) {
                working.push(ci);
                in_working[ci] = true;
            }
        }
        working.sort_unstable();
        let step_tol = self.tolerance;
        // Anti-cycling: after this many consecutive zero-length steps the
        // pivot choice switches to Bland's rule (lowest index), which is
        // guaranteed to escape degenerate-vertex cycles.
        let mut degenerate_steps = 0usize;
        const BLAND_THRESHOLD: usize = 12;

        // Rank-1 fast path: classify the constraint rows once (memoized in
        // the cache across solves) when the knob is on and the Hessian
        // exposes its diagonal-plus-rank-one parts.
        let structure: Option<Arc<Rank1Structure>> =
            if self.rank1_kkt && f.diag_rank1_parts().is_some() {
                Some(match cache.structure() {
                    Some(s) => Arc::clone(s),
                    None => {
                        let s = Arc::new(classify_structure(a_eq, a_in));
                        cache.set_structure(Arc::clone(&s));
                        s
                    }
                })
            } else {
                None
            };

        let mut g = vec![0.0; n];
        for iter in 0..self.max_iterations {
            f.gradient_into(&x, &mut g);
            let fast = match structure.as_deref() {
                Some(s) => self.solve_kkt_rank1(f, s, me, &working, &g)?,
                None => None,
            };
            let (p, mults) = match fast {
                Some(pm) => pm,
                None => self.solve_kkt(f, a_eq, a_in, &working, &g, cache)?,
            };
            let use_bland = degenerate_steps >= BLAND_THRESHOLD;

            if vec_ops::norm_inf(&p) <= step_tol * (1.0 + vec_ops::norm_inf(&x)) {
                // Stationary on the working set: check inequality multipliers.
                let ineq_mults_w = &mults[me..];
                let mut min_idx = None;
                if use_bland {
                    // Bland: drop the *lowest-indexed* constraint with a
                    // clearly negative multiplier.
                    let threshold = -step_tol * (1.0 + vec_ops::norm_inf(&g));
                    let mut best_ci = usize::MAX;
                    for (k, &v) in ineq_mults_w.iter().enumerate() {
                        if v < threshold && working[k] < best_ci {
                            best_ci = working[k];
                            min_idx = Some(k);
                        }
                    }
                } else {
                    let mut min_val = -step_tol * (1.0 + vec_ops::norm_inf(&g));
                    for (k, &v) in ineq_mults_w.iter().enumerate() {
                        if v < min_val {
                            min_val = v;
                            min_idx = Some(k);
                        }
                    }
                }
                match min_idx {
                    None => {
                        // Optimal: scatter multipliers into full-length vector.
                        let mut ineq_multipliers = vec![0.0; mi];
                        for (k, &ci) in working.iter().enumerate() {
                            ineq_multipliers[ci] = ineq_mults_w[k].max(0.0);
                        }
                        return Ok(QpSolution {
                            value: f.value(&x),
                            x,
                            iterations: iter + 1,
                            eq_multipliers: mults[..me].to_vec(),
                            ineq_multipliers,
                        });
                    }
                    Some(k) => {
                        in_working[working[k]] = false;
                        working.remove(k);
                        continue;
                    }
                }
            }

            // Line search to the nearest blocking constraint. Under Bland's
            // rule ties at the minimal step resolve to the lowest index.
            // When the rank-1 structure is known, nonnegativity and ones
            // rows get `O(1)` directional derivatives and slacks (two
            // whole-vector sums hoisted out of the loop) instead of `O(n)`
            // dot products per row.
            let sums = structure
                .as_deref()
                .map(|_| (p.iter().sum::<f64>(), x.iter().sum::<f64>()));
            let mut alpha = 1.0f64;
            let mut blocking = None;
            #[allow(clippy::needless_range_loop)]
            for i in 0..mi {
                if in_working[i] {
                    continue;
                }
                let kind = structure.as_deref().map(|s| s.rows[i]);
                let d = match kind {
                    Some(RowKind::NegUnit(j)) => -p[j],
                    Some(RowKind::Ones) => sums.expect("sums precomputed with structure").0,
                    _ => vec_ops::dot(a_in.row(i), &p),
                };
                if d > step_tol {
                    let slack = match kind {
                        Some(RowKind::NegUnit(j)) => b_in[i] + x[j],
                        Some(RowKind::Ones) => {
                            b_in[i] - sums.expect("sums precomputed with structure").1
                        }
                        _ => b_in[i] - vec_ops::dot(a_in.row(i), &x),
                    };
                    let ai_step = (slack / d).max(0.0);
                    let strictly_better = ai_step < alpha - 1e-14;
                    let tie_break = use_bland
                        && (ai_step - alpha).abs() <= 1e-14
                        && blocking.is_some_and(|b| i < b);
                    if strictly_better || tie_break {
                        alpha = ai_step;
                        blocking = Some(i);
                    }
                }
            }
            if alpha <= step_tol {
                degenerate_steps += 1;
            } else {
                degenerate_steps = 0;
            }
            vec_ops::axpy(alpha, &p, &mut x);
            if let Some(i) = blocking {
                working.push(i);
                in_working[i] = true;
            }
        }
        Err(OptError::MaxIterations {
            iterations: self.max_iterations,
            residual: f64::NAN,
        })
    }

    /// Solves the equality-constrained KKT system on the current working set:
    ///
    /// ```text
    ///   [ Q + δI   A_Wᵀ ] [ p ]   [ −g ]
    ///   [ A_W     −δI   ] [ v ] = [  0 ]
    /// ```
    ///
    /// with one iterative-refinement pass against the unregularized system.
    ///
    /// The factorization (and the objective shift it was assembled with) is
    /// memoized in `cache` keyed by the ordered working set; a hit skips the
    /// dense-Hessian materialization and the LDLᵀ entirely and replays the
    /// exact factors a fresh solve would compute.
    fn solve_kkt(
        &self,
        f: &QuadObjective,
        a_eq: &Matrix,
        a_in: &Matrix,
        working: &[usize],
        g: &[f64],
        cache: &mut KktCache,
    ) -> Result<(Vec<f64>, Vec<f64>)> {
        let n = f.dim();
        let me = a_eq.rows();
        let mw = working.len();
        let m = me + mw;
        let dim = n + m;

        let mut spill = None;
        let entry = cache.get_or_build(working, &mut spill, || {
            let q = f.dense_hessian();
            let scale = q.norm_max().max(1.0);
            // Two distinct regularizations: `shift` is part of the *objective
            // operator* (also applied during refinement, so steps are
            // consistent with it — the solution is that of the shifted
            // problem), while `delta_c` merely stabilizes the LDLᵀ
            // factorization and is refined *away*, keeping `A_W p ≈ 0` so
            // iterates never drift off the working set.
            let shift = (1e-11 * scale).max(1e-12) + self.hessian_shift;
            let delta_c = (1e-11 * scale).max(1e-12);

            let mut kkt = Matrix::zeros(dim, dim);
            for i in 0..n {
                for j in 0..n {
                    kkt[(i, j)] = q[(i, j)];
                }
                kkt[(i, i)] += shift;
            }
            for r in 0..me {
                for j in 0..n {
                    kkt[(n + r, j)] = a_eq[(r, j)];
                    kkt[(j, n + r)] = a_eq[(r, j)];
                }
            }
            for (k, &ci) in working.iter().enumerate() {
                for j in 0..n {
                    kkt[(n + me + k, j)] = a_in[(ci, j)];
                    kkt[(j, n + me + k)] = a_in[(ci, j)];
                }
            }
            for r in 0..m {
                kkt[(n + r, n + r)] = -delta_c;
            }
            // The blocked kernel factors the same matrix into bit-identical
            // factors; the knob only swaps the memory-access pattern.
            let fact = if self.blocked {
                Ldlt::factor_blocked(&kkt)?
            } else {
                Ldlt::factor(&kkt)?
            };
            Ok(CachedKkt { fact, shift })
        })?;
        let fact: &Ldlt = &entry.fact;
        let shift = entry.shift;

        let mut rhs = vec![0.0; dim];
        for i in 0..n {
            rhs[i] = -g[i];
        }
        let mut sol = fact.solve(&rhs)?;

        // Two refinement passes against the operator *with* the objective
        // shift but *without* the constraint-block regularization.
        let mut corr = vec![0.0; dim];
        for _ in 0..2 {
            let residual = {
                let mut r = rhs.clone();
                let qp = f.hess_vec(&sol[..n]);
                for i in 0..n {
                    r[i] -= qp[i] + shift * sol[i];
                    for row in 0..me {
                        r[i] -= a_eq[(row, i)] * sol[n + row];
                    }
                    for (k, &ci) in working.iter().enumerate() {
                        r[i] -= a_in[(ci, i)] * sol[n + me + k];
                    }
                }
                for row in 0..me {
                    r[n + row] -= vec_ops::dot(a_eq.row(row), &sol[..n]);
                }
                for (k, &ci) in working.iter().enumerate() {
                    r[n + me + k] -= vec_ops::dot(a_in.row(ci), &sol[..n]);
                }
                r
            };
            fact.solve_into(&residual, &mut corr)?;
            vec_ops::axpy(1.0, &corr, &mut sol);
        }

        let p = sol[..n].to_vec();
        let v = sol[n..].to_vec();
        Ok((p, v))
    }

    /// `O(n)` Sherman–Morrison solve of the working-set KKT system for
    /// diagonal-plus-rank-one Hessians with simplex-shaped constraints.
    ///
    /// With the working set made of nonnegativity bounds (pinning a set `P`
    /// of coordinates to their bound) plus at most one all-ones row, the KKT
    /// system reduces to the free coordinates `F = {0..n} \ P`:
    ///
    /// ```text
    ///   K p_F + v₁·1 = −g_F,   1ᵀ p_F = 0   (ones row active)
    ///   K p_F        = −g_F                 (no ones row)
    /// ```
    ///
    /// with `K = diag(d_F + δ) + γ u_F u_Fᵀ`, where `δ` is the same
    /// objective-operator shift the dense path uses. `K⁻¹z` is two diagonal
    /// passes plus a rank-1 correction (Sherman–Morrison), the bordered
    /// ones row is eliminated in closed form
    /// (`v₁ = −(1ᵀK⁻¹g)/(1ᵀK⁻¹1)`), and the multipliers of the pinned rows
    /// come from the stationarity rows of the pinned coordinates. Unlike
    /// the dense path there is no constraint-block regularization to refine
    /// away — the shifted system is solved exactly — so the result matches
    /// the dense path to solver tolerance, not bitwise.
    ///
    /// Returns `Ok(None)` when the working set leaves the supported shape
    /// (an `Other` row, two simultaneous ones rows, a non-ones equality, or
    /// a degenerate denominator): the caller falls back to the dense path.
    fn solve_kkt_rank1(
        &self,
        f: &QuadObjective,
        s: &Rank1Structure,
        me: usize,
        working: &[usize],
        g: &[f64],
    ) -> Result<Option<(Vec<f64>, Vec<f64>)>> {
        let Some((d, gamma, u)) = f.diag_rank1_parts() else {
            return Ok(None);
        };
        if me > 1 || (me == 1 && !s.eq_ones) {
            return Ok(None);
        }
        let n = d.len();
        let mut pinned = vec![false; n];
        let mut ones_in_working = false;
        for &ci in working {
            match s.rows[ci] {
                RowKind::NegUnit(j) => pinned[j] = true,
                RowKind::Ones if !ones_in_working => ones_in_working = true,
                // An `Other` row, or a second ones row (the pair would make
                // the working-set rows linearly dependent): dense fallback.
                _ => return Ok(None),
            }
        }
        if me == 1 && ones_in_working {
            // `Σx = b` equality plus an active `Σx ≤ cap` row: linearly
            // dependent, only the regularized dense path copes.
            return Ok(None);
        }
        let ones_active = me == 1 || ones_in_working;

        // Same objective-operator shift as the dense path. For `d ≥ 0`,
        // `γ ≥ 0` the largest dense-Hessian entry sits on the diagonal, so
        // `max_i(d_i + γu_i²)` equals the dense path's `norm_max` scale.
        let mut scale = 0.0f64;
        for (di, ui) in d.iter().zip(u) {
            scale = scale.max(di + gamma * ui * ui);
        }
        let shift = (1e-11 * scale.max(1.0)).max(1e-12) + self.hessian_shift;

        // Sherman–Morrison inverse of K = diag(d_F + δ) + γ u_F u_Fᵀ:
        //   K⁻¹z = D⁻¹z − γ(uᵀD⁻¹z)/(1 + γuᵀD⁻¹u) · D⁻¹u.
        let mut ud_u = 0.0;
        let mut ud_g = 0.0;
        let mut ud_1 = 0.0;
        for i in 0..n {
            if pinned[i] {
                continue;
            }
            let di = d[i] + shift;
            ud_u += u[i] * u[i] / di;
            ud_g += u[i] * g[i] / di;
            ud_1 += u[i] / di;
        }
        let denom = 1.0 + gamma * ud_u;
        if !denom.is_finite() || denom <= 0.0 {
            return Ok(None);
        }
        let cg = gamma * ud_g / denom;
        let c1 = gamma * ud_1 / denom;

        let mut v_ones = 0.0;
        if ones_active {
            // Bordered elimination of the ones row: 1ᵀ p_F = 0.
            let mut s_g = 0.0; // 1ᵀ K⁻¹ g
            let mut s_1 = 0.0; // 1ᵀ K⁻¹ 1
            for i in 0..n {
                if pinned[i] {
                    continue;
                }
                let di = d[i] + shift;
                s_g += (g[i] - cg * u[i]) / di;
                s_1 += (1.0 - c1 * u[i]) / di;
            }
            // K ≻ 0 makes 1ᵀK⁻¹1 > 0 whenever F is nonempty; anything else
            // (all coordinates pinned, or overflow) is degenerate.
            if !(s_1.is_finite() && s_1 > 0.0) {
                return Ok(None);
            }
            v_ones = -s_g / s_1;
            if !v_ones.is_finite() {
                return Ok(None);
            }
        }

        // p_F = −K⁻¹(g_F + v₁·1_F), p_P = 0.
        let mut p = vec![0.0; n];
        let mut u_dot_p = 0.0;
        for i in 0..n {
            if pinned[i] {
                continue;
            }
            let di = d[i] + shift;
            let pi = -((g[i] - cg * u[i]) / di + v_ones * (1.0 - c1 * u[i]) / di);
            p[i] = pi;
            u_dot_p += u[i] * pi;
        }

        // Multipliers in the dense path's layout: equalities first, then
        // working rows in working-set order. A pinned coordinate's
        // stationarity row gives its bound multiplier directly:
        //   (d_j+δ)·0 + γu_j(uᵀp) + [ones]·v₁ − v_j = −g_j.
        let mut mults = vec![0.0; me + working.len()];
        if me == 1 {
            mults[0] = v_ones;
        }
        let ones_term = if ones_active { v_ones } else { 0.0 };
        for (k, &ci) in working.iter().enumerate() {
            mults[me + k] = match s.rows[ci] {
                RowKind::NegUnit(j) => g[j] + gamma * u[j] * u_dot_p + ones_term,
                RowKind::Ones => v_ones,
                RowKind::Other => unreachable!("Other rows force the dense fallback above"),
            };
        }
        Ok(Some((p, mults)))
    }
}

/// Classifies the constraint matrices for the rank-1 fast KKT path.
///
/// Entries are compared exactly (`== 1.0`, `== −1.0`, `== 0.0`): the λ/a
/// sub-problem constraint matrices are built from those literals, and an
/// exact match is the only guarantee that the `O(1)` line-search shortcuts
/// compute the same quantity the dense dot product would.
fn classify_structure(a_eq: &Matrix, a_in: &Matrix) -> Rank1Structure {
    let eq_ones = a_eq.rows() == 1 && a_eq.row(0).iter().all(|&v| v == 1.0);
    let rows = (0..a_in.rows())
        .map(|i| {
            let r = a_in.row(i);
            if !r.is_empty() && r.iter().all(|&v| v == 1.0) {
                return RowKind::Ones;
            }
            let mut neg = None;
            for (j, &v) in r.iter().enumerate() {
                if v == -1.0 {
                    if neg.is_some() {
                        return RowKind::Other;
                    }
                    neg = Some(j);
                } else if v != 0.0 {
                    return RowKind::Other;
                }
            }
            match neg {
                Some(j) => RowKind::NegUnit(j),
                None => RowKind::Other,
            }
        })
        .collect();
    Rank1Structure { eq_ones, rows }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::projection::project_simplex;

    fn nonneg_rows(n: usize) -> (Matrix, Vec<f64>) {
        // −x ≤ 0 encoded row-wise.
        let a = Matrix::from_fn(n, n, |i, j| if i == j { -1.0 } else { 0.0 });
        (a, vec![0.0; n])
    }

    #[test]
    fn unconstrained_newton_step() {
        let f =
            QuadObjective::dense(Matrix::from_diag(&[2.0, 4.0]), vec![-2.0, -8.0], 0.0).unwrap();
        let sol = ActiveSetQp::default()
            .solve(
                &f,
                &Matrix::zeros(0, 2),
                &[],
                &Matrix::zeros(0, 2),
                &[],
                vec![0.0, 0.0],
            )
            .unwrap();
        assert!((sol.x[0] - 1.0).abs() < 1e-8);
        assert!((sol.x[1] - 2.0).abs() < 1e-8);
    }

    #[test]
    fn equality_constrained_projection() {
        // min ½‖x − (2,0)‖² s.t. x₁ + x₂ = 1 ⇒ x = (1.5, −0.5).
        let f = QuadObjective::dense(Matrix::identity(2), vec![-2.0, 0.0], 2.0).unwrap();
        let a_eq = Matrix::from_rows(&[&[1.0, 1.0]]).unwrap();
        let sol = ActiveSetQp::default()
            .solve(&f, &a_eq, &[1.0], &Matrix::zeros(0, 2), &[], vec![0.5, 0.5])
            .unwrap();
        assert!((sol.x[0] - 1.5).abs() < 1e-8);
        assert!((sol.x[1] + 0.5).abs() < 1e-8);
        // Multiplier: g + Aᵀv = 0 at x*: g = x − (2,0) = (−0.5, −0.5) ⇒ v = 0.5.
        assert!((sol.eq_multipliers[0] - 0.5).abs() < 1e-7);
    }

    #[test]
    fn simplex_qp_matches_projection_operator() {
        // min ½‖x − t‖² over the simplex == projection of t.
        let t = [1.2, 0.4, -0.6, 0.1];
        let f =
            QuadObjective::dense(Matrix::identity(4), t.iter().map(|v| -v).collect(), 0.0).unwrap();
        let a_eq = Matrix::from_rows(&[&[1.0; 4]]).unwrap();
        let (a_in, b_in) = nonneg_rows(4);
        let sol = ActiveSetQp::default()
            .solve(&f, &a_eq, &[1.0], &a_in, &b_in, vec![0.25; 4])
            .unwrap();
        let expected = project_simplex(&t, 1.0);
        assert!(vec_ops::dist2(&sol.x, &expected) < 1e-7, "{:?}", sol.x);
        // Multipliers of active nonnegativity constraints are nonnegative.
        assert!(sol.ineq_multipliers.iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn activates_and_releases_constraints() {
        // min (x₁−3)² + (x₂−2)² s.t. x ≤ (1, 5): only the first bound binds.
        let f =
            QuadObjective::dense(Matrix::from_diag(&[2.0, 2.0]), vec![-6.0, -4.0], 13.0).unwrap();
        let a_in = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]).unwrap();
        let sol = ActiveSetQp::default()
            .solve(
                &f,
                &Matrix::zeros(0, 2),
                &[],
                &a_in,
                &[1.0, 5.0],
                vec![0.0, 0.0],
            )
            .unwrap();
        assert!((sol.x[0] - 1.0).abs() < 1e-8);
        assert!((sol.x[1] - 2.0).abs() < 1e-8);
        assert!(sol.ineq_multipliers[0] > 1.0); // active with positive multiplier
        assert!(sol.ineq_multipliers[1].abs() < 1e-8);
    }

    #[test]
    fn rejects_infeasible_start() {
        let f = QuadObjective::dense(Matrix::identity(1), vec![0.0], 0.0).unwrap();
        let a_eq = Matrix::from_rows(&[&[1.0]]).unwrap();
        let err = ActiveSetQp::default()
            .solve(&f, &a_eq, &[1.0], &Matrix::zeros(0, 1), &[], vec![0.0])
            .unwrap_err();
        assert!(matches!(err, OptError::Infeasible { .. }));
    }

    #[test]
    fn rejects_shape_mismatch() {
        let f = QuadObjective::dense(Matrix::identity(2), vec![0.0; 2], 0.0).unwrap();
        let a_eq = Matrix::from_rows(&[&[1.0, 1.0, 1.0]]).unwrap();
        let err = ActiveSetQp::default()
            .solve(&f, &a_eq, &[1.0], &Matrix::zeros(0, 2), &[], vec![0.0; 2])
            .unwrap_err();
        assert!(matches!(err, OptError::InvalidInput { .. }));
    }

    #[test]
    fn semidefinite_hessian_with_shift() {
        // Pure linear objective over the simplex: min cᵀx ⇒ vertex with min c.
        let q = Matrix::zeros(3, 3);
        let f = QuadObjective::dense(q, vec![3.0, 1.0, 2.0], 0.0).unwrap();
        let a_eq = Matrix::from_rows(&[&[1.0; 3]]).unwrap();
        let (a_in, b_in) = nonneg_rows(3);
        let sol = ActiveSetQp::new(1000, 1e-9)
            .with_hessian_shift(1e-7)
            .solve(&f, &a_eq, &[1.0], &a_in, &b_in, vec![1.0 / 3.0; 3])
            .unwrap();
        assert!((sol.x[1] - 1.0).abs() < 1e-4, "{:?}", sol.x);
    }

    #[test]
    fn cached_solves_are_bit_identical_to_fresh() {
        // Repeated solves with the same Hessian but varying linear terms —
        // exactly the ADM-G iteration pattern the cache exists for.
        let a_eq = Matrix::from_rows(&[&[1.0; 4]]).unwrap();
        let (a_in, b_in) = nonneg_rows(4);
        let mut cache = KktCache::default();
        for round in 0..5 {
            let c: Vec<f64> = (0..4).map(|i| (i as f64 - round as f64) * 0.3).collect();
            let f = QuadObjective::diag_rank1(vec![1.0; 4], 0.5, vec![1.0, 2.0, 0.5, 1.5], c, 0.0);
            let fresh = ActiveSetQp::default()
                .solve(&f, &a_eq, &[1.0], &a_in, &b_in, vec![0.25; 4])
                .unwrap();
            let cached = ActiveSetQp::default()
                .solve_with_cache(&f, &a_eq, &[1.0], &a_in, &b_in, vec![0.25; 4], &mut cache)
                .unwrap();
            assert_eq!(fresh.x, cached.x, "round {round}");
            assert_eq!(fresh.value.to_bits(), cached.value.to_bits());
            assert_eq!(fresh.iterations, cached.iterations);
            assert_eq!(fresh.ineq_multipliers, cached.ineq_multipliers);
        }
        assert!(cache.hits() > 0, "later rounds must hit the memo");
    }

    #[test]
    fn seeded_solve_matches_unseeded_and_ignores_stale_seeds() {
        // a-QP shape: x ≥ 0, Σx ≤ cap, start at a vertex with known support.
        let n = 6;
        let f = QuadObjective::diag_rank1(
            vec![1.0; n],
            0.4,
            vec![1.0; n],
            vec![-0.9, 0.3, -0.1, 0.5, -0.7, 0.2],
            0.0,
        );
        let mut a_in = Matrix::zeros(n + 1, n);
        let mut b_in = vec![0.0; n + 1];
        for i in 0..n {
            a_in[(i, i)] = -1.0;
            a_in[(n, i)] = 1.0;
        }
        b_in[n] = 1.5;
        let no_eq = Matrix::zeros(0, n);
        let plain = ActiveSetQp::default()
            .solve(&f, &no_eq, &[], &a_in, &b_in, vec![0.0; n])
            .unwrap();
        // Restart from the solution, seeding its zero rows: must finish in
        // one outer iteration at (numerically) the same point.
        let x0 = plain.x.clone();
        let seed: Vec<usize> = (0..n).filter(|&i| x0[i].abs() <= 1e-9).collect();
        assert!(!seed.is_empty(), "test problem should have inactive rows");
        let seeded = ActiveSetQp::default()
            .solve_seeded(
                &f,
                &no_eq,
                &[],
                &a_in,
                &b_in,
                x0,
                &mut KktCache::disabled(),
                &seed,
            )
            .unwrap();
        assert!(vec_ops::dist2(&seeded.x, &plain.x) < 1e-14);
        assert!(
            seeded.iterations <= 2,
            "seed should skip the build-up phase"
        );
        // Stale / out-of-range seeds are dropped, not trusted: seeding rows
        // that are slack at an interior start must not change the result.
        let stale = ActiveSetQp::default()
            .solve_seeded(
                &f,
                &no_eq,
                &[],
                &a_in,
                &b_in,
                vec![0.1; n],
                &mut KktCache::disabled(),
                &[0, 3, n, 99],
            )
            .unwrap();
        let fresh = ActiveSetQp::default()
            .solve(&f, &no_eq, &[], &a_in, &b_in, vec![0.1; n])
            .unwrap();
        assert_eq!(stale.x, fresh.x);
        assert_eq!(stale.iterations, fresh.iterations);
    }

    /// λ-shaped problem (simplex with an all-ones equality): the rank-1
    /// fast path must agree with the dense path to solver tolerance and
    /// produce equally valid KKT multipliers.
    #[test]
    fn rank1_fast_path_matches_dense_on_lambda_shape() {
        let n = 5;
        let arrival = 2.0;
        let a_eq = Matrix::from_rows(&[&[1.0; 5]]).unwrap();
        let (a_in, b_in) = nonneg_rows(n);
        for round in 0..4 {
            let c: Vec<f64> = (0..n)
                .map(|i| ((i * 7 + round) % 5) as f64 * 0.4 - 1.0)
                .collect();
            let f = QuadObjective::diag_rank1(
                vec![0.3; n],
                1.7,
                vec![0.01, 0.04, 0.02, 0.05, 0.03],
                c,
                0.0,
            );
            let start = vec![arrival / n as f64; n];
            let dense = ActiveSetQp::default()
                .solve(&f, &a_eq, &[arrival], &a_in, &b_in, start.clone())
                .unwrap();
            let fast = ActiveSetQp::default()
                .with_rank1_kkt(true)
                .solve(&f, &a_eq, &[arrival], &a_in, &b_in, start)
                .unwrap();
            assert!(
                vec_ops::dist2(&fast.x, &dense.x) < 1e-7,
                "round {round}: {:?} vs {:?}",
                fast.x,
                dense.x
            );
            assert!((fast.value - dense.value).abs() < 1e-9 * (1.0 + dense.value.abs()));
            let r = crate::kkt::qp_residuals(
                &f,
                &a_eq,
                &[arrival],
                &a_in,
                &b_in,
                &fast.x,
                &fast.eq_multipliers,
                &fast.ineq_multipliers,
            );
            assert!(r.is_optimal(1e-6), "round {round}: KKT residuals {r:?}");
        }
    }

    /// a-shaped problem (nonnegativity + one capacity row), with a linear
    /// term aggressive enough that the capacity row goes active — the
    /// bordered ones-row elimination must handle a *working* ones row, not
    /// just the equality.
    #[test]
    fn rank1_fast_path_matches_dense_on_capped_shape() {
        let n = 6;
        let cap = 1.0;
        let mut a_in = Matrix::zeros(n + 1, n);
        let mut b_in = vec![0.0; n + 1];
        for i in 0..n {
            a_in[(i, i)] = -1.0;
            a_in[(n, i)] = 1.0;
        }
        b_in[n] = cap;
        let no_eq = Matrix::zeros(0, n);
        let c = vec![-2.0, -1.5, 0.4, -1.8, 0.2, -0.9];
        let f = QuadObjective::diag_rank1(vec![0.3; n], 0.3 * 0.12 * 0.12, vec![1.0; n], c, 0.0);
        let dense = ActiveSetQp::default()
            .solve(&f, &no_eq, &[], &a_in, &b_in, vec![0.0; n])
            .unwrap();
        let fast = ActiveSetQp::default()
            .with_rank1_kkt(true)
            .solve(&f, &no_eq, &[], &a_in, &b_in, vec![0.0; n])
            .unwrap();
        let total: f64 = dense.x.iter().sum();
        assert!((total - cap).abs() < 1e-7, "capacity should bind: {total}");
        assert!(vec_ops::dist2(&fast.x, &dense.x) < 1e-7);
        assert!(fast.ineq_multipliers[n] >= 0.0);
    }

    /// The rank-1 knob is structurally inert for dense Hessians — not just
    /// close, bit-identical, because the fast path never engages.
    #[test]
    fn rank1_knob_is_bitwise_inert_for_dense_hessians() {
        let f =
            QuadObjective::dense(Matrix::from_diag(&[2.0, 2.0]), vec![-6.0, -4.0], 13.0).unwrap();
        let a_in = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]).unwrap();
        let no_eq = Matrix::zeros(0, 2);
        let off = ActiveSetQp::default()
            .solve(&f, &no_eq, &[], &a_in, &[1.0, 5.0], vec![0.0, 0.0])
            .unwrap();
        let on = ActiveSetQp::default()
            .with_rank1_kkt(true)
            .solve(&f, &no_eq, &[], &a_in, &[1.0, 5.0], vec![0.0, 0.0])
            .unwrap();
        assert_eq!(off.x, on.x);
        assert_eq!(off.value.to_bits(), on.value.to_bits());
        assert_eq!(off.iterations, on.iterations);
        assert_eq!(off.ineq_multipliers, on.ineq_multipliers);
    }

    /// Rank-1 Hessian but general (unstructured) constraint rows: the fast
    /// path must detect the `Other` rows and fall back to the dense KKT
    /// solve whenever one is active, still converging to the same optimum.
    #[test]
    fn rank1_falls_back_on_unstructured_rows() {
        let n = 3;
        let f = QuadObjective::diag_rank1(
            vec![1.0; n],
            0.5,
            vec![1.0, -1.0, 2.0],
            vec![-1.0, -2.0, -0.5],
            0.0,
        );
        // x₁ + 2x₂ ≤ 1 is neither a bound nor a ones row.
        let a_in =
            Matrix::from_rows(&[&[1.0, 2.0, 0.0], &[-1.0, 0.0, 0.0], &[0.0, 0.0, -1.0]]).unwrap();
        let b_in = [1.0, 0.0, 0.0];
        let no_eq = Matrix::zeros(0, n);
        let off = ActiveSetQp::default()
            .solve(&f, &no_eq, &[], &a_in, &b_in, vec![0.0; n])
            .unwrap();
        let on = ActiveSetQp::default()
            .with_rank1_kkt(true)
            .solve(&f, &no_eq, &[], &a_in, &b_in, vec![0.0; n])
            .unwrap();
        assert!(
            vec_ops::dist2(&off.x, &on.x) < 1e-7,
            "{:?} vs {:?}",
            off.x,
            on.x
        );
    }

    /// The blocked-factorization knob swaps the LDLᵀ kernel for a
    /// bit-identical one, so entire solves must be bit-identical.
    #[test]
    fn blocked_factorization_knob_is_bitwise_inert() {
        let a_eq = Matrix::from_rows(&[&[1.0; 4]]).unwrap();
        let (a_in, b_in) = nonneg_rows(4);
        let f = QuadObjective::diag_rank1(
            vec![1.0; 4],
            0.5,
            vec![1.0, 2.0, 0.5, 1.5],
            vec![0.3, -0.6, 0.9, -1.2],
            0.0,
        );
        let plain = ActiveSetQp::default()
            .solve(&f, &a_eq, &[1.0], &a_in, &b_in, vec![0.25; 4])
            .unwrap();
        let blocked = ActiveSetQp::default()
            .with_blocked_factorizations(true)
            .solve(&f, &a_eq, &[1.0], &a_in, &b_in, vec![0.25; 4])
            .unwrap();
        assert_eq!(plain.x, blocked.x);
        assert_eq!(plain.value.to_bits(), blocked.value.to_bits());
        assert_eq!(plain.iterations, blocked.iterations);
        assert_eq!(plain.eq_multipliers, blocked.eq_multipliers);
        assert_eq!(plain.ineq_multipliers, blocked.ineq_multipliers);
    }

    #[test]
    fn agrees_with_fista_on_rank1_capped_problem() {
        use crate::projection::project_capped_simplex;
        use crate::Fista;
        // min ½xᵀ(ρI + ρβ²11ᵀ)x + cᵀx over {x ≥ 0, Σx ≤ cap} — the paper's
        // a-sub-problem shape (20).
        let rho = 0.3;
        let beta = 0.12;
        let c = vec![-0.4, 0.1, -0.2, 0.05, -0.15];
        let n = c.len();
        let f = QuadObjective::diag_rank1(
            vec![rho; n],
            rho * beta * beta,
            vec![1.0; n],
            c.clone(),
            0.0,
        );
        let cap = 1.0;
        let mut a_in = Matrix::zeros(n + 1, n);
        let mut b_in = vec![0.0; n + 1];
        for i in 0..n {
            a_in[(i, i)] = -1.0;
        }
        for j in 0..n {
            a_in[(n, j)] = 1.0;
        }
        b_in[n] = cap;
        let exact = ActiveSetQp::default()
            .solve(&f, &Matrix::zeros(0, n), &[], &a_in, &b_in, vec![0.0; n])
            .unwrap();
        let fista = Fista::new(50_000, 1e-12)
            .minimize(&f, |x| project_capped_simplex(x, cap), vec![0.0; n])
            .unwrap();
        assert!(
            vec_ops::dist2(&exact.x, &fista.x) < 1e-5,
            "active-set {:?} vs fista {:?}",
            exact.x,
            fista.x
        );
    }
}
