//! One-dimensional convex minimization.
//!
//! The ν-minimization (19) of the paper is a single-variable convex problem
//! `min_{ν ≥ 0} V(Cν) + pν + ρ/2 (d − ν)²`. For affine `V` it is closed-form;
//! for general convex `V` (quadratic taxes, stepped cap-and-trade tariffs) we
//! minimize numerically. Both a derivative-free golden-section search and a
//! subgradient bisection are provided; the latter is preferred when a
//! (sub)derivative is available because it converges linearly with a
//! guaranteed bracket.

/// Golden-section search for the minimizer of a convex function on `[lo, hi]`.
///
/// Runs until the bracket is below `tol` (absolute). For strictly convex `f`
/// the result is within `tol` of the true minimizer; for merely convex `f`
/// it returns one minimizer.
///
/// # Panics
///
/// Panics if `lo > hi` or `tol <= 0`.
#[must_use]
pub fn golden_section(mut f: impl FnMut(f64) -> f64, lo: f64, hi: f64, tol: f64) -> f64 {
    assert!(lo <= hi, "invalid bracket [{lo}, {hi}]");
    assert!(tol > 0.0, "tolerance must be positive");
    if hi - lo <= tol {
        return 0.5 * (lo + hi);
    }
    const INV_PHI: f64 = 0.618_033_988_749_894_8; // (√5 − 1)/2
    let mut a = lo;
    let mut b = hi;
    let mut c = b - INV_PHI * (b - a);
    let mut d = a + INV_PHI * (b - a);
    let mut fc = f(c);
    let mut fd = f(d);
    while b - a > tol {
        if fc < fd {
            b = d;
            d = c;
            fd = fc;
            c = b - INV_PHI * (b - a);
            fc = f(c);
        } else {
            a = c;
            c = d;
            fc = fd;
            d = a + INV_PHI * (b - a);
            fd = f(d);
        }
    }
    0.5 * (a + b)
}

/// Bisection on a nondecreasing (sub)derivative: finds `x ∈ [lo, hi]` with
/// `df(x) ≈ 0`, clamping to an endpoint when the derivative does not change
/// sign (i.e. the constrained minimizer sits on the boundary).
///
/// This is the numerically robust way to minimize a convex function whose
/// derivative is available, including piecewise-linear `V` where `df` is a
/// step function (any point in the flat optimum region is acceptable).
///
/// # Panics
///
/// Panics if `lo > hi` or `tol <= 0`.
#[must_use]
pub fn bisect_derivative(mut df: impl FnMut(f64) -> f64, lo: f64, hi: f64, tol: f64) -> f64 {
    assert!(lo <= hi, "invalid bracket [{lo}, {hi}]");
    assert!(tol > 0.0, "tolerance must be positive");
    let mut a = lo;
    let mut b = hi;
    if df(a) >= 0.0 {
        return a; // increasing from the left edge ⇒ minimum at lo
    }
    if df(b) <= 0.0 {
        return b; // still decreasing at the right edge ⇒ minimum at hi
    }
    while b - a > tol {
        let mid = 0.5 * (a + b);
        if df(mid) < 0.0 {
            a = mid;
        } else {
            b = mid;
        }
    }
    0.5 * (a + b)
}

/// Closed-form minimizer of `½ρ(d − x)² + s·x` over `x ∈ [lo, hi]` — the
/// shape shared by the paper's μ-update (18) and by the ν-update (19) with
/// affine `V`. Equals `clamp(d − s/ρ, lo, hi)`.
///
/// # Panics
///
/// Panics if `rho <= 0` or `lo > hi`.
#[must_use]
pub fn prox_linear_quadratic(d: f64, s: f64, rho: f64, lo: f64, hi: f64) -> f64 {
    assert!(rho > 0.0, "rho must be positive");
    assert!(lo <= hi, "invalid interval [{lo}, {hi}]");
    (d - s / rho).clamp(lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn golden_finds_parabola_minimum() {
        let x = golden_section(|x| (x - 2.5) * (x - 2.5), 0.0, 10.0, 1e-8);
        assert!((x - 2.5).abs() < 1e-6);
    }

    #[test]
    fn golden_boundary_minimum() {
        let x = golden_section(|x| x, 1.0, 3.0, 1e-8);
        assert!((x - 1.0).abs() < 1e-6);
    }

    #[test]
    fn golden_degenerate_bracket() {
        assert_eq!(golden_section(|x| x * x, 2.0, 2.0, 1e-8), 2.0);
    }

    #[test]
    fn bisect_interior_root() {
        let x = bisect_derivative(|x| 2.0 * (x - 1.5), 0.0, 10.0, 1e-10);
        assert!((x - 1.5).abs() < 1e-8);
    }

    #[test]
    fn bisect_clamps_to_bounds() {
        assert_eq!(bisect_derivative(|x| 2.0 * (x + 5.0), 0.0, 1.0, 1e-10), 0.0);
        assert_eq!(bisect_derivative(|x| 2.0 * (x - 5.0), 0.0, 1.0, 1e-10), 1.0);
    }

    #[test]
    fn bisect_handles_step_derivative() {
        // Piecewise-linear convex function with a kink at 2: f' = −1 below, +3 above.
        let df = |x: f64| if x < 2.0 { -1.0 } else { 3.0 };
        let x = bisect_derivative(df, 0.0, 10.0, 1e-10);
        assert!((x - 2.0).abs() < 1e-8);
    }

    #[test]
    fn prox_matches_golden_section() {
        let (d, s, rho) = (3.0, 0.9, 0.3);
        let closed = prox_linear_quadratic(d, s, rho, 0.0, 10.0);
        let numeric = golden_section(|x| 0.5 * rho * (d - x) * (d - x) + s * x, 0.0, 10.0, 1e-10);
        assert!((closed - numeric).abs() < 1e-6);
    }

    #[test]
    fn prox_clamps() {
        assert_eq!(prox_linear_quadratic(1.0, 100.0, 1.0, 0.0, 5.0), 0.0);
        assert_eq!(prox_linear_quadratic(10.0, -100.0, 1.0, 0.0, 5.0), 5.0);
    }

    #[test]
    #[should_panic(expected = "invalid bracket")]
    fn golden_rejects_inverted_bracket() {
        let _ = golden_section(|x| x, 1.0, 0.0, 1e-8);
    }
}
