use ufc_linalg::vec_ops;

use crate::{OptError, QuadObjective, Result, SmoothObjective};

/// Result of a [`Fista`] run.
#[derive(Debug, Clone, PartialEq)]
pub struct FistaResult {
    /// The (approximate) minimizer.
    pub x: Vec<f64>,
    /// Objective value at `x`.
    pub value: f64,
    /// Iterations actually performed.
    pub iterations: usize,
    /// Final fixed-point residual `‖x − prox(x − ∇f/L)‖₂`.
    pub residual: f64,
}

/// Accelerated projected-gradient (FISTA, Beck & Teboulle 2009) for
/// minimizing a smooth convex [`QuadObjective`] over a closed convex set
/// given by its Euclidean projection.
///
/// The ADM-G λ- and a-sub-problems are exactly this shape (quadratic over a
/// simplex / capped simplex). The active-set solver gives exact answers for
/// small instances; FISTA scales to many front-ends and doubles as an
/// independent cross-check in tests.
///
/// # Example
///
/// ```
/// use ufc_opt::{Fista, QuadObjective};
/// use ufc_opt::projection::project_simplex;
///
/// # fn main() -> Result<(), ufc_opt::OptError> {
/// // min ½‖x − t‖² over the probability simplex, t = (1, 0, −1):
/// // solution is the projection of t.
/// let f = QuadObjective::diag_rank1(
///     vec![1.0; 3], 0.0, vec![0.0; 3], vec![-1.0, 0.0, 1.0], 0.0);
/// let r = Fista::new(5000, 1e-10).minimize(&f, |x| project_simplex(x, 1.0), vec![1.0/3.0; 3])?;
/// let expected = project_simplex(&[1.0, 0.0, -1.0], 1.0);
/// assert!(r.x.iter().zip(&expected).all(|(a, b)| (a - b).abs() < 1e-6));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Fista {
    max_iterations: usize,
    tolerance: f64,
}

impl Fista {
    /// Creates a solver with the given iteration cap and fixed-point
    /// tolerance.
    ///
    /// # Panics
    ///
    /// Panics if `max_iterations == 0` or `tolerance <= 0`.
    #[must_use]
    pub fn new(max_iterations: usize, tolerance: f64) -> Self {
        assert!(max_iterations > 0, "need at least one iteration");
        assert!(tolerance > 0.0, "tolerance must be positive");
        Fista {
            max_iterations,
            tolerance,
        }
    }

    /// Minimizes `f` over the set defined by `project`, starting from `x0`
    /// (which is projected first, so any point is acceptable).
    ///
    /// # Errors
    ///
    /// * [`OptError::InvalidInput`] if `x0.len() != f.dim()`.
    /// * [`OptError::MaxIterations`] if the fixed-point residual does not
    ///   reach the tolerance within the iteration cap.
    pub fn minimize(
        &self,
        f: &QuadObjective,
        mut project: impl FnMut(&[f64]) -> Vec<f64>,
        x0: Vec<f64>,
    ) -> Result<FistaResult> {
        if x0.len() != f.dim() {
            return Err(OptError::invalid(format!(
                "start point has length {} but objective dimension is {}",
                x0.len(),
                f.dim()
            )));
        }
        let l = f.lipschitz_bound().max(1e-12);
        let step = 1.0 / l;

        let mut x = project(&x0);
        let mut y = x.clone();
        let mut t = 1.0f64;
        let mut residual = f64::INFINITY;

        for iter in 0..self.max_iterations {
            // Gradient step from the extrapolated point, then project.
            let mut g = f.gradient(&y);
            vec_ops::scale(&mut g, -step);
            vec_ops::axpy(1.0, &y, &mut g);
            let x_next = project(&g);

            residual = vec_ops::dist2(&x_next, &x);
            // Scale-invariant stopping rule.
            let scale = 1.0 + vec_ops::norm2(&x_next);
            if residual <= self.tolerance * scale {
                return Ok(FistaResult {
                    value: f.value(&x_next),
                    x: x_next,
                    iterations: iter + 1,
                    residual,
                });
            }

            let t_next = 0.5 * (1.0 + (1.0 + 4.0 * t * t).sqrt());
            let beta = (t - 1.0) / t_next;
            y = x_next
                .iter()
                .zip(&x)
                .map(|(xn, xo)| xn + beta * (xn - xo))
                .collect();
            x = x_next;
            t = t_next;
        }
        Err(OptError::MaxIterations {
            iterations: self.max_iterations,
            residual,
        })
    }

    /// Backtracking FISTA for general [`SmoothObjective`]s whose gradient is
    /// only *locally* Lipschitz (e.g. quadratics augmented with a convex
    /// congestion barrier, where the curvature blows up near capacity).
    ///
    /// The step is chosen per iteration by doubling a working estimate `L`
    /// until the standard quadratic upper model holds at the candidate:
    /// `f(x⁺) ≤ f(y) + ⟨∇f(y), x⁺ − y⟩ + L/2‖x⁺ − y‖²` (Beck & Teboulle's
    /// FISTA-BT). `project` must map any point into the (effective) domain
    /// of `f` — callers with a barrier should project into a slightly
    /// shrunk set so `f` stays finite.
    ///
    /// # Errors
    ///
    /// * [`OptError::InvalidInput`] if `x0.len() != f.dim()` or the
    ///   projected start is outside the domain (`f` not finite there).
    /// * [`OptError::MaxIterations`] on no convergence.
    pub fn minimize_adaptive<F: SmoothObjective + ?Sized>(
        &self,
        f: &F,
        mut project: impl FnMut(&[f64]) -> Vec<f64>,
        x0: Vec<f64>,
    ) -> Result<FistaResult> {
        if x0.len() != f.dim() {
            return Err(OptError::invalid(format!(
                "start point has length {} but objective dimension is {}",
                x0.len(),
                f.dim()
            )));
        }
        let mut x = project(&x0);
        if !f.value(&x).is_finite() {
            return Err(OptError::invalid(
                "projected start point is outside the objective's domain",
            ));
        }
        // Working curvature estimate; monotone non-decreasing (the classic
        // FISTA-BT choice — keeping `L` from shrinking preserves the
        // accelerated convergence guarantee and avoids step oscillation
        // near the optimum).
        let mut l = f.lipschitz_bound().max(1.0);
        let mut y = x.clone();
        let mut t = 1.0f64;
        let mut residual = f64::INFINITY;

        for iter in 0..self.max_iterations {
            // The momentum extrapolation can leave the barrier's domain;
            // restart it from the last feasible iterate when that happens
            // (the standard adaptive-restart guard for constrained FISTA).
            let mut fy = f.value(&y);
            if !fy.is_finite() {
                y = x.clone();
                t = 1.0;
                fy = f.value(&y);
            }
            let g = f.gradient(&y);
            let mut x_next;
            loop {
                let mut cand = y.clone();
                vec_ops::axpy(-1.0 / l, &g, &mut cand);
                x_next = project(&cand);
                let fx = f.value(&x_next);
                let diff = vec_ops::sub(&x_next, &y);
                let model = fy + vec_ops::dot(&g, &diff) + 0.5 * l * vec_ops::dot(&diff, &diff);
                if fx.is_finite() && fx <= model + 1e-12 * (1.0 + model.abs()) {
                    break;
                }
                l *= 2.0;
                if l > 1e18 {
                    return Err(OptError::MaxIterations {
                        iterations: iter,
                        residual,
                    });
                }
            }

            residual = vec_ops::dist2(&x_next, &x);
            let scale = 1.0 + vec_ops::norm2(&x_next);
            if residual <= self.tolerance * scale {
                return Ok(FistaResult {
                    value: f.value(&x_next),
                    x: x_next,
                    iterations: iter + 1,
                    residual,
                });
            }

            let t_next = 0.5 * (1.0 + (1.0 + 4.0 * t * t).sqrt());
            let beta = (t - 1.0) / t_next;
            y = x_next
                .iter()
                .zip(&x)
                .map(|(xn, xo)| xn + beta * (xn - xo))
                .collect();
            x = x_next;
            t = t_next;
        }
        Err(OptError::MaxIterations {
            iterations: self.max_iterations,
            residual,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::projection::{project_box, project_capped_simplex, project_simplex};
    use ufc_linalg::Matrix;

    fn solver() -> Fista {
        Fista::new(20_000, 1e-11)
    }

    #[test]
    fn unconstrained_quadratic_minimum() {
        // min ½xᵀdiag(1,2)x − [1,2]ᵀx ⇒ x* = (1, 1); "projection" = identity.
        let f =
            QuadObjective::dense(Matrix::from_diag(&[1.0, 2.0]), vec![-1.0, -2.0], 0.0).unwrap();
        let r = solver()
            .minimize(&f, |x| x.to_vec(), vec![0.0, 0.0])
            .unwrap();
        assert!((r.x[0] - 1.0).abs() < 1e-7);
        assert!((r.x[1] - 1.0).abs() < 1e-7);
        assert!(r.value <= -1.499_999);
    }

    #[test]
    fn box_constrained_hits_bound() {
        // min ½(x−3)² over [0, 1] ⇒ x* = 1.
        let f = QuadObjective::diag_rank1(vec![1.0], 0.0, vec![0.0], vec![-3.0], 0.0);
        let r = solver()
            .minimize(&f, |x| project_box(x, &[0.0], &[1.0]), vec![0.5])
            .unwrap();
        assert!((r.x[0] - 1.0).abs() < 1e-8);
    }

    #[test]
    fn simplex_constrained_matches_projection() {
        let target = [0.9, 0.4, -0.1];
        let f = QuadObjective::diag_rank1(
            vec![1.0; 3],
            0.0,
            vec![0.0; 3],
            target.iter().map(|v| -v).collect(),
            0.0,
        );
        let r = solver()
            .minimize(&f, |x| project_simplex(x, 1.0), vec![0.3, 0.3, 0.4])
            .unwrap();
        let expected = project_simplex(&target, 1.0);
        assert!(vec_ops::dist2(&r.x, &expected) < 1e-7);
    }

    #[test]
    fn rank_one_coupling_on_capped_simplex() {
        // min ½xᵀ(I + 11ᵀ)x − [2,1]ᵀx over {x ≥ 0, Σx ≤ 1}.
        let f =
            QuadObjective::diag_rank1(vec![1.0, 1.0], 1.0, vec![1.0, 1.0], vec![-2.0, -1.0], 0.0);
        let r = solver()
            .minimize(&f, |x| project_capped_simplex(x, 1.0), vec![0.0, 0.0])
            .unwrap();
        // Check stationarity via the variational inequality at a few points.
        let g = f.gradient(&r.x);
        for y in [[1.0, 0.0], [0.0, 1.0], [0.0, 0.0], [0.5, 0.5]] {
            let ip: f64 = g
                .iter()
                .zip(y.iter().zip(&r.x))
                .map(|(gi, (yi, xi))| gi * (yi - xi))
                .sum();
            assert!(ip >= -1e-6, "VI violated at {y:?}: {ip}");
        }
    }

    #[test]
    fn rejects_dimension_mismatch() {
        let f = QuadObjective::diag_rank1(vec![1.0], 0.0, vec![0.0], vec![0.0], 0.0);
        assert!(matches!(
            solver().minimize(&f, |x| x.to_vec(), vec![0.0, 0.0]),
            Err(OptError::InvalidInput { .. })
        ));
    }

    #[test]
    fn reports_max_iterations() {
        let f = QuadObjective::diag_rank1(vec![1.0], 0.0, vec![0.0], vec![-100.0], 0.0);
        let tight = Fista::new(1, 1e-16);
        let err = tight.minimize(&f, |x| x.to_vec(), vec![0.0]).unwrap_err();
        assert!(matches!(err, OptError::MaxIterations { iterations: 1, .. }));
    }

    #[test]
    fn start_point_is_projected() {
        // Start far outside the simplex; still converges.
        let f = QuadObjective::diag_rank1(vec![1.0; 2], 0.0, vec![0.0; 2], vec![0.0; 2], 0.0);
        let r = solver()
            .minimize(&f, |x| project_simplex(x, 1.0), vec![100.0, -100.0])
            .unwrap();
        assert!((r.x.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }
}
