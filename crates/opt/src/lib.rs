//! Convex-optimization toolkit for the UFC reproduction.
//!
//! The paper's distributed ADM-G algorithm repeatedly solves four families of
//! convex sub-problems (per-front-end simplex-constrained QPs, per-datacenter
//! box/capped-simplex QPs, and scalar convex minimizations), and its
//! verification path needs a solver for the fully assembled problem. Because
//! mature convex-programming crates are not available, this crate implements
//! the required machinery from scratch on top of [`ufc_linalg`]:
//!
//! * [`projection`] — exact Euclidean projections onto the simplex, the
//!   capped simplex, boxes and the nonnegative orthant,
//! * [`QuadObjective`] — quadratic objectives `½xᵀQx + cᵀx` with dense or
//!   diagonal-plus-rank-one Hessians (the two forms that arise in the
//!   paper's λ- and a-sub-problems),
//! * [`Fista`] — accelerated projected-gradient for smooth convex objectives
//!   over projectable sets (fixed-step for quadratics, backtracking for
//!   general [`SmoothObjective`]s with barriers),
//! * [`ActiveSetQp`] — an exact dense active-set solver for small convex QPs
//!   with equality and inequality constraints,
//! * [`AdmmQp`] — an OSQP-style ADMM solver for larger QPs in the form
//!   `min ½xᵀPx + qᵀx  s.t.  l ≤ Ax ≤ u`,
//! * [`scalar`] — golden-section / derivative-bisection minimization of
//!   one-dimensional convex functions,
//! * [`kkt`] — KKT residual checkers used to validate solutions in tests.
//!
//! # Example: projecting a routing vector onto the load-balance simplex
//!
//! ```
//! use ufc_opt::projection::project_simplex;
//!
//! let y = project_simplex(&[0.8, 0.3, -0.2], 1.0);
//! assert!((y.iter().sum::<f64>() - 1.0).abs() < 1e-12);
//! assert!(y.iter().all(|&v| v >= 0.0));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod active_set;
mod admm_qp;
mod cache;
mod error;
mod fista;
pub mod kkt;
pub mod projection;
mod quadratic;
pub mod scalar;
mod smooth;

pub use active_set::{ActiveSetQp, QpSolution};
pub use admm_qp::{AdmmQp, AdmmQpSettings, AdmmQpSolution, AdmmWorkspace};
pub use cache::KktCache;
pub use error::OptError;
pub use fista::{Fista, FistaResult};
pub use quadratic::QuadObjective;
pub use smooth::SmoothObjective;

/// Convenience alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, OptError>;
