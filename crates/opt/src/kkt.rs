//! KKT residual checkers.
//!
//! The reproduction leans on *verifying* solutions rather than trusting any
//! single solver: tests assert that active-set, FISTA and ADMM answers all
//! satisfy the first-order conditions. This module centralizes those checks
//! so every test measures optimality the same way.

use ufc_linalg::{vec_ops, Matrix};

use crate::QuadObjective;

/// The four KKT residuals of a convex QP
/// `min f(x) s.t. A_eq x = b_eq, A_in x ≤ b_in`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KktResiduals {
    /// `‖∇f(x) + A_eqᵀ v + A_inᵀ u‖∞` — stationarity.
    pub stationarity: f64,
    /// `max(‖A_eq x − b_eq‖∞, max(A_in x − b_in)₊)` — primal feasibility.
    pub primal: f64,
    /// `max(−u)₊` — dual feasibility (inequality multipliers nonnegative).
    pub dual: f64,
    /// `max |u_i (A_in x − b_in)_i|` — complementary slackness.
    pub complementarity: f64,
}

impl KktResiduals {
    /// The largest of the four residuals.
    #[must_use]
    pub fn max(&self) -> f64 {
        self.stationarity
            .max(self.primal)
            .max(self.dual)
            .max(self.complementarity)
    }

    /// `true` when all residuals are below `tol`.
    #[must_use]
    pub fn is_optimal(&self, tol: f64) -> bool {
        self.max() <= tol
    }
}

/// Computes the KKT residuals of `(x, v, u)` for the QP
/// `min f(x) s.t. A_eq x = b_eq, A_in x ≤ b_in`.
///
/// # Panics
///
/// Panics on dimension mismatches between the arguments.
#[must_use]
#[allow(clippy::too_many_arguments)] // the QP's natural data: objective, two constraint pairs, point, two multiplier sets
pub fn qp_residuals(
    f: &QuadObjective,
    a_eq: &Matrix,
    b_eq: &[f64],
    a_in: &Matrix,
    b_in: &[f64],
    x: &[f64],
    eq_multipliers: &[f64],
    ineq_multipliers: &[f64],
) -> KktResiduals {
    assert_eq!(x.len(), f.dim(), "x dimension mismatch");
    assert_eq!(eq_multipliers.len(), a_eq.rows(), "eq multiplier mismatch");
    assert_eq!(
        ineq_multipliers.len(),
        a_in.rows(),
        "ineq multiplier mismatch"
    );

    // Stationarity.
    let mut grad = f.gradient(x);
    if a_eq.rows() > 0 {
        let at_v = a_eq.matvec_t(eq_multipliers).expect("checked shapes");
        vec_ops::axpy(1.0, &at_v, &mut grad);
    }
    if a_in.rows() > 0 {
        let at_u = a_in.matvec_t(ineq_multipliers).expect("checked shapes");
        vec_ops::axpy(1.0, &at_u, &mut grad);
    }
    let stationarity = vec_ops::norm_inf(&grad);

    // Primal feasibility.
    let mut primal = 0.0f64;
    if a_eq.rows() > 0 {
        let r = vec_ops::sub(&a_eq.matvec(x).expect("checked shapes"), b_eq);
        primal = primal.max(vec_ops::norm_inf(&r));
    }
    let mut complementarity = 0.0f64;
    if a_in.rows() > 0 {
        let ax = a_in.matvec(x).expect("checked shapes");
        for i in 0..a_in.rows() {
            let slack = ax[i] - b_in[i];
            primal = primal.max(slack.max(0.0));
            complementarity = complementarity.max((ineq_multipliers[i] * slack).abs());
        }
    }

    // Dual feasibility.
    let dual = ineq_multipliers
        .iter()
        .fold(0.0f64, |m, &u| m.max((-u).max(0.0)));

    KktResiduals {
        stationarity,
        primal,
        dual,
        complementarity,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ActiveSetQp;

    #[test]
    fn active_set_solution_passes_kkt() {
        // min ½‖x − t‖² over the simplex, verified through the checker.
        let t = [0.9, -0.1, 0.6];
        let f =
            QuadObjective::dense(Matrix::identity(3), t.iter().map(|v| -v).collect(), 0.0).unwrap();
        let a_eq = Matrix::from_rows(&[&[1.0; 3]]).unwrap();
        let a_in = Matrix::from_fn(3, 3, |i, j| if i == j { -1.0 } else { 0.0 });
        let sol = ActiveSetQp::default()
            .solve(&f, &a_eq, &[1.0], &a_in, &[0.0; 3], vec![1.0 / 3.0; 3])
            .unwrap();
        let res = qp_residuals(
            &f,
            &a_eq,
            &[1.0],
            &a_in,
            &[0.0; 3],
            &sol.x,
            &sol.eq_multipliers,
            &sol.ineq_multipliers,
        );
        assert!(res.is_optimal(1e-6), "residuals {res:?}");
    }

    #[test]
    fn detects_suboptimal_point() {
        let f = QuadObjective::dense(Matrix::identity(2), vec![-1.0, -1.0], 0.0).unwrap();
        // x = (0,0) is not the unconstrained optimum (1,1).
        let res = qp_residuals(
            &f,
            &Matrix::zeros(0, 2),
            &[],
            &Matrix::zeros(0, 2),
            &[],
            &[0.0, 0.0],
            &[],
            &[],
        );
        assert!(res.stationarity > 0.9);
        assert!(!res.is_optimal(1e-6));
    }

    #[test]
    fn detects_primal_violation_and_negative_multiplier() {
        let f = QuadObjective::dense(Matrix::identity(1), vec![0.0], 0.0).unwrap();
        let a_in = Matrix::from_rows(&[&[1.0]]).unwrap();
        // x = 2 violates x ≤ 1, and u = −1 violates dual feasibility.
        let res = qp_residuals(
            &f,
            &Matrix::zeros(0, 1),
            &[],
            &a_in,
            &[1.0],
            &[2.0],
            &[],
            &[-1.0],
        );
        assert!(res.primal >= 1.0);
        assert!(res.dual >= 1.0);
        assert!(res.complementarity >= 1.0);
    }

    #[test]
    fn max_aggregates() {
        let r = KktResiduals {
            stationarity: 0.1,
            primal: 0.5,
            dual: 0.2,
            complementarity: 0.3,
        };
        assert_eq!(r.max(), 0.5);
        assert!(r.is_optimal(0.5));
        assert!(!r.is_optimal(0.4));
    }
}
