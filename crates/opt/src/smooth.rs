//! The [`SmoothObjective`] abstraction: anything with a value, a gradient,
//! and a curvature estimate can be minimized by the projected-gradient
//! machinery.
//!
//! [`crate::QuadObjective`] implements it (its Lipschitz bound is global);
//! the queueing-aware a-sub-problem in `ufc-core` implements it with a
//! congestion barrier whose curvature is only locally bounded, paired with
//! [`crate::Fista::minimize_adaptive`]'s backtracking.

/// A differentiable convex function on `ℝⁿ` (possibly `+∞` outside an open
/// effective domain, as with barrier terms).
pub trait SmoothObjective {
    /// Problem dimension `n`.
    fn dim(&self) -> usize;

    /// Function value at `x` (may be `+∞`/non-finite outside the domain).
    fn value(&self, x: &[f64]) -> f64;

    /// Gradient at `x` (only called where [`SmoothObjective::value`] is
    /// finite).
    fn gradient(&self, x: &[f64]) -> Vec<f64>;

    /// An initial curvature (gradient-Lipschitz) estimate. For objectives
    /// with unbounded curvature, any reasonable starting guess works — the
    /// adaptive solver backtracks as needed.
    fn lipschitz_bound(&self) -> f64;
}

impl SmoothObjective for crate::QuadObjective {
    fn dim(&self) -> usize {
        self.dim()
    }

    fn value(&self, x: &[f64]) -> f64 {
        self.value(x)
    }

    fn gradient(&self, x: &[f64]) -> Vec<f64> {
        self.gradient(x)
    }

    fn lipschitz_bound(&self) -> f64 {
        self.lipschitz_bound()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::projection::project_box;
    use crate::{Fista, QuadObjective};

    /// f(x) = ½x² − log(1 − x): smooth on (−∞, 1), curvature unbounded.
    struct Barrier1D;

    impl SmoothObjective for Barrier1D {
        fn dim(&self) -> usize {
            1
        }
        fn value(&self, x: &[f64]) -> f64 {
            if x[0] >= 1.0 {
                f64::INFINITY
            } else {
                0.5 * x[0] * x[0] - (1.0 - x[0]).ln()
            }
        }
        fn gradient(&self, x: &[f64]) -> Vec<f64> {
            vec![x[0] + 1.0 / (1.0 - x[0])]
        }
        fn lipschitz_bound(&self) -> f64 {
            2.0
        }
    }

    #[test]
    fn adaptive_fista_handles_barrier() {
        // Unconstrained minimum: x + 1/(1−x) = 0 ⇒ x = (1+√… ) solve:
        // x(1−x) + 1 = 0 ⇒ −x² + x + 1 = 0 ⇒ x = (1−√5)/2 ≈ −0.618.
        let sol = Fista::new(10_000, 1e-10)
            .minimize_adaptive(
                &Barrier1D,
                |x| project_box(x, &[-10.0], &[0.999]),
                vec![0.9],
            )
            .unwrap();
        let expected = (1.0 - 5.0f64.sqrt()) / 2.0;
        assert!(
            (sol.x[0] - expected).abs() < 1e-6,
            "got {}, expected {expected}",
            sol.x[0]
        );
    }

    #[test]
    fn adaptive_matches_fixed_step_on_quadratics() {
        let f =
            QuadObjective::diag_rank1(vec![1.0, 2.0], 0.5, vec![1.0, 1.0], vec![-1.0, 0.5], 0.0);
        let fixed = Fista::new(50_000, 1e-11)
            .minimize(&f, |x| x.to_vec(), vec![0.0, 0.0])
            .unwrap();
        let adaptive = Fista::new(50_000, 1e-11)
            .minimize_adaptive(&f, |x| x.to_vec(), vec![0.0, 0.0])
            .unwrap();
        assert!(
            ufc_linalg::vec_ops::dist2(&fixed.x, &adaptive.x) < 1e-6,
            "fixed {:?} vs adaptive {:?}",
            fixed.x,
            adaptive.x
        );
    }

    #[test]
    fn adaptive_rejects_out_of_domain_start() {
        // Projection keeps x at 1.5 where the barrier is infinite.
        let err = Fista::new(100, 1e-8)
            .minimize_adaptive(&Barrier1D, |x| x.to_vec(), vec![1.5])
            .unwrap_err();
        assert!(matches!(err, crate::OptError::InvalidInput { .. }));
    }
}
