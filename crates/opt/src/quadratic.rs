use ufc_linalg::{vec_ops, Matrix};

use crate::{OptError, Result};

/// A convex quadratic objective `f(x) = ½ xᵀ Q x + cᵀ x + k`.
///
/// Two Hessian representations are supported because both shapes occur in
/// the paper's sub-problems:
///
/// * **Dense** — arbitrary symmetric PSD `Q` (used by the centralized
///   reference QP and by tests),
/// * **Diagonal + rank-one** — `Q = diag(d) + γ·u uᵀ`. The λ-minimization
///   (17) has `Q = ρI + (2w/A_i)·L Lᵀ` and the a-minimization (20) has
///   `Q = ρI + ρβ²·1 1ᵀ`, so this form covers both without materializing a
///   matrix, and gives an `O(n)` matvec and a closed-form Lipschitz bound.
///
/// # Example
///
/// ```
/// use ufc_opt::QuadObjective;
///
/// // f(x) = ½‖x‖² + [1,1]ᵀx  ⇒  ∇f(x) = x + 1
/// let f = QuadObjective::diag_rank1(vec![1.0, 1.0], 0.0, vec![0.0, 0.0], vec![1.0, 1.0], 0.0);
/// assert_eq!(f.gradient(&[2.0, 3.0]), vec![3.0, 4.0]);
/// ```
#[derive(Debug, Clone)]
pub struct QuadObjective {
    hessian: Hessian,
    linear: Vec<f64>,
    constant: f64,
}

#[derive(Debug, Clone)]
enum Hessian {
    Dense(Matrix),
    DiagRank1 {
        diag: Vec<f64>,
        gamma: f64,
        u: Vec<f64>,
    },
}

impl QuadObjective {
    /// Creates an objective with a dense symmetric Hessian.
    ///
    /// # Errors
    ///
    /// Returns [`OptError::InvalidInput`] if `q` is not square, is asymmetric
    /// beyond `1e-9`, or its size disagrees with `c`.
    pub fn dense(q: Matrix, c: Vec<f64>, constant: f64) -> Result<Self> {
        if !q.is_square() {
            return Err(OptError::invalid(format!(
                "dense hessian must be square, got {}x{}",
                q.rows(),
                q.cols()
            )));
        }
        if q.rows() != c.len() {
            return Err(OptError::invalid(format!(
                "hessian is {}x{} but linear term has length {}",
                q.rows(),
                q.cols(),
                c.len()
            )));
        }
        if !q.is_symmetric(1e-9 * (1.0 + q.norm_max())) {
            return Err(OptError::invalid("dense hessian is not symmetric"));
        }
        Ok(QuadObjective {
            hessian: Hessian::Dense(q),
            linear: c,
            constant,
        })
    }

    /// Creates an objective with Hessian `diag(d) + gamma·u uᵀ`.
    ///
    /// Convexity requires `d ≥ 0` and `gamma ≥ 0`; this is debug-asserted.
    ///
    /// # Panics
    ///
    /// Panics if `diag`, `u` and `c` lengths disagree.
    #[must_use]
    pub fn diag_rank1(diag: Vec<f64>, gamma: f64, u: Vec<f64>, c: Vec<f64>, constant: f64) -> Self {
        assert_eq!(diag.len(), u.len(), "diag/u length mismatch");
        assert_eq!(diag.len(), c.len(), "diag/c length mismatch");
        debug_assert!(gamma >= 0.0, "rank-one coefficient must be nonnegative");
        debug_assert!(
            diag.iter().all(|&d| d >= 0.0),
            "diagonal must be nonnegative for convexity"
        );
        QuadObjective {
            hessian: Hessian::DiagRank1 { diag, gamma, u },
            linear: c,
            constant,
        }
    }

    /// Problem dimension.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.linear.len()
    }

    /// Hessian–vector product `Q x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != dim()`.
    #[must_use]
    pub fn hess_vec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.dim(), "hess_vec dimension mismatch");
        match &self.hessian {
            Hessian::Dense(q) => q.matvec(x).expect("validated at construction"),
            Hessian::DiagRank1 { diag, gamma, u } => {
                let ux = vec_ops::dot(u, x) * *gamma;
                diag.iter()
                    .zip(x)
                    .zip(u)
                    .map(|((d, xi), ui)| d * xi + ux * ui)
                    .collect()
            }
        }
    }

    /// Hessian–vector product `Q x` written into `out` without allocating.
    ///
    /// Performs the exact same floating-point operations as
    /// [`QuadObjective::hess_vec`] (bit-identical results); only the
    /// destination differs.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != dim()` or `out.len() != dim()`.
    pub fn hess_vec_into(&self, x: &[f64], out: &mut [f64]) {
        assert_eq!(x.len(), self.dim(), "hess_vec dimension mismatch");
        assert_eq!(out.len(), self.dim(), "hess_vec output length mismatch");
        match &self.hessian {
            Hessian::Dense(q) => {
                for (i, oi) in out.iter_mut().enumerate() {
                    *oi = vec_ops::dot(q.row(i), x);
                }
            }
            Hessian::DiagRank1 { diag, gamma, u } => {
                let ux = vec_ops::dot(u, x) * *gamma;
                for (oi, ((d, xi), ui)) in out.iter_mut().zip(diag.iter().zip(x).zip(u)) {
                    *oi = d * xi + ux * ui;
                }
            }
        }
    }

    /// Objective value `½xᵀQx + cᵀx + k`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != dim()`.
    #[must_use]
    pub fn value(&self, x: &[f64]) -> f64 {
        let qx = self.hess_vec(x);
        0.5 * vec_ops::dot(x, &qx) + vec_ops::dot(&self.linear, x) + self.constant
    }

    /// Gradient `Qx + c`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != dim()`.
    #[must_use]
    pub fn gradient(&self, x: &[f64]) -> Vec<f64> {
        let mut g = self.hess_vec(x);
        vec_ops::axpy(1.0, &self.linear, &mut g);
        g
    }

    /// Gradient `Qx + c` written into `out` without allocating.
    ///
    /// Same floating-point operations as [`QuadObjective::gradient`]
    /// (bit-identical results); used by per-iteration hot loops that reuse a
    /// gradient buffer.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != dim()` or `out.len() != dim()`.
    pub fn gradient_into(&self, x: &[f64], out: &mut [f64]) {
        self.hess_vec_into(x, out);
        vec_ops::axpy(1.0, &self.linear, out);
    }

    /// Borrows the linear term `c`.
    #[must_use]
    pub fn linear(&self) -> &[f64] {
        &self.linear
    }

    /// Borrows the `(diag, gamma, u)` parts of a diagonal-plus-rank-one
    /// Hessian `diag(d) + γ·u uᵀ`, or `None` for dense Hessians.
    ///
    /// The active-set solver's rank-1 fast KKT path
    /// ([`crate::ActiveSetQp::with_rank1_kkt`]) uses this to solve working-set
    /// systems in `O(n)` via Sherman–Morrison instead of materializing and
    /// factoring a dense KKT matrix.
    #[must_use]
    pub fn diag_rank1_parts(&self) -> Option<(&[f64], f64, &[f64])> {
        match &self.hessian {
            Hessian::DiagRank1 { diag, gamma, u } => Some((diag, *gamma, u)),
            Hessian::Dense(_) => None,
        }
    }

    /// Overwrites the linear term `c` in place, leaving the Hessian intact.
    ///
    /// This is the hot-path mutator used by the ADM-G solver workspaces: the
    /// sub-problem Hessians are constant across iterations while the linear
    /// term changes every iteration, so retargeting `c` avoids rebuilding the
    /// objective (and invalidating any cached factorization keyed on it).
    ///
    /// # Panics
    ///
    /// Panics if `c.len() != dim()`.
    pub fn set_linear(&mut self, c: &[f64]) {
        assert_eq!(c.len(), self.linear.len(), "linear term length mismatch");
        self.linear.copy_from_slice(c);
    }

    /// Overwrites the rank-one part of a diagonal-plus-rank-one Hessian in
    /// place, borrowing `u` instead of taking ownership.
    ///
    /// Used by sub-problem loops that sweep over blocks sharing the same
    /// diagonal `ρI` but block-specific rank-one terms: retargeting reuses
    /// the existing buffers instead of cloning a latency vector per block.
    ///
    /// # Panics
    ///
    /// Panics if the Hessian is dense or `u.len() != dim()`.
    pub fn set_rank1(&mut self, gamma: f64, u: &[f64]) {
        match &mut self.hessian {
            Hessian::DiagRank1 {
                gamma: g, u: uu, ..
            } => {
                assert_eq!(u.len(), uu.len(), "rank-one term length mismatch");
                debug_assert!(gamma >= 0.0, "rank-one coefficient must be nonnegative");
                *g = gamma;
                uu.copy_from_slice(u);
            }
            Hessian::Dense(_) => panic!("set_rank1 requires a diagonal-plus-rank-one Hessian"),
        }
    }

    /// An upper bound on the largest Hessian eigenvalue — the gradient
    /// Lipschitz constant used to set FISTA's step size.
    ///
    /// For the diagonal-plus-rank-one form the bound `max(d) + γ‖u‖²` is
    /// closed-form and tight enough; dense Hessians use 50 power-method
    /// iterations with a 1.01 safety factor.
    #[must_use]
    pub fn lipschitz_bound(&self) -> f64 {
        match &self.hessian {
            Hessian::DiagRank1 { diag, gamma, u } => {
                let dmax = diag.iter().fold(0.0f64, |m, &d| m.max(d));
                let un = vec_ops::norm2(u);
                dmax + gamma * un * un
            }
            Hessian::Dense(q) => {
                let n = q.rows();
                if n == 0 {
                    return 0.0;
                }
                let mut v = vec![1.0 / (n as f64).sqrt(); n];
                let mut lambda = 0.0;
                for _ in 0..50 {
                    let w = q.matvec(&v).expect("square by construction");
                    let norm = vec_ops::norm2(&w);
                    if norm == 0.0 {
                        return 0.0;
                    }
                    lambda = norm;
                    v = w;
                    vec_ops::scale(&mut v, 1.0 / norm);
                }
                lambda * 1.01
            }
        }
    }

    /// Materializes the Hessian as a dense matrix (for the exact active-set
    /// path and for tests).
    #[must_use]
    pub fn dense_hessian(&self) -> Matrix {
        match &self.hessian {
            Hessian::Dense(q) => q.clone(),
            Hessian::DiagRank1 { diag, gamma, u } => {
                let n = diag.len();
                Matrix::from_fn(n, n, |i, j| {
                    let base = if i == j { diag[i] } else { 0.0 };
                    base + gamma * u[i] * u[j]
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_dense() -> QuadObjective {
        let q = Matrix::from_rows(&[&[2.0, 0.5], &[0.5, 1.0]]).unwrap();
        QuadObjective::dense(q, vec![-1.0, 1.0], 3.0).unwrap()
    }

    #[test]
    fn dense_value_and_gradient() {
        let f = sample_dense();
        // f(0) = constant.
        assert_eq!(f.value(&[0.0, 0.0]), 3.0);
        assert_eq!(f.gradient(&[0.0, 0.0]), vec![-1.0, 1.0]);
        // f(x) at x = (1, 2): ½(2 + 2*0.5*2 + 4) + (-1 + 2) + 3 = ½*8 + 1 + 3 = 8.
        assert!((f.value(&[1.0, 2.0]) - 8.0).abs() < 1e-12);
    }

    #[test]
    fn dense_rejects_bad_inputs() {
        let q = Matrix::zeros(2, 3);
        assert!(QuadObjective::dense(q, vec![0.0; 2], 0.0).is_err());
        let q = Matrix::from_rows(&[&[1.0, 2.0], &[0.0, 1.0]]).unwrap();
        assert!(QuadObjective::dense(q, vec![0.0; 2], 0.0).is_err());
        let q = Matrix::identity(2);
        assert!(QuadObjective::dense(q, vec![0.0; 3], 0.0).is_err());
    }

    #[test]
    fn diag_rank1_matches_dense_equivalent() {
        let diag = vec![1.0, 2.0, 0.5];
        let u = vec![1.0, -1.0, 2.0];
        let gamma = 0.7;
        let c = vec![0.1, 0.2, 0.3];
        let f1 = QuadObjective::diag_rank1(diag.clone(), gamma, u.clone(), c.clone(), 0.0);
        let f2 = QuadObjective::dense(f1.dense_hessian(), c, 0.0).unwrap();
        let x = [0.3, -1.2, 0.8];
        assert!((f1.value(&x) - f2.value(&x)).abs() < 1e-12);
        let g1 = f1.gradient(&x);
        let g2 = f2.gradient(&x);
        assert!(vec_ops::dist2(&g1, &g2) < 1e-12);
    }

    #[test]
    fn retargeting_matches_fresh_construction() {
        let mut f = QuadObjective::diag_rank1(vec![0.3; 3], 0.0, vec![0.0; 3], vec![0.0; 3], 0.0);
        f.set_rank1(0.7, &[1.0, -1.0, 2.0]);
        f.set_linear(&[0.1, 0.2, 0.3]);
        let fresh = QuadObjective::diag_rank1(
            vec![0.3; 3],
            0.7,
            vec![1.0, -1.0, 2.0],
            vec![0.1, 0.2, 0.3],
            0.0,
        );
        let x = [0.3, -1.2, 0.8];
        assert_eq!(f.value(&x).to_bits(), fresh.value(&x).to_bits());
        assert_eq!(f.gradient(&x), fresh.gradient(&x));
    }

    #[test]
    fn lipschitz_bound_dominates_true_eigenvalue() {
        // Q = I + 1·uuᵀ with u = (3, 4): λmax = 1 + 25 = 26.
        let f = QuadObjective::diag_rank1(vec![1.0, 1.0], 1.0, vec![3.0, 4.0], vec![0.0, 0.0], 0.0);
        let l = f.lipschitz_bound();
        assert!(l >= 26.0 - 1e-9);
        assert!(l <= 26.0 + 1e-9);
    }

    #[test]
    fn dense_lipschitz_via_power_method() {
        let q = Matrix::from_diag(&[1.0, 5.0, 3.0]);
        let f = QuadObjective::dense(q, vec![0.0; 3], 0.0).unwrap();
        let l = f.lipschitz_bound();
        assert!((5.0..=5.2).contains(&l), "power method estimate {l} off");
    }

    #[test]
    fn gradient_is_derivative_of_value() {
        let f = sample_dense();
        let x = [0.7, -0.4];
        let g = f.gradient(&x);
        let h = 1e-6;
        for i in 0..2 {
            let mut xp = x;
            xp[i] += h;
            let mut xm = x;
            xm[i] -= h;
            let fd = (f.value(&xp) - f.value(&xm)) / (2.0 * h);
            assert!((fd - g[i]).abs() < 1e-5, "coordinate {i}: {fd} vs {}", g[i]);
        }
    }
}
