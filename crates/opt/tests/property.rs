//! Property-based tests for the convex-optimization toolkit.
//!
//! The central invariants: projections satisfy feasibility, idempotence and
//! the variational inequality; and the three QP solvers (active-set, FISTA,
//! ADMM) agree with each other and pass the KKT checker on randomly generated
//! convex instances shaped like the paper's sub-problems.

use proptest::prelude::*;
use ufc_linalg::{vec_ops, Matrix};
use ufc_opt::projection::{project_box, project_capped_simplex, project_simplex};
use ufc_opt::{kkt, ActiveSetQp, AdmmQp, Fista, KktCache, QuadObjective};

fn vec_in(n: usize, lo: f64, hi: f64) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(lo..hi, n)
}

proptest! {
    #[test]
    fn simplex_projection_invariants(x in vec_in(6, -5.0, 5.0), s in 0.0f64..10.0) {
        let p = project_simplex(&x, s);
        // Feasibility.
        prop_assert!((p.iter().sum::<f64>() - s).abs() < 1e-9 * (1.0 + s));
        prop_assert!(p.iter().all(|&v| v >= -1e-12));
        // Idempotence.
        let pp = project_simplex(&p, s);
        prop_assert!(vec_ops::dist2(&p, &pp) < 1e-9 * (1.0 + s));
        // Non-expansiveness versus a feasible reference point.
        let uniform = vec![s / 6.0; 6];
        prop_assert!(vec_ops::dist2(&p, &uniform) <= vec_ops::dist2(&x, &uniform) + 1e-9);
    }

    #[test]
    fn simplex_projection_order_preserving(x in vec_in(5, -3.0, 3.0)) {
        // Projection preserves the coordinate ordering: x_i ≥ x_j ⇒ p_i ≥ p_j.
        let p = project_simplex(&x, 1.0);
        for i in 0..5 {
            for j in 0..5 {
                if x[i] >= x[j] {
                    prop_assert!(p[i] >= p[j] - 1e-12);
                }
            }
        }
    }

    #[test]
    fn capped_simplex_invariants(x in vec_in(5, -4.0, 4.0), cap in 0.0f64..6.0) {
        let p = project_capped_simplex(&x, cap);
        prop_assert!(p.iter().sum::<f64>() <= cap + 1e-9);
        prop_assert!(p.iter().all(|&v| v >= -1e-12));
        let pp = project_capped_simplex(&p, cap);
        prop_assert!(vec_ops::dist2(&p, &pp) < 1e-9);
    }

    #[test]
    fn box_projection_invariants(x in vec_in(4, -10.0, 10.0), w in vec_in(4, 0.0, 3.0)) {
        let lo = vec![-1.0; 4];
        let hi: Vec<f64> = w.iter().map(|v| -1.0 + v).collect();
        let p = project_box(&x, &lo, &hi);
        for i in 0..4 {
            prop_assert!(p[i] >= lo[i] && p[i] <= hi[i]);
        }
        // Components already inside are untouched.
        for i in 0..4 {
            if x[i] >= lo[i] && x[i] <= hi[i] {
                prop_assert_eq!(p[i], x[i]);
            }
        }
    }

    /// Active-set and FISTA agree on the λ-sub-problem shape:
    /// rank-one + diagonal Hessian over a simplex (paper Eq. (17)).
    #[test]
    fn solvers_agree_on_lambda_subproblem(
        latencies in vec_in(4, 0.005, 0.05),
        c in vec_in(4, -2.0, 2.0),
        arrival in 0.5f64..5.0,
    ) {
        let rho = 0.3;
        let w_over_a = 2.0 * 10.0 / arrival;
        let f = QuadObjective::diag_rank1(vec![rho; 4], w_over_a, latencies, c, 0.0);
        let a_eq = Matrix::from_rows(&[&[1.0; 4]]).unwrap();
        let a_in = Matrix::from_fn(4, 4, |i, j| if i == j { -1.0 } else { 0.0 });
        let start = vec![arrival / 4.0; 4];

        let exact = ActiveSetQp::default()
            .solve(&f, &a_eq, &[arrival], &a_in, &[0.0; 4], start.clone())
            .unwrap();
        let res = kkt::qp_residuals(
            &f, &a_eq, &[arrival], &a_in, &[0.0; 4],
            &exact.x, &exact.eq_multipliers, &exact.ineq_multipliers,
        );
        prop_assert!(res.is_optimal(1e-5), "KKT residuals {res:?}");

        let fista = Fista::new(100_000, 1e-12)
            .minimize(&f, |x| project_simplex(x, arrival), start)
            .unwrap();
        prop_assert!(
            (exact.value - fista.value).abs() <= 1e-5 * (1.0 + exact.value.abs()),
            "values differ: {} vs {}", exact.value, fista.value
        );
    }

    /// ADMM-QP matches the active-set answer on random strictly convex QPs
    /// with an equality row and bounds.
    #[test]
    fn admm_matches_active_set(
        diag in vec_in(3, 0.5, 3.0),
        q in vec_in(3, -2.0, 2.0),
        total in 0.5f64..3.0,
    ) {
        let p = Matrix::from_diag(&diag);
        // rows: Σx = total; x ≥ 0 (as l = 0, u = ∞).
        let mut a = Matrix::zeros(4, 3);
        for j in 0..3 { a[(0, j)] = 1.0; }
        for i in 0..3 { a[(1 + i, i)] = 1.0; }
        let l = vec![total, 0.0, 0.0, 0.0];
        let u = vec![total, f64::INFINITY, f64::INFINITY, f64::INFINITY];
        let admm = AdmmQp::default().solve(&p, &q, &a, &l, &u).unwrap();

        let f = QuadObjective::dense(p, q.clone(), 0.0).unwrap();
        let a_eq = Matrix::from_rows(&[&[1.0; 3]]).unwrap();
        let a_in = Matrix::from_fn(3, 3, |i, j| if i == j { -1.0 } else { 0.0 });
        let exact = ActiveSetQp::default()
            .solve(&f, &a_eq, &[total], &a_in, &[0.0; 3], vec![total / 3.0; 3])
            .unwrap();
        prop_assert!(
            (admm.value - exact.value).abs() <= 1e-4 * (1.0 + exact.value.abs()),
            "admm {} vs exact {}", admm.value, exact.value
        );
    }

    /// Cached-factorization QP solves match fresh-factorization solves to
    /// 1e-12 (they are in fact bit-identical — the cache is a pure memo).
    /// Exercised on both sub-problem shapes: the simplex λ-QP and the
    /// capped-simplex a-QP, with a sequence of linear terms sharing one
    /// cache, like successive ADM-G iterations.
    #[test]
    fn cached_qp_solves_match_fresh(
        latencies in vec_in(4, 0.005, 0.05),
        c1 in vec_in(4, -2.0, 2.0),
        c2 in vec_in(4, -2.0, 2.0),
        arrival in 0.5f64..5.0,
        cap in 0.5f64..3.0,
    ) {
        let rho = 0.3;
        // λ shape: simplex with equality row.
        let a_eq = Matrix::from_rows(&[&[1.0; 4]]).unwrap();
        let a_in = Matrix::from_fn(4, 4, |i, j| if i == j { -1.0 } else { 0.0 });
        let mut cache = KktCache::default();
        for c in [&c1, &c2] {
            let f = QuadObjective::diag_rank1(
                vec![rho; 4], 2.0 * 10.0 / arrival, latencies.clone(), c.clone(), 0.0,
            );
            let start = vec![arrival / 4.0; 4];
            let fresh = ActiveSetQp::default()
                .solve(&f, &a_eq, &[arrival], &a_in, &[0.0; 4], start.clone())
                .unwrap();
            let cached = ActiveSetQp::default()
                .solve_with_cache(&f, &a_eq, &[arrival], &a_in, &[0.0; 4], start, &mut cache)
                .unwrap();
            prop_assert!(vec_ops::norm_inf(&vec_ops::sub(&fresh.x, &cached.x)) <= 1e-12);
            prop_assert!((fresh.value - cached.value).abs() <= 1e-12 * (1.0 + fresh.value.abs()));
            prop_assert_eq!(fresh.iterations, cached.iterations);
        }
        // a shape: capped simplex, inequality-only.
        let beta = 0.12;
        let mut a_in2 = Matrix::zeros(5, 4);
        let mut b_in2 = vec![0.0; 5];
        for i in 0..4 { a_in2[(i, i)] = -1.0; }
        for j in 0..4 { a_in2[(4, j)] = 1.0; }
        b_in2[4] = cap;
        let mut cache2 = KktCache::default();
        for c in [&c1, &c2] {
            let f = QuadObjective::diag_rank1(
                vec![rho; 4], rho * beta * beta, vec![1.0; 4], c.clone(), 0.0,
            );
            let fresh = ActiveSetQp::default()
                .solve(&f, &Matrix::zeros(0, 4), &[], &a_in2, &b_in2, vec![0.0; 4])
                .unwrap();
            let cached = ActiveSetQp::default()
                .solve_with_cache(
                    &f, &Matrix::zeros(0, 4), &[], &a_in2, &b_in2, vec![0.0; 4], &mut cache2,
                )
                .unwrap();
            prop_assert!(vec_ops::norm_inf(&vec_ops::sub(&fresh.x, &cached.x)) <= 1e-12);
            prop_assert_eq!(fresh.iterations, cached.iterations);
        }
    }

    /// The rank-1 fast KKT path agrees with the dense refactorization path
    /// on both sub-problem shapes, to a tolerance gate — and *bitwise* when
    /// the gate demands exactness, i.e. whenever the structure prevents the
    /// fast path from engaging (dense Hessian), where enabling the knob
    /// must not change a single bit.
    #[test]
    fn rank1_fast_solve_matches_dense_refactorization(
        latencies in vec_in(4, 0.005, 0.05),
        c in vec_in(4, -2.0, 2.0),
        arrival in 0.5f64..5.0,
        cap in 0.5f64..3.0,
    ) {
        let rho = 0.3;
        // λ shape: rank-1 + diagonal over the simplex.
        let a_eq = Matrix::from_rows(&[&[1.0; 4]]).unwrap();
        let a_in = Matrix::from_fn(4, 4, |i, j| if i == j { -1.0 } else { 0.0 });
        let f = QuadObjective::diag_rank1(
            vec![rho; 4], 2.0 * 10.0 / arrival, latencies.clone(), c.clone(), 0.0,
        );
        let start = vec![arrival / 4.0; 4];
        let dense = ActiveSetQp::default()
            .solve(&f, &a_eq, &[arrival], &a_in, &[0.0; 4], start.clone())
            .unwrap();
        let fast = ActiveSetQp::default()
            .with_rank1_kkt(true)
            .solve(&f, &a_eq, &[arrival], &a_in, &[0.0; 4], start.clone())
            .unwrap();
        prop_assert!(
            vec_ops::norm_inf(&vec_ops::sub(&fast.x, &dense.x)) <= 1e-6 * (1.0 + arrival),
            "λ shape: {:?} vs {:?}", fast.x, dense.x
        );
        let res = kkt::qp_residuals(
            &f, &a_eq, &[arrival], &a_in, &[0.0; 4],
            &fast.x, &fast.eq_multipliers, &fast.ineq_multipliers,
        );
        prop_assert!(res.is_optimal(1e-5), "λ shape KKT residuals {res:?}");

        // a shape: capped simplex, inequality-only.
        let beta = 0.12;
        let mut a_in2 = Matrix::zeros(5, 4);
        let mut b_in2 = vec![0.0; 5];
        for i in 0..4 { a_in2[(i, i)] = -1.0; }
        for j in 0..4 { a_in2[(4, j)] = 1.0; }
        b_in2[4] = cap;
        let f2 = QuadObjective::diag_rank1(
            vec![rho; 4], rho * beta * beta, vec![1.0; 4], c.clone(), 0.0,
        );
        let dense2 = ActiveSetQp::default()
            .solve(&f2, &Matrix::zeros(0, 4), &[], &a_in2, &b_in2, vec![0.0; 4])
            .unwrap();
        let fast2 = ActiveSetQp::default()
            .with_rank1_kkt(true)
            .solve(&f2, &Matrix::zeros(0, 4), &[], &a_in2, &b_in2, vec![0.0; 4])
            .unwrap();
        prop_assert!(
            vec_ops::norm_inf(&vec_ops::sub(&fast2.x, &dense2.x)) <= 1e-6 * (1.0 + cap),
            "a shape: {:?} vs {:?}", fast2.x, dense2.x
        );

        // Exactness gate: with a dense Hessian the fast path cannot engage,
        // and the knob must be bitwise inert.
        let fd = QuadObjective::dense(f.dense_hessian(), c, 0.0).unwrap();
        let off = ActiveSetQp::default()
            .solve(&fd, &a_eq, &[arrival], &a_in, &[0.0; 4], start.clone())
            .unwrap();
        let on = ActiveSetQp::default()
            .with_rank1_kkt(true)
            .solve(&fd, &a_eq, &[arrival], &a_in, &[0.0; 4], start)
            .unwrap();
        prop_assert_eq!(off.x, on.x);
        prop_assert_eq!(off.value.to_bits(), on.value.to_bits());
        prop_assert_eq!(off.iterations, on.iterations);
    }

    /// FISTA monotonically improves over the projected start value.
    #[test]
    fn fista_never_worse_than_start(
        c in vec_in(4, -1.0, 1.0),
        s in 0.5f64..2.0,
    ) {
        let f = QuadObjective::diag_rank1(vec![1.0; 4], 0.5, vec![1.0; 4], c, 0.0);
        let start = vec![s / 4.0; 4];
        let r = Fista::new(10_000, 1e-10)
            .minimize(&f, |x| project_simplex(x, s), start.clone())
            .unwrap();
        prop_assert!(r.value <= f.value(&start) + 1e-9);
    }
}
