//! Property-based tests for the dense linear-algebra kernel.
//!
//! Strategy: generate well-conditioned random matrices (via `M Mᵀ + δI` for
//! SPD, or diagonally dominant for general LU) and check the algebraic
//! identities that the downstream optimization code relies on.

use proptest::prelude::*;
use ufc_linalg::{vec_ops, Cholesky, Ldlt, Lu, Matrix};

/// Strategy: vector of `n` floats in [-5, 5].
fn vec_strategy(n: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-5.0f64..5.0, n)
}

/// Strategy: (n, row-major entries) for an n×n matrix, n in 1..=6.
fn square_entries() -> impl Strategy<Value = (usize, Vec<f64>)> {
    (1usize..=6).prop_flat_map(|n| (Just(n), proptest::collection::vec(-3.0f64..3.0, n * n)))
}

fn to_matrix(n: usize, data: &[f64]) -> Matrix {
    Matrix::from_fn(n, n, |i, j| data[i * n + j])
}

/// SPD matrix built as `M Mᵀ + I`.
fn spd_from(n: usize, data: &[f64]) -> Matrix {
    let m = to_matrix(n, data);
    let mut g = m.matmul(&m.transpose()).unwrap();
    g.add_diagonal(1.0);
    g
}

/// Strictly diagonally dominant matrix — always invertible.
fn diag_dominant_from(n: usize, data: &[f64]) -> Matrix {
    let mut m = to_matrix(n, data);
    for i in 0..n {
        let off: f64 = (0..n).filter(|&j| j != i).map(|j| m[(i, j)].abs()).sum();
        let sign = if m[(i, i)] >= 0.0 { 1.0 } else { -1.0 };
        m[(i, i)] = sign * (off + 1.0);
    }
    m
}

proptest! {
    #[test]
    fn cholesky_solve_residual((n, data) in square_entries(), seed in 0u64..1000) {
        let a = spd_from(n, &data);
        let b: Vec<f64> = (0..n).map(|i| ((seed + i as u64) % 7) as f64 - 3.0).collect();
        let x = Cholesky::factor(&a).unwrap().solve(&b).unwrap();
        let r = a.matvec(&x).unwrap();
        prop_assert!(vec_ops::dist2(&r, &b) <= 1e-7 * (1.0 + vec_ops::norm2(&b)));
    }

    #[test]
    fn cholesky_reconstructs((n, data) in square_entries()) {
        let a = spd_from(n, &data);
        let c = Cholesky::factor(&a).unwrap();
        let llt = c.l().matmul(&c.l().transpose()).unwrap();
        prop_assert!(llt.sub(&a).unwrap().norm_max() <= 1e-8 * (1.0 + a.norm_max()));
    }

    #[test]
    fn ldlt_matches_cholesky_on_spd((n, data) in square_entries()) {
        let a = spd_from(n, &data);
        let b: Vec<f64> = (0..n).map(|i| i as f64 - 1.0).collect();
        let x1 = Cholesky::factor(&a).unwrap().solve(&b).unwrap();
        let x2 = Ldlt::factor(&a).unwrap().solve(&b).unwrap();
        prop_assert!(vec_ops::dist2(&x1, &x2) <= 1e-7 * (1.0 + vec_ops::norm2(&x1)));
    }

    #[test]
    fn lu_solve_residual((n, data) in square_entries()) {
        let a = diag_dominant_from(n, &data);
        let b: Vec<f64> = (0..n).map(|i| (i as f64) * 0.7 - 1.0).collect();
        let x = Lu::factor(&a).unwrap().solve(&b).unwrap();
        let r = a.matvec(&x).unwrap();
        prop_assert!(vec_ops::dist2(&r, &b) <= 1e-8 * (1.0 + vec_ops::norm2(&b)));
    }

    #[test]
    fn lu_det_multiplicative((n, d1) in square_entries(), seed in 0u64..100) {
        let a = diag_dominant_from(n, &d1);
        let d2: Vec<f64> = d1.iter().map(|v| v + seed as f64 * 0.01).collect();
        let b = diag_dominant_from(n, &d2);
        let ab = a.matmul(&b).unwrap();
        let det_ab = Lu::factor(&ab).unwrap().det();
        let det_a = Lu::factor(&a).unwrap().det();
        let det_b = Lu::factor(&b).unwrap().det();
        let scale = det_ab.abs().max(1.0);
        prop_assert!((det_ab - det_a * det_b).abs() <= 1e-6 * scale);
    }

    #[test]
    fn matvec_linear((n, data) in square_entries(), alpha in -3.0f64..3.0) {
        let a = to_matrix(n, &data);
        let x = vec![1.0; n];
        let y: Vec<f64> = (0..n).map(|i| i as f64).collect();
        // A(αx + y) = αAx + Ay
        let axy: Vec<f64> = x.iter().zip(&y).map(|(xi, yi)| alpha * xi + yi).collect();
        let lhs = a.matvec(&axy).unwrap();
        let mut rhs = a.matvec(&y).unwrap();
        vec_ops::axpy(alpha, &a.matvec(&x).unwrap(), &mut rhs);
        prop_assert!(vec_ops::dist2(&lhs, &rhs) <= 1e-9 * (1.0 + vec_ops::norm2(&rhs)));
    }

    #[test]
    fn transpose_respects_dot((n, data) in square_entries()) {
        let a = to_matrix(n, &data);
        let x: Vec<f64> = (0..n).map(|i| 0.5 * i as f64 - 1.0).collect();
        let y: Vec<f64> = (0..n).map(|i| 1.0 - 0.3 * i as f64).collect();
        // ⟨Ax, y⟩ = ⟨x, Aᵀy⟩
        let lhs = vec_ops::dot(&a.matvec(&x).unwrap(), &y);
        let rhs = vec_ops::dot(&x, &a.matvec_t(&y).unwrap());
        prop_assert!((lhs - rhs).abs() <= 1e-9 * (1.0 + lhs.abs()));
    }

    #[test]
    fn gram_is_psd((n, data) in square_entries(), v in vec_strategy(6)) {
        let a = to_matrix(n, &data);
        let g = a.gram();
        let x = &v[..n];
        let q = vec_ops::dot(x, &g.matvec(x).unwrap());
        prop_assert!(q >= -1e-9 * (1.0 + g.norm_max()));
    }

    #[test]
    fn norm_triangle_inequality(x in vec_strategy(5), y in vec_strategy(5)) {
        let s = vec_ops::add(&x, &y);
        prop_assert!(vec_ops::norm2(&s) <= vec_ops::norm2(&x) + vec_ops::norm2(&y) + 1e-12);
        prop_assert!(vec_ops::norm1(&s) <= vec_ops::norm1(&x) + vec_ops::norm1(&y) + 1e-12);
        prop_assert!(vec_ops::norm_inf(&s) <= vec_ops::norm_inf(&x) + vec_ops::norm_inf(&y) + 1e-12);
    }

    #[test]
    fn cauchy_schwarz(x in vec_strategy(5), y in vec_strategy(5)) {
        let lhs = vec_ops::dot(&x, &y).abs();
        let rhs = vec_ops::norm2(&x) * vec_ops::norm2(&y);
        prop_assert!(lhs <= rhs + 1e-9);
    }
}
