//! Dense linear-algebra kernel for the UFC reproduction.
//!
//! The UFC maximization problem and its ADM-G solver only ever touch small,
//! dense systems (the Gaussian back-substitution matrix, per-iteration KKT
//! systems inside the QP sub-solvers, and the centralized reference QP), so
//! this crate deliberately implements a compact, dependency-free dense
//! toolkit rather than pulling in a large external library:
//!
//! * [`Matrix`] — row-major dense matrix with the usual algebra,
//! * [`Cholesky`] — `A = L Lᵀ` factorization for symmetric positive-definite
//!   systems,
//! * [`Ldlt`] — `A = L D Lᵀ` factorization for symmetric quasi-definite
//!   (KKT-style) systems,
//! * [`Lu`] — partially-pivoted `P A = L U` factorization for general square
//!   systems,
//! * [`vec_ops`] — BLAS-1 style helpers on `&[f64]` slices.
//!
//! # Example
//!
//! ```
//! use ufc_linalg::{Matrix, Cholesky};
//!
//! # fn main() -> Result<(), ufc_linalg::LinalgError> {
//! let a = Matrix::from_rows(&[&[4.0, 1.0], &[1.0, 3.0]])?;
//! let chol = Cholesky::factor(&a)?;
//! let x = chol.solve(&[1.0, 2.0])?;
//! let r = a.matvec(&x)?;
//! assert!((r[0] - 1.0).abs() < 1e-12 && (r[1] - 2.0).abs() < 1e-12);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cholesky;
mod error;
mod ldlt;
mod lu;
mod matrix;
pub mod vec_ops;

pub use cholesky::Cholesky;
pub use error::LinalgError;
pub use ldlt::Ldlt;
pub use lu::Lu;
pub use matrix::Matrix;

/// Convenience alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, LinalgError>;

/// Panel width of the blocked factorization kernels
/// ([`Cholesky::factor_blocked`], [`Ldlt::factor_blocked`]).
///
/// 48 columns of f64 per panel keeps a panel row (384 bytes) plus the
/// trailing-row segment it is folded into comfortably inside L1 while the
/// trailing update streams the rest of the matrix once per panel. The
/// blocked kernels produce bit-identical factors for every width, so this
/// constant is a pure performance tuning knob.
pub const FACTOR_BLOCK: usize = 48;
