use std::fmt;
use std::ops::{Index, IndexMut};

use crate::{LinalgError, Result};

/// A dense, row-major, `f64` matrix.
///
/// `Matrix` is the workhorse type of the kernel: the QP sub-solvers assemble
/// Hessians and KKT systems in it, and the generic matrix-form ADM-G builds
/// the relation matrices `K_i` and the Gaussian back-substitution matrix `G`
/// with it. Sizes in this project are small (tens to a few hundred rows), so
/// straightforward triple loops are used throughout; they are fast enough and
/// easy to audit.
///
/// # Example
///
/// ```
/// use ufc_linalg::Matrix;
///
/// # fn main() -> Result<(), ufc_linalg::LinalgError> {
/// let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]])?;
/// let b = a.transpose();
/// let c = a.matmul(&b)?;
/// assert_eq!(c[(0, 0)], 5.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix of zeros.
    #[must_use]
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    #[must_use]
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix from row slices.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if the rows have unequal
    /// lengths or if `rows` is empty.
    pub fn from_rows(rows: &[&[f64]]) -> Result<Self> {
        let Some(first) = rows.first() else {
            return Err(LinalgError::dim("from_rows: no rows given"));
        };
        let cols = first.len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for (i, r) in rows.iter().enumerate() {
            if r.len() != cols {
                return Err(LinalgError::dim(format!(
                    "from_rows: row {i} has length {} but row 0 has length {cols}",
                    r.len()
                )));
            }
            data.extend_from_slice(r);
        }
        Ok(Matrix {
            rows: rows.len(),
            cols,
            data,
        })
    }

    /// Creates a matrix by evaluating `f(row, col)` at every position.
    #[must_use]
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut m = Matrix::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                m[(i, j)] = f(i, j);
            }
        }
        m
    }

    /// Creates a square matrix with `diag` on the diagonal.
    #[must_use]
    pub fn from_diag(diag: &[f64]) -> Self {
        let mut m = Matrix::zeros(diag.len(), diag.len());
        for (i, d) in diag.iter().enumerate() {
            m[(i, i)] = *d;
        }
        m
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Returns `true` when the matrix is square.
    #[must_use]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Borrows row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.rows()`.
    #[must_use]
    pub fn row(&self, i: usize) -> &[f64] {
        assert!(i < self.rows, "row index {i} out of bounds");
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutably borrows row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.rows()`.
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        assert!(i < self.rows, "row index {i} out of bounds");
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copies column `j` into a new vector.
    ///
    /// # Panics
    ///
    /// Panics if `j >= self.cols()`.
    #[must_use]
    pub fn col(&self, j: usize) -> Vec<f64> {
        assert!(j < self.cols, "column index {j} out of bounds");
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// Returns the transpose as a new matrix.
    #[must_use]
    pub fn transpose(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |i, j| self[(j, i)])
    }

    /// Matrix–vector product `A x`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] when `x.len() != cols`.
    pub fn matvec(&self, x: &[f64]) -> Result<Vec<f64>> {
        if x.len() != self.cols {
            return Err(LinalgError::dim(format!(
                "matvec: {}x{} by vector of length {}",
                self.rows,
                self.cols,
                x.len()
            )));
        }
        Ok((0..self.rows)
            .map(|i| crate::vec_ops::dot(self.row(i), x))
            .collect())
    }

    /// Transposed matrix–vector product `Aᵀ x`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] when `x.len() != rows`.
    pub fn matvec_t(&self, x: &[f64]) -> Result<Vec<f64>> {
        if x.len() != self.rows {
            return Err(LinalgError::dim(format!(
                "matvec_t: {}x{} transposed by vector of length {}",
                self.rows,
                self.cols,
                x.len()
            )));
        }
        let mut y = vec![0.0; self.cols];
        for (i, &xi) in x.iter().enumerate() {
            crate::vec_ops::axpy(xi, self.row(i), &mut y);
        }
        Ok(y)
    }

    /// Matrix product `A B`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] when the inner dimensions
    /// disagree.
    pub fn matmul(&self, other: &Matrix) -> Result<Matrix> {
        if self.cols != other.rows {
            return Err(LinalgError::dim(format!(
                "matmul: {}x{} by {}x{}",
                self.rows, self.cols, other.rows, other.cols
            )));
        }
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let aik = self[(i, k)];
                if aik == 0.0 {
                    continue;
                }
                for j in 0..other.cols {
                    out[(i, j)] += aik * other[(k, j)];
                }
            }
        }
        Ok(out)
    }

    /// Sum `A + B` as a new matrix.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] on shape mismatch.
    pub fn add(&self, other: &Matrix) -> Result<Matrix> {
        self.zip_with(other, "add", |a, b| a + b)
    }

    /// Difference `A − B` as a new matrix.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] on shape mismatch.
    pub fn sub(&self, other: &Matrix) -> Result<Matrix> {
        self.zip_with(other, "sub", |a, b| a - b)
    }

    fn zip_with(&self, other: &Matrix, op: &str, f: impl Fn(f64, f64) -> f64) -> Result<Matrix> {
        if self.rows != other.rows || self.cols != other.cols {
            return Err(LinalgError::dim(format!(
                "{op}: {}x{} with {}x{}",
                self.rows, self.cols, other.rows, other.cols
            )));
        }
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(a, b)| f(*a, *b))
                .collect(),
        })
    }

    /// Returns `alpha * A` as a new matrix.
    #[must_use]
    pub fn scaled(&self, alpha: f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|v| alpha * v).collect(),
        }
    }

    /// Gram product `Aᵀ A` (always symmetric positive semi-definite).
    #[must_use]
    pub fn gram(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.cols);
        for k in 0..self.rows {
            let row = self.row(k);
            for i in 0..self.cols {
                let rki = row[i];
                if rki == 0.0 {
                    continue;
                }
                for j in i..self.cols {
                    out[(i, j)] += rki * row[j];
                }
            }
        }
        for i in 0..self.cols {
            for j in 0..i {
                out[(i, j)] = out[(j, i)];
            }
        }
        out
    }

    /// Writes `block` into `self` with its top-left corner at `(r0, c0)`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] when the block does not fit.
    pub fn set_block(&mut self, r0: usize, c0: usize, block: &Matrix) -> Result<()> {
        if r0 + block.rows > self.rows || c0 + block.cols > self.cols {
            return Err(LinalgError::dim(format!(
                "set_block: block {}x{} at ({r0},{c0}) into {}x{}",
                block.rows, block.cols, self.rows, self.cols
            )));
        }
        for i in 0..block.rows {
            for j in 0..block.cols {
                self[(r0 + i, c0 + j)] = block[(i, j)];
            }
        }
        Ok(())
    }

    /// Extracts the `nr × nc` block with top-left corner `(r0, c0)`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] when the block exceeds the
    /// matrix bounds.
    pub fn block(&self, r0: usize, c0: usize, nr: usize, nc: usize) -> Result<Matrix> {
        if r0 + nr > self.rows || c0 + nc > self.cols {
            return Err(LinalgError::dim(format!(
                "block: {nr}x{nc} at ({r0},{c0}) from {}x{}",
                self.rows, self.cols
            )));
        }
        Ok(Matrix::from_fn(nr, nc, |i, j| self[(r0 + i, c0 + j)]))
    }

    /// Maximum absolute entry (the max-norm).
    #[must_use]
    pub fn norm_max(&self) -> f64 {
        crate::vec_ops::norm_inf(&self.data)
    }

    /// Frobenius norm.
    #[must_use]
    pub fn norm_fro(&self) -> f64 {
        crate::vec_ops::norm2(&self.data)
    }

    /// Returns `true` when `‖A − Aᵀ‖∞ ≤ tol`.
    #[must_use]
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if !self.is_square() {
            return false;
        }
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                if (self[(i, j)] - self[(j, i)]).abs() > tol {
                    return false;
                }
            }
        }
        true
    }

    /// Borrows the underlying row-major storage.
    #[must_use]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Adds `alpha` to every diagonal entry (Tikhonov-style regularization).
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn add_diagonal(&mut self, alpha: f64) {
        assert!(self.is_square(), "add_diagonal requires a square matrix");
        for i in 0..self.rows {
            self[(i, i)] += alpha;
        }
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of bounds for {}x{}",
            self.rows,
            self.cols
        );
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of bounds for {}x{}",
            self.rows,
            self.cols
        );
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.rows {
            for j in 0..self.cols {
                if j > 0 {
                    write!(f, " ")?;
                }
                write!(f, "{:12.6}", self[(i, j)])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn abcd() -> Matrix {
        Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap()
    }

    #[test]
    fn zeros_and_identity() {
        let z = Matrix::zeros(2, 3);
        assert_eq!(z.rows(), 2);
        assert_eq!(z.cols(), 3);
        assert!(z.as_slice().iter().all(|&v| v == 0.0));
        let i = Matrix::identity(3);
        assert_eq!(i.matvec(&[1.0, 2.0, 3.0]).unwrap(), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn from_rows_rejects_ragged() {
        let err = Matrix::from_rows(&[&[1.0], &[1.0, 2.0]]).unwrap_err();
        assert!(matches!(err, LinalgError::DimensionMismatch { .. }));
        assert!(Matrix::from_rows(&[]).is_err());
    }

    #[test]
    fn transpose_involution() {
        let a = abcd();
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn matvec_and_matvec_t_agree_with_transpose() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]).unwrap();
        let x = [1.0, -1.0];
        let via_t = a.transpose().matvec(&x).unwrap();
        let direct = a.matvec_t(&x).unwrap();
        assert_eq!(via_t, direct);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = abcd();
        assert_eq!(a.matmul(&Matrix::identity(2)).unwrap(), a);
        assert_eq!(Matrix::identity(2).matmul(&a).unwrap(), a);
    }

    #[test]
    fn matmul_known_product() {
        let a = abcd();
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(
            c,
            Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]).unwrap()
        );
    }

    #[test]
    fn matmul_shape_mismatch() {
        let a = abcd();
        let b = Matrix::zeros(3, 2);
        assert!(a.matmul(&b).is_err());
    }

    #[test]
    fn gram_matches_explicit_product() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 0.5], &[3.0, -4.0, 1.0]]).unwrap();
        let g = a.gram();
        let explicit = a.transpose().matmul(&a).unwrap();
        assert!(g.sub(&explicit).unwrap().norm_max() < 1e-12);
        assert!(g.is_symmetric(0.0));
    }

    #[test]
    fn block_roundtrip() {
        let mut m = Matrix::zeros(4, 4);
        let b = abcd();
        m.set_block(1, 2, &b).unwrap();
        assert_eq!(m.block(1, 2, 2, 2).unwrap(), b);
        assert_eq!(m[(0, 0)], 0.0);
        assert!(m.set_block(3, 3, &b).is_err());
        assert!(m.block(3, 3, 2, 2).is_err());
    }

    #[test]
    fn diag_and_regularization() {
        let mut d = Matrix::from_diag(&[1.0, 2.0]);
        d.add_diagonal(0.5);
        assert_eq!(d[(0, 0)], 1.5);
        assert_eq!(d[(1, 1)], 2.5);
        assert_eq!(d[(0, 1)], 0.0);
    }

    #[test]
    fn symmetry_check() {
        let s = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]).unwrap();
        assert!(s.is_symmetric(0.0));
        assert!(!abcd().is_symmetric(1e-9));
        assert!(!Matrix::zeros(2, 3).is_symmetric(0.0));
    }

    #[test]
    fn display_contains_entries() {
        let s = format!("{}", abcd());
        assert!(s.contains("1.0"));
        assert!(s.contains('\n'));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn index_out_of_bounds_panics() {
        let a = abcd();
        let _ = a[(2, 0)];
    }

    #[test]
    fn scaled_and_add_sub() {
        let a = abcd();
        let twice = a.scaled(2.0);
        assert_eq!(a.add(&a).unwrap(), twice);
        assert_eq!(twice.sub(&a).unwrap(), a);
        assert!(a.add(&Matrix::zeros(3, 3)).is_err());
    }
}
