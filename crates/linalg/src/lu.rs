use crate::{LinalgError, Matrix, Result};

/// Partially-pivoted LU factorization `P A = L U` for general square systems.
///
/// The generic matrix-form ADM-G reference implementation solves
/// `G (z^{k+1} − z^k) = ε (z̃^k − z^k)` with an explicitly assembled,
/// *non-symmetric* upper-triangular-block matrix `G`; LU is the right tool
/// there and for any other general dense solve in the workspace.
///
/// # Example
///
/// ```
/// use ufc_linalg::{Lu, Matrix};
///
/// # fn main() -> Result<(), ufc_linalg::LinalgError> {
/// let a = Matrix::from_rows(&[&[0.0, 2.0], &[1.0, 1.0]])?; // needs pivoting
/// let lu = Lu::factor(&a)?;
/// let x = lu.solve(&[2.0, 3.0])?;
/// assert!((x[0] - 2.0).abs() < 1e-12 && (x[1] - 1.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Lu {
    /// Packed factors: strictly-lower part holds `L` (unit diagonal
    /// implicit), upper part holds `U`.
    lu: Matrix,
    /// Row permutation: `perm[i]` is the original row now in position `i`.
    perm: Vec<usize>,
    /// Sign of the permutation (+1.0 or −1.0), for determinants.
    perm_sign: f64,
}

impl Lu {
    /// Factors a general square matrix with partial (row) pivoting.
    ///
    /// # Errors
    ///
    /// * [`LinalgError::NotSquare`] if `a` is not square.
    /// * [`LinalgError::Singular`] if no acceptable pivot exists in some
    ///   column.
    pub fn factor(a: &Matrix) -> Result<Self> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare {
                rows: a.rows(),
                cols: a.cols(),
            });
        }
        let n = a.rows();
        let mut lu = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut sign = 1.0;
        let tol = 1e-300; // absolute floor; relative checks happen via pivot choice
        for k in 0..n {
            // Choose pivot row.
            let mut p = k;
            let mut best = lu[(k, k)].abs();
            for i in (k + 1)..n {
                let v = lu[(i, k)].abs();
                if v > best {
                    best = v;
                    p = i;
                }
            }
            if best <= tol {
                return Err(LinalgError::Singular { pivot: k });
            }
            if p != k {
                for j in 0..n {
                    let tmp = lu[(k, j)];
                    lu[(k, j)] = lu[(p, j)];
                    lu[(p, j)] = tmp;
                }
                perm.swap(k, p);
                sign = -sign;
            }
            let pivot = lu[(k, k)];
            for i in (k + 1)..n {
                let m = lu[(i, k)] / pivot;
                lu[(i, k)] = m;
                if m != 0.0 {
                    for j in (k + 1)..n {
                        let delta = m * lu[(k, j)];
                        lu[(i, j)] -= delta;
                    }
                }
            }
        }
        Ok(Lu {
            lu,
            perm,
            perm_sign: sign,
        })
    }

    /// Dimension of the factored matrix.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.lu.rows()
    }

    /// Solves `A x = b`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] when `b.len() != dim()`.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::dim(format!(
                "lu solve: rhs length {} for system of size {n}",
                b.len()
            )));
        }
        // Apply permutation: y = P b.
        let mut x: Vec<f64> = self.perm.iter().map(|&i| b[i]).collect();
        // Forward: L y = P b (unit diagonal).
        for i in 0..n {
            for k in 0..i {
                x[i] -= self.lu[(i, k)] * x[k];
            }
        }
        // Backward: U x = y.
        for i in (0..n).rev() {
            for k in (i + 1)..n {
                x[i] -= self.lu[(i, k)] * x[k];
            }
            x[i] /= self.lu[(i, i)];
        }
        Ok(x)
    }

    /// Solves `A X = B` column by column.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] when `b.rows() != dim()`.
    pub fn solve_matrix(&self, b: &Matrix) -> Result<Matrix> {
        if b.rows() != self.dim() {
            return Err(LinalgError::dim(format!(
                "lu solve_matrix: rhs has {} rows for system of size {}",
                b.rows(),
                self.dim()
            )));
        }
        let mut out = Matrix::zeros(b.rows(), b.cols());
        for j in 0..b.cols() {
            let col = self.solve(&b.col(j))?;
            for i in 0..b.rows() {
                out[(i, j)] = col[i];
            }
        }
        Ok(out)
    }

    /// Determinant of `A` (product of `U` pivots times the permutation sign).
    #[must_use]
    pub fn det(&self) -> f64 {
        let mut d = self.perm_sign;
        for i in 0..self.dim() {
            d *= self.lu[(i, i)];
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solve_requires_pivoting() {
        let a = Matrix::from_rows(&[&[0.0, 2.0], &[1.0, 1.0]]).unwrap();
        let lu = Lu::factor(&a).unwrap();
        let x = lu.solve(&[2.0, 3.0]).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-12);
        assert!((x[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn residual_small_on_random_like_matrix() {
        let a = Matrix::from_rows(&[
            &[3.0, -1.0, 2.0, 0.5],
            &[1.0, 4.0, -2.0, 1.0],
            &[-2.0, 0.5, 5.0, -1.5],
            &[0.0, 2.0, 1.0, 3.5],
        ])
        .unwrap();
        let lu = Lu::factor(&a).unwrap();
        let b = [1.0, 2.0, 3.0, 4.0];
        let x = lu.solve(&b).unwrap();
        let r = a.matvec(&x).unwrap();
        for (ri, bi) in r.iter().zip(&b) {
            assert!((ri - bi).abs() < 1e-10);
        }
    }

    #[test]
    fn det_of_known_matrix() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let lu = Lu::factor(&a).unwrap();
        assert!((lu.det() + 2.0).abs() < 1e-12);
    }

    #[test]
    fn det_tracks_permutation_sign() {
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]).unwrap();
        let lu = Lu::factor(&a).unwrap();
        assert!((lu.det() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn rejects_singular() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]).unwrap();
        assert!(matches!(Lu::factor(&a), Err(LinalgError::Singular { .. })));
    }

    #[test]
    fn solve_matrix_inverts() {
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]).unwrap();
        let lu = Lu::factor(&a).unwrap();
        let inv = lu.solve_matrix(&Matrix::identity(2)).unwrap();
        let prod = a.matmul(&inv).unwrap();
        assert!(prod.sub(&Matrix::identity(2)).unwrap().norm_max() < 1e-12);
    }

    #[test]
    fn rejects_bad_shapes() {
        assert!(Lu::factor(&Matrix::zeros(2, 3)).is_err());
        let lu = Lu::factor(&Matrix::identity(2)).unwrap();
        assert!(lu.solve(&[1.0]).is_err());
        assert!(lu.solve_matrix(&Matrix::zeros(3, 1)).is_err());
    }

    #[test]
    fn identity_solve_is_identity() {
        let lu = Lu::factor(&Matrix::identity(3)).unwrap();
        assert_eq!(lu.solve(&[1.0, 2.0, 3.0]).unwrap(), vec![1.0, 2.0, 3.0]);
        assert_eq!(lu.det(), 1.0);
    }
}
