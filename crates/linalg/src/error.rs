use std::fmt;

/// Errors produced by the dense linear-algebra kernel.
#[derive(Debug, Clone, PartialEq)]
pub enum LinalgError {
    /// Two operands had incompatible shapes.
    ///
    /// Carries a human-readable description of the mismatch.
    DimensionMismatch {
        /// Description of the operation and the offending shapes.
        context: String,
    },
    /// A factorization encountered a (numerically) singular matrix.
    Singular {
        /// Index of the pivot at which singularity was detected.
        pivot: usize,
    },
    /// Cholesky factorization was attempted on a matrix that is not
    /// (numerically) positive definite.
    NotPositiveDefinite {
        /// Index of the failing diagonal pivot.
        pivot: usize,
        /// Value of the failing pivot before taking the square root.
        value: f64,
    },
    /// A matrix expected to be square was not.
    NotSquare {
        /// Number of rows of the offending matrix.
        rows: usize,
        /// Number of columns of the offending matrix.
        cols: usize,
    },
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::DimensionMismatch { context } => {
                write!(f, "dimension mismatch: {context}")
            }
            LinalgError::Singular { pivot } => {
                write!(f, "matrix is singular at pivot {pivot}")
            }
            LinalgError::NotPositiveDefinite { pivot, value } => write!(
                f,
                "matrix is not positive definite: pivot {pivot} has value {value:e}"
            ),
            LinalgError::NotSquare { rows, cols } => {
                write!(f, "matrix is not square: {rows}x{cols}")
            }
        }
    }
}

impl std::error::Error for LinalgError {}

impl LinalgError {
    /// Builds a [`LinalgError::DimensionMismatch`] with a formatted context.
    pub fn dim(context: impl Into<String>) -> Self {
        LinalgError::DimensionMismatch {
            context: context.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = LinalgError::dim("matvec: 3x2 by vector of length 5");
        assert!(e.to_string().contains("3x2"));
        let e = LinalgError::Singular { pivot: 4 };
        assert!(e.to_string().contains("pivot 4"));
        let e = LinalgError::NotPositiveDefinite {
            pivot: 1,
            value: -2.0,
        };
        assert!(e.to_string().contains("positive definite"));
        let e = LinalgError::NotSquare { rows: 2, cols: 3 };
        assert!(e.to_string().contains("2x3"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<LinalgError>();
    }
}
