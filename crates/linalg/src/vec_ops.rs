//! BLAS-1 style helpers over `&[f64]` slices.
//!
//! These are free functions rather than methods on a vector newtype because
//! the optimization code in `ufc-opt` and `ufc-core` works directly on plain
//! `Vec<f64>` buffers owned by problem/solver state, and a wrapper type would
//! force conversions at every boundary.
//!
//! All binary operations panic on length mismatch (caller bug, not a
//! recoverable condition), mirroring the standard library's slice APIs.

/// Dot product `xᵀy`.
///
/// # Panics
///
/// Panics if `x.len() != y.len()`.
#[must_use]
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "dot: length mismatch");
    x.iter().zip(y).map(|(a, b)| a * b).sum()
}

/// In-place `y += alpha * x` (the BLAS `axpy`).
///
/// # Panics
///
/// Panics if `x.len() != y.len()`.
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// In-place scaling `x *= alpha`.
pub fn scale(x: &mut [f64], alpha: f64) {
    for xi in x.iter_mut() {
        *xi *= alpha;
    }
}

/// Returns `x - y` as a new vector.
///
/// # Panics
///
/// Panics if `x.len() != y.len()`.
#[must_use]
pub fn sub(x: &[f64], y: &[f64]) -> Vec<f64> {
    assert_eq!(x.len(), y.len(), "sub: length mismatch");
    x.iter().zip(y).map(|(a, b)| a - b).collect()
}

/// Returns `x + y` as a new vector.
///
/// # Panics
///
/// Panics if `x.len() != y.len()`.
#[must_use]
pub fn add(x: &[f64], y: &[f64]) -> Vec<f64> {
    assert_eq!(x.len(), y.len(), "add: length mismatch");
    x.iter().zip(y).map(|(a, b)| a + b).collect()
}

/// Euclidean norm `‖x‖₂`.
///
/// Uses a scaled accumulation that is robust to overflow for large entries.
#[must_use]
pub fn norm2(x: &[f64]) -> f64 {
    let maxabs = x.iter().fold(0.0f64, |m, v| m.max(v.abs()));
    if maxabs == 0.0 || !maxabs.is_finite() {
        return maxabs;
    }
    let sum: f64 = x.iter().map(|v| (v / maxabs) * (v / maxabs)).sum();
    maxabs * sum.sqrt()
}

/// `‖x‖₁` — sum of absolute values.
#[must_use]
pub fn norm1(x: &[f64]) -> f64 {
    x.iter().map(|v| v.abs()).sum()
}

/// `‖x‖∞` — maximum absolute value (0 for the empty slice).
#[must_use]
pub fn norm_inf(x: &[f64]) -> f64 {
    x.iter().fold(0.0f64, |m, v| m.max(v.abs()))
}

/// Euclidean distance `‖x − y‖₂`.
///
/// # Panics
///
/// Panics if `x.len() != y.len()`.
#[must_use]
pub fn dist2(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "dist2: length mismatch");
    let maxabs = x
        .iter()
        .zip(y)
        .fold(0.0f64, |m, (a, b)| m.max((a - b).abs()));
    if maxabs == 0.0 || !maxabs.is_finite() {
        return maxabs;
    }
    let sum: f64 = x
        .iter()
        .zip(y)
        .map(|(a, b)| {
            let d = (a - b) / maxabs;
            d * d
        })
        .sum();
    maxabs * sum.sqrt()
}

/// Sum of all entries.
#[must_use]
pub fn sum(x: &[f64]) -> f64 {
    x.iter().sum()
}

/// Linear interpolation `(1 − t) * x + t * y` as a new vector.
///
/// # Panics
///
/// Panics if `x.len() != y.len()`.
#[must_use]
pub fn lerp(x: &[f64], y: &[f64], t: f64) -> Vec<f64> {
    assert_eq!(x.len(), y.len(), "lerp: length mismatch");
    x.iter()
        .zip(y)
        .map(|(a, b)| (1.0 - t) * a + t * b)
        .collect()
}

/// Returns `true` when every component of `x` is within `tol` of `y`.
///
/// # Panics
///
/// Panics if `x.len() != y.len()`.
#[must_use]
pub fn approx_eq(x: &[f64], y: &[f64], tol: f64) -> bool {
    assert_eq!(x.len(), y.len(), "approx_eq: length mismatch");
    x.iter().zip(y).all(|(a, b)| (a - b).abs() <= tol)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_basic() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        assert_eq!(dot(&[], &[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "dot: length mismatch")]
    fn dot_mismatch_panics() {
        let _ = dot(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn axpy_accumulates() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[3.0, -1.0], &mut y);
        assert_eq!(y, vec![7.0, -1.0]);
    }

    #[test]
    fn scale_in_place() {
        let mut x = vec![1.0, -2.0];
        scale(&mut x, -0.5);
        assert_eq!(x, vec![-0.5, 1.0]);
    }

    #[test]
    fn norms_agree_on_unit_vectors() {
        let e = [0.0, 1.0, 0.0];
        assert_eq!(norm1(&e), 1.0);
        assert_eq!(norm2(&e), 1.0);
        assert_eq!(norm_inf(&e), 1.0);
    }

    #[test]
    fn norm2_is_overflow_safe() {
        let big = vec![1e200, 1e200];
        let n = norm2(&big);
        assert!(n.is_finite());
        assert!((n - 2f64.sqrt() * 1e200).abs() / n < 1e-12);
    }

    #[test]
    fn norm2_empty_and_zero() {
        assert_eq!(norm2(&[]), 0.0);
        assert_eq!(norm2(&[0.0, 0.0]), 0.0);
    }

    #[test]
    fn dist2_matches_norm_of_difference() {
        let x = [1.0, 2.0, 3.0];
        let y = [0.0, -1.0, 5.0];
        let d = dist2(&x, &y);
        assert!((d - norm2(&sub(&x, &y))).abs() < 1e-12);
    }

    #[test]
    fn add_sub_roundtrip() {
        let x = [1.5, -2.0];
        let y = [0.5, 4.0];
        assert_eq!(sub(&add(&x, &y), &y), x.to_vec());
    }

    #[test]
    fn lerp_endpoints() {
        let x = [1.0, 2.0];
        let y = [3.0, 4.0];
        assert_eq!(lerp(&x, &y, 0.0), x.to_vec());
        assert_eq!(lerp(&x, &y, 1.0), y.to_vec());
        assert_eq!(lerp(&x, &y, 0.5), vec![2.0, 3.0]);
    }

    #[test]
    fn approx_eq_tolerance() {
        assert!(approx_eq(&[1.0], &[1.0 + 1e-12], 1e-9));
        assert!(!approx_eq(&[1.0], &[1.1], 1e-9));
    }
}
