use crate::{LinalgError, Matrix, Result, FACTOR_BLOCK};

/// `A = L D Lᵀ` factorization (unit lower-triangular `L`, diagonal `D`) for
/// symmetric matrices that are *quasi-definite* rather than positive
/// definite.
///
/// KKT systems of equality-constrained QPs have the saddle-point form
/// `[[H, Aᵀ], [A, 0]]` — symmetric but indefinite, so Cholesky fails while
/// LDLᵀ (with nonzero, possibly negative, pivots) succeeds. The OSQP-style
/// ADMM QP solver in `ufc-opt` regularizes its KKT matrix into quasi-definite
/// form exactly so that this pivot-free factorization is stable.
///
/// # Example
///
/// ```
/// use ufc_linalg::{Ldlt, Matrix};
///
/// # fn main() -> Result<(), ufc_linalg::LinalgError> {
/// // Indefinite saddle-point system: Cholesky would fail.
/// let k = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, -3.0]])?;
/// let f = Ldlt::factor(&k)?;
/// let x = f.solve(&[1.0, 0.0])?;
/// let kx = k.matvec(&x)?;
/// assert!((kx[0] - 1.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Ldlt {
    /// Unit lower-triangular factor (diagonal entries are 1, stored
    /// implicitly; the dense storage holds the strictly-lower part).
    l: Matrix,
    /// Diagonal of `D`.
    d: Vec<f64>,
}

impl Ldlt {
    /// Factors a symmetric matrix without pivoting.
    ///
    /// Only the lower triangle of `a` is read. No pivoting is performed, so
    /// the factorization exists only when every leading principal minor is
    /// nonzero — true for quasi-definite matrices, which is the intended use.
    ///
    /// # Errors
    ///
    /// * [`LinalgError::NotSquare`] if `a` is not square.
    /// * [`LinalgError::Singular`] if a pivot underflows the numerical
    ///   tolerance (matrix not quasi-definite / singular).
    pub fn factor(a: &Matrix) -> Result<Self> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare {
                rows: a.rows(),
                cols: a.cols(),
            });
        }
        let n = a.rows();
        let mut l = Matrix::identity(n);
        let mut d = vec![0.0; n];
        let max_abs = a.norm_max().max(1.0);
        let tol = 1e-14 * max_abs;
        for j in 0..n {
            let mut dj = a[(j, j)];
            for k in 0..j {
                dj -= l[(j, k)] * l[(j, k)] * d[k];
            }
            if dj.abs() <= tol {
                return Err(LinalgError::Singular { pivot: j });
            }
            d[j] = dj;
            for i in (j + 1)..n {
                let mut s = a[(i, j)];
                for k in 0..j {
                    s -= l[(i, k)] * l[(j, k)] * d[k];
                }
                l[(i, j)] = s / dj;
            }
        }
        Ok(Ldlt { l, d })
    }

    /// Factors a symmetric matrix with a blocked (tiled-panel)
    /// right-looking elimination.
    ///
    /// Identical contract to [`Ldlt::factor`], and **bit-identical
    /// factors**: each entry's update sequence subtracts the same terms in
    /// the same ascending-`k` order as the unblocked loop, only regrouped
    /// into panel-sized passes — IEEE-754 addition order is preserved, so
    /// the two entry points are interchangeable mid-run. The win is cache
    /// locality: the trailing-submatrix update walks contiguous row
    /// segments of at most [`FACTOR_BLOCK`] columns (a dot-product
    /// microkernel) instead of re-streaming whole rows per entry, which is
    /// what keeps large KKT factorizations (n ≳ a few hundred) off the
    /// memory wall.
    ///
    /// # Errors
    ///
    /// Same as [`Ldlt::factor`].
    pub fn factor_blocked(a: &Matrix) -> Result<Self> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare {
                rows: a.rows(),
                cols: a.cols(),
            });
        }
        let n = a.rows();
        let mut l = Matrix::identity(n);
        let mut d = vec![0.0; n];
        let max_abs = a.norm_max().max(1.0);
        let tol = 1e-14 * max_abs;
        // Work array: the lower triangle of `a` minus the contributions of
        // every already-finished panel.
        let mut w = Matrix::zeros(n, n);
        for i in 0..n {
            let (wi, ai) = (w.row_mut(i), a.row(i));
            wi[..=i].copy_from_slice(&ai[..=i]);
        }
        let mut p0 = 0;
        while p0 < n {
            let p1 = (p0 + FACTOR_BLOCK).min(n);
            // Factor the panel columns; only within-panel `k` terms remain.
            for j in p0..p1 {
                let mut dj = w[(j, j)];
                for k in p0..j {
                    dj -= l[(j, k)] * l[(j, k)] * d[k];
                }
                if dj.abs() <= tol {
                    return Err(LinalgError::Singular { pivot: j });
                }
                d[j] = dj;
                for i in (j + 1)..n {
                    let mut s = w[(i, j)];
                    for k in p0..j {
                        s -= l[(i, k)] * l[(j, k)] * d[k];
                    }
                    l[(i, j)] = s / dj;
                }
            }
            // Right-looking trailing update: fold this panel's columns into
            // the not-yet-factored block (ascending `k`, matching the
            // unblocked subtraction order).
            for i in p1..n {
                for j in p1..=i {
                    let li = &l.row(i)[p0..p1];
                    let lj = &l.row(j)[p0..p1];
                    let mut s = w[(i, j)];
                    for (k, (lik, ljk)) in li.iter().zip(lj).enumerate() {
                        s -= lik * ljk * d[p0 + k];
                    }
                    w[(i, j)] = s;
                }
            }
            p0 = p1;
        }
        Ok(Ldlt { l, d })
    }

    /// Dimension of the factored matrix.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.d.len()
    }

    /// Borrows the diagonal of `D`.
    #[must_use]
    pub fn d(&self) -> &[f64] {
        &self.d
    }

    /// Number of negative pivots — for a quasi-definite KKT system this
    /// equals the number of equality constraints (the matrix *inertia*),
    /// which callers can use as a sanity check.
    #[must_use]
    pub fn negative_pivots(&self) -> usize {
        self.d.iter().filter(|&&v| v < 0.0).count()
    }

    /// Solves `A x = b`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] when `b.len() != dim()`.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let mut x = vec![0.0; self.dim()];
        self.solve_into(b, &mut x)?;
        Ok(x)
    }

    /// Solves `A x = b`, writing the solution into `out` without allocating.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] when `b.len() != dim()` or
    /// `out.len() != dim()`.
    pub fn solve_into(&self, b: &[f64], out: &mut [f64]) -> Result<()> {
        let n = self.dim();
        if b.len() != n || out.len() != n {
            return Err(LinalgError::dim(format!(
                "ldlt solve: rhs length {} / out length {} for system of size {n}",
                b.len(),
                out.len()
            )));
        }
        out.copy_from_slice(b);
        // Forward: L y = b (unit diagonal).
        for i in 0..n {
            for k in 0..i {
                out[i] -= self.l[(i, k)] * out[k];
            }
        }
        // Diagonal: D z = y.
        for (xi, di) in out.iter_mut().zip(&self.d) {
            *xi /= di;
        }
        // Backward: Lᵀ x = z.
        for i in (0..n).rev() {
            for k in (i + 1)..n {
                out[i] -= self.l[(k, i)] * out[k];
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A 4x4 quasi-definite KKT matrix: H = diag(2,3), A = [[1,1],[1,-1]],
    /// lower-right block −δI.
    fn kkt() -> Matrix {
        Matrix::from_rows(&[
            &[2.0, 0.0, 1.0, 1.0],
            &[0.0, 3.0, 1.0, -1.0],
            &[1.0, 1.0, -1e-6, 0.0],
            &[1.0, -1.0, 0.0, -1e-6],
        ])
        .unwrap()
    }

    #[test]
    fn factor_reconstructs() {
        let a = kkt();
        let f = Ldlt::factor(&a).unwrap();
        let ld = f.l.matmul(&Matrix::from_diag(f.d())).unwrap();
        let ldlt = ld.matmul(&f.l.transpose()).unwrap();
        assert!(ldlt.sub(&a).unwrap().norm_max() < 1e-9);
    }

    #[test]
    fn inertia_counts_constraints() {
        let f = Ldlt::factor(&kkt()).unwrap();
        assert_eq!(f.negative_pivots(), 2);
    }

    #[test]
    fn solve_indefinite_system() {
        let a = kkt();
        let f = Ldlt::factor(&a).unwrap();
        let b = [1.0, 2.0, 3.0, 4.0];
        let x = f.solve(&b).unwrap();
        let r = a.matvec(&x).unwrap();
        for (ri, bi) in r.iter().zip(&b) {
            assert!((ri - bi).abs() < 1e-8, "residual too large: {r:?}");
        }
    }

    #[test]
    fn agrees_with_cholesky_on_spd() {
        let a = Matrix::from_rows(&[&[4.0, 1.0], &[1.0, 3.0]]).unwrap();
        let f = Ldlt::factor(&a).unwrap();
        assert_eq!(f.negative_pivots(), 0);
        let x1 = f.solve(&[1.0, 1.0]).unwrap();
        let x2 = crate::Cholesky::factor(&a)
            .unwrap()
            .solve(&[1.0, 1.0])
            .unwrap();
        assert!(crate::vec_ops::dist2(&x1, &x2) < 1e-12);
    }

    #[test]
    fn rejects_singular() {
        // Zero leading pivot with no pivoting => structural failure.
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]).unwrap();
        assert!(matches!(
            Ldlt::factor(&a),
            Err(LinalgError::Singular { .. })
        ));
    }

    #[test]
    fn solve_into_matches_solve() {
        let f = Ldlt::factor(&kkt()).unwrap();
        let b = [1.0, 2.0, 3.0, 4.0];
        let mut out = [0.0; 4];
        f.solve_into(&b, &mut out).unwrap();
        assert_eq!(out.to_vec(), f.solve(&b).unwrap());
        let mut short = [0.0; 2];
        assert!(f.solve_into(&b, &mut short).is_err());
    }

    #[test]
    fn rejects_non_square_and_bad_rhs() {
        assert!(Ldlt::factor(&Matrix::zeros(2, 3)).is_err());
        let f = Ldlt::factor(&Matrix::identity(2)).unwrap();
        assert!(f.solve(&[1.0]).is_err());
    }

    /// Deterministic quasi-definite KKT-style matrix spanning multiple
    /// factorization panels: `[[H, Aᵀ], [A, -δI]]` with H diagonally
    /// dominant.
    fn kkt_big(nx: usize, mc: usize) -> Matrix {
        let n = nx + mc;
        let mut a = Matrix::zeros(n, n);
        let mut s = 0x2545_f491_4f6c_dd1d_u64;
        let mut rnd = move || {
            s = s.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
            ((s >> 33) as f64) / ((1u64 << 31) as f64) - 0.5
        };
        for i in 0..nx {
            for j in 0..i {
                let v = 0.1 * rnd();
                a[(i, j)] = v;
                a[(j, i)] = v;
            }
            a[(i, i)] = 2.0 + rnd().abs();
        }
        for r in 0..mc {
            for j in 0..nx {
                let v = rnd();
                a[(nx + r, j)] = v;
                a[(j, nx + r)] = v;
            }
            a[(nx + r, nx + r)] = -1e-6;
        }
        a
    }

    #[test]
    fn blocked_factor_is_bit_identical() {
        // nx+mc spans one, exactly-one, and multiple panels (113 > 2×48).
        for (nx, mc) in [(3, 1), (40, 8), (44, 5), (90, 23)] {
            let a = kkt_big(nx, mc);
            let plain = Ldlt::factor(&a).unwrap();
            let blocked = Ldlt::factor_blocked(&a).unwrap();
            let n = nx + mc;
            for (dp, db) in plain.d.iter().zip(&blocked.d) {
                assert_eq!(dp.to_bits(), db.to_bits(), "D differs at n={n}");
            }
            for i in 0..n {
                for j in 0..i {
                    assert_eq!(
                        plain.l[(i, j)].to_bits(),
                        blocked.l[(i, j)].to_bits(),
                        "L[{i},{j}] differs at n={n}"
                    );
                }
            }
            assert_eq!(blocked.negative_pivots(), mc);
        }
    }

    #[test]
    fn blocked_factor_rejects_singular_and_non_square() {
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]).unwrap();
        assert!(matches!(
            Ldlt::factor_blocked(&a),
            Err(LinalgError::Singular { .. })
        ));
        assert!(Ldlt::factor_blocked(&Matrix::zeros(2, 3)).is_err());
    }
}
