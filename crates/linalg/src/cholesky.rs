use crate::{LinalgError, Matrix, Result, FACTOR_BLOCK};

/// Cholesky factorization `A = L Lᵀ` of a symmetric positive-definite matrix.
///
/// Used by the optimization toolkit for Newton steps and for solving the
/// positive-definite reduced systems that arise inside the active-set QP
/// solver.
///
/// # Example
///
/// ```
/// use ufc_linalg::{Cholesky, Matrix};
///
/// # fn main() -> Result<(), ufc_linalg::LinalgError> {
/// let a = Matrix::from_rows(&[&[25.0, 15.0, -5.0],
///                             &[15.0, 18.0,  0.0],
///                             &[-5.0,  0.0, 11.0]])?;
/// let chol = Cholesky::factor(&a)?;
/// let x = chol.solve(&[1.0, 2.0, 3.0])?;
/// let ax = a.matvec(&x)?;
/// assert!((ax[0] - 1.0).abs() < 1e-10);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Cholesky {
    /// Lower-triangular factor, stored densely (upper part is zero).
    l: Matrix,
}

impl Cholesky {
    /// Factors a symmetric positive-definite matrix.
    ///
    /// Only the lower triangle of `a` is read; the caller is responsible for
    /// `a` being symmetric (use [`Matrix::is_symmetric`] to check).
    ///
    /// # Errors
    ///
    /// * [`LinalgError::NotSquare`] if `a` is not square.
    /// * [`LinalgError::NotPositiveDefinite`] if a pivot is not strictly
    ///   positive (beyond a small relative tolerance).
    pub fn factor(a: &Matrix) -> Result<Self> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare {
                rows: a.rows(),
                cols: a.cols(),
            });
        }
        let n = a.rows();
        let mut l = Matrix::zeros(n, n);
        // Scale-aware pivot tolerance: pivots below `tol` relative to the
        // largest diagonal entry are treated as a loss of positive
        // definiteness rather than silently producing huge factors.
        let max_diag = (0..n).fold(0.0f64, |m, i| m.max(a[(i, i)].abs()));
        let tol = 1e-13 * max_diag.max(1.0);
        for j in 0..n {
            let mut d = a[(j, j)];
            for k in 0..j {
                d -= l[(j, k)] * l[(j, k)];
            }
            if d <= tol {
                return Err(LinalgError::NotPositiveDefinite { pivot: j, value: d });
            }
            let ljj = d.sqrt();
            l[(j, j)] = ljj;
            for i in (j + 1)..n {
                let mut s = a[(i, j)];
                for k in 0..j {
                    s -= l[(i, k)] * l[(j, k)];
                }
                l[(i, j)] = s / ljj;
            }
        }
        Ok(Cholesky { l })
    }

    /// Factors a symmetric positive-definite matrix with a blocked
    /// (tiled-panel) right-looking elimination.
    ///
    /// Identical contract to [`Cholesky::factor`], and **bit-identical
    /// factors**: each entry's update sequence subtracts the same terms in
    /// the same ascending-`k` order as the unblocked loop, only regrouped
    /// into panel-sized passes — IEEE-754 addition order is preserved, so
    /// the two entry points are interchangeable mid-run. The win is cache
    /// locality: the trailing-submatrix update walks contiguous row
    /// segments of at most [`FACTOR_BLOCK`] columns instead of re-streaming
    /// whole rows per entry.
    ///
    /// # Errors
    ///
    /// Same as [`Cholesky::factor`].
    pub fn factor_blocked(a: &Matrix) -> Result<Self> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare {
                rows: a.rows(),
                cols: a.cols(),
            });
        }
        let n = a.rows();
        let mut l = Matrix::zeros(n, n);
        let max_diag = (0..n).fold(0.0f64, |m, i| m.max(a[(i, i)].abs()));
        let tol = 1e-13 * max_diag.max(1.0);
        // Work array: the lower triangle of `a` minus the contributions of
        // every already-finished panel.
        let mut w = Matrix::zeros(n, n);
        for i in 0..n {
            let (wi, ai) = (w.row_mut(i), a.row(i));
            wi[..=i].copy_from_slice(&ai[..=i]);
        }
        let mut p0 = 0;
        while p0 < n {
            let p1 = (p0 + FACTOR_BLOCK).min(n);
            // Factor the panel columns; only within-panel `k` terms remain.
            for j in p0..p1 {
                let mut d = w[(j, j)];
                for k in p0..j {
                    d -= l[(j, k)] * l[(j, k)];
                }
                if d <= tol {
                    return Err(LinalgError::NotPositiveDefinite { pivot: j, value: d });
                }
                let ljj = d.sqrt();
                l[(j, j)] = ljj;
                for i in (j + 1)..n {
                    let mut s = w[(i, j)];
                    for k in p0..j {
                        s -= l[(i, k)] * l[(j, k)];
                    }
                    l[(i, j)] = s / ljj;
                }
            }
            // Right-looking trailing update: fold this panel's columns into
            // the not-yet-factored block (ascending `k`, matching the
            // unblocked subtraction order).
            for i in p1..n {
                for j in p1..=i {
                    let li = &l.row(i)[p0..p1];
                    let lj = &l.row(j)[p0..p1];
                    let mut s = w[(i, j)];
                    for (lik, ljk) in li.iter().zip(lj) {
                        s -= lik * ljk;
                    }
                    w[(i, j)] = s;
                }
            }
            p0 = p1;
        }
        Ok(Cholesky { l })
    }

    /// Dimension of the factored matrix.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.l.rows()
    }

    /// Borrows the lower-triangular factor `L`.
    #[must_use]
    pub fn l(&self) -> &Matrix {
        &self.l
    }

    /// Solves `A x = b`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] when `b.len() != dim()`.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let mut x = vec![0.0; self.dim()];
        self.solve_into(b, &mut x)?;
        Ok(x)
    }

    /// Solves `A x = b`, writing the solution into `out` without allocating.
    ///
    /// `b` and `out` may be the same buffer only via a prior copy by the
    /// caller; aliasing is not required — `b` is copied into `out` first.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] when `b.len() != dim()` or
    /// `out.len() != dim()`.
    pub fn solve_into(&self, b: &[f64], out: &mut [f64]) -> Result<()> {
        let n = self.dim();
        if b.len() != n || out.len() != n {
            return Err(LinalgError::dim(format!(
                "cholesky solve: rhs length {} / out length {} for system of size {n}",
                b.len(),
                out.len()
            )));
        }
        out.copy_from_slice(b);
        // Forward substitution L y = b.
        for i in 0..n {
            for k in 0..i {
                out[i] -= self.l[(i, k)] * out[k];
            }
            out[i] /= self.l[(i, i)];
        }
        // Back substitution Lᵀ x = y.
        for i in (0..n).rev() {
            for k in (i + 1)..n {
                out[i] -= self.l[(k, i)] * out[k];
            }
            out[i] /= self.l[(i, i)];
        }
        Ok(())
    }

    /// Log-determinant of `A`, i.e. `2 Σ log L_ii`.
    #[must_use]
    pub fn log_det(&self) -> f64 {
        (0..self.dim()).map(|i| self.l[(i, i)].ln()).sum::<f64>() * 2.0
    }

    /// Computes `A⁻¹` by solving against the identity (for tests/diagnostics;
    /// prefer [`Cholesky::solve`] in production paths).
    ///
    /// # Errors
    ///
    /// Propagates errors from [`Cholesky::solve`] (cannot occur for a valid
    /// factorization).
    pub fn inverse(&self) -> Result<Matrix> {
        let n = self.dim();
        let mut inv = Matrix::zeros(n, n);
        let mut e = vec![0.0; n];
        let mut col = vec![0.0; n];
        for j in 0..n {
            e[j] = 1.0;
            self.solve_into(&e, &mut col)?;
            e[j] = 0.0;
            for i in 0..n {
                inv[(i, j)] = col[i];
            }
        }
        Ok(inv)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd3() -> Matrix {
        Matrix::from_rows(&[&[25.0, 15.0, -5.0], &[15.0, 18.0, 0.0], &[-5.0, 0.0, 11.0]]).unwrap()
    }

    #[test]
    fn factor_reconstructs() {
        let a = spd3();
        let c = Cholesky::factor(&a).unwrap();
        let llt = c.l().matmul(&c.l().transpose()).unwrap();
        assert!(llt.sub(&a).unwrap().norm_max() < 1e-10);
    }

    #[test]
    fn known_factor() {
        // Classic example: L = [[5,0,0],[3,3,0],[-1,1,3]].
        let c = Cholesky::factor(&spd3()).unwrap();
        let l = c.l();
        assert!((l[(0, 0)] - 5.0).abs() < 1e-12);
        assert!((l[(1, 0)] - 3.0).abs() < 1e-12);
        assert!((l[(2, 2)] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn solve_residual_is_small() {
        let a = spd3();
        let c = Cholesky::factor(&a).unwrap();
        let b = [1.0, -2.0, 4.5];
        let x = c.solve(&b).unwrap();
        let r = a.matvec(&x).unwrap();
        for (ri, bi) in r.iter().zip(&b) {
            assert!((ri - bi).abs() < 1e-10);
        }
    }

    #[test]
    fn rejects_indefinite() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]).unwrap();
        assert!(matches!(
            Cholesky::factor(&a),
            Err(LinalgError::NotPositiveDefinite { .. })
        ));
    }

    #[test]
    fn rejects_non_square() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(
            Cholesky::factor(&a),
            Err(LinalgError::NotSquare { .. })
        ));
    }

    #[test]
    fn rejects_wrong_rhs_len() {
        let c = Cholesky::factor(&spd3()).unwrap();
        assert!(c.solve(&[1.0]).is_err());
    }

    #[test]
    fn log_det_matches_known_value() {
        // det(spd3) = (5*3*3)^2 = 2025.
        let c = Cholesky::factor(&spd3()).unwrap();
        assert!((c.log_det() - 2025.0f64.ln()).abs() < 1e-10);
    }

    #[test]
    fn inverse_times_a_is_identity() {
        let a = spd3();
        let inv = Cholesky::factor(&a).unwrap().inverse().unwrap();
        let prod = inv.matmul(&a).unwrap();
        assert!(prod.sub(&Matrix::identity(3)).unwrap().norm_max() < 1e-9);
    }

    #[test]
    fn solve_into_matches_solve() {
        let c = Cholesky::factor(&spd3()).unwrap();
        let b = [1.0, -2.0, 4.5];
        let mut out = [0.0; 3];
        c.solve_into(&b, &mut out).unwrap();
        assert_eq!(out.to_vec(), c.solve(&b).unwrap());
        let mut short = [0.0; 2];
        assert!(c.solve_into(&b, &mut short).is_err());
    }

    #[test]
    fn one_by_one() {
        let a = Matrix::from_rows(&[&[4.0]]).unwrap();
        let c = Cholesky::factor(&a).unwrap();
        assert_eq!(c.solve(&[8.0]).unwrap(), vec![2.0]);
    }

    /// Deterministic SPD test matrix spanning multiple factorization panels.
    fn spd_big(n: usize) -> Matrix {
        let mut a = Matrix::zeros(n, n);
        let mut s = 0x9e37_79b9_u64;
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                s = s.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
                m[(i, j)] = ((s >> 33) as f64) / ((1u64 << 31) as f64) - 0.5;
            }
        }
        // A = MᵀM + n·I: symmetric, comfortably positive definite.
        for i in 0..n {
            for j in 0..n {
                let mut v = if i == j { n as f64 } else { 0.0 };
                for k in 0..n {
                    v += m[(k, i)] * m[(k, j)];
                }
                a[(i, j)] = v;
            }
        }
        a
    }

    #[test]
    fn blocked_factor_is_bit_identical() {
        // 113 > 2×FACTOR_BLOCK exercises full panels plus a remainder panel.
        for n in [1, 5, crate::FACTOR_BLOCK, crate::FACTOR_BLOCK + 1, 113] {
            let a = spd_big(n);
            let plain = Cholesky::factor(&a).unwrap();
            let blocked = Cholesky::factor_blocked(&a).unwrap();
            for i in 0..n {
                for j in 0..=i {
                    assert_eq!(
                        plain.l[(i, j)].to_bits(),
                        blocked.l[(i, j)].to_bits(),
                        "L[{i},{j}] differs at n={n}"
                    );
                }
            }
        }
    }

    #[test]
    fn blocked_factor_rejects_indefinite_and_non_square() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]).unwrap();
        assert!(matches!(
            Cholesky::factor_blocked(&a),
            Err(LinalgError::NotPositiveDefinite { .. })
        ));
        assert!(matches!(
            Cholesky::factor_blocked(&Matrix::zeros(2, 3)),
            Err(LinalgError::NotSquare { .. })
        ));
    }
}
