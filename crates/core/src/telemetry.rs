//! Run telemetry for the unified ADM-G driver: per-phase wall-clock
//! histograms, solver counters, and distributed traffic/fault counters,
//! with a JSONL event sink — all std-only.
//!
//! The layer is strictly *observational*. Its contract, asserted by the
//! `telemetry_inertness` integration test and DESIGN.md §11:
//!
//! * **Disabled ⇒ untouched.** The driver reads
//!   [`IterationObserver::wants_phase_timings`] once per run; when `false`
//!   it never reads the clock, so a telemetry-disabled run executes the
//!   exact pre-telemetry instruction stream on the numeric path.
//! * **Enabled ⇒ inert.** Clock reads happen between phases and flow only
//!   outward into a [`RunTelemetry`]; counters are reads of bookkeeping the
//!   solver layers already maintain. Nothing feeds back into the iterates,
//!   so enabling telemetry keeps the iterate stream bit-identical.
//!
//! [`TelemetryCollector`] aggregates a run into a [`RunTelemetry`];
//! [`JsonlSink`] streams one JSON object per iteration; [`ObserverChain`]
//! composes either with any other observer (e.g. the solver's
//! `HistoryRecorder`).

use std::io::{self, Write};
use std::time::Duration;

use crate::engine::{BlockOwner, IterationEvent, IterationObserver};

/// The driver phases of one ADM-G iteration, in execution order. The
/// prediction phases are keyed by the owning deployment side
/// ([`BlockOwner`]) — the unit the schedule-driven driver actually
/// sequences — rather than by block name, so the same five phases cover
/// both the classic 4-block and the 5-block storage schedules
/// (`BlockSchedule::phases` derives exactly this list for both).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Pre-phase bookkeeping (`Transport::begin_iteration`).
    Begin,
    /// One fused prediction phase: every block the owner holds, plus (for
    /// datacenters) the dual prediction (`Transport::predict_phase`).
    Predict(BlockOwner),
    /// Gaussian back substitution + residual reduction (`Transport::correct`).
    Correct,
    /// Control broadcast and checkpointing (`Transport::finish_iteration`).
    FinishIteration,
}

impl Phase {
    /// All phases, in driver execution order.
    pub const ALL: [Phase; 5] = [
        Phase::Begin,
        Phase::Predict(BlockOwner::FrontEnd),
        Phase::Predict(BlockOwner::Datacenter),
        Phase::Correct,
        Phase::FinishIteration,
    ];

    /// Stable snake_case name (used as the JSON key). The prediction
    /// phases keep their historical keys — `predict_lambda` for the
    /// front-end phase, `step_datacenters` for the datacenter phase — so
    /// existing trace consumers keep parsing.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Phase::Begin => "begin",
            Phase::Predict(BlockOwner::FrontEnd) => "predict_lambda",
            Phase::Predict(BlockOwner::Datacenter) => "step_datacenters",
            Phase::Correct => "correct",
            Phase::FinishIteration => "finish_iteration",
        }
    }

    /// Dense index into per-phase arrays, matching [`Phase::ALL`] order.
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            Phase::Begin => 0,
            Phase::Predict(BlockOwner::FrontEnd) => 1,
            Phase::Predict(BlockOwner::Datacenter) => 2,
            Phase::Correct => 3,
            Phase::FinishIteration => 4,
        }
    }
}

/// Number of log₂ duration buckets a [`PhaseHistogram`] keeps: bucket `b`
/// counts durations in `[2^b, 2^(b+1))` nanoseconds, so the range spans
/// 1 ns up to ~18 minutes with everything longer clamped into the last
/// bucket.
const HISTOGRAM_BUCKETS: usize = 40;

/// Wall-clock histogram of one driver phase across a run's iterations:
/// count/total/min/max plus log₂-of-nanoseconds buckets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseHistogram {
    count: u64,
    total_ns: u128,
    min_ns: u64,
    max_ns: u64,
    buckets: [u64; HISTOGRAM_BUCKETS],
}

impl Default for PhaseHistogram {
    fn default() -> Self {
        PhaseHistogram {
            count: 0,
            total_ns: 0,
            min_ns: u64::MAX,
            max_ns: 0,
            buckets: [0; HISTOGRAM_BUCKETS],
        }
    }
}

impl PhaseHistogram {
    /// Records one phase duration.
    pub fn record(&mut self, elapsed: Duration) {
        let ns = u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
        self.count += 1;
        self.total_ns += u128::from(ns);
        self.min_ns = self.min_ns.min(ns);
        self.max_ns = self.max_ns.max(ns);
        // log₂ bucket: 0 ns and 1 ns land in bucket 0.
        let bucket = (63 - ns.max(1).leading_zeros() as usize).min(HISTOGRAM_BUCKETS - 1);
        self.buckets[bucket] += 1;
    }

    /// Samples recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded durations, in nanoseconds.
    #[must_use]
    pub fn total_ns(&self) -> u128 {
        self.total_ns
    }

    /// Shortest recorded duration in nanoseconds (0 when empty).
    #[must_use]
    pub fn min_ns(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min_ns
        }
    }

    /// Longest recorded duration in nanoseconds.
    #[must_use]
    pub fn max_ns(&self) -> u64 {
        self.max_ns
    }

    /// Mean duration in nanoseconds (0 when empty).
    #[must_use]
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_ns as f64 / self.count as f64
        }
    }

    /// The non-empty log₂ buckets as `(exponent, count)` pairs: bucket
    /// `(b, c)` means `c` samples fell in `[2^b, 2^(b+1))` ns.
    #[must_use]
    pub fn nonzero_buckets(&self) -> Vec<(u32, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(b, &c)| (b as u32, c))
            .collect()
    }

    fn to_json(&self) -> String {
        let buckets: Vec<String> = self
            .nonzero_buckets()
            .into_iter()
            .map(|(b, c)| format!("[{b},{c}]"))
            .collect();
        format!(
            "{{\"count\":{},\"total_ns\":{},\"min_ns\":{},\"max_ns\":{},\"log2_ns_buckets\":[{}]}}",
            self.count,
            self.total_ns,
            self.min_ns(),
            self.max_ns,
            buckets.join(",")
        )
    }
}

/// Counters surfaced from the solver layers that already track them — the
/// KKT factorization cache, the warm-start gates, and the worker pool.
/// Zero for engines that cannot observe a layer (e.g. the threaded engine's
/// per-node kernels die with their worker threads).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SolverCounters {
    /// KKT factorizations served from the memo (`opt::KktCache`).
    pub kkt_cache_hits: u64,
    /// KKT lookups that required a fresh factorization.
    pub kkt_cache_misses: u64,
    /// Warm starts that passed the feasibility gates and seeded a solve.
    pub warm_starts_accepted: u64,
    /// Warm starts rejected by the gates (cold-started instead).
    pub warm_starts_rejected: u64,
    /// Items dispatched through `WorkerPool::map_mut` fan-outs.
    pub pool_tasks: u64,
    /// `WorkerPool::map_mut` fan-outs run.
    pub pool_maps: u64,
}

impl SolverCounters {
    fn to_json(self) -> String {
        format!(
            "{{\"kkt_cache_hits\":{},\"kkt_cache_misses\":{},\"warm_starts_accepted\":{},\
             \"warm_starts_rejected\":{},\"pool_tasks\":{},\"pool_maps\":{}}}",
            self.kkt_cache_hits,
            self.kkt_cache_misses,
            self.warm_starts_accepted,
            self.warm_starts_rejected,
            self.pool_tasks,
            self.pool_maps
        )
    }
}

/// Message-traffic counters of a distributed run, folded in from
/// `ufc_distsim`'s `MessageStats` (plain-typed here: core cannot depend on
/// distsim).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TrafficCounters {
    /// λ̃/ã data messages.
    pub data_messages: u64,
    /// Residual reports and control broadcasts.
    pub control_messages: u64,
    /// Total bytes on the wire.
    pub total_bytes: u64,
    /// Loss-induced retransmissions.
    pub retransmissions: u64,
}

impl TrafficCounters {
    fn to_json(self) -> String {
        format!(
            "{{\"data_messages\":{},\"control_messages\":{},\"total_bytes\":{},\
             \"retransmissions\":{}}}",
            self.data_messages, self.control_messages, self.total_bytes, self.retransmissions
        )
    }
}

/// Fault-handling counters of a supervised run, folded in from
/// `ufc_distsim`'s `FaultReport`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FaultCounters {
    /// Crash-stop failures resolved (recoveries + evictions).
    pub crashes_resolved: u64,
    /// Scripted straggler delays charged.
    pub stragglers_observed: u64,
    /// Wall-clock charged to crash detection and recovery, in seconds.
    pub downtime_seconds: f64,
    /// Wall-clock charged to straggler delays, in seconds.
    pub straggler_seconds: f64,
    /// Iterations recomputed during checkpoint-restart replays.
    pub recomputed_iterations: u64,
    /// Checkpoints taken (periodic + forced).
    pub checkpoints_taken: u64,
    /// Datacenter evictions.
    pub evictions: u64,
    /// Datacenter readmissions after eviction.
    pub readmissions: u64,
    /// Extra message copies sent around partition windows.
    pub partition_retransmissions: u64,
}

impl FaultCounters {
    fn to_json(self) -> String {
        format!(
            "{{\"crashes_resolved\":{},\"stragglers_observed\":{},\"downtime_seconds\":{},\
             \"straggler_seconds\":{},\"recomputed_iterations\":{},\"checkpoints_taken\":{},\
             \"evictions\":{},\"readmissions\":{},\"partition_retransmissions\":{}}}",
            self.crashes_resolved,
            self.stragglers_observed,
            json_f64(self.downtime_seconds),
            json_f64(self.straggler_seconds),
            self.recomputed_iterations,
            self.checkpoints_taken,
            self.evictions,
            self.readmissions,
            self.partition_retransmissions
        )
    }
}

/// Data-integrity counters of a run with corruption injection, wire
/// checksums, or the divergence gate's rollback engaged — folded in from
/// `ufc_distsim`'s corruption channel and the driver's divergence guard.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IntegrityCounters {
    /// Payloads the fault plan corrupted on the wire.
    pub corruptions_injected: u64,
    /// Corrupted payloads caught by the CRC32 verify-on-receive check.
    pub corruptions_detected: u64,
    /// Corrupted payloads delivered unverified (checksums off).
    pub corruptions_delivered: u64,
    /// Retransmissions triggered by failed checksum verification.
    pub checksum_retransmissions: u64,
    /// Divergence-gate trips (each either rolled back or fatal).
    pub divergence_trips: u64,
    /// Successful rollbacks to a finite checkpoint after a gate trip.
    pub rollbacks: u64,
    /// Transport connections re-established after a drop (socket runtime:
    /// ECONNRESET/EOF followed by a successful re-handshake).
    pub reconnects: u64,
    /// Nodes declared dead by the supervision deadline ladder (each then
    /// either respawned from checkpoint or evicted).
    pub dead_node_declarations: u64,
}

impl IntegrityCounters {
    /// `true` when every counter is zero.
    #[must_use]
    pub fn is_zero(&self) -> bool {
        *self == IntegrityCounters::default()
    }

    fn to_json(self) -> String {
        format!(
            "{{\"corruptions_injected\":{},\"corruptions_detected\":{},\
             \"corruptions_delivered\":{},\"checksum_retransmissions\":{},\
             \"divergence_trips\":{},\"rollbacks\":{},\"reconnects\":{},\
             \"dead_node_declarations\":{}}}",
            self.corruptions_injected,
            self.corruptions_detected,
            self.corruptions_delivered,
            self.checksum_retransmissions,
            self.divergence_trips,
            self.rollbacks,
            self.reconnects,
            self.dead_node_declarations
        )
    }
}

/// The telemetry snapshot of one ADM-G run: per-phase timing histograms
/// plus the counter groups an engine could observe (`None` where the
/// engine has no such layer — e.g. `traffic` for the in-process solver).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RunTelemetry {
    /// Iterations observed.
    pub iterations: u64,
    /// Per-phase wall-clock histograms, indexed by [`Phase::index`].
    pub phases: [PhaseHistogram; 5],
    /// Solver-layer counters (cache, warm starts, pool).
    pub solver: SolverCounters,
    /// Message-traffic counters (distributed engines only).
    pub traffic: Option<TrafficCounters>,
    /// Fault-handling counters (fault-aware runs only).
    pub fault: Option<FaultCounters>,
    /// Data-integrity counters (runs with corruption injection, checksums,
    /// or divergence rollback only).
    pub integrity: Option<IntegrityCounters>,
}

impl RunTelemetry {
    /// The histogram of one phase.
    #[must_use]
    pub fn phase(&self, phase: Phase) -> &PhaseHistogram {
        &self.phases[phase.index()]
    }

    /// Total wall-clock across all phases and iterations, in nanoseconds.
    #[must_use]
    pub fn total_ns(&self) -> u128 {
        self.phases.iter().map(PhaseHistogram::total_ns).sum()
    }

    /// The run summary as one JSON object (`"type":"summary"`).
    #[must_use]
    pub fn to_json(&self) -> String {
        let phases: Vec<String> = Phase::ALL
            .iter()
            .map(|&p| format!("\"{}\":{}", p.name(), self.phase(p).to_json()))
            .collect();
        let traffic = self
            .traffic
            .map_or_else(|| "null".to_string(), |t| t.to_json());
        let fault = self
            .fault
            .map_or_else(|| "null".to_string(), |f| f.to_json());
        let integrity = self
            .integrity
            .map_or_else(|| "null".to_string(), |i| i.to_json());
        format!(
            "{{\"type\":\"summary\",\"iterations\":{},\"phases\":{{{}}},\"solver\":{},\
             \"traffic\":{},\"fault\":{},\"integrity\":{}}}",
            self.iterations,
            phases.join(","),
            self.solver.to_json(),
            traffic,
            fault,
            integrity
        )
    }
}

/// An [`IterationObserver`] that aggregates the run into a
/// [`RunTelemetry`] (phase histograms + iteration count; the counter
/// groups are filled in afterwards by whichever layer owns them).
#[derive(Debug, Clone, Default)]
pub struct TelemetryCollector {
    telemetry: RunTelemetry,
}

impl TelemetryCollector {
    /// The aggregated snapshot.
    #[must_use]
    pub fn into_telemetry(self) -> RunTelemetry {
        self.telemetry
    }
}

impl IterationObserver for TelemetryCollector {
    fn on_iteration(&mut self, _event: &IterationEvent) {
        self.telemetry.iterations += 1;
    }

    fn wants_phase_timings(&self) -> bool {
        true
    }

    fn on_phase(&mut self, _k: usize, phase: Phase, elapsed: Duration) {
        self.telemetry.phases[phase.index()].record(elapsed);
    }
}

/// Fans one event stream out to two observers (`first`, then `second`).
/// Phase timings are produced if *either* side wants them; a side that
/// does not want them still receives them, which is harmless — `on_phase`
/// defaults to a no-op.
#[derive(Debug, Clone, Default)]
pub struct ObserverChain<A, B>(pub A, pub B);

impl<A: IterationObserver, B: IterationObserver> IterationObserver for ObserverChain<A, B> {
    fn on_iteration(&mut self, event: &IterationEvent) {
        self.0.on_iteration(event);
        self.1.on_iteration(event);
    }

    fn wants_phase_timings(&self) -> bool {
        self.0.wants_phase_timings() || self.1.wants_phase_timings()
    }

    fn on_phase(&mut self, k: usize, phase: Phase, elapsed: Duration) {
        self.0.on_phase(k, phase, elapsed);
        self.1.on_phase(k, phase, elapsed);
    }
}

/// Streams one JSON object per iteration (`"type":"iteration"`) to a
/// writer: the residuals/objective/stop decision plus the five phase
/// durations in nanoseconds.
///
/// `on_*` callbacks cannot return errors, so the first write error is
/// latched and surfaced by [`JsonlSink::finish`]; subsequent events are
/// dropped.
#[derive(Debug)]
pub struct JsonlSink<W: Write> {
    out: W,
    pending_event: Option<IterationEvent>,
    pending_ns: [u128; 5],
    error: Option<io::Error>,
}

impl<W: Write> JsonlSink<W> {
    /// A sink writing JSON lines to `out`.
    pub fn new(out: W) -> Self {
        JsonlSink {
            out,
            pending_event: None,
            pending_ns: [0; 5],
            error: None,
        }
    }

    /// Returns the writer, or the first write error hit while streaming.
    ///
    /// # Errors
    ///
    /// The first `io::Error` any event write produced.
    pub fn finish(self) -> io::Result<W> {
        match self.error {
            Some(e) => Err(e),
            None => Ok(self.out),
        }
    }

    fn emit_line(&mut self) {
        let Some(event) = self.pending_event.take() else {
            return;
        };
        if self.error.is_some() {
            return;
        }
        let phases: Vec<String> = Phase::ALL
            .iter()
            .map(|&p| format!("\"{}\":{}", p.name(), self.pending_ns[p.index()]))
            .collect();
        let line = format!(
            "{{\"type\":\"iteration\",\"iteration\":{},\"link_residual\":{},\
             \"balance_residual\":{},\"dual_residual\":{},\"objective\":{},\
             \"converged\":{},\"phase_ns\":{{{}}}}}",
            event.iteration,
            json_f64(event.link_residual),
            json_f64(event.balance_residual),
            json_f64(event.dual_residual),
            event.objective.map_or_else(|| "null".to_string(), json_f64),
            event.converged,
            phases.join(",")
        );
        if let Err(e) = writeln!(self.out, "{line}") {
            self.error = Some(e);
        }
        self.pending_ns = [0; 5];
    }
}

impl<W: Write> IterationObserver for JsonlSink<W> {
    fn on_iteration(&mut self, event: &IterationEvent) {
        self.pending_event = Some(*event);
    }

    fn wants_phase_timings(&self) -> bool {
        true
    }

    fn on_phase(&mut self, _k: usize, phase: Phase, elapsed: Duration) {
        self.pending_ns[phase.index()] = elapsed.as_nanos();
        // `finish_iteration` is the last phase event of an iteration (the
        // driver emits it even on the stopping iteration), so the buffered
        // line is complete here.
        if phase == Phase::FinishIteration {
            self.emit_line();
        }
    }
}

/// Formats an `f64` as a JSON number token: Rust's `Display` never emits
/// scientific notation for `f64`, and non-finite values (invalid JSON)
/// become `null`.
#[must_use]
pub fn json_f64(x: f64) -> String {
    if x.is_finite() {
        let s = format!("{x}");
        // Keep the token a JSON *number* (Display prints integral floats
        // without a fractional part).
        if s.contains('.') {
            s
        } else {
            format!("{s}.0")
        }
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_tracks_count_extrema_and_buckets() {
        let mut h = PhaseHistogram::default();
        assert_eq!(h.min_ns(), 0);
        h.record(Duration::from_nanos(3));
        h.record(Duration::from_nanos(1000));
        h.record(Duration::from_nanos(1));
        assert_eq!(h.count(), 3);
        assert_eq!(h.min_ns(), 1);
        assert_eq!(h.max_ns(), 1000);
        assert_eq!(h.total_ns(), 1004);
        // 1 → bucket 0, 3 → bucket 1, 1000 → bucket 9.
        assert_eq!(h.nonzero_buckets(), vec![(0, 1), (1, 1), (9, 1)]);
        assert!((h.mean_ns() - 1004.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn chain_merges_wants_and_forwards_both() {
        let chain = ObserverChain((), TelemetryCollector::default());
        assert!(chain.wants_phase_timings());
        let chain = ObserverChain((), ());
        assert!(!chain.wants_phase_timings());
    }

    #[test]
    fn jsonl_sink_emits_one_line_per_iteration() {
        let mut sink = JsonlSink::new(Vec::new());
        let event = IterationEvent {
            iteration: 0,
            link_residual: 0.5,
            balance_residual: 0.25,
            dual_residual: 1.0,
            objective: None,
            converged: false,
        };
        for phase in Phase::ALL {
            if phase == Phase::Correct {
                sink.on_iteration(&event);
            }
            sink.on_phase(1, phase, Duration::from_nanos(7));
        }
        let out = sink.finish().expect("vec writes cannot fail");
        let line = String::from_utf8(out).expect("ascii json");
        assert_eq!(line.matches('\n').count(), 1);
        assert!(line.contains("\"type\":\"iteration\""));
        assert!(line.contains("\"objective\":null"));
        assert!(line.contains("\"finish_iteration\":7"));
    }

    #[test]
    fn json_f64_tokens_are_valid_json() {
        assert_eq!(json_f64(1.5), "1.5");
        assert_eq!(json_f64(2.0), "2.0");
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(f64::INFINITY), "null");
        // Display never switches to scientific notation for f64.
        assert!(!json_f64(1e-300).contains('e'));
    }

    #[test]
    fn summary_json_carries_all_sections() {
        let mut t = RunTelemetry {
            iterations: 2,
            ..RunTelemetry::default()
        };
        t.phases[Phase::Correct.index()].record(Duration::from_micros(5));
        t.traffic = Some(TrafficCounters {
            data_messages: 80,
            ..TrafficCounters::default()
        });
        let json = t.to_json();
        assert!(json.starts_with("{\"type\":\"summary\""));
        assert!(json.contains("\"correct\":{\"count\":1"));
        assert!(json.contains("\"data_messages\":80"));
        assert!(json.contains("\"fault\":null"));
        assert!(json.contains("\"integrity\":null"));
    }

    #[test]
    fn integrity_counters_serialize_and_detect_zero() {
        assert!(IntegrityCounters::default().is_zero());
        let c = IntegrityCounters {
            corruptions_injected: 3,
            corruptions_detected: 2,
            corruptions_delivered: 1,
            checksum_retransmissions: 2,
            divergence_trips: 1,
            rollbacks: 1,
            reconnects: 2,
            dead_node_declarations: 1,
        };
        assert!(!c.is_zero());
        let t = RunTelemetry {
            integrity: Some(c),
            ..RunTelemetry::default()
        };
        let json = t.to_json();
        assert!(json.contains("\"corruptions_injected\":3"));
        assert!(json.contains("\"checksum_retransmissions\":2"));
        assert!(json.contains("\"rollbacks\":1"));
        assert!(json.contains("\"reconnects\":2"));
        assert!(json.contains("\"dead_node_declarations\":1"));
    }
}
