/// How the λ- and a-sub-problem QPs are solved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubproblemMethod {
    /// Exact dense active-set QP (`ufc_opt::ActiveSetQp`). Preferred at the
    /// paper's scale (N = 4 datacenters, M = 10 front-ends).
    ActiveSet,
    /// Accelerated projected gradient (`ufc_opt::Fista`). Scales to large
    /// `M`/`N`; used by the scaling benchmarks.
    Fista,
}

/// Hyper-parameters of the distributed 4-block ADM-G algorithm.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdmgSettings {
    /// Augmented-Lagrangian penalty ρ. The paper's simulations use 0.3.
    pub rho: f64,
    /// Gaussian back-substitution relaxation ε ∈ (0.5, 1].
    pub epsilon: f64,
    /// Iteration cap for the outer ADM-G loop.
    pub max_iterations: usize,
    /// Convergence tolerance on the link residual `max|λ_ij − a_ij|`
    /// (kilo-servers).
    pub eps_link: f64,
    /// Convergence tolerance on the power-balance residual
    /// `max_j |α_j + β_j·Σa_ij − μ_j − ν_j|` (MW).
    pub eps_balance: f64,
    /// Convergence tolerance on the dual residual (∞-norm of the scaled
    /// iterate movement).
    pub eps_dual: f64,
    /// Sub-problem solver selection.
    pub method: SubproblemMethod,
    /// Worker threads for the per-block prediction phases (`0` = use all
    /// available cores, `1` = sequential). Per-block results are gathered in
    /// a fixed order, so every thread count produces bit-identical iterates.
    pub num_threads: usize,
    /// Reuse cached KKT factorizations and warm-started iterates across
    /// ADM-G iterations. The sub-problem Hessians (`ρI`-shifted quadratics)
    /// are constant while only the linear terms move, so each block's KKT
    /// system is factored once per working set and reused every iteration.
    /// `false` reproduces the pre-caching behavior — cold starts and fresh
    /// factorizations every iteration — and exists for benchmarking the
    /// cached path against it.
    pub cache_factorizations: bool,
    /// Solve block-QP KKT systems in `O(n)` via the Sherman–Morrison rank-1
    /// fast path (`ufc_opt::ActiveSetQp::with_rank1_kkt`) whenever the
    /// working set stays in the λ/a sub-problem shape (nonnegativity bounds
    /// plus at most one simplex row). Mandatory for the scaled benchmark
    /// sizes — dense refactorization is `O(n³)` per working set and its
    /// cache holds dense factors per visited working set. The fast path
    /// agrees with the dense path to solver tolerance but is **not**
    /// bit-identical to it; `false` (the default) reproduces the dense-path
    /// arithmetic exactly.
    pub rank1_kkt: bool,
    /// Factor dense KKT systems with the blocked (cache-tiled) LDLᵀ kernel.
    /// The blocked kernel produces bit-identical factors to the unblocked
    /// one — this knob never changes results, only the memory-access
    /// pattern. Off by default so the seed configuration is byte-for-byte
    /// the pre-PR one.
    pub blocked_factorizations: bool,
    /// Collect a [`crate::telemetry::RunTelemetry`] snapshot (per-phase
    /// wall-clock histograms plus solver/traffic/fault counters) and attach
    /// it to the solution/report. Telemetry is strictly observational —
    /// timing reads never feed back into the numerics, so enabling it keeps
    /// the iterate stream bit-identical; disabling it (the default) removes
    /// every clock read from the driver loop.
    pub telemetry: bool,
    /// Verify a CRC32 checksum on every data payload the distributed
    /// runtimes deliver (the `ufc_distsim::message` wire codec). A failed
    /// check triggers a bounded retransmit ladder; exhaustion surfaces as a
    /// typed [`crate::CoreError::CorruptPayload`]. `false` (the default)
    /// skips framing entirely and reproduces the unchecked wire behavior
    /// bit-identically; `true` costs a few header bytes per message but the
    /// codec round-trip is exact, so clean iterate streams stay
    /// bit-identical either way.
    pub verify_checksums: bool,
    /// Residual-explosion factor κ of the divergence gate in
    /// [`crate::engine::drive`]: the gate arms once the combined residual
    /// exceeds `κ ×` the best residual seen so far. Purely observational on
    /// healthy runs — it reads residuals the driver already computed.
    pub divergence_kappa: f64,
    /// Patience window K of the divergence gate: the residual must stay
    /// above `κ × best` for this many *consecutive* iterations before the
    /// gate trips with a typed [`crate::CoreError::Divergence`]. Non-finite
    /// residuals trip immediately regardless of the window.
    pub divergence_window: usize,
    /// When the divergence gate trips, ask the transport to roll the
    /// iterate back to its last finite checkpoint (PR 1 snapshot machinery)
    /// instead of failing. Transports without checkpoints decline and the
    /// typed error is returned as usual. Off by default.
    pub divergence_rollback: bool,
}

impl Default for AdmgSettings {
    /// `ρ = 1.0`, `ε = 0.9`, residual tolerances of `1e-3` in the natural
    /// units (kilo-servers / MW) and a 2000-iteration cap.
    ///
    /// The paper's §IV-A uses `ρ = 0.3` with workload counted in *servers*;
    /// this implementation counts kilo-servers and MW, which rescales the
    /// convergence-equivalent penalty. `ρ = 1.0` reproduces the paper's
    /// Fig.-11 iteration range (min ≈ 37, max ≈ 130) on the default
    /// scenario; use [`AdmgSettings::paper_verbatim`] for the literal 0.3.
    fn default() -> Self {
        AdmgSettings {
            rho: 1.0,
            epsilon: 0.9,
            max_iterations: 2000,
            eps_link: 1e-3,
            eps_balance: 1e-3,
            eps_dual: 1e-3,
            method: SubproblemMethod::ActiveSet,
            num_threads: 1,
            cache_factorizations: true,
            rank1_kkt: false,
            blocked_factorizations: false,
            telemetry: false,
            verify_checksums: false,
            divergence_kappa: 1e6,
            divergence_window: 25,
            divergence_rollback: false,
        }
    }
}

impl AdmgSettings {
    /// The paper's literal hyper-parameters (`ρ = 0.3`): converges to the
    /// same optimum, with roughly 2× the iterations of [`Default`] under
    /// this implementation's unit normalization.
    #[must_use]
    pub fn paper_verbatim() -> Self {
        AdmgSettings {
            rho: 0.3,
            ..AdmgSettings::default()
        }
    }

    /// Validates the hyper-parameters, returning a typed error.
    ///
    /// # Errors
    ///
    /// [`crate::CoreError::InvalidConfig`] if `rho <= 0`,
    /// `epsilon ∉ (0.5, 1]` (the ADM-G requirement), any tolerance is
    /// nonpositive, or the iteration cap is zero.
    pub fn check(&self) -> Result<(), crate::CoreError> {
        if self.rho.is_nan() || self.rho <= 0.0 {
            return Err(crate::CoreError::invalid_config(format!(
                "rho must be positive, got {}",
                self.rho
            )));
        }
        if !(self.epsilon > 0.5 && self.epsilon <= 1.0) {
            return Err(crate::CoreError::invalid_config(format!(
                "ADM-G requires epsilon in (0.5, 1], got {}",
                self.epsilon
            )));
        }
        if self.max_iterations == 0 {
            return Err(crate::CoreError::invalid_config(
                "need at least one iteration",
            ));
        }
        if !(self.eps_link > 0.0 && self.eps_balance > 0.0 && self.eps_dual > 0.0) {
            return Err(crate::CoreError::invalid_config(
                "tolerances must be positive",
            ));
        }
        // `<=` alone would wave NaN through (it compares false), so pair
        // the range check with an explicit finiteness test.
        if self.divergence_kappa <= 1.0 || !self.divergence_kappa.is_finite() {
            return Err(crate::CoreError::invalid_config(format!(
                "divergence kappa must be finite and > 1, got {}",
                self.divergence_kappa
            )));
        }
        if self.divergence_window == 0 {
            return Err(crate::CoreError::invalid_config(
                "divergence window must be at least one iteration",
            ));
        }
        Ok(())
    }

    /// Validates the hyper-parameters.
    ///
    /// # Panics
    ///
    /// Panics if `rho <= 0`, `epsilon ∉ (0.5, 1]` (the ADM-G requirement),
    /// any tolerance is nonpositive, or the iteration cap is zero. See
    /// [`AdmgSettings::check`] for the non-panicking form.
    pub fn validate(&self) {
        if let Err(e) = self.check() {
            panic!("{e}");
        }
    }

    /// Scale-relative stopping thresholds for an instance (Boyd et al.
    /// §3.3): routing residuals are compared against the largest arrival,
    /// power residuals against the largest peak demand. Returns
    /// `(link_tol, balance_tol, dual_tol)`. Used identically by the
    /// in-memory solver and the distributed runtime so their stopping
    /// decisions coincide.
    #[must_use]
    pub fn scaled_tolerances(&self, instance: &ufc_model::UfcInstance) -> (f64, f64, f64) {
        let a_scale = 1.0 + instance.arrivals.iter().cloned().fold(0.0f64, f64::max);
        let p_scale = 1.0
            + (0..instance.n_datacenters())
                .map(|j| instance.demand_mw(j, instance.capacities[j]))
                .fold(0.0f64, f64::max);
        (
            self.eps_link * a_scale,
            self.eps_balance * p_scale,
            self.eps_dual * a_scale.max(p_scale),
        )
    }

    /// Returns a copy with a different penalty ρ (ablation studies).
    #[must_use]
    pub fn with_rho(mut self, rho: f64) -> Self {
        self.rho = rho;
        self
    }

    /// Returns a copy with a different relaxation ε.
    #[must_use]
    pub fn with_epsilon(mut self, epsilon: f64) -> Self {
        self.epsilon = epsilon;
        self
    }

    /// Returns a copy using the given sub-problem method.
    #[must_use]
    pub fn with_method(mut self, method: SubproblemMethod) -> Self {
        self.method = method;
        self
    }

    /// Returns a copy using the given worker-thread count (`0` = auto).
    #[must_use]
    pub fn with_threads(mut self, num_threads: usize) -> Self {
        self.num_threads = num_threads;
        self
    }

    /// Returns a copy with factorization caching and warm starts toggled.
    #[must_use]
    pub fn with_factorization_caching(mut self, enabled: bool) -> Self {
        self.cache_factorizations = enabled;
        self
    }

    /// Returns a copy with the rank-1 fast KKT path toggled.
    #[must_use]
    pub fn with_rank1_kkt(mut self, enabled: bool) -> Self {
        self.rank1_kkt = enabled;
        self
    }

    /// Returns a copy with blocked KKT factorizations toggled.
    #[must_use]
    pub fn with_blocked_factorizations(mut self, enabled: bool) -> Self {
        self.blocked_factorizations = enabled;
        self
    }

    /// Returns a copy with run-telemetry collection toggled.
    #[must_use]
    pub fn with_telemetry(mut self, enabled: bool) -> Self {
        self.telemetry = enabled;
        self
    }

    /// Returns a copy with wire checksum verification toggled.
    #[must_use]
    pub fn with_checksums(mut self, enabled: bool) -> Self {
        self.verify_checksums = enabled;
        self
    }

    /// Returns a copy with the divergence gate's explosion factor κ and
    /// patience window K replaced.
    #[must_use]
    pub fn with_divergence_gate(mut self, kappa: f64, window: usize) -> Self {
        self.divergence_kappa = kappa;
        self.divergence_window = window;
        self
    }

    /// Returns a copy with checkpoint rollback on divergence toggled.
    #[must_use]
    pub fn with_divergence_rollback(mut self, enabled: bool) -> Self {
        self.divergence_rollback = enabled;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper() {
        let s = AdmgSettings::default();
        assert_eq!(s.rho, 1.0);
        assert_eq!(AdmgSettings::paper_verbatim().rho, 0.3);
        s.validate();
    }

    #[test]
    #[should_panic(expected = "epsilon")]
    fn rejects_small_epsilon() {
        AdmgSettings::default().with_epsilon(0.5).validate();
    }

    #[test]
    #[should_panic(expected = "rho")]
    fn rejects_nonpositive_rho() {
        AdmgSettings::default().with_rho(0.0).validate();
    }

    #[test]
    fn check_returns_typed_errors() {
        assert!(AdmgSettings::default().check().is_ok());
        let err = AdmgSettings::default().with_rho(-1.0).check().unwrap_err();
        assert!(matches!(err, crate::CoreError::InvalidConfig { .. }));
        let err = AdmgSettings::default()
            .with_epsilon(0.2)
            .check()
            .unwrap_err();
        assert!(err.to_string().contains("epsilon"));
        let s = AdmgSettings {
            max_iterations: 0,
            ..AdmgSettings::default()
        };
        assert!(s.check().is_err());
        let s = AdmgSettings {
            eps_link: 0.0,
            ..AdmgSettings::default()
        };
        assert!(s.check().is_err());
    }

    #[test]
    fn builder_methods() {
        let s = AdmgSettings::default()
            .with_rho(1.0)
            .with_epsilon(0.8)
            .with_method(SubproblemMethod::Fista)
            .with_threads(4)
            .with_factorization_caching(false);
        assert_eq!(s.rho, 1.0);
        assert_eq!(s.epsilon, 0.8);
        assert_eq!(s.method, SubproblemMethod::Fista);
        assert_eq!(s.num_threads, 4);
        assert!(!s.cache_factorizations);
        s.validate();
    }

    #[test]
    fn default_is_sequential_with_caching() {
        let s = AdmgSettings::default();
        assert_eq!(s.num_threads, 1);
        assert!(s.cache_factorizations);
    }

    #[test]
    fn scaling_fast_paths_default_off() {
        let s = AdmgSettings::default();
        assert!(!s.rank1_kkt, "rank-1 KKT must default off");
        assert!(
            !s.blocked_factorizations,
            "blocked kernels must default off"
        );
        let s = s.with_rank1_kkt(true).with_blocked_factorizations(true);
        assert!(s.rank1_kkt && s.blocked_factorizations);
        s.validate();
    }

    #[test]
    fn default_integrity_knobs_preserve_legacy_behavior() {
        let s = AdmgSettings::default();
        assert!(!s.verify_checksums, "checksums must default off");
        assert!(!s.divergence_rollback, "rollback must default off");
        assert!(s.divergence_kappa >= 1e6);
        assert!(s.divergence_window >= 10);
    }

    #[test]
    fn integrity_builders_and_validation() {
        let s = AdmgSettings::default()
            .with_checksums(true)
            .with_divergence_gate(1e3, 5)
            .with_divergence_rollback(true);
        assert!(s.verify_checksums);
        assert_eq!(s.divergence_kappa, 1e3);
        assert_eq!(s.divergence_window, 5);
        assert!(s.divergence_rollback);
        s.validate();

        let err = AdmgSettings::default()
            .with_divergence_gate(1.0, 5)
            .check()
            .unwrap_err();
        assert!(err.to_string().contains("kappa"));
        let err = AdmgSettings::default()
            .with_divergence_gate(f64::NAN, 5)
            .check()
            .unwrap_err();
        assert!(err.to_string().contains("kappa"));
        let err = AdmgSettings::default()
            .with_divergence_gate(1e4, 0)
            .check()
            .unwrap_err();
        assert!(err.to_string().contains("window"));
    }
}
