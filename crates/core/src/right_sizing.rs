//! Server right-sizing — the paper's §II-C *Remark* extension.
//!
//! The base model keeps every server powered (`S_j` fixed) for reliability;
//! the Remark notes the model extends to choosing the number of *active*
//! servers `S_j ≤ S_j^max`. Because the idle power `α_j = S_j·P_idle·PUE_j`
//! is linear in `S_j` and the objective is decreasing in `α_j`, the optimal
//! `S_j` given a routing is simply the load plus whatever headroom the
//! operator mandates. That observation yields a simple and effective
//! fixed-point scheme:
//!
//! 1. solve the UFC problem at the current capacities,
//! 2. shrink each datacenter to `max(headroom·load_j, floor_j)`,
//! 3. repeat until the capacities stop changing.
//!
//! Each round reduces the idle-power cost while keeping the instance
//! feasible (capacity never drops below the routed load), so the UFC is
//! non-decreasing across rounds up to solver tolerance — asserted in tests.

use ufc_model::UfcInstance;

use crate::{AdmgSettings, AdmgSolution, AdmgSolver, CoreError, Result, Strategy};

/// Options for the right-sizing fixed point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RightSizingOptions {
    /// Capacity headroom multiplier over the routed load (≥ 1); the paper's
    /// reliability concern argues for slack above the bare load.
    pub headroom: f64,
    /// Minimum active fraction of `S_j^max` that must stay powered.
    pub min_active_fraction: f64,
    /// Maximum solve–shrink rounds.
    pub max_rounds: usize,
    /// Convergence tolerance on capacity change (kilo-servers, ∞-norm).
    pub tolerance: f64,
}

impl Default for RightSizingOptions {
    /// 10% headroom, at least 20% of servers active, up to 8 rounds.
    fn default() -> Self {
        RightSizingOptions {
            headroom: 1.1,
            min_active_fraction: 0.2,
            max_rounds: 8,
            tolerance: 1e-3,
        }
    }
}

/// Outcome of a right-sizing run.
#[derive(Debug, Clone)]
pub struct RightSizingOutcome {
    /// Solution on the final right-sized instance.
    pub solution: AdmgSolution,
    /// Final active server counts `S_j` (kilo-servers).
    pub active_servers_k: Vec<f64>,
    /// Solve–shrink rounds performed.
    pub rounds: usize,
    /// UFC of the all-servers-on baseline (for reporting the gain).
    pub baseline_ufc: f64,
    /// The right-sized instance itself (for evaluation/inspection).
    pub instance: UfcInstance,
}

impl RightSizingOutcome {
    /// UFC gain of right-sizing over the all-on baseline (absolute $).
    #[must_use]
    pub fn ufc_gain(&self) -> f64 {
        self.solution.breakdown.ufc() - self.baseline_ufc
    }
}

/// Runs the solve–shrink fixed point starting from the instance's full
/// capacities (which play the role of `S_j^max`).
///
/// # Errors
///
/// * Everything [`AdmgSolver::solve`] can return.
/// * [`CoreError::Unsupported`] for invalid options.
pub fn solve_with_right_sizing(
    instance: &UfcInstance,
    strategy: Strategy,
    settings: AdmgSettings,
    options: RightSizingOptions,
) -> Result<RightSizingOutcome> {
    if options.headroom < 1.0 {
        return Err(CoreError::Unsupported {
            context: format!("headroom must be ≥ 1, got {}", options.headroom),
        });
    }
    if !(0.0..=1.0).contains(&options.min_active_fraction) {
        return Err(CoreError::Unsupported {
            context: format!(
                "min_active_fraction must be in [0, 1], got {}",
                options.min_active_fraction
            ),
        });
    }
    if options.max_rounds == 0 {
        return Err(CoreError::Unsupported {
            context: "need at least one round".to_owned(),
        });
    }

    let solver = AdmgSolver::new(settings);
    let s_max = instance.capacities.clone();
    let baseline = solver.solve(instance, strategy)?;
    let baseline_ufc = baseline.breakdown.ufc();

    let mut current = instance.clone();
    let mut solution = baseline;
    let mut rounds = 0;
    for _ in 0..options.max_rounds {
        rounds += 1;
        let loads = solution.point.loads();
        // Target capacities: headroom over load, floored by the mandated
        // active fraction, capped by the physical fleet.
        let mut next_caps = Vec::with_capacity(s_max.len());
        let mut change = 0.0f64;
        for j in 0..s_max.len() {
            let target = (options.headroom * loads[j])
                .max(options.min_active_fraction * s_max[j])
                .min(s_max[j]);
            change = change.max((target - current.capacities[j]).abs());
            next_caps.push(target);
        }
        if change <= options.tolerance {
            break;
        }
        // α_j scales linearly with the active server count.
        let mut next = current.clone();
        for j in 0..s_max.len() {
            next.alpha[j] = instance.alpha[j] * next_caps[j] / s_max[j];
            next.capacities[j] = next_caps[j];
        }
        // Warm-start from the previous round's iterate: the instances
        // differ only in α_j and the capacity bound.
        solution = solver.solve_warm(&next, strategy, solution.state.clone())?;
        current = next;
    }

    Ok(RightSizingOutcome {
        active_servers_k: current.capacities.clone(),
        solution,
        rounds,
        baseline_ufc,
        instance: current,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ufc_model::EmissionCostFn;

    fn tiny() -> UfcInstance {
        UfcInstance::new(
            vec![0.5, 0.7],
            vec![2.0, 2.0], // plenty of spare capacity to switch off
            vec![0.24, 0.24],
            vec![0.12, 0.12],
            vec![0.48, 0.48],
            vec![30.0, 70.0],
            80.0,
            vec![0.5, 0.3],
            vec![vec![0.01, 0.02], vec![0.02, 0.01]],
            10.0,
            vec![
                EmissionCostFn::linear(25.0).unwrap(),
                EmissionCostFn::linear(25.0).unwrap(),
            ],
            1.0,
        )
        .unwrap()
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn right_sizing_improves_ufc_on_underloaded_cloud() {
        let inst = tiny();
        let out = solve_with_right_sizing(
            &inst,
            Strategy::Hybrid,
            AdmgSettings::default(),
            RightSizingOptions::default(),
        )
        .unwrap();
        // Total load is 1.2 kservers against 4 kservers of fleet: most of
        // the idle power disappears, so UFC must improve clearly.
        assert!(
            out.ufc_gain() > 0.0,
            "right-sizing gained {} $",
            out.ufc_gain()
        );
        // Active counts respect floor and load+headroom.
        let loads = out.solution.point.loads();
        for j in 0..2 {
            assert!(out.active_servers_k[j] >= 0.2 * inst.capacities[j] - 1e-9);
            assert!(out.active_servers_k[j] <= inst.capacities[j] + 1e-9);
            assert!(
                out.active_servers_k[j] >= loads[j] - 1e-6,
                "capacity below load"
            );
        }
        assert!(out.rounds >= 1);
    }

    #[test]
    fn right_sizing_point_is_feasible_on_final_instance() {
        let out = solve_with_right_sizing(
            &tiny(),
            Strategy::Hybrid,
            AdmgSettings::default(),
            RightSizingOptions::default(),
        )
        .unwrap();
        assert!(out.solution.point.feasibility_residual(&out.instance) < 1e-6);
    }

    #[test]
    fn full_load_leaves_capacities_untouched() {
        // Arrivals equal to capacity: nothing to switch off beyond headroom.
        let mut inst = tiny();
        inst.arrivals = vec![1.8, 1.8];
        let out = solve_with_right_sizing(
            &inst,
            Strategy::Hybrid,
            AdmgSettings::default(),
            RightSizingOptions {
                headroom: 1.2,
                ..RightSizingOptions::default()
            },
        )
        .unwrap();
        // load ≈ 1.8 per DC, headroom 1.2 ⇒ target ≈ 2.0+ capped at 2.0.
        for &cap in &out.active_servers_k {
            assert!(cap > 1.9, "capacity shrunk below the load: {cap}");
        }
    }

    #[test]
    fn rejects_bad_options() {
        let inst = tiny();
        for opts in [
            RightSizingOptions {
                headroom: 0.9,
                ..RightSizingOptions::default()
            },
            RightSizingOptions {
                min_active_fraction: 1.5,
                ..RightSizingOptions::default()
            },
            RightSizingOptions {
                max_rounds: 0,
                ..RightSizingOptions::default()
            },
        ] {
            assert!(matches!(
                solve_with_right_sizing(&inst, Strategy::Hybrid, AdmgSettings::default(), opts),
                Err(CoreError::Unsupported { .. })
            ));
        }
    }

    #[test]
    fn grid_only_right_sizing_reduces_energy_cost() {
        let inst = tiny();
        let solver = AdmgSolver::new(AdmgSettings::default());
        let baseline = solver.solve(&inst, Strategy::GridOnly).unwrap();
        let out = solve_with_right_sizing(
            &inst,
            Strategy::GridOnly,
            AdmgSettings::default(),
            RightSizingOptions::default(),
        )
        .unwrap();
        assert!(
            out.solution.breakdown.energy_cost_dollars < baseline.breakdown.energy_cost_dollars,
            "right-sizing did not cut the energy bill"
        );
    }
}
