use std::fmt;

use ufc_model::ModelError;
use ufc_opt::OptError;

/// Errors produced by the ADM-G solver and its companions.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// The iteration cap was reached before the residual tolerances.
    NotConverged {
        /// Iterations performed.
        iterations: usize,
        /// Final primal residual (∞-norm over both coupling constraints).
        primal_residual: f64,
        /// Final dual residual.
        dual_residual: f64,
    },
    /// A sub-problem solver failed.
    Subproblem {
        /// Which sub-problem (e.g. `lambda[3]`).
        which: String,
        /// Underlying failure.
        source: OptError,
    },
    /// The model rejected an instance or an operating point.
    Model(ModelError),
    /// The requested configuration is unsupported (e.g. centralized QP with
    /// a stepped emission cost).
    Unsupported {
        /// Description of the unsupported combination.
        context: String,
    },
    /// A distributed node stopped responding and could not be recovered
    /// (crash past the eviction deadline, unexpected thread death, or a
    /// failure class the runtime cannot degrade around, such as a
    /// permanently dead front-end).
    NodeFailure {
        /// Which node (e.g. `frontend[3]`, `datacenter[1]`).
        node: String,
        /// Iteration at which the failure became unrecoverable.
        iteration: usize,
        /// What the supervisor tried and why it gave up.
        context: String,
    },
    /// A configuration value was rejected during validation (the
    /// `Result`-returning counterpart of the panicking constructors).
    InvalidConfig {
        /// Which parameter and why.
        context: String,
    },
    /// A numerical routine failed in a way the caller may want to handle —
    /// e.g. a singular Gram block in the matrix-form reference, where the
    /// input state (not the UFC structure) is to blame.
    Numerical {
        /// Which routine and what failed.
        context: String,
    },
    /// A checkpoint blob failed to decode (wrong magic, truncated payload,
    /// or shape mismatch against the instance).
    Checkpoint {
        /// What was wrong with the blob.
        context: String,
    },
    /// A wire payload failed its integrity check and could not be repaired
    /// (checksum mismatch that survived the bounded retransmit ladder, or a
    /// frame that does not decode at all).
    CorruptPayload {
        /// Which link or node the payload was on (e.g.
        /// `frontend[0]→datacenter[2]`, or `wire` for a bare decode).
        node: String,
        /// Iteration during which the payload was rejected (0 for a bare
        /// decode outside a run).
        iteration: usize,
        /// What failed (checksum values, exhausted attempts, framing).
        context: String,
    },
    /// A peer failed transport authentication before any iteration state
    /// was exchanged: wrong shared key, replayed or truncated handshake,
    /// downgrade to the unauthenticated hello, or a run-config digest
    /// mismatch.
    Unauthorized {
        /// Which peer or endpoint rejected the exchange (e.g.
        /// `worker-3`, `acceptor`).
        peer: String,
        /// What failed (mac mismatch, downgrade, stale nonce, digest skew).
        context: String,
    },
    /// The iterate stream diverged: a non-finite value entered the state, or
    /// the residuals exploded past the divergence gate's threshold for its
    /// full patience window.
    Divergence {
        /// Protocol phase in which the divergence was detected (e.g.
        /// `correct`, `step_datacenters`).
        phase: String,
        /// Iteration at which the gate tripped.
        iteration: usize,
        /// Offending node when known (e.g. `datacenter[1]`).
        node: Option<String>,
        /// What the gate observed.
        context: String,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::NotConverged {
                iterations,
                primal_residual,
                dual_residual,
            } => write!(
                f,
                "ADM-G did not converge in {iterations} iterations \
                 (primal {primal_residual:e}, dual {dual_residual:e})"
            ),
            CoreError::Subproblem { which, source } => {
                write!(f, "sub-problem {which} failed: {source}")
            }
            CoreError::Model(e) => write!(f, "model error: {e}"),
            CoreError::Unsupported { context } => write!(f, "unsupported: {context}"),
            CoreError::NodeFailure {
                node,
                iteration,
                context,
            } => write!(f, "node {node} failed at iteration {iteration}: {context}"),
            CoreError::InvalidConfig { context } => {
                write!(f, "invalid configuration: {context}")
            }
            CoreError::Numerical { context } => write!(f, "numerical failure: {context}"),
            CoreError::Checkpoint { context } => write!(f, "bad checkpoint: {context}"),
            CoreError::CorruptPayload {
                node,
                iteration,
                context,
            } => write!(
                f,
                "corrupt payload on {node} at iteration {iteration}: {context}"
            ),
            CoreError::Unauthorized { peer, context } => {
                write!(f, "unauthorized peer {peer}: {context}")
            }
            CoreError::Divergence {
                phase,
                iteration,
                node,
                context,
            } => match node {
                Some(node) => write!(
                    f,
                    "divergence in phase {phase} at iteration {iteration} ({node}): {context}"
                ),
                None => write!(
                    f,
                    "divergence in phase {phase} at iteration {iteration}: {context}"
                ),
            },
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Subproblem { source, .. } => Some(source),
            CoreError::Model(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ModelError> for CoreError {
    fn from(e: ModelError) -> Self {
        CoreError::Model(e)
    }
}

impl CoreError {
    /// Wraps an [`OptError`] with the sub-problem label.
    pub fn subproblem(which: impl Into<String>, source: OptError) -> Self {
        CoreError::Subproblem {
            which: which.into(),
            source,
        }
    }

    /// Builds a [`CoreError::NodeFailure`].
    pub fn node_failure(
        node: impl Into<String>,
        iteration: usize,
        context: impl Into<String>,
    ) -> Self {
        CoreError::NodeFailure {
            node: node.into(),
            iteration,
            context: context.into(),
        }
    }

    /// Builds a [`CoreError::InvalidConfig`].
    pub fn invalid_config(context: impl Into<String>) -> Self {
        CoreError::InvalidConfig {
            context: context.into(),
        }
    }

    /// Builds a [`CoreError::Numerical`].
    pub fn numerical(context: impl Into<String>) -> Self {
        CoreError::Numerical {
            context: context.into(),
        }
    }

    /// Builds a [`CoreError::Checkpoint`].
    pub fn checkpoint(context: impl Into<String>) -> Self {
        CoreError::Checkpoint {
            context: context.into(),
        }
    }

    /// Builds a [`CoreError::CorruptPayload`].
    pub fn corrupt_payload(
        node: impl Into<String>,
        iteration: usize,
        context: impl Into<String>,
    ) -> Self {
        CoreError::CorruptPayload {
            node: node.into(),
            iteration,
            context: context.into(),
        }
    }

    /// Builds a [`CoreError::Unauthorized`].
    pub fn unauthorized(peer: impl Into<String>, context: impl Into<String>) -> Self {
        CoreError::Unauthorized {
            peer: peer.into(),
            context: context.into(),
        }
    }

    /// Builds a [`CoreError::Divergence`] without a blamed node.
    pub fn divergence(
        phase: impl Into<String>,
        iteration: usize,
        context: impl Into<String>,
    ) -> Self {
        CoreError::Divergence {
            phase: phase.into(),
            iteration,
            node: None,
            context: context.into(),
        }
    }

    /// Builds a [`CoreError::Divergence`] blaming a specific node.
    pub fn divergence_at(
        phase: impl Into<String>,
        iteration: usize,
        node: impl Into<String>,
        context: impl Into<String>,
    ) -> Self {
        CoreError::Divergence {
            phase: phase.into(),
            iteration,
            node: Some(node.into()),
            context: context.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        use std::error::Error;
        let e = CoreError::NotConverged {
            iterations: 10,
            primal_residual: 1e-2,
            dual_residual: 1e-3,
        };
        assert!(e.to_string().contains("10"));
        assert!(e.source().is_none());

        let e = CoreError::subproblem("lambda[0]", OptError::invalid("x"));
        assert!(e.to_string().contains("lambda[0]"));
        assert!(e.source().is_some());

        let e = CoreError::from(ModelError::param("bad"));
        assert!(e.to_string().contains("bad"));
    }

    #[test]
    fn fault_variants_display() {
        let e = CoreError::node_failure("datacenter[2]", 17, "evicted after 3 attempts");
        assert!(e.to_string().contains("datacenter[2]"));
        assert!(e.to_string().contains("17"));

        let e = CoreError::invalid_config("rho must be positive");
        assert!(e.to_string().contains("rho"));

        let e = CoreError::checkpoint("truncated payload");
        assert!(e.to_string().contains("truncated"));

        let e = CoreError::numerical("gram block 2 singular");
        assert!(e.to_string().contains("gram block 2"));
    }

    #[test]
    fn integrity_variants_display() {
        let e = CoreError::corrupt_payload("frontend[0]→datacenter[2]", 9, "crc32 mismatch");
        assert!(e.to_string().contains("frontend[0]→datacenter[2]"));
        assert!(e.to_string().contains("iteration 9"));
        assert!(e.to_string().contains("crc32"));

        let e = CoreError::divergence("correct", 41, "link residual is NaN");
        assert!(e.to_string().contains("correct"));
        assert!(e.to_string().contains("41"));
        assert!(!e.to_string().contains("("), "no node parenthetical: {e}");

        let e = CoreError::divergence_at("step_datacenters", 7, "datacenter[1]", "ν became +inf");
        assert!(e.to_string().contains("datacenter[1]"));
        assert!(e.to_string().contains("step_datacenters"));
    }

    #[test]
    fn unauthorized_displays_peer_and_context() {
        let e = CoreError::unauthorized("worker-3", "handshake mac mismatch");
        assert!(e.to_string().contains("worker-3"));
        assert!(e.to_string().contains("mac mismatch"));
        assert!(e.to_string().contains("unauthorized"));
    }
}
