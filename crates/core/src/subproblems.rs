//! The five procedures of the ADM-G prediction (ADMM) step — §III-C of the
//! paper, Eqs. (17)–(20) plus the dual updates.
//!
//! Each function computes one block's *predicted* iterate (the tilde
//! quantities) exactly as the corresponding sub-problem prescribes:
//!
//! | step | owner | problem | method |
//! |------|-------|---------|--------|
//! | [`lambda_step`] | each front-end `i` | QP over the load-balance simplex (17) | active-set (exact) or FISTA |
//! | [`mu_step`] | each datacenter `j` | 1-variable box QP (18) | closed form |
//! | [`nu_step`] | each datacenter `j` | 1-variable convex problem (19) | closed form (affine/quadratic `V`) or derivative bisection |
//! | [`storage_step`] | each datacenter `j` | 1-variable box QP (storage extension) | closed form |
//! | [`a_step`] | each datacenter `j` | QP over the capped simplex (20) | active-set (exact) or FISTA |
//! | [`dual_step`] | both sides | gradient ascent on the two coupling rows | closed form |
//!
//! The "block activity" flags implement the paper's strategy restrictions:
//! `GridOnly` clamps `μ ≡ 0` (via `μ_max = 0`), `FuelCellOnly` pins `ν ≡ 0`
//! and drops the ν block from the iteration, which keeps the remaining
//! blocks a valid (3-block) ADM-G instance.

use ufc_linalg::Matrix;
use ufc_model::{utility::disutility_rank1_gamma, EmissionCostFn, QueueingCost, UfcInstance};
use ufc_opt::projection::{project_capped_simplex, project_simplex};
use ufc_opt::{scalar, ActiveSetQp, Fista, QuadObjective, SmoothObjective};

use crate::{AdmgState, CoreError, Result, SubproblemMethod};

/// Iteration caps/tolerances for the inner QP solves; much tighter than the
/// outer loop so sub-problem error never dominates the ADM-G residuals.
/// Shared with the persistent kernels in [`crate::workspace`] so the cached
/// and uncached paths solve identical problems.
pub(crate) const FISTA_MAX_ITER: usize = 50_000;
pub(crate) const FISTA_TOL: f64 = 1e-10;
/// The congestion barrier's curvature makes ultra-tight inner tolerances
/// disproportionately expensive; 1e-8 keeps the inner error two orders below
/// the outer stopping rule.
pub(crate) const FISTA_CONGESTED_TOL: f64 = 1e-8;

/// λ-minimization (17): each front-end solves a simplex-constrained QP with
/// Hessian `ρI + (2w/A_i)·L_i L_iᵀ` and linear term `φ_ij − ρ a_ij`.
///
/// Returns the predicted routing `λ̃` as an `M × N` flat.
///
/// # Errors
///
/// Returns [`CoreError::Subproblem`] if a front-end's QP fails.
pub fn lambda_step(
    instance: &UfcInstance,
    rho: f64,
    method: SubproblemMethod,
    state: &AdmgState,
) -> Result<Vec<f64>> {
    let (m, n) = (state.m, state.n);
    let w = instance.weight_per_kserver();
    let mut lambda_tilde = vec![0.0; m * n];
    // The constraint data is identical for every front-end and the Hessian
    // diagonal is always ρI — build them once and retarget the objective's
    // rank-one latency term and linear term per block, borrowing the latency
    // row instead of cloning it.
    let a_eq = Matrix::from_fn(1, n, |_, _| 1.0);
    let a_in = Matrix::from_fn(n, n, |r, cidx| if r == cidx { -1.0 } else { 0.0 });
    let b_in = vec![0.0; n];
    let mut c = vec![0.0; n];
    let mut objective =
        QuadObjective::diag_rank1(vec![rho; n], 0.0, vec![0.0; n], vec![0.0; n], 0.0);
    // One start buffer recycled across blocks: each solve consumes it and
    // its solution vector becomes the next block's start storage.
    let mut start_buf: Vec<f64> = Vec::new();
    for i in 0..m {
        let arrival = instance.arrivals[i];
        if arrival == 0.0 {
            // Zero-demand front-end: the simplex of radius 0 is the
            // singleton {0}; the row is already zero. Skipping the QP keeps
            // this path bit-identical to the workspace/node short-circuit.
            continue;
        }
        let gamma = disutility_rank1_gamma(w, arrival);
        objective.set_rank1(gamma, &instance.latency_s[i]);
        for (j, cj) in c.iter_mut().enumerate() {
            *cj = state.varphi[state.idx(i, j)] - rho * state.a[state.idx(i, j)];
        }
        objective.set_linear(&c);
        let mut start = std::mem::take(&mut start_buf);
        start.clear();
        start.resize(n, arrival / n as f64);
        let row = match method {
            SubproblemMethod::ActiveSet => {
                ActiveSetQp::default()
                    .solve(&objective, &a_eq, &[arrival], &a_in, &b_in, start)
                    .map_err(|e| CoreError::subproblem(format!("lambda[{i}]"), e))?
                    .x
            }
            SubproblemMethod::Fista => {
                Fista::new(FISTA_MAX_ITER, FISTA_TOL)
                    .minimize(&objective, |x| project_simplex(x, arrival), start)
                    .map_err(|e| CoreError::subproblem(format!("lambda[{i}]"), e))?
                    .x
            }
        };
        lambda_tilde[i * n..(i + 1) * n].copy_from_slice(&row);
        start_buf = row;
    }
    Ok(lambda_tilde)
}

/// Closed-form μ-minimization for a single datacenter, parameterized on raw
/// scalars: `μ̃ = clamp(demand − ν − (φ + fuel_cost_h)/ρ, 0, μ_max)` where
/// `fuel_cost_h = h·p₀` is the per-slot fuel-cell price.
///
/// This is the single definition shared by [`mu_step`], the solver's fused
/// datacenter phase, and the distributed datacenter node — their iterates
/// must match bit-for-bit.
#[must_use]
pub fn mu_scalar_step(
    demand: f64,
    nu: f64,
    phi: f64,
    fuel_cost_h: f64,
    rho: f64,
    mu_max: f64,
) -> f64 {
    mu_scalar_step_bounded(demand, nu, phi, fuel_cost_h, rho, 0.0, mu_max)
}

/// [`mu_scalar_step`] over an arbitrary box `[μ_lo, μ_hi]` — the ramp-limit
/// generalization used by the storage block. With `(0, μ_max)` this is the
/// exact same computation as the unbounded-ramp step (the classic schedule's
/// degenerate case).
#[must_use]
pub fn mu_scalar_step_bounded(
    demand: f64,
    nu: f64,
    phi: f64,
    fuel_cost_h: f64,
    rho: f64,
    mu_lo: f64,
    mu_hi: f64,
) -> f64 {
    scalar::prox_linear_quadratic(demand - nu, phi + fuel_cost_h, rho, mu_lo, mu_hi)
}

/// Closed-form storage (battery net-discharge) minimization for a single
/// datacenter, parameterized on raw scalars: the block minimizes
/// `γh·d² + κh·d + φ·d + ρ/2 (d − r)²` over the box `[d_lo, d_hi]`, where
/// `r = demand − μ̃ − ν̃` is the balance residual left by the earlier blocks,
/// `value_cost_h = κ·h` prices drained stored energy, and
/// `degradation_h = γ·h` is the per-slot wear coefficient. Stationarity
/// gives `d̃ = clamp((ρ·r − (φ + κh)) / (ρ + 2γh), d_lo, d_hi)`.
///
/// Shared by [`storage_step`], the solver's fused datacenter phase, and the
/// distributed datacenter node — their iterates must match bit-for-bit.
/// (Deliberately *not* routed through `prox_linear_quadratic`: its
/// `d − s/ρ` form is algebraically equal but not bitwise equal to this
/// closed form once the quadratic term enters the denominator.)
#[must_use]
#[allow(clippy::too_many_arguments)]
pub fn storage_scalar_step(
    demand: f64,
    mu_tilde: f64,
    nu_tilde: f64,
    phi: f64,
    value_cost_h: f64,
    degradation_h: f64,
    rho: f64,
    d_lo: f64,
    d_hi: f64,
) -> f64 {
    let r = demand - mu_tilde - nu_tilde;
    ((rho * r - (phi + value_cost_h)) / (rho + 2.0 * degradation_h)).clamp(d_lo, d_hi)
}

/// Closed-form / bisection ν-minimization for a single datacenter,
/// parameterized on raw scalars: `grid_cost_h = h·p_j` and
/// `carbon_h = C_j·h`. Shared by [`nu_step`], the solver's fused datacenter
/// phase, and the distributed datacenter node (bit-for-bit).
#[must_use]
pub fn nu_scalar_step(
    demand: f64,
    mu_tilde: f64,
    phi: f64,
    grid_cost_h: f64,
    carbon_h: f64,
    emission: &EmissionCostFn,
    rho: f64,
) -> f64 {
    let d = demand - mu_tilde;
    let ch = carbon_h;
    let base = grid_cost_h + phi;
    match emission {
        EmissionCostFn::Linear { rate } => {
            scalar::prox_linear_quadratic(d, base + rate * ch, rho, 0.0, f64::INFINITY)
        }
        EmissionCostFn::Quadratic { linear, quad } => {
            // Stationarity: l·ch + 2q·ch²·ν + base + ρ(ν − d) = 0.
            let nu = (rho * d - linear * ch - base) / (rho + 2.0 * quad * ch * ch);
            nu.max(0.0)
        }
        stepped @ EmissionCostFn::Stepped { .. } => {
            let df = |nu: f64| ch * stepped.marginal(ch * nu) + base + rho * (nu - d);
            // Expand the bracket until the derivative turns positive.
            let mut hi = (2.0 * d.abs()).max(1.0);
            for _ in 0..120 {
                if df(hi) > 0.0 {
                    break;
                }
                hi *= 2.0;
            }
            scalar::bisect_derivative(df, 0.0, hi, 1e-12 * (1.0 + hi))
        }
    }
}

/// μ-minimization (18): the closed-form clamp
/// `μ̃_j = clamp(α_j + β_j Σ_i a_ij − ν_j − (φ_j + h·p₀)/ρ, 0, μ_j^max)`.
///
/// With `active = false` (the *Grid* strategy) the block is pinned at zero.
#[must_use]
pub fn mu_step(instance: &UfcInstance, rho: f64, state: &AdmgState, active: bool) -> Vec<f64> {
    if !active {
        return vec![0.0; state.n];
    }
    let h = instance.slot_hours;
    let loads = state.a_loads();
    (0..state.n)
        .map(|j| {
            let (mu_lo, mu_hi) = match &instance.storage {
                Some(sp) => sp.mu_bounds(j, instance.mu_max[j]),
                None => (0.0, instance.mu_max[j]),
            };
            mu_scalar_step_bounded(
                instance.demand_mw(j, loads[j]) - state.d[j],
                state.nu[j],
                state.phi[j],
                h * instance.fuel_cell_price,
                rho,
                mu_lo,
                mu_hi,
            )
        })
        .collect()
}

/// ν-minimization (19): each datacenter minimizes
/// `V_j(C_j·h·ν) + (h·p_j + φ_j)ν + ρ/2(α_j + β_jΣa − μ̃_j − ν)²` over
/// `ν ≥ 0`; closed-form for affine and quadratic `V_j`, derivative
/// bisection for stepped tariffs.
///
/// With `active = false` (the *Fuel cell* strategy) the block is pinned at
/// zero.
#[must_use]
pub fn nu_step(
    instance: &UfcInstance,
    rho: f64,
    state: &AdmgState,
    mu_tilde: &[f64],
    active: bool,
) -> Vec<f64> {
    if !active {
        return vec![0.0; state.n];
    }
    let h = instance.slot_hours;
    let loads = state.a_loads();
    (0..state.n)
        .map(|j| {
            nu_scalar_step(
                instance.demand_mw(j, loads[j]) - state.d[j],
                mu_tilde[j],
                state.phi[j],
                h * instance.grid_price[j],
                instance.carbon_t_per_mwh[j] * h,
                &instance.emission_cost[j],
                rho,
            )
        })
        .collect()
}

/// Storage (battery) minimization — the 5th block of the extended
/// schedule: each datacenter with a battery solves the 1-variable box QP
/// of [`storage_scalar_step`] against the balance residual left by `μ̃`
/// and `ν̃` over the *full* demand (the block replaces, not adjusts, the
/// previous iterate's `d`). Datacenters without a battery — and every
/// datacenter on spatial-only instances — are pinned at exactly `+0.0`.
#[must_use]
pub fn storage_step(
    instance: &UfcInstance,
    rho: f64,
    state: &AdmgState,
    mu_tilde: &[f64],
    nu_tilde: &[f64],
) -> Vec<f64> {
    let Some(sp) = &instance.storage else {
        return vec![0.0; state.n];
    };
    let h = instance.slot_hours;
    let loads = state.a_loads();
    (0..state.n)
        .map(|j| {
            if !sp.active(j) {
                return 0.0;
            }
            let (d_lo, d_hi) = sp.discharge_bounds(j, h);
            storage_scalar_step(
                instance.demand_mw(j, loads[j]),
                mu_tilde[j],
                nu_tilde[j],
                state.phi[j],
                sp.value_per_mwh[j] * h,
                sp.degradation_per_mwh * h,
                rho,
                d_lo,
                d_hi,
            )
        })
        .collect()
}

/// The a-sub-problem objective with the optional congestion barrier
/// (extension): quadratic part of (20) plus `Q_j(Σ_i a_ij)`.
#[derive(Debug, Clone)]
pub struct CongestedAStep {
    quad: QuadObjective,
    queueing: QueueingCost,
    capacity: f64,
}

impl CongestedAStep {
    /// Assembles the congested a-step objective for one datacenter.
    #[must_use]
    pub fn new(quad: QuadObjective, queueing: QueueingCost, capacity: f64) -> Self {
        CongestedAStep {
            quad,
            queueing,
            capacity,
        }
    }

    /// Retargets the linear term of the quadratic part (the barrier carries
    /// no linear data), mirroring [`QuadObjective::set_linear`] so a
    /// persistent congested kernel can be reused across solves instead of
    /// cloning the objective each iteration.
    pub fn set_linear(&mut self, c: &[f64]) {
        self.quad.set_linear(c);
    }
}

impl SmoothObjective for CongestedAStep {
    fn dim(&self) -> usize {
        self.quad.dim()
    }

    fn value(&self, x: &[f64]) -> f64 {
        let load: f64 = x.iter().sum();
        self.quad.value(x) + self.queueing.value(load.max(0.0), self.capacity)
    }

    fn gradient(&self, x: &[f64]) -> Vec<f64> {
        let load: f64 = x.iter().sum();
        let dq = self.queueing.derivative(load.max(0.0), self.capacity);
        let mut g = self.quad.gradient(x);
        for gi in &mut g {
            *gi += dq;
        }
        g
    }

    fn lipschitz_bound(&self) -> f64 {
        // Curvature of Q(Σx) is unbounded near the ceiling; start from the
        // quadratic part's bound and let backtracking find the rest.
        SmoothObjective::lipschitz_bound(&self.quad)
    }
}

/// a-minimization (20): each datacenter solves a QP with Hessian
/// `ρ(I + β_j²·1 1ᵀ)` over `{a ≥ 0, Σ_i a_ij ≤ S_j}`. With the queueing
/// extension enabled the objective gains the convex congestion barrier and
/// is solved by backtracking FISTA regardless of the configured method.
///
/// Returns the predicted auxiliary routing `ã` as an `M × N` flat.
///
/// # Errors
///
/// Returns [`CoreError::Subproblem`] if a datacenter's QP fails.
#[allow(clippy::too_many_arguments)]
pub fn a_step(
    instance: &UfcInstance,
    rho: f64,
    method: SubproblemMethod,
    state: &AdmgState,
    lambda_tilde: &[f64],
    mu_tilde: &[f64],
    nu_tilde: &[f64],
    d_tilde: &[f64],
) -> Result<Vec<f64>> {
    let (m, n) = (state.m, state.n);
    let mut a_tilde = vec![0.0; m * n];
    // Constraint rows (−a_i ≤ 0 for each i, then Σ_i a_i ≤ S_j) and the
    // objective buffers are shared across datacenters; only the cap entry,
    // the rank-one coefficient and the linear term are retargeted per block.
    let a_eq = Matrix::zeros(0, m);
    let mut a_in = Matrix::zeros(m + 1, m);
    let mut b_in = vec![0.0; m + 1];
    for i in 0..m {
        a_in[(i, i)] = -1.0;
        a_in[(m, i)] = 1.0;
    }
    let ones = vec![1.0; m];
    let mut c = vec![0.0; m];
    let mut objective =
        QuadObjective::diag_rank1(vec![rho; m], 0.0, ones.clone(), vec![0.0; m], 0.0);
    // One start buffer recycled across columns (see `lambda_step`).
    let mut start_buf: Vec<f64> = Vec::new();
    for j in 0..n {
        let beta = instance.beta[j];
        let drift = instance.alpha[j] - mu_tilde[j] - nu_tilde[j] - d_tilde[j];
        for i in 0..m {
            c[i] = -rho * lambda_tilde[state.idx(i, j)]
                - state.varphi[state.idx(i, j)]
                - state.phi[j] * beta
                + rho * beta * drift;
        }
        objective.set_rank1(rho * beta * beta, &ones);
        objective.set_linear(&c);
        let cap = instance.capacities[j];
        if let Some(q) = &instance.queueing {
            // Congested path: barrier objective over the shrunk cap.
            let congested = CongestedAStep {
                quad: objective.clone(),
                queueing: *q,
                capacity: cap,
            };
            let cap_q = q.load_cap(cap).min(cap);
            let mut start = std::mem::take(&mut start_buf);
            start.clear();
            start.resize(m, 0.0);
            let col = Fista::new(FISTA_MAX_ITER, FISTA_CONGESTED_TOL)
                .minimize_adaptive(&congested, |x| project_capped_simplex(x, cap_q), start)
                .map_err(|e| CoreError::subproblem(format!("a[{j}] (congested)"), e))?
                .x;
            for i in 0..m {
                a_tilde[state.idx(i, j)] = col[i];
            }
            start_buf = col;
            continue;
        }
        let mut start = std::mem::take(&mut start_buf);
        start.clear();
        start.resize(m, 0.0);
        let col = match method {
            SubproblemMethod::ActiveSet => {
                b_in[m] = cap;
                ActiveSetQp::default()
                    .solve(&objective, &a_eq, &[], &a_in, &b_in, start)
                    .map_err(|e| CoreError::subproblem(format!("a[{j}]"), e))?
                    .x
            }
            SubproblemMethod::Fista => {
                Fista::new(FISTA_MAX_ITER, FISTA_TOL)
                    .minimize(&objective, |x| project_capped_simplex(x, cap), start)
                    .map_err(|e| CoreError::subproblem(format!("a[{j}]"), e))?
                    .x
            }
        };
        for i in 0..m {
            a_tilde[state.idx(i, j)] = col[i];
        }
        start_buf = col;
    }
    Ok(a_tilde)
}

/// Dual updates (step 1.5): gradient ascent on the two coupling rows,
/// `φ̃_j = φ_j − ρ(α_j + β_jΣ_i ã_ij − μ̃_j − ν̃_j − d̃_j)` at each
/// datacenter and `φ̃_ij = φ_ij − ρ(ã_ij − λ̃_ij)` at each front-end.
///
/// Returns `(φ̃, φ̃_ij)`.
#[must_use]
#[allow(clippy::too_many_arguments)]
pub fn dual_step(
    instance: &UfcInstance,
    rho: f64,
    state: &AdmgState,
    lambda_tilde: &[f64],
    mu_tilde: &[f64],
    nu_tilde: &[f64],
    d_tilde: &[f64],
    a_tilde: &[f64],
) -> (Vec<f64>, Vec<f64>) {
    let (m, n) = (state.m, state.n);
    let mut a_loads = vec![0.0; n];
    for i in 0..m {
        for j in 0..n {
            a_loads[j] += a_tilde[state.idx(i, j)];
        }
    }
    let phi_tilde: Vec<f64> = (0..n)
        .map(|j| {
            state.phi[j]
                - rho * (instance.demand_mw(j, a_loads[j]) - mu_tilde[j] - nu_tilde[j] - d_tilde[j])
        })
        .collect();
    let varphi_tilde: Vec<f64> = (0..m * n)
        .map(|k| state.varphi[k] - rho * (a_tilde[k] - lambda_tilde[k]))
        .collect();
    (phi_tilde, varphi_tilde)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ufc_model::EmissionCostFn;

    fn tiny() -> UfcInstance {
        UfcInstance::new(
            vec![1.0, 2.0],
            vec![2.0, 2.0],
            vec![0.24, 0.24],
            vec![0.12, 0.12],
            vec![0.48, 0.48],
            vec![30.0, 70.0],
            80.0,
            vec![0.5, 0.3],
            vec![vec![0.01, 0.02], vec![0.02, 0.01]],
            10.0,
            vec![
                EmissionCostFn::linear(25.0).unwrap(),
                EmissionCostFn::linear(25.0).unwrap(),
            ],
            1.0,
        )
        .unwrap()
    }

    #[test]
    fn lambda_step_satisfies_load_balance() {
        let inst = tiny();
        let state = AdmgState::zeros(&inst);
        let lt = lambda_step(&inst, 0.3, SubproblemMethod::ActiveSet, &state).unwrap();
        // Row sums equal arrivals; entries nonnegative.
        assert!((lt[0] + lt[1] - 1.0).abs() < 1e-7);
        assert!((lt[2] + lt[3] - 2.0).abs() < 1e-7);
        assert!(lt.iter().all(|&v| v >= -1e-9));
    }

    #[test]
    fn lambda_step_methods_agree() {
        let inst = tiny();
        let mut state = AdmgState::zeros(&inst);
        state.a = vec![0.4, 0.6, 1.5, 0.5];
        state.varphi = vec![0.1, -0.2, 0.05, 0.3];
        let exact = lambda_step(&inst, 0.3, SubproblemMethod::ActiveSet, &state).unwrap();
        let fista = lambda_step(&inst, 0.3, SubproblemMethod::Fista, &state).unwrap();
        for (a, b) in exact.iter().zip(&fista) {
            assert!((a - b).abs() < 1e-5, "{exact:?} vs {fista:?}");
        }
    }

    #[test]
    fn lambda_step_prefers_nearby_datacenter_without_penalty_terms() {
        // With a = λ's attractor at zero and no duals, the only pull apart
        // from ρ‖λ‖² is the latency disutility ⇒ prefer the closer DC.
        let inst = tiny();
        let state = AdmgState::zeros(&inst);
        let lt = lambda_step(&inst, 1e-6, SubproblemMethod::ActiveSet, &state).unwrap();
        // FE0 is closer to DC0 (10 ms vs 20 ms) but the quadratic utility
        // spreads load; still the closer DC gets at least half.
        assert!(lt[0] >= 0.5, "lt = {lt:?}");
        // FE1 is closer to DC1.
        assert!(lt[3] >= 1.0, "lt = {lt:?}");
    }

    #[test]
    fn mu_step_clamps_to_capacity_and_zero() {
        let inst = tiny();
        let mut state = AdmgState::zeros(&inst);
        state.a = vec![1.0, 0.0, 1.0, 0.0]; // load 2.0 at DC0 ⇒ demand 0.48
                                            // Strong negative dual pushes μ to its cap.
        state.phi = vec![-1e3, 0.0];
        let mu = mu_step(&inst, 0.3, &state, true);
        assert!((mu[0] - 0.48).abs() < 1e-12);
        // Strong positive dual pushes μ to zero.
        state.phi = vec![1e3, 1e3];
        let mu = mu_step(&inst, 0.3, &state, true);
        assert_eq!(mu, vec![0.0, 0.0]);
        // Inactive block pinned at zero.
        assert_eq!(mu_step(&inst, 0.3, &state, false), vec![0.0, 0.0]);
    }

    #[test]
    fn mu_step_interior_value() {
        let inst = tiny();
        let mut state = AdmgState::zeros(&inst);
        state.a = vec![1.0, 0.0, 1.0, 0.0]; // demand 0.48 MW at DC0
        state.nu = vec![0.1, 0.0];
        state.phi = vec![-80.3, 0.0]; // (φ + p0)/ρ = (−80.3 + 80)/0.3 = −1
        let mu = mu_step(&inst, 0.3, &state, true);
        // d = 0.48 − 0.1 = 0.38; μ = clamp(0.38 + 1, 0, 0.48) = 0.48.
        assert!((mu[0] - 0.48).abs() < 1e-9);
    }

    #[test]
    fn nu_step_linear_tax_closed_form() {
        let inst = tiny();
        let mut state = AdmgState::zeros(&inst);
        state.a = vec![1.0, 0.0, 1.0, 0.0]; // demand at DC0: 0.48 MW
        let mu_tilde = vec![0.0, 0.0];
        let nu = nu_step(&inst, 0.3, &state, &mu_tilde, true);
        // d = 0.48; cost slope = p + r·C = 30 + 12.5 = 42.5 ⇒ ν = max(0, 0.48 − 42.5/0.3) = 0.
        assert_eq!(nu[0], 0.0);
        // With a dual that offsets the price, ν moves into the interior.
        state.phi = vec![-42.35, 0.0]; // slope = 0.15 ⇒ ν = 0.48 − 0.5 = interior... still −0.02 ⇒ 0
        let nu = nu_step(&inst, 0.3, &state, &mu_tilde, true);
        assert!((nu[0] - (0.48f64 - 0.15 / 0.3).max(0.0)).abs() < 1e-9);
        // Inactive (fuel-cell-only) pins to zero.
        assert_eq!(
            nu_step(&inst, 0.3, &state, &mu_tilde, false),
            vec![0.0, 0.0]
        );
    }

    #[test]
    fn nu_step_quadratic_and_stepped_match_bisection_of_linear_case() {
        // With a quadratic V whose quad term is 0 and a stepped V with equal
        // rates, all three paths must produce the linear-tax answer.
        let mut inst = tiny();
        let mut state = AdmgState::zeros(&inst);
        state.a = vec![1.0, 0.0, 1.0, 0.0];
        state.phi = vec![-45.0, -45.0];
        let mu_tilde = vec![0.0, 0.0];

        inst.emission_cost = vec![
            EmissionCostFn::linear(25.0).unwrap(),
            EmissionCostFn::linear(25.0).unwrap(),
        ];
        let linear = nu_step(&inst, 0.3, &state, &mu_tilde, true);

        inst.emission_cost = vec![
            EmissionCostFn::quadratic(25.0, 0.0).unwrap(),
            EmissionCostFn::quadratic(25.0, 0.0).unwrap(),
        ];
        let quad = nu_step(&inst, 0.3, &state, &mu_tilde, true);

        inst.emission_cost = vec![
            EmissionCostFn::stepped(vec![1.0], vec![25.0, 25.0]).unwrap(),
            EmissionCostFn::stepped(vec![1.0], vec![25.0, 25.0]).unwrap(),
        ];
        let stepped = nu_step(&inst, 0.3, &state, &mu_tilde, true);

        for j in 0..2 {
            assert!((linear[j] - quad[j]).abs() < 1e-9, "quad path diverges");
            assert!(
                (linear[j] - stepped[j]).abs() < 1e-6,
                "stepped path diverges: {} vs {}",
                linear[j],
                stepped[j]
            );
        }
    }

    #[test]
    fn a_step_respects_capacity_and_sign() {
        let inst = tiny();
        let mut state = AdmgState::zeros(&inst);
        state.varphi = vec![5.0, 5.0, 5.0, 5.0]; // strong pull towards a > 0
        let lambda_tilde = vec![2.0, 2.0, 2.0, 2.0];
        let a = a_step(
            &inst,
            0.3,
            SubproblemMethod::ActiveSet,
            &state,
            &lambda_tilde,
            &[0.0, 0.0],
            &[0.0, 0.0],
            &[0.0, 0.0],
        )
        .unwrap();
        for j in 0..2 {
            let load: f64 = (0..2).map(|i| a[state.idx(i, j)]).sum();
            assert!(load <= inst.capacities[j] + 1e-7, "capacity violated");
        }
        assert!(a.iter().all(|&v| v >= -1e-9));
    }

    #[test]
    fn a_step_methods_agree() {
        let inst = tiny();
        let mut state = AdmgState::zeros(&inst);
        state.varphi = vec![0.3, -0.1, 0.2, 0.4];
        state.phi = vec![1.0, -2.0];
        let lambda_tilde = vec![0.5, 0.5, 1.2, 0.8];
        let exact = a_step(
            &inst,
            0.3,
            SubproblemMethod::ActiveSet,
            &state,
            &lambda_tilde,
            &[0.1, 0.2],
            &[0.2, 0.1],
            &[0.0, 0.0],
        )
        .unwrap();
        let fista = a_step(
            &inst,
            0.3,
            SubproblemMethod::Fista,
            &state,
            &lambda_tilde,
            &[0.1, 0.2],
            &[0.2, 0.1],
            &[0.0, 0.0],
        )
        .unwrap();
        for (x, y) in exact.iter().zip(&fista) {
            assert!((x - y).abs() < 1e-5, "{exact:?} vs {fista:?}");
        }
    }

    #[test]
    fn mu_scalar_step_bounded_reduces_to_plain_box() {
        // The classic path's exact arguments: bounds (0, mu_max).
        let plain = mu_scalar_step(0.48, 0.1, -80.3, 80.0, 0.3, 0.48);
        let bounded = mu_scalar_step_bounded(0.48, 0.1, -80.3, 80.0, 0.3, 0.0, 0.48);
        assert_eq!(plain.to_bits(), bounded.to_bits());
        // A tighter box actually binds.
        let ramped = mu_scalar_step_bounded(0.48, 0.1, -80.3, 80.0, 0.3, 0.0, 0.2);
        assert_eq!(ramped, 0.2);
    }

    #[test]
    fn storage_scalar_step_charges_when_value_exceeds_pressure() {
        // Balanced residual (r = 0), no dual: the κ term alone pulls the
        // battery toward charging, clamped at the converter rate.
        let d = storage_scalar_step(0.42, 0.42, 0.0, 0.0, 40.0, 0.1, 0.3, -0.5, 0.5);
        assert_eq!(d, -0.5);
        // A strongly negative dual (power shortage) pushes discharge.
        let d = storage_scalar_step(0.42, 0.0, 0.0, -100.0, 40.0, 0.1, 0.3, -0.5, 0.5);
        assert_eq!(d, 0.5);
        // Interior stationary point: r = 0.42, κh = 0, γh = 0.1, ρ = 0.3
        // ⇒ d = 0.3·0.42/0.5 = 0.252.
        let d = storage_scalar_step(0.42, 0.0, 0.0, 0.0, 0.0, 0.1, 0.3, -0.5, 0.5);
        assert!((d - 0.252).abs() < 1e-12);
    }

    #[test]
    fn storage_step_pins_inactive_datacenters_to_positive_zero() {
        let inst = tiny();
        let state = AdmgState::zeros(&inst);
        // No storage on the instance at all.
        let d = storage_step(&inst, 0.3, &state, &[0.0, 0.0], &[0.0, 0.0]);
        assert_eq!(d, vec![0.0, 0.0]);
        assert!(d.iter().all(|v| v.to_bits() == 0.0f64.to_bits()));
        // Storage present but DC1's battery has zero capacity.
        let mut params = ufc_model::StorageFleet::new(1.0, 0.4)
            .initial_charge_frac(0.5)
            .initial_params(2);
        params.capacity_mwh[1] = 0.0;
        params.charge_mwh[1] = 0.0;
        let inst = inst.with_storage(params).unwrap();
        let mut state = AdmgState::zeros(&inst);
        state.a = vec![1.0, 1.0, 1.0, 1.0];
        state.phi = vec![-100.0, -100.0];
        let d = storage_step(&inst, 0.3, &state, &[0.0, 0.0], &[0.0, 0.0]);
        assert!(d[0] > 0.0, "active battery should discharge, got {}", d[0]);
        assert_eq!(d[1].to_bits(), 0.0f64.to_bits(), "inactive must be +0.0");
    }

    #[test]
    fn dual_step_signs() {
        let inst = tiny();
        let state = AdmgState::zeros(&inst);
        let lambda_tilde = vec![0.5, 0.5, 1.0, 1.0];
        let a_tilde = vec![0.5, 0.5, 1.0, 1.0];
        // Perfect balance: μ̃ + ν̃ = demand ⇒ φ̃ = φ.
        let mu_tilde = vec![0.42, 0.0];
        let nu_tilde = vec![0.0, 0.42];
        let (phi_t, varphi_t) = dual_step(
            &inst,
            0.3,
            &state,
            &lambda_tilde,
            &mu_tilde,
            &nu_tilde,
            &[0.0, 0.0],
            &a_tilde,
        );
        assert!(phi_t.iter().all(|&v| v.abs() < 1e-12));
        assert!(varphi_t.iter().all(|&v| v.abs() < 1e-12));
        // Underprovision at DC0 by 0.1 MW ⇒ φ̃ = 0 − ρ·(0.1) = −0.03.
        let mu_short = vec![0.32, 0.0];
        let (phi_t, _) = dual_step(
            &inst,
            0.3,
            &state,
            &lambda_tilde,
            &mu_short,
            &nu_tilde,
            &[0.0, 0.0],
            &a_tilde,
        );
        assert!((phi_t[0] + 0.03).abs() < 1e-12);
        // a > λ at one entry ⇒ varphi decreases there.
        let a_big = vec![0.7, 0.5, 1.0, 1.0];
        let (_, varphi_t) = dual_step(
            &inst,
            0.3,
            &state,
            &lambda_tilde,
            &mu_tilde,
            &nu_tilde,
            &[0.0, 0.0],
            &a_big,
        );
        assert!((varphi_t[0] + 0.3 * 0.2).abs() < 1e-12);
    }
}
