//! Dual-subgradient baseline solver.
//!
//! Discussing Fig. 11, the paper notes its ADM-G algorithm "remarkably
//! outperforms some gradient or projection based methods that are reported
//! to take hundreds of iterations to converge" (citing Liu et al.,
//! SIGMETRICS 2011). To make that comparison concrete rather than cited,
//! this module implements the classical distributed alternative: **dual
//! (Lagrangian) decomposition with subgradient ascent**.
//!
//! The capacity rows `Σ_i λ_ij ≤ S_j` (multipliers `η_j ≥ 0`) and the power
//! balance rows `α_j + β_j Σ_i λ_ij − μ_j − ν_j = 0` (multipliers `θ_j`)
//! are dualized; the Lagrangian then splits into per-front-end simplex
//! problems and per-datacenter scalar problems — the same communication
//! pattern as ADM-G, one dual update per round. Because the dual function
//! of an affine-cost `ν` is unbounded without a box, `ν` is capped at the
//! datacenter's peak demand (a valid bound at any feasible point).
//!
//! Primal feasibility is recovered from the **ergodic (running) average**
//! of the iterates, the standard trick for subgradient methods; the same
//! polish as ADM-G turns it into an exactly feasible point. Convergence is
//! declared by the same scale-relative residual test as ADM-G, so
//! iteration counts are directly comparable — and they come out an order
//! of magnitude larger (see `experiments::baseline` and the
//! `ablation_baseline` bench), which is the paper's point.

use ufc_model::{evaluate, OperatingPoint, UfcBreakdown, UfcInstance};
use ufc_opt::projection::project_simplex;
use ufc_opt::{scalar, Fista, QuadObjective};

use crate::repair::assemble_point;
use crate::{AdmgSettings, AdmgState, CoreError, Result, Strategy};

/// Hyper-parameters of the dual-subgradient baseline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SubgradientSettings {
    /// Initial step size of the diminishing rule `step₀ / (1 + k/decay)`.
    pub step0: f64,
    /// Decay horizon of the step rule (iterations).
    pub decay: f64,
    /// Iteration cap.
    pub max_iterations: usize,
    /// Residual tolerances (reused from ADM-G so counts are comparable).
    pub tolerances: AdmgSettings,
}

impl Default for SubgradientSettings {
    /// `step₀ = 5.0`, `decay = 30`, capped at 20 000 iterations, ADM-G
    /// default tolerances.
    fn default() -> Self {
        SubgradientSettings {
            step0: 5.0,
            decay: 30.0,
            max_iterations: 20_000,
            tolerances: AdmgSettings::default(),
        }
    }
}

/// Outcome of a dual-subgradient run.
#[derive(Debug, Clone)]
pub struct SubgradientSolution {
    /// Exactly feasible operating point recovered from the ergodic average.
    pub point: OperatingPoint,
    /// UFC breakdown at the point.
    pub breakdown: UfcBreakdown,
    /// Iterations performed.
    pub iterations: usize,
    /// Whether the residual test passed before the cap.
    pub converged: bool,
}

/// Runs dual decomposition with subgradient ascent on the given instance.
///
/// Only `Strategy::Hybrid` and `Strategy::GridOnly` are supported (the
/// `ν ≡ 0` restriction would need a different dualization).
///
/// # Errors
///
/// * [`CoreError::Unsupported`] for `Strategy::FuelCellOnly`.
/// * [`CoreError::Subproblem`] if an inner solve fails.
/// * [`CoreError::Model`] if the recovered point cannot be evaluated.
pub fn solve(
    instance: &UfcInstance,
    strategy: Strategy,
    settings: &SubgradientSettings,
) -> Result<SubgradientSolution> {
    if strategy == Strategy::FuelCellOnly {
        return Err(CoreError::Unsupported {
            context: "dual-subgradient baseline supports Hybrid and GridOnly only".to_owned(),
        });
    }
    if instance.queueing.is_some() {
        return Err(CoreError::Unsupported {
            context: "dual-subgradient baseline does not dualize the congestion term".to_owned(),
        });
    }
    let active_mu = strategy != Strategy::GridOnly;
    let m = instance.m_frontends();
    let n = instance.n_datacenters();
    let h = instance.slot_hours;
    let w = instance.weight_per_kserver();

    // Multipliers.
    let mut eta = vec![0.0f64; n]; // capacity, ≥ 0
    let mut theta = vec![0.0f64; n]; // balance, free

    // Ergodic averages.
    let mut avg_lambda = vec![0.0f64; m * n];
    let mut avg_mu = vec![0.0f64; n];
    let mut avg_nu = vec![0.0f64; n];

    // ν box: peak demand is a valid upper bound at any feasible point.
    let nu_max: Vec<f64> = (0..n)
        .map(|j| instance.demand_mw(j, instance.capacities[j]))
        .collect();

    let (link_tol, balance_tol, _) = settings.tolerances.scaled_tolerances(instance);
    // Capacity violations are measured in kilo-servers like the link
    // residual; reuse its scale.
    let capacity_tol = link_tol;

    let mut converged = false;
    let mut iterations = 0;
    for k in 0..settings.max_iterations {
        iterations = k + 1;
        // --- Primal minimization given (η, θ): decomposes per node.
        // Front-ends: min −wU(λ_i) + Σ_j (η_j + θ_j β_j) λ_ij over the simplex.
        let mut lambda = vec![0.0f64; m * n];
        for i in 0..m {
            let arrival = instance.arrivals[i];
            if arrival == 0.0 {
                // Zero-demand front-end: the simplex is the singleton {0}.
                continue;
            }
            let gamma = 2.0 * w / arrival;
            let c: Vec<f64> = (0..n)
                .map(|j| eta[j] + theta[j] * instance.beta[j])
                .collect();
            let objective = QuadObjective::diag_rank1(
                vec![0.0; n],
                gamma,
                instance.latency_s[i].clone(),
                c,
                0.0,
            );
            let row = Fista::new(20_000, 1e-9)
                .minimize(
                    &objective,
                    |x| project_simplex(x, arrival),
                    vec![arrival / n as f64; n],
                )
                .map_err(|e| CoreError::subproblem(format!("baseline lambda[{i}]"), e))?
                .x;
            lambda[i * n..(i + 1) * n].copy_from_slice(&row);
        }
        // Datacenters: μ and ν are bang-bang in the dualized objective.
        let mut mu = vec![0.0f64; n];
        let mut nu = vec![0.0f64; n];
        for j in 0..n {
            if active_mu {
                // min (h·p₀ − θ_j)·μ over [0, μmax].
                mu[j] = if h * instance.fuel_cell_price - theta[j] < 0.0 {
                    instance.mu_max[j]
                } else {
                    0.0
                };
            }
            // min V(C·h·ν) + (h·p_j − θ_j)·ν over [0, ν_max]: convex scalar.
            let ch = instance.carbon_t_per_mwh[j] * h;
            let base = h * instance.grid_price[j] - theta[j];
            let cost = &instance.emission_cost[j];
            let df = |v: f64| ch * cost.marginal(ch * v) + base;
            nu[j] = scalar::bisect_derivative(df, 0.0, nu_max[j], 1e-10 * (1.0 + nu_max[j]));
        }

        // --- Ergodic averaging.
        let t = k as f64;
        for (avg, cur) in avg_lambda.iter_mut().zip(&lambda) {
            *avg = (*avg * t + cur) / (t + 1.0);
        }
        for j in 0..n {
            avg_mu[j] = (avg_mu[j] * t + mu[j]) / (t + 1.0);
            avg_nu[j] = (avg_nu[j] * t + nu[j]) / (t + 1.0);
        }

        // --- Subgradient step on the multipliers.
        let step = settings.step0 / (1.0 + t / settings.decay);
        let mut loads = vec![0.0f64; n];
        for i in 0..m {
            for j in 0..n {
                loads[j] += lambda[i * n + j];
            }
        }
        for j in 0..n {
            eta[j] = (eta[j] + step * (loads[j] - instance.capacities[j])).max(0.0);
            theta[j] += step * (instance.demand_mw(j, loads[j]) - mu[j] - nu[j]);
        }

        // --- Convergence test on the averaged iterate (every few rounds).
        if k % 5 == 4 {
            let mut avg_loads = vec![0.0f64; n];
            for i in 0..m {
                for j in 0..n {
                    avg_loads[j] += avg_lambda[i * n + j];
                }
            }
            let mut cap_violation = 0.0f64;
            let mut balance = 0.0f64;
            for j in 0..n {
                cap_violation = cap_violation.max(avg_loads[j] - instance.capacities[j]);
                balance = balance
                    .max((instance.demand_mw(j, avg_loads[j]) - avg_mu[j] - avg_nu[j]).abs());
            }
            if cap_violation <= capacity_tol && balance <= balance_tol {
                converged = true;
                break;
            }
        }
    }

    // --- Recover a feasible point from the averages via the shared polish.
    let mut state = AdmgState::zeros(instance);
    state.lambda.copy_from_slice(&avg_lambda);
    state.mu.copy_from_slice(&avg_mu);
    let point = assemble_point(instance, &state, false)?;
    let breakdown = evaluate(instance, &point)?;
    Ok(SubgradientSolution {
        point,
        breakdown,
        iterations,
        converged,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AdmgSolver, Strategy};
    use ufc_model::EmissionCostFn;

    fn tiny() -> UfcInstance {
        UfcInstance::new(
            vec![1.0, 2.0],
            vec![2.0, 2.0],
            vec![0.24, 0.24],
            vec![0.12, 0.12],
            vec![0.48, 0.48],
            vec![30.0, 70.0],
            80.0,
            vec![0.5, 0.3],
            vec![vec![0.01, 0.02], vec![0.02, 0.01]],
            10.0,
            vec![
                EmissionCostFn::linear(25.0).unwrap(),
                EmissionCostFn::linear(25.0).unwrap(),
            ],
            1.0,
        )
        .unwrap()
    }

    #[test]
    fn baseline_reaches_a_feasible_point() {
        let inst = tiny();
        let sol = solve(&inst, Strategy::Hybrid, &SubgradientSettings::default()).unwrap();
        assert!(sol.point.feasibility_residual(&inst) < 1e-6);
        assert!(sol.converged, "subgradient did not converge");
    }

    #[test]
    fn baseline_is_much_slower_than_admg() {
        // The paper's comparative claim, in-repo: same tolerance scale,
        // order-of-magnitude more iterations.
        let inst = tiny();
        let admg = AdmgSolver::new(AdmgSettings::default())
            .solve(&inst, Strategy::Hybrid)
            .unwrap();
        let base = solve(&inst, Strategy::Hybrid, &SubgradientSettings::default()).unwrap();
        assert!(
            base.iterations > 3 * admg.iterations,
            "subgradient {} vs ADM-G {} iterations",
            base.iterations,
            admg.iterations
        );
    }

    #[test]
    fn baseline_objective_is_close_to_admg() {
        let inst = tiny();
        let admg = AdmgSolver::new(AdmgSettings::default())
            .solve(&inst, Strategy::Hybrid)
            .unwrap();
        let base = solve(&inst, Strategy::Hybrid, &SubgradientSettings::default()).unwrap();
        let scale = admg.breakdown.ufc().abs().max(1.0);
        // Ergodic averages converge slowly; a few percent is expected.
        assert!(
            (admg.breakdown.ufc() - base.breakdown.ufc()).abs() / scale < 0.05,
            "baseline {} vs ADM-G {}",
            base.breakdown.ufc(),
            admg.breakdown.ufc()
        );
        // And never better than the optimum (up to polish noise).
        assert!(base.breakdown.ufc() <= admg.breakdown.ufc() + 0.01 * scale);
    }

    #[test]
    fn grid_only_baseline_keeps_mu_zero() {
        let inst = tiny();
        let sol = solve(&inst, Strategy::GridOnly, &SubgradientSettings::default()).unwrap();
        assert!(sol.point.mu.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn fuel_cell_only_unsupported() {
        let inst = tiny();
        assert!(matches!(
            solve(
                &inst,
                Strategy::FuelCellOnly,
                &SubgradientSettings::default()
            ),
            Err(CoreError::Unsupported { .. })
        ));
    }
}
