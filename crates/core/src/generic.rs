//! Generic matrix-form ADM-G reference implementation.
//!
//! The paper presents the Gaussian back-substitution correction twice: once
//! abstractly, via the upper-triangular block matrix `G` with entries
//! `(K_iᵀK_i)⁻¹K_iᵀK_j` (Eq. (10)), and once as specialized closed-form
//! recursions for the UFC constraint structure. This module implements the
//! *abstract* version — explicitly assembling the relation matrices `K_i`
//! and solving `G(z^{k+1} − z^k) = ε(z̃ − z^k)` by block back substitution —
//! so tests can verify that [`crate::correction`]'s closed form is the
//! correct specialization (it also pins down the paper's `φ_ij`-line typo).
//!
//! This path is `O((MN)³)`; production code uses the closed form, which is
//! `O(MN)`.

use ufc_linalg::{Cholesky, Matrix};
use ufc_model::UfcInstance;

use crate::{AdmgState, CoreError};

/// The explicit relation matrices of the 4-block formulation, restricted to
/// the active blocks. Constraint rows: `MN` link rows `λ_ij − a_ij = 0`
/// followed by `N` balance rows `μ_j + ν_j − β_j Σ_i a_ij = α_j`.
#[derive(Debug, Clone)]
pub struct RelationMatrices {
    /// `K` matrices of the corrected x-blocks, in iteration order
    /// (μ if active, ν if active, a).
    pub k: Vec<Matrix>,
    /// Dimensions of the corrected x-blocks.
    pub dims: Vec<usize>,
    /// Total number of constraint rows `l = MN + N`.
    pub rows: usize,
}

/// Assembles the relation matrices for `instance` under the given block
/// activity (strategy) flags.
#[must_use]
pub fn relation_matrices(
    instance: &UfcInstance,
    active_mu: bool,
    active_nu: bool,
) -> RelationMatrices {
    let m = instance.m_frontends();
    let n = instance.n_datacenters();
    let rows = m * n + n;

    let mut k = Vec::new();
    let mut dims = Vec::new();
    let per_dc = |mat: &mut Matrix| {
        for j in 0..n {
            mat[(m * n + j, j)] = 1.0;
        }
    };
    if active_mu {
        let mut km = Matrix::zeros(rows, n);
        per_dc(&mut km);
        k.push(km);
        dims.push(n);
    }
    if active_nu {
        let mut kn = Matrix::zeros(rows, n);
        per_dc(&mut kn);
        k.push(kn);
        dims.push(n);
    }
    let mut ka = Matrix::zeros(rows, m * n);
    for idx in 0..m * n {
        ka[(idx, idx)] = -1.0;
    }
    for i in 0..m {
        for j in 0..n {
            ka[(m * n + j, i * n + j)] = -instance.beta[j];
        }
    }
    k.push(ka);
    dims.push(m * n);

    RelationMatrices { k, dims, rows }
}

/// Verifies the paper's Theorem-1 hypothesis that every `K_iᵀK_i`
/// (`i = 2..m`) is nonsingular, by attempting a Cholesky factorization of
/// each Gram matrix.
#[must_use]
pub fn gram_blocks_nonsingular(rel: &RelationMatrices) -> bool {
    rel.k.iter().all(|k| Cholesky::factor(&k.gram()).is_ok())
}

/// Applies the correction `G Δz = ε(z̃ − z)` by explicit block back
/// substitution and returns the corrected state (λ is taken from `tilde`,
/// as in the paper).
///
/// # Errors
///
/// Returns [`CoreError::Numerical`] when a Gram block `K_iᵀK_i` fails to
/// factor or a triangular solve breaks down. The UFC relation structure
/// makes every Gram block nonsingular (Theorem 1), so this is a typed
/// can't-happen guard rather than an expected path — but it lets the
/// fuzzer report rather than abort should an instance ever violate it.
///
/// # Panics
///
/// Panics if the states disagree in shape with the instance.
#[allow(clippy::needless_range_loop)] // blocks are co-indexed by node id
pub fn correction_reference(
    instance: &UfcInstance,
    state: &AdmgState,
    tilde: &AdmgState,
    epsilon: f64,
    active_mu: bool,
    active_nu: bool,
) -> crate::Result<AdmgState> {
    let rel = relation_matrices(instance, active_mu, active_nu);
    let nblocks = rel.k.len();

    // Pack the x-part of z = (x₂, …, x_m) in iteration order.
    let mut z: Vec<Vec<f64>> = Vec::new();
    let mut zt: Vec<Vec<f64>> = Vec::new();
    if active_mu {
        z.push(state.mu.clone());
        zt.push(tilde.mu.clone());
    }
    if active_nu {
        z.push(state.nu.clone());
        zt.push(tilde.nu.clone());
    }
    z.push(state.a.clone());
    zt.push(tilde.a.clone());

    // Backward block substitution:
    // Δ_i = ε(z̃_i − z_i) − Σ_{j>i} (K_iᵀK_i)⁻¹K_iᵀK_j Δ_j.
    let mut deltas: Vec<Vec<f64>> = vec![Vec::new(); nblocks];
    for i in (0..nblocks).rev() {
        let mut rhs: Vec<f64> = z[i]
            .iter()
            .zip(&zt[i])
            .map(|(a, b)| epsilon * (b - a))
            .collect();
        if i + 1 < nblocks {
            let gram = Cholesky::factor(&rel.k[i].gram())
                .map_err(|e| CoreError::numerical(format!("gram block {i} singular: {e}")))?;
            for j in (i + 1)..nblocks {
                // K_iᵀ (K_j Δ_j), then solve against the Gram block.
                let kj_dj = rel.k[j]
                    .matvec(&deltas[j])
                    .map_err(|e| CoreError::numerical(format!("K_{j} Δ_{j}: {e}")))?;
                let kit = rel.k[i]
                    .matvec_t(&kj_dj)
                    .map_err(|e| CoreError::numerical(format!("K_{i}ᵀ(K_{j} Δ_{j}): {e}")))?;
                let corr = gram
                    .solve(&kit)
                    .map_err(|e| CoreError::numerical(format!("gram solve, block {i}: {e}")))?;
                for (r, c) in rhs.iter_mut().zip(&corr) {
                    *r -= c;
                }
            }
        }
        deltas[i] = rhs;
    }

    // Unpack. (Block components are co-indexed by datacenter id.)
    let mut out = state.clone();
    let mut cursor = 0;
    if active_mu {
        for j in 0..out.n {
            out.mu[j] += deltas[cursor][j];
        }
        cursor += 1;
    } else {
        out.mu.iter_mut().for_each(|v| *v = 0.0);
    }
    if active_nu {
        for j in 0..out.n {
            out.nu[j] += deltas[cursor][j];
        }
        cursor += 1;
    } else {
        out.nu.iter_mut().for_each(|v| *v = 0.0);
    }
    for (v, d) in out.a.iter_mut().zip(&deltas[cursor]) {
        *v += d;
    }

    // y block: plain relaxation (identity row of G).
    for j in 0..out.n {
        out.phi[j] += epsilon * (tilde.phi[j] - state.phi[j]);
    }
    for k in 0..out.m * out.n {
        out.varphi[k] += epsilon * (tilde.varphi[k] - state.varphi[k]);
    }
    out.lambda.copy_from_slice(&tilde.lambda);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::correction::gaussian_back_substitution;
    use ufc_model::EmissionCostFn;

    fn tiny() -> UfcInstance {
        UfcInstance::new(
            vec![1.0, 2.0, 1.5],
            vec![2.5, 2.0],
            vec![0.24, 0.30],
            vec![0.12, 0.15],
            vec![0.48, 0.60],
            vec![30.0, 70.0],
            80.0,
            vec![0.5, 0.3],
            vec![vec![0.01, 0.02], vec![0.02, 0.01], vec![0.015, 0.025]],
            10.0,
            vec![
                EmissionCostFn::linear(25.0).unwrap(),
                EmissionCostFn::linear(25.0).unwrap(),
            ],
            1.0,
        )
        .unwrap()
    }

    fn pseudo_random_state(inst: &UfcInstance, seed: u64) -> AdmgState {
        // Cheap deterministic fill (LCG) — we only need variety, not quality.
        let mut x = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        let mut next = || {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((x >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        let mut s = AdmgState::zeros(inst);
        s.lambda.iter_mut().for_each(|v| *v = next());
        s.a.iter_mut().for_each(|v| *v = next());
        s.mu.iter_mut().for_each(|v| *v = next());
        s.nu.iter_mut().for_each(|v| *v = next());
        s.phi.iter_mut().for_each(|v| *v = next());
        s.varphi.iter_mut().for_each(|v| *v = next());
        s
    }

    #[test]
    fn theorem1_hypothesis_holds() {
        let inst = tiny();
        for (am, an) in [(true, true), (false, true), (true, false)] {
            let rel = relation_matrices(&inst, am, an);
            assert!(
                gram_blocks_nonsingular(&rel),
                "K'K singular for ({am},{an})"
            );
        }
    }

    #[test]
    fn relation_matrix_shapes() {
        let inst = tiny();
        let rel = relation_matrices(&inst, true, true);
        assert_eq!(rel.k.len(), 3);
        assert_eq!(rel.rows, 3 * 2 + 2);
        assert_eq!(rel.dims, vec![2, 2, 6]);
        let rel = relation_matrices(&inst, false, true);
        assert_eq!(rel.k.len(), 2);
    }

    #[test]
    fn closed_form_matches_generic_full_blocks() {
        let inst = tiny();
        for seed in 0..5 {
            let state = pseudo_random_state(&inst, seed);
            let tilde = pseudo_random_state(&inst, seed + 100);
            let generic = correction_reference(&inst, &state, &tilde, 0.9, true, true).unwrap();
            let mut closed = state.clone();
            gaussian_back_substitution(&inst, &mut closed, &tilde, 0.9, true, true);
            assert_state_close(&generic, &closed, 1e-9);
        }
    }

    #[test]
    fn closed_form_matches_generic_grid_only() {
        let inst = tiny();
        for seed in 0..3 {
            let mut state = pseudo_random_state(&inst, seed);
            let mut tilde = pseudo_random_state(&inst, seed + 50);
            // Grid strategy: μ pinned at zero in both iterates.
            state.mu.iter_mut().for_each(|v| *v = 0.0);
            tilde.mu.iter_mut().for_each(|v| *v = 0.0);
            let generic = correction_reference(&inst, &state, &tilde, 0.8, false, true).unwrap();
            let mut closed = state.clone();
            gaussian_back_substitution(&inst, &mut closed, &tilde, 0.8, false, true);
            assert_state_close(&generic, &closed, 1e-9);
        }
    }

    #[test]
    fn closed_form_matches_generic_fuel_cell_only() {
        let inst = tiny();
        for seed in 0..3 {
            let mut state = pseudo_random_state(&inst, seed);
            let mut tilde = pseudo_random_state(&inst, seed + 50);
            state.nu.iter_mut().for_each(|v| *v = 0.0);
            tilde.nu.iter_mut().for_each(|v| *v = 0.0);
            let generic = correction_reference(&inst, &state, &tilde, 1.0, true, false).unwrap();
            let mut closed = state.clone();
            gaussian_back_substitution(&inst, &mut closed, &tilde, 1.0, true, false);
            assert_state_close(&generic, &closed, 1e-9);
        }
    }

    fn assert_state_close(a: &AdmgState, b: &AdmgState, tol: f64) {
        let all = |x: &AdmgState| {
            let mut v = x.lambda.clone();
            v.extend_from_slice(&x.mu);
            v.extend_from_slice(&x.nu);
            v.extend_from_slice(&x.a);
            v.extend_from_slice(&x.phi);
            v.extend_from_slice(&x.varphi);
            v
        };
        let va = all(a);
        let vb = all(b);
        for (idx, (x, y)) in va.iter().zip(&vb).enumerate() {
            assert!((x - y).abs() < tol, "component {idx} differs: {x} vs {y}");
        }
    }
}
