//! Centralized reference solver.
//!
//! With the quadratic utility (2) and an affine or quadratic emission cost,
//! the whole transformed problem (12) is one convex QP over
//! `x = [λ; μ; ν] ∈ ℝ^{MN+2N}`. This module assembles that QP explicitly
//! and hands it to `ufc-opt` — the exact active-set solver by default, the
//! OSQP-style ADMM solver as an alternative — providing the optimality
//! reference against which the distributed ADM-G iterates are verified
//! (tests, EXPERIMENTS.md) exactly as the paper verifies its algorithm
//! against a centralized solution.
//!
//! Stepped emission tariffs make the objective non-quadratic; the
//! centralized path reports [`CoreError::Unsupported`] for them (ADM-G
//! itself handles them fine — that asymmetry is the paper's point).

use ufc_linalg::Matrix;
use ufc_model::{evaluate, EmissionCostFn, OperatingPoint, UfcBreakdown, UfcInstance};
use ufc_opt::{ActiveSetQp, AdmmQp, AdmmQpSettings, QuadObjective};

use crate::{CoreError, Result, Strategy};

/// Centralized solution: the optimal operating point and its UFC breakdown.
#[derive(Debug, Clone)]
pub struct CentralizedSolution {
    /// Exactly feasible optimal point.
    pub point: OperatingPoint,
    /// UFC breakdown at the optimum.
    pub breakdown: UfcBreakdown,
}

/// Which backend solves the assembled QP.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// Exact dense active-set (`ufc_opt::ActiveSetQp`); right at paper scale.
    ActiveSet,
    /// OSQP-style ADMM (`ufc_opt::AdmmQp`); tolerant of larger instances.
    Admm,
}

/// Solves the full problem (12) centrally under a strategy restriction.
///
/// # Errors
///
/// * [`CoreError::Unsupported`] for stepped emission costs or an infeasible
///   `FuelCellOnly` restriction.
/// * [`CoreError::Subproblem`] if the QP solver fails.
/// * [`CoreError::Model`] if the recovered point fails evaluation.
pub fn solve(
    instance: &UfcInstance,
    strategy: Strategy,
    backend: Backend,
) -> Result<CentralizedSolution> {
    let m = instance.m_frontends();
    let n = instance.n_datacenters();
    let n_var = m * n + 2 * n;
    let h = instance.slot_hours;

    if strategy == Strategy::FuelCellOnly && !instance.fuel_cells_cover_peak() {
        return Err(CoreError::Unsupported {
            context: "FuelCellOnly requires fuel-cell capacity covering peak demand".to_owned(),
        });
    }
    if instance.queueing.is_some() {
        return Err(CoreError::Unsupported {
            context: "centralized QP cannot encode the congestion barrier (queueing extension)"
                .to_owned(),
        });
    }

    // --- Objective: ½xᵀQx + cᵀx.
    let mu_off = m * n;
    let nu_off = m * n + n;
    let mut q = Matrix::zeros(n_var, n_var);
    let w = instance.weight_per_kserver();
    for i in 0..m {
        if instance.arrivals[i] == 0.0 {
            // Zero-demand front-end: λ_i ≡ 0 is forced by its simplex row,
            // so its utility term vanishes — no curvature to add.
            continue;
        }
        let gamma = 2.0 * w / instance.arrivals[i];
        let lat = &instance.latency_s[i];
        for j1 in 0..n {
            for j2 in 0..n {
                q[(i * n + j1, i * n + j2)] += gamma * lat[j1] * lat[j2];
            }
        }
    }
    let mut c = vec![0.0; n_var];
    for j in 0..n {
        c[mu_off + j] = h * instance.fuel_cell_price;
        let ch = instance.carbon_t_per_mwh[j] * h;
        match &instance.emission_cost[j] {
            EmissionCostFn::Linear { rate } => {
                c[nu_off + j] = h * instance.grid_price[j] + rate * ch;
            }
            EmissionCostFn::Quadratic { linear, quad } => {
                c[nu_off + j] = h * instance.grid_price[j] + linear * ch;
                q[(nu_off + j, nu_off + j)] += 2.0 * quad * ch * ch;
            }
            EmissionCostFn::Stepped { .. } => {
                return Err(CoreError::Unsupported {
                    context: "centralized QP cannot encode a stepped emission tariff".to_owned(),
                });
            }
        }
    }

    // --- Equality constraints.
    let extra_eq = match strategy {
        Strategy::Hybrid => 0,
        Strategy::GridOnly | Strategy::FuelCellOnly => n,
    };
    let me = m + n + extra_eq;
    let mut a_eq = Matrix::zeros(me, n_var);
    let mut b_eq = vec![0.0; me];
    for i in 0..m {
        for j in 0..n {
            a_eq[(i, i * n + j)] = 1.0;
        }
        b_eq[i] = instance.arrivals[i];
    }
    for j in 0..n {
        let r = m + j;
        for i in 0..m {
            a_eq[(r, i * n + j)] = instance.beta[j];
        }
        a_eq[(r, mu_off + j)] = -1.0;
        a_eq[(r, nu_off + j)] = -1.0;
        b_eq[r] = -instance.alpha[j];
    }
    match strategy {
        Strategy::GridOnly => {
            for j in 0..n {
                a_eq[(m + n + j, mu_off + j)] = 1.0;
            }
        }
        Strategy::FuelCellOnly => {
            for j in 0..n {
                a_eq[(m + n + j, nu_off + j)] = 1.0;
            }
        }
        Strategy::Hybrid => {}
    }

    // --- Inequality constraints: capacity, λ ≥ 0, 0 ≤ μ ≤ μmax, ν ≥ 0.
    let mi = n + m * n + 2 * n + n;
    let mut a_in = Matrix::zeros(mi, n_var);
    let mut b_in = vec![0.0; mi];
    for j in 0..n {
        for i in 0..m {
            a_in[(j, i * n + j)] = 1.0;
        }
        b_in[j] = instance.capacities[j];
    }
    for k in 0..m * n {
        a_in[(n + k, k)] = -1.0;
    }
    for j in 0..n {
        a_in[(n + m * n + j, mu_off + j)] = -1.0;
        a_in[(n + m * n + n + j, mu_off + j)] = 1.0;
        b_in[n + m * n + n + j] = instance.mu_max[j];
        a_in[(n + m * n + 2 * n + j, nu_off + j)] = -1.0;
    }

    // --- Feasible start: capacity-proportional routing.
    let total_cap = instance.total_capacity();
    let mut x0 = vec![0.0; n_var];
    for i in 0..m {
        for j in 0..n {
            x0[i * n + j] = instance.arrivals[i] * instance.capacities[j] / total_cap;
        }
    }
    for j in 0..n {
        let load: f64 = (0..m).map(|i| x0[i * n + j]).sum();
        let demand = instance.demand_mw(j, load);
        if strategy == Strategy::FuelCellOnly {
            x0[mu_off + j] = demand;
            x0[nu_off + j] = 0.0;
        } else {
            x0[mu_off + j] = 0.0;
            x0[nu_off + j] = demand;
        }
    }

    // --- Solve.
    let x = match backend {
        Backend::ActiveSet => {
            let objective = QuadObjective::dense(q, c, 0.0)
                .map_err(|e| CoreError::subproblem("centralized objective", e))?;
            ActiveSetQp::new(4000, 1e-10)
                .with_hessian_shift(1e-7)
                .solve(&objective, &a_eq, &b_eq, &a_in, &b_in, x0)
                .map_err(|e| CoreError::subproblem("centralized active-set", e))?
                .x
        }
        Backend::Admm => {
            // Stack equality rows (l = u) and inequality rows (l = −∞).
            let rows = me + mi;
            let mut a = Matrix::zeros(rows, n_var);
            let mut l = vec![0.0; rows];
            let mut u = vec![0.0; rows];
            for r in 0..me {
                for v in 0..n_var {
                    a[(r, v)] = a_eq[(r, v)];
                }
                l[r] = b_eq[r];
                u[r] = b_eq[r];
            }
            for r in 0..mi {
                for v in 0..n_var {
                    a[(me + r, v)] = a_in[(r, v)];
                }
                l[me + r] = f64::NEG_INFINITY;
                u[me + r] = b_in[r];
            }
            let mut q_reg = q;
            q_reg.add_diagonal(1e-7);
            AdmmQp::new(AdmmQpSettings {
                max_iterations: 200_000,
                eps_abs: 1e-7,
                eps_rel: 1e-7,
                ..AdmmQpSettings::default()
            })
            .solve(&q_reg, &c, &a, &l, &u)
            .map_err(|e| CoreError::subproblem("centralized admm", e))?
            .x
        }
    };

    // --- Recover an exactly feasible operating point.
    let mut lambda: Vec<Vec<f64>> = (0..m)
        .map(|i| ufc_opt::projection::project_simplex(&x[i * n..(i + 1) * n], instance.arrivals[i]))
        .collect();
    // Clean numerical dust below the projection tolerance.
    for row in &mut lambda {
        for v in row.iter_mut() {
            if *v < 1e-12 {
                *v = 0.0;
            }
        }
        let s: f64 = row.iter().sum();
        if s > 0.0 {
            // renormalize the dust removal
        }
    }
    let mut mu = vec![0.0; n];
    for j in 0..n {
        let load: f64 = lambda.iter().map(|r| r[j]).sum();
        let demand = instance.demand_mw(j, load);
        mu[j] = if strategy == Strategy::FuelCellOnly {
            demand
        } else if strategy == Strategy::GridOnly {
            0.0
        } else {
            x[mu_off + j].clamp(0.0, instance.mu_max[j].min(demand))
        };
    }
    let point =
        OperatingPoint::from_routing_and_fuel(instance, lambda, mu).map_err(CoreError::Model)?;
    let breakdown = evaluate(instance, &point).map_err(CoreError::Model)?;
    Ok(CentralizedSolution { point, breakdown })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AdmgSettings, AdmgSolver};
    use ufc_model::EmissionCostFn;

    fn tiny() -> UfcInstance {
        UfcInstance::new(
            vec![1.0, 2.0],
            vec![2.0, 2.0],
            vec![0.24, 0.24],
            vec![0.12, 0.12],
            vec![0.48, 0.48],
            vec![30.0, 70.0],
            80.0,
            vec![0.5, 0.3],
            vec![vec![0.01, 0.02], vec![0.02, 0.01]],
            10.0,
            vec![
                EmissionCostFn::linear(25.0).unwrap(),
                EmissionCostFn::linear(25.0).unwrap(),
            ],
            1.0,
        )
        .unwrap()
    }

    #[test]
    fn centralized_point_is_feasible() {
        let inst = tiny();
        let sol = solve(&inst, Strategy::Hybrid, Backend::ActiveSet).unwrap();
        assert!(sol.point.feasibility_residual(&inst) < 1e-8);
    }

    #[test]
    fn backends_agree() {
        let inst = tiny();
        let a = solve(&inst, Strategy::Hybrid, Backend::ActiveSet).unwrap();
        let b = solve(&inst, Strategy::Hybrid, Backend::Admm).unwrap();
        assert!(
            (a.breakdown.ufc() - b.breakdown.ufc()).abs() < 1e-2,
            "active-set {} vs admm {}",
            a.breakdown.ufc(),
            b.breakdown.ufc()
        );
    }

    #[test]
    fn admg_matches_centralized_optimum() {
        let inst = tiny();
        let central = solve(&inst, Strategy::Hybrid, Backend::ActiveSet).unwrap();
        let admg = AdmgSolver::new(AdmgSettings::default())
            .solve(&inst, Strategy::Hybrid)
            .unwrap();
        assert!(admg.converged);
        let rel = (central.breakdown.ufc() - admg.breakdown.ufc()).abs()
            / central.breakdown.ufc().abs().max(1.0);
        assert!(
            rel < 5e-3,
            "centralized {} vs ADM-G {} (rel {rel})",
            central.breakdown.ufc(),
            admg.breakdown.ufc()
        );
        // ADM-G can only be worse than the optimum (up to polish noise).
        assert!(admg.breakdown.ufc() <= central.breakdown.ufc() + 1e-2);
    }

    #[test]
    fn strategies_are_enforced_centrally() {
        let inst = tiny();
        let grid = solve(&inst, Strategy::GridOnly, Backend::ActiveSet).unwrap();
        assert!(grid.point.mu.iter().all(|&v| v == 0.0));
        let fc = solve(&inst, Strategy::FuelCellOnly, Backend::ActiveSet).unwrap();
        assert!(fc.point.nu.iter().all(|&v| v.abs() < 1e-9));
    }

    #[test]
    fn stepped_tariff_is_unsupported() {
        let mut inst = tiny();
        inst.emission_cost = vec![
            EmissionCostFn::stepped(vec![1.0], vec![10.0, 30.0]).unwrap(),
            EmissionCostFn::linear(25.0).unwrap(),
        ];
        let err = solve(&inst, Strategy::Hybrid, Backend::ActiveSet).unwrap_err();
        assert!(matches!(err, CoreError::Unsupported { .. }));
    }

    #[test]
    fn quadratic_tariff_is_supported() {
        let mut inst = tiny();
        inst.emission_cost = vec![
            EmissionCostFn::quadratic(10.0, 5.0).unwrap(),
            EmissionCostFn::quadratic(10.0, 5.0).unwrap(),
        ];
        let sol = solve(&inst, Strategy::Hybrid, Backend::ActiveSet).unwrap();
        assert!(sol.point.feasibility_residual(&inst) < 1e-8);
    }
}
