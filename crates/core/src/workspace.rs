//! Persistent per-block solver workspaces for the ADM-G hot path.
//!
//! Across ADM-G iterations every sub-problem QP keeps the *same* Hessian and
//! constraints — only the linear term (built from the current duals and
//! iterates) moves. The λ-QP of front-end `i` always has Hessian
//! `ρI + (2w/A_i)·L_i L_iᵀ` over the simplex `{λ ≥ 0, Σλ = A_i}`, and the
//! a-QP of datacenter `j` always has `ρ(I + β_j²·1 1ᵀ)` over the capped
//! simplex. [`LambdaQp`] and [`AColQp`] exploit that: each owns its block's
//! objective and constraint matrices once, keeps a [`KktCache`] of LDLᵀ
//! factorizations keyed by active-set working set, and warm-starts from the
//! previous iterate, so steady-state iterations solve each block with cached
//! factors instead of re-assembling and re-factoring the KKT system.
//!
//! # Cache and warm-start invariants
//!
//! * A kernel is valid for one `(instance row/column, ρ, method)` tuple —
//!   its cache keys assume a fixed Hessian and constraint set. Changing ρ or
//!   retargeting to a different block requires building a new kernel. A
//!   workspace **may** be reused across strategy restrictions on the same
//!   instance/settings: the strategy flags only gate the scalar μ/ν steps
//!   and never touch a block Hessian or constraint, so cached factors stay
//!   valid (and, the cache being pure memoization, results stay
//!   bit-identical to fresh-workspace solves — `solve_all_strategies` relies
//!   on this).
//! * The cache is a pure memoization: cached solves are **bit-identical** to
//!   fresh ones (asserted by tests in `ufc-opt`), so enabling it never
//!   perturbs the iterate trajectory.
//! * Warm starts use a deterministic feasibility gate: the previous iterate
//!   is used as the QP start only when it satisfies the block's constraints
//!   to tight tolerance, otherwise the kernel falls back to the classic cold
//!   start (uniform for λ, zero for a). The gate depends only on the iterate
//!   values, never on timing or thread count, preserving determinism.

use ufc_linalg::Matrix;
use ufc_model::{utility::disutility_rank1_gamma, QueueingCost, UfcInstance};
use ufc_opt::projection::{project_capped_simplex, project_simplex};
use ufc_opt::{ActiveSetQp, Fista, KktCache, QuadObjective};

use crate::pool::WorkerPool;
use crate::subproblems::{
    mu_scalar_step_bounded, nu_scalar_step, storage_scalar_step, CongestedAStep,
    FISTA_CONGESTED_TOL, FISTA_MAX_ITER, FISTA_TOL,
};
use crate::telemetry::SolverCounters;
use crate::{AdmgSettings, AdmgState, CoreError, Result, SubproblemMethod};

/// Entry tolerance for accepting a previous iterate as a warm start:
/// component-wise nonnegativity slack.
const WARM_NONNEG_TOL: f64 = 1e-9;
/// Relative tolerance on the coupling row (Σλ = A_i, Σa ≤ S_j) for warm
/// starts; tighter than the active-set solver's own feasibility check so an
/// accepted warm start is never rejected downstream.
const WARM_ROW_TOL: f64 = 1e-7;
/// Entries of an accepted warm start at or below this value are snapped to
/// exactly zero and their nonnegativity rows seed the active-set working
/// set — the solver then starts on the previous iterate's support instead
/// of re-discovering it one blocking constraint per KKT solve.
const WARM_SNAP_TOL: f64 = 1e-10;

/// Snaps near-zero warm-start entries to exact zeros and fills `seed` with
/// the seeded working-set rows (the snapped indices). An all-zero result
/// clears the seed: a zero iterate carries no support information and
/// coincides with the classic cold start, which must stay bit-identical to
/// the unseeded reference path. Writes into a caller-owned buffer so the
/// steady-state hot path allocates nothing per solve.
fn snap_support_into(x: &mut [f64], seed: &mut Vec<usize>) {
    seed.clear();
    for (i, xi) in x.iter_mut().enumerate() {
        if *xi <= WARM_SNAP_TOL {
            *xi = 0.0;
            seed.push(i);
        }
    }
    if seed.len() == x.len() {
        seed.clear();
    }
}

/// Which acceleration paths a block kernel engages — the per-kernel
/// projection of [`AdmgSettings`]. All three default to `false`; the
/// bit-identity contract of each knob is documented on the corresponding
/// settings field.
#[derive(Debug, Clone, Copy, Default)]
pub struct QpOptions {
    /// Memoize KKT factorizations keyed by working set (pure memo — cached
    /// solves are bit-identical to fresh ones).
    pub caching: bool,
    /// Solve structured KKT systems in `O(n)` via Sherman–Morrison
    /// ([`AdmgSettings::rank1_kkt`]; tolerance-equal, **not** bitwise).
    pub rank1_kkt: bool,
    /// Factor dense KKT systems with the blocked LDLᵀ kernel
    /// ([`AdmgSettings::blocked_factorizations`]; bit-identical).
    pub blocked_factorizations: bool,
}

impl QpOptions {
    /// Extracts the kernel options from solver settings.
    #[must_use]
    pub fn from_settings(settings: &AdmgSettings) -> Self {
        QpOptions {
            caching: settings.cache_factorizations,
            rank1_kkt: settings.rank1_kkt,
            blocked_factorizations: settings.blocked_factorizations,
        }
    }

    /// Options with only factorization caching toggled — the pre-scaling
    /// kernel configuration.
    #[must_use]
    pub fn caching_only(caching: bool) -> Self {
        QpOptions {
            caching,
            ..QpOptions::default()
        }
    }
}

impl QpOptions {
    fn cache(self) -> KktCache {
        if self.caching {
            KktCache::default()
        } else {
            KktCache::disabled()
        }
    }

    /// The configured active-set solver for a block of dimension `dim`.
    /// The iteration cap grows with the block (`max(500, 4·dim)`): a cold
    /// active-set solve legitimately performs `O(dim)` working-set changes,
    /// so the classic 500 starves blocks beyond ~125 variables. Raising the
    /// cap is bit-safe — any solve that converged under the old cap follows
    /// the exact same trajectory under the new one.
    fn solver(self, dim: usize) -> ActiveSetQp {
        ActiveSetQp::new(500.max(4 * dim), 1e-9)
            .with_rank1_kkt(self.rank1_kkt)
            .with_blocked_factorizations(self.blocked_factorizations)
    }
}

/// Persistent solver kernel for one front-end's λ-QP (paper Eq. (17)).
///
/// Owns the block's objective (Hessian fixed at construction, linear term
/// retargeted per solve), its simplex constraint matrices, and a KKT
/// factorization cache shared across solves.
#[derive(Debug, Clone)]
pub struct LambdaQp {
    arrival: f64,
    method: SubproblemMethod,
    solver: ActiveSetQp,
    objective: QuadObjective,
    a_eq: Matrix,
    a_in: Matrix,
    b_in: Vec<f64>,
    cache: KktCache,
    /// Recycled start vector: each solve takes it, fills it, and hands it to
    /// the solver by value; the solver's previous output buffer comes back
    /// in its place, so steady-state solves allocate nothing.
    start_buf: Vec<f64>,
    /// Recycled working-set seed buffer (see [`snap_support_into`]).
    seed_buf: Vec<usize>,
    warm_accepted: u64,
    warm_rejected: u64,
}

impl LambdaQp {
    /// Builds the kernel for a front-end with the given latency row,
    /// arrival rate, disutility weight `w` and penalty ρ. `options` selects
    /// the acceleration paths; `QpOptions::default()` (everything off)
    /// reproduces the uncached pre-scaling behavior bit-for-bit.
    #[must_use]
    pub fn new(
        latencies: &[f64],
        arrival: f64,
        w: f64,
        rho: f64,
        method: SubproblemMethod,
        options: QpOptions,
    ) -> Self {
        let n = latencies.len();
        let gamma = disutility_rank1_gamma(w, arrival);
        let objective =
            QuadObjective::diag_rank1(vec![rho; n], gamma, latencies.to_vec(), vec![0.0; n], 0.0);
        LambdaQp {
            arrival,
            method,
            solver: options.solver(n),
            objective,
            a_eq: Matrix::from_fn(1, n, |_, _| 1.0),
            a_in: Matrix::from_fn(n, n, |r, c| if r == c { -1.0 } else { 0.0 }),
            b_in: vec![0.0; n],
            cache: options.cache(),
            start_buf: Vec::new(),
            seed_buf: Vec::new(),
            warm_accepted: 0,
            warm_rejected: 0,
        }
    }

    /// Solves the block QP for linear term `c`, warm-starting from `warm`
    /// when it passes the deterministic feasibility gate (otherwise the
    /// classic uniform start `A_i/n` is used, matching the cold path).
    ///
    /// # Errors
    ///
    /// Propagates the inner QP solver's error.
    pub fn solve(&mut self, c: &[f64], warm: Option<&[f64]>) -> ufc_opt::Result<Vec<f64>> {
        let mut out = Vec::new();
        self.solve_into(c, warm, &mut out)?;
        Ok(out)
    }

    /// [`Self::solve`] into a caller-owned output buffer. `out` is replaced
    /// by the solution vector; its previous backing storage is recycled as
    /// the next solve's start vector, so a caller looping over iterations
    /// with a persistent `out` allocates nothing per solve in steady state.
    ///
    /// # Errors
    ///
    /// Propagates the inner QP solver's error.
    pub fn solve_into(
        &mut self,
        c: &[f64],
        warm: Option<&[f64]>,
        out: &mut Vec<f64>,
    ) -> ufc_opt::Result<()> {
        if self.arrival == 0.0 {
            // Zero-demand front-end: the simplex of radius 0 is the
            // singleton {0}. Short-circuiting keeps every engine (and the
            // reference `lambda_step`) bit-identical and spares the QP an
            // all-active degenerate working set.
            out.clear();
            out.resize(self.b_in.len(), 0.0);
            return Ok(());
        }
        self.objective.set_linear(c);
        let start = self.fill_start(warm);
        let x = match self.method {
            SubproblemMethod::ActiveSet => {
                self.solver
                    .solve_seeded(
                        &self.objective,
                        &self.a_eq,
                        &[self.arrival],
                        &self.a_in,
                        &self.b_in,
                        start,
                        &mut self.cache,
                        &self.seed_buf,
                    )?
                    .x
            }
            SubproblemMethod::Fista => {
                let arrival = self.arrival;
                Fista::new(FISTA_MAX_ITER, FISTA_TOL)
                    .minimize(&self.objective, |x| project_simplex(x, arrival), start)?
                    .x
            }
        };
        self.start_buf = std::mem::replace(out, x);
        Ok(())
    }

    /// Cache hit count (diagnostics).
    #[must_use]
    pub fn cache_hits(&self) -> u64 {
        self.cache.hits()
    }

    /// Cache miss count (diagnostics).
    #[must_use]
    pub fn cache_misses(&self) -> u64 {
        self.cache.misses()
    }

    /// Warm-start candidates accepted / rejected by the feasibility gate.
    #[must_use]
    pub fn warm_starts(&self) -> (u64, u64) {
        (self.warm_accepted, self.warm_rejected)
    }

    /// Fills the recycled start buffer (warm candidate if it passes the
    /// feasibility gate, uniform cold start otherwise) and the working-set
    /// seed buffer, then hands the start vector to the caller by value.
    fn fill_start(&mut self, warm: Option<&[f64]>) -> Vec<f64> {
        let n = self.b_in.len();
        let mut start = std::mem::take(&mut self.start_buf);
        self.seed_buf.clear();
        if let Some(w) = warm {
            if w.len() == n {
                let sum: f64 = w.iter().sum();
                let nonneg = w.iter().all(|&v| v >= -WARM_NONNEG_TOL);
                if nonneg && (sum - self.arrival).abs() <= WARM_ROW_TOL * (1.0 + self.arrival.abs())
                {
                    start.clear();
                    start.extend_from_slice(w);
                    snap_support_into(&mut start, &mut self.seed_buf);
                    self.warm_accepted += 1;
                    return start;
                }
            }
            self.warm_rejected += 1;
        }
        start.clear();
        start.resize(n, self.arrival / n as f64);
        start
    }
}

/// Persistent solver kernel for one datacenter's a-QP column (paper
/// Eq. (20)), optionally with the congestion-barrier extension.
#[derive(Debug, Clone)]
pub struct AColQp {
    capacity: f64,
    method: SubproblemMethod,
    solver: ActiveSetQp,
    objective: QuadObjective,
    a_eq: Matrix,
    a_in: Matrix,
    b_in: Vec<f64>,
    /// Persistent congested objective (barrier + quadratic part) and its
    /// shrunk cap, built once at construction instead of cloned per solve.
    congested: Option<(CongestedAStep, f64)>,
    cache: KktCache,
    /// Recycled start vector (see [`LambdaQp::start_buf`]).
    start_buf: Vec<f64>,
    /// Recycled working-set seed buffer.
    seed_buf: Vec<usize>,
    warm_accepted: u64,
    warm_rejected: u64,
}

impl AColQp {
    /// Builds the kernel for a datacenter column: `m` front-ends, penalty ρ,
    /// power-proportionality slope β, capacity cap, and the optional
    /// queueing (congestion) extension. `options` selects the acceleration
    /// paths; `QpOptions::default()` reproduces the uncached pre-scaling
    /// behavior bit-for-bit.
    #[must_use]
    pub fn new(
        m: usize,
        rho: f64,
        beta: f64,
        capacity: f64,
        queueing: Option<QueueingCost>,
        method: SubproblemMethod,
        options: QpOptions,
    ) -> Self {
        let objective = QuadObjective::diag_rank1(
            vec![rho; m],
            rho * beta * beta,
            vec![1.0; m],
            vec![0.0; m],
            0.0,
        );
        // Rows: −a_i ≤ 0 for each i, then Σ_i a_i ≤ S_j.
        let mut a_in = Matrix::zeros(m + 1, m);
        let mut b_in = vec![0.0; m + 1];
        for i in 0..m {
            a_in[(i, i)] = -1.0;
            a_in[(m, i)] = 1.0;
        }
        b_in[m] = capacity;
        let congested = queueing.map(|q| {
            let cap_q = q.load_cap(capacity).min(capacity);
            (CongestedAStep::new(objective.clone(), q, capacity), cap_q)
        });
        AColQp {
            capacity,
            method,
            solver: options.solver(m),
            objective,
            a_eq: Matrix::zeros(0, m),
            a_in,
            b_in,
            congested,
            cache: options.cache(),
            start_buf: Vec::new(),
            seed_buf: Vec::new(),
            warm_accepted: 0,
            warm_rejected: 0,
        }
    }

    /// Solves the column QP for linear term `c`, warm-starting from `warm`
    /// when it passes the deterministic feasibility gate (otherwise from the
    /// classic zero start).
    ///
    /// # Errors
    ///
    /// Propagates the inner solver's error.
    pub fn solve(&mut self, c: &[f64], warm: Option<&[f64]>) -> ufc_opt::Result<Vec<f64>> {
        let mut out = Vec::new();
        self.solve_into(c, warm, &mut out)?;
        Ok(out)
    }

    /// [`Self::solve`] into a caller-owned output buffer, with the same
    /// buffer-recycling contract as [`LambdaQp::solve_into`].
    ///
    /// # Errors
    ///
    /// Propagates the inner solver's error.
    pub fn solve_into(
        &mut self,
        c: &[f64],
        warm: Option<&[f64]>,
        out: &mut Vec<f64>,
    ) -> ufc_opt::Result<()> {
        if self.congested.is_some() {
            // Congested path: barrier objective over the shrunk cap; solved
            // by backtracking FISTA regardless of the configured method.
            let cap_q = self.congested.as_ref().map(|(_, cq)| *cq).unwrap_or(0.0);
            let start = self.fill_start(warm, cap_q);
            let (cong, _) = self.congested.as_mut().expect("checked above");
            cong.set_linear(c);
            let x = Fista::new(FISTA_MAX_ITER, FISTA_CONGESTED_TOL)
                .minimize_adaptive(&*cong, |x| project_capped_simplex(x, cap_q), start)?
                .x;
            self.start_buf = std::mem::replace(out, x);
            return Ok(());
        }
        self.objective.set_linear(c);
        let start = self.fill_start(warm, self.capacity);
        let x = match self.method {
            SubproblemMethod::ActiveSet => {
                self.solver
                    .solve_seeded(
                        &self.objective,
                        &self.a_eq,
                        &[],
                        &self.a_in,
                        &self.b_in,
                        start,
                        &mut self.cache,
                        &self.seed_buf,
                    )?
                    .x
            }
            SubproblemMethod::Fista => {
                let cap = self.capacity;
                Fista::new(FISTA_MAX_ITER, FISTA_TOL)
                    .minimize(&self.objective, |x| project_capped_simplex(x, cap), start)?
                    .x
            }
        };
        self.start_buf = std::mem::replace(out, x);
        Ok(())
    }

    /// Cache hit count (diagnostics).
    #[must_use]
    pub fn cache_hits(&self) -> u64 {
        self.cache.hits()
    }

    /// Cache miss count (diagnostics).
    #[must_use]
    pub fn cache_misses(&self) -> u64 {
        self.cache.misses()
    }

    /// Warm-start candidates accepted / rejected by the feasibility gate.
    #[must_use]
    pub fn warm_starts(&self) -> (u64, u64) {
        (self.warm_accepted, self.warm_rejected)
    }

    /// Fills the recycled start buffer (warm candidate if it passes the
    /// feasibility gate, zero cold start otherwise) and the working-set
    /// seed buffer, then hands the start vector to the caller by value.
    fn fill_start(&mut self, warm: Option<&[f64]>, cap: f64) -> Vec<f64> {
        let m = self.a_in.cols();
        let mut start = std::mem::take(&mut self.start_buf);
        self.seed_buf.clear();
        if let Some(w) = warm {
            if w.len() == m {
                let sum: f64 = w.iter().sum();
                let nonneg = w.iter().all(|&v| v >= -WARM_NONNEG_TOL);
                if nonneg && sum <= cap * (1.0 + WARM_NONNEG_TOL) + WARM_NONNEG_TOL {
                    start.clear();
                    start.extend_from_slice(w);
                    // Only the m nonnegativity rows are ever seeded — the
                    // capacity row (index m) is left to the solver's own
                    // blocking logic, which keeps every seeded working set
                    // linearly independent by construction.
                    snap_support_into(&mut start, &mut self.seed_buf);
                    self.warm_accepted += 1;
                    return start;
                }
            }
            self.warm_rejected += 1;
        }
        start.clear();
        start.resize(m, 0.0);
        start
    }
}

/// Per-front-end λ block: the kernel plus reusable linear-term and result
/// buffers, so steady-state iterations allocate nothing per block.
#[derive(Debug)]
struct LambdaBlock {
    c: Vec<f64>,
    out: Vec<f64>,
    qp: LambdaQp,
}

/// Per-datacenter μ/ν/d/a block (the datacenter-owned prediction steps are
/// fused: they share the column load and demand). `d` is the storage block's
/// net discharge — exactly `0.0` on spatial-only instances and for
/// datacenters without a battery, which keeps the classic 4-block schedule
/// the bit-identical degenerate case.
#[derive(Debug)]
struct ABlock {
    c: Vec<f64>,
    warm: Vec<f64>,
    out: Vec<f64>,
    mu: f64,
    nu: f64,
    d: f64,
    qp: AColQp,
}

/// The solver-wide workspace: one persistent kernel per ADM-G block plus the
/// reusable `tilde`/`prev` iterate buffers. Built once per run (or shared
/// across the strategy solves of `solve_all_strategies`) and reused across
/// all iterations through the in-process `Transport`.
#[derive(Debug)]
pub(crate) struct SolverWorkspace {
    /// Predicted (tilde) iterate, overwritten by each prediction phase.
    pub(crate) tilde: AdmgState,
    /// Scratch copy of the pre-correction iterate (for the dual residual).
    pub(crate) prev: AdmgState,
    lambda_blocks: Vec<LambdaBlock>,
    a_blocks: Vec<ABlock>,
    rho: f64,
    warm: bool,
}

impl SolverWorkspace {
    pub(crate) fn new(instance: &UfcInstance, settings: &AdmgSettings) -> Self {
        let (m, n) = (instance.m_frontends(), instance.n_datacenters());
        let w = instance.weight_per_kserver();
        let options = QpOptions::from_settings(settings);
        let lambda_blocks = (0..m)
            .map(|i| LambdaBlock {
                c: vec![0.0; n],
                out: vec![0.0; n],
                qp: LambdaQp::new(
                    &instance.latency_s[i],
                    instance.arrivals[i],
                    w,
                    settings.rho,
                    settings.method,
                    options,
                ),
            })
            .collect();
        let a_blocks = (0..n)
            .map(|j| ABlock {
                c: vec![0.0; m],
                warm: vec![0.0; m],
                out: vec![0.0; m],
                mu: 0.0,
                nu: 0.0,
                d: 0.0,
                qp: AColQp::new(
                    m,
                    settings.rho,
                    instance.beta[j],
                    instance.capacities[j],
                    instance.queueing,
                    settings.method,
                    options,
                ),
            })
            .collect();
        SolverWorkspace {
            tilde: AdmgState::zeros(instance),
            prev: AdmgState::zeros(instance),
            lambda_blocks,
            a_blocks,
            rho: settings.rho,
            warm: options.caching,
        }
    }

    /// The λ prediction phase (paper Eq. (17)): one simplex QP per
    /// front-end, writing `λ̃` into `self.tilde.lambda`.
    ///
    /// The per-front-end solves are fanned across `pool`; results land in
    /// fixed per-block slots and are gathered in index order, so any thread
    /// count yields bit-identical output. Errors are reported
    /// deterministically (lowest block index first).
    ///
    /// Called from the unified iteration driver (`crate::engine::drive`) —
    /// the phase order λ → μ → ν → a lives there, not here.
    pub(crate) fn predict_lambda(&mut self, state: &AdmgState, pool: &WorkerPool) -> Result<()> {
        let n = state.n;
        let rho = self.rho;
        let warm_enabled = self.warm;
        let lambda_results = pool.map_mut(&mut self.lambda_blocks, |i, blk| {
            for j in 0..n {
                blk.c[j] = state.varphi[i * n + j] - rho * state.a[i * n + j];
            }
            let warm = if warm_enabled {
                Some(&state.lambda[i * n..(i + 1) * n])
            } else {
                None
            };
            let (c, out) = (&blk.c, &mut blk.out);
            blk.qp.solve_into(c, warm, out)
        });
        for (i, r) in lambda_results.into_iter().enumerate() {
            r.map_err(|e| CoreError::subproblem(format!("lambda[{i}]"), e))?;
        }
        for (i, blk) in self.lambda_blocks.iter().enumerate() {
            self.tilde.lambda[i * n..(i + 1) * n].copy_from_slice(&blk.out);
        }
        Ok(())
    }

    /// The datacenter-side prediction phases (paper Eqs. (18)–(20) plus the
    /// storage block and the dual prediction): the fused per-datacenter
    /// μ → ν → d → a steps followed by the in-place φ/φ_ij updates, writing
    /// into `self.tilde`. Requires a preceding [`Self::predict_lambda`] for
    /// the same `state` (it consumes `self.tilde.lambda`).
    ///
    /// Each column's closed-form μ, ν and d and its capped-simplex QP depend
    /// only on that datacenter's load, so the steps run as one task per
    /// datacenter, fanned across `pool` with index-ordered gather
    /// (bit-identical at any thread count). On spatial-only instances the d
    /// step is pinned at exactly `0.0` and the phase reproduces the classic
    /// 4-block prediction bit-for-bit.
    pub(crate) fn predict_site_blocks(
        &mut self,
        instance: &UfcInstance,
        state: &AdmgState,
        pool: &WorkerPool,
        active_mu: bool,
        active_nu: bool,
    ) -> Result<()> {
        let (m, n) = (state.m, state.n);
        let rho = self.rho;
        let warm_enabled = self.warm;
        let tilde_lambda = &self.tilde.lambda;
        let h = instance.slot_hours;
        let a_results = pool.map_mut(&mut self.a_blocks, |j, blk| {
            let mut load = 0.0;
            for i in 0..m {
                load += state.a[i * n + j];
            }
            let demand = instance.demand_mw(j, load);
            // μ̃/ν̃ see the demand net of the previous iterate's storage
            // draw; on spatial-only instances `state.d[j]` is exactly `0.0`
            // and `x − 0.0 = x` bitwise, so the classic path is unchanged.
            let demand_eff = demand - state.d[j];
            let (mu_lo, mu_hi) = match &instance.storage {
                Some(sp) => sp.mu_bounds(j, instance.mu_max[j]),
                None => (0.0, instance.mu_max[j]),
            };
            blk.mu = if active_mu {
                mu_scalar_step_bounded(
                    demand_eff,
                    state.nu[j],
                    state.phi[j],
                    h * instance.fuel_cell_price,
                    rho,
                    mu_lo,
                    mu_hi,
                )
            } else {
                0.0
            };
            blk.nu = if active_nu {
                nu_scalar_step(
                    demand_eff,
                    blk.mu,
                    state.phi[j],
                    h * instance.grid_price[j],
                    instance.carbon_t_per_mwh[j] * h,
                    &instance.emission_cost[j],
                    rho,
                )
            } else {
                0.0
            };
            // Storage block: solves for a *fresh* net discharge against the
            // full demand (not `demand_eff` — the block replaces `d`, it
            // does not adjust it). Pinned at exactly `+0.0` without a
            // battery.
            blk.d = match &instance.storage {
                Some(sp) if sp.active(j) => {
                    let (d_lo, d_hi) = sp.discharge_bounds(j, h);
                    storage_scalar_step(
                        demand,
                        blk.mu,
                        blk.nu,
                        state.phi[j],
                        sp.value_per_mwh[j] * h,
                        sp.degradation_per_mwh * h,
                        rho,
                        d_lo,
                        d_hi,
                    )
                }
                _ => 0.0,
            };
            let beta = instance.beta[j];
            let drift = instance.alpha[j] - blk.mu - blk.nu - blk.d;
            for i in 0..m {
                blk.c[i] =
                    -rho * tilde_lambda[i * n + j] - state.varphi[i * n + j] - state.phi[j] * beta
                        + rho * beta * drift;
            }
            let warm = if warm_enabled {
                for i in 0..m {
                    blk.warm[i] = state.a[i * n + j];
                }
                Some(blk.warm.as_slice())
            } else {
                None
            };
            let (c, out) = (&blk.c, &mut blk.out);
            blk.qp.solve_into(c, warm, out)
        });
        for (j, r) in a_results.into_iter().enumerate() {
            r.map_err(|e| CoreError::subproblem(format!("a[{j}]"), e))?;
        }
        for (j, blk) in self.a_blocks.iter().enumerate() {
            self.tilde.mu[j] = blk.mu;
            self.tilde.nu[j] = blk.nu;
            self.tilde.d[j] = blk.d;
            for i in 0..m {
                self.tilde.a[i * n + j] = blk.out[i];
            }
        }

        // --- Dual updates, in place (no per-iteration allocation).
        for j in 0..n {
            let mut load = 0.0;
            for i in 0..m {
                load += self.tilde.a[i * n + j];
            }
            self.tilde.phi[j] = state.phi[j]
                - rho
                    * (instance.demand_mw(j, load)
                        - self.tilde.mu[j]
                        - self.tilde.nu[j]
                        - self.tilde.d[j]);
        }
        for k in 0..m * n {
            self.tilde.varphi[k] = state.varphi[k] - rho * (self.tilde.a[k] - self.tilde.lambda[k]);
        }
        Ok(())
    }

    /// Total KKT-cache hits across all blocks (diagnostics).
    #[allow(dead_code)]
    pub(crate) fn cache_hits(&self) -> u64 {
        self.lambda_blocks
            .iter()
            .map(|b| b.qp.cache_hits())
            .chain(self.a_blocks.iter().map(|b| b.qp.cache_hits()))
            .sum()
    }

    /// Solver-layer telemetry counters aggregated across every block
    /// kernel. The pool counters are filled in by the caller that owns the
    /// [`WorkerPool`].
    pub(crate) fn counters(&self) -> SolverCounters {
        let mut c = SolverCounters::default();
        for (hits, misses, warm) in self
            .lambda_blocks
            .iter()
            .map(|b| (b.qp.cache_hits(), b.qp.cache_misses(), b.qp.warm_starts()))
            .chain(
                self.a_blocks
                    .iter()
                    .map(|b| (b.qp.cache_hits(), b.qp.cache_misses(), b.qp.warm_starts())),
            )
        {
            c.kkt_cache_hits += hits;
            c.kkt_cache_misses += misses;
            c.warm_starts_accepted += warm.0;
            c.warm_starts_rejected += warm.1;
        }
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::subproblems::{a_step, dual_step, lambda_step, mu_step, nu_step, storage_step};
    use ufc_model::{EmissionCostFn, StorageFleet};

    fn tiny() -> UfcInstance {
        UfcInstance::new(
            vec![1.0, 2.0],
            vec![2.0, 2.0],
            vec![0.24, 0.24],
            vec![0.12, 0.12],
            vec![0.48, 0.48],
            vec![30.0, 70.0],
            80.0,
            vec![0.5, 0.3],
            vec![vec![0.01, 0.02], vec![0.02, 0.01]],
            10.0,
            vec![
                EmissionCostFn::linear(25.0).unwrap(),
                EmissionCostFn::linear(25.0).unwrap(),
            ],
            1.0,
        )
        .unwrap()
    }

    /// The fused workspace prediction must reproduce the five reference step
    /// functions bit-for-bit when warm starts cannot engage (zero state) and
    /// to solver precision in general.
    #[test]
    fn predict_matches_reference_steps_on_cold_state() {
        let inst = tiny();
        let settings = AdmgSettings::default();
        let state = AdmgState::zeros(&inst);
        let pool = WorkerPool::new(1);
        let mut ws = SolverWorkspace::new(&inst, &settings);
        ws.predict_lambda(&state, &pool).unwrap();
        ws.predict_site_blocks(&inst, &state, &pool, true, true)
            .unwrap();

        let rho = settings.rho;
        let lt = lambda_step(&inst, rho, settings.method, &state).unwrap();
        let mt = mu_step(&inst, rho, &state, true);
        let nt = nu_step(&inst, rho, &state, &mt, true);
        let dt = storage_step(&inst, rho, &state, &mt, &nt);
        let at = a_step(&inst, rho, settings.method, &state, &lt, &mt, &nt, &dt).unwrap();
        let (pt, vt) = dual_step(&inst, rho, &state, &lt, &mt, &nt, &dt, &at);

        assert_eq!(ws.tilde.lambda, lt);
        assert_eq!(ws.tilde.mu, mt);
        assert_eq!(ws.tilde.nu, nt);
        assert_eq!(ws.tilde.d, dt);
        assert_eq!(ws.tilde.a, at);
        assert_eq!(ws.tilde.phi, pt);
        assert_eq!(ws.tilde.varphi, vt);
    }

    /// With caching disabled the workspace must still match the reference
    /// steps exactly — this is the pre-caching baseline path.
    #[test]
    fn predict_baseline_path_matches_reference_steps() {
        let inst = tiny();
        let settings = AdmgSettings::default().with_factorization_caching(false);
        let mut state = AdmgState::zeros(&inst);
        state.a = vec![0.4, 0.6, 1.5, 0.5];
        state.varphi = vec![0.1, -0.2, 0.05, 0.3];
        state.phi = vec![0.2, -0.1];
        let pool = WorkerPool::new(1);
        let mut ws = SolverWorkspace::new(&inst, &settings);
        ws.predict_lambda(&state, &pool).unwrap();
        ws.predict_site_blocks(&inst, &state, &pool, true, true)
            .unwrap();

        let rho = settings.rho;
        let lt = lambda_step(&inst, rho, settings.method, &state).unwrap();
        let mt = mu_step(&inst, rho, &state, true);
        let nt = nu_step(&inst, rho, &state, &mt, true);
        let dt = storage_step(&inst, rho, &state, &mt, &nt);
        let at = a_step(&inst, rho, settings.method, &state, &lt, &mt, &nt, &dt).unwrap();
        assert_eq!(ws.tilde.lambda, lt);
        assert_eq!(ws.tilde.mu, mt);
        assert_eq!(ws.tilde.nu, nt);
        assert_eq!(ws.tilde.a, at);
    }

    /// On a storage instance the fused datacenter phase must reproduce the
    /// five reference step functions — μ bounds from the ramp limit, the
    /// fresh-d storage solve, and the d-aware drift and duals — bit-for-bit
    /// from a warm, nonzero state (caching off so the reference cold-start
    /// path is exercised on both sides).
    #[test]
    fn predict_matches_reference_steps_with_storage() {
        let fleet = StorageFleet::new(2.0, 1.0)
            .initial_charge_frac(0.5)
            .value_per_mwh(40.0)
            .degradation(2.0)
            .ramp_mw(0.3);
        let inst = tiny().with_storage(fleet.initial_params(2)).unwrap();
        let settings = AdmgSettings::default().with_factorization_caching(false);
        let mut state = AdmgState::zeros(&inst);
        state.a = vec![0.4, 0.6, 1.5, 0.5];
        state.varphi = vec![0.1, -0.2, 0.05, 0.3];
        state.phi = vec![0.2, -0.1];
        state.nu = vec![0.3, 0.2];
        state.d = vec![0.05, -0.1];
        let pool = WorkerPool::new(1);
        let mut ws = SolverWorkspace::new(&inst, &settings);
        ws.predict_lambda(&state, &pool).unwrap();
        ws.predict_site_blocks(&inst, &state, &pool, true, true)
            .unwrap();

        let rho = settings.rho;
        let lt = lambda_step(&inst, rho, settings.method, &state).unwrap();
        let mt = mu_step(&inst, rho, &state, true);
        let nt = nu_step(&inst, rho, &state, &mt, true);
        let dt = storage_step(&inst, rho, &state, &mt, &nt);
        let at = a_step(&inst, rho, settings.method, &state, &lt, &mt, &nt, &dt).unwrap();
        let (pt, vt) = dual_step(&inst, rho, &state, &lt, &mt, &nt, &dt, &at);

        assert!(dt.iter().any(|&d| d != 0.0), "storage block should engage");
        assert_eq!(ws.tilde.lambda, lt);
        assert_eq!(ws.tilde.mu, mt);
        assert_eq!(ws.tilde.nu, nt);
        assert_eq!(ws.tilde.d, dt);
        assert_eq!(ws.tilde.a, at);
        assert_eq!(ws.tilde.phi, pt);
        assert_eq!(ws.tilde.varphi, vt);
        // Ramp limit binds: μ̃ stays inside the [μ_prev ± ramp] box.
        for j in 0..2 {
            assert!(ws.tilde.mu[j] <= 0.3 + 1e-12);
        }
    }

    /// Warm-started, cached solves accumulate cache hits across iterations.
    #[test]
    fn repeated_predictions_hit_the_cache() {
        let inst = tiny();
        let settings = AdmgSettings::default();
        let state = AdmgState::zeros(&inst);
        let pool = WorkerPool::new(1);
        let mut ws = SolverWorkspace::new(&inst, &settings);
        for _ in 0..3 {
            ws.predict_lambda(&state, &pool).unwrap();
            ws.predict_site_blocks(&inst, &state, &pool, true, true)
                .unwrap();
        }
        assert!(ws.cache_hits() > 0, "expected KKT cache reuse");
    }

    /// Deterministic scaled instance for the thread-count bit-identity test:
    /// `m` front-ends × `n` datacenters with LCG-jittered data (no RNG
    /// dependency, reproducible across runs and platforms).
    fn scaled(m: usize, n: usize) -> UfcInstance {
        let mut s = 0x9E37_79B9_7F4A_7C15u64;
        let mut unit = move || {
            s = s
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1_442_695_040_888_963_407);
            (s >> 40) as f64 / (1u64 << 24) as f64
        };
        let arrivals: Vec<f64> = (0..m).map(|_| 0.5 + unit()).collect();
        let total: f64 = arrivals.iter().sum();
        let capacities: Vec<f64> = (0..n)
            .map(|_| (1.2 + 0.6 * unit()) * total / n as f64)
            .collect();
        let alpha: Vec<f64> = (0..n).map(|_| 0.2 + 0.1 * unit()).collect();
        let beta: Vec<f64> = (0..n).map(|_| 0.08 + 0.08 * unit()).collect();
        let mu_max: Vec<f64> = (0..n).map(|_| 0.3 + 0.4 * unit()).collect();
        let grid_price: Vec<f64> = (0..n).map(|_| 20.0 + 60.0 * unit()).collect();
        let carbon: Vec<f64> = (0..n).map(|_| 0.2 + 0.5 * unit()).collect();
        let latency: Vec<Vec<f64>> = (0..m)
            .map(|_| (0..n).map(|_| 0.005 + 0.05 * unit()).collect())
            .collect();
        let emission = (0..n)
            .map(|_| EmissionCostFn::linear(25.0).unwrap())
            .collect();
        UfcInstance::new(
            arrivals, capacities, alpha, beta, mu_max, grid_price, 80.0, carbon, latency, 10.0,
            emission, 1.0,
        )
        .unwrap()
    }

    /// The tentpole invariant at scale: with the sharded gather and the
    /// rank-1 fast KKT path engaged, prediction rounds on a 512×16 instance
    /// are bit-identical at 1, 2, 4 and 8 worker threads. `exact` pools
    /// bypass the core-count clamp so the multi-shard spawn path genuinely
    /// runs regardless of the host machine.
    #[test]
    fn scaled_predictions_bit_identical_across_thread_counts() {
        let inst = scaled(512, 16);
        let settings = AdmgSettings::default()
            .with_rank1_kkt(true)
            .with_blocked_factorizations(true);
        let mut reference: Option<AdmgState> = None;
        for threads in [1usize, 2, 4, 8] {
            let pool = WorkerPool::exact(threads);
            let mut ws = SolverWorkspace::new(&inst, &settings);
            let mut state = AdmgState::zeros(&inst);
            for _ in 0..3 {
                ws.predict_lambda(&state, &pool).unwrap();
                ws.predict_site_blocks(&inst, &state, &pool, true, true)
                    .unwrap();
                state.lambda.copy_from_slice(&ws.tilde.lambda);
                state.mu.copy_from_slice(&ws.tilde.mu);
                state.nu.copy_from_slice(&ws.tilde.nu);
                state.a.copy_from_slice(&ws.tilde.a);
                state.phi.copy_from_slice(&ws.tilde.phi);
                state.varphi.copy_from_slice(&ws.tilde.varphi);
            }
            match &reference {
                None => reference = Some(state),
                Some(r) => {
                    assert_eq!(r.lambda, state.lambda, "{threads} threads: λ diverged");
                    assert_eq!(r.mu, state.mu, "{threads} threads: μ diverged");
                    assert_eq!(r.nu, state.nu, "{threads} threads: ν diverged");
                    assert_eq!(r.a, state.a, "{threads} threads: a diverged");
                    assert_eq!(r.phi, state.phi, "{threads} threads: φ diverged");
                    assert_eq!(r.varphi, state.varphi, "{threads} threads: φ_ij diverged");
                }
            }
        }
    }

    /// Infeasible warm candidates fall back to the classic cold start.
    #[test]
    fn warm_start_gate_rejects_infeasible_points() {
        let mut qp = LambdaQp::new(
            &[0.01, 0.02],
            1.0,
            10.0,
            1.0,
            SubproblemMethod::ActiveSet,
            QpOptions::caching_only(true),
        );
        let c = vec![0.1, -0.2];
        // Row sum far from the arrival: gate must reject and use the uniform
        // start, i.e. match the no-warm solve exactly.
        let cold = qp.solve(&c, None).unwrap();
        let gated = qp.solve(&c, Some(&[5.0, 5.0])).unwrap();
        assert_eq!(cold, gated);
        // A feasible warm start is accepted and converges to the same point.
        let warm = qp.solve(&c, Some(&cold.clone())).unwrap();
        for (a, b) in cold.iter().zip(&warm) {
            assert!((a - b).abs() < 1e-9);
        }
    }
}
