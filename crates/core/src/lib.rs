//! **ufc-core** — the paper's primary contribution: distributed N-block
//! ADM-G for UFC maximization in geo-distributed clouds.
//!
//! The UFC maximization problem (paper Eq. (3)) jointly chooses geographic
//! request routing `λ_ij` and fuel-cell generation `μ_j`. After introducing
//! the grid draw `ν_j` and an auxiliary routing copy `a_ij = λ_ij`, it
//! becomes the 4-block separable convex program (13), solved here exactly as
//! §III prescribes — and generalized to a schedule-driven N-block
//! architecture ([`BlockSchedule`]) whose first extension block is a
//! per-datacenter battery with fuel-cell ramp limits (`d`, the temporal
//! coupling layer):
//!
//! 1. **ADMM prediction step** in the schedule's forward order — classically
//!    λ → μ → ν → a → duals, with storage λ → μ → ν → d → a → duals
//!    ([`subproblems`]): a per-front-end simplex QP, closed-form box
//!    clamps, a scalar convex minimization, and a per-datacenter
//!    capped-simplex QP — every step decomposes across front-ends or
//!    datacenters.
//! 2. **Gaussian back substitution correction step** in the backward order
//!    ([`correction`]), using the paper's specialized closed-form recursions
//!    (validated in tests against the generic matrix form of He–Tao–Yuan,
//!    [`generic`]), which guarantees convergence *without strong convexity*
//!    of the emission-cost functions `V_j` — the flat carbon tax case.
//!
//! Both steps are sequenced by exactly one iteration loop: the
//! transport-agnostic driver in [`engine`], whose [`Transport`] trait is
//! implemented by the in-process solver here and by the lockstep and
//! supervised-threaded runtimes in `ufc-distsim`.
//!
//! The crate also provides the paper's three procurement strategies
//! ([`Strategy`]: `Hybrid`, `GridOnly`, `FuelCellOnly`) as block
//! restrictions of the same machinery, and a [`centralized`] reference
//! solver (the fully assembled QP handed to `ufc-opt`) used to verify
//! optimality of the distributed iterates.
//!
//! # Example
//!
//! ```
//! use ufc_core::{AdmgSettings, AdmgSolver, Strategy};
//! use ufc_model::scenario::ScenarioBuilder;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let scenario = ScenarioBuilder::paper_default().hours(1).build()?;
//! let solver = AdmgSolver::new(AdmgSettings::default());
//! let hybrid = solver.solve(&scenario.instances[0], Strategy::Hybrid)?;
//! let grid = solver.solve(&scenario.instances[0], Strategy::GridOnly)?;
//! // Intelligent coordination never does worse than grid-only (paper Fig. 4).
//! assert!(hybrid.breakdown.ufc() >= grid.breakdown.ufc() - 1e-3);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod centralized;
pub mod correction;
pub mod engine;
mod error;
pub mod generic;
mod pool;
pub mod repair;
pub mod right_sizing;
mod settings;
mod solver;
/// ADM-G iterate state and its checkpoint byte codec.
pub mod state;
mod strategy;
pub mod subproblems;
pub mod telemetry;
mod workspace;

pub use engine::{
    BlockDescriptor, BlockKind, BlockOwner, BlockResiduals, BlockSchedule, DriveOutcome,
    HistoryRecorder, IterationEvent, IterationObserver, IterationRecord, Transport,
};
pub use error::CoreError;
pub use pool::WorkerPool;
pub use settings::{AdmgSettings, SubproblemMethod};
pub use solver::{AdmgSolution, AdmgSolver};
pub use state::AdmgState;
pub use strategy::{solve_all_strategies, Strategy, StrategyComparison};
pub use telemetry::{
    FaultCounters, JsonlSink, ObserverChain, Phase, RunTelemetry, SolverCounters,
    TelemetryCollector, TrafficCounters,
};
pub use workspace::{AColQp, LambdaQp, QpOptions};

/// Convenience alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, CoreError>;
