//! The Gaussian back-substitution correction step (paper §III-C, step 2).
//!
//! After the prediction step produces the tilde iterate, ADM-G corrects the
//! blocks `z = (μ, ν, a, φ, φ_ij)` in the *backward* order by solving
//! `G(z^{k+1} − z^k) = ε(z̃^k − z^k)` with the upper-triangular block matrix
//! `G` built from `(K_iᵀK_i)⁻¹K_iᵀK_j`. For the UFC constraint structure the
//! recursion collapses to the paper's closed form, implemented here:
//!
//! ```text
//! φ_j    ← φ_j + ε(φ̃_j − φ_j)
//! φ_ij   ← φ_ij + ε(φ̃_ij − φ_ij)          [paper typo "φ_j" read as φ_ij]
//! a_ij   ← a_ij + ε(ã_ij − a_ij)
//! d_j    ← d_j + ε(d̃_j − d_j) + β_j Σ_i Δa_ij      [storage block only]
//! ν_j    ← ν_j + ε(ν̃_j − ν_j) + β_j Σ_i Δa_ij − Δd_j
//! μ_j    ← μ_j + ε(μ̃_j − μ_j) − Δν_j + β_j Σ_i Δa_ij − Δd_j
//! λ_ij   ← λ̃_ij                           [the first block is not corrected]
//! ```
//!
//! where `Δa = a^{k+1} − a^k`, `Δd = d^{k+1} − d^k`, `Δν = ν^{k+1} − ν^k`.
//! The [`crate::generic`] module rebuilds the same update from the explicit
//! `G` matrix; unit tests verify the two coincide, which pins down both the
//! formulas and the typo fix.
//!
//! The `d` row exists only under the storage extension, and only for
//! datacenters with a battery: every other datacenter's `Δd` is exactly
//! `0.0`, so the `ν`/`μ` recursions — written with a trailing `− Δd_j` —
//! reduce bit-identically to the 4-block closed form.
//!
//! Strategy restrictions: a pinned block (μ under *Grid*, ν under
//! *Fuel cell*) keeps `z̃ = z = 0`, so its Δ is zero and the remaining
//! recursions match the reduced-block ADM-G exactly.

use ufc_model::UfcInstance;

use crate::AdmgState;

/// Applies the closed-form Gaussian back substitution in place, moving
/// `state` from iterate `k` to `k+1` given the prediction `tilde`.
///
/// `active_mu` / `active_nu` pin the corresponding block at zero (strategy
/// restrictions; see module docs).
///
/// # Panics
///
/// Panics if `state` and `tilde` have different shapes.
#[allow(clippy::too_many_arguments)]
pub fn gaussian_back_substitution(
    instance: &UfcInstance,
    state: &mut AdmgState,
    tilde: &AdmgState,
    epsilon: f64,
    active_mu: bool,
    active_nu: bool,
) {
    assert_eq!(state.m, tilde.m, "front-end count mismatch");
    assert_eq!(state.n, tilde.n, "datacenter count mismatch");
    let (m, n) = (state.m, state.n);

    // Duals (y block): plain relaxation.
    for j in 0..n {
        state.phi[j] += epsilon * (tilde.phi[j] - state.phi[j]);
    }
    for k in 0..m * n {
        state.varphi[k] += epsilon * (tilde.varphi[k] - state.varphi[k]);
    }

    // a block: relaxation; record the per-datacenter load delta for the
    // ν and μ recursions.
    let mut delta_a_load = vec![0.0; n];
    #[allow(clippy::needless_range_loop)] // (i, j) index the routing grid
    for i in 0..m {
        for j in 0..n {
            let k = state.idx(i, j);
            let delta = epsilon * (tilde.a[k] - state.a[k]);
            state.a[k] += delta;
            delta_a_load[j] += delta;
        }
    }

    // d (storage) block: sits between a and ν in the backward order.
    // Only battery-backed datacenters take a correction — everyone else's
    // Δd is exactly +0.0, which keeps the downstream ν/μ recursions (and
    // therefore the whole classic schedule) bit-identical.
    let mut delta_d = vec![0.0; n];
    if let Some(sp) = &instance.storage {
        for j in 0..n {
            if sp.active(j) {
                let dd = epsilon * (tilde.d[j] - state.d[j]) + instance.beta[j] * delta_a_load[j];
                state.d[j] += dd;
                delta_d[j] = dd;
            }
        }
    }

    // ν block.
    let mut delta_nu = vec![0.0; n];
    if active_nu {
        for j in 0..n {
            let d = epsilon * (tilde.nu[j] - state.nu[j]) + instance.beta[j] * delta_a_load[j]
                - delta_d[j];
            state.nu[j] += d;
            delta_nu[j] = d;
        }
    }

    // μ block.
    if active_mu {
        for j in 0..n {
            state.mu[j] += epsilon * (tilde.mu[j] - state.mu[j]) - delta_nu[j]
                + instance.beta[j] * delta_a_load[j]
                - delta_d[j];
        }
    }

    // λ block: taken directly from the prediction.
    state.lambda.copy_from_slice(&tilde.lambda);
}

#[cfg(test)]
mod tests {
    use super::*;
    use ufc_model::EmissionCostFn;

    fn tiny() -> UfcInstance {
        UfcInstance::new(
            vec![1.0, 2.0],
            vec![2.0, 2.0],
            vec![0.24, 0.24],
            vec![0.12, 0.12],
            vec![0.48, 0.48],
            vec![30.0, 70.0],
            80.0,
            vec![0.5, 0.3],
            vec![vec![0.01, 0.02], vec![0.02, 0.01]],
            10.0,
            vec![
                EmissionCostFn::linear(25.0).unwrap(),
                EmissionCostFn::linear(25.0).unwrap(),
            ],
            1.0,
        )
        .unwrap()
    }

    fn filled_state(inst: &UfcInstance, offset: f64) -> AdmgState {
        let mut s = AdmgState::zeros(inst);
        for (k, v) in s.lambda.iter_mut().enumerate() {
            *v = 0.1 * k as f64 + offset;
        }
        for (k, v) in s.a.iter_mut().enumerate() {
            *v = 0.05 * k as f64 + 0.5 * offset;
        }
        s.mu = vec![0.1 + offset, 0.2];
        s.nu = vec![0.3, 0.1 + offset];
        s.phi = vec![0.7, -0.4 + offset];
        s.varphi = (0..4).map(|k| -0.2 + 0.1 * k as f64 + offset).collect();
        s
    }

    #[test]
    fn epsilon_one_with_identical_tilde_is_fixed_point() {
        let inst = tiny();
        let mut state = filled_state(&inst, 0.1);
        let tilde = state.clone();
        let before = state.clone();
        gaussian_back_substitution(&inst, &mut state, &tilde, 1.0, true, true);
        // z̃ = z ⇒ Δa = 0 ⇒ nothing moves (λ copies itself).
        assert_eq!(state, before);
    }

    #[test]
    fn duals_and_a_relax_linearly() {
        let inst = tiny();
        let mut state = AdmgState::zeros(&inst);
        let mut tilde = AdmgState::zeros(&inst);
        tilde.phi = vec![1.0, -2.0];
        tilde.varphi = vec![0.4, 0.0, -0.8, 1.2];
        tilde.a = vec![1.0, 0.0, 0.0, 2.0];
        gaussian_back_substitution(&inst, &mut state, &tilde, 0.9, true, true);
        assert!((state.phi[0] - 0.9).abs() < 1e-12);
        assert!((state.phi[1] + 1.8).abs() < 1e-12);
        assert!((state.a[0] - 0.9).abs() < 1e-12);
        assert!((state.a[3] - 1.8).abs() < 1e-12);
    }

    #[test]
    fn nu_correction_includes_beta_coupling() {
        let inst = tiny();
        let mut state = AdmgState::zeros(&inst);
        let mut tilde = AdmgState::zeros(&inst);
        tilde.a = vec![1.0, 0.0, 1.0, 0.0]; // Δa load at DC0 = ε·2
        tilde.nu = vec![0.5, 0.0];
        gaussian_back_substitution(&inst, &mut state, &tilde, 0.9, true, true);
        // ν₀ = 0 + 0.9·0.5 + β·(0.9·2) = 0.45 + 0.12·1.8 = 0.666.
        assert!((state.nu[0] - 0.666).abs() < 1e-12);
        // μ₀ = 0 + 0 − Δν₀ + β·Δload = −0.666 + 0.216 = −0.45.
        assert!((state.mu[0] + 0.45).abs() < 1e-12);
    }

    #[test]
    fn pinned_blocks_stay_zero() {
        let inst = tiny();
        let mut state = AdmgState::zeros(&inst);
        let mut tilde = AdmgState::zeros(&inst);
        tilde.a = vec![1.0, 0.5, 0.2, 0.8];
        tilde.nu = vec![0.4, 0.4];
        tilde.mu = vec![0.3, 0.3];
        // Grid strategy: μ pinned.
        let mut grid = state.clone();
        let mut grid_tilde = tilde.clone();
        grid_tilde.mu = vec![0.0, 0.0];
        gaussian_back_substitution(&inst, &mut grid, &grid_tilde, 0.9, false, true);
        assert_eq!(grid.mu, vec![0.0, 0.0]);
        assert!(grid.nu[0] > 0.0);
        // Fuel-cell strategy: ν pinned.
        let mut fc_tilde = tilde.clone();
        fc_tilde.nu = vec![0.0, 0.0];
        gaussian_back_substitution(&inst, &mut state, &fc_tilde, 0.9, true, false);
        assert_eq!(state.nu, vec![0.0, 0.0]);
        // μ correction with Δν = 0: μ = ε·μ̃ + β·Δload.
        let delta_load0 = 0.9 * (1.0 + 0.2);
        assert!((state.mu[0] - (0.9 * 0.3 + 0.12 * delta_load0)).abs() < 1e-12);
    }

    #[test]
    fn storage_block_enters_the_backward_recursion() {
        let mut params = ufc_model::StorageFleet::new(2.0, 1.0)
            .initial_charge_frac(0.5)
            .initial_params(2);
        params.capacity_mwh[1] = 0.0; // DC1 has no battery
        params.charge_mwh[1] = 0.0;
        let inst = tiny().with_storage(params).unwrap();
        let mut state = AdmgState::zeros(&inst);
        let mut tilde = AdmgState::zeros(&inst);
        tilde.a = vec![1.0, 0.0, 1.0, 0.0]; // Δa load at DC0 = 0.9·2 = 1.8
        tilde.d = vec![0.5, 0.3];
        tilde.nu = vec![0.5, 0.0];
        gaussian_back_substitution(&inst, &mut state, &tilde, 0.9, true, true);
        // Δd₀ = 0.9·0.5 + 0.12·1.8 = 0.666.
        assert!((state.d[0] - 0.666).abs() < 1e-12);
        // DC1 has no battery: its d never moves, despite d̃₁ ≠ 0.
        assert_eq!(state.d[1].to_bits(), 0.0f64.to_bits());
        // Δν₀ = 0.9·0.5 + 0.216 − Δd₀ = 0.666 − 0.666 = 0.
        assert!(state.nu[0].abs() < 1e-12);
        // Δμ₀ = 0 − Δν₀ + 0.216 − Δd₀ = −0.45.
        assert!((state.mu[0] + 0.45).abs() < 1e-12);
    }

    #[test]
    fn lambda_is_taken_from_prediction() {
        let inst = tiny();
        let mut state = filled_state(&inst, 0.0);
        let mut tilde = filled_state(&inst, 1.0);
        tilde.lambda = vec![9.0, 8.0, 7.0, 6.0];
        gaussian_back_substitution(&inst, &mut state, &tilde, 0.8, true, true);
        assert_eq!(state.lambda, vec![9.0, 8.0, 7.0, 6.0]);
    }
}
