//! Final feasibility repair — turning a converged ADM-G iterate into an
//! exactly feasible [`OperatingPoint`].
//!
//! ADM-G converges to the optimum in the limit, but any finite iterate
//! carries residuals of the order of the stopping tolerance (≈ 1e−3 in the
//! natural units). Evaluation and the strategy comparisons want *exactly*
//! feasible points, so the solver finishes with a cheap polish:
//!
//! 1. re-project each front-end's routing row onto its load-balance simplex
//!    (exact `Σ_j λ_ij = A_i`, `λ ≥ 0`),
//! 2. shift any residual capacity overflow from overloaded datacenters to
//!    ones with slack, proportionally across front-ends (a few passes of a
//!    transportation-style fix; total workload is conserved),
//! 3. clamp `μ_j` into `[0, min(μ_j^max, demand_j)]` (or pin `μ_j = demand_j`
//!    for the *Fuel cell* strategy; under the storage extension the box is
//!    further tightened to the ramp window `[μ_prev − r, μ_prev + r]`),
//! 4. clamp the battery net discharge `d_j` into its charge-state box,
//!    capped by `demand_j − μ_j` so the derived grid draw stays
//!    nonnegative, and derive `ν_j` from the power balance
//!    `ν_j = demand_j − μ_j − d_j`.
//!
//! Every step moves the point by at most the ADM-G residual, so the polish
//! does not meaningfully change the objective (verified in tests).

use ufc_model::{ModelError, OperatingPoint, UfcInstance};
use ufc_opt::projection::project_simplex;

use crate::{AdmgState, CoreError, Result};

/// Maximum passes of the capacity-shift loop; each pass strictly reduces the
/// total overflow, and two passes suffice in practice.
const MAX_REPAIR_PASSES: usize = 16;

/// Builds an exactly feasible operating point from a (near-feasible) ADM-G
/// iterate. See the module docs for the three polish steps.
///
/// # Errors
///
/// * [`CoreError::Model`] if total arrivals exceed total capacity (the
///   instance itself is infeasible) or the fuel-cell pin is impossible.
pub fn assemble_point(
    instance: &UfcInstance,
    state: &AdmgState,
    fuel_cell_only: bool,
) -> Result<OperatingPoint> {
    let (m, n) = (state.m, state.n);

    // Effective per-datacenter load ceilings: the capacity, tightened by
    // the queueing extension's utilization ceiling when enabled.
    let eff_cap: Vec<f64> = (0..n)
        .map(|j| {
            let cap = instance.capacities[j];
            match &instance.queueing {
                Some(q) => q.load_cap(cap).min(cap),
                None => cap,
            }
        })
        .collect();

    // Step 1: exact load balance per front-end.
    let mut lambda: Vec<Vec<f64>> = (0..m)
        .map(|i| project_simplex(state.lambda_row(i), instance.arrivals[i]))
        .collect();

    // Step 2: capacity repair.
    for _ in 0..MAX_REPAIR_PASSES {
        let mut loads = vec![0.0; n];
        for row in &lambda {
            for (j, &v) in row.iter().enumerate() {
                loads[j] += v;
            }
        }
        let overflow: Vec<f64> = (0..n).map(|j| (loads[j] - eff_cap[j]).max(0.0)).collect();
        let total_overflow: f64 = overflow.iter().sum();
        if total_overflow <= 1e-12 {
            break;
        }
        let slack: Vec<f64> = (0..n).map(|j| (eff_cap[j] - loads[j]).max(0.0)).collect();
        let total_slack: f64 = slack.iter().sum();
        if total_slack < total_overflow - 1e-9 {
            return Err(CoreError::Model(ModelError::infeasible(format!(
                "cannot repair capacity: overflow {total_overflow} kservers exceeds slack {total_slack}"
            ))));
        }
        // Move each overloaded column's excess out, row-proportionally, and
        // drop it into under-loaded columns slack-proportionally.
        for j in 0..n {
            if overflow[j] <= 0.0 {
                continue;
            }
            let load_j = loads[j];
            for row in lambda.iter_mut() {
                let take = overflow[j] * row[j] / load_j;
                row[j] -= take;
                for (j2, s) in slack.iter().enumerate() {
                    if *s > 0.0 {
                        row[j2] += take * s / total_slack;
                    }
                }
            }
        }
    }

    // Step 3: fuel-cell decision and derived grid draw.
    let mut loads = vec![0.0; n];
    for row in &lambda {
        for (j, &v) in row.iter().enumerate() {
            loads[j] += v;
        }
    }
    let mut mu = vec![0.0; n];
    let mut d = vec![0.0; n];
    for j in 0..n {
        let demand = instance.demand_mw(j, loads[j]);
        if fuel_cell_only {
            if demand > instance.mu_max[j] + 1e-9 {
                return Err(CoreError::Model(ModelError::infeasible(format!(
                    "fuel cells at datacenter {j} cover {} MW but demand is {demand} MW",
                    instance.mu_max[j]
                ))));
            }
            mu[j] = demand.min(instance.mu_max[j]);
        } else {
            let (mu_lo, mu_hi) = match &instance.storage {
                Some(sp) => sp.mu_bounds(j, instance.mu_max[j]),
                None => (0.0, instance.mu_max[j]),
            };
            let hi = mu_hi.min(demand);
            mu[j] = if mu_lo <= hi {
                state.mu[j].clamp(mu_lo, hi)
            } else {
                // The ramp floor exceeds demand: generation cannot drop
                // fast enough, so μ pins at the floor and the battery
                // absorbs the excess below.
                mu_lo
            };
        }
        if let Some(sp) = &instance.storage {
            if sp.active(j) {
                let (d_lo, d_hi) = sp.discharge_bounds(j, instance.slot_hours);
                // Cap discharge so ν = demand − μ − d stays nonnegative;
                // if μ overshoots demand, force charging to absorb it.
                let hi = d_hi.min(demand - mu[j]);
                d[j] = if d_lo <= hi {
                    state.d[j].clamp(d_lo, hi)
                } else {
                    d_lo
                };
            }
        }
    }
    OperatingPoint::from_routing_fuel_and_storage(instance, lambda, mu, d).map_err(CoreError::Model)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ufc_model::EmissionCostFn;

    fn tiny() -> UfcInstance {
        UfcInstance::new(
            vec![1.0, 2.0],
            vec![2.0, 2.0],
            vec![0.24, 0.24],
            vec![0.12, 0.12],
            vec![0.48, 0.48],
            vec![30.0, 70.0],
            80.0,
            vec![0.5, 0.3],
            vec![vec![0.01, 0.02], vec![0.02, 0.01]],
            10.0,
            vec![
                EmissionCostFn::linear(25.0).unwrap(),
                EmissionCostFn::linear(25.0).unwrap(),
            ],
            1.0,
        )
        .unwrap()
    }

    #[test]
    fn repairs_drifted_iterate_to_exact_feasibility() {
        let inst = tiny();
        let mut s = AdmgState::zeros(&inst);
        // Slightly off load balance and a touch of negative mass.
        s.lambda = vec![0.55, 0.46, 1.2, 0.75];
        s.mu = vec![0.2, -0.05];
        let p = assemble_point(&inst, &s, false).unwrap();
        assert!(p.feasibility_residual(&inst) < 1e-9);
        assert!(p.mu.iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn capacity_overflow_is_shifted() {
        let inst = tiny();
        let mut s = AdmgState::zeros(&inst);
        // All workload crammed into DC0: load 3.0 > capacity 2.0.
        s.lambda = vec![1.0, 0.0, 2.0, 0.0];
        let p = assemble_point(&inst, &s, false).unwrap();
        let loads = p.loads();
        assert!(loads[0] <= inst.capacities[0] + 1e-9, "loads {loads:?}");
        // Totals preserved.
        assert!((loads.iter().sum::<f64>() - 3.0).abs() < 1e-9);
        assert!(p.feasibility_residual(&inst) < 1e-9);
    }

    #[test]
    fn fuel_cell_only_pins_mu_to_demand() {
        let inst = tiny();
        let mut s = AdmgState::zeros(&inst);
        s.lambda = vec![0.5, 0.5, 1.0, 1.0];
        let p = assemble_point(&inst, &s, true).unwrap();
        for j in 0..2 {
            assert!((p.nu[j]).abs() < 1e-12, "grid draw should be zero");
            assert!((p.mu[j] - 0.42).abs() < 1e-9);
        }
    }

    #[test]
    fn fuel_cell_only_fails_without_capacity() {
        let mut inst = tiny();
        inst.mu_max = vec![0.1, 0.1]; // cannot cover demand
        let mut s = AdmgState::zeros(&inst);
        s.lambda = vec![0.5, 0.5, 1.0, 1.0];
        assert!(assemble_point(&inst, &s, true).is_err());
    }

    #[test]
    fn storage_polish_clamps_d_and_keeps_exact_balance() {
        let fleet = ufc_model::StorageFleet::new(2.0, 0.5).initial_charge_frac(0.5);
        let inst = tiny().with_storage(fleet.initial_params(2)).unwrap();
        let mut s = AdmgState::zeros(&inst);
        s.lambda = vec![0.5, 0.5, 1.0, 1.0]; // demand 0.42 per DC
        s.mu = vec![0.2, 0.2];
        s.d = vec![5.0, -5.0]; // far outside the charge-state box
        let p = assemble_point(&inst, &s, false).unwrap();
        assert!(p.feasibility_residual(&inst) < 1e-9);
        // Discharge capped by demand − μ (0.22), charging by the rate (0.5).
        assert!((p.d[0] - 0.22).abs() < 1e-12);
        assert!((p.d[1] + 0.5).abs() < 1e-12);
        assert!((p.nu[1] - 0.72).abs() < 1e-12);
    }

    #[test]
    fn mu_is_clamped_to_demand_and_capacity() {
        let inst = tiny();
        let mut s = AdmgState::zeros(&inst);
        s.lambda = vec![0.5, 0.5, 1.0, 1.0]; // demand 0.42 per DC
        s.mu = vec![5.0, 0.3];
        let p = assemble_point(&inst, &s, false).unwrap();
        assert!((p.mu[0] - 0.42).abs() < 1e-9); // clamped to demand < mu_max
        assert!((p.mu[1] - 0.3).abs() < 1e-12); // untouched
        assert!(p.nu[1] > 0.0);
    }
}
