//! Scoped worker pool for the per-block ADM-G sub-problem phases.
//!
//! The paper's reformulation (13) makes the λ-step separable per front-end
//! and the μ/ν/a-steps separable per datacenter, so each prediction phase is
//! an embarrassingly parallel map over independent blocks. [`WorkerPool`]
//! fans such a map across scoped OS threads (no `'static` bounds, no
//! channels, no external dependencies) with a **sharded gather**: every
//! worker accumulates its contiguous chunk's results in its own shard
//! vector, and the shards are concatenated in spawn order after the join.
//! There is no shared result buffer, no coordinator channel, and no
//! per-item synchronization — at scaled instance sizes (thousands of
//! blocks per phase) the gather cost is one `memcpy` per shard instead of
//! one slot write + hole check per block. Because shard order equals chunk
//! order equals input order, results come back in input order no matter how
//! the OS schedules the workers, which is what makes parallel ADM-G runs
//! bit-identical to sequential ones. The calling thread processes the first
//! shard itself while the spawned workers chew on theirs, so a width-`k`
//! fan-out spawns only `k − 1` threads.

use std::sync::atomic::{AtomicU64, Ordering};

/// A fixed-width scoped-thread pool.
///
/// The pool itself is stateless apart from telemetry counters (threads are
/// spawned per call and joined before returning); what it provides is the
/// deterministic chunked fan-out used by [`crate::AdmgSolver`] and the
/// distributed lockstep engine.
#[derive(Debug)]
pub struct WorkerPool {
    threads: usize,
    /// Telemetry: items dispatched through [`WorkerPool::map_mut`].
    tasks: AtomicU64,
    /// Telemetry: [`WorkerPool::map_mut`] fan-outs run.
    maps: AtomicU64,
}

impl Clone for WorkerPool {
    /// Clones the pool *width*; the telemetry counters start at the values
    /// observed at clone time (a snapshot, since counters are per-pool).
    fn clone(&self) -> Self {
        WorkerPool {
            threads: self.threads,
            tasks: AtomicU64::new(self.tasks.load(Ordering::Relaxed)),
            maps: AtomicU64::new(self.maps.load(Ordering::Relaxed)),
        }
    }
}

impl WorkerPool {
    /// Creates a pool with the given width. `0` means "use all available
    /// cores" (via [`std::thread::available_parallelism`]); `1` runs every
    /// map inline on the calling thread. Widths beyond the machine's
    /// available parallelism are clamped down to it: the sub-problem maps
    /// are CPU-bound, so oversubscribing cores only adds spawn/join
    /// overhead, and because parallel runs are bit-identical to sequential
    /// ones the clamp can never change a result.
    #[must_use]
    pub fn new(num_threads: usize) -> Self {
        let cores = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        let threads = if num_threads == 0 {
            cores
        } else {
            num_threads.min(cores)
        };
        WorkerPool::with_width(threads)
    }

    fn with_width(threads: usize) -> Self {
        WorkerPool {
            threads,
            tasks: AtomicU64::new(0),
            maps: AtomicU64::new(0),
        }
    }

    /// A pool of exactly `threads` workers, skipping the core-count clamp.
    /// Test-only: lets the chunked spawn path run even on small machines
    /// (crate-visible so the workspace/engine bit-identity tests can drive
    /// real multi-thread gathers regardless of the host's core count).
    #[cfg(test)]
    pub(crate) fn exact(threads: usize) -> Self {
        WorkerPool::with_width(threads)
    }

    /// Effective worker count.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Telemetry: items dispatched through [`WorkerPool::map_mut`] since
    /// construction.
    #[must_use]
    pub fn tasks_dispatched(&self) -> u64 {
        self.tasks.load(Ordering::Relaxed)
    }

    /// Telemetry: [`WorkerPool::map_mut`] fan-outs run since construction.
    #[must_use]
    pub fn maps_run(&self) -> u64 {
        self.maps.load(Ordering::Relaxed)
    }

    /// Applies `f` to every item (receiving the item index and a mutable
    /// borrow), splitting the index space across up to `threads()` scoped
    /// threads. Each worker gathers its chunk's results into its own shard
    /// vector (no shared result buffer); the shards are concatenated in
    /// chunk order after the join, so results are returned in input order
    /// regardless of scheduling, and each invocation of `f` observes
    /// exactly the same inputs as a sequential run — parallel output is
    /// bit-identical to `items.iter_mut().enumerate().map(...)`.
    ///
    /// # Panics
    ///
    /// Panics if a worker panics.
    pub fn map_mut<T, R, F>(&self, items: &mut [T], f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(usize, &mut T) -> R + Sync,
    {
        self.maps.fetch_add(1, Ordering::Relaxed);
        self.tasks.fetch_add(items.len() as u64, Ordering::Relaxed);
        let threads = self.threads.min(items.len()).max(1);
        if threads <= 1 {
            return items.iter_mut().enumerate().map(|(i, t)| f(i, t)).collect();
        }
        let chunk = items.len().div_ceil(threads);
        let mut results: Vec<R> = Vec::with_capacity(items.len());
        std::thread::scope(|scope| {
            // Carve one disjoint contiguous chunk per worker. The first
            // chunk stays on the calling thread; the rest are spawned
            // before it runs so all shards execute concurrently.
            let (first, mut rest_items) = items.split_at_mut(chunk);
            let mut start = first.len();
            let mut handles = Vec::new();
            while !rest_items.is_empty() {
                let take = chunk.min(rest_items.len());
                let (head, tail) = rest_items.split_at_mut(take);
                rest_items = tail;
                let begin = start;
                start += take;
                let fref = &f;
                handles.push(scope.spawn(move || {
                    let mut shard = Vec::with_capacity(head.len());
                    for (off, item) in head.iter_mut().enumerate() {
                        shard.push(fref(begin + off, item));
                    }
                    shard
                }));
            }
            // Shard 0, inline. Index origin 0 ⇒ same arguments as the
            // sequential path.
            for (off, item) in first.iter_mut().enumerate() {
                results.push(f(off, item));
            }
            // Sharded gather: join in spawn order and splice each shard —
            // spawn order is chunk order is input order.
            for h in handles {
                results.append(&mut h.join().expect("worker thread panicked"));
            }
        });
        results
    }
}

impl Default for WorkerPool {
    /// A single-threaded (inline) pool.
    fn default() -> Self {
        WorkerPool::new(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order_and_mutates_in_place() {
        let mut items: Vec<usize> = (0..37).collect();
        let out = WorkerPool::exact(4).map_mut(&mut items, |i, x| {
            assert_eq!(i, *x);
            *x += 100;
            *x * 2
        });
        assert_eq!(out, (0..37).map(|x| (x + 100) * 2).collect::<Vec<_>>());
        assert_eq!(items, (100..137).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_matches_sequential_bitwise() {
        let work = |i: usize, x: &mut f64| {
            // Non-trivial float arithmetic: parallel must match bit-for-bit.
            *x = (*x + i as f64).sin() * 1e6;
            (*x).to_bits()
        };
        for threads in [2, 4, 8] {
            let mut seq: Vec<f64> = (0..100).map(|i| i as f64 * 0.37).collect();
            let mut par = seq.clone();
            let a = WorkerPool::new(1).map_mut(&mut seq, work);
            let b = WorkerPool::exact(threads).map_mut(&mut par, work);
            assert_eq!(a, b, "{threads} threads diverged");
            assert_eq!(seq, par);
        }
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let mut empty: Vec<i32> = vec![];
        let out: Vec<i32> = WorkerPool::exact(4).map_mut(&mut empty, |_, &mut x| x);
        assert!(out.is_empty());
        let mut one = vec![7];
        let out = WorkerPool::exact(16).map_mut(&mut one, |_, x| *x + 1);
        assert_eq!(out, vec![8]);
    }

    #[test]
    fn counts_maps_and_tasks() {
        let pool = WorkerPool::exact(2);
        let mut items = vec![0u32; 5];
        pool.map_mut(&mut items, |_, x| *x += 1);
        pool.map_mut(&mut items, |_, x| *x += 1);
        assert_eq!(pool.maps_run(), 2);
        assert_eq!(pool.tasks_dispatched(), 10);
        assert_eq!(pool.clone().tasks_dispatched(), 10, "clone snapshots");
    }

    #[test]
    fn width_resolution() {
        let cores = WorkerPool::new(0).threads();
        assert!(cores >= 1);
        // Explicit widths are honored up to the core count, then clamped.
        assert_eq!(WorkerPool::new(3).threads(), 3.min(cores));
        assert_eq!(WorkerPool::new(1).threads(), 1);
        assert_eq!(WorkerPool::default().threads(), 1);
    }
}
