use ufc_model::{evaluate, OperatingPoint, UfcBreakdown, UfcInstance};

use crate::engine::{
    drive, HistoryRecorder, InProcessTransport, IterationObserver, IterationRecord,
};
use crate::pool::WorkerPool;
use crate::repair::assemble_point;
use crate::strategy::Strategy;
use crate::telemetry::{ObserverChain, RunTelemetry, TelemetryCollector};
use crate::workspace::SolverWorkspace;
use crate::{AdmgSettings, AdmgState, CoreError, Result};

/// Output of one ADM-G run.
#[derive(Debug, Clone)]
pub struct AdmgSolution {
    /// Exactly feasible operating point (post-polish; see `repair`).
    pub point: OperatingPoint,
    /// UFC breakdown at [`AdmgSolution::point`].
    pub breakdown: UfcBreakdown,
    /// Iterations performed.
    pub iterations: usize,
    /// Whether all three residual tests passed before the iteration cap.
    pub converged: bool,
    /// Residual/objective trajectory, one record per iteration.
    pub history: Vec<IterationRecord>,
    /// Raw final iterate (useful for warm starts and for the distributed
    /// runtime's equivalence tests).
    pub state: AdmgState,
    /// Run telemetry (phase timings plus solver counters), present iff
    /// [`AdmgSettings::telemetry`] was enabled. Strictly observational: the
    /// iterate stream is bit-identical whether or not this is collected.
    pub telemetry: Option<RunTelemetry>,
}

/// The distributed 4-block ADM-G solver (paper §III-C).
///
/// Each [`AdmgSolver::solve`] call runs the prediction (ADMM) step in the
/// forward order λ → μ → ν → a → duals and the Gaussian back-substitution
/// correction in the backward order, until the link, balance and dual
/// residuals all pass, then polishes the iterate into an exactly feasible
/// [`OperatingPoint`].
///
/// # Example
///
/// ```
/// use ufc_core::{AdmgSettings, AdmgSolver, Strategy};
/// use ufc_model::scenario::ScenarioBuilder;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let scenario = ScenarioBuilder::paper_default().hours(1).build()?;
/// let sol = AdmgSolver::new(AdmgSettings::default())
///     .solve(&scenario.instances[0], Strategy::Hybrid)?;
/// assert!(sol.converged);
/// assert!(sol.point.feasibility_residual(&scenario.instances[0]) < 1e-6);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy)]
pub struct AdmgSolver {
    settings: AdmgSettings,
}

impl AdmgSolver {
    /// Creates a solver with the given hyper-parameters.
    ///
    /// # Panics
    ///
    /// Panics if the settings are invalid (see [`AdmgSettings::validate`]).
    #[must_use]
    pub fn new(settings: AdmgSettings) -> Self {
        settings.validate();
        AdmgSolver { settings }
    }

    /// The solver's hyper-parameters.
    #[must_use]
    pub fn settings(&self) -> &AdmgSettings {
        &self.settings
    }

    /// Runs ADM-G on `instance` under the given strategy restriction.
    ///
    /// Returns `Ok` with `converged = false` when the iteration cap is hit —
    /// the point is still polished and evaluable; use
    /// [`AdmgSolver::solve_strict`] to treat that as an error.
    ///
    /// # Errors
    ///
    /// * [`CoreError::Unsupported`] if `Strategy::FuelCellOnly` is requested
    ///   but the fuel cells cannot cover peak demand.
    /// * [`CoreError::Subproblem`] if an inner QP fails.
    /// * [`CoreError::Model`] if the final point cannot be made feasible.
    pub fn solve(&self, instance: &UfcInstance, strategy: Strategy) -> Result<AdmgSolution> {
        self.solve_warm(instance, strategy, AdmgState::zeros(instance))
    }

    /// Runs ADM-G from a caller-supplied starting iterate — typically the
    /// final [`AdmgSolution::state`] of the previous time slot in a
    /// receding-horizon run, where consecutive hours differ only slightly
    /// and warm starts cut the iteration count substantially.
    ///
    /// # Errors
    ///
    /// As for [`AdmgSolver::solve`], plus [`CoreError::Model`] when the
    /// starting state's shape disagrees with the instance.
    pub fn solve_warm(
        &self,
        instance: &UfcInstance,
        strategy: Strategy,
        start: AdmgState,
    ) -> Result<AdmgSolution> {
        // Persistent per-block kernels: sub-problem Hessians and constraints
        // are constant across iterations, so each block's KKT factorizations
        // are cached and its buffers reused for the whole run. The worker
        // pool fans the per-front-end and per-datacenter solves; results are
        // gathered in block order, so every thread count (and the sequential
        // path) produces bit-identical iterates.
        let pool = WorkerPool::new(self.settings.num_threads);
        let mut ws = SolverWorkspace::new(instance, &self.settings);
        self.solve_with(instance, strategy, start, &mut ws, &pool, &mut ())
    }

    /// Runs ADM-G while streaming per-iteration (and, if the observer asks
    /// for them, per-phase) events to a caller-supplied observer — e.g. a
    /// [`crate::telemetry::JsonlSink`] writing a trace. The observer rides
    /// alongside the solver's own history recorder and (when
    /// [`AdmgSettings::telemetry`] is on) telemetry collector; it never
    /// affects the iterate stream.
    ///
    /// # Errors
    ///
    /// As for [`AdmgSolver::solve`].
    pub fn solve_observed(
        &self,
        instance: &UfcInstance,
        strategy: Strategy,
        observer: &mut dyn IterationObserver,
    ) -> Result<AdmgSolution> {
        let pool = WorkerPool::new(self.settings.num_threads);
        let mut ws = SolverWorkspace::new(instance, &self.settings);
        self.solve_with(
            instance,
            strategy,
            AdmgState::zeros(instance),
            &mut ws,
            &pool,
            observer,
        )
    }

    /// Runs one ADM-G solve over caller-provided workspace and pool — the
    /// shared backend of [`AdmgSolver::solve_warm`] and
    /// [`crate::solve_all_strategies`] (which reuses one workspace across
    /// the three strategy restrictions).
    ///
    /// The workspace must have been built for the same instance and
    /// settings; strategy restrictions only gate the scalar μ/ν steps, so a
    /// reused workspace (and its KKT caches) yields bit-identical results to
    /// a fresh one.
    ///
    /// `extra` is an additional observer chained after the history recorder
    /// (pass `&mut ()` for none). When [`AdmgSettings::telemetry`] is on, a
    /// [`TelemetryCollector`] is chained in as well and its snapshot —
    /// together with the workspace's solver counters and the pool's fan-out
    /// counters, both cumulative since construction — lands in
    /// [`AdmgSolution::telemetry`].
    pub(crate) fn solve_with(
        &self,
        instance: &UfcInstance,
        strategy: Strategy,
        start: AdmgState,
        ws: &mut SolverWorkspace,
        pool: &WorkerPool,
        extra: &mut dyn IterationObserver,
    ) -> Result<AdmgSolution> {
        let (active_mu, active_nu) = strategy.block_activation(instance)?;
        if start.m != instance.m_frontends() || start.n != instance.n_datacenters() {
            return Err(CoreError::Model(ufc_model::ModelError::dim(format!(
                "warm-start state is {}x{} but instance is {}x{}",
                start.m,
                start.n,
                instance.m_frontends(),
                instance.n_datacenters()
            ))));
        }

        let s = &self.settings;
        let tolerances = s.scaled_tolerances(instance);
        let mut recorder = HistoryRecorder::default();
        let mut collector = s.telemetry.then(TelemetryCollector::default);
        let mut transport =
            InProcessTransport::new(instance, s, start, ws, pool, active_mu, active_nu);
        let outcome = match collector.as_mut() {
            Some(c) => {
                let mut chain = ObserverChain(&mut recorder, ObserverChain(&mut *c, extra));
                drive(&mut transport, s, tolerances, &mut chain)?
            }
            None => {
                let mut chain = ObserverChain(&mut recorder, extra);
                drive(&mut transport, s, tolerances, &mut chain)?
            }
        };
        let state = transport.into_state();
        let telemetry = collector.map(|c| {
            let mut t = c.into_telemetry();
            t.solver = ws.counters();
            t.solver.pool_tasks = pool.tasks_dispatched();
            t.solver.pool_maps = pool.maps_run();
            t
        });

        let point = assemble_point(instance, &state, !active_nu)?;
        let breakdown = evaluate(instance, &point)?;
        Ok(AdmgSolution {
            point,
            breakdown,
            iterations: outcome.iterations,
            converged: outcome.converged,
            history: recorder.into_history(),
            state,
            telemetry,
        })
    }

    /// Like [`AdmgSolver::solve`] but fails with [`CoreError::NotConverged`]
    /// when the iteration cap is hit.
    ///
    /// # Errors
    ///
    /// Everything from [`AdmgSolver::solve`], plus
    /// [`CoreError::NotConverged`].
    pub fn solve_strict(&self, instance: &UfcInstance, strategy: Strategy) -> Result<AdmgSolution> {
        let sol = self.solve(instance, strategy)?;
        if !sol.converged {
            let last = sol.history.last().expect("at least one iteration ran");
            return Err(CoreError::NotConverged {
                iterations: sol.iterations,
                primal_residual: last.link_residual.max(last.balance_residual),
                dual_residual: last.dual_residual,
            });
        }
        Ok(sol)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ufc_model::EmissionCostFn;

    fn tiny() -> UfcInstance {
        UfcInstance::new(
            vec![1.0, 2.0],
            vec![2.0, 2.0],
            vec![0.24, 0.24],
            vec![0.12, 0.12],
            vec![0.48, 0.48],
            vec![30.0, 70.0],
            80.0,
            vec![0.5, 0.3],
            vec![vec![0.01, 0.02], vec![0.02, 0.01]],
            10.0,
            vec![
                EmissionCostFn::linear(25.0).unwrap(),
                EmissionCostFn::linear(25.0).unwrap(),
            ],
            1.0,
        )
        .unwrap()
    }

    #[test]
    fn hybrid_converges_on_tiny_instance() {
        let sol = AdmgSolver::new(AdmgSettings::default())
            .solve(&tiny(), Strategy::Hybrid)
            .unwrap();
        assert!(sol.converged, "residuals: {:?}", sol.history.last());
        assert!(sol.point.feasibility_residual(&tiny()) < 1e-8);
        assert!(sol.iterations < 2000);
    }

    #[test]
    fn residuals_decrease_overall() {
        let sol = AdmgSolver::new(AdmgSettings::default())
            .solve(&tiny(), Strategy::Hybrid)
            .unwrap();
        let first = &sol.history[0];
        let last = sol.history.last().unwrap();
        assert!(last.link_residual < first.link_residual);
        assert!(last.balance_residual <= first.balance_residual);
    }

    #[test]
    fn grid_only_never_uses_fuel_cells() {
        let sol = AdmgSolver::new(AdmgSettings::default())
            .solve(&tiny(), Strategy::GridOnly)
            .unwrap();
        assert!(sol.point.mu.iter().all(|&v| v == 0.0));
        assert_eq!(sol.breakdown.fuel_cell_mwh, 0.0);
    }

    #[test]
    fn fuel_cell_only_never_uses_grid() {
        let sol = AdmgSolver::new(AdmgSettings::default())
            .solve(&tiny(), Strategy::FuelCellOnly)
            .unwrap();
        assert!(sol.point.nu.iter().all(|&v| v.abs() < 1e-9));
        assert!(sol.breakdown.carbon_tons.abs() < 1e-12);
        assert!((sol.breakdown.fuel_cell_utilization - 1.0).abs() < 1e-9);
    }

    #[test]
    fn fuel_cell_only_rejected_without_capacity() {
        let mut inst = tiny();
        inst.mu_max = vec![0.1, 0.1];
        let err = AdmgSolver::new(AdmgSettings::default())
            .solve(&inst, Strategy::FuelCellOnly)
            .unwrap_err();
        assert!(matches!(err, CoreError::Unsupported { .. }));
    }

    #[test]
    fn hybrid_at_least_as_good_as_restrictions() {
        let inst = tiny();
        let solver = AdmgSolver::new(AdmgSettings::default());
        let hybrid = solver.solve(&inst, Strategy::Hybrid).unwrap();
        let grid = solver.solve(&inst, Strategy::GridOnly).unwrap();
        let fc = solver.solve(&inst, Strategy::FuelCellOnly).unwrap();
        // The hybrid feasible set contains both restrictions.
        let tol = 1e-2;
        assert!(
            hybrid.breakdown.ufc() >= grid.breakdown.ufc() - tol,
            "hybrid {} < grid {}",
            hybrid.breakdown.ufc(),
            grid.breakdown.ufc()
        );
        assert!(
            hybrid.breakdown.ufc() >= fc.breakdown.ufc() - tol,
            "hybrid {} < fuel-cell {}",
            hybrid.breakdown.ufc(),
            fc.breakdown.ufc()
        );
    }

    #[test]
    fn solve_strict_propagates_non_convergence() {
        let settings = AdmgSettings {
            max_iterations: 2,
            eps_link: 1e-12,
            eps_balance: 1e-12,
            eps_dual: 1e-12,
            ..AdmgSettings::default()
        };
        let err = AdmgSolver::new(settings)
            .solve_strict(&tiny(), Strategy::Hybrid)
            .unwrap_err();
        assert!(matches!(err, CoreError::NotConverged { iterations: 2, .. }));
    }

    #[test]
    fn warm_start_cuts_iterations() {
        let inst = tiny();
        let solver = AdmgSolver::new(AdmgSettings::default());
        let cold = solver.solve(&inst, Strategy::Hybrid).unwrap();
        // Restart from the converged state: should terminate almost
        // immediately at the same answer.
        let warm = solver
            .solve_warm(&inst, Strategy::Hybrid, cold.state.clone())
            .unwrap();
        assert!(
            warm.iterations <= cold.iterations / 4 + 2,
            "warm {} vs cold {}",
            warm.iterations,
            cold.iterations
        );
        let scale = cold.breakdown.ufc().abs().max(1.0);
        assert!(
            (warm.breakdown.ufc() - cold.breakdown.ufc()).abs() < 1e-4 * scale,
            "warm {} vs cold {}",
            warm.breakdown.ufc(),
            cold.breakdown.ufc()
        );
    }

    #[test]
    fn warm_start_rejects_wrong_shape() {
        let inst = tiny();
        let solver = AdmgSolver::new(AdmgSettings::default());
        let mut bad = AdmgState::zeros(&inst);
        bad.m = 5; // corrupt the shape
        bad.lambda = vec![0.0; 10];
        assert!(matches!(
            solver.solve_warm(&inst, Strategy::Hybrid, bad),
            Err(CoreError::Model(_))
        ));
    }

    #[test]
    fn history_is_recorded_per_iteration() {
        let sol = AdmgSolver::new(AdmgSettings::default())
            .solve(&tiny(), Strategy::Hybrid)
            .unwrap();
        assert_eq!(sol.history.len(), sol.iterations);
        assert_eq!(sol.history[0].iteration, 0);
    }
}
