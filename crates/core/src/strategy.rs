use ufc_model::{ufc_improvement, UfcInstance};

use crate::pool::WorkerPool;
use crate::workspace::SolverWorkspace;
use crate::{AdmgSettings, AdmgSolution, AdmgSolver, AdmgState, CoreError, Result};

/// The paper's three procurement strategies (§IV-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Strategy {
    /// Intelligent coordination of grid power and fuel cells — the full
    /// problem (12).
    Hybrid,
    /// Grid power only: problem (12) with `μ_j = 0 ∀j`.
    GridOnly,
    /// Fuel-cell generation only: problem (12) with `ν_j = 0 ∀j`.
    FuelCellOnly,
}

impl Strategy {
    /// All strategies, in the paper's reporting order.
    pub const ALL: [Strategy; 3] = [Strategy::Hybrid, Strategy::GridOnly, Strategy::FuelCellOnly];

    /// Display label matching the paper's figures.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            Strategy::Hybrid => "Hybrid",
            Strategy::GridOnly => "Grid",
            Strategy::FuelCellOnly => "Fuel cell",
        }
    }

    /// The `(active_mu, active_nu)` block gating this strategy imposes on
    /// problem (12): `GridOnly` freezes the fuel-cell block μ at zero,
    /// `FuelCellOnly` freezes the grid block ν. Shared by every execution
    /// engine (in-process solver and both distributed runtimes).
    ///
    /// # Errors
    ///
    /// [`CoreError::Unsupported`] if `FuelCellOnly` is requested but the
    /// instance's fuel cells cannot cover peak demand (the restricted
    /// problem would be infeasible).
    pub fn block_activation(self, instance: &UfcInstance) -> Result<(bool, bool)> {
        let active_mu = self != Strategy::GridOnly;
        let active_nu = self != Strategy::FuelCellOnly;
        if !active_nu && !instance.fuel_cells_cover_peak() {
            return Err(CoreError::Unsupported {
                context: "FuelCellOnly requires fuel-cell capacity covering peak demand".to_owned(),
            });
        }
        Ok((active_mu, active_nu))
    }
}

/// The three strategies solved on one instance, with the paper's pairwise
/// UFC improvements.
#[derive(Debug, Clone)]
pub struct StrategyComparison {
    /// The *Hybrid* solution.
    pub hybrid: AdmgSolution,
    /// The *Grid* solution.
    pub grid: AdmgSolution,
    /// The *Fuel cell* solution.
    pub fuel_cell: AdmgSolution,
}

impl StrategyComparison {
    /// `I_hg`: UFC improvement of *Hybrid* over *Grid* (fraction).
    #[must_use]
    pub fn i_hg(&self) -> f64 {
        ufc_improvement(self.hybrid.breakdown.ufc(), self.grid.breakdown.ufc())
    }

    /// `I_hf`: UFC improvement of *Hybrid* over *Fuel cell* (fraction).
    #[must_use]
    pub fn i_hf(&self) -> f64 {
        ufc_improvement(self.hybrid.breakdown.ufc(), self.fuel_cell.breakdown.ufc())
    }

    /// `I_fg`: UFC improvement of *Fuel cell* over *Grid* (fraction).
    #[must_use]
    pub fn i_fg(&self) -> f64 {
        ufc_improvement(self.fuel_cell.breakdown.ufc(), self.grid.breakdown.ufc())
    }
}

/// Solves all three strategies on one instance with the same settings.
///
/// One `SolverWorkspace` (block kernels, KKT caches, iterate buffers) and
/// one [`WorkerPool`] are shared across the three solves: the strategy flags
/// only gate the scalar μ/ν steps and every workspace buffer is fully
/// overwritten per prediction, so the shared-workspace results are
/// bit-identical to three independent solves while the caches warm only
/// once.
///
/// # Errors
///
/// Propagates the first solver failure (see [`AdmgSolver::solve`]).
pub fn solve_all_strategies(
    instance: &UfcInstance,
    settings: AdmgSettings,
) -> Result<StrategyComparison> {
    let solver = AdmgSolver::new(settings);
    let pool = WorkerPool::new(solver.settings().num_threads);
    let mut ws = SolverWorkspace::new(instance, solver.settings());
    let mut run = |strategy| {
        solver.solve_with(
            instance,
            strategy,
            AdmgState::zeros(instance),
            &mut ws,
            &pool,
            &mut (),
        )
    };
    Ok(StrategyComparison {
        hybrid: run(Strategy::Hybrid)?,
        grid: run(Strategy::GridOnly)?,
        fuel_cell: run(Strategy::FuelCellOnly)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ufc_model::EmissionCostFn;

    fn tiny() -> UfcInstance {
        UfcInstance::new(
            vec![1.0, 2.0],
            vec![2.0, 2.0],
            vec![0.24, 0.24],
            vec![0.12, 0.12],
            vec![0.48, 0.48],
            vec![30.0, 70.0],
            80.0,
            vec![0.5, 0.3],
            vec![vec![0.01, 0.02], vec![0.02, 0.01]],
            10.0,
            vec![
                EmissionCostFn::linear(25.0).unwrap(),
                EmissionCostFn::linear(25.0).unwrap(),
            ],
            1.0,
        )
        .unwrap()
    }

    #[test]
    fn labels() {
        assert_eq!(Strategy::Hybrid.label(), "Hybrid");
        assert_eq!(Strategy::GridOnly.label(), "Grid");
        assert_eq!(Strategy::FuelCellOnly.label(), "Fuel cell");
        assert_eq!(Strategy::ALL.len(), 3);
    }

    /// Sharing one workspace (and its KKT caches) across the three strategy
    /// solves must be bit-identical to three independent solves.
    #[test]
    fn shared_workspace_matches_independent_solves_bitwise() {
        let inst = tiny();
        let settings = AdmgSettings::default();
        let shared = solve_all_strategies(&inst, settings).unwrap();
        let solver = AdmgSolver::new(settings);
        for (strategy, got) in [
            (Strategy::Hybrid, &shared.hybrid),
            (Strategy::GridOnly, &shared.grid),
            (Strategy::FuelCellOnly, &shared.fuel_cell),
        ] {
            let fresh = solver.solve(&inst, strategy).unwrap();
            assert_eq!(got.iterations, fresh.iterations, "{strategy:?}");
            assert_eq!(got.state.lambda, fresh.state.lambda, "{strategy:?}");
            assert_eq!(got.state.mu, fresh.state.mu, "{strategy:?}");
            assert_eq!(got.state.nu, fresh.state.nu, "{strategy:?}");
            assert_eq!(got.state.a, fresh.state.a, "{strategy:?}");
            assert_eq!(
                got.breakdown.ufc().to_bits(),
                fresh.breakdown.ufc().to_bits(),
                "{strategy:?}"
            );
        }
    }

    #[test]
    fn comparison_improvements_are_consistent() {
        let cmp = solve_all_strategies(&tiny(), AdmgSettings::default()).unwrap();
        // Hybrid dominates both restrictions.
        assert!(cmp.i_hg() >= -1e-3, "i_hg = {}", cmp.i_hg());
        assert!(cmp.i_hf() >= -1e-3, "i_hf = {}", cmp.i_hf());
        // Consistency: all three UFC values are finite and ordered as the
        // improvements claim.
        let (h, g, f) = (
            cmp.hybrid.breakdown.ufc(),
            cmp.grid.breakdown.ufc(),
            cmp.fuel_cell.breakdown.ufc(),
        );
        assert!(h.is_finite() && g.is_finite() && f.is_finite());
        if cmp.i_fg() > 0.0 {
            assert!(f > g);
        } else {
            assert!(f <= g + 1e-12);
        }
    }
}
