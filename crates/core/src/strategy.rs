use ufc_model::{ufc_improvement, UfcInstance};

use crate::{AdmgSettings, AdmgSolution, AdmgSolver, Result};

/// The paper's three procurement strategies (§IV-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Strategy {
    /// Intelligent coordination of grid power and fuel cells — the full
    /// problem (12).
    Hybrid,
    /// Grid power only: problem (12) with `μ_j = 0 ∀j`.
    GridOnly,
    /// Fuel-cell generation only: problem (12) with `ν_j = 0 ∀j`.
    FuelCellOnly,
}

impl Strategy {
    /// All strategies, in the paper's reporting order.
    pub const ALL: [Strategy; 3] = [Strategy::Hybrid, Strategy::GridOnly, Strategy::FuelCellOnly];

    /// Display label matching the paper's figures.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            Strategy::Hybrid => "Hybrid",
            Strategy::GridOnly => "Grid",
            Strategy::FuelCellOnly => "Fuel cell",
        }
    }
}

/// The three strategies solved on one instance, with the paper's pairwise
/// UFC improvements.
#[derive(Debug, Clone)]
pub struct StrategyComparison {
    /// The *Hybrid* solution.
    pub hybrid: AdmgSolution,
    /// The *Grid* solution.
    pub grid: AdmgSolution,
    /// The *Fuel cell* solution.
    pub fuel_cell: AdmgSolution,
}

impl StrategyComparison {
    /// `I_hg`: UFC improvement of *Hybrid* over *Grid* (fraction).
    #[must_use]
    pub fn i_hg(&self) -> f64 {
        ufc_improvement(self.hybrid.breakdown.ufc(), self.grid.breakdown.ufc())
    }

    /// `I_hf`: UFC improvement of *Hybrid* over *Fuel cell* (fraction).
    #[must_use]
    pub fn i_hf(&self) -> f64 {
        ufc_improvement(self.hybrid.breakdown.ufc(), self.fuel_cell.breakdown.ufc())
    }

    /// `I_fg`: UFC improvement of *Fuel cell* over *Grid* (fraction).
    #[must_use]
    pub fn i_fg(&self) -> f64 {
        ufc_improvement(self.fuel_cell.breakdown.ufc(), self.grid.breakdown.ufc())
    }
}

/// Solves all three strategies on one instance with the same settings.
///
/// # Errors
///
/// Propagates the first solver failure (see [`AdmgSolver::solve`]).
pub fn solve_all_strategies(
    instance: &UfcInstance,
    settings: AdmgSettings,
) -> Result<StrategyComparison> {
    let solver = AdmgSolver::new(settings);
    Ok(StrategyComparison {
        hybrid: solver.solve(instance, Strategy::Hybrid)?,
        grid: solver.solve(instance, Strategy::GridOnly)?,
        fuel_cell: solver.solve(instance, Strategy::FuelCellOnly)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ufc_model::EmissionCostFn;

    fn tiny() -> UfcInstance {
        UfcInstance::new(
            vec![1.0, 2.0],
            vec![2.0, 2.0],
            vec![0.24, 0.24],
            vec![0.12, 0.12],
            vec![0.48, 0.48],
            vec![30.0, 70.0],
            80.0,
            vec![0.5, 0.3],
            vec![vec![0.01, 0.02], vec![0.02, 0.01]],
            10.0,
            vec![
                EmissionCostFn::linear(25.0).unwrap(),
                EmissionCostFn::linear(25.0).unwrap(),
            ],
            1.0,
        )
        .unwrap()
    }

    #[test]
    fn labels() {
        assert_eq!(Strategy::Hybrid.label(), "Hybrid");
        assert_eq!(Strategy::GridOnly.label(), "Grid");
        assert_eq!(Strategy::FuelCellOnly.label(), "Fuel cell");
        assert_eq!(Strategy::ALL.len(), 3);
    }

    #[test]
    fn comparison_improvements_are_consistent() {
        let cmp = solve_all_strategies(&tiny(), AdmgSettings::default()).unwrap();
        // Hybrid dominates both restrictions.
        assert!(cmp.i_hg() >= -1e-3, "i_hg = {}", cmp.i_hg());
        assert!(cmp.i_hf() >= -1e-3, "i_hf = {}", cmp.i_hf());
        // Consistency: all three UFC values are finite and ordered as the
        // improvements claim.
        let (h, g, f) = (
            cmp.hybrid.breakdown.ufc(),
            cmp.grid.breakdown.ufc(),
            cmp.fuel_cell.breakdown.ufc(),
        );
        assert!(h.is_finite() && g.is_finite() && f.is_finite());
        if cmp.i_fg() > 0.0 {
            assert!(f > g);
        } else {
            assert!(f <= g + 1e-12);
        }
    }
}
