//! The transport-agnostic ADM-G iteration driver — the **single** copy of
//! the paper's prediction/correction loop.
//!
//! The paper's central claim (§III, problem (13)) is that one algorithm —
//! 4-block ADM-G with Gaussian back substitution — runs identically whether
//! executed centrally or distributed across front-ends and datacenters.
//! This module encodes that claim structurally: [`drive`] owns the
//! λ → μ → ν → a prediction order, the backward correction, the
//! three-residual convergence test, and the per-iteration event stream,
//! while a [`Transport`] implementation supplies only *how* block inputs
//! are broadcast and block results gathered:
//!
//! * **in-process** (`InProcessTransport`, crate-private): direct calls through the
//!   [`crate::AdmgSolver`] workspace and [`WorkerPool`];
//! * **lockstep message-passing** (`ufc_distsim`): deterministic rounds
//!   over explicit messages, with optional loss and fault injection;
//! * **supervised threaded** (`ufc_distsim`): one OS thread per node over
//!   mpsc channels, driven by a supervising coordinator.
//!
//! Every transport must preserve the numerical contract bit-for-bit:
//! parallel ≡ sequential, cached ≡ fresh, lockstep ≡ threaded, and
//! faulty-with-no-faults ≡ clean (asserted across crates in the
//! `engine_equivalence` integration test).

use std::time::{Duration, Instant};

use ufc_model::UfcInstance;

use crate::correction::gaussian_back_substitution;
use crate::pool::WorkerPool;
use crate::telemetry::Phase;
use crate::workspace::SolverWorkspace;
use crate::{AdmgSettings, AdmgState, Result};

/// Per-iteration residual record (the raw material of Fig. 11).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IterationRecord {
    /// Iteration index (0-based).
    pub iteration: usize,
    /// Link residual `max|λ − a|` (kilo-servers).
    pub link_residual: f64,
    /// Power-balance residual (MW).
    pub balance_residual: f64,
    /// Dual residual: ρ × the ∞-norm movement of the corrected blocks.
    pub dual_residual: f64,
    /// ADMM-form objective (12) at the corrected iterate ($); `NaN` when
    /// the transport cannot observe the assembled iterate.
    pub objective: f64,
}

/// Max-reduced residuals of one corrected iterate, as returned by
/// [`Transport::correct`]. The driver derives the dual residual as
/// `ρ × movement` and applies the stop rule.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct BlockResiduals {
    /// Link residual `max|λ − a|` (kilo-servers).
    pub link: f64,
    /// Power-balance residual (MW).
    pub balance: f64,
    /// ∞-norm movement of the corrected blocks `(μ, ν, a, φ, φ_ij)`.
    pub movement: f64,
}

/// One iteration of the unified driver, as delivered to an
/// [`IterationObserver`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IterationEvent {
    /// Iteration index (0-based, matching [`IterationRecord::iteration`]).
    pub iteration: usize,
    /// Link residual at the corrected iterate.
    pub link_residual: f64,
    /// Power-balance residual at the corrected iterate.
    pub balance_residual: f64,
    /// Dual residual `ρ × movement`.
    pub dual_residual: f64,
    /// Objective at the corrected iterate, when the transport can observe
    /// it (`None` for distributed transports — no node holds the full
    /// iterate).
    pub objective: Option<f64>,
    /// Whether this iteration passed all three residual tests.
    pub converged: bool,
}

/// Receives the per-iteration event stream of [`drive`] — the single hook
/// through which solvers, distributed statistics, and experiment drivers
/// observe an ADM-G run.
pub trait IterationObserver {
    /// Called once per iteration, after correction and the stop decision.
    fn on_iteration(&mut self, event: &IterationEvent);

    /// Whether this observer wants [`IterationObserver::on_phase`] events.
    /// [`drive`] reads this **once** per run and, when `false` (the
    /// default), never touches the clock — the inertness contract for
    /// telemetry-disabled runs is "zero timing reads", not just "timings
    /// discarded".
    fn wants_phase_timings(&self) -> bool {
        false
    }

    /// Called after each driver phase of iteration `k` (1-based) with its
    /// wall-clock duration — only when [`wants_phase_timings`] returned
    /// `true` at the start of the run. Timing flows strictly outward:
    /// nothing an observer does here can feed back into the iterates.
    ///
    /// [`wants_phase_timings`]: IterationObserver::wants_phase_timings
    fn on_phase(&mut self, k: usize, phase: Phase, elapsed: Duration) {
        let _ = (k, phase, elapsed);
    }
}

/// The no-op observer, for callers that only need the final outcome.
impl IterationObserver for () {
    fn on_iteration(&mut self, _event: &IterationEvent) {}
}

/// Forwarding impl so observers compose by mutable reference (e.g. a
/// caller-owned collector reborrowed into an [`ObserverChain`]).
///
/// [`ObserverChain`]: crate::telemetry::ObserverChain
impl<T: IterationObserver + ?Sized> IterationObserver for &mut T {
    fn on_iteration(&mut self, event: &IterationEvent) {
        (**self).on_iteration(event);
    }

    fn wants_phase_timings(&self) -> bool {
        (**self).wants_phase_timings()
    }

    fn on_phase(&mut self, k: usize, phase: Phase, elapsed: Duration) {
        (**self).on_phase(k, phase, elapsed);
    }
}

/// An observer that collects the classic [`IterationRecord`] history.
#[derive(Debug, Clone, Default)]
pub struct HistoryRecorder {
    records: Vec<IterationRecord>,
}

impl HistoryRecorder {
    /// The recorded trajectory, one record per iteration.
    #[must_use]
    pub fn into_history(self) -> Vec<IterationRecord> {
        self.records
    }
}

impl IterationObserver for HistoryRecorder {
    fn on_iteration(&mut self, event: &IterationEvent) {
        self.records.push(IterationRecord {
            iteration: event.iteration,
            link_residual: event.link_residual,
            balance_residual: event.balance_residual,
            dual_residual: event.dual_residual,
            objective: event.objective.unwrap_or(f64::NAN),
        });
    }
}

/// How one ADM-G execution engine moves block inputs and results around.
///
/// [`drive`] calls the phases in a fixed order each iteration `k`
/// (1-based): [`Transport::begin_iteration`] (membership/fault
/// bookkeeping), [`Transport::predict_lambda`] (the λ-step broadcast),
/// [`Transport::step_datacenters`] (the μ → ν → a steps plus dual
/// prediction and result gather), [`Transport::correct`] (Gaussian
/// back substitution plus residual reduction), and
/// [`Transport::finish_iteration`] (the continue/stop control broadcast
/// and any checkpointing) — after the stop decision, so a converged
/// iteration still broadcasts its verdict but never checkpoints.
pub trait Transport {
    /// Pre-phase bookkeeping: readmission probes, straggler accounting,
    /// partition stalls. Default: nothing (clean engines).
    ///
    /// # Errors
    ///
    /// Transport-specific; a returned error aborts the run.
    fn begin_iteration(&mut self, k: usize) -> Result<()> {
        let _ = k;
        Ok(())
    }

    /// Step 1: every front-end block solves its λ-sub-problem (17) and the
    /// predictions `λ̃` are scattered to the datacenter blocks.
    ///
    /// # Errors
    ///
    /// [`crate::CoreError::Subproblem`] if a block QP fails; transports
    /// add their own failure modes (e.g. node failures).
    fn predict_lambda(&mut self, k: usize) -> Result<()>;

    /// Steps 2–4: every datacenter block runs the μ̃ (18), ν̃ (19) and
    /// ã (20) predictions plus the dual prediction, and the results are
    /// gathered back.
    ///
    /// # Errors
    ///
    /// As for [`Transport::predict_lambda`].
    fn step_datacenters(&mut self, k: usize) -> Result<()>;

    /// The Gaussian back-substitution correction (backward block order) and
    /// the max-reduction of the per-block residuals.
    ///
    /// # Errors
    ///
    /// Transport-specific node/communication failures.
    fn correct(&mut self, k: usize) -> Result<BlockResiduals>;

    /// Post-decision bookkeeping: the continue/stop control broadcast,
    /// replay-history buffering, and checkpointing (never on `stop`).
    /// Default: nothing.
    ///
    /// # Errors
    ///
    /// Transport-specific (e.g. a checkpoint round failing).
    fn finish_iteration(&mut self, k: usize, stop: bool) -> Result<()> {
        let _ = (k, stop);
        Ok(())
    }

    /// Objective at the current corrected iterate, when observable.
    /// Distributed transports return `None`: no single node holds the
    /// full iterate.
    fn objective(&mut self) -> Option<f64> {
        None
    }
}

/// What [`drive`] reports back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DriveOutcome {
    /// Iterations performed (1-based count).
    pub iterations: usize,
    /// Whether all three residual tests passed before the iteration cap.
    pub converged: bool,
}

/// Runs the ADM-G iteration to convergence (or the iteration cap) over the
/// given transport — the one place in the workspace where the prediction
/// order λ → μ → ν → a, the backward correction, and the stopping rule
/// `link ≤ ε_link ∧ balance ≤ ε_balance ∧ ρ·movement ≤ ε_dual` are
/// sequenced.
///
/// `tolerances` is the `(link, balance, dual)` triple, typically
/// [`AdmgSettings::scaled_tolerances`].
///
/// # Errors
///
/// Propagates the first transport error.
pub fn drive<T: Transport + ?Sized>(
    transport: &mut T,
    settings: &AdmgSettings,
    tolerances: (f64, f64, f64),
    observer: &mut dyn IterationObserver,
) -> Result<DriveOutcome> {
    let (link_tol, balance_tol, dual_tol) = tolerances;
    // Read once: with timings unwanted the loop below never touches the
    // clock, so a telemetry-disabled run is instruction-identical on the
    // numeric path.
    let timed = observer.wants_phase_timings();
    let mut converged = false;
    let mut iterations = 0;
    for k in 1..=settings.max_iterations {
        iterations = k;
        let t = timed.then(Instant::now);
        transport.begin_iteration(k)?;
        if let Some(t0) = t {
            observer.on_phase(k, Phase::Begin, t0.elapsed());
        }
        // Prediction, forward block order: λ first, then the datacenter
        // blocks μ → ν → a and the dual prediction.
        let t = timed.then(Instant::now);
        transport.predict_lambda(k)?;
        if let Some(t0) = t {
            observer.on_phase(k, Phase::PredictLambda, t0.elapsed());
        }
        let t = timed.then(Instant::now);
        transport.step_datacenters(k)?;
        if let Some(t0) = t {
            observer.on_phase(k, Phase::StepDatacenters, t0.elapsed());
        }
        // Correction (Gaussian back substitution), backward block order.
        let t = timed.then(Instant::now);
        let residuals = transport.correct(k)?;
        if let Some(t0) = t {
            observer.on_phase(k, Phase::Correct, t0.elapsed());
        }
        let dual = settings.rho * residuals.movement;
        let stop =
            residuals.link <= link_tol && residuals.balance <= balance_tol && dual <= dual_tol;
        observer.on_iteration(&IterationEvent {
            iteration: k - 1,
            link_residual: residuals.link,
            balance_residual: residuals.balance,
            dual_residual: dual,
            objective: transport.objective(),
            converged: stop,
        });
        let t = timed.then(Instant::now);
        transport.finish_iteration(k, stop)?;
        if let Some(t0) = t {
            observer.on_phase(k, Phase::FinishIteration, t0.elapsed());
        }
        if stop {
            converged = true;
            break;
        }
    }
    Ok(DriveOutcome {
        iterations,
        converged,
    })
}

/// ∞-norm movement of the corrected blocks `(μ, ν, a, φ, φ_ij)` between two
/// iterates — the dual-residual proxy used in the stopping rule.
pub(crate) fn iterate_movement(prev: &AdmgState, next: &AdmgState) -> f64 {
    let mut m = 0.0f64;
    for (a, b) in prev.mu.iter().zip(&next.mu) {
        m = m.max((a - b).abs());
    }
    for (a, b) in prev.nu.iter().zip(&next.nu) {
        m = m.max((a - b).abs());
    }
    for (a, b) in prev.a.iter().zip(&next.a) {
        m = m.max((a - b).abs());
    }
    for (a, b) in prev.phi.iter().zip(&next.phi) {
        m = m.max((a - b).abs());
    }
    for (a, b) in prev.varphi.iter().zip(&next.varphi) {
        m = m.max((a - b).abs());
    }
    m
}

/// The in-process transport: the global iterate lives in one [`AdmgState`]
/// and the block phases are direct calls through the persistent
/// [`SolverWorkspace`] kernels, fanned across a [`WorkerPool`].
pub(crate) struct InProcessTransport<'a> {
    instance: &'a UfcInstance,
    pool: &'a WorkerPool,
    ws: &'a mut SolverWorkspace,
    state: AdmgState,
    epsilon: f64,
    active_mu: bool,
    active_nu: bool,
}

impl<'a> InProcessTransport<'a> {
    pub(crate) fn new(
        instance: &'a UfcInstance,
        settings: &AdmgSettings,
        start: AdmgState,
        ws: &'a mut SolverWorkspace,
        pool: &'a WorkerPool,
        active_mu: bool,
        active_nu: bool,
    ) -> Self {
        InProcessTransport {
            instance,
            pool,
            ws,
            state: start,
            epsilon: settings.epsilon,
            active_mu,
            active_nu,
        }
    }

    /// The final corrected iterate.
    pub(crate) fn into_state(self) -> AdmgState {
        self.state
    }
}

impl Transport for InProcessTransport<'_> {
    fn predict_lambda(&mut self, _k: usize) -> Result<()> {
        self.ws.predict_lambda(&self.state, self.pool)
    }

    fn step_datacenters(&mut self, _k: usize) -> Result<()> {
        self.ws.predict_site_blocks(
            self.instance,
            &self.state,
            self.pool,
            self.active_mu,
            self.active_nu,
        )
    }

    fn correct(&mut self, _k: usize) -> Result<BlockResiduals> {
        self.ws.prev.clone_from(&self.state);
        gaussian_back_substitution(
            self.instance,
            &mut self.state,
            &self.ws.tilde,
            self.epsilon,
            self.active_mu,
            self.active_nu,
        );
        Ok(BlockResiduals {
            link: self.state.link_residual(),
            balance: self.state.balance_residual(self.instance),
            movement: iterate_movement(&self.ws.prev, &self.state),
        })
    }

    fn objective(&mut self) -> Option<f64> {
        Some(self.state.objective(self.instance))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A transport that converges after a scripted number of iterations,
    /// for exercising the driver's sequencing alone.
    struct Scripted {
        calls: Vec<&'static str>,
        converge_at: usize,
    }

    impl Transport for Scripted {
        fn begin_iteration(&mut self, _k: usize) -> Result<()> {
            self.calls.push("begin");
            Ok(())
        }
        fn predict_lambda(&mut self, _k: usize) -> Result<()> {
            self.calls.push("lambda");
            Ok(())
        }
        fn step_datacenters(&mut self, _k: usize) -> Result<()> {
            self.calls.push("site");
            Ok(())
        }
        fn correct(&mut self, k: usize) -> Result<BlockResiduals> {
            self.calls.push("correct");
            let done = k >= self.converge_at;
            Ok(BlockResiduals {
                link: if done { 0.0 } else { 1.0 },
                balance: 0.0,
                movement: 0.0,
            })
        }
        fn finish_iteration(&mut self, _k: usize, stop: bool) -> Result<()> {
            self.calls.push(if stop { "finish/stop" } else { "finish" });
            Ok(())
        }
    }

    #[test]
    fn driver_sequences_phases_and_stops() {
        let mut t = Scripted {
            calls: Vec::new(),
            converge_at: 2,
        };
        let settings = AdmgSettings::default();
        let mut recorder = HistoryRecorder::default();
        let outcome = drive(&mut t, &settings, (0.5, 0.5, 0.5), &mut recorder)
            .expect("scripted transport cannot fail");
        assert!(outcome.converged);
        assert_eq!(outcome.iterations, 2);
        assert_eq!(
            t.calls,
            vec![
                "begin",
                "lambda",
                "site",
                "correct",
                "finish",
                "begin",
                "lambda",
                "site",
                "correct",
                "finish/stop",
            ]
        );
        let history = recorder.into_history();
        assert_eq!(history.len(), 2);
        assert_eq!(history[0].iteration, 0);
        assert!(history[1].objective.is_nan(), "no objective => NaN record");
    }

    #[test]
    fn driver_hits_iteration_cap_without_convergence() {
        let mut t = Scripted {
            calls: Vec::new(),
            converge_at: usize::MAX,
        };
        let settings = AdmgSettings {
            max_iterations: 3,
            ..AdmgSettings::default()
        };
        let outcome = drive(&mut t, &settings, (0.5, 0.5, 0.5), &mut ())
            .expect("scripted transport cannot fail");
        assert!(!outcome.converged);
        assert_eq!(outcome.iterations, 3);
    }
}
