//! The transport-agnostic ADM-G iteration driver — the **single** copy of
//! the paper's prediction/correction loop.
//!
//! The paper's central claim (§III, problem (13)) is that one algorithm —
//! N-block ADM-G with Gaussian back substitution — runs identically whether
//! executed centrally or distributed across front-ends and datacenters.
//! This module encodes that claim structurally: [`drive`] owns the
//! schedule-driven prediction order (classically λ → μ → ν → a; with the
//! storage extension λ → μ → ν → d → a), the backward correction, the
//! three-residual convergence test, and the per-iteration event stream,
//! while a [`Transport`] implementation supplies only *how* block inputs
//! are broadcast and block results gathered:
//!
//! * **in-process** (`InProcessTransport`, crate-private): direct calls through the
//!   [`crate::AdmgSolver`] workspace and [`WorkerPool`];
//! * **lockstep message-passing** (`ufc_distsim`): deterministic rounds
//!   over explicit messages, with optional loss and fault injection;
//! * **supervised threaded** (`ufc_distsim`): one OS thread per node over
//!   mpsc channels, driven by a supervising coordinator.
//!
//! Every transport must preserve the numerical contract bit-for-bit:
//! parallel ≡ sequential, cached ≡ fresh, lockstep ≡ threaded, and
//! faulty-with-no-faults ≡ clean (asserted across crates in the
//! `engine_equivalence` integration test).

use std::time::{Duration, Instant};

use ufc_model::UfcInstance;

use crate::correction::gaussian_back_substitution;
use crate::pool::WorkerPool;
use crate::telemetry::Phase;
use crate::workspace::SolverWorkspace;
use crate::{AdmgSettings, AdmgState, Result};

/// Per-iteration residual record (the raw material of Fig. 11).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IterationRecord {
    /// Iteration index (0-based).
    pub iteration: usize,
    /// Link residual `max|λ − a|` (kilo-servers).
    pub link_residual: f64,
    /// Power-balance residual (MW).
    pub balance_residual: f64,
    /// Dual residual: ρ × the ∞-norm movement of the corrected blocks.
    pub dual_residual: f64,
    /// ADMM-form objective (12) at the corrected iterate ($); `NaN` when
    /// the transport cannot observe the assembled iterate.
    pub objective: f64,
}

/// Max-reduced residuals of one corrected iterate, as returned by
/// [`Transport::correct`]. The driver derives the dual residual as
/// `ρ × movement` and applies the stop rule.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct BlockResiduals {
    /// Link residual `max|λ − a|` (kilo-servers).
    pub link: f64,
    /// Power-balance residual (MW).
    pub balance: f64,
    /// ∞-norm movement of the corrected blocks `(μ, ν, d, a, φ, φ_ij)`.
    pub movement: f64,
}

/// One iteration of the unified driver, as delivered to an
/// [`IterationObserver`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IterationEvent {
    /// Iteration index (0-based, matching [`IterationRecord::iteration`]).
    pub iteration: usize,
    /// Link residual at the corrected iterate.
    pub link_residual: f64,
    /// Power-balance residual at the corrected iterate.
    pub balance_residual: f64,
    /// Dual residual `ρ × movement`.
    pub dual_residual: f64,
    /// Objective at the corrected iterate, when the transport can observe
    /// it (`None` for distributed transports — no node holds the full
    /// iterate).
    pub objective: Option<f64>,
    /// Whether this iteration passed all three residual tests.
    pub converged: bool,
}

/// Receives the per-iteration event stream of [`drive`] — the single hook
/// through which solvers, distributed statistics, and experiment drivers
/// observe an ADM-G run.
pub trait IterationObserver {
    /// Called once per iteration, after correction and the stop decision.
    fn on_iteration(&mut self, event: &IterationEvent);

    /// Whether this observer wants [`IterationObserver::on_phase`] events.
    /// [`drive`] reads this **once** per run and, when `false` (the
    /// default), never touches the clock — the inertness contract for
    /// telemetry-disabled runs is "zero timing reads", not just "timings
    /// discarded".
    fn wants_phase_timings(&self) -> bool {
        false
    }

    /// Called after each driver phase of iteration `k` (1-based) with its
    /// wall-clock duration — only when [`wants_phase_timings`] returned
    /// `true` at the start of the run. Timing flows strictly outward:
    /// nothing an observer does here can feed back into the iterates.
    ///
    /// [`wants_phase_timings`]: IterationObserver::wants_phase_timings
    fn on_phase(&mut self, k: usize, phase: Phase, elapsed: Duration) {
        let _ = (k, phase, elapsed);
    }
}

/// The no-op observer, for callers that only need the final outcome.
impl IterationObserver for () {
    fn on_iteration(&mut self, _event: &IterationEvent) {}
}

/// Forwarding impl so observers compose by mutable reference (e.g. a
/// caller-owned collector reborrowed into an [`ObserverChain`]).
///
/// [`ObserverChain`]: crate::telemetry::ObserverChain
impl<T: IterationObserver + ?Sized> IterationObserver for &mut T {
    fn on_iteration(&mut self, event: &IterationEvent) {
        (**self).on_iteration(event);
    }

    fn wants_phase_timings(&self) -> bool {
        (**self).wants_phase_timings()
    }

    fn on_phase(&mut self, k: usize, phase: Phase, elapsed: Duration) {
        (**self).on_phase(k, phase, elapsed);
    }
}

/// An observer that collects the classic [`IterationRecord`] history.
#[derive(Debug, Clone, Default)]
pub struct HistoryRecorder {
    records: Vec<IterationRecord>,
}

impl HistoryRecorder {
    /// The recorded trajectory, one record per iteration.
    #[must_use]
    pub fn into_history(self) -> Vec<IterationRecord> {
        self.records
    }
}

impl IterationObserver for HistoryRecorder {
    fn on_iteration(&mut self, event: &IterationEvent) {
        self.records.push(IterationRecord {
            iteration: event.iteration,
            link_residual: event.link_residual,
            balance_residual: event.balance_residual,
            dual_residual: event.dual_residual,
            objective: event.objective.unwrap_or(f64::NAN),
        });
    }
}

/// Which side of the geo-distributed deployment owns a block's
/// computation — the unit [`drive`] schedules prediction phases by.
/// Consecutive blocks with the same owner fuse into one phase (one
/// scatter/gather round), which is how the classic 4-block schedule and
/// the 5-block storage schedule both execute as exactly two prediction
/// phases per iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BlockOwner {
    /// A front-end (access point): owns the routing block λ.
    FrontEnd,
    /// A datacenter: owns the μ/ν/d/a blocks and the dual prediction.
    Datacenter,
}

impl BlockOwner {
    /// Stable snake_case name (used in diagnostics and JSON keys).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            BlockOwner::FrontEnd => "front_end",
            BlockOwner::Datacenter => "datacenter",
        }
    }
}

/// What one ADM-G block computes. The discriminants are **wire-stable**:
/// [`BlockKind::wire_id`] is encoded into run-config frames and
/// block-indexed messages by `ufc_distsim`, so variants must never be
/// reordered or renumbered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BlockKind {
    /// λ — request routing fractions at the front-ends (paper Eq. (17)).
    Routing,
    /// μ — fuel-cell generation at each datacenter (Eq. (18)).
    FuelCell,
    /// ν — grid draw at each datacenter (Eq. (19)).
    Grid,
    /// d — battery net discharge at each datacenter (storage extension).
    Storage,
    /// a — the auxiliary routing copy at each datacenter (Eq. (20)).
    Auxiliary,
}

impl BlockKind {
    /// The stable one-byte wire identifier of this block kind.
    #[must_use]
    pub const fn wire_id(self) -> u8 {
        match self {
            BlockKind::Routing => 0,
            BlockKind::FuelCell => 1,
            BlockKind::Grid => 2,
            BlockKind::Storage => 3,
            BlockKind::Auxiliary => 4,
        }
    }

    /// Decodes a wire identifier back into a kind.
    #[must_use]
    pub const fn from_wire_id(id: u8) -> Option<Self> {
        match id {
            0 => Some(BlockKind::Routing),
            1 => Some(BlockKind::FuelCell),
            2 => Some(BlockKind::Grid),
            3 => Some(BlockKind::Storage),
            4 => Some(BlockKind::Auxiliary),
            _ => None,
        }
    }

    /// Stable snake_case name (used in diagnostics and JSON keys).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            BlockKind::Routing => "routing",
            BlockKind::FuelCell => "fuel_cell",
            BlockKind::Grid => "grid",
            BlockKind::Storage => "storage",
            BlockKind::Auxiliary => "auxiliary",
        }
    }
}

/// One block of the ADM-G schedule: what it computes, who computes it, and
/// how many scalar variables it holds (0 when the schedule is not yet bound
/// to an instance).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockDescriptor {
    /// What the block computes.
    pub kind: BlockKind,
    /// Which deployment side owns the computation.
    pub owner: BlockOwner,
    /// Scalar variables in the block (`m·n` for routing blocks, `n` for
    /// per-datacenter blocks); 0 for unbound template schedules.
    pub dimension: usize,
}

/// The ordered block schedule one ADM-G run executes — the data structure
/// that replaced the hard-coded 4-block pipeline. [`drive`] derives its
/// prediction phases from it, `ufc_distsim` echoes it through run-config
/// frames, and the correction step processes its blocks in reverse.
///
/// [`BlockSchedule::classic`] (λ, μ, ν, a) is the degenerate case and is
/// **bit-identical** to the pre-schedule pipeline on every engine;
/// [`BlockSchedule::with_storage`] inserts the battery block d between ν
/// and a.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockSchedule {
    blocks: Vec<BlockDescriptor>,
}

impl BlockSchedule {
    /// The paper's 4-block schedule λ → μ → ν → a (unbound: dimensions 0).
    #[must_use]
    pub fn classic() -> Self {
        BlockSchedule {
            blocks: vec![
                BlockDescriptor {
                    kind: BlockKind::Routing,
                    owner: BlockOwner::FrontEnd,
                    dimension: 0,
                },
                BlockDescriptor {
                    kind: BlockKind::FuelCell,
                    owner: BlockOwner::Datacenter,
                    dimension: 0,
                },
                BlockDescriptor {
                    kind: BlockKind::Grid,
                    owner: BlockOwner::Datacenter,
                    dimension: 0,
                },
                BlockDescriptor {
                    kind: BlockKind::Auxiliary,
                    owner: BlockOwner::Datacenter,
                    dimension: 0,
                },
            ],
        }
    }

    /// The 5-block storage schedule λ → μ → ν → d → a (unbound).
    #[must_use]
    pub fn with_storage() -> Self {
        let mut schedule = BlockSchedule::classic();
        schedule.blocks.insert(
            3,
            BlockDescriptor {
                kind: BlockKind::Storage,
                owner: BlockOwner::Datacenter,
                dimension: 0,
            },
        );
        schedule
    }

    /// The schedule an instance runs under, with block dimensions bound:
    /// the storage variant exactly when the instance carries storage
    /// parameters, the classic schedule otherwise.
    #[must_use]
    pub fn for_instance(instance: &UfcInstance) -> Self {
        let (m, n) = (instance.m_frontends(), instance.n_datacenters());
        let mut schedule = if instance.storage.is_some() {
            BlockSchedule::with_storage()
        } else {
            BlockSchedule::classic()
        };
        for block in &mut schedule.blocks {
            block.dimension = match block.kind {
                BlockKind::Routing | BlockKind::Auxiliary => m * n,
                BlockKind::FuelCell | BlockKind::Grid | BlockKind::Storage => n,
            };
        }
        schedule
    }

    /// The blocks in prediction (forward) order.
    #[must_use]
    pub fn blocks(&self) -> &[BlockDescriptor] {
        &self.blocks
    }

    /// Number of blocks in the schedule.
    #[must_use]
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Whether the schedule has no blocks (never true for the built-ins).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Whether the schedule carries the storage block.
    #[must_use]
    pub fn has_storage(&self) -> bool {
        self.blocks.iter().any(|b| b.kind == BlockKind::Storage)
    }

    /// The prediction phases [`drive`] runs per iteration: the block owners
    /// in schedule order with consecutive duplicates fused (each fused run
    /// is one scatter/gather round). Both built-in schedules reduce to
    /// `[FrontEnd, Datacenter]`, which is why the storage extension costs
    /// no extra communication rounds.
    #[must_use]
    pub fn prediction_phases(&self) -> Vec<BlockOwner> {
        let mut phases: Vec<BlockOwner> = Vec::new();
        for block in &self.blocks {
            if phases.last() != Some(&block.owner) {
                phases.push(block.owner);
            }
        }
        phases
    }

    /// Every driver phase of one iteration, in execution order — the
    /// schedule-derived source of truth for telemetry keys and the trace
    /// validator ([`Phase::ALL`] equals this for both built-in schedules).
    #[must_use]
    pub fn phases(&self) -> Vec<Phase> {
        let mut phases = vec![Phase::Begin];
        phases.extend(self.prediction_phases().into_iter().map(Phase::Predict));
        phases.push(Phase::Correct);
        phases.push(Phase::FinishIteration);
        phases
    }
}

/// How one ADM-G execution engine moves block inputs and results around.
///
/// [`drive`] calls the phases in a fixed order each iteration `k`
/// (1-based): [`Transport::begin_iteration`] (membership/fault
/// bookkeeping), then one [`Transport::predict_phase`] per entry of the
/// schedule's [`BlockSchedule::prediction_phases`] — for both built-in
/// schedules that is the λ-step broadcast ([`Transport::predict_lambda`])
/// followed by the fused datacenter steps plus dual prediction and result
/// gather ([`Transport::step_datacenters`]) — then [`Transport::correct`]
/// (Gaussian back substitution plus residual reduction), and
/// [`Transport::finish_iteration`] (the continue/stop control broadcast
/// and any checkpointing) — after the stop decision, so a converged
/// iteration still broadcasts its verdict but never checkpoints.
pub trait Transport {
    /// Pre-phase bookkeeping: readmission probes, straggler accounting,
    /// partition stalls. Default: nothing (clean engines).
    ///
    /// # Errors
    ///
    /// Transport-specific; a returned error aborts the run.
    fn begin_iteration(&mut self, k: usize) -> Result<()> {
        let _ = k;
        Ok(())
    }

    /// The block schedule this transport executes. The default is the
    /// classic 4-block schedule; storage-aware transports report the
    /// schedule bound to their instance ([`BlockSchedule::for_instance`]).
    /// [`drive`] reads this once per run.
    fn schedule(&self) -> BlockSchedule {
        BlockSchedule::classic()
    }

    /// Runs one prediction phase: every block owned by `owner` predicts,
    /// in schedule order. The default dispatches the two built-in owners
    /// to the named phase methods, so existing transports pick up the
    /// schedule-driven driver without code changes.
    ///
    /// # Errors
    ///
    /// As for the dispatched phase method.
    fn predict_phase(&mut self, owner: BlockOwner, k: usize) -> Result<()> {
        match owner {
            BlockOwner::FrontEnd => self.predict_lambda(k),
            BlockOwner::Datacenter => self.step_datacenters(k),
        }
    }

    /// Step 1: every front-end block solves its λ-sub-problem (17) and the
    /// predictions `λ̃` are scattered to the datacenter blocks.
    ///
    /// # Errors
    ///
    /// [`crate::CoreError::Subproblem`] if a block QP fails; transports
    /// add their own failure modes (e.g. node failures).
    fn predict_lambda(&mut self, k: usize) -> Result<()>;

    /// The fused datacenter phase: every datacenter block runs the μ̃ (18),
    /// ν̃ (19), d̃ (storage schedules only) and ã (20) predictions plus the
    /// dual prediction, and the results are gathered back.
    ///
    /// # Errors
    ///
    /// As for [`Transport::predict_lambda`].
    fn step_datacenters(&mut self, k: usize) -> Result<()>;

    /// The Gaussian back-substitution correction (backward block order) and
    /// the max-reduction of the per-block residuals.
    ///
    /// # Errors
    ///
    /// Transport-specific node/communication failures.
    fn correct(&mut self, k: usize) -> Result<BlockResiduals>;

    /// Post-decision bookkeeping: the continue/stop control broadcast,
    /// replay-history buffering, and checkpointing (never on `stop`).
    /// Default: nothing.
    ///
    /// # Errors
    ///
    /// Transport-specific (e.g. a checkpoint round failing).
    fn finish_iteration(&mut self, k: usize, stop: bool) -> Result<()> {
        let _ = (k, stop);
        Ok(())
    }

    /// Objective at the current corrected iterate, when observable.
    /// Distributed transports return `None`: no single node holds the
    /// full iterate.
    fn objective(&mut self) -> Option<f64> {
        None
    }

    /// Rolls the iterate back to the transport's last *finite* checkpoint
    /// after a divergence-gate trip, returning the checkpoint iteration on
    /// success. The default declines (`None`): transports without
    /// checkpoint machinery let the typed divergence error surface.
    ///
    /// # Errors
    ///
    /// Transport-specific restore failures (e.g. a corrupt blob).
    fn rollback(&mut self, k: usize) -> Result<Option<usize>> {
        let _ = k;
        Ok(None)
    }

    /// The node the transport blames for a non-finite residual, if it
    /// tracked one during the last residual reduction — flows into the
    /// typed [`crate::CoreError::Divergence`] diagnostics.
    fn divergence_suspect(&self) -> Option<String> {
        None
    }
}

/// Caps how many divergence-gate trips may be repaired by checkpoint
/// rollback in one run before the gate turns fatal — a deterministically
/// re-diverging run must not roll back forever.
const MAX_ROLLBACKS: usize = 3;

/// The driver's divergence gate: watches the residual stream for
/// non-finite values (immediate trip) and sustained explosion past
/// `κ × best-seen` for `K` consecutive iterations. Purely observational —
/// it only reads residuals the driver already computed, so healthy runs
/// are bit-identical with the gate armed (which it always is).
struct DivergenceGuard {
    kappa: f64,
    window: usize,
    best: f64,
    streak: usize,
    rollbacks: usize,
}

impl DivergenceGuard {
    fn new(settings: &AdmgSettings) -> Self {
        DivergenceGuard {
            kappa: settings.divergence_kappa,
            window: settings.divergence_window,
            best: f64::INFINITY,
            streak: 0,
            rollbacks: 0,
        }
    }

    /// Observes one iteration's residual triple; `Some(context)` when the
    /// gate trips.
    fn observe(&mut self, residuals: &BlockResiduals, dual: f64) -> Option<String> {
        for (name, value) in [
            ("link", residuals.link),
            ("balance", residuals.balance),
            ("dual", dual),
        ] {
            if !value.is_finite() {
                return Some(format!("{name} residual became non-finite ({value})"));
            }
        }
        let r = residuals.link.max(residuals.balance).max(dual);
        if self.best.is_finite() && r > self.kappa * self.best {
            self.streak += 1;
            if self.streak >= self.window {
                return Some(format!(
                    "residual {r:e} exceeded {}× the best-seen {:e} for {} consecutive iterations",
                    self.kappa, self.best, self.streak
                ));
            }
        } else {
            self.streak = 0;
        }
        self.best = self.best.min(r);
        None
    }

    /// Whether the rollback budget still allows repairing a trip.
    fn can_roll_back(&self) -> bool {
        self.rollbacks < MAX_ROLLBACKS
    }

    /// Re-arms the gate after a successful rollback.
    fn rearm(&mut self) {
        self.rollbacks += 1;
        self.best = f64::INFINITY;
        self.streak = 0;
    }
}

/// What [`drive`] reports back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DriveOutcome {
    /// Iterations performed (1-based count).
    pub iterations: usize,
    /// Whether all three residual tests passed before the iteration cap.
    pub converged: bool,
}

/// Runs the ADM-G iteration to convergence (or the iteration cap) over the
/// given transport — the one place in the workspace where the
/// schedule-driven prediction order (λ → μ → ν → a classically,
/// λ → μ → ν → d → a under storage), the backward correction, and the
/// stopping rule
/// `link ≤ ε_link ∧ balance ≤ ε_balance ∧ ρ·movement ≤ ε_dual` are
/// sequenced. The prediction phases are read once from
/// [`Transport::schedule`] and iterated each round — the driver never
/// names a block.
///
/// `tolerances` is the `(link, balance, dual)` triple, typically
/// [`AdmgSettings::scaled_tolerances`].
///
/// # Errors
///
/// Propagates the first transport error.
pub fn drive<T: Transport + ?Sized>(
    transport: &mut T,
    settings: &AdmgSettings,
    tolerances: (f64, f64, f64),
    observer: &mut dyn IterationObserver,
) -> Result<DriveOutcome> {
    let (link_tol, balance_tol, dual_tol) = tolerances;
    // Read once: with timings unwanted the loop below never touches the
    // clock, so a telemetry-disabled run is instruction-identical on the
    // numeric path.
    let timed = observer.wants_phase_timings();
    // Read the schedule once: the prediction phases are fixed for the run
    // (collected into an owned Vec so the loop below can borrow the
    // transport mutably).
    let prediction_phases = transport.schedule().prediction_phases();
    let mut guard = DivergenceGuard::new(settings);
    let mut converged = false;
    let mut iterations = 0;
    for k in 1..=settings.max_iterations {
        iterations = k;
        let t = timed.then(Instant::now);
        transport.begin_iteration(k)?;
        if let Some(t0) = t {
            observer.on_phase(k, Phase::Begin, t0.elapsed());
        }
        // Prediction, forward block order, one phase per fused owner run:
        // for both built-in schedules the front-end λ phase first, then
        // the fused datacenter blocks and the dual prediction.
        for &owner in &prediction_phases {
            let t = timed.then(Instant::now);
            transport.predict_phase(owner, k)?;
            if let Some(t0) = t {
                observer.on_phase(k, Phase::Predict(owner), t0.elapsed());
            }
        }
        // Correction (Gaussian back substitution), backward block order.
        let t = timed.then(Instant::now);
        let residuals = transport.correct(k)?;
        if let Some(t0) = t {
            observer.on_phase(k, Phase::Correct, t0.elapsed());
        }
        let dual = settings.rho * residuals.movement;
        if let Some(context) = guard.observe(&residuals, dual) {
            // The iterate is poisoned: either repair it from the last
            // finite checkpoint (and skip this iteration's event/stop
            // bookkeeping — the residuals are meaningless), or fail with a
            // typed divergence error. Never continue silently.
            if settings.divergence_rollback && guard.can_roll_back() {
                if let Some(_checkpoint_iteration) = transport.rollback(k)? {
                    guard.rearm();
                    continue;
                }
            }
            return Err(match transport.divergence_suspect() {
                Some(node) => crate::CoreError::divergence_at("correct", k, node, context),
                None => crate::CoreError::divergence("correct", k, context),
            });
        }
        let stop =
            residuals.link <= link_tol && residuals.balance <= balance_tol && dual <= dual_tol;
        observer.on_iteration(&IterationEvent {
            iteration: k - 1,
            link_residual: residuals.link,
            balance_residual: residuals.balance,
            dual_residual: dual,
            objective: transport.objective(),
            converged: stop,
        });
        let t = timed.then(Instant::now);
        transport.finish_iteration(k, stop)?;
        if let Some(t0) = t {
            observer.on_phase(k, Phase::FinishIteration, t0.elapsed());
        }
        if stop {
            converged = true;
            break;
        }
    }
    Ok(DriveOutcome {
        iterations,
        converged,
    })
}

/// ∞-norm movement of the corrected blocks `(μ, ν, d, a, φ, φ_ij)` between
/// two iterates — the dual-residual proxy used in the stopping rule. On
/// classic (spatial-only) schedules `d` never moves, so including it is
/// a max with `0.0` and the 4-block residual stream is unchanged.
pub(crate) fn iterate_movement(prev: &AdmgState, next: &AdmgState) -> f64 {
    let mut m = 0.0f64;
    for (a, b) in prev.mu.iter().zip(&next.mu) {
        m = m.max((a - b).abs());
    }
    for (a, b) in prev.nu.iter().zip(&next.nu) {
        m = m.max((a - b).abs());
    }
    for (a, b) in prev.d.iter().zip(&next.d) {
        m = m.max((a - b).abs());
    }
    for (a, b) in prev.a.iter().zip(&next.a) {
        m = m.max((a - b).abs());
    }
    for (a, b) in prev.phi.iter().zip(&next.phi) {
        m = m.max((a - b).abs());
    }
    for (a, b) in prev.varphi.iter().zip(&next.varphi) {
        m = m.max((a - b).abs());
    }
    m
}

/// The in-process transport: the global iterate lives in one [`AdmgState`]
/// and the block phases are direct calls through the persistent
/// [`SolverWorkspace`] kernels, fanned across a [`WorkerPool`].
pub(crate) struct InProcessTransport<'a> {
    instance: &'a UfcInstance,
    pool: &'a WorkerPool,
    ws: &'a mut SolverWorkspace,
    state: AdmgState,
    epsilon: f64,
    active_mu: bool,
    active_nu: bool,
}

impl<'a> InProcessTransport<'a> {
    pub(crate) fn new(
        instance: &'a UfcInstance,
        settings: &AdmgSettings,
        start: AdmgState,
        ws: &'a mut SolverWorkspace,
        pool: &'a WorkerPool,
        active_mu: bool,
        active_nu: bool,
    ) -> Self {
        InProcessTransport {
            instance,
            pool,
            ws,
            state: start,
            epsilon: settings.epsilon,
            active_mu,
            active_nu,
        }
    }

    /// The final corrected iterate.
    pub(crate) fn into_state(self) -> AdmgState {
        self.state
    }
}

impl Transport for InProcessTransport<'_> {
    fn schedule(&self) -> BlockSchedule {
        BlockSchedule::for_instance(self.instance)
    }

    fn predict_lambda(&mut self, _k: usize) -> Result<()> {
        self.ws.predict_lambda(&self.state, self.pool)
    }

    fn step_datacenters(&mut self, _k: usize) -> Result<()> {
        self.ws.predict_site_blocks(
            self.instance,
            &self.state,
            self.pool,
            self.active_mu,
            self.active_nu,
        )
    }

    fn correct(&mut self, _k: usize) -> Result<BlockResiduals> {
        self.ws.prev.clone_from(&self.state);
        gaussian_back_substitution(
            self.instance,
            &mut self.state,
            &self.ws.tilde,
            self.epsilon,
            self.active_mu,
            self.active_nu,
        );
        Ok(BlockResiduals {
            link: self.state.link_residual(),
            balance: self.state.balance_residual(self.instance),
            movement: iterate_movement(&self.ws.prev, &self.state),
        })
    }

    fn objective(&mut self) -> Option<f64> {
        Some(self.state.objective(self.instance))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A transport that converges after a scripted number of iterations,
    /// for exercising the driver's sequencing alone.
    struct Scripted {
        calls: Vec<&'static str>,
        converge_at: usize,
    }

    impl Transport for Scripted {
        fn begin_iteration(&mut self, _k: usize) -> Result<()> {
            self.calls.push("begin");
            Ok(())
        }
        fn predict_lambda(&mut self, _k: usize) -> Result<()> {
            self.calls.push("lambda");
            Ok(())
        }
        fn step_datacenters(&mut self, _k: usize) -> Result<()> {
            self.calls.push("site");
            Ok(())
        }
        fn correct(&mut self, k: usize) -> Result<BlockResiduals> {
            self.calls.push("correct");
            let done = k >= self.converge_at;
            Ok(BlockResiduals {
                link: if done { 0.0 } else { 1.0 },
                balance: 0.0,
                movement: 0.0,
            })
        }
        fn finish_iteration(&mut self, _k: usize, stop: bool) -> Result<()> {
            self.calls.push(if stop { "finish/stop" } else { "finish" });
            Ok(())
        }
    }

    #[test]
    fn classic_schedule_is_the_four_block_pipeline() {
        let s = BlockSchedule::classic();
        assert_eq!(s.len(), 4);
        assert!(!s.has_storage());
        let kinds: Vec<BlockKind> = s.blocks().iter().map(|b| b.kind).collect();
        assert_eq!(
            kinds,
            vec![
                BlockKind::Routing,
                BlockKind::FuelCell,
                BlockKind::Grid,
                BlockKind::Auxiliary
            ]
        );
        assert_eq!(
            s.prediction_phases(),
            vec![BlockOwner::FrontEnd, BlockOwner::Datacenter]
        );
        assert_eq!(s.phases(), Phase::ALL.to_vec());
    }

    #[test]
    fn storage_schedule_inserts_d_between_nu_and_a() {
        let s = BlockSchedule::with_storage();
        assert_eq!(s.len(), 5);
        assert!(s.has_storage());
        let kinds: Vec<BlockKind> = s.blocks().iter().map(|b| b.kind).collect();
        assert_eq!(
            kinds,
            vec![
                BlockKind::Routing,
                BlockKind::FuelCell,
                BlockKind::Grid,
                BlockKind::Storage,
                BlockKind::Auxiliary
            ]
        );
        // The 5th block is datacenter-owned, so it fuses into the existing
        // datacenter phase: no extra communication round, identical phase
        // list.
        assert_eq!(
            s.prediction_phases(),
            vec![BlockOwner::FrontEnd, BlockOwner::Datacenter]
        );
        assert_eq!(s.phases(), Phase::ALL.to_vec());
    }

    fn tiny_instance() -> UfcInstance {
        UfcInstance::new(
            vec![1.0, 2.0],
            vec![2.0, 2.0],
            vec![0.24, 0.24],
            vec![0.12, 0.12],
            vec![0.48, 0.48],
            vec![30.0, 70.0],
            80.0,
            vec![0.5, 0.3],
            vec![vec![0.01, 0.02], vec![0.02, 0.01]],
            10.0,
            vec![
                ufc_model::EmissionCostFn::linear(25.0).unwrap(),
                ufc_model::EmissionCostFn::linear(25.0).unwrap(),
            ],
            1.0,
        )
        .unwrap()
    }

    #[test]
    fn for_instance_binds_dimensions_and_storage() {
        let inst = tiny_instance();
        let s = BlockSchedule::for_instance(&inst);
        assert_eq!(s.len(), 4);
        for b in s.blocks() {
            let expect = match b.kind {
                BlockKind::Routing | BlockKind::Auxiliary => 4,
                _ => 2,
            };
            assert_eq!(b.dimension, expect, "{:?}", b.kind);
        }
        let fleet = ufc_model::StorageFleet::new(1.0, 0.5);
        let with = inst.with_storage(fleet.initial_params(2)).unwrap();
        let s = BlockSchedule::for_instance(&with);
        assert!(s.has_storage());
        assert_eq!(s.blocks()[3].dimension, 2);
    }

    #[test]
    fn block_kind_wire_ids_round_trip_and_stay_stable() {
        for (kind, id) in [
            (BlockKind::Routing, 0u8),
            (BlockKind::FuelCell, 1),
            (BlockKind::Grid, 2),
            (BlockKind::Storage, 3),
            (BlockKind::Auxiliary, 4),
        ] {
            assert_eq!(kind.wire_id(), id);
            assert_eq!(BlockKind::from_wire_id(id), Some(kind));
        }
        assert_eq!(BlockKind::from_wire_id(5), None);
    }

    /// A transport that reports a storage schedule must still see exactly
    /// one FrontEnd and one Datacenter prediction phase per iteration —
    /// the default `predict_phase` dispatch reaches the classic methods.
    #[test]
    fn driver_iterates_schedule_phases() {
        struct WithStorageSchedule(Scripted);
        impl Transport for WithStorageSchedule {
            fn schedule(&self) -> BlockSchedule {
                BlockSchedule::with_storage()
            }
            fn predict_lambda(&mut self, k: usize) -> Result<()> {
                self.0.predict_lambda(k)
            }
            fn step_datacenters(&mut self, k: usize) -> Result<()> {
                self.0.step_datacenters(k)
            }
            fn correct(&mut self, k: usize) -> Result<BlockResiduals> {
                self.0.correct(k)
            }
        }
        let mut t = WithStorageSchedule(Scripted {
            calls: Vec::new(),
            converge_at: 1,
        });
        let outcome = drive(&mut t, &AdmgSettings::default(), (0.5, 0.5, 0.5), &mut ())
            .expect("scripted transport cannot fail");
        assert!(outcome.converged);
        assert_eq!(t.0.calls, vec!["lambda", "site", "correct"]);
    }

    #[test]
    fn driver_sequences_phases_and_stops() {
        let mut t = Scripted {
            calls: Vec::new(),
            converge_at: 2,
        };
        let settings = AdmgSettings::default();
        let mut recorder = HistoryRecorder::default();
        let outcome = drive(&mut t, &settings, (0.5, 0.5, 0.5), &mut recorder)
            .expect("scripted transport cannot fail");
        assert!(outcome.converged);
        assert_eq!(outcome.iterations, 2);
        assert_eq!(
            t.calls,
            vec![
                "begin",
                "lambda",
                "site",
                "correct",
                "finish",
                "begin",
                "lambda",
                "site",
                "correct",
                "finish/stop",
            ]
        );
        let history = recorder.into_history();
        assert_eq!(history.len(), 2);
        assert_eq!(history[0].iteration, 0);
        assert!(history[1].objective.is_nan(), "no objective => NaN record");
    }

    #[test]
    fn driver_hits_iteration_cap_without_convergence() {
        let mut t = Scripted {
            calls: Vec::new(),
            converge_at: usize::MAX,
        };
        let settings = AdmgSettings {
            max_iterations: 3,
            ..AdmgSettings::default()
        };
        let outcome = drive(&mut t, &settings, (0.5, 0.5, 0.5), &mut ())
            .expect("scripted transport cannot fail");
        assert!(!outcome.converged);
        assert_eq!(outcome.iterations, 3);
    }

    /// A transport that replays a scripted residual stream, optionally with
    /// rollback support, for exercising the divergence gate alone.
    struct Diverging {
        /// Link residual per iteration (1-based index − 1, shifted by
        /// `offset` after a rollback); the last entry repeats past the end.
        script: Vec<f64>,
        suspect: Option<String>,
        checkpoint: Option<usize>,
        rollbacks: usize,
        /// Residual served after a rollback instead of replaying the script.
        post_rollback: Option<f64>,
        offset: usize,
    }

    impl Diverging {
        fn new(script: Vec<f64>) -> Self {
            Diverging {
                script,
                suspect: None,
                checkpoint: None,
                rollbacks: 0,
                post_rollback: None,
                offset: 0,
            }
        }
    }

    impl Transport for Diverging {
        fn predict_lambda(&mut self, _k: usize) -> Result<()> {
            Ok(())
        }
        fn step_datacenters(&mut self, _k: usize) -> Result<()> {
            Ok(())
        }
        fn correct(&mut self, k: usize) -> Result<BlockResiduals> {
            let link = match self.post_rollback {
                Some(post) if self.rollbacks > 0 => post,
                _ => *self
                    .script
                    .get(k - 1 - self.offset)
                    .or(self.script.last())
                    .expect("nonempty script"),
            };
            Ok(BlockResiduals {
                link,
                balance: 0.0,
                movement: 0.0,
            })
        }
        fn rollback(&mut self, k: usize) -> Result<Option<usize>> {
            if self.checkpoint.is_some() {
                self.rollbacks += 1;
                self.offset = k;
            }
            Ok(self.checkpoint)
        }
        fn divergence_suspect(&self) -> Option<String> {
            self.suspect.clone()
        }
    }

    #[test]
    fn gate_trips_immediately_on_non_finite_residuals() {
        let mut t = Diverging::new(vec![1.0, f64::NAN]);
        let err = drive(&mut t, &AdmgSettings::default(), (0.5, 0.5, 0.5), &mut ()).unwrap_err();
        match err {
            crate::CoreError::Divergence {
                phase,
                iteration,
                node,
                context,
            } => {
                assert_eq!(phase, "correct");
                assert_eq!(iteration, 2);
                assert!(node.is_none());
                assert!(context.contains("non-finite"), "context: {context}");
            }
            other => panic!("expected Divergence, got {other}"),
        }
    }

    #[test]
    fn gate_trips_on_sustained_residual_explosion_only() {
        let settings = AdmgSettings::default().with_divergence_gate(10.0, 3);
        // One spike (streak broken) is tolerated...
        let mut t = Diverging::new(vec![1.0, 100.0, 1.0, 1.0]);
        let capped = AdmgSettings {
            max_iterations: 10,
            ..settings
        };
        assert!(drive(&mut t, &capped, (0.5, 0.5, 0.5), &mut ()).is_ok());
        // ...but three consecutive iterations past κ×best trip the gate.
        let mut t = Diverging::new(vec![1.0, 100.0, 100.0, 100.0]);
        t.suspect = Some("datacenter[1]".to_string());
        let err = drive(&mut t, &capped, (0.5, 0.5, 0.5), &mut ()).unwrap_err();
        match err {
            crate::CoreError::Divergence {
                iteration, node, ..
            } => {
                assert_eq!(iteration, 4);
                assert_eq!(node.as_deref(), Some("datacenter[1]"));
            }
            other => panic!("expected Divergence, got {other}"),
        }
    }

    #[test]
    fn gate_rolls_back_when_enabled_and_supported() {
        let settings = AdmgSettings {
            max_iterations: 10,
            ..AdmgSettings::default()
                .with_divergence_gate(10.0, 2)
                .with_divergence_rollback(true)
        };
        let mut t = Diverging::new(vec![1.0, 100.0, 100.0]);
        t.checkpoint = Some(1);
        t.post_rollback = Some(0.0);
        let outcome =
            drive(&mut t, &settings, (0.5, 0.5, 0.5), &mut ()).expect("rollback repairs the run");
        assert!(outcome.converged);
        assert_eq!(t.rollbacks, 1);
        // Without rollback enabled the same script is a typed error.
        let mut t = Diverging::new(vec![1.0, 100.0, 100.0]);
        t.checkpoint = Some(1);
        let no_rollback = AdmgSettings {
            divergence_rollback: false,
            ..settings
        };
        assert!(drive(&mut t, &no_rollback, (0.5, 0.5, 0.5), &mut ()).is_err());
        assert_eq!(t.rollbacks, 0, "rollback must not run when disabled");
    }

    #[test]
    fn rollback_budget_is_bounded() {
        let settings = AdmgSettings {
            max_iterations: 200,
            ..AdmgSettings::default()
                .with_divergence_gate(10.0, 1)
                .with_divergence_rollback(true)
        };
        // Replays the same diverging script after every rollback.
        let mut t = Diverging::new(vec![1.0, 100.0]);
        t.checkpoint = Some(1);
        let err = drive(&mut t, &settings, (1e-9, 0.5, 0.5), &mut ()).unwrap_err();
        assert!(matches!(err, crate::CoreError::Divergence { .. }));
        assert_eq!(t.rollbacks, MAX_ROLLBACKS);
    }
}
