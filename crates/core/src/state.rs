use ufc_model::UfcInstance;

use crate::CoreError;

/// Byte codec used for checkpoint blobs: little-endian, length-prefixed
/// slices. Shared by [`AdmgState::to_bytes`] and the distributed runtime's
/// per-node snapshots (`ufc_distsim`).
pub mod codec {
    use crate::CoreError;

    /// Appends a `u32` length/shape field.
    pub fn put_u32(buf: &mut Vec<u8>, v: u32) {
        buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a length-prefixed `f64` slice.
    pub fn put_f64s(buf: &mut Vec<u8>, values: &[f64]) {
        put_u32(buf, u32::try_from(values.len()).expect("slice too long"));
        for v in values {
            buf.extend_from_slice(&v.to_le_bytes());
        }
    }

    /// Appends a single `f64` value, little-endian.
    pub fn put_f64(buf: &mut Vec<u8>, v: f64) {
        buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Reads a single `f64` value, advancing `pos`.
    ///
    /// # Errors
    ///
    /// [`CoreError::Checkpoint`] on truncation.
    pub fn get_f64(buf: &[u8], pos: &mut usize) -> Result<f64, CoreError> {
        let end = pos.checked_add(8).filter(|&e| e <= buf.len());
        let Some(end) = end else {
            return Err(CoreError::checkpoint("truncated f64 field"));
        };
        let v = f64::from_le_bytes(buf[*pos..end].try_into().expect("8-byte slice"));
        *pos = end;
        Ok(v)
    }

    /// Reads a `u32` field, advancing `pos`.
    ///
    /// # Errors
    ///
    /// [`CoreError::Checkpoint`] on truncation.
    pub fn get_u32(buf: &[u8], pos: &mut usize) -> Result<u32, CoreError> {
        let end = pos.checked_add(4).filter(|&e| e <= buf.len());
        let Some(end) = end else {
            return Err(CoreError::checkpoint("truncated u32 field"));
        };
        let v = u32::from_le_bytes(buf[*pos..end].try_into().expect("4-byte slice"));
        *pos = end;
        Ok(v)
    }

    /// Reads a length-prefixed `f64` slice, advancing `pos`.
    ///
    /// # Errors
    ///
    /// [`CoreError::Checkpoint`] on truncation or an implausible length.
    pub fn get_f64s(buf: &[u8], pos: &mut usize) -> Result<Vec<f64>, CoreError> {
        let len = get_u32(buf, pos)? as usize;
        let bytes = len
            .checked_mul(8)
            .filter(|&b| *pos + b <= buf.len())
            .ok_or_else(|| CoreError::checkpoint("truncated f64 slice"))?;
        let out = buf[*pos..*pos + bytes]
            .chunks_exact(8)
            .map(|c| f64::from_le_bytes(c.try_into().expect("8-byte chunk")))
            .collect();
        *pos += bytes;
        Ok(out)
    }

    /// Appends a length-prefixed boolean mask, one byte per entry.
    pub fn put_mask(buf: &mut Vec<u8>, mask: &[bool]) {
        put_u32(buf, u32::try_from(mask.len()).expect("mask too long"));
        buf.extend(mask.iter().map(|&b| u8::from(b)));
    }

    /// Reads a length-prefixed boolean mask, advancing `pos`.
    ///
    /// # Errors
    ///
    /// [`CoreError::Checkpoint`] on truncation.
    pub fn get_mask(buf: &[u8], pos: &mut usize) -> Result<Vec<bool>, CoreError> {
        let len = get_u32(buf, pos)? as usize;
        let end = pos
            .checked_add(len)
            .filter(|&e| e <= buf.len())
            .ok_or_else(|| CoreError::checkpoint("truncated bool mask"))?;
        let out = buf[*pos..end].iter().map(|&b| b != 0).collect();
        *pos = end;
        Ok(out)
    }

    /// Verifies a blob's magic prefix and returns the payload offset.
    ///
    /// # Errors
    ///
    /// [`CoreError::Checkpoint`] if the blob is shorter than the prefix or
    /// starts with different bytes.
    pub fn check_magic(buf: &[u8], magic: &[u8]) -> Result<usize, CoreError> {
        if buf.len() < magic.len() || &buf[..magic.len()] != magic {
            return Err(CoreError::checkpoint("bad magic number"));
        }
        Ok(magic.len())
    }
}

/// The full iterate of the distributed N-block ADM-G algorithm (the
/// classic schedule has four blocks; the storage extension adds a fifth).
///
/// Routing blocks (`λ`, its auxiliary copy `a`, and the link duals `φ_ij`)
/// are stored row-major as `M × N` flats; per-datacenter blocks (`μ`, `ν`,
/// the battery discharge `d`, the balance duals `φ_j`) as length-`N`
/// vectors. Everything is initialized to zero, exactly as the paper's
/// algorithm statement prescribes — the first λ-minimization immediately
/// restores the load-balance constraint. On spatial-only instances `d`
/// stays identically zero and every formula below reduces bit-exactly to
/// the 4-block algorithm.
#[derive(Debug, Clone, PartialEq)]
pub struct AdmgState {
    /// Number of front-ends `M`.
    pub m: usize,
    /// Number of datacenters `N`.
    pub n: usize,
    /// Request routing `λ_ij` (kilo-servers), row-major `M × N`.
    pub lambda: Vec<f64>,
    /// Fuel-cell output `μ_j` (MW).
    pub mu: Vec<f64>,
    /// Grid draw `ν_j` (MW).
    pub nu: Vec<f64>,
    /// Battery net discharge `d_j` (MW; positive discharges, negative
    /// charges). Identically zero without the storage block.
    pub d: Vec<f64>,
    /// Auxiliary routing copy `a_ij` (kilo-servers), row-major `M × N`.
    pub a: Vec<f64>,
    /// Balance duals `φ_j` (one per datacenter).
    pub phi: Vec<f64>,
    /// Link duals `φ_ij` ("varphi"), row-major `M × N`.
    pub varphi: Vec<f64>,
}

impl AdmgState {
    /// All-zero state shaped for `instance`.
    #[must_use]
    pub fn zeros(instance: &UfcInstance) -> Self {
        let m = instance.m_frontends();
        let n = instance.n_datacenters();
        AdmgState {
            m,
            n,
            lambda: vec![0.0; m * n],
            mu: vec![0.0; n],
            nu: vec![0.0; n],
            d: vec![0.0; n],
            a: vec![0.0; m * n],
            phi: vec![0.0; n],
            varphi: vec![0.0; m * n],
        }
    }

    /// Flat index of the `(i, j)` routing entry.
    ///
    /// # Panics
    ///
    /// Panics (debug) if `i` or `j` is out of range.
    #[inline]
    #[must_use]
    pub fn idx(&self, i: usize, j: usize) -> usize {
        debug_assert!(i < self.m && j < self.n, "index ({i},{j}) out of range");
        i * self.n + j
    }

    /// Borrow row `i` of `λ`.
    #[must_use]
    pub fn lambda_row(&self, i: usize) -> &[f64] {
        &self.lambda[i * self.n..(i + 1) * self.n]
    }

    /// Borrow row `i` of `a`.
    #[must_use]
    pub fn a_row(&self, i: usize) -> &[f64] {
        &self.a[i * self.n..(i + 1) * self.n]
    }

    /// Per-datacenter auxiliary load `Σ_i a_ij` (kilo-servers).
    #[must_use]
    #[allow(clippy::needless_range_loop)] // (i, j) index the routing grid
    pub fn a_loads(&self) -> Vec<f64> {
        let mut loads = vec![0.0; self.n];
        for i in 0..self.m {
            for j in 0..self.n {
                loads[j] += self.a[self.idx(i, j)];
            }
        }
        loads
    }

    /// Per-datacenter routed load `Σ_i λ_ij` (kilo-servers).
    #[must_use]
    #[allow(clippy::needless_range_loop)] // (i, j) index the routing grid
    pub fn lambda_loads(&self) -> Vec<f64> {
        let mut loads = vec![0.0; self.n];
        for i in 0..self.m {
            for j in 0..self.n {
                loads[j] += self.lambda[self.idx(i, j)];
            }
        }
        loads
    }

    /// Link residual `max_ij |λ_ij − a_ij|` (kilo-servers).
    #[must_use]
    pub fn link_residual(&self) -> f64 {
        self.lambda
            .iter()
            .zip(&self.a)
            .fold(0.0f64, |r, (l, a)| r.max((l - a).abs()))
    }

    /// Power-balance residual `max_j |α_j + β_j Σ_i a_ij − μ_j − ν_j − d_j|`
    /// (MW). The battery term is identically zero without the storage
    /// block, reducing bit-exactly to the 4-block residual.
    #[must_use]
    pub fn balance_residual(&self, instance: &UfcInstance) -> f64 {
        let loads = self.a_loads();
        (0..self.n).fold(0.0f64, |r, j| {
            r.max((instance.demand_mw(j, loads[j]) - self.mu[j] - self.nu[j] - self.d[j]).abs())
        })
    }

    /// Serializes the full iterate into a self-describing little-endian
    /// blob (magic + `M`/`N` shape + the seven blocks), for checkpointing
    /// in the distributed runtime.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(16 + 8 * (3 * self.m * self.n + 4 * self.n));
        buf.extend_from_slice(Self::MAGIC);
        codec::put_u32(&mut buf, u32::try_from(self.m).expect("m fits u32"));
        codec::put_u32(&mut buf, u32::try_from(self.n).expect("n fits u32"));
        codec::put_f64s(&mut buf, &self.lambda);
        codec::put_f64s(&mut buf, &self.mu);
        codec::put_f64s(&mut buf, &self.nu);
        codec::put_f64s(&mut buf, &self.a);
        codec::put_f64s(&mut buf, &self.phi);
        codec::put_f64s(&mut buf, &self.varphi);
        codec::put_f64s(&mut buf, &self.d);
        buf
    }

    /// Deserializes a blob produced by [`AdmgState::to_bytes`].
    ///
    /// # Errors
    ///
    /// [`CoreError::Checkpoint`] on a bad magic number, truncation, or
    /// block lengths inconsistent with the recorded `M × N` shape.
    pub fn from_bytes(buf: &[u8]) -> Result<Self, CoreError> {
        let mut pos = codec::check_magic(buf, Self::MAGIC)?;
        let m = codec::get_u32(buf, &mut pos)? as usize;
        let n = codec::get_u32(buf, &mut pos)? as usize;
        let lambda = codec::get_f64s(buf, &mut pos)?;
        let mu = codec::get_f64s(buf, &mut pos)?;
        let nu = codec::get_f64s(buf, &mut pos)?;
        let a = codec::get_f64s(buf, &mut pos)?;
        let phi = codec::get_f64s(buf, &mut pos)?;
        let varphi = codec::get_f64s(buf, &mut pos)?;
        let d = codec::get_f64s(buf, &mut pos)?;
        let state = AdmgState {
            m,
            n,
            lambda,
            mu,
            nu,
            d,
            a,
            phi,
            varphi,
        };
        let routing_ok =
            state.lambda.len() == m * n && state.a.len() == m * n && state.varphi.len() == m * n;
        let site_ok = state.mu.len() == n
            && state.nu.len() == n
            && state.phi.len() == n
            && state.d.len() == n;
        if !routing_ok || !site_ok {
            return Err(CoreError::checkpoint(format!(
                "block lengths inconsistent with shape {m}×{n}"
            )));
        }
        Ok(state)
    }

    /// Magic prefix of serialized state blobs (`UFCS` + format version 2;
    /// version 2 appended the battery-discharge block `d`).
    pub const MAGIC: &'static [u8] = b"UFCS\x02";

    /// The ADMM-form objective (12) at the current `(λ, μ, ν, d)` in
    /// dollars:
    /// `Σ_j [V_j(C_j ν_j h) + h p_j ν_j + h p₀ μ_j + γ h d_j² + κ_j h d_j]
    /// − w Σ_i U(λ_i)`. The battery terms are the solver's surrogate cost
    /// (degradation plus the κ opportunity value of drained energy) and
    /// vanish without the storage block.
    #[must_use]
    pub fn objective(&self, instance: &UfcInstance) -> f64 {
        let h = instance.slot_hours;
        let mut obj = 0.0;
        for j in 0..self.n {
            let tons = instance.carbon_t_per_mwh[j] * self.nu[j] * h;
            obj += instance.emission_cost[j].value(tons)
                + h * instance.grid_price[j] * self.nu[j]
                + h * instance.fuel_cell_price * self.mu[j];
        }
        if let Some(sp) = &instance.storage {
            for j in 0..self.n {
                obj += sp.degradation_per_mwh * h * self.d[j] * self.d[j]
                    + sp.value_per_mwh[j] * h * self.d[j];
            }
        }
        let w = instance.weight_per_kserver();
        for i in 0..self.m {
            obj -= w * ufc_model::utility::quadratic_utility(
                self.lambda_row(i),
                &instance.latency_s[i],
                instance.arrivals[i],
            );
        }
        if let Some(q) = &instance.queueing {
            for (j, load) in self.lambda_loads().iter().enumerate() {
                obj += q.value(load.max(0.0), instance.capacities[j]);
            }
        }
        obj
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ufc_model::EmissionCostFn;

    fn tiny() -> UfcInstance {
        UfcInstance::new(
            vec![1.0, 2.0],
            vec![2.0, 2.0],
            vec![0.24, 0.24],
            vec![0.12, 0.12],
            vec![0.48, 0.48],
            vec![30.0, 70.0],
            80.0,
            vec![0.5, 0.3],
            vec![vec![0.01, 0.02], vec![0.02, 0.01]],
            10.0,
            vec![
                EmissionCostFn::linear(25.0).unwrap(),
                EmissionCostFn::linear(25.0).unwrap(),
            ],
            1.0,
        )
        .unwrap()
    }

    #[test]
    fn scalar_codec_round_trips_and_rejects_truncation() {
        let mut buf = Vec::new();
        codec::put_f64(&mut buf, -0.0);
        codec::put_f64(&mut buf, 1e-300);
        let mut pos = 0;
        assert_eq!(
            codec::get_f64(&buf, &mut pos).unwrap().to_bits(),
            (-0.0f64).to_bits()
        );
        assert_eq!(codec::get_f64(&buf, &mut pos).unwrap(), 1e-300);
        assert!(codec::get_f64(&buf, &mut pos).is_err(), "past the end");
        let mut pos = buf.len() - 3;
        assert!(codec::get_f64(&buf, &mut pos).is_err(), "truncated tail");
    }

    #[test]
    fn zeros_shape() {
        let s = AdmgState::zeros(&tiny());
        assert_eq!(s.m, 2);
        assert_eq!(s.n, 2);
        assert_eq!(s.lambda.len(), 4);
        assert_eq!(s.mu.len(), 2);
        assert!(s.lambda.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn loads_and_residuals() {
        let inst = tiny();
        let mut s = AdmgState::zeros(&inst);
        s.lambda = vec![0.5, 0.5, 1.0, 1.0];
        s.a = vec![0.5, 0.5, 1.0, 1.0];
        assert_eq!(s.lambda_loads(), vec![1.5, 1.5]);
        assert_eq!(s.a_loads(), vec![1.5, 1.5]);
        assert_eq!(s.link_residual(), 0.0);
        // Demand 0.42 MW per DC, μ = ν = 0 ⇒ balance residual 0.42.
        assert!((s.balance_residual(&inst) - 0.42).abs() < 1e-12);
        s.nu = vec![0.42, 0.42];
        assert!(s.balance_residual(&inst) < 1e-12);
        s.a[0] = 0.0;
        assert!((s.link_residual() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn byte_round_trip_is_exact() {
        let inst = tiny();
        let mut s = AdmgState::zeros(&inst);
        s.lambda = vec![0.5, -0.25, 1.0, f64::MIN_POSITIVE];
        s.mu = vec![0.1, 0.2];
        s.nu = vec![0.42, 1e-300];
        s.d = vec![-0.125, 0.0625];
        s.a = vec![0.5, 0.5, 1.0, 1.0];
        s.phi = vec![-3.25, 7.5];
        s.varphi = vec![0.0, -0.0, 2.5, 9.75];
        let blob = s.to_bytes();
        let back = AdmgState::from_bytes(&blob).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn from_bytes_rejects_corruption() {
        let s = AdmgState::zeros(&tiny());
        let blob = s.to_bytes();
        // Bad magic.
        let mut bad = blob.clone();
        bad[0] = b'X';
        assert!(matches!(
            AdmgState::from_bytes(&bad),
            Err(CoreError::Checkpoint { .. })
        ));
        // Truncation.
        assert!(AdmgState::from_bytes(&blob[..blob.len() - 3]).is_err());
        assert!(AdmgState::from_bytes(&blob[..4]).is_err());
        // Shape mismatch: lie about n.
        let mut lied = blob;
        lied[AdmgState::MAGIC.len() + 4] = 3;
        assert!(AdmgState::from_bytes(&lied).is_err());
    }

    #[test]
    fn objective_matches_manual_computation() {
        let inst = tiny();
        let mut s = AdmgState::zeros(&inst);
        s.lambda = vec![1.0, 0.0, 0.0, 2.0];
        s.nu = vec![0.36, 0.48];
        s.mu = vec![0.0, 0.0];
        // Energy: 0.36·30 + 0.48·70 = 44.4; carbon: (0.36·0.5 + 0.48·0.3)·25 = 8.1.
        // Disutility: w=1e4; U₁ = −(1·0.01)²/1 = −1e−4; U₂ = −(2·0.01)²/2 = −2e−4.
        // −w(U₁+U₂) = 1e4·3e−4 = 3.
        let expected = 44.4 + 8.1 + 3.0;
        assert!((s.objective(&inst) - expected).abs() < 1e-9);
    }
}
