//! Property tests for the storage block (satellite of the N-block
//! refactor): on randomized instances with randomized batteries the solved
//! point must respect the charge-state and ramp boxes, and a zero-capacity
//! fleet must reproduce the spatial-only solution bit for bit.

use proptest::prelude::*;
// `ufc_core::Strategy` (the sourcing policy) shadows the prelude's
// `Strategy` trait; pull the trait in anonymously for `prop_map`.
use proptest::strategy::Strategy as _;
use ufc_core::{AdmgSettings, AdmgSolver, Strategy};
use ufc_model::{EmissionCostFn, StorageParams, UfcInstance};

/// A randomized but well-posed 3×2 instance (same shape as
/// `tests/algorithm.rs`).
fn random_instance(
    arrivals: Vec<f64>,
    prices: Vec<f64>,
    carbon: Vec<f64>,
    p0: f64,
    tax: f64,
) -> UfcInstance {
    UfcInstance::new(
        arrivals,
        vec![3.0, 3.0],
        vec![0.36, 0.36],
        vec![0.12, 0.12],
        vec![0.72, 0.72],
        prices,
        p0,
        carbon,
        vec![vec![0.008, 0.025], vec![0.020, 0.010], vec![0.015, 0.018]],
        10.0,
        vec![
            EmissionCostFn::linear(tax).unwrap(),
            EmissionCostFn::linear(tax).unwrap(),
        ],
        1.0,
    )
    .unwrap()
}

/// Randomized per-datacenter battery + ramp data. Capacities of zero are
/// deliberately in range so the "inactive datacenter" path is exercised
/// alongside active ones.
#[allow(clippy::too_many_arguments)]
fn random_storage(
    caps: [f64; 2],
    charge_fracs: [f64; 2],
    rate: f64,
    kappa: f64,
    gamma: f64,
    ramp: [f64; 2],
    mu_prev_fracs: [f64; 2],
    mu_max: &[f64],
) -> StorageParams {
    StorageParams {
        capacity_mwh: caps.to_vec(),
        charge_mwh: vec![charge_fracs[0] * caps[0], charge_fracs[1] * caps[1]],
        charge_rate_mw: vec![rate; 2],
        discharge_rate_mw: vec![rate; 2],
        value_per_mwh: vec![kappa; 2],
        degradation_per_mwh: gamma,
        ramp_mw: ramp.to_vec(),
        mu_prev_mw: vec![mu_prev_fracs[0] * mu_max[0], mu_prev_fracs[1] * mu_max[1]],
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The solved point keeps every datacenter inside its discharge and
    /// ramp boxes, advances the charge state within `[0, capacity]`, and
    /// pins `d_j = +0.0` exactly where there is no battery.
    #[test]
    fn charge_state_and_ramp_bounds_hold(
        a1 in 0.5f64..2.0,
        a2 in 0.5f64..2.0,
        a3 in 0.5f64..2.0,
        p1 in 15.0f64..120.0,
        p2 in 15.0f64..120.0,
        p0 in 30.0f64..110.0,
        // Maps below fold a slice of each range onto the degenerate value
        // (no battery / no ramp limit) so both paths are exercised.
        cap1 in (0.0f64..1.5).prop_map(|c| if c < 0.2 { 0.0 } else { c }),
        cap2 in (0.0f64..1.5).prop_map(|c| if c < 0.2 { 0.0 } else { c }),
        frac1 in 0.0f64..1.0,
        frac2 in 0.0f64..1.0,
        rate in 0.1f64..1.0,
        kappa in 0.0f64..100.0,
        gamma in 0.0f64..2.0,
        ramp1 in (0.0f64..0.5).prop_map(|r| if r < 0.05 { f64::INFINITY } else { r }),
        ramp2 in (0.0f64..0.5).prop_map(|r| if r < 0.05 { f64::INFINITY } else { r }),
        mp1 in 0.0f64..1.0,
        mp2 in 0.0f64..1.0,
    ) {
        let plain = random_instance(vec![a1, a2, a3], vec![p1, p2], vec![0.4, 0.3], p0, 25.0);
        let storage = random_storage(
            [cap1, cap2],
            [frac1, frac2],
            rate,
            kappa,
            gamma,
            [ramp1, ramp2],
            [mp1, mp2],
            &plain.mu_max,
        );
        let h = plain.slot_hours;
        let inst = plain.with_storage(storage.clone()).unwrap();
        // Tight ramp boxes can make the splitting converge slowly on
        // adversarial draws; give those cases more iterations.
        let settings = AdmgSettings {
            max_iterations: 10_000,
            ..AdmgSettings::default()
        };
        let sol = AdmgSolver::new(settings)
            .solve(&inst, Strategy::Hybrid)
            .unwrap();
        prop_assert!(sol.converged, "did not converge: {:?}", sol.history.last());

        let tol = 1e-9;
        for j in 0..2 {
            let d = sol.point.d[j];
            if !storage.active(j) {
                prop_assert_eq!(
                    d.to_bits(),
                    0.0f64.to_bits(),
                    "inactive datacenter {} has d = {}",
                    j,
                    d
                );
                continue;
            }
            let (d_lo, d_hi) = storage.discharge_bounds(j, h);
            prop_assert!(
                d >= d_lo - tol && d <= d_hi + tol,
                "d[{}] = {} leaves [{}, {}]",
                j, d, d_lo, d_hi
            );
            // Charge advance stays a valid state for the next slot.
            let next = storage.charge_mwh[j] - d * h;
            prop_assert!(
                next >= -tol && next <= storage.capacity_mwh[j] + tol,
                "next charge {} MWh leaves [0, {}]",
                next, storage.capacity_mwh[j]
            );
        }
        for j in 0..2 {
            let mu = sol.point.mu[j];
            let (mu_lo, mu_hi) = storage.mu_bounds(j, inst.mu_max[j]);
            prop_assert!(
                mu >= mu_lo - tol && mu <= mu_hi + tol,
                "mu[{}] = {} leaves ramp box [{}, {}]",
                j, mu, mu_lo, mu_hi
            );
            prop_assert!(mu >= -tol && mu <= inst.mu_max[j] + tol);
        }
    }

    /// Attaching a fleet of zero-capacity batteries (with an unconstrained
    /// ramp) is the degenerate 5th block: the solution must be bit-identical
    /// to the plain spatial-only instance.
    #[test]
    fn zero_capacity_batteries_reproduce_spatial_only_bit_for_bit(
        a1 in 0.5f64..2.0,
        a2 in 0.5f64..2.0,
        a3 in 0.5f64..2.0,
        p1 in 15.0f64..120.0,
        p2 in 15.0f64..120.0,
        p0 in 30.0f64..110.0,
        tax in 0.0f64..100.0,
        kappa in 0.0f64..100.0,
        gamma in 0.0f64..2.0,
    ) {
        let plain = random_instance(vec![a1, a2, a3], vec![p1, p2], vec![0.5, 0.25], p0, tax);
        let storage = random_storage(
            [0.0, 0.0],
            [0.0, 0.0],
            0.5,
            kappa,
            gamma,
            [f64::INFINITY, f64::INFINITY],
            [0.0, 0.0],
            &plain.mu_max,
        );
        let stored = plain.clone().with_storage(storage).unwrap();
        let solver = AdmgSolver::new(AdmgSettings::default());
        let base = solver.solve(&plain, Strategy::Hybrid).unwrap();
        let five = solver.solve(&stored, Strategy::Hybrid).unwrap();

        prop_assert_eq!(five.iterations, base.iterations);
        for (row5, row4) in five.point.lambda.iter().zip(&base.point.lambda) {
            for (x5, x4) in row5.iter().zip(row4) {
                prop_assert_eq!(x5.to_bits(), x4.to_bits());
            }
        }
        for (x5, x4) in five.point.mu.iter().zip(&base.point.mu) {
            prop_assert_eq!(x5.to_bits(), x4.to_bits());
        }
        for (x5, x4) in five.point.nu.iter().zip(&base.point.nu) {
            prop_assert_eq!(x5.to_bits(), x4.to_bits());
        }
        for &d in &five.point.d {
            prop_assert_eq!(d.to_bits(), 0.0f64.to_bits());
        }
        prop_assert_eq!(five.breakdown.storage_mwh.to_bits(), 0.0f64.to_bits());
        prop_assert_eq!(
            five.breakdown.storage_cost_dollars.to_bits(),
            0.0f64.to_bits()
        );
        prop_assert_eq!(
            five.breakdown.ufc().to_bits(),
            base.breakdown.ufc().to_bits()
        );
    }
}
