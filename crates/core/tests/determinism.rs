//! Parallel determinism: the worker-pool fan-out must be *bit-identical*
//! to the sequential path, not merely close. Every per-block sub-problem
//! writes an indexed slot and the gather walks the slots in block order,
//! so the floating-point evaluation order inside each block — and hence
//! every rounding decision — is independent of the thread count.

use ufc_core::{AdmgSettings, AdmgSolver, Strategy};
use ufc_model::scenario::ScenarioBuilder;

fn bits(xs: &[f64]) -> Vec<u64> {
    xs.iter().map(|x| x.to_bits()).collect()
}

/// Runs the Table 1 instance at the given thread count.
fn solve_with_threads(threads: usize) -> ufc_core::AdmgSolution {
    let scenario = ScenarioBuilder::paper_default().hours(1).build().unwrap();
    let settings = AdmgSettings::default().with_threads(threads);
    AdmgSolver::new(settings)
        .solve(&scenario.instances[0], Strategy::Hybrid)
        .unwrap()
}

#[test]
fn thread_count_does_not_change_a_single_bit() {
    let sequential = solve_with_threads(1);
    assert!(sequential.converged);

    for threads in [2usize, 4, 8] {
        let parallel = solve_with_threads(threads);
        assert_eq!(
            sequential.iterations, parallel.iterations,
            "{threads} threads took a different number of iterations"
        );
        assert_eq!(sequential.converged, parallel.converged);

        // Full residual/objective trajectory, bit for bit.
        assert_eq!(sequential.history.len(), parallel.history.len());
        for (s, p) in sequential.history.iter().zip(&parallel.history) {
            assert_eq!(s.iteration, p.iteration);
            assert_eq!(
                s.link_residual.to_bits(),
                p.link_residual.to_bits(),
                "link residual diverged at iteration {} with {threads} threads",
                s.iteration
            );
            assert_eq!(s.balance_residual.to_bits(), p.balance_residual.to_bits());
            assert_eq!(s.dual_residual.to_bits(), p.dual_residual.to_bits());
            assert_eq!(s.objective.to_bits(), p.objective.to_bits());
        }

        // Final raw iterate, bit for bit.
        assert_eq!(bits(&sequential.state.lambda), bits(&parallel.state.lambda));
        assert_eq!(bits(&sequential.state.mu), bits(&parallel.state.mu));
        assert_eq!(bits(&sequential.state.nu), bits(&parallel.state.nu));
        assert_eq!(bits(&sequential.state.a), bits(&parallel.state.a));
        assert_eq!(bits(&sequential.state.phi), bits(&parallel.state.phi));
        assert_eq!(bits(&sequential.state.varphi), bits(&parallel.state.varphi));

        // Polished point and UFC, bit for bit.
        assert_eq!(bits(&sequential.point.mu), bits(&parallel.point.mu));
        assert_eq!(
            sequential.breakdown.ufc().to_bits(),
            parallel.breakdown.ufc().to_bits()
        );
    }
}

#[test]
fn auto_thread_count_matches_sequential() {
    // num_threads = 0 resolves to the machine's available parallelism;
    // whatever that is, the answer must not move.
    let sequential = solve_with_threads(1);
    let auto = solve_with_threads(0);
    assert_eq!(sequential.iterations, auto.iterations);
    assert_eq!(bits(&sequential.state.lambda), bits(&auto.state.lambda));
    assert_eq!(
        sequential.breakdown.ufc().to_bits(),
        auto.breakdown.ufc().to_bits()
    );
}
