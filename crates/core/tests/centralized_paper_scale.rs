//! Both centralized backends must handle the full paper-scale problem
//! (M = 10, N = 4 ⇒ 48 variables, ~70 constraints) and agree with ADM-G.

use ufc_core::{centralized, AdmgSettings, AdmgSolver, Strategy};
use ufc_model::scenario::ScenarioBuilder;

#[test]
fn active_set_backend_solves_paper_scale() {
    let scenario = ScenarioBuilder::paper_default().hours(3).build().unwrap();
    for (t, inst) in scenario.instances.iter().enumerate() {
        let asol = centralized::solve(inst, Strategy::Hybrid, centralized::Backend::ActiveSet)
            .unwrap_or_else(|e| panic!("hour {t}: active-set backend failed: {e}"));
        let admm = centralized::solve(inst, Strategy::Hybrid, centralized::Backend::Admm).unwrap();
        let scale = admm.breakdown.ufc().abs().max(1.0);
        assert!(
            (asol.breakdown.ufc() - admm.breakdown.ufc()).abs() / scale < 1e-3,
            "hour {t}: backends disagree: {} vs {}",
            asol.breakdown.ufc(),
            admm.breakdown.ufc()
        );
    }
}

#[test]
fn active_set_backend_matches_admg_paper_scale() {
    let scenario = ScenarioBuilder::paper_default().hours(2).build().unwrap();
    let solver = AdmgSolver::new(AdmgSettings::default());
    for inst in &scenario.instances {
        let central =
            centralized::solve(inst, Strategy::Hybrid, centralized::Backend::ActiveSet).unwrap();
        let admg = solver.solve(inst, Strategy::Hybrid).unwrap();
        let scale = central.breakdown.ufc().abs().max(1.0);
        assert!(
            (central.breakdown.ufc() - admg.breakdown.ufc()).abs() / scale < 5e-3,
            "ADM-G {} vs centralized active-set {}",
            admg.breakdown.ufc(),
            central.breakdown.ufc()
        );
    }
}
