//! Cross-cutting algorithm tests: ADM-G vs the centralized reference on
//! randomized instances, strategy dominance, and robustness to emission-cost
//! shapes.

use proptest::prelude::*;
use ufc_core::{centralized, AdmgSettings, AdmgSolver, Strategy};
use ufc_model::{EmissionCostFn, UfcInstance};

/// A randomized but well-posed 3×2 instance.
fn random_instance(
    arrivals: Vec<f64>,
    prices: Vec<f64>,
    carbon: Vec<f64>,
    p0: f64,
    tax: f64,
) -> UfcInstance {
    UfcInstance::new(
        arrivals,
        vec![3.0, 3.0],
        vec![0.36, 0.36],
        vec![0.12, 0.12],
        vec![0.72, 0.72],
        prices,
        p0,
        carbon,
        vec![vec![0.008, 0.025], vec![0.020, 0.010], vec![0.015, 0.018]],
        10.0,
        vec![
            EmissionCostFn::linear(tax).unwrap(),
            EmissionCostFn::linear(tax).unwrap(),
        ],
        1.0,
    )
    .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// ADM-G lands within 0.5% of the centralized optimum across random
    /// price/carbon/arrival configurations.
    #[test]
    fn admg_matches_centralized(
        a1 in 0.5f64..2.0,
        a2 in 0.5f64..2.0,
        a3 in 0.5f64..2.0,
        p1 in 15.0f64..120.0,
        p2 in 15.0f64..120.0,
        c1 in 0.1f64..0.8,
        c2 in 0.1f64..0.8,
        p0 in 30.0f64..110.0,
        tax in 0.0f64..100.0,
    ) {
        let inst = random_instance(vec![a1, a2, a3], vec![p1, p2], vec![c1, c2], p0, tax);
        let admg = AdmgSolver::new(AdmgSettings::default())
            .solve(&inst, Strategy::Hybrid)
            .unwrap();
        prop_assert!(admg.converged, "did not converge: {:?}", admg.history.last());
        let cen = centralized::solve(&inst, Strategy::Hybrid, centralized::Backend::Admm).unwrap();
        let scale = cen.breakdown.ufc().abs().max(10.0);
        prop_assert!(
            (admg.breakdown.ufc() - cen.breakdown.ufc()).abs() / scale < 5e-3,
            "ADM-G {} vs centralized {}",
            admg.breakdown.ufc(),
            cen.breakdown.ufc()
        );
    }

    /// Hybrid dominates both single-source strategies on every instance
    /// (its feasible set contains theirs).
    #[test]
    fn hybrid_dominates(
        a1 in 0.5f64..2.0,
        p1 in 15.0f64..120.0,
        p2 in 15.0f64..120.0,
        p0 in 30.0f64..110.0,
    ) {
        let inst = random_instance(vec![a1, 1.0, 1.0], vec![p1, p2], vec![0.5, 0.3], p0, 25.0);
        let solver = AdmgSolver::new(AdmgSettings::default());
        let hybrid = solver.solve(&inst, Strategy::Hybrid).unwrap();
        let grid = solver.solve(&inst, Strategy::GridOnly).unwrap();
        let fc = solver.solve(&inst, Strategy::FuelCellOnly).unwrap();
        let tol = 1e-3 * hybrid.breakdown.ufc().abs().max(1.0);
        prop_assert!(hybrid.breakdown.ufc() >= grid.breakdown.ufc() - tol);
        prop_assert!(hybrid.breakdown.ufc() >= fc.breakdown.ufc() - tol);
    }
}

#[test]
fn cheap_fuel_cells_get_fully_used() {
    // p0 far below every effective grid price ⇒ hybrid ≈ fuel-cell-only.
    let inst = random_instance(
        vec![1.0, 1.0, 1.0],
        vec![80.0, 90.0],
        vec![0.5, 0.5],
        5.0,
        25.0,
    );
    let sol = AdmgSolver::new(AdmgSettings::default())
        .solve(&inst, Strategy::Hybrid)
        .unwrap();
    assert!(
        sol.breakdown.fuel_cell_utilization > 0.99,
        "utilization {}",
        sol.breakdown.fuel_cell_utilization
    );
}

#[test]
fn expensive_fuel_cells_stay_idle() {
    // p0 far above every effective grid price ⇒ hybrid ≈ grid-only.
    let inst = random_instance(
        vec![1.0, 1.0, 1.0],
        vec![20.0, 25.0],
        vec![0.3, 0.3],
        500.0,
        5.0,
    );
    let sol = AdmgSolver::new(AdmgSettings::default())
        .solve(&inst, Strategy::Hybrid)
        .unwrap();
    assert!(
        sol.breakdown.fuel_cell_utilization < 0.01,
        "utilization {}",
        sol.breakdown.fuel_cell_utilization
    );
}

#[test]
fn high_carbon_tax_pushes_to_fuel_cells() {
    // Same prices, tax cranked to $500/ton: grid becomes effectively
    // 20 + 0.5·500 = 270 $/MWh against p0 = 80 ⇒ fuel cells win.
    let inst = random_instance(
        vec![1.0, 1.0, 1.0],
        vec![20.0, 25.0],
        vec![0.5, 0.5],
        80.0,
        500.0,
    );
    let sol = AdmgSolver::new(AdmgSettings::default())
        .solve(&inst, Strategy::Hybrid)
        .unwrap();
    assert!(
        sol.breakdown.fuel_cell_utilization > 0.99,
        "utilization {}",
        sol.breakdown.fuel_cell_utilization
    );
    // Near-zero emissions (a whisker of grid draw survives the finite
    // stopping tolerance; grid-only would emit ≈ 0.5 t here).
    assert!(
        sol.breakdown.carbon_tons < 0.01,
        "tons {}",
        sol.breakdown.carbon_tons
    );
}

#[test]
fn stepped_tariff_runs_through_admg() {
    // ADM-G's ν-step handles the stepped tariff the centralized QP cannot.
    let mut inst = random_instance(
        vec![1.0, 1.0, 1.0],
        vec![40.0, 45.0],
        vec![0.5, 0.4],
        80.0,
        0.0,
    );
    inst.emission_cost = vec![
        EmissionCostFn::stepped(vec![0.2, 0.5], vec![10.0, 60.0, 200.0]).unwrap(),
        EmissionCostFn::stepped(vec![0.2, 0.5], vec![10.0, 60.0, 200.0]).unwrap(),
    ];
    let sol = AdmgSolver::new(AdmgSettings::default())
        .solve(&inst, Strategy::Hybrid)
        .unwrap();
    assert!(sol.converged);
    assert!(sol.point.feasibility_residual(&inst) < 1e-6);
    // The bracket structure shows: emissions land at or below a knee rather
    // than deep in the expensive bracket.
    assert!(
        sol.breakdown.carbon_tons < 0.55,
        "tons {}",
        sol.breakdown.carbon_tons
    );
}

#[test]
fn paper_verbatim_rho_also_converges() {
    let inst = random_instance(
        vec![1.0, 1.5, 0.8],
        vec![35.0, 75.0],
        vec![0.55, 0.3],
        80.0,
        25.0,
    );
    let default = AdmgSolver::new(AdmgSettings::default())
        .solve(&inst, Strategy::Hybrid)
        .unwrap();
    let verbatim = AdmgSolver::new(AdmgSettings::paper_verbatim())
        .solve(&inst, Strategy::Hybrid)
        .unwrap();
    assert!(verbatim.converged);
    assert!(
        (default.breakdown.ufc() - verbatim.breakdown.ufc()).abs()
            < 1e-2 * default.breakdown.ufc().abs(),
        "rho choices disagree: {} vs {}",
        default.breakdown.ufc(),
        verbatim.breakdown.ufc()
    );
}

#[test]
fn fista_subproblems_match_active_set() {
    use ufc_core::SubproblemMethod;
    let inst = random_instance(
        vec![1.2, 0.9, 1.4],
        vec![30.0, 65.0],
        vec![0.5, 0.25],
        80.0,
        25.0,
    );
    let exact = AdmgSolver::new(AdmgSettings::default())
        .solve(&inst, Strategy::Hybrid)
        .unwrap();
    let fista = AdmgSolver::new(AdmgSettings::default().with_method(SubproblemMethod::Fista))
        .solve(&inst, Strategy::Hybrid)
        .unwrap();
    assert!(fista.converged);
    assert!(
        (exact.breakdown.ufc() - fista.breakdown.ufc()).abs()
            < 1e-3 * exact.breakdown.ufc().abs().max(1.0),
        "methods disagree: {} vs {}",
        exact.breakdown.ufc(),
        fista.breakdown.ufc()
    );
}
