//! The congestion (queueing) extension: ADM-G with a convex non-quadratic
//! a-step solved by backtracking FISTA.

use ufc_core::{centralized, AdmgSettings, AdmgSolver, CoreError, Strategy};

/// The congestion barrier's curvature slows the splitting at the paper's
/// default penalty; a larger ρ (and headroom in the iteration cap) is the
/// documented recommendation for congested instances.
fn congested_settings() -> AdmgSettings {
    let mut s = AdmgSettings::default().with_rho(8.0);
    s.max_iterations = 6000;
    s
}

/// The default congested solve, shared across tests (it is the expensive
/// part of this suite).
fn congested_solution() -> &'static ufc_core::AdmgSolution {
    use std::sync::OnceLock;
    static CELL: OnceLock<ufc_core::AdmgSolution> = OnceLock::new();
    CELL.get_or_init(|| {
        let inst = base_instance().with_queueing(QueueingCost::default_interactive());
        AdmgSolver::new(congested_settings())
            .solve(&inst, Strategy::Hybrid)
            .unwrap()
    })
}
use ufc_distsim::{DistributedAdmg, Runtime};
use ufc_model::{EmissionCostFn, QueueingCost, UfcInstance};

/// Two front-ends, two datacenters; DC0 is close to everyone (latency-wise)
/// so the base model crams load into it.
fn base_instance() -> UfcInstance {
    UfcInstance::new(
        vec![1.2, 1.2],
        vec![2.0, 2.0],
        vec![0.24, 0.24],
        vec![0.12, 0.12],
        vec![0.48, 0.48],
        vec![40.0, 45.0],
        80.0,
        vec![0.5, 0.4],
        // DC0 strictly dominates on latency for both front-ends.
        vec![vec![0.005, 0.025], vec![0.006, 0.028]],
        10.0,
        vec![
            EmissionCostFn::linear(25.0).unwrap(),
            EmissionCostFn::linear(25.0).unwrap(),
        ],
        1.0,
    )
    .unwrap()
}

#[test]
fn negligible_weight_recovers_base_solution() {
    // Arrivals low enough that the utilization ceiling is slack — then a
    // near-zero weight must reproduce the base solution. (At saturation the
    // ceiling itself shrinks the feasible set, so the solutions would
    // legitimately differ.)
    let mut base = base_instance();
    base.arrivals = vec![0.8, 0.8];
    let queued = base
        .clone()
        .with_queueing(QueueingCost::new(0.002, 1e-6, 0.98).unwrap());
    let solver = AdmgSolver::new(congested_settings());
    let a = solver.solve(&base, Strategy::Hybrid).unwrap();
    let b = solver.solve(&queued, Strategy::Hybrid).unwrap();
    assert!(b.converged);
    let scale = a.breakdown.ufc().abs().max(1.0);
    assert!(
        (a.breakdown.ufc() - b.breakdown.ufc()).abs() / scale < 1e-3,
        "base {} vs ~zero-weight queueing {}",
        a.breakdown.ufc(),
        b.breakdown.ufc()
    );
}

#[test]
fn congestion_pressure_spreads_load() {
    let base = base_instance();
    let queued = base
        .clone()
        .with_queueing(QueueingCost::default_interactive());
    let solver = AdmgSolver::new(congested_settings());
    let a = solver.solve(&base, Strategy::Hybrid).unwrap();
    let _ = queued; // documented: shares the canonical congested solve below
    let b = congested_solution();
    assert!(b.converged);

    let loads_a = a.point.loads();
    let loads_b = b.point.loads();
    // Base: latency pulls nearly everything to DC0.
    assert!(loads_a[0] > loads_a[1], "base solution should favor DC0");
    // Queueing: the spread between the two datacenters shrinks.
    let spread_a = (loads_a[0] - loads_a[1]).abs();
    let spread_b = (loads_b[0] - loads_b[1]).abs();
    assert!(
        spread_b < spread_a,
        "congestion should balance loads: {spread_a} -> {spread_b}"
    );
    // And the breakdown carries the congestion charge.
    assert!(b.breakdown.queueing_cost_dollars > 0.0);
    assert_eq!(a.breakdown.queueing_cost_dollars, 0.0);
}

#[test]
fn utilization_ceiling_is_respected() {
    // Tight fleet: total arrivals = 90% of capacity, ceiling at 93%.
    let mut inst = base_instance();
    inst.arrivals = vec![1.8, 1.8];
    let inst = inst.with_queueing(QueueingCost::new(0.002, 1e4, 0.93).unwrap());
    let sol = AdmgSolver::new(congested_settings())
        .solve(&inst, Strategy::Hybrid)
        .unwrap();
    for (j, load) in sol.point.loads().iter().enumerate() {
        let u = load / inst.capacities[j];
        assert!(u <= 0.93 + 1e-6, "datacenter {j} at utilization {u}");
    }
    assert!(sol.breakdown.queueing_cost_dollars.is_finite());
}

#[test]
fn distributed_runtime_matches_in_memory_with_queueing() {
    let inst = base_instance().with_queueing(QueueingCost::default_interactive());
    let settings = congested_settings();
    let mem = AdmgSolver::new(settings)
        .solve(&inst, Strategy::Hybrid)
        .unwrap();
    let net = DistributedAdmg::new(settings)
        .run(&inst, Strategy::Hybrid, Runtime::Lockstep)
        .unwrap();
    assert_eq!(mem.iterations, net.iterations);
    assert!(
        (mem.breakdown.ufc() - net.breakdown.ufc()).abs() < 1e-9 * mem.breakdown.ufc().abs(),
        "in-memory {} vs distributed {}",
        mem.breakdown.ufc(),
        net.breakdown.ufc()
    );
}

#[test]
fn unsupported_paths_reject_queueing_cleanly() {
    let inst = base_instance().with_queueing(QueueingCost::default_interactive());
    assert!(matches!(
        centralized::solve(&inst, Strategy::Hybrid, centralized::Backend::Admm),
        Err(CoreError::Unsupported { .. })
    ));
    assert!(matches!(
        ufc_core::baseline::solve(
            &inst,
            Strategy::Hybrid,
            &ufc_core::baseline::SubgradientSettings::default()
        ),
        Err(CoreError::Unsupported { .. })
    ));
}

#[test]
fn ufc_equals_negated_objective_with_queueing() {
    // The duality between `evaluate` and the min-form objective must
    // survive the extension.
    let inst = base_instance().with_queueing(QueueingCost::default_interactive());
    let sol = congested_solution();
    let mut state = ufc_core::AdmgState::zeros(&inst);
    for (i, row) in sol.point.lambda.iter().enumerate() {
        for (j, &v) in row.iter().enumerate() {
            let k = state.idx(i, j);
            state.lambda[k] = v;
        }
    }
    state.mu = sol.point.mu.clone();
    state.nu = sol.point.nu.clone();
    let obj = state.objective(&inst);
    assert!(
        (sol.breakdown.ufc() + obj).abs() < 1e-9 * (1.0 + obj.abs()),
        "UFC {} vs −objective {}",
        sol.breakdown.ufc(),
        -obj
    );
}
