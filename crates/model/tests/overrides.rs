//! External-trace overrides: loading exported CSV back through the
//! scenario builder reproduces the original instances exactly.

use ufc_model::scenario::ScenarioBuilder;
use ufc_traces::loader::parse_numeric_csv;

#[test]
fn overrides_roundtrip_through_csv() {
    let original = ScenarioBuilder::paper_default()
        .seed(5)
        .hours(24)
        .build()
        .unwrap();

    // Export the three trace families the way `repro fig3` does.
    let mut text = String::from("hour,workload,p0,p1,p2,p3,c0,c1,c2,c3\n");
    for t in 0..24 {
        text.push_str(&format!("{t},{}", original.workload_total[t]));
        for j in 0..4 {
            text.push_str(&format!(",{}", original.prices[j][t]));
        }
        for j in 0..4 {
            text.push_str(&format!(",{}", original.carbon_g_per_kwh[j][t]));
        }
        text.push('\n');
    }

    // Re-import and rebuild with overrides.
    let parsed = parse_numeric_csv(&text).unwrap();
    let workload = parsed.require_column("workload").unwrap().to_vec();
    let prices: Vec<Vec<f64>> = (0..4)
        .map(|j| parsed.require_column(&format!("p{j}")).unwrap().to_vec())
        .collect();
    let carbon: Vec<Vec<f64>> = (0..4)
        .map(|j| parsed.require_column(&format!("c{j}")).unwrap().to_vec())
        .collect();

    let rebuilt = ScenarioBuilder::paper_default()
        .seed(5) // same seed ⇒ same capacities and front-end split
        .hours(24)
        .workload_override(workload)
        .price_override(prices)
        .carbon_override(carbon)
        .build()
        .unwrap();

    assert_eq!(original.workload_total, rebuilt.workload_total);
    assert_eq!(original.prices, rebuilt.prices);
    for (a, b) in original.instances.iter().zip(&rebuilt.instances) {
        assert_eq!(a, b, "instances diverged after CSV roundtrip");
    }
}

#[test]
fn override_validation() {
    // Wrong horizon.
    assert!(ScenarioBuilder::paper_default()
        .hours(24)
        .workload_override(vec![1.0; 23])
        .build()
        .is_err());
    // Over-capacity workload.
    assert!(ScenarioBuilder::paper_default()
        .hours(2)
        .workload_override(vec![1e6; 2])
        .build()
        .is_err());
    // Nonpositive workload.
    assert!(ScenarioBuilder::paper_default()
        .hours(2)
        .workload_override(vec![1.0, 0.0])
        .build()
        .is_err());
    // Wrong price shape.
    assert!(ScenarioBuilder::paper_default()
        .hours(2)
        .price_override(vec![vec![1.0; 2]; 3])
        .build()
        .is_err());
    // Negative carbon.
    assert!(ScenarioBuilder::paper_default()
        .hours(1)
        .carbon_override(vec![vec![-1.0]; 4])
        .build()
        .is_err());
}

#[test]
fn custom_prices_steer_the_optimizer() {
    use ufc_core::{AdmgSettings, AdmgSolver, Strategy};
    // Uniform cheap prices everywhere ⇒ no fuel cells; expensive ⇒ all in.
    let cheap = ScenarioBuilder::paper_default()
        .hours(1)
        .price_override(vec![vec![10.0]; 4])
        .build()
        .unwrap();
    let pricey = ScenarioBuilder::paper_default()
        .hours(1)
        .price_override(vec![vec![300.0]; 4])
        .build()
        .unwrap();
    let solver = AdmgSolver::new(AdmgSettings::default());
    let lo = solver.solve(&cheap.instances[0], Strategy::Hybrid).unwrap();
    let hi = solver
        .solve(&pricey.instances[0], Strategy::Hybrid)
        .unwrap();
    assert!(lo.breakdown.fuel_cell_utilization < 0.01);
    assert!(hi.breakdown.fuel_cell_utilization > 0.99);
}
