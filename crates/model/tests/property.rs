//! Property-based tests for the UFC model.

use proptest::prelude::*;
use ufc_core::AdmgState;
use ufc_model::{evaluate, EmissionCostFn, OperatingPoint, UfcInstance};

fn instance(prices: (f64, f64), carbon: (f64, f64), p0: f64, tax: f64) -> UfcInstance {
    UfcInstance::new(
        vec![1.0, 1.5],
        vec![3.0, 3.0],
        vec![0.36, 0.36],
        vec![0.12, 0.12],
        vec![0.72, 0.72],
        vec![prices.0, prices.1],
        p0,
        vec![carbon.0, carbon.1],
        vec![vec![0.01, 0.02], vec![0.02, 0.01]],
        10.0,
        vec![
            EmissionCostFn::linear(tax).unwrap(),
            EmissionCostFn::linear(tax).unwrap(),
        ],
        1.0,
    )
    .unwrap()
}

proptest! {
    /// The UFC index of a feasible point is exactly the negated ADMM-form
    /// objective (12) evaluated at the same `(λ, μ, ν)` — maximizing UFC
    /// and minimizing (12) are the same problem.
    #[test]
    fn ufc_is_negated_min_objective(
        split1 in 0.0f64..1.0,
        split2 in 0.0f64..1.0,
        mu_frac1 in 0.0f64..1.0,
        mu_frac2 in 0.0f64..1.0,
        p1 in 10.0f64..150.0,
        p2 in 10.0f64..150.0,
        tax in 0.0f64..200.0,
    ) {
        let inst = instance((p1, p2), (0.5, 0.3), 80.0, tax);
        // Random feasible routing: each front-end splits its arrival.
        let lambda = vec![
            vec![1.0 * split1, 1.0 * (1.0 - split1)],
            vec![1.5 * split2, 1.5 * (1.0 - split2)],
        ];
        // Random fuel-cell share of each datacenter's demand.
        let mut mu = vec![0.0; 2];
        for j in 0..2 {
            let load: f64 = lambda.iter().map(|r| r[j]).sum();
            let demand = inst.demand_mw(j, load);
            let frac = if j == 0 { mu_frac1 } else { mu_frac2 };
            mu[j] = (frac * demand).min(inst.mu_max[j]);
        }
        let point = OperatingPoint::from_routing_and_fuel(&inst, lambda.clone(), mu.clone()).unwrap();
        let breakdown = evaluate(&inst, &point).unwrap();

        let mut state = AdmgState::zeros(&inst);
        for (i, row) in lambda.iter().enumerate() {
            for (j, &v) in row.iter().enumerate() {
                let k = state.idx(i, j);
                state.lambda[k] = v;
            }
        }
        state.mu = mu;
        state.nu = point.nu.clone();
        let objective = state.objective(&inst);
        prop_assert!(
            (breakdown.ufc() + objective).abs() < 1e-9 * (1.0 + objective.abs()),
            "UFC {} vs −objective {}", breakdown.ufc(), -objective
        );
    }

    /// `from_routing_and_fuel` always yields exactly feasible points for
    /// in-range inputs.
    #[test]
    fn derived_points_are_feasible(
        split1 in 0.0f64..1.0,
        split2 in 0.0f64..1.0,
        mu_frac in 0.0f64..1.0,
    ) {
        let inst = instance((30.0, 70.0), (0.5, 0.3), 80.0, 25.0);
        let lambda = vec![
            vec![1.0 * split1, 1.0 * (1.0 - split1)],
            vec![1.5 * split2, 1.5 * (1.0 - split2)],
        ];
        let mut mu = vec![0.0; 2];
        for j in 0..2 {
            let load: f64 = lambda.iter().map(|r| r[j]).sum();
            mu[j] = (mu_frac * inst.demand_mw(j, load)).min(inst.mu_max[j]);
        }
        let point = OperatingPoint::from_routing_and_fuel(&inst, lambda, mu).unwrap();
        prop_assert!(point.feasibility_residual(&inst) < 1e-9);
        // Components of the breakdown are internally consistent.
        let b = evaluate(&inst, &point).unwrap();
        prop_assert!(b.fuel_cell_utilization >= 0.0 && b.fuel_cell_utilization <= 1.0 + 1e-12);
        prop_assert!(b.carbon_tons >= 0.0);
        prop_assert!(b.energy_cost_dollars >= 0.0);
        prop_assert!(b.utility_dollars <= 0.0); // quadratic disutility
        prop_assert!((b.ufc() - (b.utility_dollars - b.carbon_cost_dollars - b.energy_cost_dollars)).abs() < 1e-12);
    }

    /// More fuel-cell output never increases emissions and the emission
    /// cost is monotone in the tax rate.
    #[test]
    fn monotonicity_in_mu_and_tax(
        mu_lo in 0.0f64..0.4,
        extra in 0.0f64..0.5,
        tax_lo in 0.0f64..80.0,
        tax_extra in 0.0f64..80.0,
    ) {
        let inst_lo = instance((30.0, 70.0), (0.5, 0.3), 80.0, tax_lo);
        let inst_hi = instance((30.0, 70.0), (0.5, 0.3), 80.0, tax_lo + tax_extra);
        let lambda = vec![vec![0.5, 0.5], vec![0.75, 0.75]];
        let demand0 = inst_lo.demand_mw(0, 1.25);
        let mu_small = vec![(mu_lo * demand0).min(inst_lo.mu_max[0]), 0.0];
        let mu_big = vec![((mu_lo + extra) * demand0).min(inst_lo.mu_max[0]), 0.0];

        let p_small = OperatingPoint::from_routing_and_fuel(&inst_lo, lambda.clone(), mu_small).unwrap();
        let p_big = OperatingPoint::from_routing_and_fuel(&inst_lo, lambda.clone(), mu_big).unwrap();
        let b_small = evaluate(&inst_lo, &p_small).unwrap();
        let b_big = evaluate(&inst_lo, &p_big).unwrap();
        prop_assert!(b_big.carbon_tons <= b_small.carbon_tons + 1e-12);

        let b_lo = evaluate(&inst_lo, &p_small).unwrap();
        let b_hi = evaluate(&inst_hi, &p_small).unwrap();
        prop_assert!(b_hi.carbon_cost_dollars >= b_lo.carbon_cost_dollars - 1e-12);
    }
}
