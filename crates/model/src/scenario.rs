//! Week-long scenario construction — the glue between the trace substrate
//! and per-hour [`UfcInstance`]s.
//!
//! Reproduces the paper's §IV-A setup: `N = 4` datacenters (Calgary,
//! San Jose, Dallas, Pittsburgh) with capacities uniform in
//! `[1.7, 2.3]×10⁴` servers, `M = 10` front-ends across the US, PUE 1.2,
//! 100/200 W servers, full fuel-cell coverage, `w = 10 $/s²`,
//! `p₀ = 80 $/MWh`, a \$25/ton carbon tax, and one week (168 h) of
//! synthesized workload/price/carbon traces.

use ufc_geo::{latency_matrix, sites, LatencyModel};
use ufc_traces::fuelmix::FuelMixModel;
use ufc_traces::price::LmpModel;
use ufc_traces::workload::{FrontendSplit, HpLikeWorkload};
use ufc_traces::{TraceRng, HOURS_PER_WEEK};

use crate::{
    g_per_kwh_to_t_per_mwh, DatacenterSpec, EmissionCostFn, ModelError, Result, ServerPowerModel,
    StorageFleet, UfcInstance,
};

/// A sequence of hourly instances plus the raw traces that produced them
/// (kept for Fig.-3-style reporting).
#[derive(Debug, Clone)]
pub struct WeeklyScenario {
    /// One instance per hour.
    pub instances: Vec<UfcInstance>,
    /// Datacenter names, in instance column order.
    pub dc_names: Vec<String>,
    /// Total workload per hour (kilo-servers).
    pub workload_total: Vec<f64>,
    /// Grid price per datacenter per hour ($/MWh): `prices[j][t]`.
    pub prices: Vec<Vec<f64>>,
    /// Carbon rate per datacenter per hour (g/kWh): `carbon_g_per_kwh[j][t]`.
    pub carbon_g_per_kwh: Vec<Vec<f64>>,
    /// The storage fleet the scenario was built with, if any — a
    /// receding-horizon driver uses it to evolve per-hour
    /// [`crate::StorageParams`] from the initial state attached to each
    /// instance.
    pub storage: Option<StorageFleet>,
}

impl WeeklyScenario {
    /// Number of hourly instances.
    #[must_use]
    pub fn hours(&self) -> usize {
        self.instances.len()
    }
}

/// Builder for [`WeeklyScenario`] with the paper's defaults.
#[derive(Debug, Clone)]
pub struct ScenarioBuilder {
    seed: u64,
    hours: usize,
    m_frontends: usize,
    pue: f64,
    power: ServerPowerModel,
    capacity_range_k: (f64, f64),
    peak_utilization: f64,
    weight_per_server: f64,
    fuel_cell_price: f64,
    emission_cost: EmissionCostFn,
    workload: HpLikeWorkload,
    split: FrontendSplit,
    latency: LatencyModel,
    with_fuel_cells: bool,
    pue_range: Option<(f64, f64)>,
    workload_override: Option<Vec<f64>>,
    price_override: Option<Vec<Vec<f64>>>,
    carbon_override: Option<Vec<Vec<f64>>>,
    storage: Option<StorageFleet>,
}

impl ScenarioBuilder {
    /// The paper's §IV-A configuration (see module docs).
    #[must_use]
    pub fn paper_default() -> Self {
        ScenarioBuilder {
            seed: 2012,
            hours: HOURS_PER_WEEK,
            m_frontends: 10,
            pue: 1.2,
            power: ServerPowerModel::paper_default(),
            capacity_range_k: (17.0, 23.0),
            peak_utilization: 0.85,
            weight_per_server: 10.0,
            fuel_cell_price: 80.0,
            emission_cost: EmissionCostFn::Linear { rate: 25.0 },
            workload: HpLikeWorkload::default(),
            split: FrontendSplit::default(),
            latency: LatencyModel::default(),
            with_fuel_cells: true,
            pue_range: None,
            workload_override: None,
            price_override: None,
            carbon_override: None,
            storage: None,
        }
    }

    /// Equips every datacenter with a battery + ramp-limit configuration
    /// (the temporal-coupling extension): each hourly instance carries the
    /// fleet's *initial* [`crate::StorageParams`], and the fleet itself is
    /// kept on the scenario for receding-horizon drivers that evolve the
    /// charge state hour over hour.
    #[must_use]
    pub fn storage(mut self, fleet: StorageFleet) -> Self {
        self.storage = Some(fleet);
        self
    }

    /// Sets the RNG seed for all trace substreams.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the horizon length in hours (default 168).
    #[must_use]
    pub fn hours(mut self, hours: usize) -> Self {
        self.hours = hours;
        self
    }

    /// Sets the fuel-cell generation price `p₀` in $/MWh (default 80).
    #[must_use]
    pub fn fuel_cell_price(mut self, p0: f64) -> Self {
        self.fuel_cell_price = p0;
        self
    }

    /// Sets the emission-cost function used at every site (default linear
    /// \$25/ton tax).
    #[must_use]
    pub fn emission_cost(mut self, v: EmissionCostFn) -> Self {
        self.emission_cost = v;
        self
    }

    /// Sets the latency weight `w` in $/s² per server (default 10).
    #[must_use]
    pub fn weight_per_server(mut self, w: f64) -> Self {
        self.weight_per_server = w;
        self
    }

    /// Sets the workload peak as a fraction of total capacity (default 0.85).
    #[must_use]
    pub fn peak_utilization(mut self, f: f64) -> Self {
        self.peak_utilization = f;
        self
    }

    /// Sets the number of front-end proxies (default 10; at most the size of
    /// the front-end site catalog).
    #[must_use]
    pub fn frontends(mut self, m: usize) -> Self {
        self.m_frontends = m;
        self
    }

    /// Makes the fleet heterogeneous: each datacenter samples its PUE
    /// uniformly from `[lo, hi]` instead of sharing the default 1.2 — the
    /// paper's §II-A remark that the model "can be easily extended to
    /// capture the heterogeneous case".
    #[must_use]
    pub fn heterogeneous_pue(mut self, lo: f64, hi: f64) -> Self {
        self.pue_range = Some((lo, hi));
        self
    }

    /// Replaces the synthetic total-workload trace (kilo-servers per hour)
    /// with externally loaded data; the length must equal the horizon at
    /// [`ScenarioBuilder::build`] time. The front-end split still applies.
    #[must_use]
    pub fn workload_override(mut self, total_kservers: Vec<f64>) -> Self {
        self.workload_override = Some(total_kservers);
        self
    }

    /// Replaces the synthetic price traces with external data:
    /// `prices[j][t]` in $/MWh, one row per datacenter in catalog order.
    #[must_use]
    pub fn price_override(mut self, prices: Vec<Vec<f64>>) -> Self {
        self.price_override = Some(prices);
        self
    }

    /// Replaces the synthetic carbon-rate traces with external data:
    /// `rates[j][t]` in g/kWh, one row per datacenter in catalog order.
    #[must_use]
    pub fn carbon_override(mut self, rates_g_per_kwh: Vec<Vec<f64>>) -> Self {
        self.carbon_override = Some(rates_g_per_kwh);
        self
    }

    /// Builds the scenario.
    ///
    /// # Errors
    ///
    /// Returns a [`ModelError`] when a parameter is out of range or an hour's
    /// instance fails validation.
    pub fn build(&self) -> Result<WeeklyScenario> {
        if self.hours == 0 {
            return Err(ModelError::param("scenario needs at least one hour"));
        }
        if !(0.0 < self.peak_utilization && self.peak_utilization <= 1.0) {
            return Err(ModelError::param(format!(
                "peak utilization must be in (0, 1], got {}",
                self.peak_utilization
            )));
        }
        let fe_sites = sites::frontend_sites();
        if self.m_frontends == 0 || self.m_frontends > fe_sites.len() {
            return Err(ModelError::param(format!(
                "front-end count must be in 1..={}, got {}",
                fe_sites.len(),
                self.m_frontends
            )));
        }
        let (cap_lo, cap_hi) = self.capacity_range_k;
        if !(0.0 < cap_lo && cap_lo <= cap_hi) {
            return Err(ModelError::param("invalid capacity range"));
        }
        if let Some(fleet) = &self.storage {
            fleet.validate()?;
        }

        let root = TraceRng::new(self.seed);
        let dc_sites = sites::datacenter_sites();
        let n = dc_sites.len();

        if let Some((lo, hi)) = self.pue_range {
            if !(1.0 <= lo && lo <= hi) {
                return Err(ModelError::param(format!(
                    "PUE range must satisfy 1 ≤ lo ≤ hi, got [{lo}, {hi}]"
                )));
            }
        }

        // Datacenter capacities ~ U[17, 23] kservers (paper §IV-A).
        let mut cap_rng = root.substream("capacity");
        let mut pue_rng = root.substream("pue");
        let mut specs = Vec::with_capacity(n);
        for site in &dc_sites {
            let cap = cap_rng.uniform_in(cap_lo, cap_hi);
            let pue = match self.pue_range {
                Some((lo, hi)) if lo < hi => pue_rng.uniform_in(lo, hi),
                Some((lo, _)) => lo,
                None => self.pue,
            };
            let mut spec = DatacenterSpec::new(site.name.clone(), cap, pue, self.power)?;
            if self.with_fuel_cells {
                spec = spec.with_full_fuel_cell_capacity();
            }
            specs.push(spec);
        }
        let total_capacity: f64 = specs.iter().map(|d| d.servers_k).sum();

        // Traces.
        let workload_total: Vec<f64> = match &self.workload_override {
            Some(ext) => {
                if ext.len() != self.hours {
                    return Err(ModelError::dim(format!(
                        "workload override has {} hours, horizon is {}",
                        ext.len(),
                        self.hours
                    )));
                }
                if ext.iter().any(|&v| !v.is_finite() || v <= 0.0) {
                    return Err(ModelError::param(
                        "workload override must be finite and strictly positive",
                    ));
                }
                let peak = ext.iter().cloned().fold(0.0f64, f64::max);
                if peak > total_capacity {
                    return Err(ModelError::infeasible(format!(
                        "workload override peaks at {peak} kservers but the fleet has {total_capacity}"
                    )));
                }
                ext.clone()
            }
            None => {
                let mut wl_rng = root.substream("workload");
                let normalized = self.workload.generate(self.hours, &mut wl_rng);
                normalized
                    .iter()
                    .map(|u| u * self.peak_utilization * total_capacity)
                    .collect()
            }
        };
        let mut split_rng = root.substream("split");
        let arrivals_per_hour = self
            .split
            .split(&workload_total, self.m_frontends, &mut split_rng);

        let price_models = LmpModel::paper_sites();
        let mix_models = FuelMixModel::paper_sites();
        debug_assert_eq!(price_models.len(), n);
        let check_override = |name: &str, data: &Vec<Vec<f64>>| -> Result<()> {
            if data.len() != n || data.iter().any(|row| row.len() != self.hours) {
                return Err(ModelError::dim(format!(
                    "{name} override must be {n} series of {} hours",
                    self.hours
                )));
            }
            // NaN compares false against `< 0.0`, so test finiteness
            // explicitly — external data files are exactly where NaN
            // ingress happens.
            if data.iter().flatten().any(|&v| !v.is_finite() || v < 0.0) {
                return Err(ModelError::param(format!(
                    "{name} override must be finite and nonnegative"
                )));
            }
            Ok(())
        };
        let prices: Vec<Vec<f64>> = match &self.price_override {
            Some(ext) => {
                check_override("price", ext)?;
                ext.clone()
            }
            None => (0..n)
                .map(|j| {
                    let mut p_rng = root.substream(&format!("price-{}", price_models[j].name));
                    price_models[j].generate(self.hours, &mut p_rng)
                })
                .collect(),
        };
        let carbon: Vec<Vec<f64>> = match &self.carbon_override {
            Some(ext) => {
                check_override("carbon", ext)?;
                ext.clone()
            }
            None => (0..n)
                .map(|j| {
                    let mut c_rng = root.substream(&format!("mix-{}", mix_models[j].name));
                    mix_models[j].carbon_rate_series(self.hours, &mut c_rng)
                })
                .collect(),
        };

        let latency = latency_matrix(&fe_sites[..self.m_frontends], &dc_sites, self.latency);

        // One instance per hour.
        let mut instances = Vec::with_capacity(self.hours);
        for t in 0..self.hours {
            let grid_price: Vec<f64> = (0..n).map(|j| prices[j][t]).collect();
            let carbon_t: Vec<f64> = (0..n)
                .map(|j| g_per_kwh_to_t_per_mwh(carbon[j][t]))
                .collect();
            let mut inst = UfcInstance::from_specs(
                arrivals_per_hour[t].clone(),
                &specs,
                grid_price,
                self.fuel_cell_price,
                carbon_t,
                latency.clone(),
                self.weight_per_server,
                vec![self.emission_cost.clone(); n],
                1.0,
            )?;
            if let Some(fleet) = &self.storage {
                inst = inst.with_storage(fleet.initial_params(n))?;
            }
            instances.push(inst);
        }

        Ok(WeeklyScenario {
            instances,
            dc_names: specs.iter().map(|d| d.name.clone()).collect(),
            workload_total,
            prices,
            carbon_g_per_kwh: carbon,
            storage: self.storage,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_builds_full_week() {
        let s = ScenarioBuilder::paper_default().build().unwrap();
        assert_eq!(s.hours(), 168);
        assert_eq!(s.dc_names.len(), 4);
        assert_eq!(s.instances[0].m_frontends(), 10);
        assert!(s.instances.iter().all(|i| i.fuel_cells_cover_peak()));
    }

    #[test]
    fn scenario_is_deterministic() {
        let a = ScenarioBuilder::paper_default()
            .seed(7)
            .hours(24)
            .build()
            .unwrap();
        let b = ScenarioBuilder::paper_default()
            .seed(7)
            .hours(24)
            .build()
            .unwrap();
        assert_eq!(a.instances[13], b.instances[13]);
    }

    #[test]
    fn seeds_change_traces() {
        let a = ScenarioBuilder::paper_default()
            .seed(1)
            .hours(24)
            .build()
            .unwrap();
        let b = ScenarioBuilder::paper_default()
            .seed(2)
            .hours(24)
            .build()
            .unwrap();
        assert_ne!(a.workload_total, b.workload_total);
    }

    #[test]
    fn capacities_within_paper_range() {
        let s = ScenarioBuilder::paper_default().hours(1).build().unwrap();
        for &cap in &s.instances[0].capacities {
            assert!((17.0..=23.0).contains(&cap), "capacity {cap}");
        }
    }

    #[test]
    fn workload_peak_matches_utilization() {
        let s = ScenarioBuilder::paper_default()
            .peak_utilization(0.5)
            .build()
            .unwrap();
        let total_cap = s.instances[0].total_capacity();
        let peak = s.workload_total.iter().cloned().fold(0.0f64, f64::max);
        assert!(peak <= 0.5 * total_cap + 1e-9);
        // Every hour remains feasible by construction.
        for inst in &s.instances {
            assert!(inst.total_arrivals() <= inst.total_capacity());
        }
    }

    #[test]
    fn builder_validation() {
        assert!(ScenarioBuilder::paper_default().hours(0).build().is_err());
        assert!(ScenarioBuilder::paper_default()
            .peak_utilization(0.0)
            .build()
            .is_err());
        assert!(ScenarioBuilder::paper_default()
            .frontends(0)
            .build()
            .is_err());
        assert!(ScenarioBuilder::paper_default()
            .frontends(99)
            .build()
            .is_err());
    }

    #[test]
    fn rejects_non_finite_overrides() {
        assert!(ScenarioBuilder::paper_default()
            .hours(2)
            .workload_override(vec![10.0, f64::NAN])
            .build()
            .is_err());
        let n = sites::datacenter_sites().len();
        assert!(ScenarioBuilder::paper_default()
            .hours(1)
            .price_override(vec![vec![f64::INFINITY]; n])
            .build()
            .is_err());
        assert!(ScenarioBuilder::paper_default()
            .hours(1)
            .carbon_override(vec![vec![f64::NAN]; n])
            .build()
            .is_err());
    }

    #[test]
    fn heterogeneous_pue_varies_power_coefficients() {
        let s = ScenarioBuilder::paper_default()
            .hours(1)
            .heterogeneous_pue(1.1, 2.0)
            .build()
            .unwrap();
        let inst = &s.instances[0];
        // β_j = 0.1 W/server × PUE_j: heterogeneity shows up as spread.
        let lo = inst.beta.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = inst.beta.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(
            hi > lo * 1.05,
            "betas suspiciously uniform: {:?}",
            inst.beta
        );
        for &b in &inst.beta {
            assert!((0.11..=0.20).contains(&b), "beta {b} outside PUE range");
        }
        assert!(ScenarioBuilder::paper_default()
            .heterogeneous_pue(0.5, 2.0)
            .build()
            .is_err());
    }

    #[test]
    fn storage_fleet_attaches_to_every_hour() {
        let fleet = crate::StorageFleet::new(5.0, 1.0).initial_charge_frac(0.5);
        let s = ScenarioBuilder::paper_default()
            .hours(3)
            .storage(fleet)
            .build()
            .unwrap();
        assert_eq!(s.storage, Some(fleet));
        for inst in &s.instances {
            let sp = inst.storage.as_ref().unwrap();
            assert_eq!(sp.capacity_mwh, vec![5.0; 4]);
            assert_eq!(sp.charge_mwh, vec![2.5; 4]);
        }
        // Without the builder call nothing changes.
        let plain = ScenarioBuilder::paper_default().hours(1).build().unwrap();
        assert!(plain.storage.is_none());
        assert!(plain.instances[0].storage.is_none());
        // A bad fleet is rejected at build time.
        assert!(ScenarioBuilder::paper_default()
            .hours(1)
            .storage(crate::StorageFleet::new(-1.0, 1.0))
            .build()
            .is_err());
    }

    #[test]
    fn p0_and_tax_propagate() {
        let s = ScenarioBuilder::paper_default()
            .hours(1)
            .fuel_cell_price(27.0)
            .emission_cost(EmissionCostFn::Linear { rate: 140.0 })
            .build()
            .unwrap();
        let inst = &s.instances[0];
        assert_eq!(inst.fuel_cell_price, 27.0);
        assert_eq!(inst.emission_cost[0].marginal(1.0), 140.0);
    }
}
