//! Congestion (queueing-delay) cost — an extension beyond the paper.
//!
//! The paper argues propagation latency "overweighs other factors such as
//! queuing or processing delays" and drops them (§II-B3). This module makes
//! the dropped term available as an opt-in: each datacenter is charged for
//! the M/M/1-style mean delay its utilization induces,
//!
//! ```text
//! Q_j(load) = weight · load · d₀ / (1 − load/S_j),
//! ```
//!
//! i.e. `load` kilo-servers of requests each experiencing the
//! `d₀/(1 − u)` congestion delay, monetized like the latency utility. The
//! function is convex and increasing on `u ∈ [0, 1)` with unbounded
//! curvature at capacity — exactly the shape that forces the a-sub-problem
//! onto the backtracking-FISTA path (`ufc-opt`'s `minimize_adaptive`).
//!
//! The barrier also slows the outer splitting: congested instances converge
//! noticeably faster with a larger ADM-G penalty (ρ ≈ 4–8) and deserve a
//! higher iteration cap than the paper-default settings.

use crate::{ModelError, Result};

/// Parameters of the per-datacenter congestion cost.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueueingCost {
    /// Mean service delay of an empty datacenter, `d₀`, in seconds.
    pub base_delay_s: f64,
    /// Monetization weight in $ per kilo-server·second (per slot).
    pub weight: f64,
    /// Hard utilization ceiling `< 1`: the optimizer keeps every
    /// datacenter's load below `max_utilization · S_j` so the delay stays
    /// finite (default 0.98).
    pub max_utilization: f64,
}

impl QueueingCost {
    /// Validated constructor.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidParameter`] unless `base_delay_s > 0`,
    /// `weight ≥ 0`, and `0 < max_utilization < 1`.
    pub fn new(base_delay_s: f64, weight: f64, max_utilization: f64) -> Result<Self> {
        if base_delay_s <= 0.0 {
            return Err(ModelError::param(format!(
                "base delay must be positive, got {base_delay_s}"
            )));
        }
        if weight < 0.0 {
            return Err(ModelError::param(format!(
                "queueing weight cannot be negative, got {weight}"
            )));
        }
        if !(0.0 < max_utilization && max_utilization < 1.0) {
            return Err(ModelError::param(format!(
                "max utilization must be in (0, 1), got {max_utilization}"
            )));
        }
        Ok(QueueingCost {
            base_delay_s,
            weight,
            max_utilization,
        })
    }

    /// A plausible default: 2 ms empty-system delay, the same monetization
    /// scale as the paper's latency weight, 98% ceiling.
    ///
    /// # Panics
    ///
    /// Never (the constants are valid).
    #[must_use]
    pub fn default_interactive() -> Self {
        QueueingCost::new(0.002, 1e4, 0.98).expect("constants are valid")
    }

    /// Congestion cost in $ for `load_k` kilo-servers routed to a
    /// datacenter of `capacity_k` kilo-servers; `+∞` at or beyond the
    /// utilization ceiling.
    ///
    /// # Panics
    ///
    /// Panics if `capacity_k <= 0` or `load_k < 0`.
    #[must_use]
    pub fn value(&self, load_k: f64, capacity_k: f64) -> f64 {
        assert!(capacity_k > 0.0, "capacity must be positive");
        assert!(load_k >= 0.0, "load cannot be negative");
        let u = load_k / capacity_k;
        if u >= self.max_utilization {
            return f64::INFINITY;
        }
        self.weight * load_k * self.base_delay_s / (1.0 - u)
    }

    /// Derivative of [`QueueingCost::value`] with respect to the load:
    /// `weight·d₀/(1 − u)²`.
    ///
    /// # Panics
    ///
    /// As for [`QueueingCost::value`].
    #[must_use]
    pub fn derivative(&self, load_k: f64, capacity_k: f64) -> f64 {
        assert!(capacity_k > 0.0, "capacity must be positive");
        assert!(load_k >= 0.0, "load cannot be negative");
        let u = load_k / capacity_k;
        if u >= self.max_utilization {
            return f64::INFINITY;
        }
        self.weight * self.base_delay_s / ((1.0 - u) * (1.0 - u))
    }

    /// The largest load (kilo-servers) the ceiling admits at the given
    /// capacity, shrunk by a small safety margin so projected iterates stay
    /// strictly inside the barrier's domain.
    #[must_use]
    pub fn load_cap(&self, capacity_k: f64) -> f64 {
        self.max_utilization * capacity_k * (1.0 - 1e-6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_and_derivative() {
        let q = QueueingCost::new(0.002, 1e4, 0.98).unwrap();
        // At half utilization: cost = w·load·d0/(0.5) = 2·w·load·d0.
        let v = q.value(1.0, 2.0);
        assert!((v - 1e4 * 1.0 * 0.002 * 2.0).abs() < 1e-9);
        // Derivative = w·d0/(0.5)² = 4·w·d0.
        let d = q.derivative(1.0, 2.0);
        assert!((d - 1e4 * 0.002 * 4.0).abs() < 1e-9);
        // Empty system: cost 0, derivative w·d0.
        assert_eq!(q.value(0.0, 2.0), 0.0);
        assert!((q.derivative(0.0, 2.0) - 20.0).abs() < 1e-12);
    }

    #[test]
    fn infinite_beyond_ceiling() {
        let q = QueueingCost::new(0.002, 1e4, 0.9).unwrap();
        assert!(q.value(1.9, 2.0).is_infinite());
        assert!(q.derivative(1.85, 2.0).is_infinite());
        assert!(q.value(1.7, 2.0).is_finite());
        assert!(q.load_cap(2.0) < 1.8);
    }

    #[test]
    fn convex_and_increasing() {
        let q = QueueingCost::default_interactive();
        let cap = 10.0;
        let mut last_v = -1.0;
        let mut last_d = -1.0;
        for k in 0..9 {
            let load = k as f64;
            let v = q.value(load, cap);
            let d = q.derivative(load, cap);
            assert!(v > last_v, "value not increasing at {load}");
            assert!(d > last_d, "derivative not increasing at {load}");
            last_v = v;
            last_d = d;
        }
    }

    #[test]
    fn derivative_matches_finite_difference() {
        let q = QueueingCost::default_interactive();
        let (load, cap, h) = (3.0, 10.0, 1e-6);
        let fd = (q.value(load + h, cap) - q.value(load - h, cap)) / (2.0 * h);
        let d = q.derivative(load, cap);
        assert!((fd - d).abs() / d < 1e-6, "fd {fd} vs analytic {d}");
    }

    #[test]
    fn validation() {
        assert!(QueueingCost::new(0.0, 1.0, 0.9).is_err());
        assert!(QueueingCost::new(0.002, -1.0, 0.9).is_err());
        assert!(QueueingCost::new(0.002, 1.0, 1.0).is_err());
        assert!(QueueingCost::new(0.002, 1.0, 0.0).is_err());
    }
}
