//! Temporal coupling: per-datacenter battery storage and fuel-cell ramp
//! limits.
//!
//! The paper's program is purely spatial — every hour is optimized in
//! isolation. The related work (Kiani & Ansari's profit maximization with
//! energy storage, Tu et al.'s dynamic provisioning with on-site power)
//! couples consecutive hours through two mechanisms this module models:
//!
//! * **Battery storage.** Each datacenter `j` carries a charge state
//!   `b_j(t)` (MWh). Within one slot it chooses a net discharge rate
//!   `d_j` (MW; positive discharges, negative charges) bounded by the
//!   converter rates and by the energy actually available/storable, and the
//!   power balance becomes `D_j(load) = μ_j + ν_j + d_j`. The charge state
//!   advances as `b_j(t+1) = b_j(t) − d_j·h`.
//! * **Fuel-cell ramp limits.** Solid-oxide fuel cells change output
//!   slowly; `|μ_j(t) − μ_j(t−1)| ≤ r_j` tightens the μ-block's box to
//!   `[max(0, μ_prev − r), min(μ_max, μ_prev + r)]`.
//!
//! Both enter the ADM-G core as the **storage block** — the first real
//! 5th block of the schedule-driven N-block architecture (see
//! `ufc_core::engine::BlockSchedule`). A single hourly instance sees only
//! frozen per-slot data ([`StorageParams`]): the bounds derived from the
//! current charge state and the previous hour's generation. The temporal
//! loop lives outside the solver — a receding-horizon driver carries
//! `b_j`/`μ_prev` forward between hourly solves ([`StorageFleet`] is the
//! static fleet description it starts from).
//!
//! The block's per-slot cost is `γ·h·d_j² + κ_j·h·d_j`: a quadratic
//! throughput-degradation term (cycling wears the cells) plus a linear
//! opportunity-value term. `κ_j` ($/MWh) prices retained energy — a myopic
//! hourly solve would otherwise never charge (charging only costs money
//! within one slot); with `κ_j` set to, say, the mean grid price, the block
//! charges when power is cheap and discharges when it is dear, which is
//! exactly the arbitrage a look-ahead controller extracts.

use crate::{ModelError, Result};

/// Frozen per-slot storage/ramp data for one [`crate::UfcInstance`]: what
/// the solver sees after the receding-horizon loop fixes the charge state
/// and the previous hour's generation. All vectors are indexed by
/// datacenter.
#[derive(Debug, Clone, PartialEq)]
pub struct StorageParams {
    /// Usable battery capacity (MWh); `0` marks a datacenter without
    /// storage (its `d_j` is pinned to zero bit-exactly).
    pub capacity_mwh: Vec<f64>,
    /// Current charge state `b_j` (MWh), in `[0, capacity]`.
    pub charge_mwh: Vec<f64>,
    /// Maximum charging power (MW).
    pub charge_rate_mw: Vec<f64>,
    /// Maximum discharging power (MW).
    pub discharge_rate_mw: Vec<f64>,
    /// Opportunity value `κ_j` of stored energy ($/MWh): discharging is
    /// charged `κ_j·h·d_j`, charging is credited the same amount.
    pub value_per_mwh: Vec<f64>,
    /// Quadratic throughput-degradation coefficient `γ` ($·h/MW² per
    /// slot): every slot adds `γ·h·d_j²` dollars of battery wear.
    pub degradation_per_mwh: f64,
    /// Fuel-cell ramp limit `r_j` (MW per slot); `f64::INFINITY` disables
    /// the ramp constraint.
    pub ramp_mw: Vec<f64>,
    /// Previous slot's fuel-cell output `μ_j(t−1)` (MW) — the ramp
    /// anchor.
    pub mu_prev_mw: Vec<f64>,
}

impl StorageParams {
    /// Number of datacenters this parameter set describes.
    #[must_use]
    pub fn n_datacenters(&self) -> usize {
        self.capacity_mwh.len()
    }

    /// Whether datacenter `j` has a battery at all. Inactive datacenters
    /// take no storage step and keep `d_j = +0.0`, which is what makes a
    /// zero-capacity fleet reproduce the spatial-only solution bit for
    /// bit.
    #[must_use]
    pub fn active(&self, j: usize) -> bool {
        self.capacity_mwh[j] > 0.0
    }

    /// The net-discharge box `[d_lo, d_hi]` (MW) for datacenter `j` over a
    /// slot of `h` hours: discharge is limited by the converter and the
    /// energy in the battery, charge by the converter and the remaining
    /// headroom.
    #[must_use]
    pub fn discharge_bounds(&self, j: usize, h: f64) -> (f64, f64) {
        let hi = self.discharge_rate_mw[j].min(self.charge_mwh[j] / h);
        let lo = -self.charge_rate_mw[j].min((self.capacity_mwh[j] - self.charge_mwh[j]) / h);
        (lo, hi)
    }

    /// The ramp-tightened fuel-cell box `[μ_lo, μ_hi]` for datacenter `j`
    /// with nameplate bound `mu_max`. With `ramp_mw = ∞` this is exactly
    /// `[0, mu_max]` (bit-identical to the unconstrained box).
    #[must_use]
    pub fn mu_bounds(&self, j: usize, mu_max: f64) -> (f64, f64) {
        let lo = (self.mu_prev_mw[j] - self.ramp_mw[j]).max(0.0);
        let hi = (self.mu_prev_mw[j] + self.ramp_mw[j]).min(mu_max);
        (lo, hi)
    }

    /// Validates shapes and ranges against a fleet of `n` datacenters with
    /// fuel-cell bounds `mu_max`.
    ///
    /// # Errors
    ///
    /// [`ModelError`] when a vector has the wrong length, a value is
    /// non-finite (the ramp may be `+∞`), a capacity/rate/value is
    /// negative, a charge state leaves `[0, capacity]`, or a previous
    /// output leaves `[0, mu_max]`.
    pub fn validate(&self, n: usize, mu_max: &[f64]) -> Result<()> {
        let lens = [
            self.capacity_mwh.len(),
            self.charge_mwh.len(),
            self.charge_rate_mw.len(),
            self.discharge_rate_mw.len(),
            self.value_per_mwh.len(),
            self.ramp_mw.len(),
            self.mu_prev_mw.len(),
        ];
        if lens.iter().any(|&l| l != n) {
            return Err(ModelError::dim(format!(
                "storage parameters must have {n} datacenters, got {lens:?}"
            )));
        }
        if !self.degradation_per_mwh.is_finite() || self.degradation_per_mwh < 0.0 {
            return Err(ModelError::param(format!(
                "degradation coefficient must be finite and nonnegative, got {}",
                self.degradation_per_mwh
            )));
        }
        for (j, &mu_cap) in mu_max.iter().enumerate().take(n) {
            let cap = self.capacity_mwh[j];
            let charge = self.charge_mwh[j];
            let finite = [
                cap,
                charge,
                self.charge_rate_mw[j],
                self.discharge_rate_mw[j],
                self.value_per_mwh[j],
                self.mu_prev_mw[j],
            ];
            if finite.iter().any(|v| !v.is_finite()) || self.ramp_mw[j].is_nan() {
                return Err(ModelError::param(format!(
                    "storage parameters of datacenter {j} must be finite"
                )));
            }
            if cap < 0.0
                || self.charge_rate_mw[j] < 0.0
                || self.discharge_rate_mw[j] < 0.0
                || self.value_per_mwh[j] < 0.0
                || self.ramp_mw[j] < 0.0
            {
                return Err(ModelError::param(format!(
                    "storage capacity/rates/value/ramp of datacenter {j} must be nonnegative"
                )));
            }
            if !(0.0..=cap).contains(&charge) {
                return Err(ModelError::param(format!(
                    "charge state {charge} MWh of datacenter {j} leaves [0, {cap}]"
                )));
            }
            if !(0.0..=mu_cap).contains(&self.mu_prev_mw[j]) {
                return Err(ModelError::param(format!(
                    "previous fuel-cell output {} MW of datacenter {j} leaves [0, {mu_cap}]",
                    self.mu_prev_mw[j]
                )));
            }
        }
        Ok(())
    }
}

/// Static fleet-level storage description: what a scenario configures once
/// and a receding-horizon driver turns into per-slot [`StorageParams`] as
/// the charge state evolves. Every datacenter gets the same battery.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StorageFleet {
    /// Usable battery capacity per datacenter (MWh).
    pub capacity_mwh: f64,
    /// Maximum charging power per datacenter (MW).
    pub charge_rate_mw: f64,
    /// Maximum discharging power per datacenter (MW).
    pub discharge_rate_mw: f64,
    /// Initial state of charge as a fraction of capacity, in `[0, 1]`.
    pub initial_charge_frac: f64,
    /// Opportunity value of stored energy `κ` ($/MWh), uniform across the
    /// fleet.
    pub value_per_mwh: f64,
    /// Quadratic degradation coefficient `γ` ($·h/MW² per slot).
    pub degradation_per_mwh: f64,
    /// Fuel-cell ramp limit (MW per slot); `f64::INFINITY` disables it.
    pub ramp_mw: f64,
}

impl StorageFleet {
    /// A fleet of identical batteries with symmetric converter rates,
    /// starting empty, with no opportunity value, no degradation cost, and
    /// no ramp limit.
    #[must_use]
    pub fn new(capacity_mwh: f64, rate_mw: f64) -> Self {
        StorageFleet {
            capacity_mwh,
            charge_rate_mw: rate_mw,
            discharge_rate_mw: rate_mw,
            initial_charge_frac: 0.0,
            value_per_mwh: 0.0,
            degradation_per_mwh: 0.0,
            ramp_mw: f64::INFINITY,
        }
    }

    /// Sets the opportunity value of stored energy ($/MWh).
    #[must_use]
    pub fn value_per_mwh(mut self, v: f64) -> Self {
        self.value_per_mwh = v;
        self
    }

    /// Sets the quadratic degradation coefficient `γ`.
    #[must_use]
    pub fn degradation(mut self, gamma: f64) -> Self {
        self.degradation_per_mwh = gamma;
        self
    }

    /// Sets the fuel-cell ramp limit (MW per slot).
    #[must_use]
    pub fn ramp_mw(mut self, r: f64) -> Self {
        self.ramp_mw = r;
        self
    }

    /// Sets the initial state of charge as a fraction of capacity.
    #[must_use]
    pub fn initial_charge_frac(mut self, f: f64) -> Self {
        self.initial_charge_frac = f;
        self
    }

    /// Validates the fleet description.
    ///
    /// # Errors
    ///
    /// [`ModelError::InvalidParameter`] when a value is non-finite (the
    /// ramp may be `+∞`), negative, or the initial charge fraction leaves
    /// `[0, 1]`.
    pub fn validate(&self) -> Result<()> {
        let finite = [
            self.capacity_mwh,
            self.charge_rate_mw,
            self.discharge_rate_mw,
            self.initial_charge_frac,
            self.value_per_mwh,
            self.degradation_per_mwh,
        ];
        if finite.iter().any(|v| !v.is_finite()) || self.ramp_mw.is_nan() {
            return Err(ModelError::param("storage fleet values must be finite"));
        }
        if finite.iter().any(|&v| v < 0.0) || self.ramp_mw < 0.0 {
            return Err(ModelError::param(
                "storage fleet values must be nonnegative",
            ));
        }
        if self.initial_charge_frac > 1.0 {
            return Err(ModelError::param(format!(
                "initial charge fraction {} leaves [0, 1]",
                self.initial_charge_frac
            )));
        }
        Ok(())
    }

    /// The per-slot parameters at the start of the horizon: every battery
    /// at its initial charge, previous fuel-cell output zero.
    #[must_use]
    pub fn initial_params(&self, n: usize) -> StorageParams {
        self.params(
            vec![self.initial_charge_frac * self.capacity_mwh; n],
            vec![0.0; n],
        )
    }

    /// The per-slot parameters for a given charge state and previous
    /// fuel-cell output (what a receding-horizon driver rebuilds every
    /// hour). `value_per_mwh` can be overridden per datacenter afterwards
    /// by mutating the returned struct.
    #[must_use]
    pub fn params(&self, charge_mwh: Vec<f64>, mu_prev_mw: Vec<f64>) -> StorageParams {
        let n = charge_mwh.len();
        StorageParams {
            capacity_mwh: vec![self.capacity_mwh; n],
            charge_mwh,
            charge_rate_mw: vec![self.charge_rate_mw; n],
            discharge_rate_mw: vec![self.discharge_rate_mw; n],
            value_per_mwh: vec![self.value_per_mwh; n],
            degradation_per_mwh: self.degradation_per_mwh,
            ramp_mw: vec![self.ramp_mw; n],
            mu_prev_mw,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fleet() -> StorageFleet {
        StorageFleet::new(2.0, 0.5)
            .value_per_mwh(40.0)
            .degradation(0.1)
            .initial_charge_frac(0.25)
    }

    #[test]
    fn initial_params_pass_validation() {
        let p = fleet().initial_params(3);
        assert_eq!(p.n_datacenters(), 3);
        p.validate(3, &[1.0, 1.0, 1.0]).unwrap();
        assert!(p.active(0));
        assert_eq!(p.charge_mwh, vec![0.5; 3]);
    }

    #[test]
    fn discharge_bounds_track_charge_state() {
        let mut p = fleet().initial_params(1);
        // Charge 0.5 MWh over h = 1: discharge limited by energy, charge
        // by the converter (headroom 1.5 MWh > rate 0.5 MW).
        let (lo, hi) = p.discharge_bounds(0, 1.0);
        assert_eq!(hi, 0.5);
        assert_eq!(lo, -0.5);
        // Nearly full battery: charging limited by headroom.
        p.charge_mwh[0] = 1.9;
        let (lo, hi) = p.discharge_bounds(0, 1.0);
        assert_eq!(hi, 0.5);
        assert!((lo + 0.1).abs() < 1e-12);
        // Empty battery: cannot discharge at all.
        p.charge_mwh[0] = 0.0;
        let (_, hi) = p.discharge_bounds(0, 1.0);
        assert_eq!(hi, 0.0);
    }

    #[test]
    fn infinite_ramp_reproduces_the_plain_box_exactly() {
        let p = fleet().initial_params(2);
        let (lo, hi) = p.mu_bounds(0, 0.48);
        assert_eq!(lo.to_bits(), 0.0f64.to_bits());
        assert_eq!(hi.to_bits(), 0.48f64.to_bits());
    }

    #[test]
    fn finite_ramp_tightens_around_previous_output() {
        let mut p = fleet().ramp_mw(0.1).initial_params(1);
        p.mu_prev_mw[0] = 0.3;
        let (lo, hi) = p.mu_bounds(0, 0.48);
        assert!((lo - 0.2).abs() < 1e-12);
        assert!((hi - 0.4).abs() < 1e-12);
        // Near the nameplate bound the box clips.
        p.mu_prev_mw[0] = 0.45;
        let (_, hi) = p.mu_bounds(0, 0.48);
        assert_eq!(hi, 0.48);
    }

    #[test]
    fn validation_rejects_bad_shapes_and_ranges() {
        let mu_max = [1.0, 1.0];
        let good = fleet().initial_params(2);
        good.validate(2, &mu_max).unwrap();
        assert!(good.validate(3, &[1.0; 3]).is_err());

        let mut bad = good.clone();
        bad.charge_mwh[1] = 99.0; // above capacity
        assert!(bad.validate(2, &mu_max).is_err());

        let mut bad = good.clone();
        bad.capacity_mwh[0] = f64::NAN;
        assert!(bad.validate(2, &mu_max).is_err());

        let mut bad = good.clone();
        bad.mu_prev_mw[0] = 2.0; // above mu_max
        assert!(bad.validate(2, &mu_max).is_err());

        let mut bad = good.clone();
        bad.ramp_mw[0] = -1.0;
        assert!(bad.validate(2, &mu_max).is_err());

        let mut bad = good;
        bad.degradation_per_mwh = -0.5;
        assert!(bad.validate(2, &mu_max).is_err());
    }

    #[test]
    fn fleet_validation() {
        fleet().validate().unwrap();
        assert!(StorageFleet::new(-1.0, 0.5).validate().is_err());
        assert!(StorageFleet::new(1.0, f64::NAN).validate().is_err());
        assert!(fleet().initial_charge_frac(1.5).validate().is_err());
        // An infinite ramp is explicitly legal (= unconstrained).
        fleet().ramp_mw(f64::INFINITY).validate().unwrap();
    }
}
