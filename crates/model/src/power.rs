use crate::{ModelError, Result};

/// The linear server power model of §II-B1.
///
/// Empirically (Qureshi 2010, cited by the paper), the aggregate power of
/// `S` homogeneous servers handling workload `λ` is
/// `S·P_idle + (P_peak − P_idle)·λ`; multiplying by the facility PUE gives
/// the total draw. The paper's defaults are `P_peak = 200 W`,
/// `P_idle = 100 W`, `PUE = 1.2`.
///
/// # Example
///
/// ```
/// use ufc_model::ServerPowerModel;
///
/// # fn main() -> Result<(), ufc_model::ModelError> {
/// let m = ServerPowerModel::paper_default();
/// // α for 20k servers at PUE 1.2: 20e3 × 100 W × 1.2 = 2.4 MW.
/// assert!((m.alpha_mw(20.0, 1.2)? - 2.4).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServerPowerModel {
    /// Idle power per server in watts.
    pub idle_w: f64,
    /// Peak power per server in watts.
    pub peak_w: f64,
}

impl ServerPowerModel {
    /// The paper's §IV-A setting: 100 W idle, 200 W peak.
    #[must_use]
    pub fn paper_default() -> Self {
        ServerPowerModel {
            idle_w: 100.0,
            peak_w: 200.0,
        }
    }

    /// Creates a model after validating `0 ≤ idle ≤ peak`, `peak > 0`.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidParameter`] on violation.
    pub fn new(idle_w: f64, peak_w: f64) -> Result<Self> {
        if !(idle_w >= 0.0 && peak_w > 0.0 && idle_w <= peak_w) {
            return Err(ModelError::param(format!(
                "server power needs 0 ≤ idle ≤ peak and peak > 0, got idle={idle_w}, peak={peak_w}"
            )));
        }
        Ok(ServerPowerModel { idle_w, peak_w })
    }

    /// Fixed power term `α = S·P_idle·PUE` in MW, with `S` in kilo-servers.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidParameter`] for nonpositive inputs.
    pub fn alpha_mw(&self, servers_k: f64, pue: f64) -> Result<f64> {
        validate_s_pue(servers_k, pue)?;
        // kilo-servers × W = kW; ×1e−3 → MW.
        Ok(servers_k * self.idle_w * pue * 1e-3)
    }

    /// Load-proportional term `β = (P_peak − P_idle)·PUE` in MW per
    /// kilo-server of workload.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidParameter`] for nonpositive PUE.
    pub fn beta_mw_per_kserver(&self, pue: f64) -> Result<f64> {
        validate_s_pue(1.0, pue)?;
        Ok((self.peak_w - self.idle_w) * pue * 1e-3)
    }

    /// Total demand `α + β·load` in MW for a datacenter with `servers_k`
    /// kilo-servers at utilization `load_k` kilo-servers of work.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidParameter`] on invalid sizes or loads
    /// exceeding the server count.
    pub fn demand_mw(&self, servers_k: f64, pue: f64, load_k: f64) -> Result<f64> {
        if load_k < 0.0 || load_k > servers_k * (1.0 + 1e-9) {
            return Err(ModelError::param(format!(
                "load {load_k} kservers outside [0, {servers_k}]"
            )));
        }
        Ok(self.alpha_mw(servers_k, pue)? + self.beta_mw_per_kserver(pue)? * load_k)
    }
}

fn validate_s_pue(servers_k: f64, pue: f64) -> Result<()> {
    if servers_k <= 0.0 {
        return Err(ModelError::param(format!(
            "server count must be positive, got {servers_k}"
        )));
    }
    if pue < 1.0 {
        return Err(ModelError::param(format!(
            "PUE cannot be below 1.0, got {pue}"
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_values() {
        let m = ServerPowerModel::paper_default();
        assert_eq!(m.idle_w, 100.0);
        assert_eq!(m.peak_w, 200.0);
        // β = 100 W × 1.2 = 0.12 MW/kserver.
        assert!((m.beta_mw_per_kserver(1.2).unwrap() - 0.12).abs() < 1e-12);
    }

    #[test]
    fn demand_interpolates_idle_to_peak() {
        let m = ServerPowerModel::paper_default();
        // 10k servers, PUE 1: idle 1 MW, fully loaded 2 MW.
        assert!((m.demand_mw(10.0, 1.0, 0.0).unwrap() - 1.0).abs() < 1e-12);
        assert!((m.demand_mw(10.0, 1.0, 10.0).unwrap() - 2.0).abs() < 1e-12);
        assert!((m.demand_mw(10.0, 1.0, 5.0).unwrap() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn rejects_invalid_parameters() {
        assert!(ServerPowerModel::new(-1.0, 100.0).is_err());
        assert!(ServerPowerModel::new(200.0, 100.0).is_err());
        assert!(ServerPowerModel::new(0.0, 0.0).is_err());
        let m = ServerPowerModel::paper_default();
        assert!(m.alpha_mw(0.0, 1.2).is_err());
        assert!(m.alpha_mw(10.0, 0.9).is_err());
        assert!(m.demand_mw(10.0, 1.2, 11.0).is_err());
        assert!(m.demand_mw(10.0, 1.2, -1.0).is_err());
    }

    #[test]
    fn pue_scales_linearly() {
        let m = ServerPowerModel::paper_default();
        let d1 = m.demand_mw(10.0, 1.0, 5.0).unwrap();
        let d2 = m.demand_mw(10.0, 2.0, 5.0).unwrap();
        assert!((d2 - 2.0 * d1).abs() < 1e-12);
    }
}
