//! Seeded random instance generation for the differential fuzzer.
//!
//! [`arbitrary_params`] maps a 64-bit seed to a whole candidate instance —
//! sizes, utility/tariff shapes, storage/ramp data — deliberately including
//! the degenerate corners the solvers must survive: zero-demand front-ends,
//! zero-capacity datacenters, `p₀` below/above/crossing every grid price,
//! zero or constant latency rows and zero latency weight (near-singular
//! rank-one Hessians), and infeasible capacity totals. Roughly a tenth of
//! the seeds build *invalid* parameter sets on purpose: those must be
//! rejected by [`InstanceParams::build`] with the **same typed error every
//! time**, which the fuzzer cross-checks.
//!
//! Everything here is pure and deterministic: the same seed always produces
//! the same [`InstanceParams`], which is what lets a fuzz failure shrink to
//! a replayable corpus entry.

use crate::{EmissionCostFn, Result, StorageParams, UfcInstance};

/// SplitMix64 (Steele et al.) — a tiny, high-quality, dependency-free PRNG.
///
/// Deliberately duplicated from the trace substrate rather than shared: the
/// generator's stream must stay frozen so corpus seeds replay forever, even
/// if other crates later tune their RNGs.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed; equal seeds yield equal streams.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform draw in `[lo, hi)`.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.next_f64()
    }

    /// Uniform integer in `[0, n)`; `n` must be positive.
    pub fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }

    /// `true` with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }
}

/// The raw arguments of one candidate instance, *before* validation — the
/// fuzzer's unit of generation, shrinking, and corpus persistence.
///
/// Unlike [`UfcInstance`] this type enforces nothing, so it can represent
/// deliberately broken inputs; [`InstanceParams::build`] runs them through
/// the real validating constructors.
#[derive(Debug, Clone, PartialEq)]
pub struct InstanceParams {
    /// Per-front-end arrivals `A_i` (kilo-servers).
    pub arrivals: Vec<f64>,
    /// Per-datacenter capacities `S_j` (kilo-servers).
    pub capacities: Vec<f64>,
    /// Fixed power term `α_j` (MW).
    pub alpha: Vec<f64>,
    /// Load-proportional power `β_j` (MW per kilo-server).
    pub beta: Vec<f64>,
    /// Fuel-cell capacities `μ_j^max` (MW).
    pub mu_max: Vec<f64>,
    /// Grid prices `p_j` ($/MWh).
    pub grid_price: Vec<f64>,
    /// Fuel-cell price `p₀` ($/MWh).
    pub fuel_cell_price: f64,
    /// Carbon rates `C_j` (tons/MWh).
    pub carbon_t_per_mwh: Vec<f64>,
    /// Latency matrix `L_ij` (seconds), `M × N`.
    pub latency_s: Vec<Vec<f64>>,
    /// Latency weight `w` ($/s² per server).
    pub weight_per_server: f64,
    /// Emission-cost functions `V_j`.
    pub emission_cost: Vec<EmissionCostFn>,
    /// Slot length (hours).
    pub slot_hours: f64,
    /// Optional storage/ramp extension data.
    pub storage: Option<StorageParams>,
}

impl InstanceParams {
    /// Runs the parameters through the real validating constructors.
    ///
    /// # Errors
    ///
    /// Whatever [`UfcInstance::new`] or
    /// [`UfcInstance::with_storage`] reject — the fuzzer asserts these
    /// errors are deterministic and engine-independent.
    pub fn build(&self) -> Result<UfcInstance> {
        let inst = UfcInstance::new(
            self.arrivals.clone(),
            self.capacities.clone(),
            self.alpha.clone(),
            self.beta.clone(),
            self.mu_max.clone(),
            self.grid_price.clone(),
            self.fuel_cell_price,
            self.carbon_t_per_mwh.clone(),
            self.latency_s.clone(),
            self.weight_per_server,
            self.emission_cost.clone(),
            self.slot_hours,
        )?;
        match &self.storage {
            Some(sp) => inst.with_storage(sp.clone()),
            None => Ok(inst),
        }
    }
}

/// How the fuel-cell price relates to the grid prices — the tariff corner
/// the ROADMAP calls out (`p0` below, above, or crossing every grid price
/// flips which energy source each datacenter prefers).
fn draw_fuel_cell_price(rng: &mut SplitMix64, grid_price: &[f64]) -> f64 {
    let lo = grid_price.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = grid_price.iter().copied().fold(0.0f64, f64::max);
    match rng.below(3) {
        0 => rng.uniform(0.0, lo.max(1.0)), // below every grid price
        1 => rng.uniform(hi, hi + 60.0),    // above every grid price
        _ => rng.uniform(lo.min(hi), hi.max(lo)), // crossing the spread
    }
}

fn draw_emission_cost(rng: &mut SplitMix64) -> EmissionCostFn {
    match rng.below(3) {
        0 => EmissionCostFn::Linear {
            rate: rng.uniform(0.0, 60.0),
        },
        1 => EmissionCostFn::Quadratic {
            linear: rng.uniform(0.0, 30.0),
            quad: rng.uniform(0.0, 8.0),
        },
        _ => {
            let t1 = rng.uniform(0.05, 1.0);
            let t2 = t1 + rng.uniform(0.05, 1.0);
            let r1 = rng.uniform(0.0, 20.0);
            let r2 = r1 + rng.uniform(0.0, 20.0);
            let r3 = r2 + rng.uniform(0.0, 20.0);
            EmissionCostFn::Stepped {
                thresholds: vec![t1, t2],
                rates: vec![r1, r2, r3],
            }
        }
    }
}

fn draw_storage(rng: &mut SplitMix64, n: usize, mu_max: &[f64]) -> StorageParams {
    let mut capacity_mwh = Vec::with_capacity(n);
    let mut charge_mwh = Vec::with_capacity(n);
    let mut charge_rate_mw = Vec::with_capacity(n);
    let mut discharge_rate_mw = Vec::with_capacity(n);
    let mut value_per_mwh = Vec::with_capacity(n);
    let mut ramp_mw = Vec::with_capacity(n);
    let mut mu_prev_mw = Vec::with_capacity(n);
    for &cap_mu in mu_max.iter().take(n) {
        // A zero-capacity battery is a legal "no battery here" marker.
        let cap = if rng.chance(0.25) {
            0.0
        } else {
            rng.uniform(0.1, 2.0)
        };
        capacity_mwh.push(cap);
        charge_mwh.push(rng.uniform(0.0, 1.0) * cap);
        charge_rate_mw.push(rng.uniform(0.05, 1.0));
        discharge_rate_mw.push(rng.uniform(0.05, 1.0));
        value_per_mwh.push(rng.uniform(0.0, 100.0));
        ramp_mw.push(if rng.chance(0.5) {
            f64::INFINITY
        } else {
            rng.uniform(0.02, 0.5)
        });
        mu_prev_mw.push(rng.uniform(0.0, 1.0) * cap_mu);
    }
    StorageParams {
        capacity_mwh,
        charge_mwh,
        charge_rate_mw,
        discharge_rate_mw,
        value_per_mwh,
        degradation_per_mwh: rng.uniform(0.0, 3.0),
        ramp_mw,
        mu_prev_mw,
    }
}

/// Generates one candidate instance from a seed (pure and deterministic).
///
/// Degenerate corners are injected with fixed probabilities: zero-demand
/// front-ends (~20% of instances carry at least one), zero-capacity
/// datacenters (~8%, must be *rejected*), infeasible capacity totals (~5%,
/// rejected), zero/constant latency rows and zero latency weight
/// (near-singular Hessians), all three tariff shapes, and `p₀`
/// below/above/crossing the grid-price spread. ~30% of instances carry
/// the storage/ramp extension.
#[must_use]
pub fn arbitrary_params(seed: u64) -> InstanceParams {
    let mut rng = SplitMix64::new(seed);
    let m = 1 + rng.below(5);
    let n = 1 + rng.below(4);

    let mut arrivals: Vec<f64> = (0..m).map(|_| rng.uniform(0.2, 3.0)).collect();
    if rng.chance(0.2) {
        let i = rng.below(m);
        arrivals[i] = 0.0;
    }

    let alpha: Vec<f64> = (0..n).map(|_| rng.uniform(0.05, 0.5)).collect();
    let beta: Vec<f64> = (0..n).map(|_| rng.uniform(0.05, 0.3)).collect();

    // Capacities that cover total arrivals with headroom, then the two
    // rejection corners: a zero-capacity datacenter, or totals squeezed
    // below the arrivals (infeasible).
    let total_a: f64 = arrivals.iter().sum();
    let mut capacities: Vec<f64> = (0..n).map(|_| rng.uniform(0.3, 3.0)).collect();
    let total_s: f64 = capacities.iter().sum();
    if total_s < total_a {
        let scale = (total_a / total_s) * 1.2;
        for s in &mut capacities {
            *s *= scale;
        }
    }
    if rng.chance(0.08) {
        let j = rng.below(n);
        capacities[j] = 0.0;
    } else if rng.chance(0.05) && total_a > 0.0 {
        let total_s: f64 = capacities.iter().sum();
        let scale = 0.5 * total_a / total_s;
        for s in &mut capacities {
            *s *= scale;
        }
    }

    // Fuel cells: absent, partial, or covering peak demand (the §IV-A
    // assumption that makes the FuelCellOnly strategy feasible).
    let mu_max: Vec<f64> = (0..n)
        .map(|j| {
            let peak = alpha[j] + beta[j] * capacities[j];
            match rng.below(3) {
                0 => 0.0,
                1 => rng.uniform(0.0, peak),
                _ => peak * rng.uniform(1.0, 1.5),
            }
        })
        .collect();

    let grid_price: Vec<f64> = (0..n).map(|_| rng.uniform(20.0, 120.0)).collect();
    let fuel_cell_price = draw_fuel_cell_price(&mut rng, &grid_price);
    let carbon_t_per_mwh: Vec<f64> = (0..n).map(|_| rng.uniform(0.0, 1.0)).collect();

    // Latency rows, with the near-singular corners: a constant row makes
    // the rank-one disutility blind to routing; a zero row (or zero
    // weight) removes the utility curvature entirely.
    let latency_s: Vec<Vec<f64>> = (0..m)
        .map(|_| {
            if rng.chance(0.08) {
                vec![0.0; n]
            } else if rng.chance(0.08) {
                vec![rng.uniform(0.005, 0.08); n]
            } else {
                (0..n).map(|_| rng.uniform(0.001, 0.1)).collect()
            }
        })
        .collect();
    let weight_per_server = if rng.chance(0.07) {
        0.0
    } else {
        rng.uniform(1.0, 40.0)
    };

    let emission_cost: Vec<EmissionCostFn> = (0..n).map(|_| draw_emission_cost(&mut rng)).collect();
    let slot_hours = if rng.chance(0.8) {
        1.0
    } else {
        rng.uniform(0.25, 4.0)
    };

    let storage = if rng.chance(0.3) {
        Some(draw_storage(&mut rng, n, &mu_max))
    } else {
        None
    };

    InstanceParams {
        arrivals,
        capacities,
        alpha,
        beta,
        mu_max,
        grid_price,
        fuel_cell_price,
        carbon_t_per_mwh,
        latency_s,
        weight_per_server,
        emission_cost,
        slot_hours,
        storage,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        for seed in [0u64, 1, 42, 0xDEAD_BEEF] {
            assert_eq!(arbitrary_params(seed), arbitrary_params(seed));
        }
    }

    #[test]
    fn build_errors_are_deterministic() {
        for seed in 0..400u64 {
            let p = arbitrary_params(seed);
            match (p.build(), p.build()) {
                (Ok(a), Ok(b)) => assert_eq!(a, b),
                (Err(a), Err(b)) => assert_eq!(a.to_string(), b.to_string()),
                (a, b) => panic!("seed {seed}: nondeterministic build {a:?} vs {b:?}"),
            }
        }
    }

    #[test]
    fn sweep_hits_the_degenerate_corners() {
        let (mut zero_demand, mut rejected, mut storage, mut stepped, mut below, mut above) =
            (0, 0, 0, 0, 0, 0);
        for seed in 0..600u64 {
            let p = arbitrary_params(seed);
            if p.arrivals.contains(&0.0) {
                zero_demand += 1;
            }
            if p.build().is_err() {
                rejected += 1;
            }
            if p.storage.is_some() {
                storage += 1;
            }
            if p.emission_cost
                .iter()
                .any(|v| matches!(v, EmissionCostFn::Stepped { .. }))
            {
                stepped += 1;
            }
            let lo = p.grid_price.iter().copied().fold(f64::INFINITY, f64::min);
            let hi = p.grid_price.iter().copied().fold(0.0f64, f64::max);
            if p.fuel_cell_price < lo {
                below += 1;
            }
            if p.fuel_cell_price > hi {
                above += 1;
            }
        }
        for (name, count) in [
            ("zero-demand front-ends", zero_demand),
            ("rejected instances", rejected),
            ("storage instances", storage),
            ("stepped tariffs", stepped),
            ("p0 below all grid prices", below),
            ("p0 above all grid prices", above),
        ] {
            assert!(count > 10, "only {count} of 600 seeds hit: {name}");
        }
    }

    #[test]
    fn most_instances_are_valid() {
        let ok = (0..300u64)
            .filter(|&s| arbitrary_params(s).build().is_ok())
            .count();
        assert!(ok > 200, "only {ok}/300 seeds built valid instances");
    }
}
