use crate::{DatacenterSpec, EmissionCostFn, ModelError, Result};

/// A single-time-slot UFC maximization instance — the data of problem (3).
///
/// The paper's decision variables (`λ_ij`, `μ_j`, and the derived grid draw
/// `ν_j`) live in [`crate::OperatingPoint`]; this type carries everything
/// else: arrivals, capacities, the affine power model `(α_j, β_j)`, fuel
/// cell capacities and price, grid prices, carbon rates, latencies, the
/// latency weight `w`, and the per-datacenter emission-cost functions `V_j`.
///
/// Invariants are validated at construction: consistent dimensions,
/// nonnegative arrivals, positive capacities, total capacity covering total
/// arrivals, nonnegative prices, `PUE`-derived coefficients positive,
/// latencies nonnegative.
#[derive(Debug, Clone, PartialEq)]
pub struct UfcInstance {
    /// Per-front-end arrivals `A_i` in kilo-servers (length `M`).
    pub arrivals: Vec<f64>,
    /// Per-datacenter capacities `S_j` in kilo-servers (length `N`).
    pub capacities: Vec<f64>,
    /// Fixed power term `α_j` in MW (length `N`).
    pub alpha: Vec<f64>,
    /// Load-proportional power `β_j` in MW per kilo-server (length `N`).
    pub beta: Vec<f64>,
    /// Fuel-cell output capacity `μ_j^max` in MW (length `N`).
    pub mu_max: Vec<f64>,
    /// Grid electricity price `p_j` in $/MWh (length `N`).
    pub grid_price: Vec<f64>,
    /// Fuel-cell generation price `p₀` in $/MWh.
    pub fuel_cell_price: f64,
    /// Carbon emission rate `C_j` in **tons/MWh** (length `N`).
    pub carbon_t_per_mwh: Vec<f64>,
    /// Propagation latency `L_ij` in seconds (`M × N`).
    pub latency_s: Vec<Vec<f64>>,
    /// Latency weight `w` in the paper's unit: $/s² per *server*.
    pub weight_per_server: f64,
    /// Emission cost functions `V_j` (length `N`).
    pub emission_cost: Vec<EmissionCostFn>,
    /// Slot length in hours (energy = power × slot).
    pub slot_hours: f64,
    /// Optional congestion (queueing-delay) cost — an extension beyond the
    /// paper; `None` reproduces the paper's model exactly.
    pub queueing: Option<crate::QueueingCost>,
    /// Optional battery storage + fuel-cell ramp data (the temporal
    /// coupling extension, solved as the 5th ADM-G block); `None`
    /// reproduces the paper's purely spatial model exactly.
    pub storage: Option<crate::StorageParams>,
}

impl UfcInstance {
    /// Validates and constructs an instance.
    ///
    /// # Errors
    ///
    /// * [`ModelError::DimensionMismatch`] when vector lengths disagree.
    /// * [`ModelError::InvalidParameter`] on out-of-range values.
    /// * [`ModelError::Infeasible`] when `Σ S_j < Σ A_i`.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        arrivals: Vec<f64>,
        capacities: Vec<f64>,
        alpha: Vec<f64>,
        beta: Vec<f64>,
        mu_max: Vec<f64>,
        grid_price: Vec<f64>,
        fuel_cell_price: f64,
        carbon_t_per_mwh: Vec<f64>,
        latency_s: Vec<Vec<f64>>,
        weight_per_server: f64,
        emission_cost: Vec<EmissionCostFn>,
        slot_hours: f64,
    ) -> Result<Self> {
        let m = arrivals.len();
        let n = capacities.len();
        if m == 0 || n == 0 {
            return Err(ModelError::param(
                "need at least one front-end and datacenter",
            ));
        }
        for (name, v) in [
            ("alpha", &alpha),
            ("beta", &beta),
            ("mu_max", &mu_max),
            ("grid_price", &grid_price),
            ("carbon", &carbon_t_per_mwh),
        ] {
            if v.len() != n {
                return Err(ModelError::dim(format!(
                    "{name} has length {} but there are {n} datacenters",
                    v.len()
                )));
            }
        }
        if emission_cost.len() != n {
            return Err(ModelError::dim(format!(
                "emission_cost has length {} but there are {n} datacenters",
                emission_cost.len()
            )));
        }
        if latency_s.len() != m || latency_s.iter().any(|row| row.len() != n) {
            return Err(ModelError::dim(format!("latency matrix must be {m}x{n}")));
        }
        // Finiteness first: a NaN compares false against every range
        // check below and would otherwise slip straight into the solver,
        // where it can only surface as a divergence-gate trip.
        for (name, v) in [
            ("arrivals", &arrivals),
            ("capacities", &capacities),
            ("alpha", &alpha),
            ("beta", &beta),
            ("mu_max", &mu_max),
            ("grid_price", &grid_price),
            ("carbon rates", &carbon_t_per_mwh),
        ] {
            if v.iter().any(|x| !x.is_finite()) {
                return Err(ModelError::param(format!("{name} must be finite")));
            }
        }
        if latency_s.iter().flatten().any(|v| !v.is_finite()) {
            return Err(ModelError::param("latencies must be finite"));
        }
        for (name, v) in [
            ("fuel-cell price", fuel_cell_price),
            ("latency weight", weight_per_server),
            ("slot length", slot_hours),
        ] {
            if !v.is_finite() {
                return Err(ModelError::param(format!("{name} must be finite")));
            }
        }
        // Zero is allowed: a front-end with no demand routes nothing and
        // contributes zero utility; the solvers handle λ_i ≡ 0 exactly.
        if arrivals.iter().any(|&a| a < 0.0) {
            return Err(ModelError::param("arrivals cannot be negative"));
        }
        if capacities.iter().any(|&s| s <= 0.0) {
            return Err(ModelError::param("capacities must be positive"));
        }
        if alpha.iter().any(|&v| v <= 0.0) || beta.iter().any(|&v| v <= 0.0) {
            return Err(ModelError::param("power coefficients must be positive"));
        }
        if mu_max.iter().any(|&v| v < 0.0) {
            return Err(ModelError::param("fuel-cell capacity cannot be negative"));
        }
        if grid_price.iter().any(|&v| v < 0.0) || fuel_cell_price < 0.0 {
            return Err(ModelError::param("prices cannot be negative"));
        }
        if carbon_t_per_mwh.iter().any(|&v| v < 0.0) {
            return Err(ModelError::param("carbon rates cannot be negative"));
        }
        if latency_s.iter().flatten().any(|&v| v < 0.0) {
            return Err(ModelError::param("latencies cannot be negative"));
        }
        if weight_per_server < 0.0 {
            return Err(ModelError::param("latency weight cannot be negative"));
        }
        if slot_hours <= 0.0 {
            return Err(ModelError::param("slot length must be positive"));
        }
        let total_a: f64 = arrivals.iter().sum();
        let total_s: f64 = capacities.iter().sum();
        if total_a > total_s * (1.0 + 1e-9) {
            return Err(ModelError::infeasible(format!(
                "total arrivals {total_a} kservers exceed total capacity {total_s}"
            )));
        }
        Ok(UfcInstance {
            arrivals,
            capacities,
            alpha,
            beta,
            mu_max,
            grid_price,
            fuel_cell_price,
            carbon_t_per_mwh,
            latency_s,
            weight_per_server,
            emission_cost,
            slot_hours,
            queueing: None,
            storage: None,
        })
    }

    /// Enables the congestion-cost extension (see [`crate::QueueingCost`]).
    #[must_use]
    pub fn with_queueing(mut self, queueing: crate::QueueingCost) -> Self {
        self.queueing = Some(queueing);
        self
    }

    /// Enables the battery-storage + ramp-limit extension (see
    /// [`crate::StorageParams`]).
    ///
    /// # Errors
    ///
    /// Propagates validation failures from
    /// [`crate::StorageParams::validate`] against this instance's
    /// datacenter count and fuel-cell bounds.
    pub fn with_storage(mut self, storage: crate::StorageParams) -> Result<Self> {
        storage.validate(self.n_datacenters(), &self.mu_max)?;
        self.storage = Some(storage);
        Ok(self)
    }

    /// Builds the per-datacenter vectors from [`DatacenterSpec`]s.
    ///
    /// # Errors
    ///
    /// Propagates validation failures from [`UfcInstance::new`].
    #[allow(clippy::too_many_arguments)]
    pub fn from_specs(
        arrivals: Vec<f64>,
        specs: &[DatacenterSpec],
        grid_price: Vec<f64>,
        fuel_cell_price: f64,
        carbon_t_per_mwh: Vec<f64>,
        latency_s: Vec<Vec<f64>>,
        weight_per_server: f64,
        emission_cost: Vec<EmissionCostFn>,
        slot_hours: f64,
    ) -> Result<Self> {
        UfcInstance::new(
            arrivals,
            specs.iter().map(|d| d.servers_k).collect(),
            specs.iter().map(DatacenterSpec::alpha_mw).collect(),
            specs
                .iter()
                .map(DatacenterSpec::beta_mw_per_kserver)
                .collect(),
            specs.iter().map(|d| d.fuel_cell_capacity_mw).collect(),
            grid_price,
            fuel_cell_price,
            carbon_t_per_mwh,
            latency_s,
            weight_per_server,
            emission_cost,
            slot_hours,
        )
    }

    /// Number of datacenters `N`.
    #[must_use]
    pub fn n_datacenters(&self) -> usize {
        self.capacities.len()
    }

    /// Number of front-end proxies `M`.
    #[must_use]
    pub fn m_frontends(&self) -> usize {
        self.arrivals.len()
    }

    /// `Σ_i A_i` in kilo-servers.
    #[must_use]
    pub fn total_arrivals(&self) -> f64 {
        self.arrivals.iter().sum()
    }

    /// `Σ_j S_j` in kilo-servers.
    #[must_use]
    pub fn total_capacity(&self) -> f64 {
        self.capacities.iter().sum()
    }

    /// Latency weight converted to $/s² per **kilo-server** (the internal
    /// workload unit): `w × 1000`.
    #[must_use]
    pub fn weight_per_kserver(&self) -> f64 {
        self.weight_per_server * 1e3
    }

    /// Power demand of datacenter `j` (MW) at the given load (kilo-servers):
    /// `α_j + β_j·load`.
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range.
    #[must_use]
    pub fn demand_mw(&self, j: usize, load_k: f64) -> f64 {
        self.alpha[j] + self.beta[j] * load_k
    }

    /// `true` when every datacenter's fuel cells can cover its peak demand —
    /// the paper's §IV-A assumption, required for the *Fuel cell* strategy
    /// to be feasible.
    #[must_use]
    pub fn fuel_cells_cover_peak(&self) -> bool {
        (0..self.n_datacenters())
            .all(|j| self.mu_max[j] >= self.demand_mw(j, self.capacities[j]) - 1e-9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn tiny() -> UfcInstance {
        UfcInstance::new(
            vec![1.0, 2.0],   // arrivals (M=2)
            vec![2.0, 2.0],   // capacities (N=2)
            vec![0.24, 0.24], // alpha
            vec![0.12, 0.12], // beta
            vec![0.48, 0.48], // mu_max
            vec![30.0, 70.0], // prices
            80.0,             // p0
            vec![0.5, 0.3],   // carbon t/MWh
            vec![vec![0.01, 0.02], vec![0.02, 0.01]],
            10.0,
            vec![
                EmissionCostFn::linear(25.0).unwrap(),
                EmissionCostFn::linear(25.0).unwrap(),
            ],
            1.0,
        )
        .unwrap()
    }

    #[test]
    fn accessors() {
        let i = tiny();
        assert_eq!(i.n_datacenters(), 2);
        assert_eq!(i.m_frontends(), 2);
        assert_eq!(i.total_arrivals(), 3.0);
        assert_eq!(i.total_capacity(), 4.0);
        assert_eq!(i.weight_per_kserver(), 10_000.0);
        assert!((i.demand_mw(0, 1.0) - 0.36).abs() < 1e-12);
        assert!(i.fuel_cells_cover_peak());
    }

    #[test]
    fn rejects_overload() {
        let mut args = tiny();
        args.arrivals = vec![3.0, 3.0];
        let r = UfcInstance::new(
            args.arrivals,
            args.capacities,
            args.alpha,
            args.beta,
            args.mu_max,
            args.grid_price,
            args.fuel_cell_price,
            args.carbon_t_per_mwh,
            args.latency_s,
            args.weight_per_server,
            args.emission_cost,
            args.slot_hours,
        );
        assert!(matches!(r, Err(ModelError::Infeasible { .. })));
    }

    #[test]
    fn rejects_dimension_mismatch() {
        let i = tiny();
        let r = UfcInstance::new(
            i.arrivals.clone(),
            i.capacities.clone(),
            vec![0.24], // wrong length
            i.beta.clone(),
            i.mu_max.clone(),
            i.grid_price.clone(),
            i.fuel_cell_price,
            i.carbon_t_per_mwh.clone(),
            i.latency_s.clone(),
            i.weight_per_server,
            i.emission_cost.clone(),
            i.slot_hours,
        );
        assert!(matches!(r, Err(ModelError::DimensionMismatch { .. })));
    }

    #[test]
    fn rejects_bad_values() {
        let i = tiny();
        for (arr, cap) in [
            (vec![-1.0, 1.0], i.capacities.clone()),
            (i.arrivals.clone(), vec![-1.0, 5.0]),
            (i.arrivals.clone(), vec![0.0, 5.0]),
        ] {
            let r = UfcInstance::new(
                arr,
                cap,
                i.alpha.clone(),
                i.beta.clone(),
                i.mu_max.clone(),
                i.grid_price.clone(),
                i.fuel_cell_price,
                i.carbon_t_per_mwh.clone(),
                i.latency_s.clone(),
                i.weight_per_server,
                i.emission_cost.clone(),
                i.slot_hours,
            );
            assert!(r.is_err());
        }
    }

    #[test]
    fn rejects_non_finite_values() {
        let i = tiny();
        for (prices, latency, weight) in [
            (vec![f64::NAN, 70.0], i.latency_s.clone(), 10.0),
            (vec![f64::INFINITY, 70.0], i.latency_s.clone(), 10.0),
            (
                i.grid_price.clone(),
                vec![vec![0.01, f64::NAN], vec![0.02, 0.01]],
                10.0,
            ),
            (i.grid_price.clone(), i.latency_s.clone(), f64::NAN),
        ] {
            let r = UfcInstance::new(
                i.arrivals.clone(),
                i.capacities.clone(),
                i.alpha.clone(),
                i.beta.clone(),
                i.mu_max.clone(),
                prices,
                i.fuel_cell_price,
                i.carbon_t_per_mwh.clone(),
                latency,
                weight,
                i.emission_cost.clone(),
                i.slot_hours,
            );
            assert!(
                matches!(r, Err(ModelError::InvalidParameter { ref context })
                    if context.contains("finite")),
                "NaN/Inf ingress must be a typed error, got {r:?}"
            );
        }
    }

    /// Zero-demand front-ends are valid instances (fuzz-surfaced
    /// degenerate case): they route nothing and must not be rejected.
    #[test]
    fn accepts_zero_demand_frontend() {
        let i = tiny();
        let inst = UfcInstance::new(
            vec![0.0, 2.0],
            i.capacities.clone(),
            i.alpha.clone(),
            i.beta.clone(),
            i.mu_max.clone(),
            i.grid_price.clone(),
            i.fuel_cell_price,
            i.carbon_t_per_mwh.clone(),
            i.latency_s.clone(),
            i.weight_per_server,
            i.emission_cost.clone(),
            i.slot_hours,
        )
        .unwrap();
        assert_eq!(inst.total_arrivals(), 2.0);
    }

    #[test]
    fn from_specs_matches_manual_construction() {
        use crate::ServerPowerModel;
        let specs = vec![
            DatacenterSpec::new("A", 2.0, 1.2, ServerPowerModel::paper_default())
                .unwrap()
                .with_full_fuel_cell_capacity(),
            DatacenterSpec::new("B", 2.0, 1.2, ServerPowerModel::paper_default())
                .unwrap()
                .with_full_fuel_cell_capacity(),
        ];
        let inst = UfcInstance::from_specs(
            vec![1.0, 2.0],
            &specs,
            vec![30.0, 70.0],
            80.0,
            vec![0.5, 0.3],
            vec![vec![0.01, 0.02], vec![0.02, 0.01]],
            10.0,
            vec![
                EmissionCostFn::linear(25.0).unwrap(),
                EmissionCostFn::linear(25.0).unwrap(),
            ],
            1.0,
        )
        .unwrap();
        assert!((inst.alpha[0] - 0.24).abs() < 1e-12);
        assert!((inst.beta[0] - 0.12).abs() < 1e-12);
        assert!((inst.mu_max[0] - 0.48).abs() < 1e-12);
    }

    #[test]
    fn with_storage_validates_against_the_instance() {
        let i = tiny();
        let fleet = crate::StorageFleet::new(1.0, 0.2);
        let stored = i.clone().with_storage(fleet.initial_params(2)).unwrap();
        assert!(stored.storage.is_some());
        // Wrong datacenter count is rejected.
        assert!(i.clone().with_storage(fleet.initial_params(3)).is_err());
        // A previous fuel-cell output above mu_max is rejected.
        let mut params = fleet.initial_params(2);
        params.mu_prev_mw[0] = 1.0; // mu_max is 0.48
        assert!(i.with_storage(params).is_err());
    }
}
