//! The UFC cloud model — problem instances, cost components, and the UFC
//! index itself.
//!
//! This crate encodes §II of the paper: the linear server power model, the
//! carbon-emission accounting, the latency (dis)utility, the monetized
//! emission-cost functions `V_j`, and the single-slot optimization instance
//! ([`UfcInstance`]) that the solver crate (`ufc-core`) optimizes. It also
//! evaluates the **UFC index** — the operator's total payoff
//!
//! ```text
//! UFC(λ, μ, ν) = w·Σᵢ U(λᵢ) − Σⱼ Vⱼ(Cⱼ·νⱼ·h) − Σⱼ (pⱼ·νⱼ + p₀·μⱼ)·h
//! ```
//!
//! for any operating point, and builds week-long scenarios from the trace
//! substrate.
//!
//! # Units
//!
//! Workload is measured in **kilo-servers**, power in **MW**, money in
//! **$**, latency in **seconds**, and carbon in **metric tons**. The
//! latency weight `w` is configured in the paper's per-server unit
//! ($/s² per server) and converted internally (×1000 per kilo-server).
//!
//! # Example
//!
//! ```
//! use ufc_model::scenario::ScenarioBuilder;
//!
//! # fn main() -> Result<(), ufc_model::ModelError> {
//! let scenario = ScenarioBuilder::paper_default().seed(42).hours(24).build()?;
//! let inst = &scenario.instances[12];
//! assert_eq!(inst.n_datacenters(), 4);
//! assert_eq!(inst.m_frontends(), 10);
//! // Every instance is feasible: capacity covers arrivals.
//! assert!(inst.total_capacity() >= inst.total_arrivals());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod datacenter;
mod emission;
mod error;
pub mod generator;
mod instance;
mod operating_point;
mod power;
pub mod queueing;
pub mod scenario;
pub mod storage;
pub mod utility;

pub use datacenter::DatacenterSpec;
pub use emission::EmissionCostFn;
pub use error::ModelError;
pub use instance::UfcInstance;
pub use operating_point::{evaluate, ufc_improvement, OperatingPoint, UfcBreakdown};
pub use power::ServerPowerModel;
pub use queueing::QueueingCost;
pub use storage::{StorageFleet, StorageParams};

/// Convenience alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, ModelError>;

/// Grams per kWh → metric tons per MWh (the unit conversion behind Eq. (1)'s
/// use in the objective): `1 g/kWh = 1 kg/MWh = 1e−3 t/MWh`.
#[must_use]
pub fn g_per_kwh_to_t_per_mwh(g_per_kwh: f64) -> f64 {
    g_per_kwh * 1e-3
}

#[cfg(test)]
mod tests {
    #[test]
    fn carbon_unit_conversion() {
        // 968 g/kWh (coal) = 0.968 t/MWh.
        assert!((super::g_per_kwh_to_t_per_mwh(968.0) - 0.968).abs() < 1e-12);
    }
}
