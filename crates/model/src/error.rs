use std::fmt;

/// Errors produced by model construction and evaluation.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelError {
    /// A parameter was out of its documented range.
    InvalidParameter {
        /// Description of the offending parameter and value.
        context: String,
    },
    /// The instance is structurally infeasible (e.g. total arrivals exceed
    /// total capacity).
    Infeasible {
        /// Description of the violated requirement.
        context: String,
    },
    /// Inconsistent dimensions between instance components.
    DimensionMismatch {
        /// Description of the mismatch.
        context: String,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::InvalidParameter { context } => {
                write!(f, "invalid parameter: {context}")
            }
            ModelError::Infeasible { context } => write!(f, "infeasible instance: {context}"),
            ModelError::DimensionMismatch { context } => {
                write!(f, "dimension mismatch: {context}")
            }
        }
    }
}

impl std::error::Error for ModelError {}

impl ModelError {
    /// Builds an [`ModelError::InvalidParameter`].
    pub fn param(context: impl Into<String>) -> Self {
        ModelError::InvalidParameter {
            context: context.into(),
        }
    }

    /// Builds an [`ModelError::Infeasible`].
    pub fn infeasible(context: impl Into<String>) -> Self {
        ModelError::Infeasible {
            context: context.into(),
        }
    }

    /// Builds an [`ModelError::DimensionMismatch`].
    pub fn dim(context: impl Into<String>) -> Self {
        ModelError::DimensionMismatch {
            context: context.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(ModelError::param("w").to_string().contains("invalid"));
        assert!(ModelError::infeasible("cap")
            .to_string()
            .contains("infeasible"));
        assert!(ModelError::dim("n").to_string().contains("mismatch"));
    }
}
