use crate::utility::{average_latency, quadratic_utility};
use crate::{ModelError, Result, UfcInstance};

/// One operating point of the cloud: routing `λ`, fuel-cell output `μ`,
/// grid draw `ν` — the decision variables of the transformed problem (12) —
/// plus the battery net discharge `d` of the storage extension (all-zero
/// unless the instance carries [`crate::StorageParams`]).
#[derive(Debug, Clone, PartialEq)]
pub struct OperatingPoint {
    /// Request routing `λ_ij` (kilo-servers), `M × N`.
    pub lambda: Vec<Vec<f64>>,
    /// Fuel-cell output `μ_j` (MW), length `N`.
    pub mu: Vec<f64>,
    /// Grid power draw `ν_j` (MW), length `N`.
    pub nu: Vec<f64>,
    /// Battery net discharge `d_j` (MW; positive discharges, negative
    /// charges), length `N`. Zero everywhere on spatial-only instances.
    pub d: Vec<f64>,
}

impl OperatingPoint {
    /// All-zero point of the given shape (not feasible; a solver start).
    #[must_use]
    pub fn zeros(m: usize, n: usize) -> Self {
        OperatingPoint {
            lambda: vec![vec![0.0; n]; m],
            mu: vec![0.0; n],
            nu: vec![0.0; n],
            d: vec![0.0; n],
        }
    }

    /// Builds a point from routing and fuel-cell decisions, deriving the
    /// grid draw from the power balance `ν_j = α_j + β_j·Σ_i λ_ij − μ_j`.
    /// The battery term is zero (use
    /// [`OperatingPoint::from_routing_fuel_and_storage`] on storage
    /// instances).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidParameter`] if the implied grid draw is
    /// negative beyond tolerance (fuel cells exceeding demand) or shapes
    /// disagree with the instance.
    pub fn from_routing_and_fuel(
        instance: &UfcInstance,
        lambda: Vec<Vec<f64>>,
        mu: Vec<f64>,
    ) -> Result<Self> {
        let n = instance.n_datacenters();
        OperatingPoint::from_routing_fuel_and_storage(instance, lambda, mu, vec![0.0; n])
    }

    /// Builds a point from routing, fuel-cell, and battery decisions,
    /// deriving the grid draw from the extended power balance
    /// `ν_j = α_j + β_j·Σ_i λ_ij − μ_j − d_j`.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidParameter`] if the implied grid draw is
    /// negative beyond tolerance (on-site sources exceeding demand) or
    /// shapes disagree with the instance.
    pub fn from_routing_fuel_and_storage(
        instance: &UfcInstance,
        lambda: Vec<Vec<f64>>,
        mu: Vec<f64>,
        d: Vec<f64>,
    ) -> Result<Self> {
        let (m, n) = (instance.m_frontends(), instance.n_datacenters());
        if lambda.len() != m || lambda.iter().any(|r| r.len() != n) || mu.len() != n || d.len() != n
        {
            return Err(ModelError::dim(format!(
                "operating point must be λ: {m}x{n}, μ/d: {n}"
            )));
        }
        let mut nu = vec![0.0; n];
        for j in 0..n {
            let load: f64 = lambda.iter().map(|row| row[j]).sum();
            let draw = instance.demand_mw(j, load) - mu[j] - d[j];
            if draw < -1e-6 {
                return Err(ModelError::param(format!(
                    "on-site sources exceed demand at datacenter {j}: grid draw {draw} MW"
                )));
            }
            nu[j] = draw.max(0.0);
        }
        Ok(OperatingPoint { lambda, mu, nu, d })
    }

    /// Per-datacenter workload `Σ_i λ_ij` in kilo-servers.
    #[must_use]
    pub fn loads(&self) -> Vec<f64> {
        let n = self.mu.len();
        (0..n)
            .map(|j| self.lambda.iter().map(|row| row[j]).sum())
            .collect()
    }

    /// Maximum feasibility violation of this point against the instance:
    /// load-balance, capacity, power-balance, and bound residuals (∞-norm).
    #[must_use]
    #[allow(clippy::needless_range_loop)] // residual kinds co-index by datacenter id
    pub fn feasibility_residual(&self, instance: &UfcInstance) -> f64 {
        let mut r = 0.0f64;
        // Load balance: Σ_j λ_ij = A_i.
        for (row, &a) in self.lambda.iter().zip(&instance.arrivals) {
            r = r.max((row.iter().sum::<f64>() - a).abs());
        }
        // Nonnegative routing.
        for row in &self.lambda {
            for &l in row {
                r = r.max(-l);
            }
        }
        let loads = self.loads();
        let h = instance.slot_hours;
        for j in 0..instance.n_datacenters() {
            // Capacity.
            r = r.max(loads[j] - instance.capacities[j]);
            // Power balance (the battery term is zero on spatial
            // instances).
            let balance = instance.demand_mw(j, loads[j]) - self.mu[j] - self.nu[j] - self.d[j];
            r = r.max(balance.abs());
            // Bounds.
            r = r.max(-self.mu[j]);
            r = r.max(self.mu[j] - instance.mu_max[j]);
            r = r.max(-self.nu[j]);
            // Storage: ramp limits tighten the μ box for every
            // datacenter; net discharge must stay in its box where a
            // battery exists, and any nonzero d is a violation where one
            // doesn't.
            if let Some(sp) = &instance.storage {
                let (mu_lo, mu_hi) = sp.mu_bounds(j, instance.mu_max[j]);
                r = r.max(mu_lo - self.mu[j]);
                r = r.max(self.mu[j] - mu_hi);
                if sp.active(j) {
                    let (d_lo, d_hi) = sp.discharge_bounds(j, h);
                    r = r.max(self.d[j] - d_hi);
                    r = r.max(d_lo - self.d[j]);
                } else {
                    r = r.max(self.d[j].abs());
                }
            } else {
                r = r.max(self.d[j].abs());
            }
        }
        r
    }
}

/// The UFC index and its components at an operating point (all in dollars
/// except where noted).
#[derive(Debug, Clone, PartialEq)]
pub struct UfcBreakdown {
    /// Weighted workload utility `w·Σᵢ U(λᵢ)` (≤ 0 for the quadratic `U`).
    pub utility_dollars: f64,
    /// Total energy cost `Σⱼ (pⱼ νⱼ + p₀ μⱼ)·h`.
    pub energy_cost_dollars: f64,
    /// Total monetized emission cost `Σⱼ Vⱼ(Eⱼ)`.
    pub carbon_cost_dollars: f64,
    /// Physical emissions `Σⱼ Eⱼ` in tons.
    pub carbon_tons: f64,
    /// Workload-weighted average propagation latency in seconds.
    pub average_latency_s: f64,
    /// Fuel-cell energy `Σⱼ μⱼ·h` in MWh.
    pub fuel_cell_mwh: f64,
    /// Grid energy `Σⱼ νⱼ·h` in MWh.
    pub grid_mwh: f64,
    /// Fuel-cell utilization `Σμ / ΣD` (fraction of demand served by fuel
    /// cells — Fig. 8's metric).
    pub fuel_cell_utilization: f64,
    /// Congestion cost `Σⱼ Qⱼ(loadⱼ)` in $ (0 unless the instance enables
    /// the queueing extension).
    pub queueing_cost_dollars: f64,
    /// Net battery energy discharged `Σⱼ dⱼ·h` in MWh (negative = net
    /// charging; 0 unless the instance enables the storage extension).
    pub storage_mwh: f64,
    /// Battery throughput-degradation cost `Σⱼ γ·h·dⱼ²` in $ (0 unless
    /// the instance enables the storage extension). Only the physical wear
    /// cost is charged here — the solver's opportunity-value term `κ·h·d`
    /// is an internal steering price, not an operator expense.
    pub storage_cost_dollars: f64,
}

impl UfcBreakdown {
    /// The UFC index: utility minus carbon cost minus energy cost (Eq. (3)),
    /// minus the optional congestion and battery-degradation costs
    /// (extensions).
    #[must_use]
    pub fn ufc(&self) -> f64 {
        self.utility_dollars
            - self.carbon_cost_dollars
            - self.energy_cost_dollars
            - self.queueing_cost_dollars
            - self.storage_cost_dollars
    }
}

/// Evaluates the UFC index and its components at an operating point.
///
/// The point's power balance must hold to `tol = 1e-6` MW — evaluation is
/// only meaningful on (near-)feasible points; use
/// [`OperatingPoint::from_routing_and_fuel`] to construct consistent ones.
///
/// # Errors
///
/// * [`ModelError::DimensionMismatch`] on shape disagreement.
/// * [`ModelError::Infeasible`] if the feasibility residual exceeds `1e-4`
///   (in the mixed kilo-server/MW units of the residual).
#[allow(clippy::needless_range_loop)] // cost terms co-index by datacenter id
pub fn evaluate(instance: &UfcInstance, point: &OperatingPoint) -> Result<UfcBreakdown> {
    let (m, n) = (instance.m_frontends(), instance.n_datacenters());
    if point.lambda.len() != m
        || point.lambda.iter().any(|r| r.len() != n)
        || point.mu.len() != n
        || point.nu.len() != n
        || point.d.len() != n
    {
        return Err(ModelError::dim(format!(
            "operating point shape must be λ: {m}x{n}, μ/ν/d: {n}"
        )));
    }
    let residual = point.feasibility_residual(instance);
    if residual > 1e-4 {
        return Err(ModelError::infeasible(format!(
            "operating point violates constraints by {residual:e}"
        )));
    }

    // Utility (paper Eq. (2)), converted from per-server to per-kilo-server.
    let w = instance.weight_per_kserver();
    let mut utility = 0.0;
    let mut weighted_latency = 0.0;
    for i in 0..m {
        utility += w * quadratic_utility(
            &point.lambda[i],
            &instance.latency_s[i],
            instance.arrivals[i],
        );
        weighted_latency += instance.arrivals[i]
            * average_latency(
                &point.lambda[i],
                &instance.latency_s[i],
                instance.arrivals[i],
            );
    }
    let total_arrivals = instance.total_arrivals();
    let average_latency_s = if total_arrivals > 0.0 {
        weighted_latency / total_arrivals
    } else {
        0.0
    };

    // Energy + carbon.
    let h = instance.slot_hours;
    let mut energy_cost = 0.0;
    let mut carbon_cost = 0.0;
    let mut carbon_tons = 0.0;
    let mut fuel_cell_mwh = 0.0;
    let mut grid_mwh = 0.0;
    let mut demand_mwh = 0.0;
    let loads = point.loads();
    for j in 0..n {
        let nu_mwh = point.nu[j] * h;
        let mu_mwh = point.mu[j] * h;
        energy_cost += instance.grid_price[j] * nu_mwh + instance.fuel_cell_price * mu_mwh;
        let tons = instance.carbon_t_per_mwh[j] * nu_mwh;
        carbon_tons += tons;
        carbon_cost += instance.emission_cost[j].value(tons);
        fuel_cell_mwh += mu_mwh;
        grid_mwh += nu_mwh;
        demand_mwh += instance.demand_mw(j, loads[j]) * h;
    }

    // Optional congestion cost (extension; see `queueing`).
    let mut queueing_cost = 0.0;
    if let Some(q) = &instance.queueing {
        for j in 0..n {
            let c = q.value(loads[j], instance.capacities[j]);
            if !c.is_finite() {
                return Err(ModelError::infeasible(format!(
                    "datacenter {j} exceeds the queueing utilization ceiling"
                )));
            }
            queueing_cost += c;
        }
    }

    // Optional battery accounting (extension; see `storage`). Only the
    // physical degradation cost γ·h·d² enters the reported UFC.
    let mut storage_mwh = 0.0;
    let mut storage_cost = 0.0;
    if let Some(sp) = &instance.storage {
        for j in 0..n {
            storage_mwh += point.d[j] * h;
            storage_cost += sp.degradation_per_mwh * h * point.d[j] * point.d[j];
        }
    }

    Ok(UfcBreakdown {
        utility_dollars: utility,
        energy_cost_dollars: energy_cost,
        carbon_cost_dollars: carbon_cost,
        carbon_tons,
        average_latency_s,
        fuel_cell_mwh,
        grid_mwh,
        fuel_cell_utilization: if demand_mwh > 0.0 {
            fuel_cell_mwh / demand_mwh
        } else {
            0.0
        },
        queueing_cost_dollars: queueing_cost,
        storage_mwh,
        storage_cost_dollars: storage_cost,
    })
}

/// Relative UFC improvement of strategy `x` over baseline `y` (the paper's
/// `I_xy`), as a fraction: `(UFC_x − UFC_y) / |UFC_y|`.
///
/// # Panics
///
/// Panics if `ufc_y == 0` (improvement undefined).
#[must_use]
pub fn ufc_improvement(ufc_x: f64, ufc_y: f64) -> f64 {
    assert!(ufc_y != 0.0, "baseline UFC is zero; improvement undefined");
    (ufc_x - ufc_y) / ufc_y.abs()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EmissionCostFn;

    fn tiny() -> UfcInstance {
        UfcInstance::new(
            vec![1.0, 2.0],
            vec![2.0, 2.0],
            vec![0.24, 0.24],
            vec![0.12, 0.12],
            vec![0.48, 0.48],
            vec![30.0, 70.0],
            80.0,
            vec![0.5, 0.3],
            vec![vec![0.01, 0.02], vec![0.02, 0.01]],
            10.0,
            vec![
                EmissionCostFn::linear(25.0).unwrap(),
                EmissionCostFn::linear(25.0).unwrap(),
            ],
            1.0,
        )
        .unwrap()
    }

    /// Grid-only point: all demand from the grid, even split routing.
    fn grid_point(inst: &UfcInstance) -> OperatingPoint {
        let lambda = vec![vec![0.5, 0.5], vec![1.0, 1.0]];
        OperatingPoint::from_routing_and_fuel(inst, lambda, vec![0.0, 0.0]).unwrap()
    }

    #[test]
    fn from_routing_derives_balanced_nu() {
        let inst = tiny();
        let p = grid_point(&inst);
        // Load 1.5 kservers per DC ⇒ demand 0.24 + 0.18 = 0.42 MW each.
        assert!((p.nu[0] - 0.42).abs() < 1e-12);
        assert!((p.nu[1] - 0.42).abs() < 1e-12);
        assert!(p.feasibility_residual(&inst) < 1e-12);
    }

    #[test]
    fn from_routing_rejects_overgeneration() {
        let inst = tiny();
        let lambda = vec![vec![0.5, 0.5], vec![1.0, 1.0]];
        let r = OperatingPoint::from_routing_and_fuel(&inst, lambda, vec![10.0, 0.0]);
        assert!(r.is_err());
    }

    #[test]
    fn evaluate_grid_point_components() {
        let inst = tiny();
        let p = grid_point(&inst);
        let b = evaluate(&inst, &p).unwrap();
        // Energy: 0.42·30 + 0.42·70 = 42 $.
        assert!((b.energy_cost_dollars - 42.0).abs() < 1e-9);
        // Carbon: 0.42·0.5 + 0.42·0.3 = 0.336 t ⇒ 8.4 $.
        assert!((b.carbon_tons - 0.336).abs() < 1e-12);
        assert!((b.carbon_cost_dollars - 8.4).abs() < 1e-9);
        // No fuel cells: zero utilization.
        assert_eq!(b.fuel_cell_utilization, 0.0);
        assert_eq!(b.fuel_cell_mwh, 0.0);
        assert!(b.utility_dollars < 0.0);
        assert!(b.ufc() < 0.0);
    }

    #[test]
    fn fuel_cells_reduce_carbon_to_zero() {
        let inst = tiny();
        let lambda = vec![vec![0.5, 0.5], vec![1.0, 1.0]];
        let p = OperatingPoint::from_routing_and_fuel(&inst, lambda, vec![0.42, 0.42]).unwrap();
        let b = evaluate(&inst, &p).unwrap();
        assert_eq!(b.carbon_tons, 0.0);
        assert_eq!(b.carbon_cost_dollars, 0.0);
        assert!((b.fuel_cell_utilization - 1.0).abs() < 1e-12);
        // Energy now at the fuel-cell price: 0.84·80 = 67.2 $.
        assert!((b.energy_cost_dollars - 67.2).abs() < 1e-9);
    }

    #[test]
    fn evaluate_rejects_infeasible_point() {
        let inst = tiny();
        let mut p = grid_point(&inst);
        p.nu[0] = 0.0; // break the power balance
        assert!(matches!(
            evaluate(&inst, &p),
            Err(ModelError::Infeasible { .. })
        ));
    }

    #[test]
    fn latency_is_workload_weighted() {
        let inst = tiny();
        // All of FE0 (1k) to DC0 (10 ms), all of FE1 (2k) to DC1 (10 ms).
        let lambda = vec![vec![1.0, 0.0], vec![0.0, 2.0]];
        let p = OperatingPoint::from_routing_and_fuel(&inst, lambda, vec![0.0, 0.0]).unwrap();
        let b = evaluate(&inst, &p).unwrap();
        assert!((b.average_latency_s - 0.01).abs() < 1e-12);
    }

    #[test]
    fn storage_point_balances_and_charges_degradation_only() {
        let mut inst = tiny();
        inst = inst
            .with_storage(
                crate::StorageFleet::new(2.0, 0.5)
                    .initial_charge_frac(0.5)
                    .value_per_mwh(100.0)
                    .degradation(2.0)
                    .params(vec![1.0, 1.0], vec![0.0, 0.0]),
            )
            .unwrap();
        let lambda = vec![vec![0.5, 0.5], vec![1.0, 1.0]];
        // DC0 discharges 0.1 MW, DC1 charges 0.2 MW.
        let p = OperatingPoint::from_routing_fuel_and_storage(
            &inst,
            lambda,
            vec![0.0, 0.0],
            vec![0.1, -0.2],
        )
        .unwrap();
        // Demand is 0.42 MW each; grid covers demand − d.
        assert!((p.nu[0] - 0.32).abs() < 1e-12);
        assert!((p.nu[1] - 0.62).abs() < 1e-12);
        assert!(p.feasibility_residual(&inst) < 1e-12);
        let b = evaluate(&inst, &p).unwrap();
        // Net discharge: (0.1 − 0.2)·1 h = −0.1 MWh.
        assert!((b.storage_mwh + 0.1).abs() < 1e-12);
        // Degradation only: 2·(0.01 + 0.04) = 0.1 $ — κ never appears.
        assert!((b.storage_cost_dollars - 0.1).abs() < 1e-12);
        // Oversized discharge violates the box.
        let mut bad = p.clone();
        bad.d[0] = 10.0;
        assert!(bad.feasibility_residual(&inst) > 1.0);
        // Nonzero d without storage is infeasible.
        let spatial = tiny();
        let mut q = grid_point(&spatial);
        q.d[0] = 0.1;
        assert!(q.feasibility_residual(&spatial) >= 0.1);
    }

    #[test]
    fn ramp_limit_enters_the_residual() {
        let mut inst = tiny();
        let mut params = crate::StorageFleet::new(1.0, 0.2)
            .ramp_mw(0.05)
            .initial_params(2);
        params.mu_prev_mw = vec![0.2, 0.2];
        inst = inst.with_storage(params).unwrap();
        let lambda = vec![vec![0.5, 0.5], vec![1.0, 1.0]];
        // μ = 0.42 is far above μ_prev + ramp = 0.25.
        let p = OperatingPoint::from_routing_and_fuel(&inst, lambda, vec![0.42, 0.42]).unwrap();
        assert!(p.feasibility_residual(&inst) >= 0.42 - 0.25 - 1e-12);
    }

    #[test]
    fn improvement_sign_conventions() {
        assert!((ufc_improvement(-50.0, -100.0) - 0.5).abs() < 1e-12);
        assert!((ufc_improvement(-150.0, -100.0) + 0.5).abs() < 1e-12);
        assert!((ufc_improvement(110.0, 100.0) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn residual_detects_each_violation_kind() {
        let inst = tiny();
        let mut p = grid_point(&inst);
        assert!(p.feasibility_residual(&inst) < 1e-12);
        p.lambda[0][0] += 0.5; // breaks load balance & power balance
        assert!(p.feasibility_residual(&inst) >= 0.5 - 1e-12);
        let mut p2 = grid_point(&inst);
        p2.mu[0] = -0.1;
        assert!(p2.feasibility_residual(&inst) >= 0.1 - 1e-12);
        let mut p3 = grid_point(&inst);
        p3.mu[0] = 1.0; // above mu_max 0.48
        assert!(p3.feasibility_residual(&inst) >= 0.5);
    }
}
