use crate::{ModelError, Result, ServerPowerModel};

/// Static description of one datacenter (paper §II-A and §IV-A).
///
/// # Example
///
/// ```
/// use ufc_model::{DatacenterSpec, ServerPowerModel};
///
/// # fn main() -> Result<(), ufc_model::ModelError> {
/// let dc = DatacenterSpec::new("Dallas", 20.0, 1.2, ServerPowerModel::paper_default())?
///     .with_full_fuel_cell_capacity();
/// // μmax = P_peak·S·PUE = 200 W × 20k × 1.2 = 4.8 MW.
/// assert!((dc.fuel_cell_capacity_mw - 4.8).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DatacenterSpec {
    /// Site name.
    pub name: String,
    /// Active homogeneous servers, in kilo-servers (`S_j`).
    pub servers_k: f64,
    /// Facility power usage effectiveness.
    pub pue: f64,
    /// Per-server power model.
    pub power: ServerPowerModel,
    /// Fuel-cell output capacity `μ_j^max` in MW (0 = no fuel cells).
    pub fuel_cell_capacity_mw: f64,
}

impl DatacenterSpec {
    /// Creates a spec with no fuel-cell capacity (add it with
    /// [`DatacenterSpec::with_full_fuel_cell_capacity`] or by setting the
    /// field).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidParameter`] for nonpositive server count
    /// or `PUE < 1`.
    pub fn new(
        name: impl Into<String>,
        servers_k: f64,
        pue: f64,
        power: ServerPowerModel,
    ) -> Result<Self> {
        if servers_k <= 0.0 {
            return Err(ModelError::param(format!(
                "server count must be positive, got {servers_k}"
            )));
        }
        if pue < 1.0 {
            return Err(ModelError::param(format!("PUE below 1.0: {pue}")));
        }
        Ok(DatacenterSpec {
            name: name.into(),
            servers_k,
            pue,
            power,
            fuel_cell_capacity_mw: 0.0,
        })
    }

    /// Sets `μ_j^max = P_peak·S_j·PUE_j` — the paper's §IV-A assumption that
    /// fuel cells can fully power the datacenter at peak.
    #[must_use]
    pub fn with_full_fuel_cell_capacity(mut self) -> Self {
        self.fuel_cell_capacity_mw = self.power.peak_w * self.servers_k * self.pue * 1e-3;
        self
    }

    /// Fixed power term `α_j` in MW.
    #[must_use]
    pub fn alpha_mw(&self) -> f64 {
        self.power
            .alpha_mw(self.servers_k, self.pue)
            .expect("validated at construction")
    }

    /// Load-proportional term `β_j` in MW per kilo-server.
    #[must_use]
    pub fn beta_mw_per_kserver(&self) -> f64 {
        self.power
            .beta_mw_per_kserver(self.pue)
            .expect("validated at construction")
    }

    /// Peak total demand (full utilization) in MW.
    #[must_use]
    pub fn peak_demand_mw(&self) -> f64 {
        self.alpha_mw() + self.beta_mw_per_kserver() * self.servers_k
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dc() -> DatacenterSpec {
        DatacenterSpec::new("Test", 20.0, 1.2, ServerPowerModel::paper_default()).unwrap()
    }

    #[test]
    fn alpha_beta_match_paper_defaults() {
        let d = dc();
        assert!((d.alpha_mw() - 2.4).abs() < 1e-12);
        assert!((d.beta_mw_per_kserver() - 0.12).abs() < 1e-12);
        // Peak demand = α + β·S = 2.4 + 2.4 = 4.8 MW = μmax.
        assert!((d.peak_demand_mw() - 4.8).abs() < 1e-12);
    }

    #[test]
    fn full_fuel_cell_capacity_covers_peak() {
        let d = dc().with_full_fuel_cell_capacity();
        assert!(d.fuel_cell_capacity_mw >= d.peak_demand_mw() - 1e-12);
    }

    #[test]
    fn default_has_no_fuel_cells() {
        assert_eq!(dc().fuel_cell_capacity_mw, 0.0);
    }

    #[test]
    fn validation() {
        let p = ServerPowerModel::paper_default();
        assert!(DatacenterSpec::new("x", 0.0, 1.2, p).is_err());
        assert!(DatacenterSpec::new("x", 10.0, 0.5, p).is_err());
    }
}
