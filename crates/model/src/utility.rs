//! The workload-performance utility `U` (paper Eq. (2)).
//!
//! The paper lets `U` be any decreasing concave function of the average
//! propagation latency and adopts the quadratic form
//! `U(λᵢ) = −Aᵢ·(Σⱼ λᵢⱼ·Lᵢⱼ / Aᵢ)²`, reflecting users' accelerating tendency
//! to abandon a service as latency grows. The quadratic form is what makes
//! the λ-sub-problem a QP with a diagonal-plus-rank-one Hessian; the
//! functions here expose both the value and that structure.

/// Quadratic latency utility of one front-end (paper Eq. (2)):
/// `U = −A·(Σλ_j L_j / A)² = −(Σλ_j L_j)² / A`.
///
/// `lambda` and `latency` are the front-end's routing row and latency row
/// (seconds); `arrival` is `A_i` (same workload unit as `lambda`). Returns
/// utility in (workload-unit)·s²; multiply by the weight `w` to get dollars.
///
/// A zero-demand front-end (`arrival == 0`) routes no traffic, so its
/// utility is exactly `0` — the `A → 0⁺` limit with the feasible `λ ≡ 0`.
///
/// # Panics
///
/// Panics if lengths differ or `arrival < 0`.
#[must_use]
pub fn quadratic_utility(lambda: &[f64], latency: &[f64], arrival: f64) -> f64 {
    assert_eq!(lambda.len(), latency.len(), "row length mismatch");
    assert!(arrival >= 0.0, "arrival must be nonnegative, got {arrival}");
    if arrival == 0.0 {
        return 0.0;
    }
    let weighted: f64 = lambda.iter().zip(latency).map(|(l, t)| l * t).sum();
    -(weighted * weighted) / arrival
}

/// Average propagation latency (seconds) experienced by a front-end:
/// `Σⱼ λⱼ·Lⱼ / A`. A zero-demand front-end serves no requests, so its
/// average latency is reported as `0`.
///
/// # Panics
///
/// Panics if lengths differ or `arrival < 0`.
#[must_use]
pub fn average_latency(lambda: &[f64], latency: &[f64], arrival: f64) -> f64 {
    assert_eq!(lambda.len(), latency.len(), "row length mismatch");
    assert!(arrival >= 0.0, "arrival must be nonnegative, got {arrival}");
    if arrival == 0.0 {
        return 0.0;
    }
    lambda.iter().zip(latency).map(|(l, t)| l * t).sum::<f64>() / arrival
}

/// The rank-one structure of `−w·U`: as a quadratic in `λ`,
/// `−w·U(λ) = ½ λᵀ (γ·L Lᵀ) λ` with `γ = 2w/A`. Returns `γ`.
///
/// Used by the solver to assemble the λ-sub-problem Hessian
/// `ρI + γ·L Lᵀ` without materializing a matrix.
///
/// A zero-demand front-end has the single feasible point `λ ≡ 0`, where
/// the disutility is `0` regardless of curvature; `γ = 0` is returned so
/// the assembled Hessian stays finite.
///
/// # Panics
///
/// Panics if `arrival < 0` or `weight < 0`.
#[must_use]
pub fn disutility_rank1_gamma(weight: f64, arrival: f64) -> f64 {
    assert!(arrival >= 0.0, "arrival must be nonnegative, got {arrival}");
    assert!(weight >= 0.0, "weight must be nonnegative, got {weight}");
    if arrival == 0.0 {
        return 0.0;
    }
    2.0 * weight / arrival
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_latency_routing_has_zero_disutility() {
        assert_eq!(quadratic_utility(&[1.0, 0.0], &[0.0, 0.050], 1.0), 0.0);
    }

    #[test]
    fn matches_paper_formula() {
        // A = 2, all traffic to a 20 ms datacenter: U = −A·(0.02)² = −8e−4.
        let u = quadratic_utility(&[2.0, 0.0], &[0.020, 0.040], 2.0);
        assert!((u + 2.0 * 0.0004).abs() < 1e-15);
    }

    #[test]
    fn utility_decreases_with_latency() {
        let near = quadratic_utility(&[1.0], &[0.010], 1.0);
        let far = quadratic_utility(&[1.0], &[0.030], 1.0);
        assert!(near > far);
    }

    #[test]
    fn utility_is_concave_in_lambda() {
        // Midpoint utility ≥ average of endpoint utilities.
        let lat = [0.01, 0.03];
        let a = [2.0, 0.0];
        let b = [0.0, 2.0];
        let mid = [1.0, 1.0];
        let u_mid = quadratic_utility(&mid, &lat, 2.0);
        let u_avg = 0.5 * (quadratic_utility(&a, &lat, 2.0) + quadratic_utility(&b, &lat, 2.0));
        assert!(u_mid >= u_avg);
    }

    #[test]
    fn average_latency_is_convex_combination() {
        let lat = [0.010, 0.020];
        let avg = average_latency(&[1.0, 3.0], &lat, 4.0);
        assert!((avg - 0.0175).abs() < 1e-15);
    }

    #[test]
    fn rank1_gamma_reconstructs_disutility() {
        // ½γ(Σλ·L)² must equal −w·U.
        let (w, a) = (10.0, 4.0);
        let lambda = [1.0, 3.0];
        let lat = [0.010, 0.020];
        let gamma = disutility_rank1_gamma(w, a);
        let weighted: f64 = lambda.iter().zip(&lat).map(|(l, t)| l * t).sum();
        let quad_form = 0.5 * gamma * weighted * weighted;
        let direct = -w * quadratic_utility(&lambda, &lat, a);
        assert!((quad_form - direct).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "arrival must be nonnegative")]
    fn rejects_negative_arrival() {
        let _ = quadratic_utility(&[1.0], &[0.01], -1.0);
    }

    /// Zero-demand front-ends (a fuzz-surfaced degenerate case) are exact
    /// limits, not panics: zero utility, zero latency, zero curvature.
    #[test]
    fn zero_arrival_is_the_exact_limit() {
        assert_eq!(quadratic_utility(&[0.0, 0.0], &[0.01, 0.02], 0.0), 0.0);
        assert_eq!(average_latency(&[0.0, 0.0], &[0.01, 0.02], 0.0), 0.0);
        assert_eq!(disutility_rank1_gamma(10.0, 0.0), 0.0);
    }
}
