use crate::{ModelError, Result};

/// Monetized emission-cost function `V_j(E)` (paper §II-B2).
///
/// The paper requires only that `V_j` be *non-decreasing and convex*, and
/// motivates three real-world shapes, all implemented here:
///
/// * [`EmissionCostFn::linear`] — a flat carbon tax (`$r` per ton, e.g.
///   Australia's \$23 AUD/ton); **not strongly convex**, which is exactly why
///   the paper adopts ADM-G instead of plain multi-block ADMM,
/// * [`EmissionCostFn::quadratic`] — convex offset/penalty pricing where the
///   marginal cost grows with the emission volume,
/// * [`EmissionCostFn::stepped`] — piecewise-linear increasing brackets, the
///   "stepped tax system" / cap-and-trade tariff the paper cites.
///
/// # Example
///
/// ```
/// use ufc_model::EmissionCostFn;
///
/// # fn main() -> Result<(), ufc_model::ModelError> {
/// let tax = EmissionCostFn::linear(25.0)?; // the paper's default $25/ton
/// assert_eq!(tax.value(2.0), 50.0);
/// assert_eq!(tax.marginal(2.0), 25.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum EmissionCostFn {
    /// `V(E) = rate · E`.
    Linear {
        /// Tax rate in $/ton.
        rate: f64,
    },
    /// `V(E) = linear·E + quad·E²`.
    Quadratic {
        /// Linear coefficient in $/ton.
        linear: f64,
        /// Quadratic coefficient in $/ton².
        quad: f64,
    },
    /// Piecewise-linear increasing brackets: emissions within
    /// `(threshold_{k−1}, threshold_k]` are charged at `rates[k]`.
    Stepped {
        /// Upper bounds of all but the last bracket, strictly increasing.
        thresholds: Vec<f64>,
        /// Rates per bracket; `rates.len() == thresholds.len() + 1` and
        /// nondecreasing (convexity).
        rates: Vec<f64>,
    },
}

impl EmissionCostFn {
    /// Flat carbon tax at `rate` $/ton.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidParameter`] if `rate < 0`.
    pub fn linear(rate: f64) -> Result<Self> {
        if rate < 0.0 {
            return Err(ModelError::param(format!("negative tax rate {rate}")));
        }
        Ok(EmissionCostFn::Linear { rate })
    }

    /// Quadratic emission cost `linear·E + quad·E²`.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidParameter`] if either coefficient is
    /// negative (convexity/monotonicity would fail).
    pub fn quadratic(linear: f64, quad: f64) -> Result<Self> {
        if linear < 0.0 || quad < 0.0 {
            return Err(ModelError::param(format!(
                "quadratic emission cost needs nonnegative coefficients, got ({linear}, {quad})"
            )));
        }
        Ok(EmissionCostFn::Quadratic { linear, quad })
    }

    /// Stepped (piecewise-linear) tax.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidParameter`] unless thresholds are
    /// positive and strictly increasing, `rates.len() == thresholds.len()+1`,
    /// and rates are nonnegative and nondecreasing (convexity).
    pub fn stepped(thresholds: Vec<f64>, rates: Vec<f64>) -> Result<Self> {
        if rates.len() != thresholds.len() + 1 {
            return Err(ModelError::param(format!(
                "stepped tax needs {} rates for {} thresholds, got {}",
                thresholds.len() + 1,
                thresholds.len(),
                rates.len()
            )));
        }
        if thresholds.iter().any(|&t| t <= 0.0) || thresholds.windows(2).any(|w| w[0] >= w[1]) {
            return Err(ModelError::param(
                "thresholds must be positive and strictly increasing",
            ));
        }
        if rates.iter().any(|&r| r < 0.0) || rates.windows(2).any(|w| w[0] > w[1]) {
            return Err(ModelError::param(
                "rates must be nonnegative and nondecreasing for convexity",
            ));
        }
        Ok(EmissionCostFn::Stepped { thresholds, rates })
    }

    /// Cost in $ for `tons` of emissions (clamped below at zero emissions).
    #[must_use]
    pub fn value(&self, tons: f64) -> f64 {
        let e = tons.max(0.0);
        match self {
            EmissionCostFn::Linear { rate } => rate * e,
            EmissionCostFn::Quadratic { linear, quad } => linear * e + quad * e * e,
            EmissionCostFn::Stepped { thresholds, rates } => {
                let mut cost = 0.0;
                let mut prev = 0.0;
                for (t, r) in thresholds.iter().zip(rates) {
                    if e <= *t {
                        return cost + r * (e - prev);
                    }
                    cost += r * (t - prev);
                    prev = *t;
                }
                cost + rates[rates.len() - 1] * (e - prev)
            }
        }
    }

    /// Right derivative (marginal cost, $/ton) at `tons`.
    #[must_use]
    pub fn marginal(&self, tons: f64) -> f64 {
        let e = tons.max(0.0);
        match self {
            EmissionCostFn::Linear { rate } => *rate,
            EmissionCostFn::Quadratic { linear, quad } => linear + 2.0 * quad * e,
            EmissionCostFn::Stepped { thresholds, rates } => {
                for (t, r) in thresholds.iter().zip(rates) {
                    if e < *t {
                        return *r;
                    }
                }
                rates[rates.len() - 1]
            }
        }
    }

    /// `true` when the marginal cost is constant — i.e. the function is
    /// affine and therefore **not strongly convex** (the case that rules out
    /// plain multi-block ADMM and motivates ADM-G; paper §III).
    #[must_use]
    pub fn is_affine(&self) -> bool {
        match self {
            EmissionCostFn::Linear { .. } => true,
            EmissionCostFn::Quadratic { quad, .. } => *quad == 0.0,
            EmissionCostFn::Stepped { rates, .. } => {
                rates.iter().all(|r| (r - rates[0]).abs() < 1e-15)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_tax() {
        let v = EmissionCostFn::linear(25.0).unwrap();
        assert_eq!(v.value(0.0), 0.0);
        assert_eq!(v.value(3.0), 75.0);
        assert_eq!(v.marginal(100.0), 25.0);
        assert!(v.is_affine());
        assert!(EmissionCostFn::linear(-1.0).is_err());
    }

    #[test]
    fn quadratic_cost() {
        let v = EmissionCostFn::quadratic(10.0, 2.0).unwrap();
        assert_eq!(v.value(3.0), 30.0 + 18.0);
        assert_eq!(v.marginal(3.0), 10.0 + 12.0);
        assert!(!v.is_affine());
        assert!(EmissionCostFn::quadratic(10.0, 0.0).unwrap().is_affine());
        assert!(EmissionCostFn::quadratic(-1.0, 0.0).is_err());
    }

    #[test]
    fn stepped_value_is_continuous_and_convex() {
        let v = EmissionCostFn::stepped(vec![1.0, 2.0], vec![10.0, 20.0, 40.0]).unwrap();
        // Continuity at the knots.
        assert!((v.value(1.0) - 10.0).abs() < 1e-12);
        assert!((v.value(2.0) - 30.0).abs() < 1e-12);
        assert!((v.value(3.0) - 70.0).abs() < 1e-12);
        // Marginals step upward.
        assert_eq!(v.marginal(0.5), 10.0);
        assert_eq!(v.marginal(1.5), 20.0);
        assert_eq!(v.marginal(5.0), 40.0);
        assert!(!v.is_affine());
    }

    #[test]
    fn stepped_validation() {
        assert!(EmissionCostFn::stepped(vec![1.0], vec![10.0]).is_err()); // wrong arity
        assert!(EmissionCostFn::stepped(vec![2.0, 1.0], vec![1.0, 2.0, 3.0]).is_err()); // not increasing
        assert!(EmissionCostFn::stepped(vec![1.0], vec![20.0, 10.0]).is_err()); // decreasing rates
        assert!(EmissionCostFn::stepped(vec![-1.0], vec![1.0, 2.0]).is_err()); // nonpositive knot
    }

    #[test]
    fn negative_emissions_clamp_to_zero() {
        let v = EmissionCostFn::linear(25.0).unwrap();
        assert_eq!(v.value(-5.0), 0.0);
        assert_eq!(v.marginal(-5.0), 25.0);
    }

    #[test]
    fn convexity_spot_check() {
        // value((a+b)/2) ≤ (value(a)+value(b))/2 for stepped function.
        let v = EmissionCostFn::stepped(vec![1.0, 3.0], vec![5.0, 15.0, 50.0]).unwrap();
        for (a, b) in [(0.0, 2.0), (0.5, 4.0), (1.0, 6.0), (2.5, 3.5)] {
            let mid = v.value(0.5 * (a + b));
            let avg = 0.5 * (v.value(a) + v.value(b));
            assert!(mid <= avg + 1e-12, "convexity fails on ({a}, {b})");
        }
    }
}
