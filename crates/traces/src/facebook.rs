//! The Facebook-like datacenter power-demand profile behind Table I / Fig. 1.
//!
//! Table I prices a week of a single datacenter's power demand under three
//! procurement strategies. The paper uses the Facebook demand profile of
//! Chen et al. (MASCOTS 2011); we synthesize a profile with the same
//! characteristics — MW-scale, strong diurnal swing, mild weekend dip — and
//! calibrate the weekly energy so that the *Fuel Cell* strategy cost at
//! `p₀ = 80 $/MWh` lands near the paper's $27 957 (i.e. ≈ 349 MWh/week,
//! average demand ≈ 2.08 MW).

use crate::series::{hour_of_day, is_weekend};
use crate::TraceRng;

/// Average demand (MW) that reproduces Table I's fuel-cell cost at 80 $/MWh.
pub const TABLE1_AVERAGE_MW: f64 = 2.08;

/// Generator for a Facebook-like hourly power-demand profile in MW.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FacebookProfile {
    /// Weekly average demand in MW.
    pub average_mw: f64,
    /// Trough as a fraction of peak.
    pub trough_ratio: f64,
    /// Hour of day of the demand peak.
    pub peak_hour: f64,
    /// Weekend attenuation (0–1].
    pub weekend_factor: f64,
    /// Multiplicative noise σ.
    pub noise_std: f64,
}

impl Default for FacebookProfile {
    /// Calibrated to Table I (see module docs).
    fn default() -> Self {
        FacebookProfile {
            average_mw: TABLE1_AVERAGE_MW,
            trough_ratio: 0.55,
            peak_hour: 15.0,
            weekend_factor: 0.93,
            noise_std: 0.03,
        }
    }
}

impl FacebookProfile {
    /// Generates `hours` samples of demand in MW, rescaled so the sample
    /// mean equals `average_mw` exactly.
    ///
    /// # Panics
    ///
    /// Panics if parameters are out of range or `hours == 0`.
    #[must_use]
    pub fn generate(&self, hours: usize, rng: &mut TraceRng) -> Vec<f64> {
        assert!(hours > 0, "need at least one hour");
        assert!(self.average_mw > 0.0, "average demand must be positive");
        assert!(
            (0.0..1.0).contains(&self.trough_ratio),
            "trough_ratio must be in [0, 1)"
        );
        assert!(
            self.weekend_factor > 0.0 && self.weekend_factor <= 1.0,
            "weekend_factor must be in (0, 1]"
        );
        assert!(self.noise_std >= 0.0, "negative noise");

        let mut raw: Vec<f64> = (0..hours)
            .map(|t| {
                let h = hour_of_day(t) as f64;
                let phase = (h - self.peak_hour) / 24.0 * std::f64::consts::TAU;
                let diurnal = 0.5 * (1.0 + phase.cos());
                let mut d = self.trough_ratio + (1.0 - self.trough_ratio) * diurnal;
                if is_weekend(t) {
                    d *= self.weekend_factor;
                }
                d * (1.0 + self.noise_std * rng.standard_normal()).max(0.1)
            })
            .collect();
        let m: f64 = raw.iter().sum::<f64>() / hours as f64;
        for v in &mut raw {
            *v *= self.average_mw / m;
        }
        raw
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::series;

    #[test]
    fn mean_is_exactly_calibrated() {
        let p = FacebookProfile::default().generate(168, &mut TraceRng::new(1));
        assert!((series::mean(&p) - TABLE1_AVERAGE_MW).abs() < 1e-9);
    }

    #[test]
    fn weekly_energy_prices_like_table1() {
        // 168 h × 2.08 MW × 80 $/MWh ≈ $27 955 — the paper's fuel-cell cost.
        let p = FacebookProfile::default().generate(168, &mut TraceRng::new(1));
        let cost: f64 = p.iter().map(|mw| mw * 80.0).sum();
        assert!(
            (cost - 27_957.0).abs() < 600.0,
            "weekly fuel-cell cost {cost}"
        );
    }

    #[test]
    fn profile_is_diurnal_and_positive() {
        let p = FacebookProfile::default().generate(168, &mut TraceRng::new(4));
        assert!(p.iter().all(|&v| v > 0.0));
        // Peak-to-trough between 1.4 and 2.5 (Fig. 1 shows roughly 2:1).
        let ratio = series::peak_to_trough(&p);
        assert!((1.3..3.0).contains(&ratio), "peak/trough {ratio}");
    }

    #[test]
    fn deterministic_given_seed() {
        let a = FacebookProfile::default().generate(100, &mut TraceRng::new(7));
        let b = FacebookProfile::default().generate(100, &mut TraceRng::new(7));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "at least one hour")]
    fn rejects_zero_hours() {
        let _ = FacebookProfile::default().generate(0, &mut TraceRng::new(0));
    }
}
