//! Short-term time-series forecasting.
//!
//! The paper's control loop relies on two predictability assumptions: the
//! near-term request arrival "can be predicted quite accurately, by
//! employing techniques such as statistical machine learning and time
//! series analysis" (§II-A), and the carbon emission rate "shows a strong
//! diurnal pattern, making it easy to be accurately predicted" (§II-B2).
//! This module supplies the standard tools those statements refer to —
//! a seasonal-naïve predictor and additive Holt–Winters (triple
//! exponential smoothing) — plus the usual accuracy metrics, so the
//! assumption can be *tested* (see `ufc-experiments::robustness`).

/// Forecast accuracy: mean absolute percentage error (fraction, not %).
///
/// # Panics
///
/// Panics if the slices differ in length, are empty, or an actual value is
/// zero (MAPE undefined).
#[must_use]
pub fn mape(actual: &[f64], forecast: &[f64]) -> f64 {
    assert_eq!(actual.len(), forecast.len(), "length mismatch");
    assert!(!actual.is_empty(), "empty series");
    actual
        .iter()
        .zip(forecast)
        .map(|(a, f)| {
            assert!(*a != 0.0, "MAPE undefined for zero actuals");
            ((a - f) / a).abs()
        })
        .sum::<f64>()
        / actual.len() as f64
}

/// Forecast accuracy: root-mean-square error.
///
/// # Panics
///
/// Panics if the slices differ in length or are empty.
#[must_use]
pub fn rmse(actual: &[f64], forecast: &[f64]) -> f64 {
    assert_eq!(actual.len(), forecast.len(), "length mismatch");
    assert!(!actual.is_empty(), "empty series");
    let mse = actual
        .iter()
        .zip(forecast)
        .map(|(a, f)| (a - f) * (a - f))
        .sum::<f64>()
        / actual.len() as f64;
    mse.sqrt()
}

/// Seasonal-naïve forecaster: tomorrow's 3 pm equals today's 3 pm.
///
/// # Example
///
/// ```
/// use ufc_traces::forecast::SeasonalNaive;
///
/// let history = [1.0, 2.0, 3.0, 1.1, 2.1, 3.1];
/// // Period 3: the next value repeats history[len − 3] = 1.1.
/// assert_eq!(SeasonalNaive::new(3).forecast_next(&history), 1.1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeasonalNaive {
    period: usize,
}

impl SeasonalNaive {
    /// Creates a forecaster with the given season length.
    ///
    /// # Panics
    ///
    /// Panics if `period == 0`.
    #[must_use]
    pub fn new(period: usize) -> Self {
        assert!(period > 0, "period must be positive");
        SeasonalNaive { period }
    }

    /// One-step-ahead forecast.
    ///
    /// # Panics
    ///
    /// Panics if `history.len() < period`.
    #[must_use]
    pub fn forecast_next(&self, history: &[f64]) -> f64 {
        assert!(
            history.len() >= self.period,
            "need at least one full season of history"
        );
        history[history.len() - self.period]
    }
}

/// Additive Holt–Winters (triple exponential smoothing): level + trend +
/// additive seasonality, the workhorse of short-term load forecasting.
///
/// # Example
///
/// ```
/// use ufc_traces::forecast::HoltWinters;
///
/// // A clean period-4 seasonal series is predicted almost exactly.
/// let hist: Vec<f64> = (0..32).map(|t| 10.0 + [0.0, 3.0, 5.0, 2.0][t % 4]).collect();
/// let hw = HoltWinters::new(0.3, 0.05, 0.3, 4);
/// let f = hw.forecast_next(&hist);
/// assert!((f - 10.0).abs() < 0.5); // next slot is the season-phase-0 value
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HoltWinters {
    alpha: f64,
    beta: f64,
    gamma: f64,
    period: usize,
}

impl HoltWinters {
    /// Creates a smoother with coefficients in `[0, 1]` and the given
    /// season length.
    ///
    /// # Panics
    ///
    /// Panics if any coefficient is outside `[0, 1]` or `period == 0`.
    #[must_use]
    pub fn new(alpha: f64, beta: f64, gamma: f64, period: usize) -> Self {
        for (name, v) in [("alpha", alpha), ("beta", beta), ("gamma", gamma)] {
            assert!(
                (0.0..=1.0).contains(&v),
                "{name} must be in [0, 1], got {v}"
            );
        }
        assert!(period > 0, "period must be positive");
        HoltWinters {
            alpha,
            beta,
            gamma,
            period,
        }
    }

    /// A default tuned for hourly diurnal traces: `α = 0.3`, `β = 0.02`,
    /// `γ = 0.3`, period 24.
    #[must_use]
    pub fn hourly_diurnal() -> Self {
        HoltWinters::new(0.3, 0.02, 0.3, 24)
    }

    /// Forecasts `horizon` steps beyond the end of `history`.
    ///
    /// # Panics
    ///
    /// Panics if `history.len() < 2·period` (need two seasons to
    /// initialize) or `horizon == 0`.
    #[must_use]
    pub fn forecast(&self, history: &[f64], horizon: usize) -> Vec<f64> {
        let p = self.period;
        assert!(
            history.len() >= 2 * p,
            "need at least two seasons ({} points), got {}",
            2 * p,
            history.len()
        );
        assert!(horizon > 0, "horizon must be positive");

        // Initialization (classic): level = mean of season 1, trend = mean
        // seasonal-difference, seasonal = first-season deviations.
        let s1: f64 = history[..p].iter().sum::<f64>() / p as f64;
        let s2: f64 = history[p..2 * p].iter().sum::<f64>() / p as f64;
        let mut level = s1;
        let mut trend = (s2 - s1) / p as f64;
        let mut seasonal: Vec<f64> = history[..p].iter().map(|v| v - s1).collect();

        for (t, &y) in history.iter().enumerate().skip(p) {
            let si = t % p;
            let last_level = level;
            level = self.alpha * (y - seasonal[si]) + (1.0 - self.alpha) * (level + trend);
            trend = self.beta * (level - last_level) + (1.0 - self.beta) * trend;
            seasonal[si] = self.gamma * (y - level) + (1.0 - self.gamma) * seasonal[si];
        }

        (1..=horizon)
            .map(|k| {
                let si = (history.len() + k - 1) % p;
                level + trend * k as f64 + seasonal[si]
            })
            .collect()
    }

    /// One-step-ahead forecast.
    ///
    /// # Panics
    ///
    /// As for [`HoltWinters::forecast`].
    #[must_use]
    pub fn forecast_next(&self, history: &[f64]) -> f64 {
        self.forecast(history, 1)[0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::HpLikeWorkload;
    use crate::TraceRng;

    #[test]
    fn metrics_basics() {
        assert_eq!(mape(&[2.0, 4.0], &[2.0, 4.0]), 0.0);
        assert!((mape(&[2.0], &[1.0]) - 0.5).abs() < 1e-12);
        assert_eq!(rmse(&[1.0, 1.0], &[1.0, 1.0]), 0.0);
        assert!((rmse(&[0.0, 0.0], &[3.0, 4.0]) - (12.5f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "MAPE undefined")]
    fn mape_rejects_zero_actuals() {
        let _ = mape(&[0.0], &[1.0]);
    }

    #[test]
    fn seasonal_naive_repeats_last_season() {
        let hist = [5.0, 6.0, 7.0, 5.5, 6.5, 7.5];
        let sn = SeasonalNaive::new(3);
        assert_eq!(sn.forecast_next(&hist), 5.5);
    }

    #[test]
    fn holt_winters_nails_a_clean_seasonal_series() {
        let hist: Vec<f64> = (0..96)
            .map(|t| 50.0 + 10.0 * ((t % 24) as f64 / 24.0 * std::f64::consts::TAU).sin())
            .collect();
        let hw = HoltWinters::hourly_diurnal();
        let f = hw.forecast(&hist, 24);
        let actual: Vec<f64> = (96..120)
            .map(|t| 50.0 + 10.0 * ((t % 24) as f64 / 24.0 * std::f64::consts::TAU).sin())
            .collect();
        assert!(mape(&actual, &f) < 0.02, "MAPE {}", mape(&actual, &f));
    }

    #[test]
    fn holt_winters_tracks_a_trend() {
        // Linear growth + seasonality.
        let hist: Vec<f64> = (0..144)
            .map(|t| 100.0 + 0.5 * t as f64 + 5.0 * ((t % 24) as f64 - 12.0) / 12.0)
            .collect();
        let f = HoltWinters::new(0.4, 0.1, 0.3, 24).forecast_next(&hist);
        let actual = 100.0 + 0.5 * 144.0 + 5.0 * (0.0 - 12.0) / 12.0;
        assert!(
            (f - actual).abs() / actual < 0.05,
            "forecast {f} vs actual {actual}"
        );
    }

    #[test]
    fn holt_winters_beats_naive_on_workload_trace() {
        // On the HP-like trace, HW should beat the "repeat the last value"
        // strawman and be competitive with seasonal-naïve.
        let trace = HpLikeWorkload::default().generate(168, &mut TraceRng::new(8));
        let mut hw_err = Vec::new();
        let mut last_err = Vec::new();
        let hw = HoltWinters::hourly_diurnal();
        for t in 48..168 {
            let hist = &trace[..t];
            hw_err.push((hw.forecast_next(hist) - trace[t]).abs());
            last_err.push((hist[hist.len() - 1] - trace[t]).abs());
        }
        let hw_mean: f64 = hw_err.iter().sum::<f64>() / hw_err.len() as f64;
        let last_mean: f64 = last_err.iter().sum::<f64>() / last_err.len() as f64;
        assert!(
            hw_mean < last_mean,
            "Holt–Winters ({hw_mean}) not better than last-value ({last_mean})"
        );
    }

    #[test]
    fn validation_panics() {
        assert!(std::panic::catch_unwind(|| HoltWinters::new(1.5, 0.1, 0.1, 24)).is_err());
        assert!(std::panic::catch_unwind(|| SeasonalNaive::new(0)).is_err());
        let hw = HoltWinters::hourly_diurnal();
        assert!(std::panic::catch_unwind(|| hw.forecast(&[1.0; 10], 1)).is_err());
    }
}
