//! Numeric-CSV import — the inverse of [`crate::csv`].
//!
//! The synthetic generators replace the paper's unavailable data sets, but
//! a user who *does* hold real traces (RTO price dumps, datacenter
//! telemetry) should be able to drive the same pipeline with them. This
//! module parses headered numeric CSV into named columns; the scenario
//! builder accepts such columns as overrides for any generated trace.

use std::fmt;

/// Errors produced when parsing numeric CSV.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LoadError {
    /// The document had no header line.
    Empty,
    /// A data row had a different width than the header.
    RaggedRow {
        /// 1-based line number of the offending row.
        line: usize,
        /// Cells found.
        found: usize,
        /// Cells expected (header width).
        expected: usize,
    },
    /// A cell failed to parse as `f64`.
    BadNumber {
        /// 1-based line number.
        line: usize,
        /// 1-based column number.
        column: usize,
        /// The offending text.
        text: String,
    },
    /// [`NumericCsv::require_column`] did not find the requested name.
    MissingColumn {
        /// The requested column name.
        name: String,
    },
}

impl fmt::Display for LoadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoadError::Empty => write!(f, "CSV document has no header"),
            LoadError::RaggedRow {
                line,
                found,
                expected,
            } => write!(
                f,
                "line {line} has {found} cells but the header has {expected}"
            ),
            LoadError::BadNumber { line, column, text } => {
                write!(f, "line {line}, column {column}: {text:?} is not a number")
            }
            LoadError::MissingColumn { name } => write!(f, "no column named {name:?}"),
        }
    }
}

impl std::error::Error for LoadError {}

/// A parsed numeric CSV document: named columns of equal length.
#[derive(Debug, Clone, PartialEq)]
pub struct NumericCsv {
    header: Vec<String>,
    columns: Vec<Vec<f64>>,
}

impl NumericCsv {
    /// Column names, in file order.
    #[must_use]
    pub fn header(&self) -> &[String] {
        &self.header
    }

    /// Number of data rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.columns.first().map_or(0, Vec::len)
    }

    /// Looks a column up by exact name.
    #[must_use]
    pub fn column(&self, name: &str) -> Option<&[f64]> {
        self.header
            .iter()
            .position(|h| h == name)
            .map(|i| self.columns[i].as_slice())
    }

    /// Like [`NumericCsv::column`] but failing loudly.
    ///
    /// # Errors
    ///
    /// Returns [`LoadError::MissingColumn`] when absent.
    pub fn require_column(&self, name: &str) -> Result<&[f64], LoadError> {
        self.column(name).ok_or_else(|| LoadError::MissingColumn {
            name: name.to_owned(),
        })
    }
}

/// Parses a headered numeric CSV document.
///
/// Empty lines are skipped; cells are trimmed before parsing; the header is
/// taken verbatim (trimmed). This intentionally supports exactly the
/// dialect [`crate::csv::Csv`] writes (no quoting/escaping), which is also
/// what RTO price dumps look like.
///
/// # Errors
///
/// See [`LoadError`].
pub fn parse_numeric_csv(text: &str) -> Result<NumericCsv, LoadError> {
    let mut lines = text
        .lines()
        .enumerate()
        .filter(|(_, l)| !l.trim().is_empty());
    let Some((_, header_line)) = lines.next() else {
        return Err(LoadError::Empty);
    };
    let header: Vec<String> = header_line
        .split(',')
        .map(|h| h.trim().to_owned())
        .collect();
    let width = header.len();
    let mut columns: Vec<Vec<f64>> = vec![Vec::new(); width];
    for (idx, line) in lines {
        let cells: Vec<&str> = line.split(',').collect();
        if cells.len() != width {
            return Err(LoadError::RaggedRow {
                line: idx + 1,
                found: cells.len(),
                expected: width,
            });
        }
        for (c, cell) in cells.iter().enumerate() {
            let v: f64 = cell.trim().parse().map_err(|_| LoadError::BadNumber {
                line: idx + 1,
                column: c + 1,
                text: (*cell).to_owned(),
            })?;
            columns[c].push(v);
        }
    }
    Ok(NumericCsv { header, columns })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csv::Csv;

    #[test]
    fn roundtrips_with_the_writer() {
        let mut out = Csv::new(&["hour", "price"]);
        out.push_row(&[0.0, 31.25]);
        out.push_row(&[1.0, 28.0]);
        let parsed = parse_numeric_csv(&out.to_string()).unwrap();
        assert_eq!(parsed.header(), &["hour".to_owned(), "price".to_owned()]);
        assert_eq!(parsed.rows(), 2);
        assert_eq!(parsed.column("price").unwrap(), &[31.25, 28.0]);
        assert!(parsed.column("nope").is_none());
    }

    #[test]
    fn tolerates_whitespace_and_blank_lines() {
        let text = "a, b\n\n 1 , 2 \n\n3,4\n";
        let parsed = parse_numeric_csv(text).unwrap();
        assert_eq!(parsed.rows(), 2);
        assert_eq!(parsed.column("b").unwrap(), &[2.0, 4.0]);
    }

    #[test]
    fn error_cases() {
        assert_eq!(parse_numeric_csv(""), Err(LoadError::Empty));
        assert!(matches!(
            parse_numeric_csv("a,b\n1\n"),
            Err(LoadError::RaggedRow {
                line: 2,
                found: 1,
                expected: 2
            })
        ));
        let e = parse_numeric_csv("a\nx\n").unwrap_err();
        assert!(matches!(
            e,
            LoadError::BadNumber {
                line: 2,
                column: 1,
                ..
            }
        ));
        let parsed = parse_numeric_csv("a\n1\n").unwrap();
        assert!(matches!(
            parsed.require_column("z"),
            Err(LoadError::MissingColumn { .. })
        ));
    }

    #[test]
    fn display_messages() {
        let e = LoadError::BadNumber {
            line: 3,
            column: 2,
            text: "oops".into(),
        };
        assert!(e.to_string().contains("line 3"));
        assert!(LoadError::Empty.to_string().contains("header"));
    }
}
