//! Locational-marginal-price (LMP) generation.
//!
//! The paper uses real-time hourly LMPs (Sep 10–16 2012) downloaded from the
//! four regions' RTO/ISO websites. [`LmpModel`] synthesizes series with the
//! properties the optimization exploits — base-level spatial spread,
//! diurnal peaking, weekend discounts, AR(1) volatility, and rare spikes —
//! calibrated per site so the Table I cost levels are reproduced in shape
//! (Dallas cheap at ≈ 28 $/MWh average, San Jose expensive and spiky at
//! ≈ 80 $/MWh; see DESIGN.md §4).

use crate::series::{hour_of_day, is_weekend};
use crate::TraceRng;

/// Per-site electricity price model producing hourly $/MWh series.
///
/// The hourly price is
/// `p(t) = base · (offpeak + amp·diurnal(t)) · weekend(t) · (1 + AR1(t)) + spike(t)`
/// clamped below by `floor`.
///
/// # Example
///
/// ```
/// use ufc_traces::{price::LmpModel, TraceRng};
///
/// let p = LmpModel::dallas().generate(168, &mut TraceRng::new(1));
/// let avg = p.iter().sum::<f64>() / p.len() as f64;
/// assert!(avg > 15.0 && avg < 45.0, "Dallas average {avg} off-calibration");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LmpModel {
    /// Site label carried into exports.
    pub name: String,
    /// Base price level in $/MWh.
    pub base: f64,
    /// Off-peak multiplier floor of the diurnal factor.
    pub offpeak_factor: f64,
    /// Amplitude of the diurnal peak on top of `offpeak_factor`.
    pub diurnal_amplitude: f64,
    /// Hour of day at which prices peak.
    pub peak_hour: f64,
    /// Weekend discount factor (0–1].
    pub weekend_factor: f64,
    /// Standard deviation of the AR(1) multiplicative noise.
    pub noise_std: f64,
    /// AR(1) coefficient.
    pub noise_ar: f64,
    /// Per-hour spike probability.
    pub spike_probability: f64,
    /// Lognormal μ of the spike magnitude ($/MWh).
    pub spike_mu: f64,
    /// Lognormal σ of the spike magnitude.
    pub spike_sigma: f64,
    /// Hard price floor ($/MWh).
    pub floor: f64,
}

impl LmpModel {
    /// Dallas (ERCOT-like): cheap base, pronounced peaks, spiky market.
    #[must_use]
    pub fn dallas() -> Self {
        LmpModel {
            name: "Dallas".into(),
            base: 25.0,
            offpeak_factor: 0.72,
            diurnal_amplitude: 0.65,
            peak_hour: 16.0,
            weekend_factor: 0.92,
            noise_std: 0.10,
            noise_ar: 0.5,
            spike_probability: 0.025,
            spike_mu: 3.4, // median spike ≈ 30 $/MWh
            spike_sigma: 0.8,
            floor: 12.0,
        }
    }

    /// San Jose (CAISO-like): expensive base, strong evening peak, volatile.
    #[must_use]
    pub fn san_jose() -> Self {
        LmpModel {
            name: "San Jose".into(),
            base: 52.0,
            offpeak_factor: 0.35,
            diurnal_amplitude: 2.30,
            peak_hour: 17.0,
            weekend_factor: 0.93,
            noise_std: 0.12,
            noise_ar: 0.55,
            spike_probability: 0.12,
            spike_mu: 4.10,
            spike_sigma: 0.6,
            floor: 18.0,
        }
    }

    /// Calgary (AESO-like): mid-priced, coal-dominated market.
    #[must_use]
    pub fn calgary() -> Self {
        LmpModel {
            name: "Calgary".into(),
            base: 46.0,
            offpeak_factor: 0.74,
            diurnal_amplitude: 0.55,
            peak_hour: 17.0,
            weekend_factor: 0.94,
            noise_std: 0.11,
            noise_ar: 0.5,
            spike_probability: 0.02,
            spike_mu: 3.3,
            spike_sigma: 0.9,
            floor: 22.0,
        }
    }

    /// Pittsburgh (PJM-like): mid-priced, moderate volatility.
    #[must_use]
    pub fn pittsburgh() -> Self {
        LmpModel {
            name: "Pittsburgh".into(),
            base: 40.0,
            offpeak_factor: 0.73,
            diurnal_amplitude: 0.60,
            peak_hour: 15.0,
            weekend_factor: 0.93,
            noise_std: 0.09,
            noise_ar: 0.5,
            spike_probability: 0.018,
            spike_mu: 3.2,
            spike_sigma: 0.8,
            floor: 20.0,
        }
    }

    /// The four paper sites in datacenter order
    /// (Calgary, San Jose, Dallas, Pittsburgh) — matches
    /// `ufc_geo::sites::datacenter_sites()`.
    #[must_use]
    pub fn paper_sites() -> Vec<LmpModel> {
        vec![
            LmpModel::calgary(),
            LmpModel::san_jose(),
            LmpModel::dallas(),
            LmpModel::pittsburgh(),
        ]
    }

    /// Generates `hours` hourly prices in $/MWh.
    ///
    /// # Panics
    ///
    /// Panics if parameters are out of range (nonpositive base, negative
    /// noise, `weekend_factor ∉ (0, 1]`, …).
    #[must_use]
    pub fn generate(&self, hours: usize, rng: &mut TraceRng) -> Vec<f64> {
        assert!(self.base > 0.0, "base price must be positive");
        assert!(self.offpeak_factor > 0.0, "offpeak factor must be positive");
        assert!(self.diurnal_amplitude >= 0.0, "negative diurnal amplitude");
        assert!(
            self.weekend_factor > 0.0 && self.weekend_factor <= 1.0,
            "weekend_factor must be in (0, 1]"
        );
        assert!(self.noise_std >= 0.0 && (0.0..1.0).contains(&self.noise_ar));
        assert!(self.floor >= 0.0, "floor must be nonnegative");

        let mut out = Vec::with_capacity(hours);
        let mut ar = 0.0f64;
        let innovation = self.noise_std * (1.0 - self.noise_ar * self.noise_ar).sqrt();
        for t in 0..hours {
            let h = hour_of_day(t) as f64;
            let phase = (h - self.peak_hour) / 24.0 * std::f64::consts::TAU;
            let diurnal = 0.5 * (1.0 + phase.cos());
            let mut p = self.base * (self.offpeak_factor + self.diurnal_amplitude * diurnal);
            if is_weekend(t) {
                p *= self.weekend_factor;
            }
            ar = self.noise_ar * ar + innovation * rng.standard_normal();
            p *= 1.0 + ar;
            if rng.bernoulli(self.spike_probability) {
                p += rng.lognormal(self.spike_mu, self.spike_sigma);
            }
            out.push(p.max(self.floor));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::series;

    #[test]
    fn site_calibration_levels() {
        let rng = TraceRng::new(2012);
        let dallas = LmpModel::dallas().generate(168, &mut rng.substream("dal"));
        let sj = LmpModel::san_jose().generate(168, &mut rng.substream("sj"));
        let cal = LmpModel::calgary().generate(168, &mut rng.substream("cal"));
        let pit = LmpModel::pittsburgh().generate(168, &mut rng.substream("pit"));
        // Table I implies Dallas ≈ 28 $/MWh and San Jose ≈ 80 $/MWh averages.
        let d = series::mean(&dallas);
        let s = series::mean(&sj);
        assert!((20.0..40.0).contains(&d), "Dallas mean {d}");
        assert!((60.0..100.0).contains(&s), "San Jose mean {s}");
        // Ordering: San Jose most expensive, Dallas cheapest.
        assert!(s > series::mean(&cal) && s > series::mean(&pit));
        assert!(d < series::mean(&cal) && d < series::mean(&pit));
    }

    #[test]
    fn prices_respect_floor() {
        let m = LmpModel::dallas();
        let p = m.generate(1000, &mut TraceRng::new(77));
        assert!(p.iter().all(|&v| v >= m.floor));
    }

    #[test]
    fn diurnal_peak_visible_without_noise() {
        let m = LmpModel {
            noise_std: 0.0,
            spike_probability: 0.0,
            ..LmpModel::dallas()
        };
        let p = m.generate(24, &mut TraceRng::new(1));
        let peak = p[16];
        let trough = p[4];
        assert!(peak > 1.5 * trough, "peak {peak} vs trough {trough}");
    }

    #[test]
    fn spikes_fatten_the_tail() {
        let calm = LmpModel {
            spike_probability: 0.0,
            ..LmpModel::dallas()
        };
        let spiky = LmpModel {
            spike_probability: 0.3,
            ..LmpModel::dallas()
        };
        let pc = calm.generate(500, &mut TraceRng::new(6));
        let ps = spiky.generate(500, &mut TraceRng::new(6));
        assert!(series::max(&ps) > series::max(&pc));
    }

    #[test]
    fn deterministic_given_seed() {
        let a = LmpModel::san_jose().generate(50, &mut TraceRng::new(10));
        let b = LmpModel::san_jose().generate(50, &mut TraceRng::new(10));
        assert_eq!(a, b);
    }

    #[test]
    fn paper_sites_order_matches_datacenters() {
        let sites = LmpModel::paper_sites();
        assert_eq!(sites[0].name, "Calgary");
        assert_eq!(sites[1].name, "San Jose");
        assert_eq!(sites[2].name, "Dallas");
        assert_eq!(sites[3].name, "Pittsburgh");
    }

    #[test]
    #[should_panic(expected = "base price")]
    fn rejects_nonpositive_base() {
        let _ = LmpModel {
            base: 0.0,
            ..LmpModel::dallas()
        }
        .generate(1, &mut TraceRng::new(0));
    }
}
