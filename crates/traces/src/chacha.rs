//! Self-contained ChaCha20 keystream used by [`crate::TraceRng`].
//!
//! The build environment cannot fetch `rand_chacha`, so the trace layer
//! carries its own implementation of the ChaCha20 block function (RFC 8439,
//! 20 rounds). Output is the raw keystream read as little-endian words —
//! exactly the property the generators need: a high-quality, seekable,
//! *version-stable* deterministic stream. The word sequence is fixed by
//! this file alone, so traces can never shift under a dependency upgrade.

/// ChaCha20 keystream generator with a 64-bit block counter.
#[derive(Debug, Clone)]
pub struct ChaCha20 {
    /// Key + nonce state words 4..=13 and 14..=15 of the initial matrix.
    key: [u32; 8],
    nonce: [u32; 2],
    counter: u64,
    /// Current 16-word output block and read position within it.
    block: [u32; 16],
    word_pos: usize,
}

const SIGMA: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

impl ChaCha20 {
    /// Expand a 64-bit seed into a full key/nonce via SplitMix64 and start
    /// the stream at block zero.
    pub fn from_seed(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || -> u64 {
            sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        let mut key = [0u32; 8];
        for pair in 0..4 {
            let w = next();
            key[2 * pair] = w as u32;
            key[2 * pair + 1] = (w >> 32) as u32;
        }
        let nw = next();
        ChaCha20 {
            key,
            nonce: [nw as u32, (nw >> 32) as u32],
            counter: 0,
            block: [0; 16],
            word_pos: 16, // force a block computation on first read
        }
    }

    fn refill(&mut self) {
        let mut x = [0u32; 16];
        x[..4].copy_from_slice(&SIGMA);
        x[4..12].copy_from_slice(&self.key);
        x[12] = self.counter as u32;
        x[13] = (self.counter >> 32) as u32;
        x[14] = self.nonce[0];
        x[15] = self.nonce[1];
        let input = x;

        for _ in 0..10 {
            // Column round.
            quarter(&mut x, 0, 4, 8, 12);
            quarter(&mut x, 1, 5, 9, 13);
            quarter(&mut x, 2, 6, 10, 14);
            quarter(&mut x, 3, 7, 11, 15);
            // Diagonal round.
            quarter(&mut x, 0, 5, 10, 15);
            quarter(&mut x, 1, 6, 11, 12);
            quarter(&mut x, 2, 7, 8, 13);
            quarter(&mut x, 3, 4, 9, 14);
        }
        for (out, inp) in x.iter_mut().zip(input.iter()) {
            *out = out.wrapping_add(*inp);
        }
        self.block = x;
        self.counter = self.counter.wrapping_add(1);
        self.word_pos = 0;
    }

    /// Next 32 keystream bits.
    pub fn next_u32(&mut self) -> u32 {
        if self.word_pos >= 16 {
            self.refill();
        }
        let w = self.block[self.word_pos];
        self.word_pos += 1;
        w
    }

    /// Next 64 keystream bits (two consecutive words, low first).
    pub fn next_u64(&mut self) -> u64 {
        let lo = u64::from(self.next_u32());
        let hi = u64::from(self.next_u32());
        lo | (hi << 32)
    }
}

#[inline]
fn quarter(x: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    x[a] = x[a].wrapping_add(x[b]);
    x[d] = (x[d] ^ x[a]).rotate_left(16);
    x[c] = x[c].wrapping_add(x[d]);
    x[b] = (x[b] ^ x[c]).rotate_left(12);
    x[a] = x[a].wrapping_add(x[b]);
    x[d] = (x[d] ^ x[a]).rotate_left(8);
    x[c] = x[c].wrapping_add(x[d]);
    x[b] = (x[b] ^ x[c]).rotate_left(7);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// RFC 8439 §2.3.2 test vector for the raw block function.
    #[test]
    fn rfc8439_block_vector() {
        let mut c = ChaCha20::from_seed(0);
        // Install the RFC key/counter/nonce directly.
        c.key = [
            0x0302_0100,
            0x0706_0504,
            0x0b0a_0908,
            0x0f0e_0d0c,
            0x1312_1110,
            0x1716_1514,
            0x1b1a_1918,
            0x1f1e_1d1c,
        ];
        // RFC nonce 00:00:00:09:00:00:00:4a:00:00:00:00 reads as LE words
        // 0x09000000, 0x4a000000, 0; our layout packs the 64-bit counter
        // into state words 12–13, so word 13 carries the first nonce word.
        c.counter = 1 | (0x0900_0000u64 << 32);
        c.nonce = [0x4a00_0000, 0x0000_0000];
        c.word_pos = 16;
        let expected: [u32; 16] = [
            0xe4e7_f110,
            0x1559_3bd1,
            0x1fdd_0f50,
            0xc471_20a3,
            0xc7f4_d1c7,
            0x0368_c033,
            0x9aaa_2204,
            0x4e6c_d4c3,
            0x4664_82d2,
            0x09aa_9f07,
            0x05d7_c214,
            0xa202_8bd9,
            0xd19c_12b5,
            0xb94e_16de,
            0xe883_d0cb,
            0x4e3c_50a2,
        ];
        for &want in &expected {
            assert_eq!(c.next_u32(), want);
        }
    }

    #[test]
    fn blocks_advance() {
        let mut c = ChaCha20::from_seed(42);
        let first: Vec<u32> = (0..16).map(|_| c.next_u32()).collect();
        let second: Vec<u32> = (0..16).map(|_| c.next_u32()).collect();
        assert_ne!(first, second);
    }

    #[test]
    fn seeds_decorrelate() {
        let mut a = ChaCha20::from_seed(1);
        let mut b = ChaCha20::from_seed(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }
}
