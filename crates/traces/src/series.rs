//! Small helpers over hourly `Vec<f64>` time series.
//!
//! Everything downstream (model, experiments, benches) treats a trace as a
//! plain vector with one sample per hour; these functions centralize the
//! recurring statistics and rescalings.

/// Arithmetic mean (0 for an empty series).
#[must_use]
pub fn mean(series: &[f64]) -> f64 {
    if series.is_empty() {
        0.0
    } else {
        series.iter().sum::<f64>() / series.len() as f64
    }
}

/// Maximum value (−∞ for an empty series).
#[must_use]
pub fn max(series: &[f64]) -> f64 {
    series.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
}

/// Minimum value (+∞ for an empty series).
#[must_use]
pub fn min(series: &[f64]) -> f64 {
    series.iter().cloned().fold(f64::INFINITY, f64::min)
}

/// Rescales so the peak equals `peak` (no-op on all-zero input).
///
/// # Panics
///
/// Panics if `peak < 0` or the series contains negative values.
#[must_use]
pub fn scale_to_peak(series: &[f64], peak: f64) -> Vec<f64> {
    assert!(peak >= 0.0, "peak must be nonnegative");
    assert!(
        series.iter().all(|&v| v >= 0.0),
        "scale_to_peak expects a nonnegative series"
    );
    let m = max(series);
    if m <= 0.0 {
        return series.to_vec();
    }
    series.iter().map(|v| v * peak / m).collect()
}

/// Rescales so the mean equals `target_mean` (no-op on an all-zero input).
///
/// # Panics
///
/// Panics if `target_mean < 0` or the series contains negative values.
#[must_use]
pub fn scale_to_mean(series: &[f64], target_mean: f64) -> Vec<f64> {
    assert!(target_mean >= 0.0, "target mean must be nonnegative");
    assert!(
        series.iter().all(|&v| v >= 0.0),
        "scale_to_mean expects a nonnegative series"
    );
    let m = mean(series);
    if m <= 0.0 {
        return series.to_vec();
    }
    series.iter().map(|v| v * target_mean / m).collect()
}

/// Peak-to-trough ratio `max/min`; ∞ when the minimum is zero.
///
/// # Panics
///
/// Panics on an empty series or negative values.
#[must_use]
pub fn peak_to_trough(series: &[f64]) -> f64 {
    assert!(!series.is_empty(), "empty series");
    assert!(series.iter().all(|&v| v >= 0.0), "negative values");
    let lo = min(series);
    if lo == 0.0 {
        f64::INFINITY
    } else {
        max(series) / lo
    }
}

/// Hour-of-day index (0–23) for an hourly sample index.
#[must_use]
pub fn hour_of_day(t: usize) -> usize {
    t % 24
}

/// `true` when hourly index `t` falls on a weekend, with the convention that
/// the series starts on a Monday (paper traces start Monday Sep 10, 2012).
#[must_use]
pub fn is_weekend(t: usize) -> bool {
    let day = (t / 24) % 7;
    day >= 5
}

/// Empirical CDF sample points for a data set: returns `(sorted values,
/// cumulative fractions)` suitable for plotting Fig. 11-style CDFs.
#[must_use]
pub fn empirical_cdf(data: &[f64]) -> (Vec<f64>, Vec<f64>) {
    let mut sorted = data.to_vec();
    sorted.sort_by(f64::total_cmp);
    let n = sorted.len();
    let fracs = (0..n).map(|i| (i + 1) as f64 / n as f64).collect();
    (sorted, fracs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_stats() {
        let s = [1.0, 2.0, 3.0];
        assert_eq!(mean(&s), 2.0);
        assert_eq!(max(&s), 3.0);
        assert_eq!(min(&s), 1.0);
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    fn scale_to_peak_sets_max() {
        let s = scale_to_peak(&[1.0, 2.0, 4.0], 10.0);
        assert_eq!(s, vec![2.5, 5.0, 10.0]);
        // All-zero series passes through.
        assert_eq!(scale_to_peak(&[0.0, 0.0], 5.0), vec![0.0, 0.0]);
    }

    #[test]
    fn scale_to_mean_sets_mean() {
        let s = scale_to_mean(&[1.0, 3.0], 4.0);
        assert!((mean(&s) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn peak_to_trough_ratio() {
        assert_eq!(peak_to_trough(&[1.0, 2.0, 4.0]), 4.0);
        assert_eq!(peak_to_trough(&[0.0, 1.0]), f64::INFINITY);
    }

    #[test]
    fn calendar_helpers() {
        assert_eq!(hour_of_day(0), 0);
        assert_eq!(hour_of_day(25), 1);
        assert!(!is_weekend(0)); // Monday 00:00
        assert!(!is_weekend(4 * 24 + 23)); // Friday 23:00
        assert!(is_weekend(5 * 24)); // Saturday 00:00
        assert!(is_weekend(6 * 24 + 12)); // Sunday noon
        assert!(!is_weekend(7 * 24)); // next Monday
    }

    #[test]
    fn cdf_is_sorted_and_normalized() {
        let (xs, fs) = empirical_cdf(&[3.0, 1.0, 2.0, 2.0]);
        assert_eq!(xs, vec![1.0, 2.0, 2.0, 3.0]);
        assert_eq!(fs.last().copied(), Some(1.0));
        assert!(fs.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    #[should_panic(expected = "nonnegative")]
    fn scale_rejects_negative_series() {
        let _ = scale_to_peak(&[-1.0], 1.0);
    }
}
