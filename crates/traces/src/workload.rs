//! HP-like interactive workload generation and its geographic split.
//!
//! The paper scales a one-week hourly HP request trace (Liu et al.,
//! GreenMetrics 2011) to the number of servers required and splits it across
//! the ten front-end proxies "following a normal distribution". The real
//! trace is unavailable; [`HpLikeWorkload`] synthesizes a trace with the
//! same documented signature — strong diurnal swing, weekday/weekend
//! modulation, autocorrelated noise, and occasional bursts.

use crate::series::{hour_of_day, is_weekend};
use crate::TraceRng;

/// Generator for a normalized (0, 1] interactive-workload utilization trace.
///
/// The hourly level is
/// `u(t) = clamp( (trough + (1−trough)·diurnal(t)) · weekend(t) · noise(t) + burst(t) )`
/// where `diurnal` is a raised cosine peaking in the local afternoon,
/// `weekend` attenuates Saturday/Sunday, `noise` is a multiplicative AR(1)
/// process, and `burst` adds rare positive excursions.
///
/// # Example
///
/// ```
/// use ufc_traces::{workload::HpLikeWorkload, TraceRng};
///
/// let trace = HpLikeWorkload::default().generate(48, &mut TraceRng::new(1));
/// // Afternoon load exceeds pre-dawn load on the same day.
/// assert!(trace[15] > trace[4]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HpLikeWorkload {
    /// Fraction of peak load remaining at the nightly trough (0–1).
    pub trough_ratio: f64,
    /// Hour of day (0–23) at which the diurnal component peaks.
    pub peak_hour: f64,
    /// Weekend attenuation factor (0–1].
    pub weekend_factor: f64,
    /// Standard deviation of the AR(1) multiplicative noise.
    pub noise_std: f64,
    /// AR(1) coefficient of the noise process (0–1).
    pub noise_ar: f64,
    /// Per-hour probability of a traffic burst.
    pub burst_probability: f64,
    /// Mean burst magnitude as a fraction of peak.
    pub burst_scale: f64,
}

impl Default for HpLikeWorkload {
    /// Signature of the HP trace as reported in the literature: trough ≈ 35%
    /// of peak, 3 pm peak, ~10% weekend attenuation, mild noise, rare bursts.
    fn default() -> Self {
        HpLikeWorkload {
            trough_ratio: 0.35,
            peak_hour: 15.0,
            weekend_factor: 0.9,
            noise_std: 0.04,
            noise_ar: 0.6,
            burst_probability: 0.03,
            burst_scale: 0.08,
        }
    }
}

impl HpLikeWorkload {
    /// Generates `hours` samples of normalized utilization in (0, 1].
    ///
    /// # Panics
    ///
    /// Panics if any parameter is outside its documented range.
    #[must_use]
    pub fn generate(&self, hours: usize, rng: &mut TraceRng) -> Vec<f64> {
        assert!(
            (0.0..1.0).contains(&self.trough_ratio),
            "trough_ratio must be in [0, 1)"
        );
        assert!(
            (0.0..24.0).contains(&self.peak_hour),
            "peak_hour must be in [0, 24)"
        );
        assert!(
            self.weekend_factor > 0.0 && self.weekend_factor <= 1.0,
            "weekend_factor must be in (0, 1]"
        );
        assert!(
            (0.0..1.0).contains(&self.noise_ar),
            "noise_ar must be in [0, 1)"
        );
        assert!(self.noise_std >= 0.0, "noise_std must be nonnegative");

        let mut out = Vec::with_capacity(hours);
        let mut ar = 0.0f64;
        let innovation = self.noise_std * (1.0 - self.noise_ar * self.noise_ar).sqrt();
        for t in 0..hours {
            let h = hour_of_day(t) as f64;
            // Raised cosine in [0, 1] peaking at `peak_hour`.
            let phase = (h - self.peak_hour) / 24.0 * std::f64::consts::TAU;
            let diurnal = 0.5 * (1.0 + phase.cos());
            let mut u = self.trough_ratio + (1.0 - self.trough_ratio) * diurnal;
            if is_weekend(t) {
                u *= self.weekend_factor;
            }
            ar = self.noise_ar * ar + innovation * rng.standard_normal();
            u *= 1.0 + ar;
            if rng.bernoulli(self.burst_probability) {
                u += self.burst_scale * rng.uniform_in(0.5, 1.5);
            }
            out.push(u.clamp(0.01, 1.0));
        }
        out
    }
}

/// Spatial split of a total workload across `m` front-end proxies.
///
/// Weights are drawn once as `|N(1, spread)|` and normalized — the paper's
/// "normal distribution" split (following Xu & Li) — then each hour applies
/// small per-front-end jitter and renormalizes so the hourly total is
/// preserved exactly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FrontendSplit {
    /// Standard deviation of the base weight distribution.
    pub spread: f64,
    /// Standard deviation of the hourly multiplicative jitter.
    pub jitter: f64,
}

impl Default for FrontendSplit {
    /// `spread = 0.3`, `jitter = 0.05`.
    fn default() -> Self {
        FrontendSplit {
            spread: 0.3,
            jitter: 0.05,
        }
    }
}

impl FrontendSplit {
    /// Splits the hourly totals into an `hours × m` matrix of per-front-end
    /// arrivals; row `t` sums to `total[t]`.
    ///
    /// # Panics
    ///
    /// Panics if `m == 0`, any total is negative, or parameters are negative.
    #[must_use]
    pub fn split(&self, total: &[f64], m: usize, rng: &mut TraceRng) -> Vec<Vec<f64>> {
        assert!(m > 0, "need at least one front-end");
        assert!(
            self.spread >= 0.0 && self.jitter >= 0.0,
            "negative spread/jitter"
        );
        assert!(
            total.iter().all(|&v| v >= 0.0),
            "totals must be nonnegative"
        );
        // Base spatial weights.
        let mut weights: Vec<f64> = (0..m)
            .map(|_| rng.normal(1.0, self.spread).abs().max(0.05))
            .collect();
        let wsum: f64 = weights.iter().sum();
        for w in &mut weights {
            *w /= wsum;
        }
        total
            .iter()
            .map(|&tot| {
                let jittered: Vec<f64> = weights
                    .iter()
                    .map(|&w| w * (1.0 + self.jitter * rng.standard_normal()).max(0.05))
                    .collect();
                let js: f64 = jittered.iter().sum();
                jittered.into_iter().map(|w| tot * w / js).collect()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::series;

    #[test]
    fn trace_has_diurnal_pattern() {
        let trace = HpLikeWorkload::default().generate(168, &mut TraceRng::new(3));
        // Average 2–5 pm load > average 2–5 am load across weekdays.
        let mut peak_sum = 0.0;
        let mut trough_sum = 0.0;
        let mut count = 0;
        for day in 0..5 {
            for h in 0..3 {
                peak_sum += trace[day * 24 + 14 + h];
                trough_sum += trace[day * 24 + 2 + h];
                count += 1;
            }
        }
        assert!(peak_sum / count as f64 > 1.5 * trough_sum / count as f64);
    }

    #[test]
    fn weekend_is_lighter() {
        let gen = HpLikeWorkload {
            noise_std: 0.0,
            burst_probability: 0.0,
            ..HpLikeWorkload::default()
        };
        let trace = gen.generate(168, &mut TraceRng::new(3));
        let weekday_noon = trace[2 * 24 + 12];
        let weekend_noon = trace[5 * 24 + 12];
        assert!(weekend_noon < weekday_noon);
    }

    #[test]
    fn trace_is_deterministic() {
        let a = HpLikeWorkload::default().generate(100, &mut TraceRng::new(9));
        let b = HpLikeWorkload::default().generate(100, &mut TraceRng::new(9));
        assert_eq!(a, b);
    }

    #[test]
    fn trace_stays_normalized() {
        let trace = HpLikeWorkload::default().generate(1000, &mut TraceRng::new(5));
        assert!(trace.iter().all(|&u| (0.0..=1.0).contains(&u)));
        assert!(series::max(&trace) > 0.8, "peak too low");
        assert!(series::min(&trace) < 0.5, "trough too high");
    }

    #[test]
    fn bursts_add_mass() {
        let quiet = HpLikeWorkload {
            burst_probability: 0.0,
            ..HpLikeWorkload::default()
        };
        let bursty = HpLikeWorkload {
            burst_probability: 0.5,
            burst_scale: 0.2,
            ..HpLikeWorkload::default()
        };
        let q = quiet.generate(500, &mut TraceRng::new(4));
        let b = bursty.generate(500, &mut TraceRng::new(4));
        assert!(series::mean(&b) > series::mean(&q));
    }

    #[test]
    #[should_panic(expected = "trough_ratio")]
    fn rejects_bad_trough() {
        let _ = HpLikeWorkload {
            trough_ratio: 1.5,
            ..HpLikeWorkload::default()
        }
        .generate(10, &mut TraceRng::new(0));
    }

    #[test]
    fn split_preserves_totals() {
        let total = vec![10.0, 20.0, 0.0, 5.5];
        let split = FrontendSplit::default().split(&total, 10, &mut TraceRng::new(2));
        assert_eq!(split.len(), 4);
        for (row, &tot) in split.iter().zip(&total) {
            assert_eq!(row.len(), 10);
            assert!((row.iter().sum::<f64>() - tot).abs() < 1e-9 * (1.0 + tot));
            assert!(row.iter().all(|&v| v >= 0.0));
        }
    }

    #[test]
    fn split_weights_are_heterogeneous() {
        let total = vec![100.0];
        let split = FrontendSplit::default().split(&total, 10, &mut TraceRng::new(8));
        let row = &split[0];
        let lo = row.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = row.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(hi > 1.2 * lo, "weights suspiciously uniform: {row:?}");
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn split_rejects_zero_frontends() {
        let _ = FrontendSplit::default().split(&[1.0], 0, &mut TraceRng::new(0));
    }
}
