use crate::chacha::ChaCha20;

/// Deterministic random source for trace generation.
///
/// Wraps the crate's own ChaCha20 keystream (see [`crate::chacha`] — stable
/// across toolchain and dependency changes by construction) and adds the two
/// distributions the generators need: standard normal (Box–Muller) and
/// lognormal. [`TraceRng::substream`] derives independent child streams so
/// that, e.g., the Dallas price trace does not change when the San Jose
/// generator draws a different number of samples.
///
/// # Example
///
/// ```
/// use ufc_traces::TraceRng;
///
/// let mut a = TraceRng::new(7);
/// let mut b = TraceRng::new(7);
/// assert_eq!(a.uniform(), b.uniform()); // same seed ⇒ same stream
/// ```
#[derive(Debug, Clone)]
pub struct TraceRng {
    seed: u64,
    inner: ChaCha20,
    cached_normal: Option<f64>,
}

impl TraceRng {
    /// Creates a stream from a 64-bit seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        TraceRng {
            seed,
            inner: ChaCha20::from_seed(seed),
            cached_normal: None,
        }
    }

    /// Derives an independent child stream labeled by `label`.
    ///
    /// Children with distinct labels are statistically independent of each
    /// other and of the parent, and depend only on the parent's *seed*, not
    /// on how much of the parent stream has been consumed.
    #[must_use]
    pub fn substream(&self, label: &str) -> TraceRng {
        // Mix the label into the parent seed with FNV-1a, then reseed.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in label.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TraceRng::new(self.seed ^ h)
    }

    /// Uniform sample in `[0, 1)` with 53-bit resolution.
    pub fn uniform(&mut self) -> f64 {
        (self.inner.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform sample in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn uniform_in(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi, "empty interval [{lo}, {hi})");
        lo + (hi - lo) * self.uniform()
    }

    /// Standard normal sample via Box–Muller (pairs cached).
    pub fn standard_normal(&mut self) -> f64 {
        if let Some(z) = self.cached_normal.take() {
            return z;
        }
        // Guard u1 away from 0 so ln() stays finite.
        let u1 = self.uniform().max(1e-300);
        let u2 = self.uniform();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.cached_normal = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Normal sample with the given mean and standard deviation.
    ///
    /// # Panics
    ///
    /// Panics if `std_dev < 0`.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        assert!(std_dev >= 0.0, "standard deviation must be nonnegative");
        mean + std_dev * self.standard_normal()
    }

    /// Lognormal sample: `exp(N(mu, sigma))`.
    ///
    /// # Panics
    ///
    /// Panics if `sigma < 0`.
    pub fn lognormal(&mut self, mu: f64, sigma: f64) -> f64 {
        self.normal(mu, sigma).exp()
    }

    /// Bernoulli trial with success probability `p` (clamped to `[0, 1]`).
    pub fn bernoulli(&mut self, p: f64) -> bool {
        self.uniform() < p.clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = TraceRng::new(123);
        let mut b = TraceRng::new(123);
        for _ in 0..100 {
            assert_eq!(a.uniform(), b.uniform());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = TraceRng::new(1);
        let mut b = TraceRng::new(2);
        let same = (0..20).filter(|_| a.uniform() == b.uniform()).count();
        assert!(same < 3);
    }

    #[test]
    fn substreams_are_independent_of_consumption() {
        let mut parent = TraceRng::new(99);
        let child_before: Vec<f64> = {
            let mut c = parent.substream("dallas");
            (0..5).map(|_| c.uniform()).collect()
        };
        // Consume the parent, re-derive: identical child stream.
        for _ in 0..50 {
            parent.uniform();
        }
        let child_after: Vec<f64> = {
            let mut c = parent.substream("dallas");
            (0..5).map(|_| c.uniform()).collect()
        };
        assert_eq!(child_before, child_after);
    }

    #[test]
    fn substream_labels_distinguish() {
        let parent = TraceRng::new(99);
        let mut a = parent.substream("price");
        let mut b = parent.substream("workload");
        assert_ne!(a.uniform(), b.uniform());
    }

    #[test]
    fn normal_moments_are_plausible() {
        let mut rng = TraceRng::new(7);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.standard_normal()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "variance {var}");
    }

    #[test]
    fn uniform_in_respects_bounds() {
        let mut rng = TraceRng::new(5);
        for _ in 0..1000 {
            let v = rng.uniform_in(2.0, 3.0);
            assert!((2.0..3.0).contains(&v));
        }
    }

    #[test]
    fn bernoulli_extremes() {
        let mut rng = TraceRng::new(5);
        assert!(!rng.bernoulli(0.0));
        assert!(rng.bernoulli(1.0));
    }

    #[test]
    fn lognormal_is_positive() {
        let mut rng = TraceRng::new(11);
        for _ in 0..100 {
            assert!(rng.lognormal(0.0, 1.0) > 0.0);
        }
    }
}
