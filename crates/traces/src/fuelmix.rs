//! Electricity fuel mix and carbon-rate computation.
//!
//! The paper estimates the hourly carbon emission rate `C_j` of each region
//! from the RTO-reported generation fuel mix via Eq. (1):
//! `C_j = Σ_k e_kj·c_k / Σ_k e_kj`, with per-fuel emission factors from its
//! Table III. This module reproduces those factors exactly and synthesizes
//! plausible regional mixes with the documented diurnal pattern (wind at
//! night, gas following load), since the 2012 RTO data is unavailable.

use crate::series::hour_of_day;
use crate::TraceRng;

/// The fuel types of the paper's Table III.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FuelType {
    /// Nuclear fission plants.
    Nuclear,
    /// Coal-fired plants.
    Coal,
    /// Natural-gas plants.
    Gas,
    /// Oil-fired plants.
    Oil,
    /// Hydroelectric plants.
    Hydro,
    /// Wind turbines.
    Wind,
}

impl FuelType {
    /// All fuel types in Table III order.
    pub const ALL: [FuelType; 6] = [
        FuelType::Nuclear,
        FuelType::Coal,
        FuelType::Gas,
        FuelType::Oil,
        FuelType::Hydro,
        FuelType::Wind,
    ];

    /// CO₂ emission factor in g/kWh (paper Table III).
    #[must_use]
    pub fn carbon_g_per_kwh(self) -> f64 {
        match self {
            FuelType::Nuclear => 15.0,
            FuelType::Coal => 968.0,
            FuelType::Gas => 440.0,
            FuelType::Oil => 890.0,
            FuelType::Hydro => 13.5,
            FuelType::Wind => 22.5,
        }
    }
}

/// One hour's generation mix: nonnegative generation per fuel type (units
/// are arbitrary since Eq. (1) normalizes by the total).
#[derive(Debug, Clone, PartialEq)]
pub struct FuelMixSample {
    /// Generation per fuel type, aligned with [`FuelType::ALL`].
    pub generation: [f64; 6],
}

impl FuelMixSample {
    /// Carbon emission rate of this mix in g/kWh (paper Eq. (1)).
    ///
    /// # Panics
    ///
    /// Panics if the total generation is not positive.
    #[must_use]
    pub fn carbon_rate(&self) -> f64 {
        let total: f64 = self.generation.iter().sum();
        assert!(total > 0.0, "fuel mix has no generation");
        FuelType::ALL
            .iter()
            .zip(&self.generation)
            .map(|(f, e)| e * f.carbon_g_per_kwh())
            .sum::<f64>()
            / total
    }
}

/// Per-site generator of hourly fuel mixes.
///
/// Base shares are modulated diurnally: wind output follows a nocturnal
/// pattern, and gas (the marginal "load-following" fuel in most markets)
/// swells during the daytime peak; baseload nuclear/coal/hydro are steady.
/// Small lognormal noise makes consecutive hours realistic without letting
/// any share go negative.
///
/// # Example
///
/// ```
/// use ufc_traces::{fuelmix::FuelMixModel, TraceRng};
///
/// let rates = FuelMixModel::calgary().carbon_rate_series(168, &mut TraceRng::new(1));
/// // Coal-heavy Alberta: dirtier than 500 g/kWh on average.
/// let avg = rates.iter().sum::<f64>() / rates.len() as f64;
/// assert!(avg > 500.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FuelMixModel {
    /// Site label.
    pub name: String,
    /// Base share per fuel type (aligned with [`FuelType::ALL`]); needs not
    /// sum to one, Eq. (1) normalizes.
    pub base_shares: [f64; 6],
    /// Fraction of the wind share that swings with the nocturnal pattern.
    pub wind_diurnal: f64,
    /// Fraction of the gas share that swings with the daytime load pattern.
    pub gas_diurnal: f64,
    /// Multiplicative noise σ applied independently per fuel and hour.
    pub noise_sigma: f64,
}

impl FuelMixModel {
    /// Calgary (AESO-like): coal-dominated, some wind.
    #[must_use]
    pub fn calgary() -> Self {
        FuelMixModel {
            name: "Calgary".into(),
            //           nuclear coal  gas   oil   hydro wind
            base_shares: [0.00, 0.55, 0.28, 0.02, 0.06, 0.09],
            wind_diurnal: 0.5,
            gas_diurnal: 0.3,
            noise_sigma: 0.08,
        }
    }

    /// San Jose (CAISO-like): gas + hydro + nuclear, cleaner.
    #[must_use]
    pub fn san_jose() -> Self {
        FuelMixModel {
            name: "San Jose".into(),
            base_shares: [0.15, 0.02, 0.52, 0.02, 0.17, 0.12],
            wind_diurnal: 0.5,
            gas_diurnal: 0.35,
            noise_sigma: 0.08,
        }
    }

    /// Dallas (ERCOT-like): gas + coal + wind.
    #[must_use]
    pub fn dallas() -> Self {
        FuelMixModel {
            name: "Dallas".into(),
            base_shares: [0.10, 0.28, 0.45, 0.02, 0.01, 0.14],
            wind_diurnal: 0.6,
            gas_diurnal: 0.35,
            noise_sigma: 0.08,
        }
    }

    /// Pittsburgh (PJM-like): coal + nuclear baseload.
    #[must_use]
    pub fn pittsburgh() -> Self {
        FuelMixModel {
            name: "Pittsburgh".into(),
            base_shares: [0.30, 0.45, 0.18, 0.02, 0.02, 0.03],
            wind_diurnal: 0.5,
            gas_diurnal: 0.3,
            noise_sigma: 0.07,
        }
    }

    /// The four paper sites in datacenter order
    /// (Calgary, San Jose, Dallas, Pittsburgh).
    #[must_use]
    pub fn paper_sites() -> Vec<FuelMixModel> {
        vec![
            FuelMixModel::calgary(),
            FuelMixModel::san_jose(),
            FuelMixModel::dallas(),
            FuelMixModel::pittsburgh(),
        ]
    }

    /// Generates `hours` fuel-mix samples.
    ///
    /// # Panics
    ///
    /// Panics if base shares are negative or all zero, or if diurnal
    /// fractions are outside `[0, 1]`.
    #[must_use]
    pub fn generate(&self, hours: usize, rng: &mut TraceRng) -> Vec<FuelMixSample> {
        assert!(
            self.base_shares.iter().all(|&s| s >= 0.0),
            "negative base share"
        );
        assert!(
            self.base_shares.iter().sum::<f64>() > 0.0,
            "fuel mix has no generation"
        );
        assert!(
            (0.0..=1.0).contains(&self.wind_diurnal) && (0.0..=1.0).contains(&self.gas_diurnal),
            "diurnal fractions must be in [0, 1]"
        );
        assert!(self.noise_sigma >= 0.0, "negative noise sigma");

        (0..hours)
            .map(|t| {
                let h = hour_of_day(t) as f64;
                // Wind peaks ~3 am, load (gas) peaks ~4 pm.
                let night = 0.5 * (1.0 + ((h - 3.0) / 24.0 * std::f64::consts::TAU).cos());
                let day = 0.5 * (1.0 + ((h - 16.0) / 24.0 * std::f64::consts::TAU).cos());
                let mut gen = [0.0f64; 6];
                for (k, (&base, slot)) in self.base_shares.iter().zip(gen.iter_mut()).enumerate() {
                    let modulated = match FuelType::ALL[k] {
                        FuelType::Wind => {
                            base * (1.0 - self.wind_diurnal + 2.0 * self.wind_diurnal * night)
                        }
                        FuelType::Gas => {
                            base * (1.0 - self.gas_diurnal + 2.0 * self.gas_diurnal * day)
                        }
                        _ => base,
                    };
                    let noise = rng.lognormal(0.0, self.noise_sigma);
                    *slot = modulated * noise;
                }
                FuelMixSample { generation: gen }
            })
            .collect()
    }

    /// Convenience: generates the hourly carbon-rate series (g/kWh) directly.
    #[must_use]
    pub fn carbon_rate_series(&self, hours: usize, rng: &mut TraceRng) -> Vec<f64> {
        self.generate(hours, rng)
            .iter()
            .map(FuelMixSample::carbon_rate)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::series;

    #[test]
    fn table_iii_factors_exact() {
        assert_eq!(FuelType::Nuclear.carbon_g_per_kwh(), 15.0);
        assert_eq!(FuelType::Coal.carbon_g_per_kwh(), 968.0);
        assert_eq!(FuelType::Gas.carbon_g_per_kwh(), 440.0);
        assert_eq!(FuelType::Oil.carbon_g_per_kwh(), 890.0);
        assert_eq!(FuelType::Hydro.carbon_g_per_kwh(), 13.5);
        assert_eq!(FuelType::Wind.carbon_g_per_kwh(), 22.5);
    }

    #[test]
    fn eq1_weighted_average() {
        // 50/50 coal+gas ⇒ (968 + 440)/2 = 704 g/kWh.
        let s = FuelMixSample {
            generation: [0.0, 1.0, 1.0, 0.0, 0.0, 0.0],
        };
        assert!((s.carbon_rate() - 704.0).abs() < 1e-12);
        // Pure wind ⇒ 22.5.
        let w = FuelMixSample {
            generation: [0.0, 0.0, 0.0, 0.0, 0.0, 2.0],
        };
        assert!((w.carbon_rate() - 22.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "no generation")]
    fn empty_mix_panics() {
        let _ = FuelMixSample {
            generation: [0.0; 6],
        }
        .carbon_rate();
    }

    #[test]
    fn regional_carbon_ordering() {
        let rng = TraceRng::new(55);
        let cal =
            series::mean(&FuelMixModel::calgary().carbon_rate_series(168, &mut rng.substream("c")));
        let sj = series::mean(
            &FuelMixModel::san_jose().carbon_rate_series(168, &mut rng.substream("s")),
        );
        let dal =
            series::mean(&FuelMixModel::dallas().carbon_rate_series(168, &mut rng.substream("d")));
        let pit = series::mean(
            &FuelMixModel::pittsburgh().carbon_rate_series(168, &mut rng.substream("p")),
        );
        // Coal-heavy Calgary dirtiest; hydro/nuclear-rich San Jose cleanest.
        assert!(cal > pit && cal > dal && cal > sj, "cal={cal}");
        assert!(sj < dal && sj < pit, "sj={sj}");
        // All in the plausible 200–800 g/kWh band.
        for v in [cal, sj, dal, pit] {
            assert!((200.0..800.0).contains(&v), "carbon rate {v}");
        }
    }

    #[test]
    fn rates_show_diurnal_variation() {
        let m = FuelMixModel {
            noise_sigma: 0.0,
            ..FuelMixModel::dallas()
        };
        let rates = m.carbon_rate_series(24, &mut TraceRng::new(1));
        let spread = series::max(&rates) - series::min(&rates);
        assert!(spread > 10.0, "no diurnal variation: {spread}");
    }

    #[test]
    fn generation_is_deterministic_and_positive() {
        let a = FuelMixModel::dallas().generate(50, &mut TraceRng::new(3));
        let b = FuelMixModel::dallas().generate(50, &mut TraceRng::new(3));
        assert_eq!(a, b);
        for s in &a {
            assert!(s.generation.iter().all(|&g| g >= 0.0));
            assert!(s.generation.iter().sum::<f64>() > 0.0);
        }
    }
}
