//! Synthetic trace substrate for the UFC reproduction.
//!
//! The paper drives its evaluation with four proprietary/unavailable data
//! sets: a one-week hourly HP interactive-workload trace, Sep 10–16 2012
//! locational marginal prices (LMPs) from four RTO/ISO markets, the hourly
//! electricity fuel mix of those regions, and a Facebook datacenter
//! power-demand profile. Per the reproduction's substitution policy
//! (DESIGN.md §4) this crate generates **calibrated synthetic equivalents**
//! that preserve the statistical signatures the optimization actually
//! exploits — diurnal/weekly seasonality, burstiness, spatial price spread,
//! price spikes, and fuel-mix-driven carbon-rate diversity:
//!
//! * [`workload`] — HP-like interactive workload (diurnal + AR(1) noise +
//!   bursts) and its normal-distribution split across front-ends,
//! * [`price`] — per-site LMP models with presets for the paper's four
//!   locations,
//! * [`fuelmix`] — per-site generation mixes and the paper's Eq. (1) carbon
//!   rate with the Table III emission factors,
//! * [`facebook`] — the MW-level demand profile behind Table I / Fig. 1,
//! * [`forecast`] — seasonal-naïve and Holt–Winters predictors (the paper's
//!   §II-A predictability assumption, made testable),
//! * [`series`] — small time-series helpers (means, scaling, peaks),
//! * [`csv`] / [`loader`] — plain CSV export and import (plug in real RTO
//!   dumps when available),
//! * [`TraceRng`] — deterministic, stream-split random source.
//!
//! All generators are deterministic given a seed; the experiment harness
//! fixes seeds so that EXPERIMENTS.md numbers are reproducible bit-for-bit.
//!
//! # Example
//!
//! ```
//! use ufc_traces::{workload::HpLikeWorkload, TraceRng};
//!
//! let mut rng = TraceRng::new(42);
//! let trace = HpLikeWorkload::default().generate(168, &mut rng);
//! assert_eq!(trace.len(), 168);
//! // Normalized utilization stays within (0, 1].
//! assert!(trace.iter().all(|&u| u > 0.0 && u <= 1.0));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chacha;
pub mod csv;
pub mod facebook;
pub mod forecast;
pub mod fuelmix;
pub mod loader;
pub mod price;
mod rng;
pub mod series;
pub mod workload;

pub use rng::TraceRng;

/// Hours in the one-week horizon used throughout the paper's evaluation.
pub const HOURS_PER_WEEK: usize = 168;
