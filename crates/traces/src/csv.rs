//! Minimal CSV export for traces and experiment outputs.
//!
//! The experiment harness dumps every regenerated table/figure as CSV so the
//! series can be plotted externally; a handwritten writer keeps the
//! dependency set to the pre-approved crates.

use std::fmt::Write as _;

/// An in-memory CSV document with a fixed header.
///
/// # Example
///
/// ```
/// use ufc_traces::csv::Csv;
///
/// let mut csv = Csv::new(&["hour", "price"]);
/// csv.push_row(&[0.0, 31.25]);
/// let s = csv.to_string();
/// assert!(s.starts_with("hour,price\n0,31.25\n"));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Csv {
    header: Vec<String>,
    rows: Vec<Vec<f64>>,
}

impl Csv {
    /// Creates an empty document with the given column names.
    ///
    /// # Panics
    ///
    /// Panics if `header` is empty or contains commas/newlines.
    #[must_use]
    pub fn new(header: &[&str]) -> Self {
        assert!(!header.is_empty(), "CSV needs at least one column");
        for h in header {
            assert!(
                !h.contains(',') && !h.contains('\n'),
                "column name {h:?} contains a CSV delimiter"
            );
        }
        Csv {
            header: header.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a data row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn push_row(&mut self, row: &[f64]) {
        assert_eq!(
            row.len(),
            self.header.len(),
            "row width {} != header width {}",
            row.len(),
            self.header.len()
        );
        self.rows.push(row.to_vec());
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when no data rows have been added.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl std::fmt::Display for Csv {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "{}", self.header.join(","))?;
        let mut line = String::new();
        for row in &self.rows {
            line.clear();
            for (i, v) in row.iter().enumerate() {
                if i > 0 {
                    line.push(',');
                }
                // Integral values print without a trailing ".0" for
                // compactness; everything else uses shortest-roundtrip.
                if v.fract() == 0.0 && v.abs() < 1e15 {
                    let _ = write!(line, "{}", *v as i64);
                } else {
                    let _ = write!(line, "{v}");
                }
            }
            writeln!(f, "{line}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_header_and_rows() {
        let mut csv = Csv::new(&["a", "b"]);
        csv.push_row(&[1.0, 2.5]);
        csv.push_row(&[3.0, -0.125]);
        assert_eq!(csv.to_string(), "a,b\n1,2.5\n3,-0.125\n");
        assert_eq!(csv.len(), 2);
        assert!(!csv.is_empty());
    }

    #[test]
    fn empty_document_is_just_header() {
        let csv = Csv::new(&["x"]);
        assert_eq!(csv.to_string(), "x\n");
        assert!(csv.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn rejects_ragged_rows() {
        let mut csv = Csv::new(&["a", "b"]);
        csv.push_row(&[1.0]);
    }

    #[test]
    #[should_panic(expected = "delimiter")]
    fn rejects_bad_header() {
        let _ = Csv::new(&["a,b"]);
    }
}
