//! Geography substrate for the UFC reproduction.
//!
//! The paper's workload-performance term is the wide-area propagation
//! latency between front-end proxy servers and datacenters, approximated as
//! `L_ij = 0.02 ms/km × d_ij` where `d_ij` is the geographical distance
//! (paper §II-B3, citing Qureshi). This crate provides:
//!
//! * [`GeoPoint`] — WGS-84 coordinates with [haversine distance](GeoPoint::distance_km),
//! * [`Site`] — a named location,
//! * [`LatencyModel`] — the distance→latency conversion,
//! * [`sites`] — the simulation's site catalog: the paper's four datacenter
//!   locations (Calgary, San Jose, Dallas, Pittsburgh) and ten front-end
//!   cities scattered across the continental United States,
//! * [`latency_matrix`] — the `M × N` matrix `L_ij` consumed by the model.
//!
//! # Example
//!
//! ```
//! use ufc_geo::{sites, LatencyModel, latency_matrix};
//!
//! let dcs = sites::datacenter_sites();
//! let fes = sites::frontend_sites();
//! let l = latency_matrix(&fes, &dcs, LatencyModel::default());
//! // New York (front-end 8) is much closer to Pittsburgh (dc 3) than to San Jose (dc 1).
//! assert!(l[8][3] < l[8][1]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod latency;
mod location;
pub mod sites;

pub use latency::LatencyModel;
pub use location::GeoPoint;
pub use sites::Site;

/// Builds the `M × N` propagation-latency matrix (in **seconds**) between
/// front-end sites and datacenter sites.
///
/// Row `i` corresponds to `frontends[i]`, column `j` to `datacenters[j]`,
/// matching the paper's `L_ij` notation.
#[must_use]
pub fn latency_matrix(
    frontends: &[Site],
    datacenters: &[Site],
    model: LatencyModel,
) -> Vec<Vec<f64>> {
    frontends
        .iter()
        .map(|fe| {
            datacenters
                .iter()
                .map(|dc| model.latency_seconds(fe.point.distance_km(dc.point)))
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_matrix_shape_and_range() {
        let dcs = sites::datacenter_sites();
        let fes = sites::frontend_sites();
        let l = latency_matrix(&fes, &dcs, LatencyModel::default());
        assert_eq!(l.len(), fes.len());
        assert!(l.iter().all(|row| row.len() == dcs.len()));
        // All latencies positive and below 100 ms for the continental US.
        for row in &l {
            for &v in row {
                assert!(v > 0.0 && v < 0.1, "implausible latency {v}");
            }
        }
    }

    #[test]
    fn latency_matrix_geography_sanity() {
        let dcs = sites::datacenter_sites();
        let fes = sites::frontend_sites();
        let l = latency_matrix(&fes, &dcs, LatencyModel::default());
        // Seattle (0) is closest to Calgary (0); Miami (7) is closest to Dallas (2).
        let seattle = &l[0];
        assert!(seattle[0] < seattle[1] && seattle[0] < seattle[2] && seattle[0] < seattle[3]);
        let miami = &l[7];
        assert!(miami[2] < miami[0] && miami[2] < miami[1]);
    }
}
