/// A point on the Earth's surface in WGS-84 degrees.
///
/// # Example
///
/// ```
/// use ufc_geo::GeoPoint;
///
/// let dallas = GeoPoint::new(32.7767, -96.7970);
/// let san_jose = GeoPoint::new(37.3382, -121.8863);
/// let d = dallas.distance_km(san_jose);
/// assert!((d - 2300.0).abs() < 100.0); // ≈ 2.3 Mm
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GeoPoint {
    /// Latitude in degrees, positive north.
    pub lat_deg: f64,
    /// Longitude in degrees, positive east.
    pub lon_deg: f64,
}

/// Mean Earth radius in kilometres (IUGG).
const EARTH_RADIUS_KM: f64 = 6371.0088;

impl GeoPoint {
    /// Creates a point after validating the coordinate ranges.
    ///
    /// # Panics
    ///
    /// Panics if `lat_deg ∉ [−90, 90]` or `lon_deg ∉ [−180, 180]`.
    #[must_use]
    pub fn new(lat_deg: f64, lon_deg: f64) -> Self {
        assert!(
            (-90.0..=90.0).contains(&lat_deg),
            "latitude {lat_deg} out of range"
        );
        assert!(
            (-180.0..=180.0).contains(&lon_deg),
            "longitude {lon_deg} out of range"
        );
        GeoPoint { lat_deg, lon_deg }
    }

    /// Great-circle distance to `other` in kilometres (haversine formula).
    #[must_use]
    pub fn distance_km(self, other: GeoPoint) -> f64 {
        let lat1 = self.lat_deg.to_radians();
        let lat2 = other.lat_deg.to_radians();
        let dlat = (other.lat_deg - self.lat_deg).to_radians();
        let dlon = (other.lon_deg - self.lon_deg).to_radians();
        let a = (dlat / 2.0).sin().powi(2) + lat1.cos() * lat2.cos() * (dlon / 2.0).sin().powi(2);
        2.0 * EARTH_RADIUS_KM * a.sqrt().asin()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_to_self_is_zero() {
        let p = GeoPoint::new(45.0, -100.0);
        assert_eq!(p.distance_km(p), 0.0);
    }

    #[test]
    fn distance_is_symmetric() {
        let a = GeoPoint::new(51.0447, -114.0719); // Calgary
        let b = GeoPoint::new(25.7617, -80.1918); // Miami
        assert!((a.distance_km(b) - b.distance_km(a)).abs() < 1e-9);
    }

    #[test]
    fn known_distance_ny_la() {
        // New York ↔ Los Angeles great-circle distance ≈ 3936 km.
        let ny = GeoPoint::new(40.7128, -74.0060);
        let la = GeoPoint::new(34.0522, -118.2437);
        let d = ny.distance_km(la);
        assert!((d - 3936.0).abs() < 30.0, "got {d}");
    }

    #[test]
    fn quarter_meridian() {
        // Pole to equator along a meridian is ≈ 10 008 km for a sphere of
        // radius 6371.0088 km.
        let pole = GeoPoint::new(90.0, 0.0);
        let equator = GeoPoint::new(0.0, 0.0);
        let d = pole.distance_km(equator);
        assert!((d - std::f64::consts::FRAC_PI_2 * EARTH_RADIUS_KM).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "latitude")]
    fn rejects_bad_latitude() {
        let _ = GeoPoint::new(91.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "longitude")]
    fn rejects_bad_longitude() {
        let _ = GeoPoint::new(0.0, 200.0);
    }

    #[test]
    fn antimeridian_crossing_is_short() {
        // 179.9°E to 179.9°W at the equator is ~22 km, not ~40 000 km.
        let a = GeoPoint::new(0.0, 179.9);
        let b = GeoPoint::new(0.0, -179.9);
        assert!(a.distance_km(b) < 30.0);
    }
}
