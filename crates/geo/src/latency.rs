/// Distance→propagation-latency conversion.
///
/// The paper (§II-B3) adopts the empirical approximation
/// `L_ij = 0.02 ms/km × d_ij`: each kilometre of great-circle distance costs
/// about 20 µs of wide-area propagation delay. The constant is configurable
/// for sensitivity studies.
///
/// # Example
///
/// ```
/// use ufc_geo::LatencyModel;
///
/// let m = LatencyModel::default();
/// // 1000 km ⇒ 20 ms.
/// assert!((m.latency_seconds(1000.0) - 0.020).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyModel {
    ms_per_km: f64,
}

impl Default for LatencyModel {
    /// The paper's constant: 0.02 ms per kilometre.
    fn default() -> Self {
        LatencyModel { ms_per_km: 0.02 }
    }
}

impl LatencyModel {
    /// Creates a model with a custom per-kilometre cost.
    ///
    /// # Panics
    ///
    /// Panics if `ms_per_km` is not a finite positive number.
    #[must_use]
    pub fn new(ms_per_km: f64) -> Self {
        assert!(
            ms_per_km.is_finite() && ms_per_km > 0.0,
            "latency slope must be finite and positive, got {ms_per_km}"
        );
        LatencyModel { ms_per_km }
    }

    /// Milliseconds of latency per kilometre of distance.
    #[must_use]
    pub fn ms_per_km(&self) -> f64 {
        self.ms_per_km
    }

    /// Propagation latency in **seconds** for a distance in kilometres.
    ///
    /// # Panics
    ///
    /// Panics if `distance_km` is negative or not finite (a NaN distance
    /// would otherwise poison the latency matrix silently).
    #[must_use]
    pub fn latency_seconds(&self, distance_km: f64) -> f64 {
        assert!(
            distance_km.is_finite() && distance_km >= 0.0,
            "distance must be finite and nonnegative, got {distance_km}"
        );
        self.ms_per_km * distance_km * 1e-3
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_constant() {
        assert_eq!(LatencyModel::default().ms_per_km(), 0.02);
    }

    #[test]
    fn latency_is_linear() {
        let m = LatencyModel::default();
        assert_eq!(m.latency_seconds(0.0), 0.0);
        assert!((m.latency_seconds(500.0) * 2.0 - m.latency_seconds(1000.0)).abs() < 1e-15);
    }

    #[test]
    fn custom_slope() {
        let m = LatencyModel::new(0.05);
        assert!((m.latency_seconds(100.0) - 0.005).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_nonpositive_slope() {
        let _ = LatencyModel::new(0.0);
    }

    #[test]
    #[should_panic(expected = "nonnegative")]
    fn rejects_negative_distance() {
        let _ = LatencyModel::default().latency_seconds(-1.0);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn rejects_nan_distance() {
        let _ = LatencyModel::default().latency_seconds(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn rejects_non_finite_slope() {
        let _ = LatencyModel::new(f64::INFINITY);
    }
}
