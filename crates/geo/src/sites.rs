//! The simulation's site catalog.
//!
//! Datacenter locations follow the paper's §IV-A setup (Calgary, San Jose,
//! Dallas, Pittsburgh); the ten front-end proxy locations implement the
//! paper's "uniformly scattered across the continental United States" by
//! picking ten large metros with broad geographic coverage.

use crate::GeoPoint;

/// A named geographic site.
#[derive(Debug, Clone, PartialEq)]
pub struct Site {
    /// Human-readable name (city).
    pub name: String,
    /// Coordinates.
    pub point: GeoPoint,
}

impl Site {
    /// Creates a site.
    #[must_use]
    pub fn new(name: impl Into<String>, lat_deg: f64, lon_deg: f64) -> Self {
        Site {
            name: name.into(),
            point: GeoPoint::new(lat_deg, lon_deg),
        }
    }
}

/// Index of the Calgary datacenter in [`datacenter_sites`].
pub const DC_CALGARY: usize = 0;
/// Index of the San Jose datacenter in [`datacenter_sites`].
pub const DC_SAN_JOSE: usize = 1;
/// Index of the Dallas datacenter in [`datacenter_sites`].
pub const DC_DALLAS: usize = 2;
/// Index of the Pittsburgh datacenter in [`datacenter_sites`].
pub const DC_PITTSBURGH: usize = 3;

/// The paper's four datacenter locations, in the fixed order
/// Calgary, San Jose, Dallas, Pittsburgh.
#[must_use]
pub fn datacenter_sites() -> Vec<Site> {
    vec![
        Site::new("Calgary", 51.0447, -114.0719),
        Site::new("San Jose", 37.3382, -121.8863),
        Site::new("Dallas", 32.7767, -96.7970),
        Site::new("Pittsburgh", 40.4406, -79.9959),
    ]
}

/// Ten front-end proxy locations scattered across the continental US.
#[must_use]
pub fn frontend_sites() -> Vec<Site> {
    vec![
        Site::new("Seattle", 47.6062, -122.3321),
        Site::new("Los Angeles", 34.0522, -118.2437),
        Site::new("Phoenix", 33.4484, -112.0740),
        Site::new("Denver", 39.7392, -104.9903),
        Site::new("Houston", 29.7604, -95.3698),
        Site::new("Chicago", 41.8781, -87.6298),
        Site::new("Atlanta", 33.7490, -84.3880),
        Site::new("Miami", 25.7617, -80.1918),
        Site::new("New York", 40.7128, -74.0060),
        Site::new("Boston", 42.3601, -71.0589),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_sizes_match_paper() {
        assert_eq!(datacenter_sites().len(), 4);
        assert_eq!(frontend_sites().len(), 10);
    }

    #[test]
    fn datacenter_indices_are_consistent() {
        let dcs = datacenter_sites();
        assert_eq!(dcs[DC_CALGARY].name, "Calgary");
        assert_eq!(dcs[DC_SAN_JOSE].name, "San Jose");
        assert_eq!(dcs[DC_DALLAS].name, "Dallas");
        assert_eq!(dcs[DC_PITTSBURGH].name, "Pittsburgh");
    }

    #[test]
    fn all_sites_have_unique_names() {
        let mut names: Vec<String> = datacenter_sites()
            .into_iter()
            .chain(frontend_sites())
            .map(|s| s.name)
            .collect();
        let before = names.len();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), before);
    }

    #[test]
    fn frontends_span_the_continent() {
        let fes = frontend_sites();
        let lons: Vec<f64> = fes.iter().map(|s| s.point.lon_deg).collect();
        let spread = lons.iter().cloned().fold(f64::MIN, f64::max)
            - lons.iter().cloned().fold(f64::MAX, f64::min);
        assert!(spread > 40.0, "front-ends too clustered: {spread}°");
    }
}
