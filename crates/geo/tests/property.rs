//! Property-based tests for the geography substrate.

use proptest::prelude::*;
use ufc_geo::{latency_matrix, GeoPoint, LatencyModel, Site};

fn point() -> impl Strategy<Value = GeoPoint> {
    (-89.0f64..89.0, -179.0f64..179.0).prop_map(|(lat, lon)| GeoPoint::new(lat, lon))
}

proptest! {
    #[test]
    fn distance_is_a_metric(a in point(), b in point(), c in point()) {
        // Symmetry.
        prop_assert!((a.distance_km(b) - b.distance_km(a)).abs() < 1e-9);
        // Identity.
        prop_assert!(a.distance_km(a) < 1e-9);
        // Nonnegativity and the global bound (half the circumference).
        let d = a.distance_km(b);
        prop_assert!(d >= 0.0);
        prop_assert!(d <= 20_016.0, "distance {d} exceeds half circumference");
        // Triangle inequality (with numerical slack).
        prop_assert!(a.distance_km(c) <= a.distance_km(b) + b.distance_km(c) + 1e-6);
    }

    #[test]
    fn latency_is_monotone_in_distance(a in point(), b in point(), c in point()) {
        let m = LatencyModel::default();
        let (d1, d2) = (a.distance_km(b), a.distance_km(c));
        let (l1, l2) = (m.latency_seconds(d1), m.latency_seconds(d2));
        if d1 <= d2 {
            prop_assert!(l1 <= l2 + 1e-15);
        }
        // Exact proportionality.
        prop_assert!((l1 - 0.02e-3 * d1).abs() < 1e-12);
    }

    #[test]
    fn latency_matrix_matches_pointwise(
        fe in proptest::collection::vec(point(), 1..5),
        dc in proptest::collection::vec(point(), 1..4),
    ) {
        let fe_sites: Vec<Site> = fe
            .iter()
            .enumerate()
            .map(|(i, p)| Site::new(format!("fe{i}"), p.lat_deg, p.lon_deg))
            .collect();
        let dc_sites: Vec<Site> = dc
            .iter()
            .enumerate()
            .map(|(j, p)| Site::new(format!("dc{j}"), p.lat_deg, p.lon_deg))
            .collect();
        let m = LatencyModel::default();
        let l = latency_matrix(&fe_sites, &dc_sites, m);
        prop_assert_eq!(l.len(), fe_sites.len());
        for (i, row) in l.iter().enumerate() {
            prop_assert_eq!(row.len(), dc_sites.len());
            for (j, &v) in row.iter().enumerate() {
                let expected = m.latency_seconds(fe[i].distance_km(dc[j]));
                prop_assert!((v - expected).abs() < 1e-15);
            }
        }
    }
}
