//! Poisoned-data resilience: seeded link-level corruption against the
//! checksummed wire codec and the driver's divergence safeguards.
//!
//! The contract under test, per engine: with checksums on, corruption
//! costs bytes and retransmits but never changes the answer; with
//! checksums off, delivered poison surfaces as a *typed* error (or is
//! repaired by checkpoint rollback) — never a panic and never a silently
//! wrong UFC.

use proptest::prelude::*;
use ufc_core::{AdmgSettings, CoreError, Strategy};
use ufc_distsim::message::Message;
use ufc_distsim::{CorruptionConfig, CorruptionKind, DistributedAdmg, Runtime};
use ufc_model::{EmissionCostFn, UfcInstance};

/// Same 2×2 instance as `tests/fault_injection.rs`.
fn slack_instance() -> UfcInstance {
    UfcInstance::new(
        vec![1.0, 2.0],
        vec![4.0, 4.0],
        vec![0.24, 0.24],
        vec![0.12, 0.12],
        vec![0.48, 0.48],
        vec![30.0, 70.0],
        80.0,
        vec![0.5, 0.3],
        vec![vec![0.01, 0.02], vec![0.02, 0.01]],
        10.0,
        vec![
            EmissionCostFn::linear(25.0).expect("linear emission cost is valid"),
            EmissionCostFn::linear(25.0).expect("linear emission cost is valid"),
        ],
        1.0,
    )
    .expect("slack instance parameters are consistent")
}

#[test]
fn checksummed_corruption_converges_to_the_clean_answer() {
    let inst = slack_instance();
    let clean = DistributedAdmg::new(AdmgSettings::default())
        .run(&inst, Strategy::Hybrid, Runtime::Lockstep)
        .expect("clean run must succeed");
    let runner = DistributedAdmg::new(AdmgSettings::default().with_checksums(true));
    let cfg = CorruptionConfig::new(0.02, 7);
    for runtime in [Runtime::Lockstep, Runtime::Threaded] {
        let report = runner
            .run_corrupt(&inst, Strategy::Hybrid, runtime, cfg)
            .expect("verified links repair every corruption");
        assert!(report.converged, "{runtime:?} must converge");
        assert_eq!(report.iterations, clean.iterations);
        // Retransmission delivers the clean copy, so the iterate stream —
        // and the polished answer — are bit-identical to the clean run.
        assert_eq!(
            report.breakdown.ufc().to_bits(),
            clean.breakdown.ufc().to_bits(),
            "{runtime:?}: checksummed corruption must not move the answer"
        );
        assert_eq!(report.stats.data_messages, clean.stats.data_messages);
        assert!(
            report.stats.total_bytes > clean.stats.total_bytes,
            "checksum trailers and resends must cost bytes"
        );
        let integrity = report.integrity.expect("corrupt run reports integrity");
        assert!(integrity.corruptions_injected > 0, "rate 0.02 must strike");
        // A mangle can land bit-identically (e.g. a magnitude scale of a
        // 0.0 payload), which the checksum rightly lets through — so
        // detected may trail injected, but every detection retransmits.
        assert!(integrity.corruptions_detected <= integrity.corruptions_injected);
        assert_eq!(integrity.corruptions_delivered, 0);
        assert_eq!(
            integrity.checksum_retransmissions,
            integrity.corruptions_detected
        );
        assert!(integrity.checksum_retransmissions > 0);
        assert_eq!(integrity.divergence_trips, 0);
    }
}

#[test]
fn lockstep_and_threaded_agree_under_corruption() {
    let inst = slack_instance();
    let runner = DistributedAdmg::new(AdmgSettings::default().with_checksums(true));
    let cfg = CorruptionConfig::new(0.05, 11);
    let lockstep = runner
        .run_corrupt(&inst, Strategy::Hybrid, Runtime::Lockstep, cfg)
        .expect("lockstep corrupt run");
    let threaded = runner
        .run_corrupt(&inst, Strategy::Hybrid, Runtime::Threaded, cfg)
        .expect("threaded corrupt run");
    assert_eq!(lockstep.iterations, threaded.iterations);
    assert_eq!(lockstep.stats, threaded.stats);
    assert_eq!(lockstep.integrity, threaded.integrity);
    assert_eq!(
        lockstep.breakdown.ufc().to_bits(),
        threaded.breakdown.ufc().to_bits()
    );
}

#[test]
fn unverified_nan_corruption_is_a_typed_error_not_a_panic() {
    let inst = slack_instance();
    let runner = DistributedAdmg::new(AdmgSettings::default());
    let cfg = CorruptionConfig::new(0.05, 3).with_kind(CorruptionKind::NanSubstitution);
    for runtime in [Runtime::Lockstep, Runtime::Threaded] {
        let err = runner
            .run_corrupt(&inst, Strategy::Hybrid, runtime, cfg)
            .expect_err("a delivered NaN must fail the run");
        match err {
            CoreError::Divergence { node, context, .. } => {
                assert!(node.is_some(), "{runtime:?}: the receiver is named");
                assert!(
                    context.contains("non-finite"),
                    "{runtime:?}: context names the poison: {context}"
                );
            }
            other => panic!("{runtime:?}: expected Divergence, got {other}"),
        }
    }
}

#[test]
fn exhausted_retransmit_budget_is_a_typed_error() {
    let inst = slack_instance();
    let runner = DistributedAdmg::new(AdmgSettings::default().with_checksums(true));
    // Rate ~1 with a budget of 1: the second attempt also corrupts and the
    // ladder gives up with the link named.
    let cfg = CorruptionConfig::new(0.999, 5).with_max_retransmits(1);
    for runtime in [Runtime::Lockstep, Runtime::Threaded] {
        let err = runner
            .run_corrupt(&inst, Strategy::Hybrid, runtime, cfg)
            .expect_err("an unrepairable link must fail the run");
        match err {
            CoreError::CorruptPayload { node, .. } => {
                assert!(
                    node.contains('→'),
                    "{runtime:?}: the failing link is named: {node}"
                );
            }
            other => panic!("{runtime:?}: expected CorruptPayload, got {other}"),
        }
    }
}

#[test]
fn rate_zero_without_checksums_is_bit_identical_to_a_plain_run() {
    let inst = slack_instance();
    let runner = DistributedAdmg::new(AdmgSettings::default());
    let plain = runner
        .run(&inst, Strategy::Hybrid, Runtime::Lockstep)
        .expect("plain run");
    let corrupt = runner
        .run_corrupt(
            &inst,
            Strategy::Hybrid,
            Runtime::Lockstep,
            CorruptionConfig::new(0.0, 1),
        )
        .expect("rate-0 corrupt run");
    assert_eq!(plain.iterations, corrupt.iterations);
    assert_eq!(plain.stats, corrupt.stats);
    assert_eq!(
        plain.breakdown.ufc().to_bits(),
        corrupt.breakdown.ufc().to_bits()
    );
    assert_eq!(
        plain.estimated_wan_seconds.to_bits(),
        corrupt.estimated_wan_seconds.to_bits()
    );
    let integrity = corrupt
        .integrity
        .expect("the integrity machinery was armed, even at rate 0");
    assert!(integrity.is_zero());
    assert!(plain.integrity.is_none());
}

#[test]
fn rollback_repairs_a_poisoned_run_in_both_engines() {
    let inst = slack_instance();
    let settings = AdmgSettings::default()
        .with_divergence_gate(10.0, 1)
        .with_divergence_rollback(true);
    let runner = DistributedAdmg::new(settings);
    // Seeded so the first magnitude-scale strike lands after the first
    // checkpoint round: the gate trips once, the rollback restores the
    // last finite state, and the run still converges.
    let cfg = CorruptionConfig::new(0.002, 1).with_kind(CorruptionKind::MagnitudeScale);
    let lockstep = runner
        .run_corrupt(&inst, Strategy::Hybrid, Runtime::Lockstep, cfg)
        .expect("rollback must repair the lockstep run");
    assert!(lockstep.converged);
    let integrity = lockstep.integrity.expect("integrity report");
    assert_eq!(integrity.divergence_trips, 1);
    assert_eq!(integrity.rollbacks, 1);
    let fault = lockstep.fault.expect("checkpointing ran for rollback");
    assert!(fault.checkpoints_taken > 0);
    // A rolled-back run re-solves from an earlier iterate, so it lands on
    // the same answer as a clean run (within the stop tolerance), just
    // later.
    let clean = DistributedAdmg::new(AdmgSettings::default())
        .run(&inst, Strategy::Hybrid, Runtime::Lockstep)
        .expect("clean run");
    assert!(
        (lockstep.breakdown.ufc() - clean.breakdown.ufc()).abs()
            <= 1e-4 * clean.breakdown.ufc().abs(),
        "rolled-back {} vs clean {}",
        lockstep.breakdown.ufc(),
        clean.breakdown.ufc()
    );
    // Both engines make the identical trip/rollback decisions.
    let threaded = runner
        .run_corrupt(&inst, Strategy::Hybrid, Runtime::Threaded, cfg)
        .expect("rollback must repair the threaded run");
    assert_eq!(lockstep.iterations, threaded.iterations);
    assert_eq!(lockstep.integrity, threaded.integrity);
    assert_eq!(
        lockstep.breakdown.ufc().to_bits(),
        threaded.breakdown.ufc().to_bits()
    );
}

proptest! {
    /// Any single-byte tamper anywhere in an encoded frame must fail the
    /// checksum with a typed error — never panic, never decode quietly.
    #[test]
    fn single_byte_tamper_never_decodes(
        value in -1e9f64..1e9,
        frontend in 0usize..64,
        datacenter in 0usize..64,
        byte in 0usize..1024,
        mask in 1u8..=255,
    ) {
        for msg in [
            Message::LambdaTilde { frontend, datacenter, value },
            Message::ATilde { frontend, datacenter, value },
        ] {
            let mut frame = msg.encode();
            let idx = byte % frame.len();
            frame[idx] ^= mask;
            let decoded = Message::decode(&frame);
            prop_assert!(
                decoded.is_err(),
                "tampering byte {idx} with {mask:#x} must not decode"
            );
        }
    }
}
