//! The central claim of the distributed runtime: executing the protocol as
//! message-passing nodes produces the same iterates as the in-memory
//! `AdmgSolver`, at the paper's full scale (M = 10, N = 4).

use ufc_core::{AdmgSettings, AdmgSolver, Strategy};
use ufc_distsim::{DistributedAdmg, Runtime};
use ufc_model::scenario::ScenarioBuilder;

#[test]
fn lockstep_equals_in_memory_solver_at_paper_scale() {
    let scenario = ScenarioBuilder::paper_default()
        .hours(3)
        .build()
        .expect("paper-default scenario must build");
    let settings = AdmgSettings::default();
    let solver = AdmgSolver::new(settings);
    let dist = DistributedAdmg::new(settings);
    for (t, inst) in scenario.instances.iter().enumerate() {
        let mem = solver
            .solve(inst, Strategy::Hybrid)
            .expect("in-memory solve must succeed on a paper-default instance");
        let net = dist
            .run(inst, Strategy::Hybrid, Runtime::Lockstep)
            .expect("lockstep run must succeed on a paper-default instance");
        assert_eq!(
            mem.iterations, net.iterations,
            "hour {t}: iteration counts differ"
        );
        assert!(
            (mem.breakdown.ufc() - net.breakdown.ufc()).abs()
                < 1e-6 * mem.breakdown.ufc().abs().max(1.0),
            "hour {t}: UFC differs: {} vs {}",
            mem.breakdown.ufc(),
            net.breakdown.ufc()
        );
        // Full operating points agree component-wise.
        for (rm, rn) in mem.point.lambda.iter().zip(&net.point.lambda) {
            for (a, b) in rm.iter().zip(rn) {
                assert!((a - b).abs() < 1e-8, "hour {t}: lambda differs");
            }
        }
        for (a, b) in mem.point.mu.iter().zip(&net.point.mu) {
            assert!((a - b).abs() < 1e-8, "hour {t}: mu differs");
        }
    }
}

#[test]
fn threaded_equals_lockstep_at_paper_scale() {
    let scenario = ScenarioBuilder::paper_default()
        .hours(2)
        .build()
        .expect("paper-default scenario must build");
    let dist = DistributedAdmg::new(AdmgSettings::default());
    for inst in &scenario.instances {
        let lock = dist
            .run(inst, Strategy::Hybrid, Runtime::Lockstep)
            .expect("lockstep run must succeed on a paper-default instance");
        let thr = dist
            .run(inst, Strategy::Hybrid, Runtime::Threaded)
            .expect("threaded run must succeed on a paper-default instance");
        assert_eq!(lock.iterations, thr.iterations);
        assert_eq!(lock.stats, thr.stats);
        assert!((lock.breakdown.ufc() - thr.breakdown.ufc()).abs() < 1e-9);
    }
}

#[test]
fn message_complexity_is_linear_in_pairs() {
    let scenario = ScenarioBuilder::paper_default()
        .hours(1)
        .build()
        .expect("paper-default scenario must build");
    let inst = &scenario.instances[0];
    let report = DistributedAdmg::new(AdmgSettings::default())
        .run(inst, Strategy::Hybrid, Runtime::Lockstep)
        .expect("lockstep run must succeed on a paper-default instance");
    let m = inst.m_frontends();
    let n = inst.n_datacenters();
    assert_eq!(report.stats.data_messages, 2 * m * n * report.iterations);
    assert_eq!(
        report.stats.control_messages,
        2 * (m + n) * report.iterations
    );
    // WAN estimate: 4 latency-bound phases per iteration.
    let l_max = inst
        .latency_s
        .iter()
        .flatten()
        .cloned()
        .fold(0.0f64, f64::max);
    assert!((report.estimated_wan_seconds - report.iterations as f64 * 4.0 * l_max).abs() < 1e-12);
}
