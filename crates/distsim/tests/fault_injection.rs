//! Fault injection: the protocol's results are loss-invariant; only its
//! cost grows with the channel loss rate.

use ufc_core::{AdmgSettings, Strategy};
use ufc_distsim::loss::LossConfig;
use ufc_distsim::{DistributedAdmg, Runtime};
use ufc_model::scenario::ScenarioBuilder;

#[test]
fn lossy_run_is_result_identical_to_lossless() {
    let scenario = ScenarioBuilder::paper_default().seed(3).hours(1).build().unwrap();
    let inst = &scenario.instances[0];
    let runner = DistributedAdmg::new(AdmgSettings::default());

    let clean = runner.run(inst, Strategy::Hybrid, Runtime::Lockstep).unwrap();
    let lossy = runner
        .run_lossy(inst, Strategy::Hybrid, LossConfig::new(0.2, 99))
        .unwrap();

    assert_eq!(clean.iterations, lossy.iterations);
    assert!((clean.breakdown.ufc() - lossy.breakdown.ufc()).abs() < 1e-12);
    assert_eq!(clean.stats.data_messages, lossy.stats.data_messages);
    // ...but the lossy run paid for it.
    assert!(lossy.retransmissions > 0, "20% loss must cause retransmissions");
    assert!(lossy.stats.total_bytes > clean.stats.total_bytes);
    assert!(lossy.estimated_wan_seconds > clean.estimated_wan_seconds);
}

#[test]
fn cost_grows_with_loss_rate() {
    let scenario = ScenarioBuilder::paper_default().seed(3).hours(1).build().unwrap();
    let inst = &scenario.instances[0];
    let runner = DistributedAdmg::new(AdmgSettings::default());

    let mild = runner
        .run_lossy(inst, Strategy::Hybrid, LossConfig::new(0.05, 7))
        .unwrap();
    let harsh = runner
        .run_lossy(inst, Strategy::Hybrid, LossConfig::new(0.4, 7))
        .unwrap();
    assert!(harsh.retransmissions > mild.retransmissions);
    assert!(harsh.estimated_wan_seconds > mild.estimated_wan_seconds);
    // Sanity: expected retransmissions ≈ messages × p/(1−p).
    let msgs = mild.stats.data_messages as f64;
    let expected = msgs * 0.05 / 0.95;
    let got = mild.retransmissions as f64;
    assert!(
        (got - expected).abs() < 0.5 * expected + 20.0,
        "retransmissions {got} far from expectation {expected}"
    );
}

#[test]
fn zero_loss_is_free() {
    let scenario = ScenarioBuilder::paper_default().seed(3).hours(1).build().unwrap();
    let inst = &scenario.instances[0];
    let runner = DistributedAdmg::new(AdmgSettings::default());
    let clean = runner.run(inst, Strategy::Hybrid, Runtime::Lockstep).unwrap();
    let lossy0 = runner
        .run_lossy(inst, Strategy::Hybrid, LossConfig::new(0.0, 1))
        .unwrap();
    assert_eq!(lossy0.retransmissions, 0);
    assert_eq!(lossy0.stats.total_bytes, clean.stats.total_bytes);
    assert!((lossy0.estimated_wan_seconds - clean.estimated_wan_seconds).abs() < 1e-12);
}
