//! Fault injection: the protocol's results are loss-invariant; only its
//! cost grows with the channel loss rate. Crash-stop faults with
//! checkpoint-restart recovery reproduce the clean iterates exactly;
//! permanent crashes degrade to the surviving datacenters.

use std::time::Duration;

use proptest::prelude::*;
use ufc_core::{AdmgSettings, Strategy};
use ufc_distsim::fault::NodeId;
use ufc_distsim::loss::LossConfig;
use ufc_distsim::{DatacenterSnapshot, DistributedAdmg, FaultPlan, FrontendSnapshot, Runtime};
use ufc_model::scenario::ScenarioBuilder;
use ufc_model::{EmissionCostFn, UfcInstance};

/// A 2×2 instance with enough datacenter slack that either datacenter can
/// absorb all arrivals alone — degraded single-datacenter operation stays
/// feasible.
fn slack_instance() -> UfcInstance {
    UfcInstance::new(
        vec![1.0, 2.0],
        vec![4.0, 4.0],
        vec![0.24, 0.24],
        vec![0.12, 0.12],
        vec![0.48, 0.48],
        vec![30.0, 70.0],
        80.0,
        vec![0.5, 0.3],
        vec![vec![0.01, 0.02], vec![0.02, 0.01]],
        10.0,
        vec![
            EmissionCostFn::linear(25.0).expect("linear emission cost is valid"),
            EmissionCostFn::linear(25.0).expect("linear emission cost is valid"),
        ],
        1.0,
    )
    .expect("slack instance parameters are consistent")
}

#[test]
fn crash_and_recover_matches_clean_run() {
    let inst = slack_instance();
    let runner = DistributedAdmg::new(AdmgSettings::default());
    let clean = runner
        .run(&inst, Strategy::Hybrid, Runtime::Lockstep)
        .expect("clean lockstep run must succeed");

    // One datacenter crash that recovers from checkpoint, plus a straggler.
    let plan = FaultPlan::new()
        .crash_and_recover(NodeId::Datacenter(1), 3, 1)
        .straggle(NodeId::Frontend(0), 2, Duration::from_millis(1))
        .with_phase_timeout(Duration::from_millis(40));
    let faulty = runner
        .run_faulty(&inst, Strategy::Hybrid, Runtime::Threaded, plan)
        .expect("crash-and-recover plan must complete");

    assert!(faulty.converged, "recovered run must still converge");
    assert_eq!(faulty.iterations, clean.iterations);
    // Checkpoint-restart replay is bit-faithful, so the tolerance here is
    // slack: the iterates are actually identical.
    assert!(
        (faulty.breakdown.ufc() - clean.breakdown.ufc()).abs()
            <= 1e-6 * clean.breakdown.ufc().abs(),
        "faulty {} vs clean {}",
        faulty.breakdown.ufc(),
        clean.breakdown.ufc()
    );
    let fault = faulty.fault.expect("fault report for a non-trivial plan");
    assert_eq!(fault.crashes_observed, 1);
    assert_eq!(fault.stragglers_observed, 1);
    // Crash at iteration 3, no checkpoint yet (interval 4): iterations 1–2
    // are recomputed from the replay buffer.
    assert_eq!(fault.recomputed_iterations, 2);
    assert!(fault.checkpoints_taken > 0);
    assert!(fault.evicted.is_empty(), "a recovered crash never evicts");
    assert!(fault.downtime_seconds > 0.0);
    assert!(fault.straggler_seconds > 0.0);
    assert!(fault.ufc_delta_vs_clean.abs() <= 1e-9);
    assert!(faulty.estimated_wan_seconds > clean.estimated_wan_seconds);
}

#[test]
fn lockstep_and_threaded_agree_under_faults() {
    let inst = slack_instance();
    let runner = DistributedAdmg::new(AdmgSettings::default());
    let plan = FaultPlan::new()
        .crash_and_recover(NodeId::Datacenter(0), 5, 2)
        .crash_and_recover(NodeId::Frontend(1), 7, 1)
        .straggle(NodeId::Datacenter(1), 4, Duration::from_millis(2))
        .with_phase_timeout(Duration::from_millis(40));

    let lockstep = runner
        .run_faulty(&inst, Strategy::Hybrid, Runtime::Lockstep, plan.clone())
        .expect("faulty lockstep run must complete");
    let threaded = runner
        .run_faulty(&inst, Strategy::Hybrid, Runtime::Threaded, plan)
        .expect("faulty threaded run must complete");

    assert_eq!(lockstep.iterations, threaded.iterations);
    assert_eq!(lockstep.stats, threaded.stats);
    assert_eq!(lockstep.fault, threaded.fault);
    assert!(
        (lockstep.breakdown.ufc() - threaded.breakdown.ufc()).abs() < 1e-12,
        "lockstep {} vs threaded {}",
        lockstep.breakdown.ufc(),
        threaded.breakdown.ufc()
    );
}

#[test]
fn permanent_crash_degrades_gracefully() {
    let inst = slack_instance();
    let runner = DistributedAdmg::new(AdmgSettings::default());
    let clean = runner
        .run(&inst, Strategy::Hybrid, Runtime::Lockstep)
        .expect("clean lockstep run must succeed");
    let plan = FaultPlan::new()
        .crash_at(NodeId::Datacenter(1), 3)
        .with_phase_timeout(Duration::from_millis(40));
    let degraded = runner
        .run_faulty(&inst, Strategy::Hybrid, Runtime::Threaded, plan)
        .expect("a permanent datacenter crash must degrade, not error");

    let fault = degraded.fault.expect("fault report");
    assert_eq!(fault.evicted, vec![1]);
    assert!(
        fault.readmitted.is_empty(),
        "permanent crashes never readmit"
    );
    // The dead datacenter is pinned to zero; survivors carry all load.
    assert_eq!(degraded.point.mu[1], 0.0);
    for i in 0..inst.m_frontends() {
        assert!(
            degraded.point.lambda[i][1].abs() < 1e-9,
            "traffic still routed to the evicted datacenter"
        );
    }
    assert!(degraded.point.feasibility_residual(&inst) < 1e-6);
    // The report's delta is exactly the degraded-vs-clean UFC gap, and the
    // forced single-datacenter routing genuinely moves the objective.
    let gap = degraded.breakdown.ufc() - clean.breakdown.ufc();
    assert!((fault.ufc_delta_vs_clean - gap).abs() < 1e-12);
    assert!(
        gap.abs() > 1e-6,
        "eviction should change the operating point"
    );
}

#[test]
fn eviction_then_readmission_completes() {
    let inst = slack_instance();
    let runner = DistributedAdmg::new(AdmgSettings::default());
    // 5 down attempts vs deadline 3: evicted after 3, readmitted once the
    // remaining 2 probes succeed.
    let plan = FaultPlan::new()
        .crash_and_recover(NodeId::Datacenter(1), 2, 5)
        .with_phase_timeout(Duration::from_millis(40));
    for runtime in [Runtime::Lockstep, Runtime::Threaded] {
        let report = runner
            .run_faulty(&inst, Strategy::Hybrid, runtime, plan.clone())
            .expect("eviction-then-readmission plan must complete");
        let fault = report.fault.expect("fault report");
        assert_eq!(fault.evicted, vec![1]);
        assert_eq!(fault.readmitted, vec![1]);
        assert!(fault.downtime_attempts >= 5);
        assert!(report.converged, "readmitted run must converge");
        assert!(report.point.feasibility_residual(&inst) < 1e-6);
    }
}

#[test]
fn unplanned_missing_frontend_is_a_typed_error() {
    let inst = slack_instance();
    let runner = DistributedAdmg::new(AdmgSettings::default());
    // A permanently dead front-end cannot be evicted: typed failure.
    let plan = FaultPlan::new()
        .crash_at(NodeId::Frontend(0), 2)
        .with_phase_timeout(Duration::from_millis(40));
    let err = runner
        .run_faulty(&inst, Strategy::Hybrid, Runtime::Threaded, plan)
        .unwrap_err();
    assert!(
        matches!(err, ufc_core::CoreError::NodeFailure { .. }),
        "expected NodeFailure, got {err}"
    );
}

proptest! {
    #[test]
    fn frontend_snapshot_round_trips(
        blocks in proptest::collection::vec(
            (-5.0..5.0f64, -5.0..5.0f64, -5.0..5.0f64, -5.0..5.0f64, -1.0..1.0f64),
            1..8,
        )
    ) {
        let snap = FrontendSnapshot {
            lambda: blocks.iter().map(|b| b.0).collect(),
            lambda_tilde: blocks.iter().map(|b| b.1).collect(),
            a: blocks.iter().map(|b| b.2).collect(),
            varphi: blocks.iter().map(|b| b.3).collect(),
            evicted: blocks.iter().map(|b| b.4 > 0.0).collect(),
        };
        let back = FrontendSnapshot::from_bytes(&snap.to_bytes())
            .expect("a freshly serialized front-end snapshot must decode");
        prop_assert_eq!(snap, back);
    }

    #[test]
    fn datacenter_snapshot_round_trips(
        scalars in (-50.0..50.0f64, -50.0..50.0f64, -50.0..50.0f64, -50.0..50.0f64),
        cols in proptest::collection::vec((-5.0..5.0f64, -5.0..5.0f64), 1..8),
    ) {
        let snap = DatacenterSnapshot {
            mu: scalars.0,
            nu: scalars.1,
            phi: scalars.2,
            d: scalars.3,
            a: cols.iter().map(|c| c.0).collect(),
            varphi: cols.iter().map(|c| c.1).collect(),
        };
        let back = DatacenterSnapshot::from_bytes(&snap.to_bytes())
            .expect("a freshly serialized datacenter snapshot must decode");
        prop_assert_eq!(snap, back);
    }
}

#[test]
fn lossy_run_is_result_identical_to_lossless() {
    let scenario = ScenarioBuilder::paper_default()
        .seed(3)
        .hours(1)
        .build()
        .expect("paper-default scenario must build");
    let inst = &scenario.instances[0];
    let runner = DistributedAdmg::new(AdmgSettings::default());

    let clean = runner
        .run(inst, Strategy::Hybrid, Runtime::Lockstep)
        .expect("lossless lockstep run must succeed");
    let lossy = runner
        .run_lossy(inst, Strategy::Hybrid, LossConfig::new(0.2, 99))
        .expect("lossy run must succeed: retransmission hides all loss");

    assert_eq!(clean.iterations, lossy.iterations);
    assert!((clean.breakdown.ufc() - lossy.breakdown.ufc()).abs() < 1e-12);
    assert_eq!(clean.stats.data_messages, lossy.stats.data_messages);
    // ...but the lossy run paid for it.
    assert!(
        lossy.retransmissions > 0,
        "20% loss must cause retransmissions"
    );
    assert!(lossy.stats.total_bytes > clean.stats.total_bytes);
    assert!(lossy.estimated_wan_seconds > clean.estimated_wan_seconds);
}

#[test]
fn cost_grows_with_loss_rate() {
    let scenario = ScenarioBuilder::paper_default()
        .seed(3)
        .hours(1)
        .build()
        .expect("paper-default scenario must build");
    let inst = &scenario.instances[0];
    let runner = DistributedAdmg::new(AdmgSettings::default());

    let mild = runner
        .run_lossy(inst, Strategy::Hybrid, LossConfig::new(0.05, 7))
        .expect("mildly lossy run must succeed");
    let harsh = runner
        .run_lossy(inst, Strategy::Hybrid, LossConfig::new(0.4, 7))
        .expect("harshly lossy run must succeed");
    assert!(harsh.retransmissions > mild.retransmissions);
    assert!(harsh.estimated_wan_seconds > mild.estimated_wan_seconds);
    // Sanity: expected retransmissions ≈ messages × p/(1−p).
    let msgs = mild.stats.data_messages as f64;
    let expected = msgs * 0.05 / 0.95;
    let got = mild.retransmissions as f64;
    assert!(
        (got - expected).abs() < 0.5 * expected + 20.0,
        "retransmissions {got} far from expectation {expected}"
    );
}

#[test]
fn zero_loss_is_free() {
    let scenario = ScenarioBuilder::paper_default()
        .seed(3)
        .hours(1)
        .build()
        .expect("paper-default scenario must build");
    let inst = &scenario.instances[0];
    let runner = DistributedAdmg::new(AdmgSettings::default());
    let clean = runner
        .run(inst, Strategy::Hybrid, Runtime::Lockstep)
        .expect("lossless lockstep run must succeed");
    let lossy0 = runner
        .run_lossy(inst, Strategy::Hybrid, LossConfig::new(0.0, 1))
        .expect("zero-loss lossy run must succeed");
    assert_eq!(lossy0.retransmissions, 0);
    assert_eq!(lossy0.stats.total_bytes, clean.stats.total_bytes);
    assert!((lossy0.estimated_wan_seconds - clean.estimated_wan_seconds).abs() < 1e-12);
}
