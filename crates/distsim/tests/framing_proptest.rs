//! Property tests of the session-layer frame reassembly
//! (`ufc_distsim::wire`). Whatever a hostile or flaky peer feeds the
//! decoder — random garbage, truncated frames, arbitrary chunk
//! boundaries — it must return typed errors or complete payloads, never
//! panic, and honest round trips must always survive.

use proptest::prelude::*;
use ufc_distsim::wire::{frame, FrameBuffer, LENGTH_PREFIX_BYTES, MAX_WIRE_FRAME_BYTES};

proptest! {
    /// Arbitrary byte soup never panics the reassembler: every
    /// `next_frame` call returns `Ok` or a typed error, regardless of
    /// chunking.
    #[test]
    fn random_bytes_never_panic_the_frame_buffer(
        bytes in proptest::collection::vec(0u8..=255, 0..4096),
        chunk in 1usize..64,
    ) {
        let mut buffer = FrameBuffer::new();
        let mut rejected = false;
        for piece in bytes.chunks(chunk) {
            buffer.push(piece);
            // Drain until the buffer wants more bytes or rejects the
            // stream; either way it must not panic or loop forever.
            loop {
                match buffer.next_frame() {
                    Ok(Some(_)) => {}
                    Ok(None) => break,
                    Err(_) => {
                        rejected = true;
                        break;
                    }
                }
            }
            if rejected {
                break;
            }
        }
    }

    /// Honest framed payloads round-trip through any chunking of the
    /// byte stream, back-to-back frames included.
    #[test]
    fn framed_payloads_round_trip_under_any_chunking(
        payloads in proptest::collection::vec(
            proptest::collection::vec(0u8..=255, 6..128),
            1..8,
        ),
        chunk in 1usize..32,
    ) {
        let mut stream = Vec::new();
        for payload in &payloads {
            stream.extend_from_slice(&frame(payload));
        }
        let mut buffer = FrameBuffer::new();
        let mut decoded = Vec::new();
        for piece in stream.chunks(chunk) {
            buffer.push(piece);
            while let Some(payload) = buffer.next_frame().expect("honest frames decode") {
                decoded.push(payload);
            }
        }
        prop_assert_eq!(decoded, payloads);
        prop_assert_eq!(buffer.pending_bytes(), 0);
    }

    /// Truncating an honest frame anywhere mid-payload leaves the
    /// reassembler waiting for more bytes — it must never hand out a
    /// partial payload.
    #[test]
    fn truncated_frames_never_yield_partial_payloads(
        payload in proptest::collection::vec(0u8..=255, 6..256),
        cut in 0usize..256,
    ) {
        let full = frame(&payload);
        let cut = LENGTH_PREFIX_BYTES + (cut % payload.len()).max(1);
        let mut buffer = FrameBuffer::new();
        buffer.push(&full[..cut.min(full.len() - 1)]);
        prop_assert_eq!(buffer.next_frame().expect("a truncated frame is not an error"), None);
        prop_assert!(buffer.pending_bytes() > 0);
    }

    /// A hostile length prefix — over the frame bound or under the
    /// minimum payload — is rejected with a typed error before any
    /// payload bytes arrive.
    #[test]
    fn hostile_length_prefixes_fail_typed(raw in 0u32..u32::MAX) {
        let max = u32::try_from(MAX_WIRE_FRAME_BYTES).expect("bound fits in u32");
        let undersized = raw % 6;
        let oversized = max + 1 + raw % (u32::MAX - max);
        for len in [undersized, oversized] {
            let mut buffer = FrameBuffer::new();
            buffer.push(&len.to_le_bytes());
            prop_assert!(
                buffer.next_frame().is_err(),
                "length prefix {len} must be rejected"
            );
        }
    }
}
