//! The multi-process socket engine as a `Transport` for the unified ADM-G
//! driver (`ufc_core::engine::drive`).
//!
//! Each worker is a real OS process (the `ufc-node` binary, running
//! [`crate::worker::run_worker`]) connected to the coordinator over TCP on
//! loopback. The coordinator accepts connections on a background acceptor
//! thread, validates the `Hello` handshake (session id, process slot,
//! incarnation), answers with the serialized run configuration, and spawns
//! one I/O pump thread per connection that reassembles wire frames
//! ([`crate::wire::FrameBuffer`]) and feeds decoded replies into the same
//! mpsc channel the threaded engine's `gather_phase` ladder drains — the
//! deadline ladder, fault tracker, checkpoint store, and replay buffer are
//! shared with `crate::engine_threaded` verbatim.
//!
//! Faults here are real: a scripted crash is a `SIGKILL` delivered to the
//! live worker process mid-iteration (`Child::kill`), a partition window
//! tears down the affected TCP connections so the workers must
//! reconnect-with-backoff, and liveness is `Child::try_wait` — the actual
//! OS process table, not a thread flag. Recovery is the same
//! checkpoint-restart protocol: the ladder declares the silent process
//! dead, [`crate::fault::FaultTracker`] decides respawn-vs-evict, and a
//! respawned process is rebuilt from the last verified snapshot
//! ([`crate::wire::NodeCmd::Restore`]) plus input replay, bit-identical to
//! the state the killed process would have held.

use std::cell::RefCell;
use std::collections::HashSet;
use std::io::Read;
use std::net::{Shutdown, TcpListener, TcpStream};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

use ufc_core::engine::{drive, BlockResiduals, IterationObserver, Transport};
use ufc_core::telemetry::{ObserverChain, TelemetryCollector, TrafficCounters};
use ufc_core::{AdmgSettings, BlockKind, BlockSchedule, CoreError};
use ufc_model::UfcInstance;

use crate::coordinator::{
    account_stragglers, column_of, finish, max_latency, record_a_traffic, record_control,
    record_lambda_traffic, reduce_residuals, replay_entries, row_of, HistoryEntry,
};
use crate::fault::{FaultPlan, FaultTracker, IntegrityState, NodeId, Resolution};
use crate::message::Message;
use crate::node::{DatacenterNode, NodeResiduals};
use crate::runtime::{DistRunReport, SocketOptions};
use crate::snapshot::{CheckpointStore, DatacenterSnapshot, FrontendSnapshot};
use crate::stats::{estimated_wan_seconds_live, MessageStats};
use crate::supervision::{gather_phase, Reply};
use crate::wire::{process_of, FrameBuffer, NodeCmd, RunConfig, WireFrame};

/// How long the coordinator waits for a spawned worker to complete the
/// `Hello`/`Welcome` handshake before declaring the spawn failed. Covers
/// process startup plus the worker's own connect backoff.
const REGISTRATION_DEADLINE: Duration = Duration::from_secs(10);

/// Grace period for workers to exit after a `Shutdown` frame before the
/// coordinator falls back to `SIGKILL` at teardown.
const EXIT_GRACE: Duration = Duration::from_secs(2);

/// Runs the socket engine under a fault plan. A trivial plan reduces to
/// the clean multi-process runtime: no kills, no drops, and a report
/// bit-identical to the lockstep engine's.
pub(crate) fn run_socket_engine(
    settings: &AdmgSettings,
    instance: &UfcInstance,
    active_mu: bool,
    active_nu: bool,
    plan: FaultPlan,
    options: &SocketOptions,
    observer: &mut dyn IterationObserver,
) -> Result<DistRunReport, CoreError> {
    let tolerances = settings.scaled_tolerances(instance);
    let mut sup = SocketSupervisor::new(instance, *settings, active_mu, active_nu, plan, options)?;
    let mut collector = settings.telemetry.then(TelemetryCollector::default);
    let outcome = match collector.as_mut() {
        Some(c) => {
            let mut chain = ObserverChain(&mut *c, observer);
            drive(&mut sup, settings, tolerances, &mut chain)
        }
        None => drive(&mut sup, settings, tolerances, observer),
    }
    .and_then(|outcome| {
        sup.final_gather(outcome.iterations)
            .map(|(lambda_rows, mu, d)| (outcome, lambda_rows, mu, d))
    });
    // Extract everything the report needs before the supervisor is consumed
    // by shutdown; the error path still tears down every worker process.
    let stats = sup.stats;
    let fault_report = sup.tracker.report.clone();
    let plan_trivial = sup.tracker.plan().is_trivial();
    let evicted = sup.tracker.evicted_mask();
    let stall_phases = sup.stall_phases;
    let counters = sup.integrity.counters;
    let socket_activity = counters.reconnects > 0 || counters.dead_node_declarations > 0;
    let integrity = (sup.integrity.active() || socket_activity).then_some(counters);
    let shutdown = sup.shutdown();
    let (outcome, lambda_rows, mu, d) = outcome?;
    shutdown?;

    let (point, breakdown) = finish(instance, lambda_rows, mu, d, !active_nu)?;
    let estimated = estimated_wan_seconds_live(outcome.iterations, &instance.latency_s, &evicted)
        + fault_report.downtime_seconds
        + fault_report.straggler_seconds
        + stall_phases * max_latency(instance, &evicted);
    let report_fault = !plan_trivial || fault_report.checkpoints_taken > 0;
    let telemetry = collector.map(|c| {
        let mut t = c.into_telemetry();
        // Solver counters stay zero: the per-node kernels live in other OS
        // processes. Use the lockstep engine (bit-identical) to observe the
        // solver layer.
        t.traffic = Some(TrafficCounters {
            data_messages: stats.data_messages as u64,
            control_messages: stats.control_messages as u64,
            total_bytes: stats.total_bytes as u64,
            retransmissions: 0,
        });
        if report_fault {
            t.fault = Some(fault_report.counters());
        }
        t.integrity = integrity;
        t
    });
    Ok(DistRunReport {
        point,
        breakdown,
        iterations: outcome.iterations,
        converged: outcome.converged,
        stats,
        estimated_wan_seconds: estimated,
        retransmissions: 0,
        fault: report_fault.then_some(fault_report),
        integrity,
        telemetry,
    })
}

/// A completed handshake delivered by the acceptor thread: the stream the
/// coordinator sends commands on, plus the pump thread that is already
/// forwarding the worker's replies.
struct Registration {
    process: usize,
    incarnation: u32,
    stream: TcpStream,
    pump: JoinHandle<()>,
}

/// The supervising coordinator of the multi-process runtime.
struct SocketSupervisor<'a> {
    instance: &'a UfcInstance,
    settings: AdmgSettings,
    active_mu: bool,
    active_nu: bool,
    m: usize,
    n: usize,
    processes: usize,
    worker_path: PathBuf,
    addr: String,
    session: u64,
    tracker: FaultTracker,
    store: CheckpointStore,
    history: Vec<HistoryEntry>,
    reply_rx: Receiver<Reply>,
    reg_rx: Receiver<Registration>,
    /// Live worker processes, one slot per process index. `RefCell`
    /// because liveness probing (`try_wait`) needs `&mut Child` from
    /// inside the gather ladder's `Fn` closure.
    children: Vec<RefCell<Option<Child>>>,
    /// Command streams to the workers (`None` while a worker is down or
    /// its connection is dropped).
    conns: Vec<Option<TcpStream>>,
    incarnations: Vec<u32>,
    pumps: Vec<JoinHandle<()>>,
    acceptor: Option<JoinHandle<()>>,
    acceptor_stop: Arc<AtomicBool>,
    /// Scripted kill-iterations per global node id, consumed as they fire.
    remaining_crashes: Vec<Vec<usize>>,
    stats: MessageStats,
    integrity: IntegrityState,
    suspect: Option<NodeId>,
    timeout: Duration,
    rounds: u32,
    checkpoint_interval: usize,
    stall_phases: f64,
    // Per-iteration scratch, produced by one phase and consumed by the next.
    rows: Vec<Vec<f64>>,
    a_cols: Vec<Vec<f64>>,
    dc_residuals: Vec<Option<NodeResiduals>>,
    readmitted_now: Vec<usize>,
    membership_changed: bool,
    node_count: usize,
}

impl<'a> SocketSupervisor<'a> {
    fn new(
        instance: &'a UfcInstance,
        settings: AdmgSettings,
        active_mu: bool,
        active_nu: bool,
        plan: FaultPlan,
        options: &SocketOptions,
    ) -> Result<Self, CoreError> {
        let m = instance.m_frontends();
        let n = instance.n_datacenters();
        let processes = if options.processes == 0 {
            m + n
        } else {
            options.processes
        };
        if processes > m + n {
            return Err(CoreError::invalid_config(format!(
                "{processes} worker processes for {} nodes",
                m + n
            )));
        }
        if (plan.crash_count() > 0 || plan.partition_count() > 0) && processes != m + n {
            return Err(CoreError::invalid_config(format!(
                "process-level fault injection needs one process per node \
                 ({} for this instance), got {processes}",
                m + n
            )));
        }
        let listener = TcpListener::bind("127.0.0.1:0")
            .map_err(|e| CoreError::node_failure("coordinator", 0, format!("bind: {e}")))?;
        let addr = listener
            .local_addr()
            .map_err(|e| CoreError::node_failure("coordinator", 0, format!("local_addr: {e}")))?
            .to_string();
        let session = session_id();
        let welcome: Arc<Vec<u8>> = Arc::new(
            WireFrame::Welcome {
                config: RunConfig {
                    instance: instance.clone(),
                    settings,
                    active_mu,
                    active_nu,
                    processes,
                }
                .encode(),
            }
            .to_wire(),
        );
        let (reply_tx, reply_rx) = channel::<Reply>();
        let (reg_tx, reg_rx) = channel::<Registration>();
        let acceptor_stop = Arc::new(AtomicBool::new(false));
        let acceptor = spawn_acceptor(
            listener,
            session,
            welcome,
            reply_tx,
            reg_tx,
            Arc::clone(&acceptor_stop),
        );
        let timeout = plan.phase_timeout;
        let rounds = plan.backoff_rounds;
        let checkpoint_interval = plan.checkpoint_interval;
        let integrity = IntegrityState::new(plan.corruption.as_ref(), settings.verify_checksums);
        let mut remaining_crashes = Vec::with_capacity(m + n);
        for i in 0..m {
            remaining_crashes.push(plan.crash_iterations_for(NodeId::Frontend(i)));
        }
        for j in 0..n {
            remaining_crashes.push(plan.crash_iterations_for(NodeId::Datacenter(j)));
        }
        let mut sup = SocketSupervisor {
            instance,
            settings,
            active_mu,
            active_nu,
            m,
            n,
            processes,
            worker_path: options.worker.clone(),
            addr,
            session,
            tracker: FaultTracker::new(plan, m, n),
            store: CheckpointStore::new(m, n),
            history: Vec::new(),
            reply_rx,
            reg_rx,
            children: (0..processes).map(|_| RefCell::new(None)).collect(),
            conns: (0..processes).map(|_| None).collect(),
            incarnations: vec![0; processes],
            pumps: Vec::new(),
            acceptor: Some(acceptor),
            acceptor_stop,
            remaining_crashes,
            stats: MessageStats::default(),
            integrity,
            suspect: None,
            timeout,
            rounds,
            checkpoint_interval,
            stall_phases: 0.0,
            rows: Vec::new(),
            a_cols: Vec::new(),
            dc_residuals: Vec::new(),
            readmitted_now: Vec::new(),
            membership_changed: false,
            node_count: m + n,
        };
        for p in 0..processes {
            sup.spawn_process(p)?;
        }
        for p in 0..processes {
            sup.await_registration(p)?;
        }
        Ok(sup)
    }

    /// Launches the worker binary for process slot `p` at its current
    /// incarnation. Registration happens asynchronously via the acceptor.
    fn spawn_process(&mut self, p: usize) -> Result<(), CoreError> {
        let child = Command::new(&self.worker_path)
            .arg("--connect")
            .arg(&self.addr)
            .arg("--process")
            .arg(p.to_string())
            .arg("--session")
            .arg(self.session.to_string())
            .arg("--incarnation")
            .arg(self.incarnations[p].to_string())
            .stdin(Stdio::null())
            .stdout(Stdio::null())
            .spawn()
            .map_err(|e| {
                CoreError::node_failure(
                    format!("process-{p}"),
                    0,
                    format!("cannot spawn {}: {e}", self.worker_path.display()),
                )
            })?;
        *self.children[p].borrow_mut() = Some(child);
        Ok(())
    }

    /// Blocks until process `p` (at its current incarnation) completes the
    /// handshake, installing any other registrations that arrive meanwhile.
    fn await_registration(&mut self, p: usize) -> Result<(), CoreError> {
        let deadline = Instant::now() + REGISTRATION_DEADLINE;
        while self.conns[p].is_none() {
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return Err(CoreError::node_failure(
                    format!("process-{p}"),
                    0,
                    "worker did not complete the handshake before the deadline",
                ));
            }
            match self.reg_rx.recv_timeout(remaining) {
                Ok(reg) => self.install_registration(reg),
                Err(_) => {
                    return Err(CoreError::node_failure(
                        format!("process-{p}"),
                        0,
                        "worker did not complete the handshake before the deadline",
                    ))
                }
            }
        }
        Ok(())
    }

    /// Adopts a completed handshake — unless it is stale (an old
    /// incarnation of a process we have since killed and respawned, or a
    /// straggler arriving after shutdown drained the connection table).
    fn install_registration(&mut self, reg: Registration) {
        if reg.process >= self.conns.len() || reg.incarnation != self.incarnations[reg.process] {
            self.pumps.push(reg.pump);
            let _ = reg.stream.shutdown(Shutdown::Both);
            return;
        }
        self.conns[reg.process] = Some(reg.stream);
        self.pumps.push(reg.pump);
    }

    /// Installs any registrations already queued (reconnects after a
    /// partition heal can complete while the coordinator is mid-phase).
    fn drain_registrations(&mut self) {
        while let Ok(reg) = self.reg_rx.try_recv() {
            self.install_registration(reg);
        }
    }

    /// Sends a command to the process hosting `node`. Errors are
    /// deliberately swallowed — a dead or dropped connection surfaces as
    /// silence in the gather ladder, which owns the failure verdict.
    fn send_node(&self, node: usize, cmd: NodeCmd) {
        let p = process_of(node, self.processes);
        if let Some(conn) = &self.conns[p] {
            let mut writer: &TcpStream = conn;
            let _ = std::io::Write::write_all(&mut writer, &WireFrame::Cmd { node, cmd }.to_wire());
        }
    }

    /// Liveness straight from the OS process table.
    fn alive(&self, node: NodeId) -> bool {
        let id = match node {
            NodeId::Frontend(i) => i,
            NodeId::Datacenter(j) => self.m + j,
        };
        let p = process_of(id, self.processes);
        self.children[p]
            .borrow_mut()
            .as_mut()
            .is_some_and(|child| matches!(child.try_wait(), Ok(None)))
    }

    /// Delivers a real `SIGKILL` to process `p` and reaps it.
    fn kill_process(&mut self, p: usize) {
        if let Some(conn) = self.conns[p].take() {
            let _ = conn.shutdown(Shutdown::Both);
        }
        if let Some(mut child) = self.children[p].borrow_mut().take() {
            let _ = child.kill();
            let _ = child.wait();
        }
    }

    /// Fires this iteration's scripted front-end kills (before the predict
    /// commands go out, so the victim dies mid-iteration).
    fn inject_frontend_crashes(&mut self, k: usize) {
        for i in 0..self.m {
            if self.remaining_crashes[i].first() == Some(&k) {
                self.kill_process(process_of(i, self.processes));
                self.remaining_crashes[i].retain(|&it| it > k);
            }
        }
    }

    /// Fires this iteration's scripted datacenter kills.
    fn inject_datacenter_crashes(&mut self, k: usize) {
        for j in 0..self.n {
            if self.tracker.is_evicted(j) {
                continue;
            }
            let id = self.m + j;
            if self.remaining_crashes[id].first() == Some(&k) {
                self.kill_process(process_of(id, self.processes));
                self.remaining_crashes[id].retain(|&it| it > k);
            }
        }
    }

    /// At a partition window's opening iteration, tears down the affected
    /// connections (the workers survive and reconnect with backoff — the
    /// socket spelling of a healed WAN partition).
    fn simulate_partition_drops(&mut self, k: usize) -> Result<(), CoreError> {
        let plan = self.tracker.plan();
        if !plan.partition_active(k) || (k > 1 && plan.partition_active(k - 1)) {
            return Ok(());
        }
        let mut affected: Vec<usize> = Vec::new();
        for i in 0..self.m {
            for j in 0..self.n {
                if plan.is_partitioned(i, j, k) {
                    for id in [i, self.m + j] {
                        let p = process_of(id, self.processes);
                        if !affected.contains(&p) {
                            affected.push(p);
                        }
                    }
                }
            }
        }
        for &p in &affected {
            if let Some(conn) = self.conns[p].take() {
                let _ = conn.shutdown(Shutdown::Both);
            }
        }
        for &p in &affected {
            self.await_registration(p)?;
            self.integrity.counters.reconnects += 1;
        }
        Ok(())
    }

    /// Kills (if needed), respawns, and re-registers the process hosting
    /// `node` at a bumped incarnation.
    fn respawn_process_for(&mut self, node: usize, k: usize) -> Result<(), CoreError> {
        let p = process_of(node, self.processes);
        self.kill_process(p);
        self.incarnations[p] += 1;
        self.remaining_crashes[node].retain(|&it| it > k);
        self.spawn_process(p)?;
        self.await_registration(p)
    }

    /// Respawns front-end `i` from its last checkpoint, replays the
    /// buffered inputs since, and re-applies this iteration's membership
    /// deltas — the socket spelling of the threaded engine's
    /// `respawn_frontend`.
    fn respawn_frontend(&mut self, i: usize, k: usize) -> Result<(), CoreError> {
        self.respawn_process_for(i, k)?;
        let mut base = 0usize;
        if let Some((it, blob)) = self.store.frontend(i) {
            let blob = blob.to_vec();
            base = it;
            self.send_node(i, NodeCmd::Restore { blob });
        }
        let mut replayed = 0usize;
        for entry in replay_entries(&self.history, base, k) {
            self.send_node(
                i,
                NodeCmd::Predict {
                    iteration: entry.iteration,
                },
            );
            self.send_node(
                i,
                NodeCmd::Correct {
                    iteration: entry.iteration,
                    a_row: row_of(&entry.a_cols, i),
                },
            );
            replayed += 1;
        }
        self.tracker.report.recomputed_iterations += replayed;
        for &j in &self.readmitted_now {
            self.send_node(
                i,
                NodeCmd::Membership {
                    datacenter: j,
                    evict: false,
                },
            );
        }
        Ok(())
    }

    /// Respawns datacenter `j` from its last checkpoint and replays the
    /// buffered λ̃ columns since.
    fn respawn_datacenter(&mut self, j: usize, k: usize) -> Result<(), CoreError> {
        let id = self.m + j;
        self.respawn_process_for(id, k)?;
        let mut base = 0usize;
        if let Some((it, blob)) = self.store.datacenter(j) {
            let blob = blob.to_vec();
            base = it;
            self.send_node(id, NodeCmd::Restore { blob });
        }
        let mut replayed = 0usize;
        for entry in replay_entries(&self.history, base, k) {
            self.send_node(
                id,
                NodeCmd::Process {
                    iteration: entry.iteration,
                    column: column_of(&entry.rows, j),
                },
            );
            replayed += 1;
        }
        self.tracker.report.recomputed_iterations += replayed;
        Ok(())
    }

    /// Evicts datacenter `j`: reaps the dead process and broadcasts the
    /// membership change to every front-end.
    fn evict_datacenter(&mut self, j: usize) {
        self.kill_process(process_of(self.m + j, self.processes));
        for i in 0..self.m {
            self.send_node(
                i,
                NodeCmd::Membership {
                    datacenter: j,
                    evict: true,
                },
            );
            self.stats.record(&Message::Membership {
                datacenter: j,
                evict: true,
            });
        }
    }

    /// One checkpoint round, identical accounting to the threaded engine's.
    fn checkpoint_round(&mut self, k: usize) -> Result<(), CoreError> {
        let (m, n) = (self.m, self.n);
        let mut pending: HashSet<NodeId> = (0..m).map(NodeId::Frontend).collect();
        for i in 0..m {
            self.send_node(i, NodeCmd::Snapshot { iteration: k });
        }
        for j in 0..n {
            if !self.tracker.is_evicted(j) {
                self.send_node(m + j, NodeCmd::Snapshot { iteration: k });
                pending.insert(NodeId::Datacenter(j));
            }
        }
        let mut fe_blobs: Vec<Option<Vec<u8>>> = vec![None; m];
        let mut dc_blobs: Vec<Option<Vec<u8>>> = vec![None; n];
        let missing = gather_phase(
            &self.reply_rx,
            &mut pending,
            self.timeout,
            self.rounds,
            |node| self.alive(node),
            |reply| match reply {
                Reply::FeSnapshot { i, iteration, blob } if iteration == k => {
                    fe_blobs[i] = Some(blob);
                    Some(NodeId::Frontend(i))
                }
                Reply::DcSnapshot { j, iteration, blob } if iteration == k => {
                    dc_blobs[j] = Some(blob);
                    Some(NodeId::Datacenter(j))
                }
                _ => None,
            },
        );
        if let Some(node) = missing.first() {
            return Err(CoreError::node_failure(
                node.to_string(),
                k,
                "no reply to the checkpoint request",
            ));
        }
        for (i, blob) in fe_blobs.into_iter().enumerate() {
            let blob = blob.ok_or_else(|| {
                CoreError::node_failure(
                    NodeId::Frontend(i).to_string(),
                    k,
                    "checkpoint blob missing after gather",
                )
            })?;
            self.stats.record(&Message::Checkpoint {
                node: i,
                payload_bytes: blob.len(),
            });
            self.store.put_frontend(i, k, blob);
        }
        for (j, blob) in dc_blobs.into_iter().enumerate() {
            let Some(blob) = blob else { continue };
            self.stats.record(&Message::Checkpoint {
                node: m + j,
                payload_bytes: blob.len(),
            });
            self.store.put_datacenter(j, k, blob);
        }
        self.tracker.report.checkpoints_taken += 1;
        self.history.clear();
        Ok(())
    }

    /// Ships `Finish` to every live worker and gathers the final iterate.
    #[allow(clippy::type_complexity)]
    fn final_gather(
        &mut self,
        iterations: usize,
    ) -> Result<(Vec<Vec<f64>>, Vec<f64>, Vec<f64>), CoreError> {
        let (m, n) = (self.m, self.n);
        let mut pending: HashSet<NodeId> = (0..m).map(NodeId::Frontend).collect();
        for i in 0..m {
            self.send_node(i, NodeCmd::Finish);
        }
        for j in 0..n {
            if !self.tracker.is_evicted(j) {
                self.send_node(m + j, NodeCmd::Finish);
                pending.insert(NodeId::Datacenter(j));
            }
        }
        let mut lambda_rows: Vec<Vec<f64>> = vec![Vec::new(); m];
        let mut mu = vec![0.0; n];
        let mut d = vec![0.0; n];
        let missing = gather_phase(
            &self.reply_rx,
            &mut pending,
            self.timeout,
            self.rounds,
            |node| self.alive(node),
            |reply| match reply {
                Reply::FeFinal { i, lambda } => {
                    lambda_rows[i] = lambda;
                    Some(NodeId::Frontend(i))
                }
                Reply::DcFinal { j, mu: v, d: dv } => {
                    mu[j] = v;
                    d[j] = dv;
                    Some(NodeId::Datacenter(j))
                }
                _ => None,
            },
        );
        if let Some(node) = missing.first() {
            return Err(CoreError::node_failure(
                node.to_string(),
                iterations,
                "no reply to the final gather",
            ));
        }
        Ok((lambda_rows, mu, d))
    }

    /// Orderly teardown on every exit path: `Shutdown` frames, forced
    /// socket closes (so pump threads exit), acceptor stop, pump joins,
    /// then a bounded wait for each worker process with `SIGKILL` as the
    /// backstop.
    fn shutdown(mut self) -> Result<(), CoreError> {
        for conn in self.conns.iter().flatten() {
            let mut writer: &TcpStream = conn;
            let _ = std::io::Write::write_all(&mut writer, &WireFrame::Shutdown.to_wire());
        }
        for conn in self.conns.drain(..).flatten() {
            let _ = conn.shutdown(Shutdown::Both);
        }
        self.acceptor_stop.store(true, Ordering::SeqCst);
        // The acceptor is blocked in accept(); poke it awake.
        let _ = TcpStream::connect(&self.addr);
        let mut first_panic = None;
        if let Some(handle) = self.acceptor.take() {
            if handle.join().is_err() {
                first_panic = Some(CoreError::node_failure(
                    "coordinator",
                    0,
                    "acceptor thread panicked during shutdown",
                ));
            }
        }
        self.drain_registrations();
        for pump in self.pumps.drain(..) {
            if pump.join().is_err() && first_panic.is_none() {
                first_panic = Some(CoreError::node_failure(
                    "coordinator",
                    0,
                    "pump thread panicked during shutdown",
                ));
            }
        }
        let deadline = Instant::now() + EXIT_GRACE;
        for cell in &self.children {
            let Some(mut child) = cell.borrow_mut().take() else {
                continue;
            };
            loop {
                match child.try_wait() {
                    Ok(Some(_)) => break,
                    Ok(None) if Instant::now() < deadline => {
                        std::thread::sleep(Duration::from_millis(10));
                    }
                    _ => {
                        let _ = child.kill();
                        let _ = child.wait();
                        break;
                    }
                }
            }
        }
        first_panic.map_or(Ok(()), Err)
    }
}

impl Transport for SocketSupervisor<'_> {
    fn schedule(&self) -> BlockSchedule {
        BlockSchedule::for_instance(self.instance)
    }

    fn begin_iteration(&mut self, k: usize) -> Result<(), CoreError> {
        self.drain_registrations();
        self.membership_changed = false;
        let readmitted_now = self.tracker.probe_readmissions();
        for &j in &readmitted_now {
            // The respawned process builds a fresh datacenter kernel at
            // Welcome — exactly the state the threaded engine constructs —
            // so only the coordinator-side snapshot needs producing here.
            let node = DatacenterNode::new(
                self.instance,
                j,
                &self.settings,
                self.active_mu,
                self.active_nu,
            );
            self.store
                .put_datacenter(j, k - 1, node.snapshot().to_bytes());
            let id = self.m + j;
            let p = process_of(id, self.processes);
            self.incarnations[p] += 1;
            self.remaining_crashes[id].retain(|&it| it >= k);
            self.spawn_process(p)?;
            self.await_registration(p)?;
            for i in 0..self.m {
                self.send_node(
                    i,
                    NodeCmd::Membership {
                        datacenter: j,
                        evict: false,
                    },
                );
                self.stats.record(&Message::Membership {
                    datacenter: j,
                    evict: false,
                });
            }
            self.membership_changed = true;
        }
        self.readmitted_now = readmitted_now;
        account_stragglers(&mut self.tracker, self.m, self.n, k);
        if self.tracker.plan().partition_active(k) {
            self.stall_phases += 2.0;
        }
        self.simulate_partition_drops(k)?;
        Ok(())
    }

    fn predict_lambda(&mut self, k: usize) -> Result<(), CoreError> {
        self.inject_frontend_crashes(k);
        let m = self.m;
        for i in 0..m {
            self.send_node(i, NodeCmd::Predict { iteration: k });
        }
        let mut rows: Vec<Option<Vec<f64>>> = vec![None; m];
        let mut pending: HashSet<NodeId> = (0..m).map(NodeId::Frontend).collect();
        // One broad gather loop, shared shape with the threaded engine:
        // dead processes surface per-ladder while live stragglers stay
        // pending, and a respawned process rejoins the same pending set.
        let mut respawned: HashSet<NodeId> = HashSet::new();
        loop {
            let missing = gather_phase(
                &self.reply_rx,
                &mut pending,
                self.timeout,
                self.rounds,
                |node| self.alive(node),
                |reply| match reply {
                    Reply::Lambda { i, iteration, row } if iteration == k => {
                        rows[i] = Some(row);
                        Some(NodeId::Frontend(i))
                    }
                    _ => None,
                },
            );
            if missing.is_empty() && pending.is_empty() {
                break;
            }
            for node in missing {
                let NodeId::Frontend(i) = node else {
                    unreachable!("predict phase only waits on front-ends")
                };
                self.integrity.counters.dead_node_declarations += 1;
                if !respawned.insert(node) {
                    return Err(CoreError::node_failure(
                        node.to_string(),
                        k,
                        "no reply after checkpoint respawn",
                    ));
                }
                match self.tracker.resolve_crash(node, k)? {
                    Resolution::Recovered { .. } => {
                        self.respawn_frontend(i, k)?;
                        self.send_node(i, NodeCmd::Predict { iteration: k });
                        pending.insert(node);
                    }
                    Resolution::Evicted { .. } => {
                        unreachable!("front-ends are never evicted")
                    }
                }
            }
        }
        let mut rows: Vec<Vec<f64>> = rows
            .into_iter()
            .enumerate()
            .map(|(i, row)| {
                row.ok_or_else(|| {
                    CoreError::node_failure(
                        NodeId::Frontend(i).to_string(),
                        k,
                        "prediction missing after gather",
                    )
                })
            })
            .collect::<Result<_, _>>()?;
        let phase_max = record_lambda_traffic(
            &mut self.stats,
            &mut self.tracker,
            None,
            &mut self.integrity,
            &mut rows,
            k,
        )?;
        self.stall_phases += (phase_max - 1) as f64;
        self.rows = rows;
        Ok(())
    }

    fn step_datacenters(&mut self, k: usize) -> Result<(), CoreError> {
        self.inject_datacenter_crashes(k);
        let (m, n) = (self.m, self.n);
        for j in 0..n {
            if self.tracker.is_evicted(j) {
                continue;
            }
            self.send_node(
                m + j,
                NodeCmd::Process {
                    iteration: k,
                    column: column_of(&self.rows, j),
                },
            );
        }
        let mut a_cols = vec![vec![0.0; m]; n];
        let mut d_vals = vec![0.0; n];
        let mut dc_residuals: Vec<Option<NodeResiduals>> = vec![None; n];
        let mut pending: HashSet<NodeId> = (0..n)
            .filter(|&j| !self.tracker.is_evicted(j))
            .map(NodeId::Datacenter)
            .collect();
        let mut respawned: HashSet<NodeId> = HashSet::new();
        loop {
            let missing = gather_phase(
                &self.reply_rx,
                &mut pending,
                self.timeout,
                self.rounds,
                |node| self.alive(node),
                |reply| match reply {
                    Reply::DcStep {
                        j,
                        iteration,
                        a_tilde,
                        d,
                        residuals,
                    } if iteration == k => {
                        a_cols[j] = a_tilde;
                        d_vals[j] = d;
                        dc_residuals[j] = Some(residuals);
                        Some(NodeId::Datacenter(j))
                    }
                    _ => None,
                },
            );
            if missing.is_empty() && pending.is_empty() {
                break;
            }
            for node in missing {
                let NodeId::Datacenter(j) = node else {
                    unreachable!("datacenter phase only waits on datacenters")
                };
                self.integrity.counters.dead_node_declarations += 1;
                if !respawned.insert(node) {
                    return Err(CoreError::node_failure(
                        node.to_string(),
                        k,
                        "no reply after checkpoint respawn",
                    ));
                }
                match self.tracker.resolve_crash(node, k)? {
                    Resolution::Recovered { .. } => {
                        self.respawn_datacenter(j, k)?;
                        self.send_node(
                            m + j,
                            NodeCmd::Process {
                                iteration: k,
                                column: column_of(&self.rows, j),
                            },
                        );
                        pending.insert(node);
                    }
                    Resolution::Evicted { .. } => {
                        self.evict_datacenter(j);
                        self.membership_changed = true;
                    }
                }
            }
        }
        let mut phase_max = 1usize;
        for j in 0..n {
            if dc_residuals[j].is_some() {
                phase_max = phase_max.max(record_a_traffic(
                    &mut self.stats,
                    &mut self.tracker,
                    None,
                    &mut self.integrity,
                    &mut a_cols[j],
                    j,
                    k,
                )?);
                // Storage-active datacenters report their corrected block
                // value on the control plane (same accounting as lockstep).
                if self
                    .instance
                    .storage
                    .as_ref()
                    .is_some_and(|sp| sp.active(j))
                {
                    self.stats.record(&Message::BlockReport {
                        datacenter: j,
                        block: BlockKind::Storage.wire_id(),
                        value: d_vals[j],
                    });
                }
            }
        }
        self.stall_phases += (phase_max - 1) as f64;
        self.a_cols = a_cols;
        self.dc_residuals = dc_residuals;
        Ok(())
    }

    fn correct(&mut self, k: usize) -> Result<BlockResiduals, CoreError> {
        let m = self.m;
        for i in 0..m {
            self.send_node(
                i,
                NodeCmd::Correct {
                    iteration: k,
                    a_row: row_of(&self.a_cols, i),
                },
            );
        }
        let mut fe_residuals: Vec<Option<NodeResiduals>> = vec![None; m];
        let mut pending: HashSet<NodeId> = (0..m).map(NodeId::Frontend).collect();
        let missing = gather_phase(
            &self.reply_rx,
            &mut pending,
            self.timeout,
            self.rounds,
            |node| self.alive(node),
            |reply| match reply {
                Reply::FeResidual {
                    i,
                    iteration,
                    residuals,
                } if iteration == k => {
                    fe_residuals[i] = Some(residuals);
                    Some(NodeId::Frontend(i))
                }
                _ => None,
            },
        );
        if let Some(node) = missing.first() {
            return Err(CoreError::node_failure(
                node.to_string(),
                k,
                "no reply in correction phase",
            ));
        }
        let fe_residuals: Vec<NodeResiduals> = fe_residuals
            .into_iter()
            .map(|r| r.unwrap_or_default())
            .collect();
        self.node_count = m + self.dc_residuals.iter().flatten().count();
        let (reduced, suspect) =
            reduce_residuals(&mut self.stats, &fe_residuals, &self.dc_residuals);
        self.suspect = suspect;
        Ok(reduced)
    }

    fn rollback(&mut self, _k: usize) -> Result<Option<usize>, CoreError> {
        self.integrity.counters.divergence_trips += 1;
        // Every live node needs a finite checkpoint before anything is
        // restored — a partial restore would leave the deployment
        // inconsistent, so decline instead.
        let mut base = usize::MAX;
        let mut fe_snaps = Vec::with_capacity(self.m);
        for i in 0..self.m {
            let Some((it, blob)) = self.store.frontend(i) else {
                return Ok(None);
            };
            let snap = FrontendSnapshot::from_bytes(blob)?;
            if !snap.is_finite() {
                return Ok(None);
            }
            base = base.min(it);
            fe_snaps.push(snap);
        }
        let mut dc_snaps: Vec<Option<Vec<u8>>> = Vec::with_capacity(self.n);
        for j in 0..self.n {
            if self.tracker.is_evicted(j) {
                dc_snaps.push(None);
                continue;
            }
            let Some((it, blob)) = self.store.datacenter(j) else {
                return Ok(None);
            };
            let snap = DatacenterSnapshot::from_bytes(blob)?;
            if !snap.is_finite() {
                return Ok(None);
            }
            base = base.min(it);
            dc_snaps.push(Some(blob.to_vec()));
        }
        // The worker processes are alive — the poison is in their state,
        // not their liveness — so restore in place over the live streams.
        // TCP ordering guarantees the Restore lands before any later
        // command. The live membership view stays authoritative over
        // whatever the snapshot recorded.
        let evicted = self.tracker.evicted_mask();
        for (i, mut snap) in fe_snaps.into_iter().enumerate() {
            snap.evicted.clone_from(&evicted);
            self.send_node(
                i,
                NodeCmd::Restore {
                    blob: snap.to_bytes(),
                },
            );
        }
        for (j, blob) in dc_snaps.into_iter().enumerate() {
            let Some(blob) = blob else { continue };
            self.send_node(self.m + j, NodeCmd::Restore { blob });
        }
        // Buffered inputs may hold the very payloads that poisoned the run;
        // never replay them into the restored state.
        self.history.clear();
        self.integrity.counters.rollbacks += 1;
        Ok(Some(base))
    }

    fn divergence_suspect(&self) -> Option<String> {
        self.suspect
            .map(|node| node.to_string())
            .or_else(|| self.integrity.last_corrupted.clone())
    }

    fn finish_iteration(&mut self, k: usize, stop: bool) -> Result<(), CoreError> {
        record_control(&mut self.stats, stop, self.node_count);
        self.history.push(HistoryEntry {
            iteration: k,
            rows: std::mem::take(&mut self.rows),
            a_cols: std::mem::take(&mut self.a_cols),
        });
        if !stop
            && (self.membership_changed
                || (self.checkpoint_interval > 0 && k.is_multiple_of(self.checkpoint_interval)))
        {
            self.checkpoint_round(k)?;
        }
        Ok(())
    }
}

/// A run-unique session id: stale workers from an earlier run (or another
/// concurrent test) fail the handshake instead of corrupting this one.
fn session_id() -> u64 {
    let nanos = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map_or(0, |d| d.as_nanos() as u64);
    nanos ^ (u64::from(std::process::id()) << 32)
}

/// Spawns the acceptor thread: accepts connections, validates the `Hello`
/// handshake against `session`, answers with the precomputed `Welcome`,
/// and hands each validated connection (plus its reply pump) to the
/// coordinator via `reg_tx`.
fn spawn_acceptor(
    listener: TcpListener,
    session: u64,
    welcome: Arc<Vec<u8>>,
    reply_tx: Sender<Reply>,
    reg_tx: Sender<Registration>,
    stop: Arc<AtomicBool>,
) -> JoinHandle<()> {
    std::thread::spawn(move || {
        while !stop.load(Ordering::SeqCst) {
            let Ok((stream, _)) = listener.accept() else {
                continue;
            };
            if stop.load(Ordering::SeqCst) {
                break;
            }
            let Some(reg) = handshake(stream, session, &welcome, &reply_tx) else {
                continue;
            };
            if reg_tx.send(reg).is_err() {
                break;
            }
        }
    })
}

/// Coordinator side of one connection handshake. Returns `None` (dropping
/// the connection) on timeout, session mismatch, or a malformed frame.
fn handshake(
    stream: TcpStream,
    session: u64,
    welcome: &Arc<Vec<u8>>,
    reply_tx: &Sender<Reply>,
) -> Option<Registration> {
    stream.set_nodelay(true).ok()?;
    stream.set_read_timeout(Some(Duration::from_secs(5))).ok()?;
    let mut frames = FrameBuffer::new();
    let hello = loop {
        if let Ok(Some(payload)) = frames.next_frame() {
            break WireFrame::decode_payload(&payload).ok()?;
        }
        let mut chunk = [0u8; 1024];
        let mut reader: &TcpStream = &stream;
        let n = reader.read(&mut chunk).ok()?;
        if n == 0 {
            return None;
        }
        frames.push(&chunk[..n]);
    };
    let WireFrame::Hello {
        session: hello_session,
        process,
        incarnation,
    } = hello
    else {
        return None;
    };
    if hello_session != session {
        return None;
    }
    {
        let mut writer: &TcpStream = &stream;
        std::io::Write::write_all(&mut writer, welcome).ok()?;
    }
    // Back to blocking reads for the pump: the gather ladder owns all
    // timeout policy.
    stream.set_read_timeout(None).ok()?;
    let pump_stream = stream.try_clone().ok()?;
    let pump_tx = reply_tx.clone();
    let pump = std::thread::spawn(move || pump(pump_stream, frames, &pump_tx));
    Some(Registration {
        process,
        incarnation,
        stream,
        pump,
    })
}

/// The per-connection reply pump: reassembles frames from the stream and
/// forwards decoded replies to the coordinator until EOF, a socket error,
/// or a corrupt frame. Commands never arrive on this direction; anything
/// unexpected ends the pump (the ladder handles the resulting silence).
fn pump(stream: TcpStream, mut frames: FrameBuffer, tx: &Sender<Reply>) {
    let mut reader: &TcpStream = &stream;
    let mut chunk = [0u8; 64 * 1024];
    loop {
        loop {
            match frames.next_frame() {
                Ok(Some(payload)) => {
                    let Ok(WireFrame::Reply(reply)) = WireFrame::decode_payload(&payload) else {
                        return;
                    };
                    if tx.send(reply).is_err() {
                        return;
                    }
                }
                Ok(None) => break,
                Err(_) => return,
            }
        }
        match reader.read(&mut chunk) {
            Ok(0) | Err(_) => return,
            Ok(n) => frames.push(&chunk[..n]),
        }
    }
}
