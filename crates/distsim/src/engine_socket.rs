//! The multi-process socket engine as a `Transport` for the unified ADM-G
//! driver (`ufc_core::engine::drive`).
//!
//! Each worker is a real OS process (the `ufc-node` binary, running
//! [`crate::worker::run_worker`]) connected to the coordinator over TCP —
//! loopback by default, or any [`crate::wire::BindConfig`] listen address
//! when a shared [`crate::wire::AuthKey`] is configured. The coordinator
//! accepts connections on a background acceptor thread, validates the
//! handshake (a `Hello` session check on loopback; a challenge–response
//! keyed MAC when authentication is on — see DESIGN.md §17), answers with
//! the serialized run configuration, and spawns one I/O pump thread per
//! connection that reassembles wire frames ([`crate::wire::FrameBuffer`])
//! and feeds decoded replies into the same mpsc channel the threaded
//! engine's `gather_phase` ladder drains — the deadline ladder, fault
//! tracker, checkpoint store, and replay buffer are shared with
//! `crate::engine_threaded` verbatim. A hostile peer (wrong key, replayed
//! or truncated handshake, downgrade attempt) is dropped before any
//! iteration state is exchanged and the acceptor keeps serving honest
//! workers.
//!
//! A [`crate::fault::CorruptionConfig`] pinned to a wire-level
//! [`crate::fault::CorruptionKind`] arms seeded [`WireChaos`] interceptors
//! at the coordinator's side of every connection — conceptually the
//! coordinator's NIC boundary, covering both directions: outgoing command
//! frames and incoming reply payloads. Truncated frames keep a coherent
//! length prefix but an impossible CRC, so the receiver `Nak`s and the
//! sender retransmits the cached clean bytes; duplicates are absorbed by
//! the receivers' duplicate guards; reordered replies are held and
//! delivered after their successor. The iterate stream therefore stays
//! bit-identical to a clean run while every injection is counted and
//! detected.
//!
//! Faults here are real: a scripted crash is a `SIGKILL` delivered to the
//! live worker process mid-iteration (`Child::kill`), a partition window
//! tears down the affected TCP connections so the workers must
//! reconnect-with-backoff, and liveness is `Child::try_wait` — the actual
//! OS process table, not a thread flag. Recovery is the same
//! checkpoint-restart protocol: the ladder declares the silent process
//! dead, [`crate::fault::FaultTracker`] decides respawn-vs-evict, and a
//! respawned process is rebuilt from the last verified snapshot
//! ([`crate::wire::NodeCmd::Restore`]) plus input replay, bit-identical to
//! the state the killed process would have held.

use std::cell::RefCell;
use std::collections::HashSet;
use std::io::{ErrorKind, Read};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

use ufc_core::engine::{drive, BlockResiduals, IterationObserver, Transport};
use ufc_core::telemetry::{IntegrityCounters, ObserverChain, TelemetryCollector, TrafficCounters};
use ufc_core::{AdmgSettings, BlockKind, BlockSchedule, CoreError};
use ufc_model::UfcInstance;

use crate::coordinator::{
    account_stragglers, column_of, finish, max_latency, record_a_traffic, record_control,
    record_lambda_traffic, reduce_residuals, replay_entries, row_of, HistoryEntry,
};
use crate::fault::{
    CorruptionConfig, FaultPlan, FaultTracker, IntegrityState, NodeId, Resolution, WireChaos,
    WireVerdict,
};
use crate::message::Message;
use crate::node::{DatacenterNode, NodeResiduals};
use crate::rng::SplitMix64;
use crate::runtime::{DistRunReport, SocketOptions};
use crate::snapshot::{CheckpointStore, DatacenterSnapshot, FrontendSnapshot};
use crate::stats::{estimated_wan_seconds_live, MessageStats};
use crate::supervision::{gather_phase, Reply};
use crate::wire::{
    process_of, sha256, verify_auth_hello, AuthKey, FrameBuffer, NodeCmd, RunConfig, WireFrame,
};

/// How long the coordinator waits for a spawned worker to complete the
/// `Hello`/`Welcome` handshake before declaring the spawn failed. Covers
/// process startup plus the worker's own connect backoff.
const REGISTRATION_DEADLINE: Duration = Duration::from_secs(10);

/// Grace period for workers to exit after a `Shutdown` frame before the
/// coordinator falls back to `SIGKILL` at teardown.
const EXIT_GRACE: Duration = Duration::from_secs(2);

/// Runs the socket engine under a fault plan. A trivial plan reduces to
/// the clean multi-process runtime: no kills, no drops, and a report
/// bit-identical to the lockstep engine's.
pub(crate) fn run_socket_engine(
    settings: &AdmgSettings,
    instance: &UfcInstance,
    active_mu: bool,
    active_nu: bool,
    plan: FaultPlan,
    options: &SocketOptions,
    observer: &mut dyn IterationObserver,
) -> Result<DistRunReport, CoreError> {
    let tolerances = settings.scaled_tolerances(instance);
    let mut sup = SocketSupervisor::new(instance, *settings, active_mu, active_nu, plan, options)?;
    let mut collector = settings.telemetry.then(TelemetryCollector::default);
    let outcome = match collector.as_mut() {
        Some(c) => {
            let mut chain = ObserverChain(&mut *c, observer);
            drive(&mut sup, settings, tolerances, &mut chain)
        }
        None => drive(&mut sup, settings, tolerances, observer),
    }
    .and_then(|outcome| {
        sup.final_gather(outcome.iterations)
            .map(|(lambda_rows, mu, d)| (outcome, lambda_rows, mu, d))
    });
    // Extract everything the report needs before the supervisor is consumed
    // by shutdown; the error path still tears down every worker process.
    let stats = sup.stats;
    let fault_report = sup.tracker.report.clone();
    let plan_trivial = sup.tracker.plan().is_trivial();
    let evicted = sup.tracker.evicted_mask();
    let stall_phases = sup.stall_phases;
    let mut counters = sup.integrity.counters;
    let integrity_active = sup.integrity.active();
    let wire_shared = sup.wire_shared.clone();
    let shutdown = sup.shutdown();
    // With every pump joined by shutdown, the wire-chaos counters are
    // final: fold them into the run's integrity accounting, and let a
    // pump's typed error (reply retransmit budget exhausted on a real
    // connection) outrank the dead-node verdict its silence produced.
    if let Some(shared) = &wire_shared {
        if let Ok(wire) = shared.counters.lock() {
            counters.corruptions_injected += wire.corruptions_injected;
            counters.corruptions_detected += wire.corruptions_detected;
            counters.checksum_retransmissions += wire.checksum_retransmissions;
        }
    }
    let socket_activity = counters.reconnects > 0 || counters.dead_node_declarations > 0;
    let integrity =
        (integrity_active || wire_shared.is_some() || socket_activity).then_some(counters);
    let (outcome, lambda_rows, mu, d) = outcome.map_err(|e| {
        wire_shared
            .as_ref()
            .and_then(|shared| shared.error.lock().ok().and_then(|mut slot| slot.take()))
            .unwrap_or(e)
    })?;
    shutdown?;

    let (point, breakdown) = finish(instance, lambda_rows, mu, d, !active_nu)?;
    let estimated = estimated_wan_seconds_live(outcome.iterations, &instance.latency_s, &evicted)
        + fault_report.downtime_seconds
        + fault_report.straggler_seconds
        + stall_phases * max_latency(instance, &evicted);
    let report_fault = !plan_trivial || fault_report.checkpoints_taken > 0;
    let telemetry = collector.map(|c| {
        let mut t = c.into_telemetry();
        // Solver counters stay zero: the per-node kernels live in other OS
        // processes. Use the lockstep engine (bit-identical) to observe the
        // solver layer.
        t.traffic = Some(TrafficCounters {
            data_messages: stats.data_messages as u64,
            control_messages: stats.control_messages as u64,
            total_bytes: stats.total_bytes as u64,
            retransmissions: 0,
        });
        if report_fault {
            t.fault = Some(fault_report.counters());
        }
        t.integrity = integrity;
        t
    });
    Ok(DistRunReport {
        point,
        breakdown,
        iterations: outcome.iterations,
        converged: outcome.converged,
        stats,
        estimated_wan_seconds: estimated,
        retransmissions: 0,
        fault: report_fault.then_some(fault_report),
        integrity,
        telemetry,
    })
}

/// A completed handshake delivered by the acceptor thread: the stream the
/// coordinator sends commands on, plus the pump thread that is already
/// forwarding the worker's replies.
struct Registration {
    process: usize,
    incarnation: u32,
    stream: TcpStream,
    pump: JoinHandle<()>,
}

/// State shared between the supervisor and every pump when wire-level
/// chaos is armed: the fold-at-the-end counters and the first typed error
/// a pump hit (a reply frame that stayed corrupt past the retransmit
/// budget).
#[derive(Default)]
struct WireShared {
    counters: Mutex<IntegrityCounters>,
    error: Mutex<Option<CoreError>>,
}

/// Deterministic per-connection RNG salt: process index × direction, so
/// every pump and every egress interceptor draws an independent but
/// reproducible chaos stream from one [`CorruptionConfig::seed`].
fn wire_salt(process: usize, ingress: bool) -> u64 {
    (2 * process as u64 + u64::from(ingress) + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Everything the acceptor thread needs to complete a handshake: the
/// legacy session check, the optional challenge–response key (plus the
/// run-config digest the MAC binds), and the ingress-chaos plumbing handed
/// to each validated connection's pump.
struct AcceptorState {
    session: u64,
    welcome: Arc<Vec<u8>>,
    config_digest: [u8; 32],
    auth: Option<AuthKey>,
    wire: Option<WireIngressSetup>,
}

/// Ingress-side wire-chaos plumbing, cloned into each pump at handshake.
struct WireIngressSetup {
    corruption: CorruptionConfig,
    shared: Arc<WireShared>,
    last_sent: Vec<Arc<Mutex<Vec<u8>>>>,
}

/// Per-pump wire-chaos state (only allocated when a wire-level kind is
/// pinned): the ingress interceptor, the cached clean bytes of the last
/// command sent on this connection (for `Nak`-triggered resends), the
/// shared counters/error slot, and the per-frame retransmit budget.
struct PumpWire {
    chaos: WireChaos,
    last_sent: Arc<Mutex<Vec<u8>>>,
    shared: Arc<WireShared>,
    max_retransmits: u32,
}

/// The supervising coordinator of the multi-process runtime.
struct SocketSupervisor<'a> {
    instance: &'a UfcInstance,
    settings: AdmgSettings,
    active_mu: bool,
    active_nu: bool,
    m: usize,
    n: usize,
    processes: usize,
    worker_path: PathBuf,
    addr: String,
    session: u64,
    tracker: FaultTracker,
    store: CheckpointStore,
    history: Vec<HistoryEntry>,
    reply_rx: Receiver<Reply>,
    reg_rx: Receiver<Registration>,
    /// Live worker processes, one slot per process index. `RefCell`
    /// because liveness probing (`try_wait`) needs `&mut Child` from
    /// inside the gather ladder's `Fn` closure.
    children: Vec<RefCell<Option<Child>>>,
    /// Command streams to the workers (`None` while a worker is down or
    /// its connection is dropped).
    conns: Vec<Option<TcpStream>>,
    incarnations: Vec<u32>,
    pumps: Vec<JoinHandle<()>>,
    acceptor: Option<JoinHandle<()>>,
    acceptor_stop: Arc<AtomicBool>,
    /// Scripted kill-iterations per global node id, consumed as they fire.
    remaining_crashes: Vec<Vec<usize>>,
    stats: MessageStats,
    integrity: IntegrityState,
    /// Per-process egress (command-direction) chaos interceptors.
    /// `RefCell` because `send_node` draws from inside `&self` contexts.
    egress_chaos: Vec<RefCell<Option<WireChaos>>>,
    /// Per-connection cache of the last clean command bytes, shared with
    /// the pump so a worker `Nak` can be answered with a clean resend.
    last_sent: Vec<Arc<Mutex<Vec<u8>>>>,
    /// Chaos counters + error slot shared with the pumps; `Some` iff a
    /// wire-level corruption kind is armed.
    wire_shared: Option<Arc<WireShared>>,
    /// `--auth-key` forwarded to spawned workers when the transport is
    /// authenticated.
    auth_hex: Option<String>,
    suspect: Option<NodeId>,
    timeout: Duration,
    rounds: u32,
    checkpoint_interval: usize,
    stall_phases: f64,
    // Per-iteration scratch, produced by one phase and consumed by the next.
    rows: Vec<Vec<f64>>,
    a_cols: Vec<Vec<f64>>,
    dc_residuals: Vec<Option<NodeResiduals>>,
    readmitted_now: Vec<usize>,
    membership_changed: bool,
    node_count: usize,
}

impl<'a> SocketSupervisor<'a> {
    fn new(
        instance: &'a UfcInstance,
        settings: AdmgSettings,
        active_mu: bool,
        active_nu: bool,
        plan: FaultPlan,
        options: &SocketOptions,
    ) -> Result<Self, CoreError> {
        let m = instance.m_frontends();
        let n = instance.n_datacenters();
        let processes = if options.processes == 0 {
            m + n
        } else {
            options.processes
        };
        if processes > m + n {
            return Err(CoreError::invalid_config(format!(
                "{processes} worker processes for {} nodes",
                m + n
            )));
        }
        if (plan.crash_count() > 0 || plan.partition_count() > 0) && processes != m + n {
            return Err(CoreError::invalid_config(format!(
                "process-level fault injection needs one process per node \
                 ({} for this instance), got {processes}",
                m + n
            )));
        }
        let wire_kind = plan
            .corruption
            .as_ref()
            .and_then(|c| c.kind.filter(|k| k.is_wire_level()));
        if wire_kind.is_some() {
            // The Nak/resend repair protocol relies on at most one command
            // being outstanding per connection: a co-hosted node (or a
            // replay burst after a crash) lets a later frame overtake the
            // Nak, so the cached clean resend would repair the wrong one.
            if processes != m + n {
                return Err(CoreError::invalid_config(format!(
                    "wire-level chaos needs one process per node ({} for \
                     this instance), got {processes}",
                    m + n
                )));
            }
            if !plan.is_trivial() {
                return Err(CoreError::invalid_config(
                    "wire-level chaos cannot be combined with \
                     crash/straggler/partition plans",
                ));
            }
        }
        if !options.bind.is_loopback() && options.auth.is_none() {
            return Err(CoreError::invalid_config(format!(
                "refusing to listen on non-loopback {:?} without a shared \
                 authentication key (SocketOptions::with_auth)",
                options.bind.listen
            )));
        }
        let listener = TcpListener::bind(&options.bind.listen)
            .map_err(|e| CoreError::node_failure("coordinator", 0, format!("bind: {e}")))?;
        let local = listener
            .local_addr()
            .map_err(|e| CoreError::node_failure("coordinator", 0, format!("local_addr: {e}")))?
            .to_string();
        let addr = options.bind.advertise.clone().unwrap_or(local);
        let session = session_id();
        let config_bytes = RunConfig {
            instance: instance.clone(),
            settings,
            active_mu,
            active_nu,
            processes,
        }
        .encode();
        // The digest the challenge MAC binds: a worker answering this
        // coordinator commits to this exact run configuration, and checks
        // the later Welcome against the same digest.
        let config_digest = sha256(&config_bytes);
        let welcome: Arc<Vec<u8>> = Arc::new(
            WireFrame::Welcome {
                config: config_bytes,
            }
            .to_wire(),
        );
        let wire_shared = wire_kind.map(|_| Arc::new(WireShared::default()));
        let last_sent: Vec<Arc<Mutex<Vec<u8>>>> = (0..processes)
            .map(|_| Arc::new(Mutex::new(Vec::new())))
            .collect();
        let egress_chaos: Vec<RefCell<Option<WireChaos>>> = (0..processes)
            .map(|p| {
                RefCell::new(WireChaos::egress(
                    plan.corruption.as_ref(),
                    wire_salt(p, false),
                ))
            })
            .collect();
        let (reply_tx, reply_rx) = channel::<Reply>();
        let (reg_tx, reg_rx) = channel::<Registration>();
        let acceptor_stop = Arc::new(AtomicBool::new(false));
        let acceptor = spawn_acceptor(
            listener,
            AcceptorState {
                session,
                welcome,
                config_digest,
                auth: options.auth.clone(),
                wire: wire_shared.as_ref().map(|shared| WireIngressSetup {
                    corruption: plan.corruption.expect("wire kind implies corruption"),
                    shared: Arc::clone(shared),
                    last_sent: last_sent.clone(),
                }),
            },
            reply_tx,
            reg_tx,
            Arc::clone(&acceptor_stop),
        );
        let timeout = plan.phase_timeout;
        let rounds = plan.backoff_rounds;
        let checkpoint_interval = plan.checkpoint_interval;
        let integrity = IntegrityState::new(plan.corruption.as_ref(), settings.verify_checksums);
        let mut remaining_crashes = Vec::with_capacity(m + n);
        for i in 0..m {
            remaining_crashes.push(plan.crash_iterations_for(NodeId::Frontend(i)));
        }
        for j in 0..n {
            remaining_crashes.push(plan.crash_iterations_for(NodeId::Datacenter(j)));
        }
        let mut sup = SocketSupervisor {
            instance,
            settings,
            active_mu,
            active_nu,
            m,
            n,
            processes,
            worker_path: options.worker.clone(),
            addr,
            session,
            tracker: FaultTracker::new(plan, m, n),
            store: CheckpointStore::new(m, n),
            history: Vec::new(),
            reply_rx,
            reg_rx,
            children: (0..processes).map(|_| RefCell::new(None)).collect(),
            conns: (0..processes).map(|_| None).collect(),
            incarnations: vec![0; processes],
            pumps: Vec::new(),
            acceptor: Some(acceptor),
            acceptor_stop,
            remaining_crashes,
            stats: MessageStats::default(),
            integrity,
            egress_chaos,
            last_sent,
            wire_shared,
            auth_hex: options.auth.as_ref().map(AuthKey::to_hex),
            suspect: None,
            timeout,
            rounds,
            checkpoint_interval,
            stall_phases: 0.0,
            rows: Vec::new(),
            a_cols: Vec::new(),
            dc_residuals: Vec::new(),
            readmitted_now: Vec::new(),
            membership_changed: false,
            node_count: m + n,
        };
        for p in 0..processes {
            sup.spawn_process(p)?;
        }
        for p in 0..processes {
            sup.await_registration(p)?;
        }
        Ok(sup)
    }

    /// Launches the worker binary for process slot `p` at its current
    /// incarnation. Registration happens asynchronously via the acceptor.
    fn spawn_process(&mut self, p: usize) -> Result<(), CoreError> {
        let mut command = Command::new(&self.worker_path);
        command
            .arg("--connect")
            .arg(&self.addr)
            .arg("--process")
            .arg(p.to_string())
            .arg("--session")
            .arg(self.session.to_string())
            .arg("--incarnation")
            .arg(self.incarnations[p].to_string());
        if let Some(hex) = &self.auth_hex {
            command.arg("--auth-key").arg(hex);
        }
        let child = command
            .stdin(Stdio::null())
            .stdout(Stdio::null())
            .spawn()
            .map_err(|e| {
                CoreError::node_failure(
                    format!("process-{p}"),
                    0,
                    format!("cannot spawn {}: {e}", self.worker_path.display()),
                )
            })?;
        *self.children[p].borrow_mut() = Some(child);
        Ok(())
    }

    /// Blocks until process `p` (at its current incarnation) completes the
    /// handshake, installing any other registrations that arrive meanwhile.
    fn await_registration(&mut self, p: usize) -> Result<(), CoreError> {
        let deadline = Instant::now() + REGISTRATION_DEADLINE;
        while self.conns[p].is_none() {
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return Err(CoreError::node_failure(
                    format!("process-{p}"),
                    0,
                    "worker did not complete the handshake before the deadline",
                ));
            }
            match self.reg_rx.recv_timeout(remaining) {
                Ok(reg) => self.install_registration(reg),
                Err(_) => {
                    return Err(CoreError::node_failure(
                        format!("process-{p}"),
                        0,
                        "worker did not complete the handshake before the deadline",
                    ))
                }
            }
        }
        Ok(())
    }

    /// Adopts a completed handshake — unless it is stale (an old
    /// incarnation of a process we have since killed and respawned, or a
    /// straggler arriving after shutdown drained the connection table).
    fn install_registration(&mut self, reg: Registration) {
        if reg.process >= self.conns.len() || reg.incarnation != self.incarnations[reg.process] {
            self.pumps.push(reg.pump);
            let _ = reg.stream.shutdown(Shutdown::Both);
            return;
        }
        self.conns[reg.process] = Some(reg.stream);
        self.pumps.push(reg.pump);
    }

    /// Installs any registrations already queued (reconnects after a
    /// partition heal can complete while the coordinator is mid-phase).
    fn drain_registrations(&mut self) {
        while let Ok(reg) = self.reg_rx.try_recv() {
            self.install_registration(reg);
        }
    }

    /// Sends a command to the process hosting `node`. Errors are
    /// deliberately swallowed — a dead or dropped connection surfaces as
    /// silence in the gather ladder, which owns the failure verdict. With
    /// wire chaos armed, the clean bytes are cached first (so a worker
    /// `Nak` can be answered by the pump with an uncorrupted resend) and
    /// the egress interceptor then gets one draw at the outgoing frame.
    fn send_node(&self, node: usize, cmd: NodeCmd) {
        let p = process_of(node, self.processes);
        if let Some(conn) = &self.conns[p] {
            let mut bytes = WireFrame::Cmd { node, cmd }.to_wire();
            let mut copies = 1usize;
            if let Some(chaos) = self.egress_chaos[p].borrow_mut().as_mut() {
                if let Ok(mut cache) = self.last_sent[p].lock() {
                    cache.clear();
                    cache.extend_from_slice(&bytes);
                }
                let verdict = chaos.next_egress(&mut bytes);
                if verdict == WireVerdict::Duplicated {
                    copies = 2;
                }
                if let (Some(shared), true) = (&self.wire_shared, verdict != WireVerdict::Clean) {
                    if let Ok(mut counters) = shared.counters.lock() {
                        counters.corruptions_injected += 1;
                        if verdict == WireVerdict::Duplicated {
                            // The worker's duplicate guard drops the copy
                            // unconditionally; detection is structural.
                            counters.corruptions_detected += 1;
                        }
                    }
                }
            }
            let mut writer: &TcpStream = conn;
            for _ in 0..copies {
                let _ = std::io::Write::write_all(&mut writer, &bytes);
            }
        }
    }

    /// Liveness straight from the OS process table — unless a pump parked
    /// a typed wire error (retransmit budget exhausted), in which case the
    /// node is reported dead so the gather ladder stops extending for a
    /// connection that will never deliver and the typed error surfaces.
    fn alive(&self, node: NodeId) -> bool {
        if self
            .wire_shared
            .as_ref()
            .is_some_and(|shared| shared.error.lock().map_or(true, |slot| slot.is_some()))
        {
            return false;
        }
        let id = match node {
            NodeId::Frontend(i) => i,
            NodeId::Datacenter(j) => self.m + j,
        };
        let p = process_of(id, self.processes);
        self.children[p]
            .borrow_mut()
            .as_mut()
            .is_some_and(|child| matches!(child.try_wait(), Ok(None)))
    }

    /// Delivers a real `SIGKILL` to process `p` and reaps it.
    fn kill_process(&mut self, p: usize) {
        if let Some(conn) = self.conns[p].take() {
            let _ = conn.shutdown(Shutdown::Both);
        }
        if let Some(mut child) = self.children[p].borrow_mut().take() {
            let _ = child.kill();
            let _ = child.wait();
        }
    }

    /// Fires this iteration's scripted front-end kills (before the predict
    /// commands go out, so the victim dies mid-iteration).
    fn inject_frontend_crashes(&mut self, k: usize) {
        for i in 0..self.m {
            if self.remaining_crashes[i].first() == Some(&k) {
                self.kill_process(process_of(i, self.processes));
                self.remaining_crashes[i].retain(|&it| it > k);
            }
        }
    }

    /// Fires this iteration's scripted datacenter kills.
    fn inject_datacenter_crashes(&mut self, k: usize) {
        for j in 0..self.n {
            if self.tracker.is_evicted(j) {
                continue;
            }
            let id = self.m + j;
            if self.remaining_crashes[id].first() == Some(&k) {
                self.kill_process(process_of(id, self.processes));
                self.remaining_crashes[id].retain(|&it| it > k);
            }
        }
    }

    /// At a partition window's opening iteration, tears down the affected
    /// connections (the workers survive and reconnect with backoff — the
    /// socket spelling of a healed WAN partition).
    fn simulate_partition_drops(&mut self, k: usize) -> Result<(), CoreError> {
        let plan = self.tracker.plan();
        if !plan.partition_active(k) || (k > 1 && plan.partition_active(k - 1)) {
            return Ok(());
        }
        let mut affected: Vec<usize> = Vec::new();
        for i in 0..self.m {
            for j in 0..self.n {
                if plan.is_partitioned(i, j, k) {
                    for id in [i, self.m + j] {
                        let p = process_of(id, self.processes);
                        if !affected.contains(&p) {
                            affected.push(p);
                        }
                    }
                }
            }
        }
        for &p in &affected {
            if let Some(conn) = self.conns[p].take() {
                let _ = conn.shutdown(Shutdown::Both);
            }
        }
        for &p in &affected {
            self.await_registration(p)?;
            self.integrity.counters.reconnects += 1;
        }
        Ok(())
    }

    /// Kills (if needed), respawns, and re-registers the process hosting
    /// `node` at a bumped incarnation.
    fn respawn_process_for(&mut self, node: usize, k: usize) -> Result<(), CoreError> {
        let p = process_of(node, self.processes);
        self.kill_process(p);
        self.incarnations[p] += 1;
        self.remaining_crashes[node].retain(|&it| it > k);
        self.spawn_process(p)?;
        self.await_registration(p)
    }

    /// Respawns front-end `i` from its last checkpoint, replays the
    /// buffered inputs since, and re-applies this iteration's membership
    /// deltas — the socket spelling of the threaded engine's
    /// `respawn_frontend`.
    fn respawn_frontend(&mut self, i: usize, k: usize) -> Result<(), CoreError> {
        self.respawn_process_for(i, k)?;
        let mut base = 0usize;
        if let Some((it, blob)) = self.store.frontend(i) {
            let blob = blob.to_vec();
            base = it;
            self.send_node(i, NodeCmd::Restore { blob });
        }
        let mut replayed = 0usize;
        for entry in replay_entries(&self.history, base, k) {
            self.send_node(
                i,
                NodeCmd::Predict {
                    iteration: entry.iteration,
                },
            );
            self.send_node(
                i,
                NodeCmd::Correct {
                    iteration: entry.iteration,
                    a_row: row_of(&entry.a_cols, i),
                },
            );
            replayed += 1;
        }
        self.tracker.report.recomputed_iterations += replayed;
        for &j in &self.readmitted_now {
            self.send_node(
                i,
                NodeCmd::Membership {
                    datacenter: j,
                    evict: false,
                },
            );
        }
        Ok(())
    }

    /// Respawns datacenter `j` from its last checkpoint and replays the
    /// buffered λ̃ columns since.
    fn respawn_datacenter(&mut self, j: usize, k: usize) -> Result<(), CoreError> {
        let id = self.m + j;
        self.respawn_process_for(id, k)?;
        let mut base = 0usize;
        if let Some((it, blob)) = self.store.datacenter(j) {
            let blob = blob.to_vec();
            base = it;
            self.send_node(id, NodeCmd::Restore { blob });
        }
        let mut replayed = 0usize;
        for entry in replay_entries(&self.history, base, k) {
            self.send_node(
                id,
                NodeCmd::Process {
                    iteration: entry.iteration,
                    column: column_of(&entry.rows, j),
                },
            );
            replayed += 1;
        }
        self.tracker.report.recomputed_iterations += replayed;
        Ok(())
    }

    /// Evicts datacenter `j`: reaps the dead process and broadcasts the
    /// membership change to every front-end.
    fn evict_datacenter(&mut self, j: usize) {
        self.kill_process(process_of(self.m + j, self.processes));
        for i in 0..self.m {
            self.send_node(
                i,
                NodeCmd::Membership {
                    datacenter: j,
                    evict: true,
                },
            );
            self.stats.record(&Message::Membership {
                datacenter: j,
                evict: true,
            });
        }
    }

    /// One checkpoint round, identical accounting to the threaded engine's.
    fn checkpoint_round(&mut self, k: usize) -> Result<(), CoreError> {
        let (m, n) = (self.m, self.n);
        let mut pending: HashSet<NodeId> = (0..m).map(NodeId::Frontend).collect();
        for i in 0..m {
            self.send_node(i, NodeCmd::Snapshot { iteration: k });
        }
        for j in 0..n {
            if !self.tracker.is_evicted(j) {
                self.send_node(m + j, NodeCmd::Snapshot { iteration: k });
                pending.insert(NodeId::Datacenter(j));
            }
        }
        let mut fe_blobs: Vec<Option<Vec<u8>>> = vec![None; m];
        let mut dc_blobs: Vec<Option<Vec<u8>>> = vec![None; n];
        let missing = gather_phase(
            &self.reply_rx,
            &mut pending,
            self.timeout,
            self.rounds,
            |node| self.alive(node),
            |reply| match reply {
                Reply::FeSnapshot { i, iteration, blob } if iteration == k => {
                    fe_blobs[i] = Some(blob);
                    Some(NodeId::Frontend(i))
                }
                Reply::DcSnapshot { j, iteration, blob } if iteration == k => {
                    dc_blobs[j] = Some(blob);
                    Some(NodeId::Datacenter(j))
                }
                _ => None,
            },
        );
        if let Some(node) = missing.first() {
            return Err(CoreError::node_failure(
                node.to_string(),
                k,
                "no reply to the checkpoint request",
            ));
        }
        for (i, blob) in fe_blobs.into_iter().enumerate() {
            let blob = blob.ok_or_else(|| {
                CoreError::node_failure(
                    NodeId::Frontend(i).to_string(),
                    k,
                    "checkpoint blob missing after gather",
                )
            })?;
            self.stats.record(&Message::Checkpoint {
                node: i,
                payload_bytes: blob.len(),
            });
            self.store.put_frontend(i, k, blob);
        }
        for (j, blob) in dc_blobs.into_iter().enumerate() {
            let Some(blob) = blob else { continue };
            self.stats.record(&Message::Checkpoint {
                node: m + j,
                payload_bytes: blob.len(),
            });
            self.store.put_datacenter(j, k, blob);
        }
        self.tracker.report.checkpoints_taken += 1;
        self.history.clear();
        Ok(())
    }

    /// Ships `Finish` to every live worker and gathers the final iterate.
    #[allow(clippy::type_complexity)]
    fn final_gather(
        &mut self,
        iterations: usize,
    ) -> Result<(Vec<Vec<f64>>, Vec<f64>, Vec<f64>), CoreError> {
        let (m, n) = (self.m, self.n);
        let mut pending: HashSet<NodeId> = (0..m).map(NodeId::Frontend).collect();
        for i in 0..m {
            self.send_node(i, NodeCmd::Finish);
        }
        for j in 0..n {
            if !self.tracker.is_evicted(j) {
                self.send_node(m + j, NodeCmd::Finish);
                pending.insert(NodeId::Datacenter(j));
            }
        }
        let mut lambda_rows: Vec<Vec<f64>> = vec![Vec::new(); m];
        let mut mu = vec![0.0; n];
        let mut d = vec![0.0; n];
        let missing = gather_phase(
            &self.reply_rx,
            &mut pending,
            self.timeout,
            self.rounds,
            |node| self.alive(node),
            |reply| match reply {
                Reply::FeFinal { i, lambda } => {
                    lambda_rows[i] = lambda;
                    Some(NodeId::Frontend(i))
                }
                Reply::DcFinal { j, mu: v, d: dv } => {
                    mu[j] = v;
                    d[j] = dv;
                    Some(NodeId::Datacenter(j))
                }
                _ => None,
            },
        );
        if let Some(node) = missing.first() {
            return Err(CoreError::node_failure(
                node.to_string(),
                iterations,
                "no reply to the final gather",
            ));
        }
        Ok((lambda_rows, mu, d))
    }

    /// Orderly teardown on every exit path: `Shutdown` frames, forced
    /// socket closes (so pump threads exit), acceptor stop, pump joins,
    /// then a bounded wait for each worker process with `SIGKILL` as the
    /// backstop.
    fn shutdown(mut self) -> Result<(), CoreError> {
        for conn in self.conns.iter().flatten() {
            let mut writer: &TcpStream = conn;
            let _ = std::io::Write::write_all(&mut writer, &WireFrame::Shutdown.to_wire());
        }
        for conn in self.conns.drain(..).flatten() {
            let _ = conn.shutdown(Shutdown::Both);
        }
        self.acceptor_stop.store(true, Ordering::SeqCst);
        // The acceptor is blocked in accept(); poke it awake.
        let _ = TcpStream::connect(&self.addr);
        let mut first_panic = None;
        if let Some(handle) = self.acceptor.take() {
            if handle.join().is_err() {
                first_panic = Some(CoreError::node_failure(
                    "coordinator",
                    0,
                    "acceptor thread panicked during shutdown",
                ));
            }
        }
        self.drain_registrations();
        for pump in self.pumps.drain(..) {
            if pump.join().is_err() && first_panic.is_none() {
                first_panic = Some(CoreError::node_failure(
                    "coordinator",
                    0,
                    "pump thread panicked during shutdown",
                ));
            }
        }
        let deadline = Instant::now() + EXIT_GRACE;
        for cell in &self.children {
            let Some(mut child) = cell.borrow_mut().take() else {
                continue;
            };
            loop {
                match child.try_wait() {
                    Ok(Some(_)) => break,
                    Ok(None) if Instant::now() < deadline => {
                        std::thread::sleep(Duration::from_millis(10));
                    }
                    _ => {
                        let _ = child.kill();
                        let _ = child.wait();
                        break;
                    }
                }
            }
        }
        first_panic.map_or(Ok(()), Err)
    }
}

impl Transport for SocketSupervisor<'_> {
    fn schedule(&self) -> BlockSchedule {
        BlockSchedule::for_instance(self.instance)
    }

    fn begin_iteration(&mut self, k: usize) -> Result<(), CoreError> {
        self.drain_registrations();
        self.membership_changed = false;
        let readmitted_now = self.tracker.probe_readmissions();
        for &j in &readmitted_now {
            // The respawned process builds a fresh datacenter kernel at
            // Welcome — exactly the state the threaded engine constructs —
            // so only the coordinator-side snapshot needs producing here.
            let node = DatacenterNode::new(
                self.instance,
                j,
                &self.settings,
                self.active_mu,
                self.active_nu,
            );
            self.store
                .put_datacenter(j, k - 1, node.snapshot().to_bytes());
            let id = self.m + j;
            let p = process_of(id, self.processes);
            self.incarnations[p] += 1;
            self.remaining_crashes[id].retain(|&it| it >= k);
            self.spawn_process(p)?;
            self.await_registration(p)?;
            for i in 0..self.m {
                self.send_node(
                    i,
                    NodeCmd::Membership {
                        datacenter: j,
                        evict: false,
                    },
                );
                self.stats.record(&Message::Membership {
                    datacenter: j,
                    evict: false,
                });
            }
            self.membership_changed = true;
        }
        self.readmitted_now = readmitted_now;
        account_stragglers(&mut self.tracker, self.m, self.n, k);
        if self.tracker.plan().partition_active(k) {
            self.stall_phases += 2.0;
        }
        self.simulate_partition_drops(k)?;
        Ok(())
    }

    fn predict_lambda(&mut self, k: usize) -> Result<(), CoreError> {
        self.inject_frontend_crashes(k);
        let m = self.m;
        for i in 0..m {
            self.send_node(i, NodeCmd::Predict { iteration: k });
        }
        let mut rows: Vec<Option<Vec<f64>>> = vec![None; m];
        let mut errors: Vec<Option<CoreError>> = vec![None; m];
        let mut pending: HashSet<NodeId> = (0..m).map(NodeId::Frontend).collect();
        // One broad gather loop, shared shape with the threaded engine:
        // dead processes surface per-ladder while live stragglers stay
        // pending, and a respawned process rejoins the same pending set.
        let mut respawned: HashSet<NodeId> = HashSet::new();
        loop {
            let missing = gather_phase(
                &self.reply_rx,
                &mut pending,
                self.timeout,
                self.rounds,
                |node| self.alive(node),
                |reply| match reply {
                    Reply::Lambda { i, iteration, row } if iteration == k => {
                        rows[i] = Some(row);
                        Some(NodeId::Frontend(i))
                    }
                    Reply::NodeError {
                        node: node @ NodeId::Frontend(i),
                        iteration,
                        error,
                    } if iteration == k => {
                        errors[i] = Some(error);
                        Some(node)
                    }
                    _ => None,
                },
            );
            if missing.is_empty() && pending.is_empty() {
                break;
            }
            for node in missing {
                let NodeId::Frontend(i) = node else {
                    unreachable!("predict phase only waits on front-ends")
                };
                if errors[i].is_some() {
                    // The worker shipped a typed rejection and exited; do
                    // not respawn into the same poison.
                    continue;
                }
                self.integrity.counters.dead_node_declarations += 1;
                if !respawned.insert(node) {
                    return Err(CoreError::node_failure(
                        node.to_string(),
                        k,
                        "no reply after checkpoint respawn",
                    ));
                }
                match self.tracker.resolve_crash(node, k)? {
                    Resolution::Recovered { .. } => {
                        self.respawn_frontend(i, k)?;
                        self.send_node(i, NodeCmd::Predict { iteration: k });
                        pending.insert(node);
                    }
                    Resolution::Evicted { .. } => {
                        unreachable!("front-ends are never evicted")
                    }
                }
            }
        }
        if let Some(error) = errors.into_iter().flatten().next() {
            return Err(error);
        }
        let mut rows: Vec<Vec<f64>> = rows
            .into_iter()
            .enumerate()
            .map(|(i, row)| {
                row.ok_or_else(|| {
                    CoreError::node_failure(
                        NodeId::Frontend(i).to_string(),
                        k,
                        "prediction missing after gather",
                    )
                })
            })
            .collect::<Result<_, _>>()?;
        let phase_max = record_lambda_traffic(
            &mut self.stats,
            &mut self.tracker,
            None,
            &mut self.integrity,
            &mut rows,
            k,
        )?;
        self.stall_phases += (phase_max - 1) as f64;
        self.rows = rows;
        Ok(())
    }

    fn step_datacenters(&mut self, k: usize) -> Result<(), CoreError> {
        self.inject_datacenter_crashes(k);
        let (m, n) = (self.m, self.n);
        for j in 0..n {
            if self.tracker.is_evicted(j) {
                continue;
            }
            self.send_node(
                m + j,
                NodeCmd::Process {
                    iteration: k,
                    column: column_of(&self.rows, j),
                },
            );
        }
        let mut a_cols = vec![vec![0.0; m]; n];
        let mut d_vals = vec![0.0; n];
        let mut dc_residuals: Vec<Option<NodeResiduals>> = vec![None; n];
        let mut errors: Vec<Option<CoreError>> = vec![None; n];
        let mut pending: HashSet<NodeId> = (0..n)
            .filter(|&j| !self.tracker.is_evicted(j))
            .map(NodeId::Datacenter)
            .collect();
        let mut respawned: HashSet<NodeId> = HashSet::new();
        loop {
            let missing = gather_phase(
                &self.reply_rx,
                &mut pending,
                self.timeout,
                self.rounds,
                |node| self.alive(node),
                |reply| match reply {
                    Reply::DcStep {
                        j,
                        iteration,
                        a_tilde,
                        d,
                        residuals,
                    } if iteration == k => {
                        a_cols[j] = a_tilde;
                        d_vals[j] = d;
                        dc_residuals[j] = Some(residuals);
                        Some(NodeId::Datacenter(j))
                    }
                    Reply::NodeError {
                        node: node @ NodeId::Datacenter(j),
                        iteration,
                        error,
                    } if iteration == k => {
                        errors[j] = Some(error);
                        Some(node)
                    }
                    _ => None,
                },
            );
            if missing.is_empty() && pending.is_empty() {
                break;
            }
            for node in missing {
                let NodeId::Datacenter(j) = node else {
                    unreachable!("datacenter phase only waits on datacenters")
                };
                if errors[j].is_some() {
                    continue;
                }
                self.integrity.counters.dead_node_declarations += 1;
                if !respawned.insert(node) {
                    return Err(CoreError::node_failure(
                        node.to_string(),
                        k,
                        "no reply after checkpoint respawn",
                    ));
                }
                match self.tracker.resolve_crash(node, k)? {
                    Resolution::Recovered { .. } => {
                        self.respawn_datacenter(j, k)?;
                        self.send_node(
                            m + j,
                            NodeCmd::Process {
                                iteration: k,
                                column: column_of(&self.rows, j),
                            },
                        );
                        pending.insert(node);
                    }
                    Resolution::Evicted { .. } => {
                        self.evict_datacenter(j);
                        self.membership_changed = true;
                    }
                }
            }
        }
        if let Some(error) = errors.into_iter().flatten().next() {
            return Err(error);
        }
        let mut phase_max = 1usize;
        for j in 0..n {
            if dc_residuals[j].is_some() {
                phase_max = phase_max.max(record_a_traffic(
                    &mut self.stats,
                    &mut self.tracker,
                    None,
                    &mut self.integrity,
                    &mut a_cols[j],
                    j,
                    k,
                )?);
                // Storage-active datacenters report their corrected block
                // value on the control plane (same accounting as lockstep).
                if self
                    .instance
                    .storage
                    .as_ref()
                    .is_some_and(|sp| sp.active(j))
                {
                    self.stats.record(&Message::BlockReport {
                        datacenter: j,
                        block: BlockKind::Storage.wire_id(),
                        value: d_vals[j],
                    });
                }
            }
        }
        self.stall_phases += (phase_max - 1) as f64;
        self.a_cols = a_cols;
        self.dc_residuals = dc_residuals;
        Ok(())
    }

    fn correct(&mut self, k: usize) -> Result<BlockResiduals, CoreError> {
        let m = self.m;
        for i in 0..m {
            self.send_node(
                i,
                NodeCmd::Correct {
                    iteration: k,
                    a_row: row_of(&self.a_cols, i),
                },
            );
        }
        let mut fe_residuals: Vec<Option<NodeResiduals>> = vec![None; m];
        let mut pending: HashSet<NodeId> = (0..m).map(NodeId::Frontend).collect();
        let missing = gather_phase(
            &self.reply_rx,
            &mut pending,
            self.timeout,
            self.rounds,
            |node| self.alive(node),
            |reply| match reply {
                Reply::FeResidual {
                    i,
                    iteration,
                    residuals,
                } if iteration == k => {
                    fe_residuals[i] = Some(residuals);
                    Some(NodeId::Frontend(i))
                }
                _ => None,
            },
        );
        if let Some(node) = missing.first() {
            return Err(CoreError::node_failure(
                node.to_string(),
                k,
                "no reply in correction phase",
            ));
        }
        let fe_residuals: Vec<NodeResiduals> = fe_residuals
            .into_iter()
            .map(|r| r.unwrap_or_default())
            .collect();
        self.node_count = m + self.dc_residuals.iter().flatten().count();
        let (reduced, suspect) =
            reduce_residuals(&mut self.stats, &fe_residuals, &self.dc_residuals);
        self.suspect = suspect;
        Ok(reduced)
    }

    fn rollback(&mut self, _k: usize) -> Result<Option<usize>, CoreError> {
        self.integrity.counters.divergence_trips += 1;
        // Every live node needs a finite checkpoint before anything is
        // restored — a partial restore would leave the deployment
        // inconsistent, so decline instead.
        let mut base = usize::MAX;
        let mut fe_snaps = Vec::with_capacity(self.m);
        for i in 0..self.m {
            let Some((it, blob)) = self.store.frontend(i) else {
                return Ok(None);
            };
            let snap = FrontendSnapshot::from_bytes(blob)?;
            if !snap.is_finite() {
                return Ok(None);
            }
            base = base.min(it);
            fe_snaps.push(snap);
        }
        let mut dc_snaps: Vec<Option<Vec<u8>>> = Vec::with_capacity(self.n);
        for j in 0..self.n {
            if self.tracker.is_evicted(j) {
                dc_snaps.push(None);
                continue;
            }
            let Some((it, blob)) = self.store.datacenter(j) else {
                return Ok(None);
            };
            let snap = DatacenterSnapshot::from_bytes(blob)?;
            if !snap.is_finite() {
                return Ok(None);
            }
            base = base.min(it);
            dc_snaps.push(Some(blob.to_vec()));
        }
        // The worker processes are alive — the poison is in their state,
        // not their liveness — so restore in place over the live streams.
        // TCP ordering guarantees the Restore lands before any later
        // command. The live membership view stays authoritative over
        // whatever the snapshot recorded.
        let evicted = self.tracker.evicted_mask();
        for (i, mut snap) in fe_snaps.into_iter().enumerate() {
            snap.evicted.clone_from(&evicted);
            self.send_node(
                i,
                NodeCmd::Restore {
                    blob: snap.to_bytes(),
                },
            );
        }
        for (j, blob) in dc_snaps.into_iter().enumerate() {
            let Some(blob) = blob else { continue };
            self.send_node(self.m + j, NodeCmd::Restore { blob });
        }
        // Buffered inputs may hold the very payloads that poisoned the run;
        // never replay them into the restored state.
        self.history.clear();
        self.integrity.counters.rollbacks += 1;
        Ok(Some(base))
    }

    fn divergence_suspect(&self) -> Option<String> {
        self.suspect
            .map(|node| node.to_string())
            .or_else(|| self.integrity.last_corrupted.clone())
    }

    fn finish_iteration(&mut self, k: usize, stop: bool) -> Result<(), CoreError> {
        record_control(&mut self.stats, stop, self.node_count);
        self.history.push(HistoryEntry {
            iteration: k,
            rows: std::mem::take(&mut self.rows),
            a_cols: std::mem::take(&mut self.a_cols),
        });
        if !stop
            && (self.membership_changed
                || (self.checkpoint_interval > 0 && k.is_multiple_of(self.checkpoint_interval)))
        {
            self.checkpoint_round(k)?;
        }
        Ok(())
    }
}

/// A run-unique session id: stale workers from an earlier run (or another
/// concurrent test) fail the handshake instead of corrupting this one.
fn session_id() -> u64 {
    let nanos = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map_or(0, |d| d.as_nanos() as u64);
    nanos ^ (u64::from(std::process::id()) << 32)
}

/// Spawns the acceptor thread: accepts connections, runs the handshake
/// (legacy `Hello` session check, or challenge–response when a key is
/// configured), and hands each validated connection (plus its reply pump)
/// to the coordinator via `reg_tx`. A hostile or malformed peer is simply
/// dropped — the loop keeps serving honest workers.
fn spawn_acceptor(
    listener: TcpListener,
    state: AcceptorState,
    reply_tx: Sender<Reply>,
    reg_tx: Sender<Registration>,
    stop: Arc<AtomicBool>,
) -> JoinHandle<()> {
    std::thread::spawn(move || {
        // Challenge nonces only need per-connection uniqueness within this
        // session (replay protection); the session id already mixes in
        // wall-clock nanos and the coordinator pid. Not cryptographically
        // unpredictable — see the threat model in DESIGN.md §17.
        let mut nonce_rng = SplitMix64::new(state.session ^ 0xC4A1_1EE5_0C4A_1175);
        while !stop.load(Ordering::SeqCst) {
            let Ok((stream, _)) = listener.accept() else {
                continue;
            };
            if stop.load(Ordering::SeqCst) {
                break;
            }
            let Some(reg) = handshake(stream, &state, &mut nonce_rng, &reply_tx) else {
                continue;
            };
            if reg_tx.send(reg).is_err() {
                break;
            }
        }
    })
}

/// Reads exactly one decodable frame off a handshaking connection, or
/// `None` on timeout, EOF, framing desync (garbage before the magic, an
/// oversized length prefix), or a payload that fails its CRC.
fn read_one_frame(stream: &TcpStream, frames: &mut FrameBuffer) -> Option<WireFrame> {
    loop {
        match frames.next_frame() {
            Ok(Some(payload)) => return WireFrame::decode_payload(&payload).ok(),
            Ok(None) => {}
            Err(_) => return None,
        }
        let mut chunk = [0u8; 1024];
        let mut reader: &TcpStream = stream;
        let n = reader.read(&mut chunk).ok()?;
        if n == 0 {
            return None;
        }
        frames.push(&chunk[..n]);
    }
}

/// Coordinator side of one connection handshake. Returns `None` (dropping
/// the connection) on timeout, session mismatch, a malformed frame, or —
/// with authentication on — a failed challenge–response: a typed
/// [`CoreError::Unauthorized`] verdict is produced by
/// [`verify_auth_hello`] before any iteration state is exchanged, and the
/// hostile peer never sees a `Welcome`.
fn handshake(
    stream: TcpStream,
    state: &AcceptorState,
    nonce_rng: &mut SplitMix64,
    reply_tx: &Sender<Reply>,
) -> Option<Registration> {
    stream.set_nodelay(true).ok()?;
    stream.set_read_timeout(Some(Duration::from_secs(5))).ok()?;
    let mut frames = FrameBuffer::new();
    let (process, incarnation) = match &state.auth {
        None => {
            let WireFrame::Hello {
                session,
                process,
                incarnation,
            } = read_one_frame(&stream, &mut frames)?
            else {
                return None;
            };
            if session != state.session {
                return None;
            }
            (process, incarnation)
        }
        Some(key) => {
            let mut nonce = [0u8; 32];
            for word in 0..4 {
                nonce[word * 8..word * 8 + 8].copy_from_slice(&nonce_rng.next().to_le_bytes());
            }
            {
                let mut writer: &TcpStream = &stream;
                let challenge = WireFrame::Challenge {
                    nonce,
                    digest: state.config_digest,
                };
                std::io::Write::write_all(&mut writer, &challenge.to_wire()).ok()?;
            }
            let answer = read_one_frame(&stream, &mut frames)?;
            verify_auth_hello(key, &nonce, &state.config_digest, state.session, &answer).ok()?
        }
    };
    if process >= state.last_sent_len() {
        return None;
    }
    {
        let mut writer: &TcpStream = &stream;
        std::io::Write::write_all(&mut writer, &state.welcome).ok()?;
    }
    // Back to blocking reads for the pump: the gather ladder owns all
    // timeout policy.
    stream.set_read_timeout(None).ok()?;
    let pump_stream = stream.try_clone().ok()?;
    let pump_tx = reply_tx.clone();
    let pump_wire = state.wire.as_ref().and_then(|setup| {
        Some(PumpWire {
            chaos: WireChaos::ingress(Some(&setup.corruption), wire_salt(process, true))?,
            last_sent: Arc::clone(setup.last_sent.get(process)?),
            shared: Arc::clone(&setup.shared),
            max_retransmits: setup.corruption.max_retransmits,
        })
    });
    let pump = std::thread::spawn(move || pump(&pump_stream, frames, &pump_tx, pump_wire));
    Some(Registration {
        process,
        incarnation,
        stream,
        pump,
    })
}

impl AcceptorState {
    /// Upper bound on valid process indices (the per-connection cache
    /// table is sized to the process count). Only meaningful with wire
    /// chaos armed; otherwise any index is admitted and the coordinator's
    /// own staleness check (`install_registration`) rejects strays.
    fn last_sent_len(&self) -> usize {
        self.wire
            .as_ref()
            .map_or(usize::MAX, |setup| setup.last_sent.len())
    }
}

/// The per-connection reply pump: reassembles frames from the stream and
/// forwards decoded replies to the coordinator until EOF, a socket error,
/// or an unrepairable frame. With wire chaos armed it is also the
/// coordinator's half of the repair protocol: an undecodable reply is
/// `Nak`ed back to the worker (which resends its cached reply, re-drawn
/// through chaos each attempt, bounded by the retransmit budget), a worker
/// `Nak` is answered with the cached clean bytes of the last command, and
/// a reordered reply is held until its successor passes it or the stream
/// goes quiet.
fn pump(stream: &TcpStream, frames: FrameBuffer, tx: &Sender<Reply>, mut wire: Option<PumpWire>) {
    let mut held = None;
    pump_loop(stream, frames, tx, wire.as_mut(), &mut held);
    // Never strand a reordered reply on exit: EOF and error paths flush it
    // so a held final-phase frame cannot fake a dead node.
    if let Some(reply) = held {
        let _ = tx.send(reply);
    }
}

fn pump_loop(
    stream: &TcpStream,
    mut frames: FrameBuffer,
    tx: &Sender<Reply>,
    mut wire: Option<&mut PumpWire>,
    held: &mut Option<Reply>,
) {
    let mut reader: &TcpStream = stream;
    let mut chunk = [0u8; 64 * 1024];
    // Consecutive undecodable frames on this connection; reset by any
    // clean decode. One ingress chaos draw happens per delivery attempt,
    // so this mirrors §12's per-attempt redraw semantics.
    let mut failures = 0u32;
    loop {
        loop {
            match frames.next_frame() {
                Ok(Some(mut payload)) => {
                    let verdict = wire
                        .as_mut()
                        .map_or(WireVerdict::Clean, |w| w.chaos.next_ingress(&mut payload));
                    if verdict != WireVerdict::Clean {
                        if let Some(w) = wire.as_ref() {
                            if let Ok(mut counters) = w.shared.counters.lock() {
                                counters.corruptions_injected += 1;
                                if verdict != WireVerdict::Truncated {
                                    // Duplicates and reorders are absorbed
                                    // structurally (dedup / order-free
                                    // gather); truncation is detected by
                                    // the decode below.
                                    counters.corruptions_detected += 1;
                                }
                            }
                        }
                    }
                    match WireFrame::decode_payload(&payload) {
                        Ok(WireFrame::Reply(reply)) => {
                            failures = 0;
                            if verdict == WireVerdict::Reordered && held.is_none() {
                                *held = Some(reply);
                                continue;
                            }
                            let copies = if verdict == WireVerdict::Duplicated {
                                2
                            } else {
                                1
                            };
                            for _ in 0..copies {
                                if tx.send(reply.clone()).is_err() {
                                    return;
                                }
                            }
                            if let Some(passed) = held.take() {
                                if tx.send(passed).is_err() {
                                    return;
                                }
                            }
                        }
                        Ok(WireFrame::Nak) => {
                            // The worker could not decode our last command:
                            // resend the cached clean bytes, bypassing the
                            // egress interceptor (a §12 retransmission).
                            let Some(w) = wire.as_ref() else { return };
                            let resend = w
                                .last_sent
                                .lock()
                                .map(|cache| cache.clone())
                                .unwrap_or_default();
                            if resend.is_empty() {
                                return;
                            }
                            if let Ok(mut counters) = w.shared.counters.lock() {
                                counters.corruptions_detected += 1;
                                counters.checksum_retransmissions += 1;
                            }
                            let mut writer: &TcpStream = stream;
                            if std::io::Write::write_all(&mut writer, &resend).is_err() {
                                return;
                            }
                        }
                        Ok(_) => return,
                        Err(_) => {
                            let Some(w) = wire.as_ref() else { return };
                            failures += 1;
                            if let Ok(mut counters) = w.shared.counters.lock() {
                                counters.corruptions_detected += 1;
                            }
                            if failures > w.max_retransmits {
                                if let Ok(mut slot) = w.shared.error.lock() {
                                    slot.get_or_insert_with(|| {
                                        CoreError::corrupt_payload(
                                            "wire",
                                            0,
                                            format!(
                                                "reply frame still failing after {} retransmits",
                                                w.max_retransmits
                                            ),
                                        )
                                    });
                                }
                                return;
                            }
                            if let Ok(mut counters) = w.shared.counters.lock() {
                                counters.checksum_retransmissions += 1;
                            }
                            let mut writer: &TcpStream = stream;
                            let nak = WireFrame::Nak.to_wire();
                            if std::io::Write::write_all(&mut writer, &nak).is_err() {
                                return;
                            }
                        }
                    }
                }
                Ok(None) => break,
                Err(_) => return,
            }
        }
        // Reads. A held reordered reply may have no successor coming (it
        // was the phase's last frame), so reads go briefly non-blocking
        // and quiet streams flush the held frame — well inside the gather
        // ladder's base deadline.
        if held.is_some() {
            if stream
                .set_read_timeout(Some(Duration::from_millis(50)))
                .is_err()
            {
                return;
            }
            let read = reader.read(&mut chunk);
            if stream.set_read_timeout(None).is_err() {
                return;
            }
            match read {
                Ok(0) => return,
                Ok(n) => frames.push(&chunk[..n]),
                Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                    if let Some(passed) = held.take() {
                        if tx.send(passed).is_err() {
                            return;
                        }
                    }
                }
                Err(_) => return,
            }
        } else {
            match reader.read(&mut chunk) {
                Ok(0) | Err(_) => return,
                Ok(n) => frames.push(&chunk[..n]),
            }
        }
    }
}
