//! The worker side of the multi-process socket runtime.
//!
//! [`run_worker`] is the entire body of the `ufc-node` binary: connect to
//! the coordinator, introduce yourself (a `Hello` wire frame), rebuild
//! your hosted node kernels from the `RunConfig` in the `Welcome` answer,
//! then serve node-addressed commands until every hosted node has shipped
//! its final iterate or the coordinator says `Shutdown`.
//!
//! A worker process hosts the nodes `id % processes == process` (see
//! [`crate::wire::hosted_nodes`]): front-end kernels for `id < m`,
//! datacenter kernels above. The command dispatch is a byte-for-byte
//! mirror of the supervised in-process workers in `supervision.rs` — same
//! node methods in the same order — which is what makes the socket
//! engine's clean path bit-identical to the lockstep engine.
//!
//! Failure behaviour: a dropped connection (`ECONNRESET`, EOF — e.g. the
//! coordinator simulating a WAN partition by shutting the socket down) is
//! answered with reconnect-with-backoff and a fresh `Hello` carrying the
//! *same* incarnation, after which the run resumes on the new stream; the
//! kernels live in this process and keep their state across reconnects.
//! A worker that was really killed (`kill -9`) is respawned by the
//! coordinator with a bumped incarnation and rebuilt from the last
//! verified checkpoint via a `Restore` command plus command replay.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::thread;
use std::time::Duration;

use ufc_core::CoreError;

use crate::node::{DatacenterNode, FrontendNode};
use crate::snapshot::{DatacenterSnapshot, FrontendSnapshot};
use crate::supervision::Reply;
use crate::wire::{hosted_nodes, FrameBuffer, NodeCmd, RunConfig, WireFrame};

/// Connection attempts before the worker gives up on the coordinator.
const CONNECT_ATTEMPTS: usize = 12;

/// Initial retry delay; doubles per attempt up to [`BACKOFF_CAP`].
const BACKOFF_START: Duration = Duration::from_millis(10);

/// Ceiling on the reconnect backoff delay.
const BACKOFF_CAP: Duration = Duration::from_millis(500);

/// One hosted node kernel: the worker-side spelling of the supervised
/// runtime's per-thread node ownership.
// Both kernels are boxed: each carries per-node solver workspaces that
// would otherwise bloat every enum slot to the largest kernel's size.
enum Hosted {
    Fe(Box<FrontendNode>),
    Dc(Box<DatacenterNode>),
}

fn io_failure(process: usize, context: &str, err: &std::io::Error) -> CoreError {
    CoreError::node_failure(format!("worker-{process}"), 0, format!("{context}: {err}"))
}

fn connect_with_backoff(addr: &str, process: usize) -> Result<TcpStream, CoreError> {
    let mut delay = BACKOFF_START;
    let mut last: Option<std::io::Error> = None;
    for _ in 0..CONNECT_ATTEMPTS {
        match TcpStream::connect(addr) {
            Ok(stream) => {
                stream
                    .set_nodelay(true)
                    .map_err(|e| io_failure(process, "set_nodelay", &e))?;
                return Ok(stream);
            }
            Err(e) => {
                last = Some(e);
                thread::sleep(delay);
                delay = (delay * 2).min(BACKOFF_CAP);
            }
        }
    }
    Err(CoreError::node_failure(
        format!("worker-{process}"),
        0,
        format!(
            "cannot reach coordinator at {addr} after {CONNECT_ATTEMPTS} attempts: {}",
            last.map_or_else(|| "no attempt made".to_owned(), |e| e.to_string())
        ),
    ))
}

/// A live session: the stream plus its reassembly buffer.
struct Session {
    stream: TcpStream,
    frames: FrameBuffer,
}

impl Session {
    /// Connects (with backoff) and sends the `Hello` announcement.
    fn establish(
        addr: &str,
        process: usize,
        session: u64,
        incarnation: u32,
    ) -> Result<Session, CoreError> {
        let mut stream = connect_with_backoff(addr, process)?;
        let hello = WireFrame::Hello {
            session,
            process,
            incarnation,
        }
        .to_wire();
        stream
            .write_all(&hello)
            .and_then(|()| stream.flush())
            .map_err(|e| io_failure(process, "handshake send", &e))?;
        Ok(Session {
            stream,
            frames: FrameBuffer::new(),
        })
    }

    /// Blocks for the next complete frame; `Ok(None)` on orderly EOF.
    fn next_frame(&mut self, process: usize) -> Result<Option<WireFrame>, CoreError> {
        loop {
            if let Some(payload) = self.frames.next_frame()? {
                return WireFrame::decode_payload(&payload).map(Some);
            }
            let mut chunk = [0u8; 16 * 1024];
            let n = self
                .stream
                .read(&mut chunk)
                .map_err(|e| io_failure(process, "socket read", &e))?;
            if n == 0 {
                if self.frames.pending_bytes() > 0 {
                    return Err(CoreError::corrupt_payload(
                        format!("worker-{process}"),
                        0,
                        format!(
                            "connection closed mid-frame with {} bytes pending",
                            self.frames.pending_bytes()
                        ),
                    ));
                }
                return Ok(None);
            }
            self.frames.push(&chunk[..n]);
        }
    }

    fn send(&mut self, frame: &WireFrame, process: usize) -> Result<(), CoreError> {
        self.stream
            .write_all(&frame.to_wire())
            .and_then(|()| self.stream.flush())
            .map_err(|e| io_failure(process, "socket write", &e))
    }
}

/// Builds the node kernels this process hosts, in node-id order —
/// identical construction to the in-process engines.
fn build_nodes(config: &RunConfig, process: usize) -> Vec<(usize, Hosted)> {
    let m = config.instance.m_frontends();
    let n = config.instance.n_datacenters();
    hosted_nodes(process, config.processes, m, n)
        .into_iter()
        .map(|id| {
            let hosted = if id < m {
                Hosted::Fe(Box::new(FrontendNode::new(
                    &config.instance,
                    id,
                    &config.settings,
                )))
            } else {
                Hosted::Dc(Box::new(DatacenterNode::new(
                    &config.instance,
                    id - m,
                    &config.settings,
                    config.active_mu,
                    config.active_nu,
                )))
            };
            (id, hosted)
        })
        .collect()
}

/// Dispatches one command to the addressed hosted node; mirrors the
/// supervised worker loops in `supervision.rs` verb for verb. Returns the
/// reply to ship, or `None` for fire-and-forget verbs (membership,
/// restore).
fn dispatch(
    node_id: usize,
    hosted: &mut Hosted,
    cmd: NodeCmd,
    process: usize,
) -> Result<Option<Reply>, CoreError> {
    let misaddressed = |verb: &str| {
        CoreError::node_failure(
            format!("worker-{process}"),
            0,
            format!("{verb} command addressed to the wrong node kind (node {node_id})"),
        )
    };
    match (hosted, cmd) {
        (Hosted::Fe(node), NodeCmd::Predict { iteration }) => Ok(Some(Reply::Lambda {
            i: node.index(),
            iteration,
            row: node.predict_lambda(),
        })),
        (Hosted::Fe(node), NodeCmd::Correct { iteration, a_row }) => Ok(Some(Reply::FeResidual {
            i: node.index(),
            iteration,
            residuals: node.receive_a_and_correct(&a_row),
        })),
        (Hosted::Dc(node), NodeCmd::Process { iteration, column }) => {
            let step = node.process(&column);
            Ok(Some(Reply::DcStep {
                j: node.index(),
                iteration,
                a_tilde: step.a_tilde,
                d: step.d,
                residuals: step.residuals,
            }))
        }
        (Hosted::Fe(node), NodeCmd::Snapshot { iteration }) => Ok(Some(Reply::FeSnapshot {
            i: node.index(),
            iteration,
            blob: node.snapshot().to_bytes(),
        })),
        (Hosted::Dc(node), NodeCmd::Snapshot { iteration }) => Ok(Some(Reply::DcSnapshot {
            j: node.index(),
            iteration,
            blob: node.snapshot().to_bytes(),
        })),
        (Hosted::Fe(node), NodeCmd::Membership { datacenter, evict }) => {
            if evict {
                node.set_evicted(datacenter);
            } else {
                node.clear_evicted(datacenter);
            }
            Ok(None)
        }
        (Hosted::Fe(node), NodeCmd::Restore { blob }) => {
            let snap = FrontendSnapshot::from_bytes(&blob)?;
            node.restore(&snap)?;
            Ok(None)
        }
        (Hosted::Dc(node), NodeCmd::Restore { blob }) => {
            let snap = DatacenterSnapshot::from_bytes(&blob)?;
            node.restore(&snap)?;
            Ok(None)
        }
        (Hosted::Fe(node), NodeCmd::Finish) => Ok(Some(Reply::FeFinal {
            i: node.index(),
            lambda: node.lambda().to_vec(),
        })),
        (Hosted::Dc(node), NodeCmd::Finish) => Ok(Some(Reply::DcFinal {
            j: node.index(),
            mu: node.mu(),
            d: node.d(),
        })),
        (_, NodeCmd::Predict { .. } | NodeCmd::Correct { .. }) => Err(misaddressed("front-end")),
        (_, NodeCmd::Process { .. }) => Err(misaddressed("datacenter")),
        (_, NodeCmd::Membership { .. }) => Err(misaddressed("membership")),
    }
}

/// Runs one worker process to completion: the body of the `ufc-node`
/// binary.
///
/// Connects to the coordinator at `addr` (an IPv4/IPv6 `host:port` on
/// loopback in all shipped experiments), performs the `Hello`/`Welcome`
/// handshake for `(session, process, incarnation)`, then serves commands
/// for its hosted nodes until all of them have answered `Finish` or a
/// `Shutdown` frame arrives. Dropped connections are re-established with
/// exponential backoff and a repeated `Hello` (same incarnation); node
/// state survives the reconnect because it lives here, not in the stream.
///
/// # Errors
///
/// [`CoreError::NodeFailure`] when the coordinator stays unreachable past
/// the backoff budget or a command is misaddressed, and
/// [`CoreError::CorruptPayload`] when a frame fails its CRC32 or bounds
/// checks — both name the worker process involved.
pub fn run_worker(
    addr: &str,
    process: usize,
    session: u64,
    incarnation: u32,
) -> Result<(), CoreError> {
    let mut link = Session::establish(addr, process, session, incarnation)?;
    let mut nodes: Vec<(usize, Hosted)> = Vec::new();
    let mut finished = 0usize;
    loop {
        let frame = match link.next_frame(process) {
            Ok(Some(frame)) => frame,
            Ok(None) => {
                if !nodes.is_empty() && finished == nodes.len() {
                    // All hosted nodes shipped their finals; an EOF now is
                    // an orderly coordinator teardown.
                    return Ok(());
                }
                // Mid-run drop (partition simulation or coordinator
                // hiccup): reconnect and re-introduce ourselves.
                link = Session::establish(addr, process, session, incarnation)?;
                continue;
            }
            // Read errors (ECONNRESET and friends) take the same recovery
            // path as EOF; anything else (corrupt frame) is fatal.
            Err(CoreError::NodeFailure { .. }) => {
                if !nodes.is_empty() && finished == nodes.len() {
                    return Ok(());
                }
                link = Session::establish(addr, process, session, incarnation)?;
                continue;
            }
            Err(err) => return Err(err),
        };
        match frame {
            WireFrame::Welcome { config } => {
                // First Welcome builds the kernels; a Welcome on a
                // reconnect is ignored — state lives here.
                if nodes.is_empty() {
                    let config = RunConfig::decode(&config)?;
                    if process >= config.processes {
                        return Err(CoreError::invalid_config(format!(
                            "worker process {process} out of range for {} processes",
                            config.processes
                        )));
                    }
                    nodes = build_nodes(&config, process);
                }
            }
            WireFrame::Cmd { node, cmd } => {
                let is_finish = matches!(cmd, NodeCmd::Finish);
                let Some((id, hosted)) = nodes.iter_mut().find(|(id, _)| *id == node) else {
                    return Err(CoreError::node_failure(
                        format!("worker-{process}"),
                        0,
                        format!("command for node {node}, which this worker does not host"),
                    ));
                };
                if let Some(reply) = dispatch(*id, hosted, cmd, process)? {
                    link.send(&WireFrame::Reply(reply), process)?;
                }
                if is_finish {
                    finished += 1;
                }
            }
            WireFrame::Shutdown => return Ok(()),
            WireFrame::Hello { .. } | WireFrame::Reply(_) => {
                return Err(CoreError::corrupt_payload(
                    format!("worker-{process}"),
                    0,
                    "coordinator sent a worker-to-coordinator frame".to_owned(),
                ));
            }
        }
    }
}
