//! The worker side of the multi-process socket runtime.
//!
//! [`run_worker`] is the entire body of the `ufc-node` binary: connect to
//! the coordinator, introduce yourself (a `Hello` wire frame), rebuild
//! your hosted node kernels from the `RunConfig` in the `Welcome` answer,
//! then serve node-addressed commands until every hosted node has shipped
//! its final iterate or the coordinator says `Shutdown`.
//!
//! A worker process hosts the nodes `id % processes == process` (see
//! [`crate::wire::hosted_nodes`]): front-end kernels for `id < m`,
//! datacenter kernels above. The command dispatch is a byte-for-byte
//! mirror of the supervised in-process workers in `supervision.rs` — same
//! node methods in the same order — which is what makes the socket
//! engine's clean path bit-identical to the lockstep engine.
//!
//! Failure behaviour: a dropped connection (`ECONNRESET`, EOF — e.g. the
//! coordinator simulating a WAN partition by shutting the socket down) is
//! answered with reconnect-with-backoff and a fresh `Hello` carrying the
//! *same* incarnation, after which the run resumes on the new stream; the
//! kernels live in this process and keep their state across reconnects.
//! A worker that was really killed (`kill -9`) is respawned by the
//! coordinator with a bumped incarnation and rebuilt from the last
//! verified checkpoint via a `Restore` command plus command replay.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::thread;
use std::time::Duration;

use ufc_core::CoreError;

use crate::fault::NodeId;
use crate::node::{DatacenterNode, FrontendNode};
use crate::snapshot::{DatacenterSnapshot, FrontendSnapshot};
use crate::supervision::Reply;
use crate::wire::{
    handshake_mac, hosted_nodes, sha256, AuthKey, FrameBuffer, NodeCmd, RunConfig, WireFrame,
};

/// Connection attempts before the worker gives up on the coordinator.
const CONNECT_ATTEMPTS: usize = 12;

/// Initial retry delay; doubles per attempt up to [`BACKOFF_CAP`].
const BACKOFF_START: Duration = Duration::from_millis(10);

/// Ceiling on the reconnect backoff delay.
const BACKOFF_CAP: Duration = Duration::from_millis(500);

/// Naks a worker may send per connection before declaring the link
/// poisoned. Generously above any plausible chaos draw count — the
/// per-send retransmit budget is enforced coordinator-side; this bound
/// only prevents a livelock on a link that corrupts everything.
const NAK_BUDGET: usize = 4096;

/// One hosted node kernel: the worker-side spelling of the supervised
/// runtime's per-thread node ownership.
// Both kernels are boxed: each carries per-node solver workspaces that
// would otherwise bloat every enum slot to the largest kernel's size.
enum Hosted {
    Fe(Box<FrontendNode>),
    Dc(Box<DatacenterNode>),
}

fn io_failure(process: usize, context: &str, err: &std::io::Error) -> CoreError {
    CoreError::node_failure(format!("worker-{process}"), 0, format!("{context}: {err}"))
}

fn connect_with_backoff(addr: &str, process: usize) -> Result<TcpStream, CoreError> {
    let mut delay = BACKOFF_START;
    let mut last: Option<std::io::Error> = None;
    for _ in 0..CONNECT_ATTEMPTS {
        match TcpStream::connect(addr) {
            Ok(stream) => {
                stream
                    .set_nodelay(true)
                    .map_err(|e| io_failure(process, "set_nodelay", &e))?;
                return Ok(stream);
            }
            Err(e) => {
                last = Some(e);
                thread::sleep(delay);
                delay = (delay * 2).min(BACKOFF_CAP);
            }
        }
    }
    Err(CoreError::node_failure(
        format!("worker-{process}"),
        0,
        format!(
            "cannot reach coordinator at {addr} after {CONNECT_ATTEMPTS} attempts: {}",
            last.map_or_else(|| "no attempt made".to_owned(), |e| e.to_string())
        ),
    ))
}

/// A live session: the stream, its reassembly buffer, and the per-
/// connection wire-chaos recovery state (duplicate suppression, reply
/// cache for coordinator Naks, Nak budget).
struct Session {
    stream: TcpStream,
    frames: FrameBuffer,
    /// Raw payload bytes of the previously delivered frame. A chaos
    /// `FrameDuplicate` arrives as two byte-identical back-to-back frames;
    /// legitimate consecutive frames are never identical (commands embed
    /// their iteration, finals their node id), so equality means "drop".
    last_seen: Option<Vec<u8>>,
    /// Wire bytes of the last reply sent; retransmitted verbatim when the
    /// coordinator answers with a [`WireFrame::Nak`].
    last_reply: Option<Vec<u8>>,
    /// Naks sent on this connection (bounded by [`NAK_BUDGET`]).
    naks_sent: usize,
}

impl Session {
    /// Connects (with backoff) and performs the handshake: a plain `Hello`
    /// without a key, or the challenge–response exchange with one. Returns
    /// the session plus the run-config digest the coordinator committed to
    /// in its challenge (checked against the `Welcome` later).
    fn establish(
        addr: &str,
        process: usize,
        session: u64,
        incarnation: u32,
        auth: Option<&AuthKey>,
    ) -> Result<(Session, Option<[u8; 32]>), CoreError> {
        let stream = connect_with_backoff(addr, process)?;
        let mut link = Session {
            stream,
            frames: FrameBuffer::new(),
            last_seen: None,
            last_reply: None,
            naks_sent: 0,
        };
        let digest = match auth {
            None => {
                let hello = WireFrame::Hello {
                    session,
                    process,
                    incarnation,
                }
                .to_wire();
                link.send_raw(&hello, process)?;
                None
            }
            Some(key) => {
                // Say nothing until the coordinator proves it holds the
                // run: wait for its challenge, answer with the keyed MAC.
                let frame = link.next_frame(process)?.ok_or_else(|| {
                    CoreError::unauthorized(
                        format!("worker-{process}"),
                        "connection closed before the authentication challenge",
                    )
                })?;
                let WireFrame::Challenge { nonce, digest } = frame else {
                    return Err(CoreError::unauthorized(
                        format!("worker-{process}"),
                        "expected an authentication challenge, got a different frame",
                    ));
                };
                let mac = handshake_mac(key, &nonce, session, process, incarnation, &digest);
                let hello = WireFrame::AuthHello {
                    session,
                    process,
                    incarnation,
                    mac,
                }
                .to_wire();
                link.send_raw(&hello, process)?;
                Some(digest)
            }
        };
        Ok((link, digest))
    }

    /// Blocks for the next complete frame; `Ok(None)` on orderly EOF.
    ///
    /// Wire-chaos recovery happens here: a payload that fails its CRC or
    /// bounds checks is answered with a `Nak` (asking the coordinator to
    /// retransmit) instead of dying, and a frame byte-identical to the
    /// previous one is dropped as a chaos duplicate.
    fn next_frame(&mut self, process: usize) -> Result<Option<WireFrame>, CoreError> {
        loop {
            if let Some(payload) = self.frames.next_frame()? {
                match WireFrame::decode_payload(&payload) {
                    Ok(frame) => {
                        if frame != WireFrame::Nak
                            && self.last_seen.as_deref() == Some(&payload[..])
                        {
                            continue;
                        }
                        self.last_seen = Some(payload);
                        return Ok(Some(frame));
                    }
                    Err(_) if self.naks_sent < NAK_BUDGET => {
                        self.naks_sent += 1;
                        let nak = WireFrame::Nak.to_wire();
                        self.send_raw(&nak, process)?;
                        continue;
                    }
                    Err(err) => return Err(err),
                }
            }
            let mut chunk = [0u8; 16 * 1024];
            let n = self
                .stream
                .read(&mut chunk)
                .map_err(|e| io_failure(process, "socket read", &e))?;
            if n == 0 {
                if self.frames.pending_bytes() > 0 {
                    return Err(CoreError::corrupt_payload(
                        format!("worker-{process}"),
                        0,
                        format!(
                            "connection closed mid-frame with {} bytes pending",
                            self.frames.pending_bytes()
                        ),
                    ));
                }
                return Ok(None);
            }
            self.frames.push(&chunk[..n]);
        }
    }

    fn send(&mut self, frame: &WireFrame, process: usize) -> Result<(), CoreError> {
        let bytes = frame.to_wire();
        self.send_raw(&bytes, process)?;
        if matches!(frame, WireFrame::Reply(_)) {
            self.last_reply = Some(bytes);
        }
        Ok(())
    }

    fn send_raw(&mut self, bytes: &[u8], process: usize) -> Result<(), CoreError> {
        self.stream
            .write_all(bytes)
            .and_then(|()| self.stream.flush())
            .map_err(|e| io_failure(process, "socket write", &e))
    }
}

/// Builds the node kernels this process hosts, in node-id order —
/// identical construction to the in-process engines.
fn build_nodes(config: &RunConfig, process: usize) -> Vec<(usize, Hosted)> {
    let m = config.instance.m_frontends();
    let n = config.instance.n_datacenters();
    hosted_nodes(process, config.processes, m, n)
        .into_iter()
        .map(|id| {
            let hosted = if id < m {
                Hosted::Fe(Box::new(FrontendNode::new(
                    &config.instance,
                    id,
                    &config.settings,
                )))
            } else {
                Hosted::Dc(Box::new(DatacenterNode::new(
                    &config.instance,
                    id - m,
                    &config.settings,
                    config.active_mu,
                    config.active_nu,
                )))
            };
            (id, hosted)
        })
        .collect()
}

/// Dispatches one command to the addressed hosted node; mirrors the
/// supervised worker loops in `supervision.rs` verb for verb. Returns the
/// reply to ship, or `None` for fire-and-forget verbs (membership,
/// restore).
fn dispatch(
    node_id: usize,
    hosted: &mut Hosted,
    cmd: NodeCmd,
    process: usize,
) -> Result<Option<Reply>, CoreError> {
    let misaddressed = |verb: &str| {
        CoreError::node_failure(
            format!("worker-{process}"),
            0,
            format!("{verb} command addressed to the wrong node kind (node {node_id})"),
        )
    };
    match (hosted, cmd) {
        (Hosted::Fe(node), NodeCmd::Predict { iteration }) => {
            Ok(Some(match node.predict_lambda() {
                Ok(row) => Reply::Lambda {
                    i: node.index(),
                    iteration,
                    row,
                },
                // Poisoned iterate: ship the typed rejection before dying so
                // the coordinator aborts instead of respawning into the poison.
                Err(error) => Reply::NodeError {
                    node: NodeId::Frontend(node.index()),
                    iteration,
                    error,
                },
            }))
        }
        (Hosted::Fe(node), NodeCmd::Correct { iteration, a_row }) => Ok(Some(Reply::FeResidual {
            i: node.index(),
            iteration,
            residuals: node.receive_a_and_correct(&a_row),
        })),
        (Hosted::Dc(node), NodeCmd::Process { iteration, column }) => {
            Ok(Some(match node.process(&column) {
                Ok(step) => Reply::DcStep {
                    j: node.index(),
                    iteration,
                    a_tilde: step.a_tilde,
                    d: step.d,
                    residuals: step.residuals,
                },
                Err(error) => Reply::NodeError {
                    node: NodeId::Datacenter(node.index()),
                    iteration,
                    error,
                },
            }))
        }
        (Hosted::Fe(node), NodeCmd::Snapshot { iteration }) => Ok(Some(Reply::FeSnapshot {
            i: node.index(),
            iteration,
            blob: node.snapshot().to_bytes(),
        })),
        (Hosted::Dc(node), NodeCmd::Snapshot { iteration }) => Ok(Some(Reply::DcSnapshot {
            j: node.index(),
            iteration,
            blob: node.snapshot().to_bytes(),
        })),
        (Hosted::Fe(node), NodeCmd::Membership { datacenter, evict }) => {
            if evict {
                node.set_evicted(datacenter);
            } else {
                node.clear_evicted(datacenter);
            }
            Ok(None)
        }
        (Hosted::Fe(node), NodeCmd::Restore { blob }) => {
            let snap = FrontendSnapshot::from_bytes(&blob)?;
            node.restore(&snap)?;
            Ok(None)
        }
        (Hosted::Dc(node), NodeCmd::Restore { blob }) => {
            let snap = DatacenterSnapshot::from_bytes(&blob)?;
            node.restore(&snap)?;
            Ok(None)
        }
        (Hosted::Fe(node), NodeCmd::Finish) => Ok(Some(Reply::FeFinal {
            i: node.index(),
            lambda: node.lambda().to_vec(),
        })),
        (Hosted::Dc(node), NodeCmd::Finish) => Ok(Some(Reply::DcFinal {
            j: node.index(),
            mu: node.mu(),
            d: node.d(),
        })),
        (_, NodeCmd::Predict { .. } | NodeCmd::Correct { .. }) => Err(misaddressed("front-end")),
        (_, NodeCmd::Process { .. }) => Err(misaddressed("datacenter")),
        (_, NodeCmd::Membership { .. }) => Err(misaddressed("membership")),
    }
}

/// Runs one worker process to completion: the body of the `ufc-node`
/// binary.
///
/// Connects to the coordinator at `addr` (loopback by default; any
/// reachable `host:port` when the coordinator binds remotely), performs
/// the handshake for `(session, process, incarnation)` — a plain
/// `Hello`/`Welcome` without `auth`, the challenge–response exchange with
/// it — then serves commands for its hosted nodes until all of them have
/// answered `Finish` or a `Shutdown` frame arrives. Dropped connections
/// are re-established with exponential backoff and a repeated handshake
/// (same incarnation); node state survives the reconnect because it lives
/// here, not in the stream.
///
/// # Errors
///
/// [`CoreError::NodeFailure`] when the coordinator stays unreachable past
/// the backoff budget or a command is misaddressed,
/// [`CoreError::CorruptPayload`] when a frame fails its CRC32 or bounds
/// checks beyond the Nak budget, and [`CoreError::Unauthorized`] when the
/// authenticated handshake cannot be completed or the `Welcome` does not
/// match the digest the coordinator committed to in its challenge.
pub fn run_worker(
    addr: &str,
    process: usize,
    session: u64,
    incarnation: u32,
    auth: Option<&AuthKey>,
) -> Result<(), CoreError> {
    let (mut link, mut expected_digest) =
        Session::establish(addr, process, session, incarnation, auth)?;
    let mut nodes: Vec<(usize, Hosted)> = Vec::new();
    let mut finished = 0usize;
    loop {
        let frame = match link.next_frame(process) {
            Ok(Some(frame)) => frame,
            Ok(None) => {
                if !nodes.is_empty() && finished == nodes.len() {
                    // All hosted nodes shipped their finals; an EOF now is
                    // an orderly coordinator teardown.
                    return Ok(());
                }
                // Mid-run drop (partition simulation or coordinator
                // hiccup): reconnect and re-introduce ourselves.
                (link, expected_digest) =
                    Session::establish(addr, process, session, incarnation, auth)?;
                continue;
            }
            // Read errors (ECONNRESET and friends) take the same recovery
            // path as EOF; anything else (corrupt frame) is fatal.
            Err(CoreError::NodeFailure { .. }) => {
                if !nodes.is_empty() && finished == nodes.len() {
                    return Ok(());
                }
                (link, expected_digest) =
                    Session::establish(addr, process, session, incarnation, auth)?;
                continue;
            }
            Err(err) => return Err(err),
        };
        match frame {
            WireFrame::Welcome { config } => {
                // Under authentication the coordinator committed to a
                // config digest in its challenge; a Welcome that does not
                // match is a spliced or swapped configuration.
                if let Some(expect) = expected_digest {
                    if sha256(&config) != expect {
                        return Err(CoreError::unauthorized(
                            format!("worker-{process}"),
                            "welcome config digest does not match the challenge",
                        ));
                    }
                }
                // First Welcome builds the kernels; a Welcome on a
                // reconnect is ignored — state lives here.
                if nodes.is_empty() {
                    let config = RunConfig::decode(&config)?;
                    if process >= config.processes {
                        return Err(CoreError::invalid_config(format!(
                            "worker process {process} out of range for {} processes",
                            config.processes
                        )));
                    }
                    nodes = build_nodes(&config, process);
                }
            }
            WireFrame::Cmd { node, cmd } => {
                let is_finish = matches!(cmd, NodeCmd::Finish);
                let Some((id, hosted)) = nodes.iter_mut().find(|(id, _)| *id == node) else {
                    return Err(CoreError::node_failure(
                        format!("worker-{process}"),
                        0,
                        format!("command for node {node}, which this worker does not host"),
                    ));
                };
                if let Some(reply) = dispatch(*id, hosted, cmd, process)? {
                    let failed = match &reply {
                        Reply::NodeError { error, .. } => Some(error.clone()),
                        _ => None,
                    };
                    link.send(&WireFrame::Reply(reply), process)?;
                    if let Some(error) = failed {
                        // The hosted iterate is poisoned; exit typed after
                        // the report instead of serving further commands.
                        return Err(error);
                    }
                }
                if is_finish {
                    finished += 1;
                }
            }
            WireFrame::Shutdown => return Ok(()),
            WireFrame::Nak => {
                // The coordinator failed to decode our last reply; resend
                // the cached bytes verbatim (a Nak with nothing cached is
                // a stray and is ignored).
                if let Some(bytes) = link.last_reply.clone() {
                    link.send_raw(&bytes, process)?;
                }
            }
            WireFrame::Hello { .. } | WireFrame::AuthHello { .. } | WireFrame::Reply(_) => {
                return Err(CoreError::corrupt_payload(
                    format!("worker-{process}"),
                    0,
                    "coordinator sent a worker-to-coordinator frame".to_owned(),
                ));
            }
            WireFrame::Challenge { .. } => {
                return Err(CoreError::unauthorized(
                    format!("worker-{process}"),
                    "authentication challenge arrived mid-session",
                ));
            }
        }
    }
}
