//! The protocol runtimes: deterministic lockstep, supervised threaded
//! message-passing, and their fault-injected variants.
//!
//! The threaded engine is a *supervising coordinator*: every reply is
//! awaited with [`std::sync::mpsc::Receiver::recv_timeout`] deadlines and
//! an exponential backoff ladder; a worker that stays silent past the
//! ladder (and whose thread has exited) is resolved through the
//! [`FaultTracker`] state machine — respawned from the last checkpoint and
//! replayed, evicted (datacenters only), or reported as a typed
//! [`CoreError::NodeFailure`]. Worker threads are joined on every exit
//! path, including errors.
//!
//! The lockstep engine mirrors the same decision machine step for step, so
//! a faulty lockstep run and a faulty threaded run with the same
//! [`FaultPlan`] produce identical iterates, statistics, and fault reports
//! (asserted in `tests/fault_injection.rs`).

use std::collections::HashSet;
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::thread::JoinHandle;
use std::time::Duration;

use ufc_core::repair::assemble_point;
use ufc_core::{AdmgSettings, AdmgState, CoreError, Strategy, WorkerPool};
use ufc_model::{evaluate, OperatingPoint, UfcBreakdown, UfcInstance};

use crate::fault::{FaultPlan, FaultReport, FaultTracker, NodeId, Resolution};
use crate::loss::{LossConfig, LossyChannel};
use crate::message::Message;
use crate::node::{DatacenterNode, FrontendNode, NodeResiduals};
use crate::snapshot::{CheckpointStore, DatacenterSnapshot, FrontendSnapshot};
use crate::stats::{estimated_wan_seconds, MessageStats};

/// Which execution engine runs the protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Runtime {
    /// Single-threaded round engine — deterministic and bit-identical to
    /// the in-memory `AdmgSolver`.
    Lockstep,
    /// One OS thread per node over std::sync::mpsc channels, driven by the
    /// supervising coordinator.
    Threaded,
}

/// Result of a distributed run.
#[derive(Debug, Clone)]
pub struct DistRunReport {
    /// Exactly feasible operating point (same polish as the in-memory
    /// solver).
    pub point: OperatingPoint,
    /// UFC breakdown at the point.
    pub breakdown: UfcBreakdown,
    /// Iterations performed.
    pub iterations: usize,
    /// Whether the residual tests passed before the iteration cap.
    pub converged: bool,
    /// Message/byte accounting.
    pub stats: MessageStats,
    /// Estimated wall-clock of a real WAN deployment (see
    /// [`estimated_wan_seconds`]); under a lossy channel or a fault plan
    /// this includes the retransmission/recovery stalls.
    pub estimated_wan_seconds: f64,
    /// Failed message attempts (0 unless run through
    /// [`DistributedAdmg::run_lossy`]).
    pub retransmissions: usize,
    /// Fault accounting — `Some` for runs driven by a non-trivial
    /// [`FaultPlan`] (see [`DistributedAdmg::run_faulty`]).
    pub fault: Option<FaultReport>,
}

/// Facade: runs the distributed ADM-G protocol on an instance.
#[derive(Debug, Clone, Copy)]
pub struct DistributedAdmg {
    settings: AdmgSettings,
}

impl DistributedAdmg {
    /// Creates a runner with the given ADM-G hyper-parameters.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidConfig`] if the settings are invalid.
    pub fn try_new(settings: AdmgSettings) -> Result<Self, CoreError> {
        settings.check()?;
        Ok(DistributedAdmg { settings })
    }

    /// Creates a runner, panicking on invalid settings (thin wrapper over
    /// [`DistributedAdmg::try_new`]).
    ///
    /// # Panics
    ///
    /// Panics if the settings are invalid.
    #[must_use]
    pub fn new(settings: AdmgSettings) -> Self {
        match Self::try_new(settings) {
            Ok(runner) => runner,
            Err(e) => panic!("{e}"),
        }
    }

    /// Runs the protocol to convergence (or the iteration cap).
    ///
    /// # Errors
    ///
    /// * [`CoreError::Unsupported`] for an infeasible `FuelCellOnly`
    ///   restriction.
    /// * [`CoreError::Model`] if the final point cannot be polished or
    ///   evaluated.
    /// * [`CoreError::NodeFailure`] if a worker thread dies unexpectedly
    ///   (threaded runtime).
    pub fn run(
        &self,
        instance: &UfcInstance,
        strategy: Strategy,
        runtime: Runtime,
    ) -> Result<DistRunReport, CoreError> {
        let (active_mu, active_nu) = strategy_blocks(instance, strategy)?;
        match runtime {
            Runtime::Lockstep => self.run_lockstep(instance, active_mu, active_nu, None),
            Runtime::Threaded => {
                self.run_supervised(instance, active_mu, active_nu, FaultPlan::none())
            }
        }
    }

    /// Runs the protocol (lockstep engine) over a lossy channel with
    /// retransmission. The iterates — and therefore the solution — are
    /// identical to a lossless run; only the traffic and the estimated WAN
    /// wall-clock grow (see [`crate::loss`]).
    ///
    /// # Errors
    ///
    /// As for [`DistributedAdmg::run`].
    pub fn run_lossy(
        &self,
        instance: &UfcInstance,
        strategy: Strategy,
        loss: LossConfig,
    ) -> Result<DistRunReport, CoreError> {
        let (active_mu, active_nu) = strategy_blocks(instance, strategy)?;
        self.run_lockstep(instance, active_mu, active_nu, Some(loss))
    }

    /// Runs the protocol under a deterministic [`FaultPlan`]: scripted
    /// crash-stop failures (with checkpoint-restart recovery), stragglers,
    /// and partition windows. A clean fault-free lockstep run is performed
    /// first so the returned [`FaultReport::ufc_delta_vs_clean`] measures
    /// the cost of running degraded.
    ///
    /// Both runtimes make identical recovery/eviction decisions; a run
    /// whose every crash recovers reproduces the clean iterates exactly
    /// (checkpoint-restart plus input replay is bit-faithful).
    ///
    /// # Errors
    ///
    /// As for [`DistributedAdmg::run`], plus [`CoreError::InvalidConfig`]
    /// for an inconsistent plan and [`CoreError::NodeFailure`] for
    /// unrecoverable failures (a permanently dead front-end, or the last
    /// active datacenter).
    pub fn run_faulty(
        &self,
        instance: &UfcInstance,
        strategy: Strategy,
        runtime: Runtime,
        plan: FaultPlan,
    ) -> Result<DistRunReport, CoreError> {
        plan.check()?;
        let (active_mu, active_nu) = strategy_blocks(instance, strategy)?;
        let clean = self.run_lockstep(instance, active_mu, active_nu, None)?;
        let mut report = match runtime {
            Runtime::Lockstep => self.run_lockstep_faulty(instance, active_mu, active_nu, plan)?,
            Runtime::Threaded => self.run_supervised(instance, active_mu, active_nu, plan)?,
        };
        let delta = report.breakdown.ufc() - clean.breakdown.ufc();
        if let Some(fault) = report.fault.as_mut() {
            fault.ufc_delta_vs_clean = delta;
        }
        Ok(report)
    }

    fn run_lockstep(
        &self,
        instance: &UfcInstance,
        active_mu: bool,
        active_nu: bool,
        loss: Option<LossConfig>,
    ) -> Result<DistRunReport, CoreError> {
        let m = instance.m_frontends();
        let n = instance.n_datacenters();
        let mut frontends: Vec<FrontendNode> = (0..m)
            .map(|i| FrontendNode::new(instance, i, &self.settings))
            .collect();
        let mut datacenters: Vec<DatacenterNode> = (0..n)
            .map(|j| DatacenterNode::new(instance, j, &self.settings, active_mu, active_nu))
            .collect();

        let tolerances = self.settings.scaled_tolerances(instance);
        let pool = WorkerPool::new(self.settings.num_threads);
        let mut stats = MessageStats::default();
        let mut converged = false;
        let mut iterations = 0;
        let mut channel = loss.map(LossyChannel::new);
        // Phase-stall accounting: each synchronous phase waits for its
        // slowest message, i.e. the maximum attempt count within the phase.
        let mut stalled_phases = 0.0f64;

        for _ in 0..self.settings.max_iterations {
            iterations += 1;
            // Step 1: front-ends predict and scatter λ̃. The compute fans
            // out over the pool; message recording stays sequential so the
            // traffic accounting is deterministic.
            let rows: Vec<Vec<f64>> = pool.map_mut(&mut frontends, |_, fe| fe.predict_lambda());
            let mut phase_max = 1usize;
            for (i, row) in rows.iter().enumerate() {
                for (j, &value) in row.iter().enumerate() {
                    let msg = Message::LambdaTilde {
                        frontend: i,
                        datacenter: j,
                        value,
                    };
                    stats.record(&msg);
                    if let Some(ch) = channel.as_mut() {
                        let attempts = ch.send();
                        stats.total_bytes += (attempts - 1) * msg.wire_bytes();
                        phase_max = phase_max.max(attempts);
                    }
                }
            }
            stalled_phases += phase_max as f64;

            // Steps 2–4: datacenters process their columns, gather ã.
            // Again only the per-node compute is parallel; the gather walks
            // the results in datacenter order.
            let steps = pool.map_mut(&mut datacenters, |j, dc| {
                let col: Vec<f64> = (0..m).map(|i| rows[i][j]).collect();
                dc.process(&col)
            });
            let mut dc_residuals = Vec::with_capacity(n);
            let mut a_cols: Vec<Vec<f64>> = Vec::with_capacity(n);
            let mut phase_max = 1usize;
            for (j, step) in steps.into_iter().enumerate() {
                for (i, &value) in step.a_tilde.iter().enumerate() {
                    let msg = Message::ATilde {
                        frontend: i,
                        datacenter: j,
                        value,
                    };
                    stats.record(&msg);
                    if let Some(ch) = channel.as_mut() {
                        let attempts = ch.send();
                        stats.total_bytes += (attempts - 1) * msg.wire_bytes();
                        phase_max = phase_max.max(attempts);
                    }
                }
                dc_residuals.push(step.residuals);
                a_cols.push(step.a_tilde);
            }
            stalled_phases += phase_max as f64;

            // Step 5: front-ends correct from ã.
            let fe_residuals = pool.map_mut(&mut frontends, |i, fe| {
                let a_row: Vec<f64> = (0..n).map(|j| a_cols[j][i]).collect();
                fe.receive_a_and_correct(&a_row)
            });

            // Residual reduction + control broadcast.
            let stop = reduce_and_broadcast(
                &self.settings,
                tolerances,
                &fe_residuals,
                &dc_residuals,
                &mut stats,
                m + n,
            );
            if stop {
                converged = true;
                break;
            }
        }

        let (point, breakdown) = finish(
            instance,
            frontends.iter().map(|f| f.lambda().to_vec()).collect(),
            datacenters.iter().map(DatacenterNode::mu).collect(),
            !active_nu,
        )?;
        // Lossless: 4 phases per iteration. Lossy: the two data phases
        // stall for their slowest message; the two control phases are
        // assumed reliable (coordinator links).
        let l_max = max_latency(instance);
        let estimated = if channel.is_some() {
            (stalled_phases + 2.0 * iterations as f64) * l_max
        } else {
            estimated_wan_seconds(iterations, &instance.latency_s)
        };
        Ok(DistRunReport {
            point,
            breakdown,
            iterations,
            converged,
            stats,
            estimated_wan_seconds: estimated,
            retransmissions: channel.map_or(0, |ch| ch.retransmissions),
            fault: None,
        })
    }

    /// The deterministic mirror of the supervised threaded engine: same
    /// fault decisions, same accounting, direct calls instead of threads.
    fn run_lockstep_faulty(
        &self,
        instance: &UfcInstance,
        active_mu: bool,
        active_nu: bool,
        plan: FaultPlan,
    ) -> Result<DistRunReport, CoreError> {
        let m = instance.m_frontends();
        let n = instance.n_datacenters();
        let mut frontends: Vec<FrontendNode> = (0..m)
            .map(|i| FrontendNode::new(instance, i, &self.settings))
            .collect();
        let mut datacenters: Vec<Option<DatacenterNode>> = (0..n)
            .map(|j| {
                Some(DatacenterNode::new(
                    instance,
                    j,
                    &self.settings,
                    active_mu,
                    active_nu,
                ))
            })
            .collect();
        let checkpoint_interval = plan.checkpoint_interval;
        let mut tracker = FaultTracker::new(plan, m, n);
        let mut store = CheckpointStore::new(m, n);
        let mut history: Vec<HistoryEntry> = Vec::new();

        let tolerances = self.settings.scaled_tolerances(instance);
        let mut stats = MessageStats::default();
        let mut converged = false;
        let mut iterations = 0;
        let mut stall_phases = 0.0f64;

        for k in 1..=self.settings.max_iterations {
            iterations = k;
            let mut membership_changed = false;

            // Readmission probes.
            let readmitted_now = tracker.probe_readmissions();
            for &j in &readmitted_now {
                let node = DatacenterNode::new(instance, j, &self.settings, active_mu, active_nu);
                store.put_datacenter(j, k - 1, node.snapshot().to_bytes());
                datacenters[j] = Some(node);
                for fe in &mut frontends {
                    fe.clear_evicted(j);
                    stats.record(&Message::Membership {
                        datacenter: j,
                        evict: false,
                    });
                }
                membership_changed = true;
            }

            account_stragglers(&mut tracker, m, n, k);
            if tracker.plan().partition_active(k) {
                stall_phases += 2.0;
            }

            // Predict phase, resolving scripted front-end crashes.
            let mut rows: Vec<Vec<f64>> = Vec::with_capacity(m);
            for (i, fe) in frontends.iter_mut().enumerate() {
                let node_id = NodeId::Frontend(i);
                if tracker.plan().crash_at_iteration(node_id, k).is_some() {
                    match tracker.resolve_crash(node_id, k)? {
                        Resolution::Recovered { .. } => {
                            let mut node = FrontendNode::new(instance, i, &self.settings);
                            let mut base = 0usize;
                            if let Some((it, blob)) = store.frontend(i) {
                                node.restore(&FrontendSnapshot::from_bytes(blob)?)?;
                                base = it;
                            }
                            let mut replayed = 0usize;
                            for entry in &history {
                                if entry.iteration <= base || entry.iteration >= k {
                                    continue;
                                }
                                node.predict_lambda();
                                node.receive_a_and_correct(&row_of(&entry.a_cols, i));
                                replayed += 1;
                            }
                            tracker.report.recomputed_iterations += replayed;
                            for &j in &readmitted_now {
                                node.clear_evicted(j);
                            }
                            *fe = node;
                        }
                        Resolution::Evicted { .. } => {
                            unreachable!("front-ends are never evicted")
                        }
                    }
                }
                rows.push(fe.predict_lambda());
            }
            record_lambda_traffic(&mut stats, &mut tracker, &rows, k);

            // Datacenter phase, resolving scripted crashes and evictions.
            let mut a_cols = vec![vec![0.0; m]; n];
            let mut dc_residuals: Vec<Option<NodeResiduals>> = vec![None; n];
            for j in 0..n {
                if tracker.is_evicted(j) {
                    continue;
                }
                let node_id = NodeId::Datacenter(j);
                if tracker.plan().crash_at_iteration(node_id, k).is_some() {
                    match tracker.resolve_crash(node_id, k)? {
                        Resolution::Recovered { .. } => {
                            let mut node = DatacenterNode::new(
                                instance,
                                j,
                                &self.settings,
                                active_mu,
                                active_nu,
                            );
                            let mut base = 0usize;
                            if let Some((it, blob)) = store.datacenter(j) {
                                node.restore(&DatacenterSnapshot::from_bytes(blob)?)?;
                                base = it;
                            }
                            let mut replayed = 0usize;
                            for entry in &history {
                                if entry.iteration <= base || entry.iteration >= k {
                                    continue;
                                }
                                let column: Vec<f64> = (0..m).map(|i| entry.rows[i][j]).collect();
                                node.process(&column);
                                replayed += 1;
                            }
                            tracker.report.recomputed_iterations += replayed;
                            datacenters[j] = Some(node);
                        }
                        Resolution::Evicted { .. } => {
                            datacenters[j] = None;
                            for fe in &mut frontends {
                                fe.set_evicted(j);
                                stats.record(&Message::Membership {
                                    datacenter: j,
                                    evict: true,
                                });
                            }
                            membership_changed = true;
                            continue;
                        }
                    }
                }
                let column: Vec<f64> = (0..m).map(|i| rows[i][j]).collect();
                let step = datacenters[j]
                    .as_mut()
                    .expect("live datacenter")
                    .process(&column);
                record_a_traffic(&mut stats, &mut tracker, &step.a_tilde, j, k);
                a_cols[j] = step.a_tilde;
                dc_residuals[j] = Some(step.residuals);
            }

            // Correct phase.
            let mut fe_residuals = Vec::with_capacity(m);
            for (i, fe) in frontends.iter_mut().enumerate() {
                let a_row: Vec<f64> = (0..n).map(|j| a_cols[j][i]).collect();
                fe_residuals.push(fe.receive_a_and_correct(&a_row));
            }
            let active_res: Vec<NodeResiduals> = dc_residuals.iter().flatten().copied().collect();
            let stop = reduce_and_broadcast(
                &self.settings,
                tolerances,
                &fe_residuals,
                &active_res,
                &mut stats,
                m + active_res.len(),
            );
            history.push(HistoryEntry {
                iteration: k,
                rows,
                a_cols,
            });
            if stop {
                converged = true;
                break;
            }
            if membership_changed || (checkpoint_interval > 0 && k % checkpoint_interval == 0) {
                for (i, fe) in frontends.iter().enumerate() {
                    let blob = fe.snapshot().to_bytes();
                    stats.record(&Message::Checkpoint {
                        node: i,
                        payload_bytes: blob.len(),
                    });
                    store.put_frontend(i, k, blob);
                }
                for (j, dc) in datacenters.iter().enumerate() {
                    if let Some(dc) = dc {
                        let blob = dc.snapshot().to_bytes();
                        stats.record(&Message::Checkpoint {
                            node: m + j,
                            payload_bytes: blob.len(),
                        });
                        store.put_datacenter(j, k, blob);
                    }
                }
                tracker.report.checkpoints_taken += 1;
                history.clear();
            }
        }

        let lambda_rows = frontends.iter().map(|f| f.lambda().to_vec()).collect();
        let mu = datacenters
            .iter()
            .map(|dc| dc.as_ref().map_or(0.0, DatacenterNode::mu))
            .collect();
        let (point, breakdown) = finish(instance, lambda_rows, mu, !active_nu)?;
        let report = tracker.report;
        let estimated = estimated_wan_seconds(iterations, &instance.latency_s)
            + report.downtime_seconds
            + report.straggler_seconds
            + stall_phases * max_latency(instance);
        Ok(DistRunReport {
            point,
            breakdown,
            iterations,
            converged,
            stats,
            estimated_wan_seconds: estimated,
            retransmissions: 0,
            fault: Some(report),
        })
    }

    /// The supervised threaded engine. A trivial plan (no scripted faults,
    /// checkpointing off — [`FaultPlan::none`]) reduces to the plain
    /// threaded runtime: no extra traffic, byte-identical iterates, and
    /// `fault: None` in the report.
    fn run_supervised(
        &self,
        instance: &UfcInstance,
        active_mu: bool,
        active_nu: bool,
        plan: FaultPlan,
    ) -> Result<DistRunReport, CoreError> {
        let (reply_tx, reply_rx) = channel::<Reply>();
        let mut sup = Supervisor::new(
            instance,
            self.settings,
            active_mu,
            active_nu,
            plan,
            reply_tx,
        );
        let outcome = sup.drive(&reply_rx);
        let stats = sup.stats;
        let fault_report = sup.tracker.report.clone();
        let plan_trivial = sup.tracker.plan().is_trivial();
        let shutdown = sup.shutdown();
        let outcome = outcome?;
        shutdown?;

        let (point, breakdown) = finish(instance, outcome.lambda_rows, outcome.mu, !active_nu)?;
        let estimated = estimated_wan_seconds(outcome.iterations, &instance.latency_s)
            + fault_report.downtime_seconds
            + fault_report.straggler_seconds
            + outcome.stall_phases * max_latency(instance);
        let report_fault = !plan_trivial || fault_report.checkpoints_taken > 0;
        Ok(DistRunReport {
            point,
            breakdown,
            iterations: outcome.iterations,
            converged: outcome.converged,
            stats,
            estimated_wan_seconds: estimated,
            retransmissions: 0,
            fault: report_fault.then_some(fault_report),
        })
    }
}

fn strategy_blocks(instance: &UfcInstance, strategy: Strategy) -> Result<(bool, bool), CoreError> {
    let active_mu = strategy != Strategy::GridOnly;
    let active_nu = strategy != Strategy::FuelCellOnly;
    if !active_nu && !instance.fuel_cells_cover_peak() {
        return Err(CoreError::Unsupported {
            context: "FuelCellOnly requires fuel-cell capacity covering peak demand".to_owned(),
        });
    }
    Ok((active_mu, active_nu))
}

fn max_latency(instance: &UfcInstance) -> f64 {
    instance
        .latency_s
        .iter()
        .flatten()
        .cloned()
        .fold(0.0f64, f64::max)
}

/// Column `j` of the per-front-end λ̃ rows: the values bound for
/// datacenter `j`.
fn column_of(rows: &[Vec<f64>], j: usize) -> Vec<f64> {
    rows.iter().map(|row| row[j]).collect()
}

/// Row `i` of the per-datacenter ã columns: the values bound for
/// front-end `i`.
fn row_of(cols: &[Vec<f64>], i: usize) -> Vec<f64> {
    cols.iter().map(|col| col[i]).collect()
}

/// Plan-driven straggler accounting, identical in both engines: the
/// coordinator charges every scripted delay of a live node.
fn account_stragglers(tracker: &mut FaultTracker, m: usize, n: usize, k: usize) {
    for i in 0..m {
        let delay = tracker.plan().straggler_delay(NodeId::Frontend(i), k);
        if let Some(delay) = delay {
            tracker.record_straggler(delay);
        }
    }
    for j in 0..n {
        if tracker.is_evicted(j) {
            continue;
        }
        let delay = tracker.plan().straggler_delay(NodeId::Datacenter(j), k);
        if let Some(delay) = delay {
            tracker.record_straggler(delay);
        }
    }
}

/// Records the λ̃ scatter to every non-evicted datacenter, doubling bytes
/// across severed partition links (relay path).
fn record_lambda_traffic(
    stats: &mut MessageStats,
    tracker: &mut FaultTracker,
    rows: &[Vec<f64>],
    k: usize,
) {
    for (i, row) in rows.iter().enumerate() {
        for (j, &value) in row.iter().enumerate() {
            if tracker.is_evicted(j) {
                continue;
            }
            let msg = Message::LambdaTilde {
                frontend: i,
                datacenter: j,
                value,
            };
            stats.record(&msg);
            if tracker.plan().is_partitioned(i, j, k) {
                stats.total_bytes += msg.wire_bytes();
                tracker.report.partition_retransmissions += 1;
            }
        }
    }
}

/// Records one datacenter's ã gather (mirror of [`record_lambda_traffic`]).
fn record_a_traffic(
    stats: &mut MessageStats,
    tracker: &mut FaultTracker,
    a_tilde: &[f64],
    j: usize,
    k: usize,
) {
    for (i, &value) in a_tilde.iter().enumerate() {
        let msg = Message::ATilde {
            frontend: i,
            datacenter: j,
            value,
        };
        stats.record(&msg);
        if tracker.plan().is_partitioned(i, j, k) {
            stats.total_bytes += msg.wire_bytes();
            tracker.report.partition_retransmissions += 1;
        }
    }
}

/// One iteration's inputs, buffered for checkpoint-restart replay.
struct HistoryEntry {
    iteration: usize,
    rows: Vec<Vec<f64>>,
    a_cols: Vec<Vec<f64>>,
}

/// Commands to a front-end worker.
enum FeCmd {
    Predict { iteration: usize },
    Correct { iteration: usize, a_row: Vec<f64> },
    Snapshot { iteration: usize },
    Membership { datacenter: usize, evict: bool },
    Finish,
}

/// Commands to a datacenter worker.
enum DcCmd {
    Process { iteration: usize, column: Vec<f64> },
    Snapshot { iteration: usize },
    Finish,
}

/// Worker replies, tagged with node and iteration so the coordinator can
/// discard stale replay traffic.
enum Reply {
    Lambda {
        i: usize,
        iteration: usize,
        row: Vec<f64>,
    },
    FeResidual {
        i: usize,
        iteration: usize,
        residuals: NodeResiduals,
    },
    DcStep {
        j: usize,
        iteration: usize,
        a_tilde: Vec<f64>,
        residuals: NodeResiduals,
    },
    FeSnapshot {
        i: usize,
        iteration: usize,
        blob: Vec<u8>,
    },
    DcSnapshot {
        j: usize,
        iteration: usize,
        blob: Vec<u8>,
    },
    FeFinal {
        i: usize,
        lambda: Vec<f64>,
    },
    DcFinal {
        j: usize,
        mu: f64,
    },
}

/// The fault injections one worker carries: iterations at which it
/// crash-stops, and scripted reply delays.
struct FaultScript {
    crash_iterations: Vec<usize>,
    stragglers: Vec<(usize, Duration)>,
}

impl FaultScript {
    /// Script for `node`, keeping only events after iteration `after`
    /// (respawned workers must not re-fire events that already happened).
    fn for_node(plan: &FaultPlan, node: NodeId, after: usize) -> Self {
        FaultScript {
            crash_iterations: plan
                .crash_iterations_for(node)
                .into_iter()
                .filter(|&t| t > after)
                .collect(),
            stragglers: plan
                .stragglers_for(node)
                .into_iter()
                .filter(|&(t, _)| t > after)
                .collect(),
        }
    }

    fn crashes_at(&self, iteration: usize) -> bool {
        self.crash_iterations.contains(&iteration)
    }

    fn straggle(&self, iteration: usize) {
        if let Some(&(_, delay)) = self.stragglers.iter().find(|&&(t, _)| t == iteration) {
            std::thread::sleep(delay);
        }
    }
}

/// What the supervised loop produces on success.
struct LoopOutcome {
    lambda_rows: Vec<Vec<f64>>,
    mu: Vec<f64>,
    iterations: usize,
    converged: bool,
    stall_phases: f64,
}

/// Waits for the pending nodes' replies with an exponential-backoff ladder.
/// Nodes still silent after the ladder — and whose threads have actually
/// exited (`alive` is false) — are returned as suspected-dead, in
/// deterministic node order. A silent-but-running worker (long sub-problem,
/// scheduling hiccup) gets its ladder restarted instead of being declared
/// dead.
fn gather_phase(
    rx: &Receiver<Reply>,
    pending: &mut HashSet<NodeId>,
    base_timeout: Duration,
    rounds: u32,
    alive: impl Fn(NodeId) -> bool,
    mut accept: impl FnMut(Reply) -> Option<NodeId>,
) -> Vec<NodeId> {
    let rounds = rounds.max(1);
    let mut round = 0u32;
    let mut wait = base_timeout;
    let mut extensions = 0u32;
    while !pending.is_empty() {
        match rx.recv_timeout(wait) {
            Ok(reply) => {
                if let Some(node) = accept(reply) {
                    pending.remove(&node);
                }
            }
            Err(RecvTimeoutError::Timeout) => {
                round += 1;
                if round >= rounds {
                    if pending.iter().any(|&node| alive(node)) && extensions < 1000 {
                        extensions += 1;
                        round = 0;
                        wait = base_timeout;
                        continue;
                    }
                    break;
                }
                wait = wait.saturating_mul(2);
            }
            Err(RecvTimeoutError::Disconnected) => break,
        }
    }
    let mut missing: Vec<NodeId> = pending.drain().collect();
    missing.sort_by_key(|node| match node {
        NodeId::Frontend(i) => (0, *i),
        NodeId::Datacenter(j) => (1, *j),
    });
    missing
}

/// The supervising coordinator of the threaded runtime.
struct Supervisor<'a> {
    instance: &'a UfcInstance,
    settings: AdmgSettings,
    active_mu: bool,
    active_nu: bool,
    m: usize,
    n: usize,
    tracker: FaultTracker,
    store: CheckpointStore,
    history: Vec<HistoryEntry>,
    reply_tx: Sender<Reply>,
    fe_tx: Vec<Option<Sender<FeCmd>>>,
    dc_tx: Vec<Option<Sender<DcCmd>>>,
    fe_handles: Vec<Option<JoinHandle<()>>>,
    dc_handles: Vec<Option<JoinHandle<()>>>,
    stats: MessageStats,
}

impl<'a> Supervisor<'a> {
    fn new(
        instance: &'a UfcInstance,
        settings: AdmgSettings,
        active_mu: bool,
        active_nu: bool,
        plan: FaultPlan,
        reply_tx: Sender<Reply>,
    ) -> Self {
        let m = instance.m_frontends();
        let n = instance.n_datacenters();
        let mut sup = Supervisor {
            instance,
            settings,
            active_mu,
            active_nu,
            m,
            n,
            tracker: FaultTracker::new(plan, m, n),
            store: CheckpointStore::new(m, n),
            history: Vec::new(),
            reply_tx,
            fe_tx: (0..m).map(|_| None).collect(),
            dc_tx: (0..n).map(|_| None).collect(),
            fe_handles: (0..m).map(|_| None).collect(),
            dc_handles: (0..n).map(|_| None).collect(),
            stats: MessageStats::default(),
        };
        for i in 0..m {
            let node = FrontendNode::new(instance, i, &sup.settings);
            sup.spawn_frontend(i, node, 0);
        }
        for j in 0..n {
            let node = DatacenterNode::new(instance, j, &sup.settings, active_mu, active_nu);
            sup.spawn_datacenter(j, node, 0);
        }
        sup
    }

    fn spawn_frontend(&mut self, i: usize, mut node: FrontendNode, after: usize) {
        if let Some(old) = self.fe_handles[i].take() {
            let _ = old.join();
        }
        let script = FaultScript::for_node(self.tracker.plan(), NodeId::Frontend(i), after);
        let out = self.reply_tx.clone();
        let (tx, rx) = channel::<FeCmd>();
        let handle = std::thread::spawn(move || {
            while let Ok(cmd) = rx.recv() {
                match cmd {
                    FeCmd::Predict { iteration } => {
                        if script.crashes_at(iteration) {
                            return; // crash-stop: die silently
                        }
                        script.straggle(iteration);
                        let row = node.predict_lambda();
                        if out.send(Reply::Lambda { i, iteration, row }).is_err() {
                            return;
                        }
                    }
                    FeCmd::Correct { iteration, a_row } => {
                        let residuals = node.receive_a_and_correct(&a_row);
                        if out
                            .send(Reply::FeResidual {
                                i,
                                iteration,
                                residuals,
                            })
                            .is_err()
                        {
                            return;
                        }
                    }
                    FeCmd::Snapshot { iteration } => {
                        let blob = node.snapshot().to_bytes();
                        if out.send(Reply::FeSnapshot { i, iteration, blob }).is_err() {
                            return;
                        }
                    }
                    FeCmd::Membership { datacenter, evict } => {
                        if evict {
                            node.set_evicted(datacenter);
                        } else {
                            node.clear_evicted(datacenter);
                        }
                    }
                    FeCmd::Finish => {
                        let _ = out.send(Reply::FeFinal {
                            i,
                            lambda: node.lambda().to_vec(),
                        });
                        return;
                    }
                }
            }
        });
        self.fe_tx[i] = Some(tx);
        self.fe_handles[i] = Some(handle);
    }

    fn spawn_datacenter(&mut self, j: usize, mut node: DatacenterNode, after: usize) {
        if let Some(old) = self.dc_handles[j].take() {
            let _ = old.join();
        }
        let script = FaultScript::for_node(self.tracker.plan(), NodeId::Datacenter(j), after);
        let out = self.reply_tx.clone();
        let (tx, rx) = channel::<DcCmd>();
        let handle = std::thread::spawn(move || {
            while let Ok(cmd) = rx.recv() {
                match cmd {
                    DcCmd::Process { iteration, column } => {
                        if script.crashes_at(iteration) {
                            return;
                        }
                        script.straggle(iteration);
                        let step = node.process(&column);
                        if out
                            .send(Reply::DcStep {
                                j,
                                iteration,
                                a_tilde: step.a_tilde,
                                residuals: step.residuals,
                            })
                            .is_err()
                        {
                            return;
                        }
                    }
                    DcCmd::Snapshot { iteration } => {
                        let blob = node.snapshot().to_bytes();
                        if out.send(Reply::DcSnapshot { j, iteration, blob }).is_err() {
                            return;
                        }
                    }
                    DcCmd::Finish => {
                        let _ = out.send(Reply::DcFinal { j, mu: node.mu() });
                        return;
                    }
                }
            }
        });
        self.dc_tx[j] = Some(tx);
        self.dc_handles[j] = Some(handle);
    }

    fn send_fe(&self, i: usize, cmd: FeCmd) {
        if let Some(tx) = &self.fe_tx[i] {
            let _ = tx.send(cmd);
        }
    }

    fn send_dc(&self, j: usize, cmd: DcCmd) {
        if let Some(tx) = &self.dc_tx[j] {
            let _ = tx.send(cmd);
        }
    }

    fn alive(&self, node: NodeId) -> bool {
        match node {
            NodeId::Frontend(i) => self.fe_handles[i]
                .as_ref()
                .is_some_and(|h| !h.is_finished()),
            NodeId::Datacenter(j) => self.dc_handles[j]
                .as_ref()
                .is_some_and(|h| !h.is_finished()),
        }
    }

    /// Respawns front-end `i` from its last checkpoint, replays the
    /// buffered inputs since, and re-applies this iteration's membership
    /// deltas, so its state is exactly what the crashed worker's would
    /// have been entering iteration `k`.
    fn respawn_frontend(
        &mut self,
        i: usize,
        k: usize,
        readmitted_now: &[usize],
    ) -> Result<(), CoreError> {
        let mut node = FrontendNode::new(self.instance, i, &self.settings);
        let mut base = 0usize;
        if let Some((it, blob)) = self.store.frontend(i) {
            node.restore(&FrontendSnapshot::from_bytes(blob)?)?;
            base = it;
        }
        self.spawn_frontend(i, node, k);
        let mut replayed = 0usize;
        for entry in &self.history {
            if entry.iteration <= base || entry.iteration >= k {
                continue;
            }
            self.send_fe(
                i,
                FeCmd::Predict {
                    iteration: entry.iteration,
                },
            );
            let a_row: Vec<f64> = (0..self.n).map(|j| entry.a_cols[j][i]).collect();
            self.send_fe(
                i,
                FeCmd::Correct {
                    iteration: entry.iteration,
                    a_row,
                },
            );
            replayed += 1;
        }
        self.tracker.report.recomputed_iterations += replayed;
        for &j in readmitted_now {
            self.send_fe(
                i,
                FeCmd::Membership {
                    datacenter: j,
                    evict: false,
                },
            );
        }
        Ok(())
    }

    /// Respawns datacenter `j` from its last checkpoint and replays the
    /// buffered λ̃ columns since.
    fn respawn_datacenter(&mut self, j: usize, k: usize) -> Result<(), CoreError> {
        let mut node = DatacenterNode::new(
            self.instance,
            j,
            &self.settings,
            self.active_mu,
            self.active_nu,
        );
        let mut base = 0usize;
        if let Some((it, blob)) = self.store.datacenter(j) {
            node.restore(&DatacenterSnapshot::from_bytes(blob)?)?;
            base = it;
        }
        self.spawn_datacenter(j, node, k);
        let mut replayed = 0usize;
        for entry in &self.history {
            if entry.iteration <= base || entry.iteration >= k {
                continue;
            }
            let column: Vec<f64> = (0..self.m).map(|i| entry.rows[i][j]).collect();
            self.send_dc(
                j,
                DcCmd::Process {
                    iteration: entry.iteration,
                    column,
                },
            );
            replayed += 1;
        }
        self.tracker.report.recomputed_iterations += replayed;
        Ok(())
    }

    /// Evicts datacenter `j`: drops its command channel, joins the dead
    /// worker, and broadcasts the membership change to every front-end.
    fn evict_datacenter(&mut self, j: usize) {
        self.dc_tx[j] = None;
        if let Some(handle) = self.dc_handles[j].take() {
            let _ = handle.join();
        }
        for i in 0..self.m {
            self.send_fe(
                i,
                FeCmd::Membership {
                    datacenter: j,
                    evict: true,
                },
            );
            self.stats.record(&Message::Membership {
                datacenter: j,
                evict: true,
            });
        }
    }

    #[allow(clippy::too_many_lines)] // one iteration of the supervised protocol, phase by phase
    fn drive(&mut self, rx: &Receiver<Reply>) -> Result<LoopOutcome, CoreError> {
        let tolerances = self.settings.scaled_tolerances(self.instance);
        let timeout = self.tracker.plan().phase_timeout;
        let rounds = self.tracker.plan().backoff_rounds;
        let checkpoint_interval = self.tracker.plan().checkpoint_interval;
        let (m, n) = (self.m, self.n);
        let mut converged = false;
        let mut iterations = 0usize;
        let mut stall_phases = 0.0f64;

        for k in 1..=self.settings.max_iterations {
            iterations = k;
            let mut membership_changed = false;

            // Readmission probes.
            let readmitted_now = self.tracker.probe_readmissions();
            for &j in &readmitted_now {
                let node = DatacenterNode::new(
                    self.instance,
                    j,
                    &self.settings,
                    self.active_mu,
                    self.active_nu,
                );
                self.store
                    .put_datacenter(j, k - 1, node.snapshot().to_bytes());
                self.spawn_datacenter(j, node, k - 1);
                for i in 0..m {
                    self.send_fe(
                        i,
                        FeCmd::Membership {
                            datacenter: j,
                            evict: false,
                        },
                    );
                    self.stats.record(&Message::Membership {
                        datacenter: j,
                        evict: false,
                    });
                }
                membership_changed = true;
            }

            account_stragglers(&mut self.tracker, m, n, k);
            if self.tracker.plan().partition_active(k) {
                stall_phases += 2.0;
            }

            // Predict phase.
            for i in 0..m {
                self.send_fe(i, FeCmd::Predict { iteration: k });
            }
            let mut rows: Vec<Option<Vec<f64>>> = vec![None; m];
            let mut pending: HashSet<NodeId> = (0..m).map(NodeId::Frontend).collect();
            let missing = gather_phase(
                rx,
                &mut pending,
                timeout,
                rounds,
                |node| self.alive(node),
                |reply| match reply {
                    Reply::Lambda { i, iteration, row } if iteration == k => {
                        rows[i] = Some(row);
                        Some(NodeId::Frontend(i))
                    }
                    _ => None,
                },
            );
            for node in missing {
                let NodeId::Frontend(i) = node else {
                    unreachable!("predict phase only waits on front-ends")
                };
                match self.tracker.resolve_crash(node, k)? {
                    Resolution::Recovered { .. } => {
                        self.respawn_frontend(i, k, &readmitted_now)?;
                        self.send_fe(i, FeCmd::Predict { iteration: k });
                        let mut single: HashSet<NodeId> = HashSet::from([node]);
                        let still = gather_phase(
                            rx,
                            &mut single,
                            timeout,
                            rounds,
                            |nd| self.alive(nd),
                            |reply| match reply {
                                Reply::Lambda {
                                    i: ri,
                                    iteration,
                                    row,
                                } if ri == i && iteration == k => {
                                    rows[i] = Some(row);
                                    Some(NodeId::Frontend(i))
                                }
                                _ => None,
                            },
                        );
                        if !still.is_empty() {
                            return Err(CoreError::node_failure(
                                node.to_string(),
                                k,
                                "no reply after checkpoint respawn",
                            ));
                        }
                    }
                    Resolution::Evicted { .. } => {
                        unreachable!("front-ends are never evicted")
                    }
                }
            }
            let rows: Vec<Vec<f64>> = rows
                .into_iter()
                .enumerate()
                .map(|(i, row)| {
                    row.ok_or_else(|| {
                        CoreError::node_failure(
                            NodeId::Frontend(i).to_string(),
                            k,
                            "prediction missing after gather",
                        )
                    })
                })
                .collect::<Result<_, _>>()?;
            record_lambda_traffic(&mut self.stats, &mut self.tracker, &rows, k);

            // Datacenter phase.
            for j in 0..n {
                if self.tracker.is_evicted(j) {
                    continue;
                }
                self.send_dc(
                    j,
                    DcCmd::Process {
                        iteration: k,
                        column: column_of(&rows, j),
                    },
                );
            }
            let mut a_cols = vec![vec![0.0; m]; n];
            let mut dc_residuals: Vec<Option<NodeResiduals>> = vec![None; n];
            let mut pending: HashSet<NodeId> = (0..n)
                .filter(|&j| !self.tracker.is_evicted(j))
                .map(NodeId::Datacenter)
                .collect();
            let missing = gather_phase(
                rx,
                &mut pending,
                timeout,
                rounds,
                |node| self.alive(node),
                |reply| match reply {
                    Reply::DcStep {
                        j,
                        iteration,
                        a_tilde,
                        residuals,
                    } if iteration == k => {
                        a_cols[j] = a_tilde;
                        dc_residuals[j] = Some(residuals);
                        Some(NodeId::Datacenter(j))
                    }
                    _ => None,
                },
            );
            for node in missing {
                let NodeId::Datacenter(j) = node else {
                    unreachable!("datacenter phase only waits on datacenters")
                };
                match self.tracker.resolve_crash(node, k)? {
                    Resolution::Recovered { .. } => {
                        self.respawn_datacenter(j, k)?;
                        self.send_dc(
                            j,
                            DcCmd::Process {
                                iteration: k,
                                column: column_of(&rows, j),
                            },
                        );
                        let mut single: HashSet<NodeId> = HashSet::from([node]);
                        let still = gather_phase(
                            rx,
                            &mut single,
                            timeout,
                            rounds,
                            |nd| self.alive(nd),
                            |reply| match reply {
                                Reply::DcStep {
                                    j: rj,
                                    iteration,
                                    a_tilde,
                                    residuals,
                                } if rj == j && iteration == k => {
                                    a_cols[j] = a_tilde;
                                    dc_residuals[j] = Some(residuals);
                                    Some(NodeId::Datacenter(j))
                                }
                                _ => None,
                            },
                        );
                        if !still.is_empty() {
                            return Err(CoreError::node_failure(
                                node.to_string(),
                                k,
                                "no reply after checkpoint respawn",
                            ));
                        }
                    }
                    Resolution::Evicted { .. } => {
                        self.evict_datacenter(j);
                        membership_changed = true;
                    }
                }
            }
            for j in 0..n {
                if dc_residuals[j].is_some() {
                    // a_cols[j] was moved into place by the accept closure.
                    let a_tilde = a_cols[j].clone();
                    record_a_traffic(&mut self.stats, &mut self.tracker, &a_tilde, j, k);
                }
            }

            // Correct phase.
            for i in 0..m {
                self.send_fe(
                    i,
                    FeCmd::Correct {
                        iteration: k,
                        a_row: row_of(&a_cols, i),
                    },
                );
            }
            let mut fe_residuals: Vec<Option<NodeResiduals>> = vec![None; m];
            let mut pending: HashSet<NodeId> = (0..m).map(NodeId::Frontend).collect();
            let missing = gather_phase(
                rx,
                &mut pending,
                timeout,
                rounds,
                |node| self.alive(node),
                |reply| match reply {
                    Reply::FeResidual {
                        i,
                        iteration,
                        residuals,
                    } if iteration == k => {
                        fe_residuals[i] = Some(residuals);
                        Some(NodeId::Frontend(i))
                    }
                    _ => None,
                },
            );
            if let Some(node) = missing.first() {
                return Err(CoreError::node_failure(
                    node.to_string(),
                    k,
                    "no reply in correction phase",
                ));
            }
            let fe_residuals: Vec<NodeResiduals> = fe_residuals
                .into_iter()
                .map(|r| r.unwrap_or_default())
                .collect();
            let active_res: Vec<NodeResiduals> = dc_residuals.iter().flatten().copied().collect();
            let stop = reduce_and_broadcast(
                &self.settings,
                tolerances,
                &fe_residuals,
                &active_res,
                &mut self.stats,
                m + active_res.len(),
            );
            self.history.push(HistoryEntry {
                iteration: k,
                rows,
                a_cols,
            });
            if stop {
                converged = true;
                break;
            }
            if membership_changed || (checkpoint_interval > 0 && k % checkpoint_interval == 0) {
                self.checkpoint_round(rx, k, timeout, rounds)?;
            }
        }

        // Final gather.
        let mut pending: HashSet<NodeId> = (0..m).map(NodeId::Frontend).collect();
        for i in 0..m {
            self.send_fe(i, FeCmd::Finish);
        }
        for j in 0..n {
            if !self.tracker.is_evicted(j) {
                self.send_dc(j, DcCmd::Finish);
                pending.insert(NodeId::Datacenter(j));
            }
        }
        let mut lambda_rows: Vec<Vec<f64>> = vec![Vec::new(); m];
        let mut mu = vec![0.0; n];
        let missing = gather_phase(
            rx,
            &mut pending,
            timeout,
            rounds,
            |node| self.alive(node),
            |reply| match reply {
                Reply::FeFinal { i, lambda } => {
                    lambda_rows[i] = lambda;
                    Some(NodeId::Frontend(i))
                }
                Reply::DcFinal { j, mu: v } => {
                    mu[j] = v;
                    Some(NodeId::Datacenter(j))
                }
                _ => None,
            },
        );
        if let Some(node) = missing.first() {
            return Err(CoreError::node_failure(
                node.to_string(),
                iterations,
                "no reply to the final gather",
            ));
        }

        Ok(LoopOutcome {
            lambda_rows,
            mu,
            iterations,
            converged,
            stall_phases,
        })
    }

    /// One checkpoint round: every live node snapshots its iterate slice
    /// and ships it to the coordinator, which accounts the traffic and
    /// clears the replay buffer.
    fn checkpoint_round(
        &mut self,
        rx: &Receiver<Reply>,
        k: usize,
        timeout: Duration,
        rounds: u32,
    ) -> Result<(), CoreError> {
        let (m, n) = (self.m, self.n);
        let mut pending: HashSet<NodeId> = (0..m).map(NodeId::Frontend).collect();
        for i in 0..m {
            self.send_fe(i, FeCmd::Snapshot { iteration: k });
        }
        for j in 0..n {
            if !self.tracker.is_evicted(j) {
                self.send_dc(j, DcCmd::Snapshot { iteration: k });
                pending.insert(NodeId::Datacenter(j));
            }
        }
        let mut fe_blobs: Vec<Option<Vec<u8>>> = vec![None; m];
        let mut dc_blobs: Vec<Option<Vec<u8>>> = vec![None; n];
        let missing = gather_phase(
            rx,
            &mut pending,
            timeout,
            rounds,
            |node| self.alive(node),
            |reply| match reply {
                Reply::FeSnapshot { i, iteration, blob } if iteration == k => {
                    fe_blobs[i] = Some(blob);
                    Some(NodeId::Frontend(i))
                }
                Reply::DcSnapshot { j, iteration, blob } if iteration == k => {
                    dc_blobs[j] = Some(blob);
                    Some(NodeId::Datacenter(j))
                }
                _ => None,
            },
        );
        if let Some(node) = missing.first() {
            return Err(CoreError::node_failure(
                node.to_string(),
                k,
                "no reply to the checkpoint request",
            ));
        }
        for (i, blob) in fe_blobs.into_iter().enumerate() {
            let blob = blob.expect("gather guarantees a blob per front-end");
            self.stats.record(&Message::Checkpoint {
                node: i,
                payload_bytes: blob.len(),
            });
            self.store.put_frontend(i, k, blob);
        }
        for (j, blob) in dc_blobs.into_iter().enumerate() {
            let Some(blob) = blob else { continue };
            self.stats.record(&Message::Checkpoint {
                node: m + j,
                payload_bytes: blob.len(),
            });
            self.store.put_datacenter(j, k, blob);
        }
        self.tracker.report.checkpoints_taken += 1;
        self.history.clear();
        Ok(())
    }

    /// Closes every command channel (ending the worker loops) and joins
    /// all threads. Called on every exit path, success or error.
    fn shutdown(mut self) -> Result<(), CoreError> {
        self.fe_tx.clear();
        self.dc_tx.clear();
        let mut first_panic = None;
        for slot in self.fe_handles.iter_mut().chain(self.dc_handles.iter_mut()) {
            if let Some(handle) = slot.take() {
                if handle.join().is_err() && first_panic.is_none() {
                    first_panic = Some(CoreError::node_failure(
                        "worker",
                        0,
                        "node thread panicked during shutdown",
                    ));
                }
            }
        }
        first_panic.map_or(Ok(()), Err)
    }
}

/// Max-reduces the per-node residuals, accounts the report/control traffic,
/// and returns the stop decision.
fn reduce_and_broadcast(
    settings: &AdmgSettings,
    tolerances: (f64, f64, f64),
    fe: &[NodeResiduals],
    dc: &[NodeResiduals],
    stats: &mut MessageStats,
    node_count: usize,
) -> bool {
    let mut link = 0.0f64;
    let mut balance = 0.0f64;
    let mut movement = 0.0f64;
    for (node, r) in fe.iter().chain(dc).enumerate() {
        stats.record(&Message::ResidualReport {
            node,
            link: r.link,
            balance: r.balance,
            movement: r.movement,
        });
        link = link.max(r.link);
        balance = balance.max(r.balance);
        movement = movement.max(r.movement);
    }
    let (link_tol, balance_tol, dual_tol) = tolerances;
    let stop = link <= link_tol && balance <= balance_tol && settings.rho * movement <= dual_tol;
    for _ in 0..node_count {
        stats.record(&Message::Control { stop });
    }
    stop
}

/// Polishes the gathered iterate into a feasible point and evaluates it
/// (same repair as the in-memory solver).
fn finish(
    instance: &UfcInstance,
    lambda_rows: Vec<Vec<f64>>,
    mu: Vec<f64>,
    fuel_cell_only: bool,
) -> Result<(OperatingPoint, UfcBreakdown), CoreError> {
    let mut state = AdmgState::zeros(instance);
    for (i, row) in lambda_rows.iter().enumerate() {
        for (j, &v) in row.iter().enumerate() {
            let k = state.idx(i, j);
            state.lambda[k] = v;
        }
    }
    state.mu = mu;
    let point = assemble_point(instance, &state, fuel_cell_only)?;
    let breakdown = evaluate(instance, &point)?;
    Ok((point, breakdown))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ufc_model::EmissionCostFn;

    fn tiny() -> UfcInstance {
        UfcInstance::new(
            vec![1.0, 2.0],
            vec![2.0, 2.0],
            vec![0.24, 0.24],
            vec![0.12, 0.12],
            vec![0.48, 0.48],
            vec![30.0, 70.0],
            80.0,
            vec![0.5, 0.3],
            vec![vec![0.01, 0.02], vec![0.02, 0.01]],
            10.0,
            vec![
                EmissionCostFn::linear(25.0).unwrap(),
                EmissionCostFn::linear(25.0).unwrap(),
            ],
            1.0,
        )
        .unwrap()
    }

    #[test]
    fn lockstep_converges_and_counts_messages() {
        let inst = tiny();
        let report = DistributedAdmg::new(AdmgSettings::default())
            .run(&inst, Strategy::Hybrid, Runtime::Lockstep)
            .unwrap();
        assert!(report.converged);
        // 2·M·N data messages per iteration.
        assert_eq!(report.stats.data_messages, 2 * 2 * 2 * report.iterations);
        // (M+N) reports + (M+N) controls per iteration.
        assert_eq!(report.stats.control_messages, 2 * 4 * report.iterations);
        assert!(report.estimated_wan_seconds > 0.0);
        assert!(report.point.feasibility_residual(&inst) < 1e-8);
        assert!(report.fault.is_none());
    }

    #[test]
    fn threaded_matches_lockstep() {
        let inst = tiny();
        let runner = DistributedAdmg::new(AdmgSettings::default());
        let lockstep = runner
            .run(&inst, Strategy::Hybrid, Runtime::Lockstep)
            .unwrap();
        let threaded = runner
            .run(&inst, Strategy::Hybrid, Runtime::Threaded)
            .unwrap();
        assert_eq!(lockstep.iterations, threaded.iterations);
        assert!(
            (lockstep.breakdown.ufc() - threaded.breakdown.ufc()).abs() < 1e-9,
            "lockstep {} vs threaded {}",
            lockstep.breakdown.ufc(),
            threaded.breakdown.ufc()
        );
        assert_eq!(lockstep.stats, threaded.stats);
        assert!(threaded.fault.is_none());
    }

    #[test]
    fn strategies_run_distributed() {
        let inst = tiny();
        let runner = DistributedAdmg::new(AdmgSettings::default());
        let grid = runner
            .run(&inst, Strategy::GridOnly, Runtime::Lockstep)
            .unwrap();
        assert!(grid.point.mu.iter().all(|&v| v == 0.0));
        let fc = runner
            .run(&inst, Strategy::FuelCellOnly, Runtime::Lockstep)
            .unwrap();
        assert!(fc.point.nu.iter().all(|&v| v.abs() < 1e-9));
    }

    #[test]
    fn fuel_cell_only_validation() {
        let mut inst = tiny();
        inst.mu_max = vec![0.0, 0.0];
        let err = DistributedAdmg::new(AdmgSettings::default())
            .run(&inst, Strategy::FuelCellOnly, Runtime::Lockstep)
            .unwrap_err();
        assert!(matches!(err, CoreError::Unsupported { .. }));
    }

    #[test]
    fn try_new_rejects_bad_settings() {
        let settings = AdmgSettings {
            rho: -1.0,
            ..AdmgSettings::default()
        };
        assert!(matches!(
            DistributedAdmg::try_new(settings),
            Err(CoreError::InvalidConfig { .. })
        ));
    }
}
